// Constrained physical design (§3.2, Appendix E): the Bruno–Chaudhuri
// constraint language on top of the BIP. Demonstrates index
// constraints, per-table count limits, key-width rules, FOR-generator
// query-cost constraints, and how infeasible constraint sets surface.
//
//   $ ./constrained_tuning [num_queries]
#include <cstdio>
#include <cstdlib>

#include "optimizer/simulator.h"
#include "baselines/advisor.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "workload/generator.h"

using namespace cophy;

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 120;

  Catalog catalog = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator system(&catalog, &pool, CostModel::SystemA());
  WorkloadOptions wopts;
  wopts.num_statements = num_queries;
  wopts.seed = 21;
  Workload workload = MakeHomogeneousWorkload(catalog, wopts);

  CoPhy advisor(&system, &pool, workload, CoPhyOptions{});
  if (!advisor.Prepare().ok()) return 1;

  // --- Scenario 1: storage + structural constraints -------------------
  ConstraintSet cs;
  cs.SetStorageBudget(0.75 * catalog.TotalDataBytes());
  // "At most 2 indexes per table" (an E.3 generator over tables).
  cs.AddMaxIndexesPerTable(catalog, 2);
  // "At most one index with more than 3 key columns" (E.1 example).
  cs.AddMaxWideIndexes(/*width=*/3, /*k=*/1);
  // Every table can carry at most one clustered index (Eq. 5).
  cs.AddAtMostOneClusteredPerTable(catalog);

  Recommendation rec = advisor.Tune(cs);
  if (!rec.status.ok()) {
    std::fprintf(stderr, "tune failed: %s\n", rec.status.ToString().c_str());
    return 1;
  }
  std::printf("scenario 1 (structural constraints): %d indexes\n",
              rec.configuration.size());
  // Verify the per-table rule held.
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    const auto on_t = rec.configuration.OnTable(t, pool);
    if (!on_t.empty()) {
      std::printf("  %-10s %zu index(es)\n", catalog.table(t).name.c_str(),
                  on_t.size());
    }
  }

  // --- Scenario 2: query-cost constraints (E.2/E.3) -------------------
  // FOR q IN W ASSERT cost(q, X*) <= 0.9 cost(q, X0): every statement
  // must improve by at least 10% — a much harder ask.
  ConstraintSet cs2;
  cs2.SetStorageBudget(1.5 * catalog.TotalDataBytes());
  cs2.ForEachQueryAssertSpeedup(workload, 0.9);
  Recommendation rec2 = advisor.Tune(cs2);
  if (rec2.status.ok()) {
    std::printf("\nscenario 2 (every query 10%% faster): satisfied with %d "
                "indexes\n", rec2.configuration.size());
  } else {
    std::printf("\nscenario 2 (every query 10%% faster): %s\n",
                rec2.status.ToString().c_str());
    std::printf("  → the DBA can relax the factor or convert to a soft "
                "constraint (§4.1)\n");
  }

  // --- Scenario 3: an infeasible combination surfaces cleanly ---------
  ConstraintSet cs3;
  cs3.SetStorageBudget(0.5 * catalog.TotalDataBytes());
  cs3.ForEachQueryAssertSpeedup(workload, 0.01);  // 100x: impossible
  Recommendation rec3 = advisor.Tune(cs3);
  std::printf("\nscenario 3 (impossible speedups): %s\n",
              rec3.status.ToString().c_str());

  const double perf = Perf(system, workload, rec.configuration);
  std::printf("\nscenario 1 ground-truth improvement: %.1f%%\n", 100 * perf);
  return 0;
}
