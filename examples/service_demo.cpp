// Multi-tenant advisor service: two tenants stream overlapping
// statement batches through one AdvisorService concurrently. Tenant ops
// serialize on their own lane while the two lanes share the worker pool
// and — the point of the demo — the cross-session plan cache: the
// statement classes both tenants share are prepared once, whichever
// tenant gets there first, and served from the cache for the other.
// The run prints each tenant's retune trail, then the cache scoreboard
// and the what-if call count next to what two isolated sessions would
// have spent.
//
//   $ ./example_service_demo [statements_per_tenant] [rounds] [overlap_pct]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/simulator.h"
#include "service/service.h"
#include "workload/generator.h"

using namespace cophy;

namespace {

/// Statement i of a tenant; the leading overlap_pct% of positions use a
/// seed shared by both tenants (same cost-equivalence class), the rest
/// are tenant-private.
Query TenantStatement(const Catalog& cat, int tenant, int i, int overlap_pct) {
  const bool shared = (i * 37 + 11) % 100 < overlap_pct;
  const int tmpl = i % NumHomogeneousTemplates();
  const uint64_t seed =
      shared ? 1000 + static_cast<uint64_t>(i)
             : 777'000'000ULL + static_cast<uint64_t>(tenant) * 100'000 + i;
  return MakeHomogeneousStatement(cat, tmpl, seed);
}

int64_t RunOnce(bool cache_on, int per_tenant, int rounds, int overlap_pct,
                bool print) {
  Catalog catalog = MakeTpchCatalog(0.5, 0.0);
  IndexPool pool;
  SystemSimulator system(&catalog, &pool, CostModel::SystemA());
  ConstraintSet budget;
  budget.SetStorageBudget(0.5 * catalog.TotalDataBytes());

  ServiceOptions opts;
  opts.num_threads = 0;  // hardware
  opts.share_plan_cache = cache_on;
  opts.session.tuning.gap_target = 0.05;
  AdvisorService service(&system, &pool, opts);

  const std::string tenants[] = {"alpha", "beta"};
  const int batch = per_tenant / (rounds + 1);
  std::vector<std::vector<std::future<OpResult>>> retunes(2);
  int next[2] = {0, 0};
  // Interleave the two streams round-by-round: add a batch for alpha,
  // a batch for beta, retune both — the service runs the lanes
  // concurrently and the futures arrive as each lane gets there.
  for (int r = 0; r <= rounds; ++r) {
    for (int t = 0; t < 2; ++t) {
      std::vector<Query> stmts;
      for (int i = 0; i < batch; ++i) {
        stmts.push_back(TenantStatement(catalog, t, next[t]++, overlap_pct));
      }
      service.AddStatements(tenants[t], std::move(stmts));
      retunes[t].push_back(r == 0 ? service.Tune(tenants[t], budget)
                                  : service.Retune(tenants[t], budget));
    }
  }
  if (print) {
    std::printf("%-8s %-6s %10s %12s %12s\n", "tenant", "round", "stmts",
                "retune_ms", "est. cost");
  }
  for (int t = 0; t < 2; ++t) {
    for (size_t r = 0; r < retunes[t].size(); ++r) {
      const OpResult res = retunes[t][r].get();
      if (!res.status.ok()) {
        std::fprintf(stderr, "%s round %zu failed: %s\n", tenants[t].c_str(),
                     r, res.status.ToString().c_str());
        std::exit(1);
      }
      if (print) {
        std::printf("%-8s %-6zu %10d %12.1f %12.4g\n", tenants[t].c_str(), r,
                    (static_cast<int>(r) + 1) * batch, res.exec_seconds * 1e3,
                    res.recommendation.objective);
      }
    }
  }
  service.Drain();

  if (print && cache_on) {
    const PlanCacheStats cache = service.stats().plan_cache;
    std::printf("\nshared plan cache: templates %lld hit / %lld miss, "
                "gammas %lld hit / %lld miss (hit rate %.1f%%)\n",
                static_cast<long long>(cache.template_hits),
                static_cast<long long>(cache.template_misses),
                static_cast<long long>(cache.gamma_hits),
                static_cast<long long>(cache.gamma_misses),
                100 * cache.HitRate());
  }
  return system.num_whatif_calls();
}

}  // namespace

int main(int argc, char** argv) {
  const int per_tenant = argc > 1 ? std::atoi(argv[1]) : 60;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 2;
  const int overlap_pct = argc > 3 ? std::atoi(argv[3]) : 75;

  std::printf("two tenants, %d statements each, %d retune rounds, "
              "%d%% statement overlap\n\n",
              per_tenant, rounds, overlap_pct);
  const int64_t with_cache = RunOnce(true, per_tenant, rounds, overlap_pct,
                                     /*print=*/true);
  const int64_t without = RunOnce(false, per_tenant, rounds, overlap_pct,
                                  /*print=*/false);
  std::printf("\nwhat-if optimizer calls: %lld with the shared cache, "
              "%lld without (%.1f%% saved)\n",
              static_cast<long long>(with_cache),
              static_cast<long long>(without),
              without > 0
                  ? 100.0 * static_cast<double>(without - with_cache) /
                        static_cast<double>(without)
                  : 0.0);
  return 0;
}
