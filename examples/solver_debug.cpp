// Internal diagnostics for the structured solver (not installed; used
// during development and as a worked example of the low-level API).
#include <cstdio>
#include <cstdlib>

#include "catalog/catalog.h"
#include "core/bipgen.h"
#include "core/cophy.h"
#include "index/candidates.h"
#include "lp/choice_problem.h"
#include "workload/generator.h"

using namespace cophy;

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 30;
  const double budget_fraction = argc > 2 ? std::atof(argv[2]) : 0.5;
  const int node_limit = argc > 3 ? std::atoi(argv[3]) : 50000;

  Catalog catalog = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator sim(&catalog, &pool, CostModel::SystemA());
  WorkloadOptions wopts;
  wopts.num_statements = num_queries;
  wopts.seed = 42;
  Workload w = MakeHomogeneousWorkload(catalog, wopts);

  std::vector<IndexId> cands =
      GenerateCandidates(w, catalog, CandidateOptions{}, pool);
  Inum inum(&sim);
  inum.Prepare(w, cands);

  ConstraintSet cs;
  cs.SetStorageBudget(budget_fraction * catalog.TotalDataBytes());
  lp::ChoiceProblem p = BuildChoiceProblem(inum, cands, cs);

  lp::ChoiceSolver solver(&p);
  lp::ChoiceSolveOptions so;
  so.gap_target = 0.05;
  so.node_limit = node_limit;
  so.callback = [](const lp::MipProgress& pr) {
    std::printf("  t=%.2fs nodes=%lld inc=%.4g lb=%.4g gap=%.1f%%\n",
                pr.seconds, static_cast<long long>(pr.nodes), pr.incumbent,
                pr.lower_bound, 100 * pr.gap);
    return true;
  };
  const lp::ChoiceSolution sol = solver.Solve(so);
  std::printf(
      "status=%s nodes=%lld obj=%.6g lb=%.6g gap=%.2f%% root_lagr=%.6g\n",
      sol.status.ToString().c_str(), static_cast<long long>(sol.nodes),
      sol.objective, sol.lower_bound, 100 * sol.gap,
      sol.root_lagrangian_bound);
  return 0;
}
