// Internal diagnostics for the structured solver (not installed; used
// during development and as a worked example of the low-level API).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "optimizer/simulator.h"
#include "catalog/catalog.h"
#include "core/bipgen.h"
#include "core/cophy.h"
#include "core/report.h"
#include "index/candidates.h"
#include "lp/branch_and_bound.h"
#include "lp/choice_problem.h"
#include "lp/presolve.h"
#include "workload/generator.h"

using namespace cophy;

/// --lp mode: solve the literal Theorem-1 BIP with the generic
/// branch-and-bound over the revised simplex, warm- and cold-started,
/// and print the pivot accounting (RenderSolverActivity).
static int RunLpMode(int num_queries, double budget_fraction) {
  Catalog catalog = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator sim(&catalog, &pool, CostModel::SystemA());
  WorkloadOptions wopts;
  wopts.num_statements = num_queries;
  wopts.seed = 42;
  Workload w = MakeHomogeneousWorkload(catalog, wopts);
  CandidateOptions copts;
  copts.max_key_columns = 1;  // keep the literal model dense-solver sized
  std::vector<IndexId> cands = GenerateCandidates(w, catalog, copts, pool);
  if (cands.size() > 8) cands.resize(8);
  Inum inum(&sim);
  inum.Prepare(w, cands);
  double candidate_bytes = 0;
  for (IndexId id : cands) {
    candidate_bytes += IndexSizeBytes(pool[id], catalog);
  }
  ConstraintSet cs;
  cs.SetStorageBudget(budget_fraction * candidate_bytes);
  const lp::Model m = BuildModel(inum, cands, cs);
  std::printf("literal BIP: %d vars, %d rows, %lld nonzeros\n",
              m.num_variables(), m.num_rows(),
              static_cast<long long>(m.num_nonzeros()));
  for (const bool warm : {true, false}) {
    const SolverActivity before = CaptureSolverActivity();
    lp::MipOptions mo;
    mo.gap_target = 0.0;
    mo.warm_start_nodes = warm;
    const lp::MipSolution sol = lp::SolveMip(m, mo);
    SolverActivity activity = SolverActivitySince(before);
    activity.mip_nodes = sol.nodes;
    std::printf("%s nodes: status=%s obj=%.6g nodes=%lld\n  %s",
                warm ? "warm-started" : "cold-started",
                sol.status.ToString().c_str(), sol.objective,
                static_cast<long long>(sol.nodes),
                RenderSolverActivity(activity).c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--lp") == 0) {
    const int nq = argc > 2 ? std::atoi(argv[2]) : 2;
    const double bf = argc > 3 ? std::atof(argv[3]) : 0.3;
    return RunLpMode(nq, bf);
  }
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 30;
  const double budget_fraction = argc > 2 ? std::atof(argv[2]) : 0.5;
  const int node_limit = argc > 3 ? std::atoi(argv[3]) : 50000;

  Catalog catalog = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator sim(&catalog, &pool, CostModel::SystemA());
  WorkloadOptions wopts;
  wopts.num_statements = num_queries;
  wopts.seed = 42;
  Workload w = MakeHomogeneousWorkload(catalog, wopts);

  std::vector<IndexId> cands =
      GenerateCandidates(w, catalog, CandidateOptions{}, pool);
  Inum inum(&sim);
  inum.Prepare(w, cands);

  ConstraintSet cs;
  cs.SetStorageBudget(budget_fraction * catalog.TotalDataBytes());
  lp::ChoiceProblem p = BuildChoiceProblem(inum, cands, cs);

  lp::ChoiceSolveOptions so;
  so.gap_target = 0.05;
  so.node_limit = node_limit;
  so.callback = [](const lp::MipProgress& pr) {
    std::printf("  t=%.2fs nodes=%lld inc=%.4g lb=%.4g gap=%.1f%%\n",
                pr.seconds, static_cast<long long>(pr.nodes), pr.incumbent,
                pr.lower_bound, 100 * pr.gap);
    return true;
  };
  lp::PresolveStats presolve;
  const lp::ChoiceSolution sol = lp::SolveChoiceProblem(p, so, &presolve);
  std::printf(
      "presolve: plans %lld->%lld, options %lld->%lld, indexes %lld->%lld\n",
      static_cast<long long>(presolve.plans_in),
      static_cast<long long>(presolve.plans_out),
      static_cast<long long>(presolve.options_in),
      static_cast<long long>(presolve.options_out),
      static_cast<long long>(presolve.indexes_in),
      static_cast<long long>(presolve.indexes_out));
  std::printf(
      "status=%s nodes=%lld obj=%.6g lb=%.6g gap=%.2f%% root_lp=%.6g "
      "(rows=%lld) root_lagr=%.6g fixed=%lld\n",
      sol.status.ToString().c_str(), static_cast<long long>(sol.nodes),
      sol.objective, sol.lower_bound, 100 * sol.gap, sol.root_lp_bound,
      static_cast<long long>(sol.root_lp_rows), sol.root_lagrangian_bound,
      static_cast<long long>(sol.variables_fixed));
  return 0;
}
