// Online tuning under workload drift: a session with decayed statement
// weights (half-life one epoch), drift detection, a materialize/drop
// hysteresis window, and DBA feedback. Each round ticks the epoch
// clock, re-weights the persistent templates (pure re-weighting: zero
// preparation work) and opens one short-lived template burst, then
// warm-retunes. The rows show the drift score, the raw recommendation
// churning with the bursts, and the applied configuration the
// hysteresis window actually changes. Halfway through, the DBA vetoes
// an index out of the applied set and accepts another — both verdicts
// become equality rows in every later solve.
//
//   $ ./drift_demo [rounds] [hysteresis_window]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "optimizer/simulator.h"
#include "catalog/catalog.h"
#include "core/report.h"
#include "core/session.h"
#include "workload/generator.h"

using namespace cophy;

namespace {

std::string Ids(const std::vector<IndexId>& v) {
  std::string out = "{";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 8;
  const int window = argc > 2 ? std::atoi(argv[2]) : 3;

  Catalog catalog = MakeTpchCatalog(1.0, 0.5);
  IndexPool pool;
  SystemSimulator system(&catalog, &pool, CostModel::SystemA());

  SessionOptions opts;
  opts.tuning.gap_target = 0.01;
  opts.num_shards = 4;
  opts.drift.half_life_epochs = 1.0;  // one epoch per round below
  opts.drift.materialize_after = window;
  opts.drift.drop_after = window;
  AdvisorSession session(&system, &pool, opts);
  ConstraintSet cs;
  cs.SetStorageBudget(0.1 * catalog.TotalDataBytes());

  std::printf("%d rounds, half-life 1 epoch, hysteresis window %d\n\n",
              rounds, window);
  std::printf("%-6s %7s %5s %5s %-28s %s\n", "round", "drift", "new",
              "churn", "recommended", "applied");

  std::vector<QueryId> burst_ids;
  std::vector<IndexId> prev_rec;
  for (int r = 0; r < rounds; ++r) {
    if (r > 0) session.AdvanceEpoch();  // lazy: costs nothing by itself

    // The persistent core re-arrives re-weighted (same statements →
    // same cost-equivalence classes → zero preparation work), heavier
    // on low templates as the run progresses.
    std::vector<Query> batch;
    for (int t = 0; t < 6; ++t) {
      Query q = MakeHomogeneousStatement(catalog, t, 42);
      q.weight = 24.0 / std::pow(t + 1.0, 1.0 + 0.1 * r);
      batch.push_back(std::move(q));
    }
    session.AddStatements(batch);

    // One short-lived burst from a template outside the core; last
    // round's burst departs. This is what churns the raw
    // recommendation round over round.
    if (!burst_ids.empty() &&
        !session.RemoveStatements(burst_ids).ok()) {
      return 1;
    }
    std::vector<Query> burst;
    for (int i = 0; i < 2; ++i) {
      Query q = MakeHomogeneousStatement(catalog, 6 + r % 9, 900 + 10 * r + i);
      q.weight = 9.0;
      burst.push_back(std::move(q));
    }
    burst_ids = session.AddStatements(burst);

    const Recommendation rec = r == 0 ? session.Tune(cs) : session.Retune(cs);
    if (!rec.status.ok()) {
      std::fprintf(stderr, "round %d failed: %s\n", r,
                   rec.status.ToString().c_str());
      return 1;
    }
    const bool churned = r > 0 && rec.configuration.ids() != prev_rec;
    prev_rec = rec.configuration.ids();
    std::printf("%-6d %7.3f %5d %5s %-28s %s\n", r, rec.prepare.drift_score,
                rec.prepare.drift_new_classes, churned ? "yes" : "-",
                Ids(rec.configuration.ids()).c_str(),
                Ids(rec.materialization.applied).c_str());

    // Mid-run the DBA steps in: veto the applied set's last index,
    // accept its first. Both compile into x_i = 0 / x_i = 1 rows in
    // every later solve; the veto also force-drops the index from the
    // applied configuration immediately.
    if (r == rounds / 2 && rec.materialization.applied.size() >= 2) {
      const IndexId veto = rec.materialization.applied.back();
      const IndexId accept = rec.materialization.applied.front();
      if (!session.Veto(veto).ok() || !session.Accept(accept).ok()) return 1;
      std::printf("       DBA: veto %d, accept %d\n", veto, accept);
    }
  }

  std::printf("\n%s", RenderPrepareStats(session.prepare_stats()).c_str());
  return 0;
}
