// Sharded advisor sessions: the advisor as a long-lived service
// absorbing a statement stream. Statements arrive in batches; after
// each batch the session re-tunes incrementally — only the shards whose
// cost-equivalence classes changed re-prepare, and the solver restarts
// warm from the previous incumbent, presolve reductions, and duals.
// The final steps remove a batch and re-tune again, then compare the
// cumulative incremental cost against one cold end-to-end Tune.
//
//   $ ./session_demo [num_statements] [num_shards] [num_batches]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "optimizer/simulator.h"
#include "catalog/catalog.h"
#include "common/stopwatch.h"
#include "core/report.h"
#include "core/session.h"
#include "workload/generator.h"

using namespace cophy;

int main(int argc, char** argv) {
  const int num_statements = argc > 1 ? std::atoi(argv[1]) : 1000;
  const int num_shards = argc > 2 ? std::atoi(argv[2]) : 4;
  const int num_batches = argc > 3 ? std::atoi(argv[3]) : 5;

  Catalog catalog = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator system(&catalog, &pool, CostModel::SystemA());
  WorkloadOptions wopts;
  wopts.num_statements = num_statements;
  wopts.seed = 7;
  const Workload workload = MakeHomogeneousWorkload(catalog, wopts);

  SessionOptions opts;
  opts.tuning.gap_target = 0.05;
  opts.tuning.prepare.num_threads = 0;  // hardware
  opts.num_shards = num_shards;
  AdvisorSession session(&system, &pool, opts);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * catalog.TotalDataBytes());

  std::printf("streaming %d statements in %d batches over %d shards\n\n",
              num_statements, num_batches, session.num_shards());
  std::printf("%-22s %9s %9s %9s %9s %11s\n", "step", "stmts", "classes",
              "retune_ms", "nodes", "est. cost");

  const int batch = (num_statements + num_batches - 1) / num_batches;
  std::vector<QueryId> first_batch_ids;
  double incremental_total = 0;
  for (int b = 0; b < num_batches; ++b) {
    const int lo = b * batch;
    const int hi = std::min(num_statements, lo + batch);
    if (lo >= hi) break;
    std::vector<Query> stmts(workload.statements().begin() + lo,
                             workload.statements().begin() + hi);
    Stopwatch watch;
    const std::vector<QueryId> ids = session.AddStatements(stmts);
    const Recommendation rec = b == 0 ? session.Tune(cs) : session.Retune(cs);
    const double ms = watch.Elapsed() * 1e3;
    incremental_total += ms;
    if (b == 0) first_batch_ids = ids;
    if (!rec.status.ok()) {
      std::fprintf(stderr, "retune failed: %s\n",
                   rec.status.ToString().c_str());
      return 1;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "batch %d (+%d)", b + 1,
                  static_cast<int>(ids.size()));
    std::printf("%-22s %9d %9d %9.1f %9lld %11.4g\n", label,
                session.num_statements(), session.num_classes(), ms,
                static_cast<long long>(rec.nodes), rec.objective);
  }

  // The stream also shrinks: retire the first batch and re-tune.
  {
    Stopwatch watch;
    if (!session.RemoveStatements(first_batch_ids).ok()) return 1;
    const Recommendation rec = session.Retune(cs);
    const double ms = watch.Elapsed() * 1e3;
    incremental_total += ms;
    if (!rec.status.ok()) return 1;
    char label[32];
    std::snprintf(label, sizeof(label), "remove (-%d)",
                  static_cast<int>(first_batch_ids.size()));
    std::printf("%-22s %9d %9d %9.1f %9lld %11.4g\n", label,
                session.num_statements(), session.num_classes(), ms,
                static_cast<long long>(rec.nodes), rec.objective);
  }

  std::printf("\n%s", RenderPrepareStats(session.prepare_stats()).c_str());
  std::printf("warm re-solves: %lld of %lld accepted the previous state\n",
              static_cast<long long>(session.resolve_state().warm_reuses),
              static_cast<long long>(session.resolve_state().solves));
  std::printf("cumulative incremental time: %.1f ms\n", incremental_total);
  return 0;
}
