// Quickstart: tune a TPC-H-like workload with CoPhy under a storage
// budget, then evaluate the recommendation against the what-if
// optimizer's ground truth.
//
//   $ ./quickstart [num_queries] [budget_fraction]
#include <cstdio>
#include <cstdlib>

#include "optimizer/simulator.h"
#include "baselines/advisor.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "core/report.h"
#include "workload/generator.h"

using namespace cophy;

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 100;
  const double budget_fraction = argc > 2 ? std::atof(argv[2]) : 0.5;

  // 1. The database: TPC-H statistics at SF 1, uniform data (z = 0).
  Catalog catalog = MakeTpchCatalog(/*sf=*/1.0, /*z=*/0.0);
  IndexPool pool;
  SystemSimulator system(&catalog, &pool, CostModel::SystemA());

  // 2. A homogeneous workload (15 TPC-H-like templates).
  WorkloadOptions wopts;
  wopts.num_statements = num_queries;
  wopts.seed = 42;
  Workload workload = MakeHomogeneousWorkload(catalog, wopts);
  std::printf("workload: %d statements\n", workload.size());
  std::printf("sample statement: %s\n",
              workload[0].ToString(catalog).c_str());

  // 3. Tune with CoPhy: compression + candidate generation + parallel
  // INUM + BIP solve.
  CoPhyOptions opts;
  opts.gap_target = 0.05;           // stop within 5% of optimal
  opts.prepare.num_threads = 0;     // use every core for preparation
  CoPhy advisor(&system, &pool, workload, opts);
  if (Status s = advisor.Prepare(); !s.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("candidates generated: %zu\n", advisor.candidates().size());
  std::printf("%s", RenderPrepareStats(advisor.prepared().stats()).c_str());

  ConstraintSet constraints;
  constraints.SetStorageBudget(budget_fraction * catalog.TotalDataBytes());
  Recommendation rec = advisor.Tune(constraints);
  if (!rec.status.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n", rec.status.ToString().c_str());
    return 1;
  }

  std::printf("\nBIP: %lld y-vars, %lld x-vars, %lld z-vars, %lld rows\n",
              static_cast<long long>(rec.bip.y_variables),
              static_cast<long long>(rec.bip.x_variables),
              static_cast<long long>(rec.bip.z_variables),
              static_cast<long long>(rec.bip.assignment_rows +
                                     rec.bip.linking_rows +
                                     rec.bip.constraint_rows));
  std::printf("timings: INUM %.2fs, build %.2fs, solve %.2fs (gap %.1f%%)\n",
              rec.timings.inum_seconds, rec.timings.build_seconds,
              rec.timings.solve_seconds, 100 * rec.gap);

  // 4. The DBA-facing report: which statements improve, which index
  // earns its storage.
  const TuningReport report = AnalyzeRecommendation(advisor.inum(), rec);
  std::printf("\n%s\n", RenderTuningReport(report, advisor.inum(), 8).c_str());

  // 5. Ground truth: perf(X*, W) via direct what-if optimization.
  const double perf = Perf(system, workload, rec.configuration);
  std::printf("\nperf(X*, W) = %.1f%% cost reduction vs clustered-PK baseline\n",
              100 * perf);
  std::printf("example plan change for statement 0:\n%s",
              system.Explain(workload[0], rec.configuration).c_str());
  return 0;
}
