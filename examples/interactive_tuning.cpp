// Interactive tuning (§4.2): an exploratory DBA session. Tune once,
// then iterate: add hand-picked candidate indexes, tighten the budget,
// and re-tune — each re-solve reuses the previous computation and
// returns in a fraction of the initial time.
//
//   $ ./interactive_tuning [num_queries]
#include <cstdio>
#include <cstdlib>

#include "optimizer/simulator.h"
#include "baselines/advisor.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "workload/generator.h"

using namespace cophy;

namespace {

void Report(const char* label, const Recommendation& rec,
            const IndexPool& pool, const Catalog& cat) {
  std::printf("%-18s %2d indexes, %6.1f MB, est. cost %.4g, "
              "%.2fs (inum %.2f + build %.2f + solve %.2f)\n",
              label, rec.configuration.size(),
              rec.configuration.SizeBytes(pool, cat) / 1e6, rec.objective,
              rec.timings.Total(), rec.timings.inum_seconds,
              rec.timings.build_seconds, rec.timings.solve_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 150;

  Catalog catalog = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator system(&catalog, &pool, CostModel::SystemA());
  WorkloadOptions wopts;
  wopts.num_statements = num_queries;
  wopts.seed = 7;
  Workload workload = MakeHomogeneousWorkload(catalog, wopts);

  CoPhyOptions opts;
  opts.gap_target = 0.05;
  CoPhy advisor(&system, &pool, workload, opts);
  if (!advisor.Prepare().ok()) return 1;
  std::printf("session prepared: %zu candidates\n\n",
              advisor.candidates().size());

  // Step 1: initial recommendation under a 50% budget.
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * catalog.TotalDataBytes());
  Recommendation rec = advisor.Tune(cs);
  if (!rec.status.ok()) return 1;
  Report("initial", rec, pool, catalog);

  // Step 2: the DBA suspects a covering index on lineitem would help
  // and adds it (plus a couple of variants) to S — the paper's S_DBA.
  const TableId lineitem = catalog.FindTable("lineitem");
  Index dba;
  dba.table = lineitem;
  dba.key_columns = {catalog.FindColumn(lineitem, "l_shipdate"),
                     catalog.FindColumn(lineitem, "l_discount")};
  dba.include_columns = {catalog.FindColumn(lineitem, "l_extendedprice"),
                         catalog.FindColumn(lineitem, "l_quantity")};
  std::vector<IndexId> added;
  const int before = pool.size();
  const IndexId id = pool.Add(dba);
  if (pool.size() > before) {
    added.push_back(id);
    if (!advisor.AddCandidates(added).ok()) return 1;
    std::printf("\nadded DBA candidate: %s\n",
                pool[id].ToString(catalog).c_str());
  }
  rec = advisor.Retune(cs);
  Report("retune (+DBA)", rec, pool, catalog);
  std::printf("  DBA index %s\n",
              rec.configuration.Contains(id) ? "was selected"
                                             : "was not selected");

  // Step 3: the budget is cut in half; re-tune again.
  cs.SetStorageBudget(0.25 * catalog.TotalDataBytes());
  rec = advisor.Retune(cs);
  Report("retune (M=0.25)", rec, pool, catalog);

  // Step 4: and relaxed way up.
  cs.SetStorageBudget(2.0 * catalog.TotalDataBytes());
  rec = advisor.Retune(cs);
  Report("retune (M=2)", rec, pool, catalog);

  const double perf = Perf(system, workload, rec.configuration);
  std::printf("\nfinal configuration: %.1f%% workload cost reduction\n",
              100 * perf);
  return 0;
}
