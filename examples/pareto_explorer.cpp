// Soft constraints and the Pareto frontier (§4.1, Fig. 6(c), App. D):
// replace the hard storage budget with a soft one and explore the
// storage-vs-cost trade-off, first on the fixed λ grid and then with
// the Chord algorithm's adaptive probing.
//
//   $ ./pareto_explorer [num_queries]
#include <cstdio>
#include <cstdlib>

#include "optimizer/simulator.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "workload/generator.h"

using namespace cophy;

namespace {

void PrintCurve(const char* title, const std::vector<ParetoPoint>& points) {
  std::printf("%s\n", title);
  std::printf("  %-6s %12s %12s %6s %9s\n", "λ", "est. cost", "size (MB)",
              "|X|", "time (s)");
  for (const ParetoPoint& p : points) {
    std::printf("  %-6.3f %12.4g %12.1f %6d %9.2f\n", p.lambda,
                p.workload_cost, p.soft_value / 1e6, p.configuration.size(),
                p.seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 120;

  Catalog catalog = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator system(&catalog, &pool, CostModel::SystemA());
  WorkloadOptions wopts;
  wopts.num_statements = num_queries;
  wopts.seed = 4;
  Workload workload = MakeHomogeneousWorkload(catalog, wopts);

  CoPhyOptions opts;
  opts.gap_target = 0.05;
  CoPhy advisor(&system, &pool, workload, opts);
  if (!advisor.Prepare().ok()) return 1;

  // The DBA makes storage *soft*: solutions may use space freely, but
  // every extra byte must buy workload cost (§5.4 sets the soft budget
  // to zero to expose the whole trade-off curve).
  ConstraintSet cs;
  cs.AddSoftStorage(0.0);

  PrintCurve("fixed λ grid (Fig. 6(c)):",
             advisor.TuneSoftGrid(cs, {1.0, 0.75, 0.5, 0.25, 0.0}));

  std::printf("\n");
  PrintCurve("Chord algorithm (adaptive, ε = 2%):",
             advisor.TuneSoftChord(cs, /*epsilon=*/0.02, /*max_points=*/9));

  std::printf(
      "\nReading the curve: pick the knee — beyond it, additional storage "
      "buys little cost.\nHard constraints (e.g. a count limit) can be "
      "combined with the soft sweep through the same ConstraintSet.\n");
  return 0;
}
