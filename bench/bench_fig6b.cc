// Figure 6(b): interactive re-tuning — time to recompute the
// recommendation after the DBA adds {10, 25, 50, 100} candidate
// indexes, vs the initial solve. Expected shape: retunes are roughly an
// order of magnitude cheaper than the initial solve (warm starts +
// incremental INUM), growing mildly with the number of added indexes.
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/cophy.h"
#include "index/candidates.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const int n = EnvInt("COPHY_BENCH_N", 1000);
  Env e = Env::Make(0.0, false, n, false);
  ConstraintSet cs = e.BudgetConstraint(1.0);

  // Initial tuning session on a subset of the candidates (the paper
  // starts from S_1000 ⊂ S_ALL and adds random members of the rest).
  std::vector<IndexId> all =
      GenerateCandidates(e.workload, e.catalog, CandidateOptions{}, e.pool);
  Rng rng(77);
  std::vector<IndexId> extra_pool =
      PadWithRandomIndexes(e.catalog, 200, rng, e.pool);

  CoPhyOptions opts = DefaultCoPhyOptions();
  opts.time_limit_seconds = 120;
  CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
  std::vector<IndexId> initial(all.begin(),
                               all.begin() + all.size() * 3 / 4);
  if (!advisor.PrepareWithCandidates(initial).ok()) return 1;
  const Recommendation first = advisor.Tune(cs);

  Title("Figure 6(b): time to recompute after adding candidates");
  std::printf("%-12s %8s %8s %8s %8s\n", "session", "inum", "build", "solve",
              "total");
  std::printf("%-12s %8.1f %8.1f %8.1f %8.1f\n", "initial",
              first.timings.inum_seconds, first.timings.build_seconds,
              first.timings.solve_seconds, first.timings.Total());

  size_t cursor = 0;
  for (int delta : {10, 25, 50, 100}) {
    std::vector<IndexId> add;
    for (int i = 0; i < delta && cursor < extra_pool.size(); ++i) {
      add.push_back(extra_pool[cursor++]);
    }
    if (!advisor.AddCandidates(add).ok()) return 1;
    const Recommendation rec = advisor.Retune(cs);
    std::printf("%-12s %8.1f %8.1f %8.1f %8.1f\n",
                ("+" + std::to_string(delta)).c_str(),
                rec.timings.inum_seconds, rec.timings.build_seconds,
                rec.timings.solve_seconds, rec.timings.Total());
  }
  return 0;
}
