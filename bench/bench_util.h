// Shared setup for the reproduction benchmarks: experiment fixtures
// (catalog + system + workload + advisors) and the table printer used
// to emit paper-style rows. Every bench binary regenerates one table
// or figure of the paper (see DESIGN.md §3 for the index).
#ifndef COPHY_BENCH_BENCH_UTIL_H_
#define COPHY_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "optimizer/simulator.h"
#include "baselines/advisor.h"
#include "baselines/cophy_advisor.h"
#include "baselines/greedy_advisor.h"
#include "baselines/ilp_advisor.h"
#include "baselines/relaxation_advisor.h"
#include "catalog/catalog.h"
#include "common/stopwatch.h"
#include "workload/generator.h"

namespace cophy::bench {

/// One experiment environment: a skewable TPC-H catalog, a shared index
/// pool, and a simulated system (profile A or B).
struct Env {
  Catalog catalog;
  IndexPool pool;
  std::unique_ptr<SystemSimulator> system;
  Workload workload;

  static Env Make(double z, bool system_b, int num_statements, bool het,
                  uint64_t seed = 42, double sf = 1.0) {
    Env e;
    e.catalog = MakeTpchCatalog(sf, z);
    e.system = std::make_unique<SystemSimulator>(
        &e.catalog, &e.pool,
        system_b ? CostModel::SystemB() : CostModel::SystemA());
    WorkloadOptions o;
    o.num_statements = num_statements;
    o.seed = seed;
    e.workload = het ? MakeHeterogeneousWorkload(e.catalog, o)
                     : MakeHomogeneousWorkload(e.catalog, o);
    return e;
  }

  /// The paper's space budget: a fraction M of the total data size.
  ConstraintSet BudgetConstraint(double m) const {
    ConstraintSet cs;
    cs.SetStorageBudget(m * catalog.TotalDataBytes());
    return cs;
  }
};

/// Default solver knobs used across benches (paper setup: return the
/// first solution within 5% of optimal; node cap bounds the anytime
/// search on hard instances).
inline CoPhyOptions DefaultCoPhyOptions() {
  CoPhyOptions opts;
  opts.gap_target = 0.05;
  opts.node_limit = 8000;
  return opts;
}

/// Progress callback recording the first time the *proven* gap reached
/// `target` into *out (initialized to -1 = never). Shared by the
/// time-to-proof columns of bench_scale / bench_ablation / bench_micro
/// so the JSON artifacts stay consistent.
inline std::function<bool(const lp::MipProgress&)> ProofTimer(
    double* out, double target = 0.10) {
  *out = -1;
  return [out, target](const lp::MipProgress& pr) {
    if (*out < 0 && pr.has_incumbent && pr.gap <= target) {
      *out = pr.seconds;
    }
    return true;
  };
}

/// Root-gap column: 100·(objective − bound)/objective, or -1 when the
/// bound is absent (LP skipped) or the objective degenerate.
inline double RootGapPct(double objective, double bound) {
  return objective > 0 && std::isfinite(bound)
             ? 100 * (objective - bound) / objective
             : -1.0;
}

/// Prints a separator + table title.
inline void Title(const std::string& t) {
  std::printf("\n=== %s ===\n", t.c_str());
}

/// Prints one row of "name: value" pairs (fixed widths keep the output
/// diffable across runs).
inline void Row(const std::vector<std::pair<std::string, std::string>>& cells) {
  for (const auto& [k, v] : cells) {
    std::printf("%s=%-14s ", k.c_str(), v.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// The one JSON artifact writer for every bench binary. Emits the
/// google-benchmark envelope — {"context": {...}, "benchmarks": [...]}
/// — so bench_service.json / bench_scale.json / bench_ablation.json
/// parse with the same three lines of CI python as the native
/// bench_micro.json. The context always carries the bench name, the git
/// revision (GITHUB_SHA, else COPHY_GIT_REV, else "unknown") and the
/// hardware thread count; add run configuration with Context() and one
/// row per measurement with BeginRow() + Metric().
class BenchJson {
 public:
  explicit BenchJson(const std::string& benchmark) {
    Context("benchmark", benchmark);
    const char* rev = std::getenv("GITHUB_SHA");
    if (rev == nullptr) rev = std::getenv("COPHY_GIT_REV");
    Context("git_rev", rev != nullptr ? rev : "unknown");
    Context("hardware_threads",
            static_cast<int64_t>(std::thread::hardware_concurrency()));
  }

  BenchJson& Context(const std::string& key, const std::string& v) {
    context_.emplace_back(key, Quote(v));
    return *this;
  }
  BenchJson& Context(const std::string& key, const char* v) {
    return Context(key, std::string(v));
  }
  BenchJson& Context(const std::string& key, double v) {
    context_.emplace_back(key, Num(v));
    return *this;
  }
  BenchJson& Context(const std::string& key, int64_t v) {
    context_.emplace_back(key, std::to_string(v));
    return *this;
  }
  BenchJson& Context(const std::string& key, int v) {
    return Context(key, static_cast<int64_t>(v));
  }

  /// Starts a new benchmarks[] row; Metric() calls append to it.
  BenchJson& BeginRow(const std::string& name) {
    rows_.push_back({name, {}});
    return *this;
  }
  BenchJson& Metric(const std::string& key, const std::string& v) {
    rows_.back().fields.emplace_back(key, Quote(v));
    return *this;
  }
  BenchJson& Metric(const std::string& key, const char* v) {
    return Metric(key, std::string(v));
  }
  BenchJson& Metric(const std::string& key, double v) {
    rows_.back().fields.emplace_back(key, Num(v));
    return *this;
  }
  BenchJson& Metric(const std::string& key, int64_t v) {
    rows_.back().fields.emplace_back(key, std::to_string(v));
    return *this;
  }
  BenchJson& Metric(const std::string& key, int v) {
    return Metric(key, static_cast<int64_t>(v));
  }

  /// Writes the artifact (and logs the path). Returns false on I/O
  /// error so benches can exit nonzero.
  bool Write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"context\": {");
    WriteFields(f, context_);
    std::fprintf(f, "},\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {\"name\": %s", Quote(rows_[i].name).c_str());
      if (!rows_[i].fields.empty()) std::fprintf(f, ", ");
      WriteFields(f, rows_[i].fields);
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static void WriteFields(std::FILE* f, const Fields& fields) {
    for (size_t i = 0; i < fields.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %s", i > 0 ? ", " : "",
                   fields[i].first.c_str(), fields[i].second.c_str());
    }
  }
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }
  /// JSON has no inf/nan; the benches' "never happened" sentinel is -1.
  static std::string Num(double v) {
    if (!std::isfinite(v)) return "-1";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  struct JsonRow {
    std::string name;
    Fields fields;
  };
  Fields context_;
  std::vector<JsonRow> rows_;
};

}  // namespace cophy::bench

#endif  // COPHY_BENCH_BENCH_UTIL_H_
