// Shared setup for the reproduction benchmarks: experiment fixtures
// (catalog + system + workload + advisors) and the table printer used
// to emit paper-style rows. Every bench binary regenerates one table
// or figure of the paper (see DESIGN.md §3 for the index).
#ifndef COPHY_BENCH_BENCH_UTIL_H_
#define COPHY_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "optimizer/simulator.h"
#include "baselines/advisor.h"
#include "baselines/cophy_advisor.h"
#include "baselines/greedy_advisor.h"
#include "baselines/ilp_advisor.h"
#include "baselines/relaxation_advisor.h"
#include "catalog/catalog.h"
#include "common/stopwatch.h"
#include "workload/generator.h"

namespace cophy::bench {

/// One experiment environment: a skewable TPC-H catalog, a shared index
/// pool, and a simulated system (profile A or B).
struct Env {
  Catalog catalog;
  IndexPool pool;
  std::unique_ptr<SystemSimulator> system;
  Workload workload;

  static Env Make(double z, bool system_b, int num_statements, bool het,
                  uint64_t seed = 42, double sf = 1.0) {
    Env e;
    e.catalog = MakeTpchCatalog(sf, z);
    e.system = std::make_unique<SystemSimulator>(
        &e.catalog, &e.pool,
        system_b ? CostModel::SystemB() : CostModel::SystemA());
    WorkloadOptions o;
    o.num_statements = num_statements;
    o.seed = seed;
    e.workload = het ? MakeHeterogeneousWorkload(e.catalog, o)
                     : MakeHomogeneousWorkload(e.catalog, o);
    return e;
  }

  /// The paper's space budget: a fraction M of the total data size.
  ConstraintSet BudgetConstraint(double m) const {
    ConstraintSet cs;
    cs.SetStorageBudget(m * catalog.TotalDataBytes());
    return cs;
  }
};

/// Default solver knobs used across benches (paper setup: return the
/// first solution within 5% of optimal; node cap bounds the anytime
/// search on hard instances).
inline CoPhyOptions DefaultCoPhyOptions() {
  CoPhyOptions opts;
  opts.gap_target = 0.05;
  opts.node_limit = 8000;
  return opts;
}

/// Progress callback recording the first time the *proven* gap reached
/// `target` into *out (initialized to -1 = never). Shared by the
/// time-to-proof columns of bench_scale / bench_ablation / bench_micro
/// so the JSON artifacts stay consistent.
inline std::function<bool(const lp::MipProgress&)> ProofTimer(
    double* out, double target = 0.10) {
  *out = -1;
  return [out, target](const lp::MipProgress& pr) {
    if (*out < 0 && pr.has_incumbent && pr.gap <= target) {
      *out = pr.seconds;
    }
    return true;
  };
}

/// Root-gap column: 100·(objective − bound)/objective, or -1 when the
/// bound is absent (LP skipped) or the objective degenerate.
inline double RootGapPct(double objective, double bound) {
  return objective > 0 && std::isfinite(bound)
             ? 100 * (objective - bound) / objective
             : -1.0;
}

/// Prints a separator + table title.
inline void Title(const std::string& t) {
  std::printf("\n=== %s ===\n", t.c_str());
}

/// Prints one row of "name: value" pairs (fixed widths keep the output
/// diffable across runs).
inline void Row(const std::vector<std::pair<std::string, std::string>>& cells) {
  for (const auto& [k, v] : cells) {
    std::printf("%s=%-14s ", k.c_str(), v.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace cophy::bench

#endif  // COPHY_BENCH_BENCH_UTIL_H_
