// Figure 4: advisor wall-clock time vs workload size (250/500/1000,
// homogeneous, z = 0, M = 1). Left panel: Tool-A vs CoPhyA on
// System-A; right panel: Tool-B vs CoPhyB on System-B. The expected
// shape: Tool-A grows super-linearly, CoPhy stays flat-ish and is the
// fastest at 500/1000.
#include <cstdlib>

#include "bench/bench_util.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const double scale = EnvInt("COPHY_BENCH_SCALE_PCT", 100) / 100.0;
  const double toola_cap = EnvInt("COPHY_TOOLA_TIMECAP", 300);

  Title("Figure 4: execution time vs workload size (seconds)");
  std::printf("%-6s %10s %10s %10s %10s\n", "|W|", "Tool-A", "CoPhyA",
              "Tool-B", "CoPhyB");
  for (int base_n : {250, 500, 1000}) {
    const int n = static_cast<int>(base_n * scale);
    // System A: Tool-A vs CoPhyA.
    Env ea = Env::Make(0.0, false, n, false);
    ConstraintSet cs_a = ea.BudgetConstraint(1.0);
    RelaxationOptions ra;
    ra.time_limit_seconds = toola_cap;
    RelaxationAdvisor tool_a(ea.system.get(), &ea.pool, ea.workload, ra);
    const AdvisorResult rta = tool_a.Recommend(cs_a);
    CoPhyAdvisor cophy_a(ea.system.get(), &ea.pool, ea.workload,
                         DefaultCoPhyOptions());
    const AdvisorResult rca = cophy_a.Recommend(cs_a);

    // System B: Tool-B vs CoPhyB.
    Env eb = Env::Make(0.0, true, n, false);
    ConstraintSet cs_b = eb.BudgetConstraint(1.0);
    GreedyAdvisor tool_b(eb.system.get(), &eb.pool, eb.workload,
                         GreedyOptions{});
    const AdvisorResult rtb = tool_b.Recommend(cs_b);
    CoPhyAdvisor cophy_b(eb.system.get(), &eb.pool, eb.workload,
                         DefaultCoPhyOptions());
    const AdvisorResult rcb = cophy_b.Recommend(cs_b);

    std::printf("%-6d %9.1f%s %10.1f %10.1f %10.1f\n", n,
                rta.TotalSeconds(), rta.timed_out ? "*" : " ",
                rca.TotalSeconds(), rtb.TotalSeconds(), rcb.TotalSeconds());
  }
  std::printf("(* = Tool-A hit its %.0fs wall-clock cap)\n", toola_cap);
  return 0;
}
