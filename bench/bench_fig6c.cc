// Figure 6(c): soft-constraint handling — time to generate the five
// representative Pareto-optimal points λ ∈ {0, .25, .5, .75, 1} for a
// soft storage constraint (Σ size(a) ⇒ 0), on W_hom_1000. Expected
// shape: the first point pays the full solve; subsequent points reuse
// the computation (warm starts) and are several times cheaper.
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/cophy.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const int n = EnvInt("COPHY_BENCH_N", 1000);
  Env e = Env::Make(0.0, false, n, false);

  CoPhyOptions opts = DefaultCoPhyOptions();
  opts.time_limit_seconds = 120;
  CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
  if (!advisor.Prepare().ok()) return 1;

  ConstraintSet cs;
  cs.AddSoftStorage(0.0);  // the paper's soft constraint Σ size(a) = 0

  // The first point pays the full solve; the remaining λ values reuse
  // its computation (Fig. 6(c): one tall bar, four short ones).
  const std::vector<double> lambdas{1.0, 0.75, 0.5, 0.25, 0.0};
  const auto points = advisor.TuneSoftGrid(cs, lambdas);

  Title("Figure 6(c): time per Pareto point (soft storage constraint)");
  std::printf("%-6s %10s %14s %14s %8s\n", "λ", "seconds", "workload-cost",
              "size(GB)", "|X|");
  for (const ParetoPoint& p : points) {
    std::printf("%-6.2f %10.1f %14.4g %14.3f %8d\n", p.lambda, p.seconds,
                p.workload_cost, p.soft_value / 1e9, p.configuration.size());
  }
  return 0;
}
