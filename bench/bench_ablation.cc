// Ablations over CoPhy's design choices (DESIGN.md §4):
//   1. Root relaxation machinery on a *tight* budget — presolve, root
//      LP (dual seed + reduced-cost fixing), and Lagrangian on/off.
//      Emits bench_ablation.json; CI gates on the full configuration's
//      proven gap (bench/ablation_gap_threshold.txt).
//   2. Warm starts on/off — interactive retune cost.
//   3. INUM vs direct what-if inside the advisor loop — the speedup
//      fast what-if provides (the paper's foundational assumption).
//   4. Candidate-set richness (extra variants on/off) — quality impact
//      of CGen's no-pruning philosophy.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "core/bipgen.h"
#include "core/cophy.h"
#include "index/candidates.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main(int argc, char** argv) {
  const int n = EnvInt("COPHY_BENCH_N", 500);
  const double time_limit = EnvInt("COPHY_BENCH_TIME_LIMIT", 60);
  const char* json_path = argc > 1 ? argv[1] : "bench_ablation.json";

  Title("Ablation 1: root bounds on a tight budget (hom workload, M=0.25)");
  BenchJson json("bench_ablation");
  json.Context("statements", n).Context("time_limit_seconds", time_limit);
  {
    struct Config {
      const char* name;
      bool presolve, root_lp, lagrangian;
    };
    const Config configs[] = {
        {"full", true, true, true},
        {"no_root_lp", true, false, true},
        {"no_lagrangian", true, true, false},
        {"baseline", false, false, false},
    };
    for (const Config& c : configs) {
      Env e = Env::Make(0.0, false, n, false);
      ConstraintSet cs = e.BudgetConstraint(0.25);
      CoPhyOptions opts = DefaultCoPhyOptions();
      opts.presolve = c.presolve;
      opts.root_lp = c.root_lp;
      opts.lagrangian = c.lagrangian;
      opts.time_limit_seconds = time_limit;
      // Time-to-proof: first moment the *proven* gap reaches 10%.
      double proof10_seconds = -1;
      opts.callback = ProofTimer(&proof10_seconds);
      CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
      advisor.Prepare();
      const Recommendation rec = advisor.Tune(cs);
      const double root_gap = RootGapPct(rec.objective, rec.root_lp_bound);
      Row({{"config", c.name},
           {"solve_s", Fmt("%.1f", rec.timings.solve_seconds)},
           {"gap_pct", Fmt("%.1f", 100 * rec.gap)},
           {"root_gap_pct", Fmt("%.1f", root_gap)},
           {"proof10_s", Fmt("%.2f", proof10_seconds)},
           {"fixed", std::to_string(rec.variables_fixed)},
           {"objective", Fmt("%.4g", rec.objective)}});
      json.BeginRow(std::string("ablation1/") + c.name)
          .Metric("config", c.name)
          .Metric("statements", n)
          .Metric("solve_seconds", rec.timings.solve_seconds)
          .Metric("proven_gap_pct", 100 * rec.gap)
          .Metric("root_gap_pct", root_gap)
          .Metric("proof10_seconds", proof10_seconds)
          .Metric("variables_fixed", rec.variables_fixed)
          .Metric("presolve_plans_removed", rec.presolve.PlansRemoved())
          .Metric("presolve_indexes_removed", rec.presolve.IndexesRemoved())
          .Metric("objective", rec.objective);
    }
  }
  json.Write(json_path);

  Title("Ablation 2: warm starts for retuning");
  {
    Env e = Env::Make(0.0, false, n, false);
    ConstraintSet cs = e.BudgetConstraint(1.0);
    CoPhyOptions opts = DefaultCoPhyOptions();
    opts.time_limit_seconds = 60;
    CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
    advisor.Prepare();
    const Recommendation first = advisor.Tune(cs);
    const Recommendation warm = advisor.Retune(cs);   // warm-started
    const Recommendation cold = advisor.Tune(cs);     // from scratch
    Row({{"initial_s", Fmt("%.1f", first.timings.solve_seconds)},
         {"warm_retune_s", Fmt("%.1f", warm.timings.solve_seconds)},
         {"cold_resolve_s", Fmt("%.1f", cold.timings.solve_seconds)}});
  }

  Title("Ablation 3: INUM vs direct what-if costing (per 1000 cost evals)");
  {
    Env e = Env::Make(0.0, false, 50, false);
    std::vector<IndexId> cands =
        GenerateCandidates(e.workload, e.catalog, CandidateOptions{}, e.pool);
    Inum inum(e.system.get());
    inum.Prepare(e.workload, cands);
    const Configuration x(cands);
    Stopwatch w1;
    double sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sink += inum.ShellCost(i % e.workload.size(), x);
    }
    const double inum_s = w1.Elapsed();
    Stopwatch w2;
    for (int i = 0; i < 1000; ++i) {
      sink += e.system->Cost(e.workload[i % e.workload.size()], x).value();
    }
    const double whatif_s = w2.Elapsed();
    Row({{"inum_s", Fmt("%.3f", inum_s)},
         {"whatif_s", Fmt("%.3f", whatif_s)},
         {"speedup_x", Fmt("%.0f", whatif_s / std::max(1e-9, inum_s))},
         {"checksum", Fmt("%.3g", sink)}});
  }

  Title("Ablation 4: candidate-set richness (extra variants)");
  {
    for (bool extra : {false, true}) {
      Env e = Env::Make(0.0, false, n, false);
      ConstraintSet cs = e.BudgetConstraint(1.0);
      CoPhyOptions opts = DefaultCoPhyOptions();
      opts.prepare.candidates.extra_variants = extra;
      opts.time_limit_seconds = 60;
      CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
      advisor.Prepare();
      const Recommendation rec = advisor.Tune(cs);
      Row({{"extra_variants", extra ? "on" : "off"},
           {"candidates", std::to_string(rec.num_candidates)},
           {"perf_pct",
            Fmt("%.1f", 100 * Perf(*e.system, e.workload, rec.configuration))},
           {"total_s", Fmt("%.1f", rec.timings.Total())}});
    }
  }
  return 0;
}
