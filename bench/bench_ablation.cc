// Ablations over CoPhy's design choices (DESIGN.md §4):
//   1. Lagrangian relaxation on/off — bound quality and solve time.
//   2. Warm starts on/off — interactive retune cost.
//   3. INUM vs direct what-if inside the advisor loop — the speedup
//      fast what-if provides (the paper's foundational assumption).
//   4. Candidate-set richness (extra variants on/off) — quality impact
//      of CGen's no-pruning philosophy.
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/bipgen.h"
#include "core/cophy.h"
#include "index/candidates.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const int n = EnvInt("COPHY_BENCH_N", 500);
  Title("Ablation 1: Lagrangian relaxation (hom workload, M=0.5)");
  {
    Env e = Env::Make(0.0, false, n, false);
    ConstraintSet cs = e.BudgetConstraint(0.5);
    for (bool lagrangian : {true, false}) {
      CoPhyOptions opts = DefaultCoPhyOptions();
      opts.lagrangian = lagrangian;
      opts.time_limit_seconds = 60;
      CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
      advisor.Prepare();
      const Recommendation rec = advisor.Tune(cs);
      Row({{"lagrangian", lagrangian ? "on" : "off"},
           {"solve_s", Fmt("%.1f", rec.timings.solve_seconds)},
           {"gap_pct", Fmt("%.1f", 100 * rec.gap)},
           {"objective", Fmt("%.4g", rec.objective)}});
    }
  }

  Title("Ablation 2: warm starts for retuning");
  {
    Env e = Env::Make(0.0, false, n, false);
    ConstraintSet cs = e.BudgetConstraint(1.0);
    CoPhyOptions opts = DefaultCoPhyOptions();
    opts.time_limit_seconds = 60;
    CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
    advisor.Prepare();
    const Recommendation first = advisor.Tune(cs);
    const Recommendation warm = advisor.Retune(cs);   // warm-started
    const Recommendation cold = advisor.Tune(cs);     // from scratch
    Row({{"initial_s", Fmt("%.1f", first.timings.solve_seconds)},
         {"warm_retune_s", Fmt("%.1f", warm.timings.solve_seconds)},
         {"cold_resolve_s", Fmt("%.1f", cold.timings.solve_seconds)}});
  }

  Title("Ablation 3: INUM vs direct what-if costing (per 1000 cost evals)");
  {
    Env e = Env::Make(0.0, false, 50, false);
    std::vector<IndexId> cands =
        GenerateCandidates(e.workload, e.catalog, CandidateOptions{}, e.pool);
    Inum inum(e.system.get());
    inum.Prepare(e.workload, cands);
    const Configuration x(cands);
    Stopwatch w1;
    double sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sink += inum.ShellCost(i % e.workload.size(), x);
    }
    const double inum_s = w1.Elapsed();
    Stopwatch w2;
    for (int i = 0; i < 1000; ++i) {
      sink += e.system->Cost(e.workload[i % e.workload.size()], x);
    }
    const double whatif_s = w2.Elapsed();
    Row({{"inum_s", Fmt("%.3f", inum_s)},
         {"whatif_s", Fmt("%.3f", whatif_s)},
         {"speedup_x", Fmt("%.0f", whatif_s / std::max(1e-9, inum_s))},
         {"checksum", Fmt("%.3g", sink)}});
  }

  Title("Ablation 4: candidate-set richness (extra variants)");
  {
    for (bool extra : {false, true}) {
      Env e = Env::Make(0.0, false, n, false);
      ConstraintSet cs = e.BudgetConstraint(1.0);
      CoPhyOptions opts = DefaultCoPhyOptions();
      opts.prepare.candidates.extra_variants = extra;
      opts.time_limit_seconds = 60;
      CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
      advisor.Prepare();
      const Recommendation rec = advisor.Tune(cs);
      Row({{"extra_variants", extra ? "on" : "off"},
           {"candidates", std::to_string(rec.num_candidates)},
           {"perf_pct",
            Fmt("%.1f", 100 * Perf(*e.system, e.workload, rec.configuration))},
           {"total_s", Fmt("%.1f", rec.timings.Total())}});
    }
  }
  return 0;
}
