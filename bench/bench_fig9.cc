// Figure 9: % speedup on System-B for the *heterogeneous* workloads
// W_het_{250,500,1000} — Tool-B vs CoPhyB. Expected shape: Tool-B's
// sampling-based workload compression misses most of the diverse query
// shapes, so CoPhy wins by a clear margin at every size (contrast with
// the homogeneous Fig. 7 where Tool-B is close).
#include <cstdlib>

#include "bench/bench_util.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const double scale = EnvInt("COPHY_BENCH_SCALE_PCT", 100) / 100.0;
  Title("Figure 9: % speedup on System-B, heterogeneous workload");
  std::printf("%-6s %10s %10s\n", "|W|", "Tool-B", "CoPhyB");
  for (int base_n : {250, 500, 1000}) {
    const int n = static_cast<int>(base_n * scale);
    Env e = Env::Make(0.0, true, n, true);
    ConstraintSet cs = e.BudgetConstraint(1.0);
    GreedyAdvisor tool_b(e.system.get(), &e.pool, e.workload, GreedyOptions{});
    const double perf_t =
        Perf(*e.system, e.workload, tool_b.Recommend(cs).configuration);
    CoPhyOptions copts = DefaultCoPhyOptions();
    copts.time_limit_seconds = 90;
    CoPhyAdvisor cophy(e.system.get(), &e.pool, e.workload, copts);
    const double perf_c =
        Perf(*e.system, e.workload, cophy.Recommend(cs).configuration);
    std::printf("%-6d %9.1f%% %9.1f%%\n", n, 100 * perf_t, 100 * perf_c);
  }
  return 0;
}
