// Figure 8: speedup *ratios* (CoPhyA/Tool-A and CoPhyB/Tool-B) as the
// space budget M varies over {0.5, 1, 2} on W_hom_1000. Expected
// shape: ratios ≥ 1 everywhere; the Tool-A gap shrinks as the budget
// loosens (easy instances need less search).
#include <cstdlib>

#include "bench/bench_util.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const int n = EnvInt("COPHY_BENCH_N", 1000);
  const double toola_cap = EnvInt("COPHY_TOOLA_TIMECAP", 300);

  Title("Figure 8: speedup ratios vs space budget (hom, z=0)");
  std::printf("%-8s %16s %16s\n", "budget", "CoPhyA/Tool-A", "CoPhyB/Tool-B");
  for (double m : {0.5, 1.0, 2.0}) {
    Env ea = Env::Make(0.0, false, n, false);
    ConstraintSet cs_a = ea.BudgetConstraint(m);
    RelaxationOptions ra;
    ra.time_limit_seconds = toola_cap;
    RelaxationAdvisor tool_a(ea.system.get(), &ea.pool, ea.workload, ra);
    const double perf_ta =
        Perf(*ea.system, ea.workload, tool_a.Recommend(cs_a).configuration);
    CoPhyAdvisor cophy_a(ea.system.get(), &ea.pool, ea.workload,
                         DefaultCoPhyOptions());
    const double perf_ca =
        Perf(*ea.system, ea.workload, cophy_a.Recommend(cs_a).configuration);

    Env eb = Env::Make(0.0, true, n, false);
    ConstraintSet cs_b = eb.BudgetConstraint(m);
    GreedyAdvisor tool_b(eb.system.get(), &eb.pool, eb.workload,
                         GreedyOptions{});
    const double perf_tb =
        Perf(*eb.system, eb.workload, tool_b.Recommend(cs_b).configuration);
    CoPhyAdvisor cophy_b(eb.system.get(), &eb.pool, eb.workload,
                         DefaultCoPhyOptions());
    const double perf_cb =
        Perf(*eb.system, eb.workload, cophy_b.Recommend(cs_b).configuration);

    std::printf("M=%-6.1f %16s %16s\n", m,
                Fmt("%.2f", perf_ta > 1e-9 ? perf_ca / perf_ta : 99).c_str(),
                Fmt("%.2f", perf_tb > 1e-9 ? perf_cb / perf_tb : 99).c_str());
  }
  return 0;
}
