// Workload-scaling benchmark for the preparation pipeline: statement
// count (1k → 50k) × {compression off/on} × {1..N threads}, reporting
// Prepare/build/solve seconds, compression ratio, and the thread
// speedup. Emits the same JSON shape as bench_micro (a "context" block
// plus a "benchmarks" array) so CI uploads one perf-trajectory artifact
// per commit.
//
//   bench_scale [max_statements] [threads_csv] [out.json]
//
// Defaults: 10000, "1,2,4,8", bench_scale.json. Pass 50000 for the full
// paper-scale sweep.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "core/cophy.h"
#include "core/session.h"

namespace cophy::bench {
namespace {

struct Sample {
  int statements = 0;
  const char* mode = "";
  int threads = 0;
  PrepareStats prepare;
  double prepare_seconds = 0;
  double build_seconds = 0;  // only measured for the tuned configs
  double solve_seconds = 0;
  double speedup_vs_1thread = 0;
  double objective = 0;
  // Root-bound quality of the tuned configs (-1: not tuned / no bound).
  double proven_gap_pct = -1;   ///< proven optimality gap at return
  double root_gap_pct = -1;     ///< (objective - root LP bound) / objective
  double proof10_seconds = -1;  ///< first time the proven gap hit 10%
  int64_t variables_fixed = 0;  ///< z pinned by reduced-cost fixing
  // Sharded-session columns (1 / -1 for the classic pipeline rows).
  int shards = 1;               ///< session shard count
  double delta_retune_ms = -1;  ///< 1% add/remove delta + warm Retune
  double cold_retune_ms = -1;   ///< cold end-to-end Tune on the modified W
};

std::vector<int> ParseThreads(const char* csv) {
  std::vector<int> out;
  std::string s(csv);
  size_t pos = 0;
  while (pos < s.size()) {
    out.push_back(std::atoi(s.c_str() + pos));
    const size_t comma = s.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Sample RunOne(int n, CompressionMode mode, bool share_templates, int threads,
              bool tune) {
  // A fresh environment per run: Prepare must start cold.
  Env e = Env::Make(0.0, false, n, /*het=*/false, /*seed=*/42);
  CoPhyOptions opts = DefaultCoPhyOptions();
  opts.prepare.compression.mode = mode;
  opts.prepare.share_templates = share_templates;
  opts.prepare.num_threads = threads;
  double proof10 = -1;  // first time the proven gap reaches 10%
  opts.callback = ProofTimer(&proof10);
  CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);

  Sample s;
  s.statements = n;
  s.threads = threads;
  Stopwatch watch;
  if (!advisor.Prepare().ok()) {
    std::fprintf(stderr, "prepare failed (n=%d)\n", n);
    std::exit(1);
  }
  s.prepare_seconds = watch.Elapsed();
  s.prepare = advisor.prepared().stats();
  if (tune) {
    ConstraintSet cs = e.BudgetConstraint(0.5);
    const Recommendation rec = advisor.Tune(cs);
    s.build_seconds = rec.timings.build_seconds;
    s.solve_seconds = rec.timings.solve_seconds;
    s.objective = rec.objective;
    s.proven_gap_pct = 100 * rec.gap;
    s.proof10_seconds = proof10;
    s.variables_fixed = rec.variables_fixed;
    s.root_gap_pct = RootGapPct(rec.objective, rec.root_lp_bound);
  }
  return s;
}

/// Sharded-session benchmark: prepare a session over n statements, tune
/// once cold, apply a 1% add/remove delta, and warm-Retune — against a
/// cold end-to-end Tune over the equivalent modified workload (the
/// incremental-speed acceptance gate lives on these columns).
Sample RunSessionDelta(int n, int shards) {
  Env e = Env::Make(0.0, false, n, /*het=*/false, /*seed=*/42);
  SessionOptions so;
  so.tuning = DefaultCoPhyOptions();
  so.tuning.prepare.num_threads = 0;  // hardware
  so.num_shards = shards;

  Sample s;
  s.statements = n;
  s.mode = "session";
  s.shards = shards;
  s.threads = 0;

  AdvisorSession session(e.system.get(), &e.pool, so);
  const std::vector<QueryId> ids = session.AddWorkload(e.workload);
  ConstraintSet cs = e.BudgetConstraint(0.5);
  const Recommendation first = session.Tune(cs);
  if (!first.status.ok()) {
    std::fprintf(stderr, "session tune failed (n=%d)\n", n);
    std::exit(1);
  }
  s.prepare_seconds = first.timings.inum_seconds;
  s.build_seconds = first.timings.build_seconds;
  s.solve_seconds = first.timings.solve_seconds;
  s.objective = first.objective;
  s.prepare = session.prepare_stats();

  // The 1% delta: remove the first n/100 statements, add as many fresh
  // instances (same generator, different seed).
  const int delta = std::max(1, n / 100);
  WorkloadOptions wo;
  wo.num_statements = delta;
  wo.seed = 43;
  const Workload fresh = MakeHomogeneousWorkload(e.system->catalog(), wo);
  Stopwatch delta_watch;
  std::vector<QueryId> removed(ids.begin(), ids.begin() + delta);
  if (!session.RemoveStatements(removed).ok()) {
    std::fprintf(stderr, "remove failed\n");
    std::exit(1);
  }
  session.AddWorkload(fresh);
  const Recommendation rec = session.Retune(cs);
  s.delta_retune_ms = delta_watch.Elapsed() * 1e3;
  if (!rec.status.ok()) {
    std::fprintf(stderr, "delta retune failed (n=%d)\n", n);
    std::exit(1);
  }

  // Cold comparison: end-to-end Tune over the modified workload in a
  // fresh environment.
  Env cold_env = Env::Make(0.0, false, n, /*het=*/false, /*seed=*/42);
  Workload modified;
  for (const Query& q : cold_env.workload.statements()) {
    if (q.id < delta) continue;
    modified.Add(q);
  }
  for (const Query& q : fresh.statements()) modified.Add(q);
  CoPhyOptions cold_opts = DefaultCoPhyOptions();
  cold_opts.prepare.num_threads = 0;
  CoPhy cold(cold_env.system.get(), &cold_env.pool, modified, cold_opts);
  Stopwatch cold_watch;
  if (!cold.Prepare().ok() ||
      !cold.Tune(cold_env.BudgetConstraint(0.5)).status.ok()) {
    std::fprintf(stderr, "cold retune failed (n=%d)\n", n);
    std::exit(1);
  }
  s.cold_retune_ms = cold_watch.Elapsed() * 1e3;
  return s;
}

void WriteJson(const char* path, const std::vector<Sample>& samples) {
  BenchJson json("bench_scale");
  for (const Sample& s : samples) {
    char name[128];
    std::snprintf(name, sizeof(name), "scale/n=%d/mode=%s/threads=%d",
                  s.statements, s.mode, s.threads);
    json.BeginRow(name)
        .Metric("statements", s.statements)
        .Metric("mode", s.mode)
        .Metric("threads", s.threads)
        .Metric("prepare_seconds", s.prepare_seconds)
        .Metric("compress_seconds", s.prepare.compression.seconds)
        .Metric("cgen_seconds", s.prepare.cgen_seconds)
        .Metric("inum_seconds", s.prepare.inum_seconds)
        .Metric("build_seconds", s.build_seconds)
        .Metric("solve_seconds", s.solve_seconds)
        .Metric("compression_ratio", s.prepare.compression.Ratio())
        .Metric("compressed_statements", s.prepare.compression.output_statements)
        .Metric("shared_statements", s.prepare.shared_statements)
        .Metric("speedup_vs_1thread", s.speedup_vs_1thread)
        .Metric("objective", s.objective)
        .Metric("proven_gap_pct", s.proven_gap_pct)
        .Metric("root_gap_pct", s.root_gap_pct)
        .Metric("proof10_seconds", s.proof10_seconds)
        .Metric("variables_fixed", s.variables_fixed)
        .Metric("shards", s.shards)
        .Metric("delta_retune_ms", s.delta_retune_ms)
        .Metric("cold_retune_ms", s.cold_retune_ms)
        .Metric("delta_speedup", s.delta_retune_ms > 0 && s.cold_retune_ms > 0
                                     ? s.cold_retune_ms / s.delta_retune_ms
                                     : -1.0);
  }
  if (!json.Write(path)) std::exit(1);
}

int Main(int argc, char** argv) {
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 10000;
  std::vector<int> thread_counts = ParseThreads(argc > 2 ? argv[2] : "1,2,4,8");
  // speedup_vs_1thread needs the 1-thread baseline measured FIRST.
  thread_counts.erase(
      std::remove(thread_counts.begin(), thread_counts.end(), 1),
      thread_counts.end());
  thread_counts.insert(thread_counts.begin(), 1);
  const char* out_path = argc > 3 ? argv[3] : "bench_scale.json";

  std::vector<int> sizes;
  for (int n : {1000, 5000, 10000, 50000}) {
    if (n <= max_n) sizes.push_back(n);
  }
  if (sizes.empty()) sizes.push_back(max_n);

  std::vector<Sample> samples;
  for (int n : sizes) {
    Title(StrFormat("W_hom scaling, %d statements", n));

    // Naive pipeline: no compression, no template sharing, 1 thread —
    // the per-statement INUM loop the refactor replaces. Skipped above
    // 10k where it dominates the whole run.
    if (n <= 10000) {
      Sample naive = RunOne(n, CompressionMode::kNone,
                            /*share_templates=*/false, 1, /*tune=*/false);
      naive.mode = "naive";
      naive.speedup_vs_1thread = 1.0;
      Row({{"mode", "naive"},
           {"threads", "1"},
           {"prepare_s", Fmt("%.3f", naive.prepare_seconds)},
           {"ratio", "1.0"}});
      samples.push_back(naive);
    }

    // Compression off but shared templates (isolates the sharing win).
    Sample shared = RunOne(n, CompressionMode::kNone, true, 1, false);
    shared.mode = "shared";
    shared.speedup_vs_1thread = 1.0;
    Row({{"mode", "shared"},
         {"threads", "1"},
         {"prepare_s", Fmt("%.3f", shared.prepare_seconds)},
         {"shared_stmts", Fmt("%.0f", 1.0 * shared.prepare.shared_statements)}});
    samples.push_back(shared);

    // Lossless compression × thread sweep, solving once per (n, threads)
    // so the JSON also tracks build/solve alongside Prepare.
    double base_seconds = 0;
    for (int t : thread_counts) {
      Sample s = RunOne(n, CompressionMode::kLossless, true, t, /*tune=*/true);
      s.mode = "lossless";
      if (t == 1) base_seconds = s.prepare_seconds;
      s.speedup_vs_1thread =
          s.prepare_seconds > 0 ? base_seconds / s.prepare_seconds : 0.0;
      Row({{"mode", "lossless"},
           {"threads", std::to_string(t)},
           {"prepare_s", Fmt("%.3f", s.prepare_seconds)},
           {"ratio", Fmt("%.1f", s.prepare.compression.Ratio())},
           {"speedup", Fmt("%.2f", s.speedup_vs_1thread)},
           {"build_s", Fmt("%.3f", s.build_seconds)},
           {"solve_s", Fmt("%.3f", s.solve_seconds)},
           {"gap_pct", Fmt("%.1f", s.proven_gap_pct)},
           {"proof10_s", Fmt("%.2f", s.proof10_seconds)}});
      samples.push_back(s);
    }
  }

  // Sharded-session sweep at 1000 statements (the incremental-speed
  // gate's scale): cold prepare+tune, then a 1% delta + warm Retune vs
  // a cold end-to-end Tune on the modified workload.
  if (max_n >= 1000) {
    Title("sharded session, 1000 statements, 1% delta retune");
    for (int shards : {1, 4}) {
      Sample s = RunSessionDelta(1000, shards);
      Row({{"mode", "session"},
           {"shards", std::to_string(shards)},
           {"prepare_s", Fmt("%.3f", s.prepare_seconds)},
           {"delta_ms", Fmt("%.1f", s.delta_retune_ms)},
           {"cold_ms", Fmt("%.1f", s.cold_retune_ms)},
           {"speedup", Fmt("%.1f", s.cold_retune_ms /
                                       std::max(1e-9, s.delta_retune_ms))}});
      samples.push_back(s);
    }
  }

  WriteJson(out_path, samples);
  return 0;
}

}  // namespace
}  // namespace cophy::bench

int main(int argc, char** argv) { return cophy::bench::Main(argc, argv); }
