// Workload-scaling benchmark for the preparation pipeline: statement
// count (1k → 50k) × {compression off/on} × {1..N threads}, reporting
// Prepare/build/solve seconds, compression ratio, and the thread
// speedup. Emits the same JSON shape as bench_micro (a "context" block
// plus a "benchmarks" array) so CI uploads one perf-trajectory artifact
// per commit.
//
//   bench_scale [max_statements] [threads_csv] [out.json]
//
// Defaults: 10000, "1,2,4,8", bench_scale.json. Pass 50000 for the full
// paper-scale sweep.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "core/cophy.h"

namespace cophy::bench {
namespace {

struct Sample {
  int statements = 0;
  const char* mode = "";
  int threads = 0;
  PrepareStats prepare;
  double prepare_seconds = 0;
  double build_seconds = 0;  // only measured for the tuned configs
  double solve_seconds = 0;
  double speedup_vs_1thread = 0;
  double objective = 0;
  // Root-bound quality of the tuned configs (-1: not tuned / no bound).
  double proven_gap_pct = -1;   ///< proven optimality gap at return
  double root_gap_pct = -1;     ///< (objective - root LP bound) / objective
  double proof10_seconds = -1;  ///< first time the proven gap hit 10%
  int64_t variables_fixed = 0;  ///< z pinned by reduced-cost fixing
};

std::vector<int> ParseThreads(const char* csv) {
  std::vector<int> out;
  std::string s(csv);
  size_t pos = 0;
  while (pos < s.size()) {
    out.push_back(std::atoi(s.c_str() + pos));
    const size_t comma = s.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Sample RunOne(int n, CompressionMode mode, bool share_templates, int threads,
              bool tune) {
  // A fresh environment per run: Prepare must start cold.
  Env e = Env::Make(0.0, false, n, /*het=*/false, /*seed=*/42);
  CoPhyOptions opts = DefaultCoPhyOptions();
  opts.prepare.compression.mode = mode;
  opts.prepare.share_templates = share_templates;
  opts.prepare.num_threads = threads;
  double proof10 = -1;  // first time the proven gap reaches 10%
  opts.callback = ProofTimer(&proof10);
  CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);

  Sample s;
  s.statements = n;
  s.threads = threads;
  Stopwatch watch;
  if (!advisor.Prepare().ok()) {
    std::fprintf(stderr, "prepare failed (n=%d)\n", n);
    std::exit(1);
  }
  s.prepare_seconds = watch.Elapsed();
  s.prepare = advisor.prepared().stats();
  if (tune) {
    ConstraintSet cs = e.BudgetConstraint(0.5);
    const Recommendation rec = advisor.Tune(cs);
    s.build_seconds = rec.timings.build_seconds;
    s.solve_seconds = rec.timings.solve_seconds;
    s.objective = rec.objective;
    s.proven_gap_pct = 100 * rec.gap;
    s.proof10_seconds = proof10;
    s.variables_fixed = rec.variables_fixed;
    s.root_gap_pct = RootGapPct(rec.objective, rec.root_lp_bound);
  }
  return s;
}

void WriteJson(const char* path, const std::vector<Sample>& samples) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"context\": {\"benchmark\": \"bench_scale\", "
                  "\"hardware_threads\": %u},\n  \"benchmarks\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"name\": \"scale/n=%d/mode=%s/threads=%d\", "
        "\"statements\": %d, \"mode\": \"%s\", \"threads\": %d, "
        "\"prepare_seconds\": %.6f, \"compress_seconds\": %.6f, "
        "\"cgen_seconds\": %.6f, \"inum_seconds\": %.6f, "
        "\"build_seconds\": %.6f, \"solve_seconds\": %.6f, "
        "\"compression_ratio\": %.3f, \"compressed_statements\": %d, "
        "\"shared_statements\": %d, \"speedup_vs_1thread\": %.3f, "
        "\"objective\": %.6f, \"proven_gap_pct\": %.3f, "
        "\"root_gap_pct\": %.3f, \"proof10_seconds\": %.3f, "
        "\"variables_fixed\": %lld}%s\n",
        s.statements, s.mode, s.threads, s.statements, s.mode, s.threads,
        s.prepare_seconds, s.prepare.compression.seconds, s.prepare.cgen_seconds,
        s.prepare.inum_seconds, s.build_seconds, s.solve_seconds,
        s.prepare.compression.Ratio(), s.prepare.compression.output_statements,
        s.prepare.shared_statements, s.speedup_vs_1thread, s.objective,
        s.proven_gap_pct, s.root_gap_pct, s.proof10_seconds,
        static_cast<long long>(s.variables_fixed),
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 10000;
  std::vector<int> thread_counts = ParseThreads(argc > 2 ? argv[2] : "1,2,4,8");
  // speedup_vs_1thread needs the 1-thread baseline measured FIRST.
  thread_counts.erase(
      std::remove(thread_counts.begin(), thread_counts.end(), 1),
      thread_counts.end());
  thread_counts.insert(thread_counts.begin(), 1);
  const char* out_path = argc > 3 ? argv[3] : "bench_scale.json";

  std::vector<int> sizes;
  for (int n : {1000, 5000, 10000, 50000}) {
    if (n <= max_n) sizes.push_back(n);
  }
  if (sizes.empty()) sizes.push_back(max_n);

  std::vector<Sample> samples;
  for (int n : sizes) {
    Title(StrFormat("W_hom scaling, %d statements", n));

    // Naive pipeline: no compression, no template sharing, 1 thread —
    // the per-statement INUM loop the refactor replaces. Skipped above
    // 10k where it dominates the whole run.
    if (n <= 10000) {
      Sample naive = RunOne(n, CompressionMode::kNone,
                            /*share_templates=*/false, 1, /*tune=*/false);
      naive.mode = "naive";
      naive.speedup_vs_1thread = 1.0;
      Row({{"mode", "naive"},
           {"threads", "1"},
           {"prepare_s", Fmt("%.3f", naive.prepare_seconds)},
           {"ratio", "1.0"}});
      samples.push_back(naive);
    }

    // Compression off but shared templates (isolates the sharing win).
    Sample shared = RunOne(n, CompressionMode::kNone, true, 1, false);
    shared.mode = "shared";
    shared.speedup_vs_1thread = 1.0;
    Row({{"mode", "shared"},
         {"threads", "1"},
         {"prepare_s", Fmt("%.3f", shared.prepare_seconds)},
         {"shared_stmts", Fmt("%.0f", 1.0 * shared.prepare.shared_statements)}});
    samples.push_back(shared);

    // Lossless compression × thread sweep, solving once per (n, threads)
    // so the JSON also tracks build/solve alongside Prepare.
    double base_seconds = 0;
    for (int t : thread_counts) {
      Sample s = RunOne(n, CompressionMode::kLossless, true, t, /*tune=*/true);
      s.mode = "lossless";
      if (t == 1) base_seconds = s.prepare_seconds;
      s.speedup_vs_1thread =
          s.prepare_seconds > 0 ? base_seconds / s.prepare_seconds : 0.0;
      Row({{"mode", "lossless"},
           {"threads", std::to_string(t)},
           {"prepare_s", Fmt("%.3f", s.prepare_seconds)},
           {"ratio", Fmt("%.1f", s.prepare.compression.Ratio())},
           {"speedup", Fmt("%.2f", s.speedup_vs_1thread)},
           {"build_s", Fmt("%.3f", s.build_seconds)},
           {"solve_s", Fmt("%.3f", s.solve_seconds)},
           {"gap_pct", Fmt("%.1f", s.proven_gap_pct)},
           {"proof10_s", Fmt("%.2f", s.proof10_seconds)}});
      samples.push_back(s);
    }
  }

  WriteJson(out_path, samples);
  std::printf("\nwrote %s (%zu samples)\n", out_path, samples.size());
  return 0;
}

}  // namespace
}  // namespace cophy::bench

int main(int argc, char** argv) { return cophy::bench::Main(argc, argv); }
