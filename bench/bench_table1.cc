// Table 1: perf(CoPhy)/perf(commercial advisor) ratios across data skew
// z ∈ {0, 2} and workload {W_hom_1000, W_het_1000}, on System-A
// (vs Tool-A) and System-B (vs Tool-B). Also prints the §5.2 candidate
// counts (Tool-A ≈ 170, Tool-B ≈ 45, CoPhy ≈ 2K).
//
// Environment knobs: COPHY_BENCH_N (workload size, default 1000),
// COPHY_TOOLA_TIMECAP (seconds, default 480 — the paper reports Tool-A
// timing out on the hardest cell).
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/cophy.h"

using namespace cophy;
using namespace cophy::bench;

namespace {

int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}

struct Cell {
  double ratio = 0;
  bool tool_timed_out = false;
  int cophy_candidates = 0, tool_candidates = 0;
};

Cell RunSystem(double z, bool het, bool system_b, int n, double toola_cap) {
  Env e = Env::Make(z, system_b, n, het);
  ConstraintSet cs = e.BudgetConstraint(1.0);  // M = 1 (paper default)

  CoPhyOptions copts = DefaultCoPhyOptions();
  copts.time_limit_seconds = 90;  // anytime cap for the large het BIPs
  CoPhyAdvisor cophy(e.system.get(), &e.pool, e.workload, copts);
  const AdvisorResult rc = cophy.Recommend(cs);

  AdvisorResult rt;
  if (!system_b) {
    RelaxationOptions opts;
    opts.time_limit_seconds = toola_cap;
    RelaxationAdvisor tool(e.system.get(), &e.pool, e.workload, opts);
    rt = tool.Recommend(cs);
  } else {
    GreedyAdvisor tool(e.system.get(), &e.pool, e.workload, GreedyOptions{});
    rt = tool.Recommend(cs);
  }

  Cell cell;
  cell.tool_timed_out = rt.timed_out;
  cell.cophy_candidates = rc.candidates_considered;
  cell.tool_candidates = rt.candidates_considered;
  const double perf_cophy = Perf(*e.system, e.workload, rc.configuration);
  const double perf_tool = Perf(*e.system, e.workload, rt.configuration);
  cell.ratio = perf_tool > 1e-9 ? perf_cophy / perf_tool : 99.0;
  return cell;
}

}  // namespace

int main() {
  const int n = EnvInt("COPHY_BENCH_N", 1000);
  const double toola_cap = EnvInt("COPHY_TOOLA_TIMECAP", 480);

  Title("Table 1: perf(X*_CoPhy)/perf(Y*_tool) — M = 1");
  std::printf("%-6s %-10s %-22s %-22s\n", "skew", "workload",
              "CoPhyA/Tool-A (Sys-A)", "CoPhyB/Tool-B (Sys-B)");
  Cell last_a{}, last_b{};
  for (double z : {0.0, 2.0}) {
    for (bool het : {false, true}) {
      const Cell a = RunSystem(z, het, /*system_b=*/false, n, toola_cap);
      const Cell b = RunSystem(z, het, /*system_b=*/true, n, toola_cap);
      const std::string wname =
          std::string(het ? "W_het_" : "W_hom_") + std::to_string(n);
      std::printf("z=%-4.0f %-10s %-22s %-22s\n", z, wname.c_str(),
                  a.tool_timed_out ? "Tool-A timed out"
                                   : Fmt("%.2f", a.ratio).c_str(),
                  Fmt("%.2f", b.ratio).c_str());
      last_a = a;
      last_b = b;
    }
  }
  Title("§5.2 candidate counts (last homogeneous cell)");
  Row({{"cophy", std::to_string(last_a.cophy_candidates)},
       {"tool-a", std::to_string(last_a.tool_candidates)},
       {"tool-b", std::to_string(last_b.tool_candidates)}});
  return 0;
}
