// Multi-tenant advisor service benchmark: a traffic-replay driver that
// streams many concurrent tenant sessions (mixed AddStatements /
// RemoveStatements / Retune churn with a configurable cross-tenant
// statement-overlap ratio) through AdvisorService and reports
// throughput, shared-plan-cache hit rates, what-if optimizer calls, and
// p50/p99 retune latency. Three configurations per run, emitted as rows
// of bench_service.json (BenchJson envelope) for the CI perf gates:
//
//   service/concurrent_cache_on   N-thread executor + shared cache
//   service/concurrent_cache_off  N-thread executor, no cache
//   service/serialized_cache_on   1-thread (inline) dispatch baseline
//
// Gates (ci.yml): cache_on p99 retune latency under the pinned bound,
// cache_on what-if calls strictly below cache_off, and concurrent
// throughput >= 2x the serialized baseline at 8+ tenants.
//
//   bench_service [tenants] [threads] [rounds] [overlap_pct] [out.json]
//
// Defaults: 8, 0 (hardware), 3, 75, bench_service.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "service/service.h"

using namespace cophy;
using namespace cophy::bench;

namespace {

// Per-tenant traffic shape: the initial batch, then `rounds` rounds of
// churn (remove the oldest kDelta statements, add kDelta fresh ones,
// warm Retune).
constexpr int kInitialStatements = 24;
constexpr int kDelta = 3;

struct RunResult {
  int64_t ops = 0;
  int64_t rejected = 0;
  double wall_seconds = 0;
  double throughput_ops_s = 0;
  std::vector<double> retune_exec_ms;  // execution proper
  std::vector<double> retune_e2e_ms;   // queue + execution
  int64_t whatif_calls = 0;
  PlanCacheStats cache;
};

double PercentileMs(std::vector<double> v, double p) {
  if (v.empty()) return -1;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, idx == 0 ? 0 : idx - 1)];
}

/// Statement i of tenant t. The first `overlap_pct`% of each position's
/// draws are *shared* — identical (template, seed) across tenants, so
/// every tenant lands in the same cost-equivalence class and the shared
/// plan cache can serve all but the first preparation. The rest are
/// tenant-private.
Query TenantStatement(const Catalog& cat, int tenant, int i, int overlap_pct) {
  const bool shared = (i * 37 + 11) % 100 < overlap_pct;
  const int tmpl = i % NumHomogeneousTemplates();
  const uint64_t seed =
      shared ? 1000 + static_cast<uint64_t>(i)
             : 777'000'000ULL + static_cast<uint64_t>(tenant) * 100'000 + i;
  return MakeHomogeneousStatement(cat, tmpl, seed);
}

RunResult RunOnce(int tenants, int threads, int rounds, int overlap_pct,
                  bool cache_on) {
  // Fresh environment per configuration: pool, simulator (and so the
  // what-if counter) and cache all start cold.
  Env e = Env::Make(0.0, false, /*num_statements=*/1, /*het=*/false);
  ServiceOptions so;
  so.num_threads = threads;
  so.share_plan_cache = cache_on;
  so.session.tuning = DefaultCoPhyOptions();
  AdvisorService service(e.system.get(), &e.pool, so);
  const ConstraintSet budget = e.BudgetConstraint(0.5);

  std::vector<std::string> names;
  names.reserve(tenants);
  for (int t = 0; t < tenants; ++t) names.push_back("tenant-" + std::to_string(t));

  RunResult r;
  std::vector<std::future<OpResult>> futures;
  std::vector<std::future<OpResult>> retunes;

  Stopwatch wall;
  // Initial load: every tenant adds its batch and cold-Tunes.
  for (int t = 0; t < tenants; ++t) {
    std::vector<Query> batch;
    for (int i = 0; i < kInitialStatements; ++i) {
      batch.push_back(TenantStatement(e.catalog, t, i, overlap_pct));
    }
    futures.push_back(service.AddStatements(names[t], std::move(batch)));
    futures.push_back(service.Tune(names[t], budget));
  }
  // Churn rounds, interleaved across tenants round-by-round. Session
  // ids are assigned densely in submission order per tenant (0-based,
  // never reused), so the remove batches are known without waiting on
  // the add futures.
  for (int round = 0; round < rounds; ++round) {
    for (int t = 0; t < tenants; ++t) {
      std::vector<QueryId> oldest;
      std::vector<Query> fresh;
      for (int d = 0; d < kDelta; ++d) {
        oldest.push_back(round * kDelta + d);
        fresh.push_back(TenantStatement(
            e.catalog, t, kInitialStatements + round * kDelta + d,
            overlap_pct));
      }
      futures.push_back(service.RemoveStatements(names[t], std::move(oldest)));
      futures.push_back(service.AddStatements(names[t], std::move(fresh)));
      retunes.push_back(service.Retune(names[t], budget));
    }
  }
  for (auto& f : futures) {
    const OpResult res = f.get();
    if (!res.status.ok()) {
      std::fprintf(stderr, "service op failed: %s\n",
                   res.status.ToString().c_str());
      std::exit(1);
    }
  }
  for (auto& f : retunes) {
    const OpResult res = f.get();
    if (!res.status.ok()) {
      std::fprintf(stderr, "retune failed: %s\n",
                   res.status.ToString().c_str());
      std::exit(1);
    }
    r.retune_exec_ms.push_back(res.exec_seconds * 1e3);
    r.retune_e2e_ms.push_back((res.queue_seconds + res.exec_seconds) * 1e3);
  }
  service.Drain();
  r.wall_seconds = wall.Elapsed();

  const ServiceStats stats = service.stats();
  r.ops = stats.completed;
  r.rejected = stats.rejected;
  r.throughput_ops_s =
      r.wall_seconds > 0 ? static_cast<double>(r.ops) / r.wall_seconds : -1;
  r.whatif_calls = e.system->num_whatif_calls();
  r.cache = stats.plan_cache;
  return r;
}

void AddRow(BenchJson& json, const std::string& name, const RunResult& r,
            int tenants, int threads, int rounds, int overlap_pct,
            bool cache_on) {
  json.BeginRow(name)
      .Metric("tenants", tenants)
      .Metric("threads", threads)
      .Metric("rounds", rounds)
      .Metric("overlap_pct", overlap_pct)
      .Metric("cache", cache_on ? "on" : "off")
      .Metric("ops", r.ops)
      .Metric("rejected", r.rejected)
      .Metric("wall_seconds", r.wall_seconds)
      .Metric("throughput_ops_s", r.throughput_ops_s)
      .Metric("retunes", static_cast<int64_t>(r.retune_exec_ms.size()))
      .Metric("retune_p50_ms", PercentileMs(r.retune_exec_ms, 50))
      .Metric("retune_p99_ms", PercentileMs(r.retune_exec_ms, 99))
      .Metric("retune_e2e_p99_ms", PercentileMs(r.retune_e2e_ms, 99))
      .Metric("whatif_calls", r.whatif_calls)
      .Metric("cache_template_hits", r.cache.template_hits)
      .Metric("cache_template_misses", r.cache.template_misses)
      .Metric("cache_gamma_hits", r.cache.gamma_hits)
      .Metric("cache_gamma_misses", r.cache.gamma_misses)
      .Metric("cache_hit_rate", r.cache.HitRate());
}

}  // namespace

int main(int argc, char** argv) {
  const int tenants = argc > 1 ? std::atoi(argv[1]) : 8;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 0;
  const int rounds = argc > 3 ? std::atoi(argv[3]) : 3;
  const int overlap_pct = argc > 4 ? std::atoi(argv[4]) : 75;
  const char* out_path = argc > 5 ? argv[5] : "bench_service.json";
  const int resolved_threads = ResolveThreadCount(threads);

  Title("Multi-tenant service traffic replay");
  BenchJson json("bench_service");
  json.Context("tenants", tenants)
      .Context("threads", resolved_threads)
      .Context("rounds", rounds)
      .Context("overlap_pct", overlap_pct);

  struct Config {
    const char* name;
    int threads;
    bool cache;
  };
  const Config configs[] = {
      {"service/concurrent_cache_on", resolved_threads, true},
      {"service/concurrent_cache_off", resolved_threads, false},
      {"service/serialized_cache_on", 1, true},
  };
  for (const Config& c : configs) {
    const RunResult r = RunOnce(tenants, c.threads, rounds, overlap_pct,
                                c.cache);
    AddRow(json, c.name, r, tenants, c.threads, rounds, overlap_pct, c.cache);
    Row({{"config", c.name},
         {"ops", std::to_string(r.ops)},
         {"throughput_ops_s", Fmt("%.1f", r.throughput_ops_s)},
         {"retune_p50_ms", Fmt("%.2f", PercentileMs(r.retune_exec_ms, 50))},
         {"retune_p99_ms", Fmt("%.2f", PercentileMs(r.retune_exec_ms, 99))},
         {"whatif_calls", std::to_string(r.whatif_calls)},
         {"cache_hit_rate", Fmt("%.3f", r.cache.HitRate())}});
  }

  if (!json.Write(out_path)) return 1;
  return 0;
}
