// Micro-benchmarks (google-benchmark): the primitive costs behind the
// system-level numbers — what-if optimization vs INUM lookup, BIP
// construction rate, LP solves (sparse revised simplex vs the seed
// dense tableau, with pivot counts), warm- vs cold-started
// branch-and-bound node LPs, structured-solver node throughput, and
// Zipf selectivity math.
#include <benchmark/benchmark.h>

#include <cmath>

#include "optimizer/simulator.h"
#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "core/bipgen.h"
#include "index/candidates.h"
#include "inum/inum.h"
#include "lp/branch_and_bound.h"
#include "lp/choice_problem.h"
#include "lp/dense_simplex.h"
#include "lp/presolve.h"
#include "lp/simplex.h"
#include "workload/generator.h"

namespace cophy {
namespace {

struct MicroEnv {
  Catalog cat = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator sim{&cat, &pool, CostModel::SystemA()};
  Workload w;
  std::vector<IndexId> cands;
  Inum inum{&sim};

  MicroEnv() {
    WorkloadOptions o;
    o.num_statements = 50;
    o.seed = 9;
    w = MakeHomogeneousWorkload(cat, o);
    cands = GenerateCandidates(w, cat, CandidateOptions{}, pool);
    inum.Prepare(w, cands);
  }
};

MicroEnv& GetEnv() {
  static MicroEnv env;
  return env;
}

void BM_WhatIfOptimization(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  const Configuration x(e.cands);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.sim.Cost(e.w[i++ % e.w.size()], x).value());
  }
}
BENCHMARK(BM_WhatIfOptimization);

void BM_InumCostLookup(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  const Configuration x(e.cands);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.inum.ShellCost(i++ % e.w.size(), x));
  }
}
BENCHMARK(BM_InumCostLookup);

void BM_InumPrepitPerStatement(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  for (auto _ : state) {
    Inum inum(&e.sim);
    Workload one;
    one.Add(e.w[0]);
    inum.Prepare(one, e.cands);
    benchmark::DoNotOptimize(inum.TotalGammaEntries());
  }
}
BENCHMARK(BM_InumPrepitPerStatement);

void BM_BipGeneration(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  ConstraintSet cs;
  cs.SetStorageBudget(e.cat.TotalDataBytes());
  for (auto _ : state) {
    lp::ChoiceProblem p = BuildChoiceProblem(e.inum, e.cands, cs);
    benchmark::DoNotOptimize(p.NumOptionEntries());
  }
}
BENCHMARK(BM_BipGeneration);

void BM_SolverNodeBound(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  static lp::ChoiceProblem p = BuildChoiceProblem(e.inum, e.cands, cs);
  static lp::ChoiceSolver solver(&p);
  std::vector<int8_t> fixed(p.num_indexes, -1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.DebugNodeBound(fixed));
  }
}
BENCHMARK(BM_SolverNodeBound);

// --- LP layer: sparse revised simplex vs the seed dense tableau --------
//
// The acceptance instance for the solver rewrite: the literal Theorem-1
// BIP of a small workload, >= 200 binary variables. The revised solver
// reports its pivot counts as benchmark counters; the dense tableau is
// the "before" side of the comparison.
struct BipLpEnv {
  Catalog cat = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator sim{&cat, &pool, CostModel::SystemA()};
  Workload w;
  std::vector<IndexId> cands;
  Inum inum{&sim};
  lp::Model model;
  lp::Model tight_model;  // binding storage budget: the B&B branches

  BipLpEnv() {
    WorkloadOptions o;
    o.num_statements = 2;
    o.seed = 7;
    w = MakeHomogeneousWorkload(cat, o);
    CandidateOptions copts;
    copts.max_key_columns = 1;
    cands = GenerateCandidates(w, cat, copts, pool);
    if (cands.size() > 8) cands.resize(8);
    inum.Prepare(w, cands);
    ConstraintSet cs;
    cs.SetStorageBudget(0.25 * cat.TotalDataBytes());
    model = BuildModel(inum, cands, cs);
    double total = 0;
    for (IndexId id : cands) total += IndexSizeBytes(pool[id], cat);
    ConstraintSet tight;
    tight.SetStorageBudget(0.3 * total);
    tight_model = BuildModel(inum, cands, tight);
  }
};

BipLpEnv& GetLpEnv() {
  static BipLpEnv env;
  return env;
}

void ReportLpCounters(benchmark::State& state, const lp::SolverCounters& c) {
  const double solves = std::max<int64_t>(1, c.lp_solves);
  state.counters["lp_solves"] =
      benchmark::Counter(static_cast<double>(c.lp_solves));
  state.counters["phase1_pivots_per_solve"] =
      benchmark::Counter(static_cast<double>(c.phase1_pivots) / solves);
  state.counters["phase2_pivots_per_solve"] =
      benchmark::Counter(static_cast<double>(c.phase2_pivots) / solves);
  state.counters["dual_pivots_per_solve"] =
      benchmark::Counter(static_cast<double>(c.dual_pivots) / solves);
  state.counters["bound_flips_per_solve"] =
      benchmark::Counter(static_cast<double>(c.bound_flips) / solves);
  state.counters["devex_resets"] =
      benchmark::Counter(static_cast<double>(c.devex_resets));
  state.counters["warm_starts"] =
      benchmark::Counter(static_cast<double>(c.warm_starts));
  // Sparse-LU basis accounting: fresh factorizations, Forrest–Tomlin
  // updates and their fill, and the wall time spent inside FTRAN/BTRAN
  // solves (µs per LP solve) — the cost profile the lu_factor layer is
  // accountable for.
  state.counters["refactorizations"] =
      benchmark::Counter(static_cast<double>(c.factorizations) / solves);
  state.counters["ft_updates_per_solve"] =
      benchmark::Counter(static_cast<double>(c.ft_updates) / solves);
  state.counters["eta_nnz"] =
      benchmark::Counter(static_cast<double>(c.eta_nnz) / solves);
  state.counters["ftran_btran_us"] =
      benchmark::Counter(1e6 * c.ftran_btran_seconds / solves);
  // Numerical-safeguard accounting: certification outcomes plus the
  // recovery-ladder escalations (all zero when safeguards are off).
  state.counters["certified_solves"] =
      benchmark::Counter(static_cast<double>(c.certified_solves));
  state.counters["uncertified_solves"] =
      benchmark::Counter(static_cast<double>(c.uncertified_solves));
  state.counters["refinement_rounds"] =
      benchmark::Counter(static_cast<double>(c.refinement_rounds));
  state.counters["perturbations_applied"] =
      benchmark::Counter(static_cast<double>(c.perturbations_applied));
  state.counters["bland_escalations"] =
      benchmark::Counter(static_cast<double>(c.bland_escalations));
  state.counters["markowitz_escalations"] =
      benchmark::Counter(static_cast<double>(c.markowitz_escalations));
  state.counters["singular_repairs"] =
      benchmark::Counter(static_cast<double>(c.singular_repairs));
  state.counters["cold_restarts"] =
      benchmark::Counter(static_cast<double>(c.cold_restarts));
}

void BM_LpSolveRevisedSimplex(benchmark::State& state) {
  BipLpEnv& e = GetLpEnv();
  const lp::SolverCounters before = lp::SolverCountersSnapshot();
  for (auto _ : state) {
    const lp::LpSolution s = lp::SolveLp(e.model);
    if (!s.status.ok()) state.SkipWithError("LP solve failed");
    benchmark::DoNotOptimize(s.objective);
  }
  ReportLpCounters(state, lp::SolverCountersSince(before));
  state.counters["binary_vars"] =
      benchmark::Counter(static_cast<double>(e.model.num_variables()));
}
BENCHMARK(BM_LpSolveRevisedSimplex)->Unit(benchmark::kMillisecond);

// Pricing-rule sweep: the same 570-binary BIP under Dantzig pricing.
// BM_LpSolveRevisedSimplex above runs the devex default; CI gates devex
// <= Dantzig on both pivots and wall time.
void BM_LpSolveRevisedDantzig(benchmark::State& state) {
  BipLpEnv& e = GetLpEnv();
  const lp::SolverCounters before = lp::SolverCountersSnapshot();
  lp::LpOptions options;
  options.pricing = lp::Pricing::kDantzig;
  for (auto _ : state) {
    const lp::LpSolution s = lp::SolveLp(e.model, options);
    if (!s.status.ok()) state.SkipWithError("LP solve failed");
    benchmark::DoNotOptimize(s.objective);
  }
  ReportLpCounters(state, lp::SolverCountersSince(before));
  state.counters["binary_vars"] =
      benchmark::Counter(static_cast<double>(e.model.num_variables()));
}
BENCHMARK(BM_LpSolveRevisedDantzig)->Unit(benchmark::kMillisecond);

void BM_LpSolveDenseTableau(benchmark::State& state) {
  BipLpEnv& e = GetLpEnv();
  for (auto _ : state) {
    const lp::LpSolution s = lp::SolveLpDense(e.model);
    if (!s.status.ok()) state.SkipWithError("LP solve failed");
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["binary_vars"] =
      benchmark::Counter(static_cast<double>(e.model.num_variables()));
}
BENCHMARK(BM_LpSolveDenseTableau)->Unit(benchmark::kMillisecond);

// Warm- vs cold-started node LPs on a branching B&B tree (binding
// storage budget). Warm children now enter through the dual simplex
// from the parent basis, so the tree's node re-solves run zero primal
// phase-1 pivots — dual_node_phase1_pivots must be exactly zero
// (CI-gated; the aggregate phase1_pivots_per_solve stays nonzero only
// because the cold root solve is averaged in) and the node work shows
// up as dual_pivots_per_solve instead. Cold nodes re-derive a basis
// from scratch every time.
void BM_MipNodesWarmStarted(benchmark::State& state) {
  BipLpEnv& e = GetLpEnv();
  const lp::SolverCounters before = lp::SolverCountersSnapshot();
  int64_t nodes = 0;
  int64_t dual_node_p1 = 0;
  for (auto _ : state) {
    lp::MipOptions mo;
    mo.gap_target = 0.0;
    mo.node_limit = 200;
    const lp::MipSolution s = lp::SolveMip(e.tight_model, mo);
    if (!s.status.ok()) state.SkipWithError("MIP solve failed");
    nodes += s.nodes;
    dual_node_p1 += s.lp.dual_node_phase1_pivots;
    benchmark::DoNotOptimize(s.objective);
  }
  ReportLpCounters(state, lp::SolverCountersSince(before));
  state.counters["nodes"] = benchmark::Counter(static_cast<double>(nodes));
  state.counters["dual_node_phase1_pivots"] =
      benchmark::Counter(static_cast<double>(dual_node_p1));
}
BENCHMARK(BM_MipNodesWarmStarted)->Unit(benchmark::kMillisecond);

// Ablation: warm node basis import kept, dual entry disabled — every
// warm node runs the primal phases. The dual-entry win is the delta
// between this and BM_MipNodesWarmStarted.
void BM_MipNodesPrimalEntry(benchmark::State& state) {
  BipLpEnv& e = GetLpEnv();
  const lp::SolverCounters before = lp::SolverCountersSnapshot();
  int64_t nodes = 0;
  for (auto _ : state) {
    lp::MipOptions mo;
    mo.gap_target = 0.0;
    mo.node_limit = 200;
    mo.dual_entry_nodes = false;
    const lp::MipSolution s = lp::SolveMip(e.tight_model, mo);
    if (!s.status.ok()) state.SkipWithError("MIP solve failed");
    nodes += s.nodes;
    benchmark::DoNotOptimize(s.objective);
  }
  ReportLpCounters(state, lp::SolverCountersSince(before));
  state.counters["nodes"] = benchmark::Counter(static_cast<double>(nodes));
}
BENCHMARK(BM_MipNodesPrimalEntry)->Unit(benchmark::kMillisecond);

// Ablation: the same warm dual-entry tree with the numerical
// safeguards off — no stall watchdog, no certification pass, no
// refinement. BM_MipNodesWarmStarted (safeguards on, the default) vs
// this is the safeguard-overhead story; CI gates the ratio at 1.10x.
void BM_MipNodesNoSafeguards(benchmark::State& state) {
  BipLpEnv& e = GetLpEnv();
  const lp::SolverCounters before = lp::SolverCountersSnapshot();
  int64_t nodes = 0;
  for (auto _ : state) {
    lp::MipOptions mo;
    mo.gap_target = 0.0;
    mo.node_limit = 200;
    mo.safeguards = false;
    const lp::MipSolution s = lp::SolveMip(e.tight_model, mo);
    if (!s.status.ok()) state.SkipWithError("MIP solve failed");
    nodes += s.nodes;
    benchmark::DoNotOptimize(s.objective);
  }
  ReportLpCounters(state, lp::SolverCountersSince(before));
  state.counters["nodes"] = benchmark::Counter(static_cast<double>(nodes));
}
BENCHMARK(BM_MipNodesNoSafeguards)->Unit(benchmark::kMillisecond);

void BM_MipNodesColdStarted(benchmark::State& state) {
  BipLpEnv& e = GetLpEnv();
  const lp::SolverCounters before = lp::SolverCountersSnapshot();
  int64_t nodes = 0;
  for (auto _ : state) {
    lp::MipOptions mo;
    mo.gap_target = 0.0;
    mo.node_limit = 200;
    mo.warm_start_nodes = false;
    const lp::MipSolution s = lp::SolveMip(e.tight_model, mo);
    if (!s.status.ok()) state.SkipWithError("MIP solve failed");
    nodes += s.nodes;
    benchmark::DoNotOptimize(s.objective);
  }
  ReportLpCounters(state, lp::SolverCountersSince(before));
  state.counters["nodes"] = benchmark::Counter(static_cast<double>(nodes));
}
BENCHMARK(BM_MipNodesColdStarted)->Unit(benchmark::kMillisecond);

// Structured solve on a tight budget with the full root machinery:
// presolve + root LP + dual-seeded Lagrangian + reduced-cost fixing.
// Counters carry the bound-quality story into the JSON artifact:
// root_gap_pct (objective vs root LP bound), proven_gap_pct at return,
// proof10_seconds (time until the proven gap reached 10%), and the
// presolve/fixing reductions.
void BM_ChoiceSolveTightBudgetRootBounds(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  ConstraintSet cs;
  cs.SetStorageBudget(0.25 * e.cat.TotalDataBytes());
  static lp::ChoiceProblem p = BuildChoiceProblem(e.inum, e.cands, cs);
  double root_gap = -1, proven_gap = -1, proof10 = -1;
  double fixed = 0, plans_removed = 0;
  for (auto _ : state) {
    lp::ChoiceSolveOptions so;
    so.gap_target = 0.05;
    so.node_limit = 4000;
    double first10 = -1;
    so.callback = bench::ProofTimer(&first10);
    lp::PresolveStats ps;
    const lp::ChoiceSolution sol = lp::SolveChoiceProblem(p, so, &ps);
    if (!sol.status.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(sol.objective);
    proven_gap = 100 * sol.gap;
    proof10 = first10;
    fixed = static_cast<double>(sol.variables_fixed);
    plans_removed = static_cast<double>(ps.PlansRemoved());
    root_gap = bench::RootGapPct(sol.objective, sol.root_lp_bound);
  }
  state.counters["root_gap_pct"] = benchmark::Counter(root_gap);
  state.counters["proven_gap_pct"] = benchmark::Counter(proven_gap);
  state.counters["proof10_seconds"] = benchmark::Counter(proof10);
  state.counters["variables_fixed"] = benchmark::Counter(fixed);
  state.counters["presolve_plans_removed"] = benchmark::Counter(plans_removed);
}
BENCHMARK(BM_ChoiceSolveTightBudgetRootBounds)->Unit(benchmark::kMillisecond);

void BM_ZipfSelectivity(benchmark::State& state) {
  Catalog cat = MakeTpchCatalog(1.0, 2.0);
  const TableId li = cat.FindTable("lineitem");
  const ColumnId sd = cat.FindColumn(li, "l_shipdate");
  double q = 0.0;
  for (auto _ : state) {
    q += 0.001;
    if (q >= 1) q = 0;
    benchmark::DoNotOptimize(cat.RangeSelectivity(sd, q, 0.1));
  }
}
BENCHMARK(BM_ZipfSelectivity);

void BM_CandidateGeneration(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  for (auto _ : state) {
    IndexPool pool;
    benchmark::DoNotOptimize(
        GenerateCandidates(e.w, e.cat, CandidateOptions{}, pool));
  }
}
BENCHMARK(BM_CandidateGeneration);

}  // namespace
}  // namespace cophy

BENCHMARK_MAIN();
