// Micro-benchmarks (google-benchmark): the primitive costs behind the
// system-level numbers — what-if optimization vs INUM lookup, BIP
// construction rate, structured-solver node throughput, and Zipf
// selectivity math.
#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "core/bipgen.h"
#include "index/candidates.h"
#include "inum/inum.h"
#include "lp/choice_problem.h"
#include "workload/generator.h"

namespace cophy {
namespace {

struct MicroEnv {
  Catalog cat = MakeTpchCatalog(1.0, 0.0);
  IndexPool pool;
  SystemSimulator sim{&cat, &pool, CostModel::SystemA()};
  Workload w;
  std::vector<IndexId> cands;
  Inum inum{&sim};

  MicroEnv() {
    WorkloadOptions o;
    o.num_statements = 50;
    o.seed = 9;
    w = MakeHomogeneousWorkload(cat, o);
    cands = GenerateCandidates(w, cat, CandidateOptions{}, pool);
    inum.Prepare(w, cands);
  }
};

MicroEnv& GetEnv() {
  static MicroEnv env;
  return env;
}

void BM_WhatIfOptimization(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  const Configuration x(e.cands);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.sim.Cost(e.w[i++ % e.w.size()], x));
  }
}
BENCHMARK(BM_WhatIfOptimization);

void BM_InumCostLookup(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  const Configuration x(e.cands);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.inum.ShellCost(i++ % e.w.size(), x));
  }
}
BENCHMARK(BM_InumCostLookup);

void BM_InumPrepitPerStatement(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  for (auto _ : state) {
    Inum inum(&e.sim);
    Workload one;
    one.Add(e.w[0]);
    inum.Prepare(one, e.cands);
    benchmark::DoNotOptimize(inum.TotalGammaEntries());
  }
}
BENCHMARK(BM_InumPrepitPerStatement);

void BM_BipGeneration(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  ConstraintSet cs;
  cs.SetStorageBudget(e.cat.TotalDataBytes());
  for (auto _ : state) {
    lp::ChoiceProblem p = BuildChoiceProblem(e.inum, e.cands, cs);
    benchmark::DoNotOptimize(p.NumOptionEntries());
  }
}
BENCHMARK(BM_BipGeneration);

void BM_SolverNodeBound(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  static lp::ChoiceProblem p = BuildChoiceProblem(e.inum, e.cands, cs);
  static lp::ChoiceSolver solver(&p);
  std::vector<int8_t> fixed(p.num_indexes, -1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.DebugNodeBound(fixed));
  }
}
BENCHMARK(BM_SolverNodeBound);

void BM_ZipfSelectivity(benchmark::State& state) {
  Catalog cat = MakeTpchCatalog(1.0, 2.0);
  const TableId li = cat.FindTable("lineitem");
  const ColumnId sd = cat.FindColumn(li, "l_shipdate");
  double q = 0.0;
  for (auto _ : state) {
    q += 0.001;
    if (q >= 1) q = 0;
    benchmark::DoNotOptimize(cat.RangeSelectivity(sd, q, 0.1));
  }
}
BENCHMARK(BM_ZipfSelectivity);

void BM_CandidateGeneration(benchmark::State& state) {
  MicroEnv& e = GetEnv();
  for (auto _ : state) {
    IndexPool pool;
    benchmark::DoNotOptimize(
        GenerateCandidates(e.w, e.cat, CandidateOptions{}, pool));
  }
}
BENCHMARK(BM_CandidateGeneration);

}  // namespace
}  // namespace cophy

BENCHMARK_MAIN();
