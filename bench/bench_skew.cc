// §C.1 data-skew text numbers: at z = 1, the paper reports Tool-A 67%
// vs CoPhyA 92% speedup, and Tool-B 96.9% vs CoPhyB 98.1%. This bench
// prints the same four cells for z ∈ {0, 1, 2}. Expected shape: CoPhy
// ahead everywhere; the gap narrows as skew rises (very beneficial
// indexes become easy for everyone to find).
#include <cstdlib>

#include "bench/bench_util.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const int n = EnvInt("COPHY_BENCH_N", 1000);
  const double toola_cap = EnvInt("COPHY_TOOLA_TIMECAP", 300);

  Title("Data skew (hom workload, M=1): % speedup");
  std::printf("%-6s %10s %10s %10s %10s\n", "z", "Tool-A", "CoPhyA", "Tool-B",
              "CoPhyB");
  for (double z : {0.0, 1.0, 2.0}) {
    Env ea = Env::Make(z, false, n, false);
    ConstraintSet cs_a = ea.BudgetConstraint(1.0);
    RelaxationOptions ra;
    ra.time_limit_seconds = toola_cap;
    RelaxationAdvisor tool_a(ea.system.get(), &ea.pool, ea.workload, ra);
    const double perf_ta =
        Perf(*ea.system, ea.workload, tool_a.Recommend(cs_a).configuration);
    CoPhyAdvisor cophy_a(ea.system.get(), &ea.pool, ea.workload,
                         DefaultCoPhyOptions());
    const double perf_ca =
        Perf(*ea.system, ea.workload, cophy_a.Recommend(cs_a).configuration);

    Env eb = Env::Make(z, true, n, false);
    ConstraintSet cs_b = eb.BudgetConstraint(1.0);
    GreedyAdvisor tool_b(eb.system.get(), &eb.pool, eb.workload,
                         GreedyOptions{});
    const double perf_tb =
        Perf(*eb.system, eb.workload, tool_b.Recommend(cs_b).configuration);
    CoPhyAdvisor cophy_b(eb.system.get(), &eb.pool, eb.workload,
                         DefaultCoPhyOptions());
    const double perf_cb =
        Perf(*eb.system, eb.workload, cophy_b.Recommend(cs_b).configuration);

    std::printf("%-6.0f %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", z, 100 * perf_ta,
                100 * perf_ca, 100 * perf_tb, 100 * perf_cb);
  }
  return 0;
}
