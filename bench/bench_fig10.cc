// Figure 10: CoPhy vs ILP total execution time as the workload grows
// (250/500/1000 homogeneous statements, full candidate set), with the
// INUM/build/solve breakdown. Expected shape: ILP at least ~5x slower
// at every size, dominated by its configuration enumeration.
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/cophy.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const double scale = EnvInt("COPHY_BENCH_SCALE_PCT", 100) / 100.0;
  Title("Figure 10: CoPhy vs ILP execution time vs workload size");
  std::printf("%-6s %-8s %8s %8s %8s %8s\n", "|W|", "tech", "inum", "build",
              "solve", "total");
  for (int base_n : {250, 500, 1000}) {
    const int n = static_cast<int>(base_n * scale);
    Env e = Env::Make(0.0, false, n, false);
    ConstraintSet cs = e.BudgetConstraint(1.0);
    {
      CoPhyOptions opts = DefaultCoPhyOptions();
      opts.time_limit_seconds = 120;
      CoPhyAdvisor advisor(e.system.get(), &e.pool, e.workload, opts);
      const AdvisorResult r = advisor.Recommend(cs);
      std::printf("%-6d %-8s %8.1f %8.1f %8.1f %8.1f\n", n, "CoPhy",
                  r.timings.inum_seconds, r.timings.build_seconds,
                  r.timings.solve_seconds, r.TotalSeconds());
    }
    {
      IlpOptions opts;
      opts.time_limit_seconds = 120;
      IlpAdvisor advisor(e.system.get(), &e.pool, e.workload, opts);
      const AdvisorResult r = advisor.Recommend(cs);
      std::printf("%-6d %-8s %8.1f %8.1f %8.1f %8.1f\n", n, "ILP",
                  r.timings.inum_seconds, r.timings.build_seconds,
                  r.timings.solve_seconds, r.TotalSeconds());
    }
  }
  return 0;
}
