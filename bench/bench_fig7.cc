// Figure 7: solution quality (% workload speedup vs the clustered-PK
// baseline) across workload sizes 250/500/1000 — Tool-A vs CoPhyA on
// System-A and Tool-B vs CoPhyB on System-B. Expected shape: CoPhy's
// quality is flat in |W| and the highest; Tool-A degrades with |W|.
#include <cstdlib>

#include "bench/bench_util.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const double scale = EnvInt("COPHY_BENCH_SCALE_PCT", 100) / 100.0;
  const double toola_cap = EnvInt("COPHY_TOOLA_TIMECAP", 300);

  Title("Figure 7: % speedup vs workload size (hom, z=0, M=1)");
  std::printf("%-6s %10s %10s %10s %10s\n", "|W|", "Tool-A", "CoPhyA",
              "Tool-B", "CoPhyB");
  for (int base_n : {250, 500, 1000}) {
    const int n = static_cast<int>(base_n * scale);
    Env ea = Env::Make(0.0, false, n, false);
    ConstraintSet cs_a = ea.BudgetConstraint(1.0);
    RelaxationOptions ra;
    ra.time_limit_seconds = toola_cap;
    RelaxationAdvisor tool_a(ea.system.get(), &ea.pool, ea.workload, ra);
    const double perf_ta =
        Perf(*ea.system, ea.workload, tool_a.Recommend(cs_a).configuration);
    CoPhyAdvisor cophy_a(ea.system.get(), &ea.pool, ea.workload,
                         DefaultCoPhyOptions());
    const double perf_ca =
        Perf(*ea.system, ea.workload, cophy_a.Recommend(cs_a).configuration);

    Env eb = Env::Make(0.0, true, n, false);
    ConstraintSet cs_b = eb.BudgetConstraint(1.0);
    GreedyAdvisor tool_b(eb.system.get(), &eb.pool, eb.workload,
                         GreedyOptions{});
    const double perf_tb =
        Perf(*eb.system, eb.workload, tool_b.Recommend(cs_b).configuration);
    CoPhyAdvisor cophy_b(eb.system.get(), &eb.pool, eb.workload,
                         DefaultCoPhyOptions());
    const double perf_cb =
        Perf(*eb.system, eb.workload, cophy_b.Recommend(cs_b).configuration);

    std::printf("%-6d %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", n, 100 * perf_ta,
                100 * perf_ca, 100 * perf_tb, 100 * perf_cb);
  }
  return 0;
}
