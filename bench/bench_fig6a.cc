// Figure 6(a): the solver's continuous solution-quality feedback —
// estimated distance from the optimum over time, for W_250/500/1000.
// Expected shape: the bound drops sharply in the first seconds, then
// decays slowly (the paper's curve; their W_1000 hits 5% after ~4 min
// on CPLEX). Each sample line is "workload time_s gap_pct".
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/cophy.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const double scale = EnvInt("COPHY_BENCH_SCALE_PCT", 100) / 100.0;
  Title("Figure 6(a): estimated distance from optimal over time");
  for (int base_n : {250, 500, 1000}) {
    const int n = static_cast<int>(base_n * scale);
    Env e = Env::Make(0.0, false, n, false);
    ConstraintSet cs = e.BudgetConstraint(1.0);

    CoPhyOptions opts;
    opts.gap_target = 0.0;  // run to the node/time limit: show the curve
    opts.node_limit = 40000;
    opts.time_limit_seconds = 60;
    double last_reported = -1;
    std::vector<std::pair<double, double>> samples;
    opts.callback = [&](const lp::MipProgress& p) {
      if (p.has_incumbent && p.seconds - last_reported > 0.25) {
        samples.push_back({p.seconds, 100 * p.gap});
        last_reported = p.seconds;
      }
      return true;
    };
    CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
    if (!advisor.Prepare().ok()) return 1;
    const Recommendation rec = advisor.Tune(cs);
    std::printf("W_%d (final gap %.1f%%, %lld nodes):\n", n, 100 * rec.gap,
                static_cast<long long>(rec.nodes));
    // Downsample to ~12 points per curve.
    const size_t stride = std::max<size_t>(1, samples.size() / 12);
    for (size_t i = 0; i < samples.size(); i += stride) {
      std::printf("  t=%6.1fs gap=%5.1f%%\n", samples[i].first,
                  samples[i].second);
    }
    if (!samples.empty()) {
      std::printf("  t=%6.1fs gap=%5.1f%% (last)\n", samples.back().first,
                  samples.back().second);
    }
  }
  return 0;
}
