// Figure 5: CoPhy vs ILP total execution time as the candidate set
// grows, with the INUM / build / solve breakdown. The paper sweeps
// S_500 ⊂ S_1000 ⊂ S_ALL(=1933) ⊂ S_L(=10000, random padding); our
// CGen saturates lower on W_hom, so the sweep is {S_ALL/4, S_ALL/2,
// S_ALL, 10000-padded} — same shape: ILP's build time (configuration
// enumeration + pruning) dominates and grows, CoPhy stays an order of
// magnitude cheaper.
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/cophy.h"
#include "index/candidates.h"

using namespace cophy;
using namespace cophy::bench;

namespace {
int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}
}  // namespace

int main() {
  const int n = EnvInt("COPHY_BENCH_N", 1000);
  Env e = Env::Make(0.0, false, n, false);
  ConstraintSet cs = e.BudgetConstraint(1.0);

  // Build the full candidate universe once (CGen + random padding).
  std::vector<IndexId> all =
      GenerateCandidates(e.workload, e.catalog, CandidateOptions{}, e.pool);
  Rng rng(2024);
  std::vector<IndexId> padded = all;
  for (IndexId id : PadWithRandomIndexes(e.catalog, 10000 - static_cast<int>(all.size()),
                                         rng, e.pool)) {
    padded.push_back(id);
  }

  std::vector<std::pair<std::string, std::vector<IndexId>>> sweeps;
  sweeps.push_back({"S" + std::to_string(all.size() / 4),
                    {all.begin(), all.begin() + all.size() / 4}});
  sweeps.push_back({"S" + std::to_string(all.size() / 2),
                    {all.begin(), all.begin() + all.size() / 2}});
  sweeps.push_back({"S_ALL=" + std::to_string(all.size()), all});
  sweeps.push_back({"S_L=" + std::to_string(padded.size()), padded});

  Title("Figure 5: CoPhy vs ILP execution time vs candidate-set size");
  std::printf("%-14s %-8s %8s %8s %8s %8s\n", "candidates", "tech", "inum",
              "build", "solve", "total");
  for (const auto& [name, cands] : sweeps) {
    // CoPhy with the given candidate subset.
    {
      CoPhyOptions opts = DefaultCoPhyOptions();
      opts.time_limit_seconds = 120;
      CoPhy advisor(e.system.get(), &e.pool, e.workload, opts);
      if (!advisor.PrepareWithCandidates(cands).ok()) return 1;
      const Recommendation rec = advisor.Tune(cs);
      std::printf("%-14s %-8s %8.1f %8.1f %8.1f %8.1f\n", name.c_str(),
                  "CoPhy", rec.timings.inum_seconds,
                  rec.timings.build_seconds, rec.timings.solve_seconds,
                  rec.timings.Total());
    }
    // ILP with the same candidates.
    {
      IlpOptions opts;
      opts.time_limit_seconds = 120;
      IlpAdvisor advisor(e.system.get(), &e.pool, e.workload, opts);
      advisor.SetCandidates(cands);
      const AdvisorResult r = advisor.Recommend(cs);
      std::printf("%-14s %-8s %8.1f %8.1f %8.1f %8.1f  (configs=%lld)\n",
                  name.c_str(), "ILP", r.timings.inum_seconds,
                  r.timings.build_seconds, r.timings.solve_seconds,
                  r.TotalSeconds(),
                  static_cast<long long>(advisor.configurations_enumerated()));
    }
  }
  return 0;
}
