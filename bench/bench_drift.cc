// Online-tuning-under-drift benchmark: a drifting trace (a persistent
// template core whose Zipf exponent jumps mid-run, plus a one-round
// minority burst that slides to a new template every round) replayed
// against three advisors:
//
//   drift/oracle          cold re-tune every round (the regret baseline)
//   drift/hysteresis_off  warm retune, applied == recommended (K = 1)
//   drift/hysteresis_on   warm retune behind a K-round materialize/drop
//                         hysteresis window
//
// Reported per advisor: rounds, recommendation changes (on the applied
// configuration), cumulative true workload cost (decayed weights,
// simulator ground truth), cumulative regret vs. the oracle, retune
// latency, and DBA-veto violations. Emitted as bench_drift.json
// (BenchJson envelope) for the CI gates:
//
//   hysteresis_on changes <= 25% of hysteresis_off changes,
//   hysteresis_on cumulative regret vs. the oracle <= 10%,
//   a vetoed index never appears in any later recommendation.
//
//   bench_drift [rounds] [out.json]        (defaults: 16, bench_drift.json)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/drift.h"
#include "core/session.h"

using namespace cophy;
using namespace cophy::bench;

namespace {

constexpr int kCoreTemplates = 6;   // persistent heavy core
constexpr double kHalfLife = 1.0;   // epochs; one epoch per round
constexpr int kHysteresisWindow = 4;

// One advisor under test: its own catalog/pool/simulator (identical
// construction, so costs are comparable) and its own session. The Env
// lives in main — the simulator holds pointers into it, so it must
// never be moved after Env::Make.
struct Contender {
  Env* env = nullptr;
  std::unique_ptr<AdvisorSession> session;
  std::vector<QueryId> minority_ids;
  std::vector<IndexId> last_applied;
  int changes = 0;
  double cumulative_cost = 0;
  double retune_seconds = 0;
  int veto_violations = 0;

  static Contender Make(Env& env, int hysteresis) {
    Contender a;
    a.env = &env;
    SessionOptions so;
    so.tuning = DefaultCoPhyOptions();
    so.tuning.gap_target = 0.01;
    so.tuning.node_limit = 20000;
    so.num_shards = 4;
    so.drift.half_life_epochs = kHalfLife;
    so.drift.materialize_after = hysteresis;
    so.drift.drop_after = hysteresis;
    a.session =
        std::make_unique<AdvisorSession>(env.system.get(), &env.pool, so);
    return a;
  }
};

// The drifting trace, two kinds of drift per round:
//
// The persistent core re-arrives every round with Zipf weights whose
// exponent jumps (1.0 -> 1.6) at the midpoint — a regime change the
// damped advisor *should* follow. The re-arrivals are identical
// statements (same template, same seed, same cost-equivalence class),
// so the core is pure re-weighting: zero prepare work, while the
// weight distribution the drift detector watches shifts and older
// arrivals fade under the half-life.
//
// On top of the core, each round brings a two-statement burst from one
// minority template outside the core, and the previous round's burst
// is removed — a sliding template mix. The burst's marginal index
// displaces something under the tight storage budget every round,
// which is exactly the churn the un-damped advisor exhibits and the
// K-round hysteresis window filters (no burst index ever survives K
// consecutive recommendations).
std::vector<Query> CoreBatch(const Catalog& cat, int round, int rounds) {
  std::vector<Query> batch;
  const double s = round < rounds / 2 ? 1.0 : 1.6;
  for (int t = 0; t < kCoreTemplates; ++t) {
    Query q = MakeHomogeneousStatement(cat, t, 42);
    q.weight = 24.0 / std::pow(t + 1.0, s);
    batch.push_back(std::move(q));
  }
  return batch;
}

std::vector<Query> MinorityBatch(const Catalog& cat, int round) {
  std::vector<Query> batch;
  const int minority =
      kCoreTemplates + (round % (NumHomogeneousTemplates() - kCoreTemplates));
  for (int i = 0; i < 2; ++i) {
    Query q = MakeHomogeneousStatement(cat, minority,
                                       1000 + 10 * round + i);
    q.weight = 9.0;
    batch.push_back(std::move(q));
  }
  return batch;
}

// True cost of holding configuration `x` against the live decayed
// trace, from the advisor's own simulator (ground truth, not the INUM
// estimate): sum of decayed weight x per-statement cost.
double TraceCost(Contender& a, const std::vector<std::pair<Query, int>>& trace,
                 const std::vector<Query>& burst, int round,
                 const std::vector<IndexId>& config) {
  Configuration x(config);
  double total = 0;
  auto eval = [&](const Query& q, double w) {
    auto cost = a.env->system->Cost(q, x);
    if (!cost.ok()) {
      std::fprintf(stderr, "cost eval failed: %s\n",
                   cost.status().ToString().c_str());
      std::exit(1);
    }
    total += w * cost.value();
  };
  for (const auto& [q, arrival] : trace) {
    eval(q, q.weight * DecayFactor(round - arrival, kHalfLife));
  }
  for (const Query& q : burst) eval(q, q.weight);
  return total;
}

void Step(Contender& a, const std::vector<IndexId>& applied, double cost,
          IndexId vetoed) {
  if (!a.last_applied.empty() || !applied.empty()) {
    if (a.changes == 0 && a.last_applied.empty()) {
      ++a.changes;  // first materialization counts as one change
    } else if (applied != a.last_applied) {
      ++a.changes;
    }
  }
  a.last_applied = applied;
  a.cumulative_cost += cost;
  if (vetoed >= 0 &&
      std::binary_search(applied.begin(), applied.end(), vetoed)) {
    ++a.veto_violations;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 16;
  const char* out_path = argc > 2 ? argv[2] : "bench_drift.json";

  Env oracle_env = Env::Make(/*z=*/0.5, /*system_b=*/false,
                             /*num_statements=*/0, /*het=*/false);
  Env off_env = Env::Make(0.5, false, 0, false);
  Env on_env = Env::Make(0.5, false, 0, false);
  Contender oracle = Contender::Make(oracle_env, /*hysteresis=*/1);
  Contender off = Contender::Make(off_env, /*hysteresis=*/1);
  Contender on = Contender::Make(on_env, kHysteresisWindow);
  // A tight budget: the minority burst's marginal index has to displace
  // something, which is exactly the churn hysteresis should absorb.
  const ConstraintSet budget = oracle_env.BudgetConstraint(0.1);

  // (statement, arrival round): the bench's own mirror of the live
  // workload, used for the ground-truth cost evaluation. The core
  // accumulates (each re-arrival decays under the half-life); the
  // minority burst is removed before the next one arrives, so only the
  // current round's burst is ever live.
  std::vector<std::pair<Query, int>> trace;
  IndexId vetoed = -1;

  Title("drifting trace");
  for (int r = 0; r < rounds; ++r) {
    const std::vector<Query> core = CoreBatch(oracle_env.catalog, r, rounds);
    const std::vector<Query> burst = MinorityBatch(oracle_env.catalog, r);
    for (Contender* a : {&oracle, &off, &on}) {
      if (r > 0) a->session->AdvanceEpoch();
      if (!a->minority_ids.empty()) {
        const Status removed = a->session->RemoveStatements(a->minority_ids);
        if (!removed.ok()) {
          std::fprintf(stderr, "remove: %s\n", removed.ToString().c_str());
          return 1;
        }
      }
      a->session->AddStatements(core);
      a->minority_ids = a->session->AddStatements(burst);
    }
    for (const Query& q : core) trace.emplace_back(q, r);

    // The oracle re-tunes cold every round; the advisors under test
    // absorb the delta warm.
    const Recommendation orc = oracle.session->Tune(budget);
    Stopwatch off_watch;
    const Recommendation orec = off.session->Retune(budget);
    off.retune_seconds += off_watch.Elapsed();
    Stopwatch on_watch;
    const Recommendation nrec = on.session->Retune(budget);
    on.retune_seconds += on_watch.Elapsed();
    for (const Recommendation* rec : {&orc, &orec, &nrec}) {
      if (!rec->status.ok()) {
        std::fprintf(stderr, "round %d: %s\n", r,
                     rec->status.ToString().c_str());
        return 1;
      }
    }

    Step(oracle, orc.configuration.ids(),
         TraceCost(oracle, trace, burst, r, orc.configuration.ids()), vetoed);
    Step(off, orec.configuration.ids(),
         TraceCost(off, trace, burst, r, orec.configuration.ids()), vetoed);
    Step(on, nrec.materialization.applied,
         TraceCost(on, trace, burst, r, nrec.materialization.applied), vetoed);

    Row({{"round", std::to_string(r)},
         {"drift", Fmt("%.3f", nrec.prepare.drift_score)},
         {"oracle", Fmt("%.4g", oracle.cumulative_cost)},
         {"hys_off", Fmt("%.4g", off.cumulative_cost)},
         {"hys_on", Fmt("%.4g", on.cumulative_cost)},
         {"off_changes", std::to_string(off.changes)},
         {"on_changes", std::to_string(on.changes)}});

    // After the first round's solve, the DBA vetoes one index of the
    // stabilized advisor's raw recommendation (the same veto lands on
    // every advisor so the constraint picture stays comparable). It
    // must never reappear anywhere.
    if (r == 0 && !nrec.configuration.ids().empty()) {
      vetoed = nrec.configuration.ids().back();
      for (Contender* a : {&oracle, &off, &on}) {
        const Status s = a->session->Veto(vetoed);
        if (!s.ok()) {
          std::fprintf(stderr, "veto: %s\n", s.ToString().c_str());
          return 1;
        }
      }
    }
  }

  const double regret_off =
      (off.cumulative_cost - oracle.cumulative_cost) / oracle.cumulative_cost;
  const double regret_on =
      (on.cumulative_cost - oracle.cumulative_cost) / oracle.cumulative_cost;
  const double change_ratio =
      off.changes > 0 ? static_cast<double>(on.changes) / off.changes : 1.0;

  Title("summary");
  Row({{"rounds", std::to_string(rounds)},
       {"off_changes", std::to_string(off.changes)},
       {"on_changes", std::to_string(on.changes)},
       {"change_ratio", Fmt("%.3f", change_ratio)},
       {"regret_off", Fmt("%.4f", regret_off)},
       {"regret_on", Fmt("%.4f", regret_on)},
       {"veto_violations",
        std::to_string(oracle.veto_violations + off.veto_violations +
                       on.veto_violations)}});

  BenchJson json("bench_drift");
  json.Context("rounds", rounds)
      .Context("core_templates", kCoreTemplates)
      .Context("half_life_epochs", kHalfLife)
      .Context("hysteresis_window", kHysteresisWindow);
  auto add_row = [&](const std::string& name, const Contender& a,
                     double regret) {
    json.BeginRow(name)
        .Metric("rounds", rounds)
        .Metric("changes", a.changes)
        .Metric("cumulative_cost", a.cumulative_cost)
        .Metric("cumulative_regret", regret)
        .Metric("retune_seconds", a.retune_seconds)
        .Metric("veto_violations", a.veto_violations);
  };
  add_row("drift/oracle", oracle, 0.0);
  add_row("drift/hysteresis_off", off, regret_off);
  add_row("drift/hysteresis_on", on, regret_on);
  json.BeginRow("drift/gates")
      .Metric("change_ratio", change_ratio)
      .Metric("regret_on", regret_on)
      .Metric("veto_violations",
              oracle.veto_violations + off.veto_violations +
                  on.veto_violations);
  if (!json.Write(out_path)) return 1;
  return 0;
}
