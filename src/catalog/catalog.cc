#include "catalog/catalog.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cophy {

TableId Catalog::AddTable(std::string name, uint64_t row_count) {
  COPHY_CHECK_GT(row_count, 0u);
  Table t;
  t.id = static_cast<TableId>(tables_.size());
  t.name = std::move(name);
  t.row_count = row_count;
  tables_.push_back(std::move(t));
  return tables_.back().id;
}

ColumnId Catalog::AddColumn(TableId table, std::string name, int width_bytes,
                            uint64_t distinct, double zipf_z) {
  COPHY_CHECK_GE(table, 0);
  COPHY_CHECK_LT(table, num_tables());
  COPHY_CHECK_GT(width_bytes, 0);
  Column c;
  c.id = static_cast<ColumnId>(columns_.size());
  c.table = table;
  c.name = std::move(name);
  c.width_bytes = width_bytes;
  // A column cannot have more distinct values than the table has rows.
  c.distinct = std::max<uint64_t>(1, std::min(distinct, tables_[table].row_count));
  c.zipf_z = zipf_z;
  columns_.push_back(c);
  tables_[table].columns.push_back(c.id);
  zipf_cache_.emplace_back(nullptr);
  return c.id;
}

void Catalog::SetPrimaryKey(TableId table, std::vector<ColumnId> key) {
  COPHY_CHECK(!key.empty());
  for (ColumnId c : key) COPHY_CHECK_EQ(column(c).table, table);
  tables_[table].primary_key = std::move(key);
}

TableId Catalog::FindTable(const std::string& name) const {
  for (const Table& t : tables_) {
    if (t.name == name) return t.id;
  }
  return kInvalidTable;
}

ColumnId Catalog::FindColumn(TableId table, const std::string& name) const {
  for (ColumnId c : tables_[table].columns) {
    if (columns_[c].name == name) return c;
  }
  return kInvalidColumn;
}

double Catalog::RowWidth(TableId t) const {
  double w = 0;
  for (ColumnId c : tables_[t].columns) w += columns_[c].width_bytes;
  return w;
}

double Catalog::TablePages(TableId t) const {
  return std::max(1.0, std::ceil(tables_[t].row_count * RowWidth(t) / kPageSize));
}

double Catalog::TotalDataBytes() const {
  double total = 0;
  for (const Table& t : tables_) total += t.row_count * RowWidth(t.id);
  return total;
}

void Catalog::WarmStatistics() const {
  for (ColumnId c = 0; c < num_columns(); ++c) ZipfFor(c);
}

const Zipf& Catalog::ZipfFor(ColumnId c) const {
  auto& slot = zipf_cache_[c];
  if (!slot) {
    slot = std::make_unique<Zipf>(columns_[c].distinct, columns_[c].zipf_z);
  }
  return *slot;
}

double Catalog::EqSelectivity(ColumnId c, double quantile) const {
  quantile = std::clamp(quantile, 0.0, 1.0 - 1e-12);
  const Column& col = columns_[c];
  const uint64_t rank =
      1 + static_cast<uint64_t>(quantile * static_cast<double>(col.distinct));
  return ZipfFor(c).Pmf(std::min(rank, col.distinct));
}

double Catalog::RangeSelectivity(ColumnId c, double quantile,
                                 double width) const {
  quantile = std::clamp(quantile, 0.0, 1.0);
  width = std::clamp(width, 0.0, 1.0);
  const Column& col = columns_[c];
  const double n = static_cast<double>(col.distinct);
  const uint64_t lo = static_cast<uint64_t>(quantile * n);  // ranks (lo, hi]
  const uint64_t hi = std::min(
      col.distinct, lo + std::max<uint64_t>(1, static_cast<uint64_t>(width * n)));
  return ZipfFor(c).Mass(lo, hi);
}

namespace {

/// Shorthand builder for the TPC-H tables below.
struct TableBuilder {
  Catalog* cat;
  TableId id;
  double z;  // skew applied to non-unique columns

  /// Unique column (distinct == row count, never skewed: a key's
  /// frequency histogram is flat by definition).
  ColumnId Key(const std::string& name, int width) {
    return cat->AddColumn(id, name, width, cat->table(id).row_count, 0.0);
  }
  /// Regular data/FK column with `distinct` values and catalog skew.
  ColumnId Col(const std::string& name, int width, uint64_t distinct) {
    return cat->AddColumn(id, name, width, distinct, z);
  }
};

uint64_t Scaled(double sf, uint64_t base) {
  return std::max<uint64_t>(1, static_cast<uint64_t>(base * sf));
}

}  // namespace

Catalog MakeTpchCatalog(double sf, double z) {
  COPHY_CHECK_GT(sf, 0.0);
  Catalog cat;

  // REGION
  {
    TableId t = cat.AddTable("region", 5);
    TableBuilder b{&cat, t, z};
    ColumnId rk = b.Key("r_regionkey", 4);
    b.Col("r_name", 25, 5);
    b.Col("r_comment", 80, 5);
    cat.SetPrimaryKey(t, {rk});
  }
  // NATION
  {
    TableId t = cat.AddTable("nation", 25);
    TableBuilder b{&cat, t, z};
    ColumnId nk = b.Key("n_nationkey", 4);
    b.Col("n_name", 25, 25);
    b.Col("n_regionkey", 4, 5);
    b.Col("n_comment", 100, 25);
    cat.SetPrimaryKey(t, {nk});
  }
  // SUPPLIER
  {
    TableId t = cat.AddTable("supplier", Scaled(sf, 10000));
    TableBuilder b{&cat, t, z};
    ColumnId sk = b.Key("s_suppkey", 4);
    b.Col("s_name", 25, Scaled(sf, 10000));
    b.Col("s_address", 40, Scaled(sf, 10000));
    b.Col("s_nationkey", 4, 25);
    b.Col("s_phone", 15, Scaled(sf, 10000));
    b.Col("s_acctbal", 8, Scaled(sf, 9999));
    b.Col("s_comment", 100, Scaled(sf, 10000));
    cat.SetPrimaryKey(t, {sk});
  }
  // CUSTOMER
  {
    TableId t = cat.AddTable("customer", Scaled(sf, 150000));
    TableBuilder b{&cat, t, z};
    ColumnId ck = b.Key("c_custkey", 4);
    b.Col("c_name", 25, Scaled(sf, 150000));
    b.Col("c_address", 40, Scaled(sf, 150000));
    b.Col("c_nationkey", 4, 25);
    b.Col("c_phone", 15, Scaled(sf, 150000));
    b.Col("c_acctbal", 8, Scaled(sf, 140000));
    b.Col("c_mktsegment", 10, 5);
    b.Col("c_comment", 117, Scaled(sf, 150000));
    cat.SetPrimaryKey(t, {ck});
  }
  // PART
  {
    TableId t = cat.AddTable("part", Scaled(sf, 200000));
    TableBuilder b{&cat, t, z};
    ColumnId pk = b.Key("p_partkey", 4);
    b.Col("p_name", 55, Scaled(sf, 200000));
    b.Col("p_mfgr", 25, 5);
    b.Col("p_brand", 10, 25);
    b.Col("p_type", 25, 150);
    b.Col("p_size", 4, 50);
    b.Col("p_container", 10, 40);
    b.Col("p_retailprice", 8, Scaled(sf, 20000));
    b.Col("p_comment", 23, Scaled(sf, 130000));
    cat.SetPrimaryKey(t, {pk});
  }
  // PARTSUPP
  {
    TableId t = cat.AddTable("partsupp", Scaled(sf, 800000));
    TableBuilder b{&cat, t, z};
    ColumnId ppk = b.Col("ps_partkey", 4, Scaled(sf, 200000));
    ColumnId psk = b.Col("ps_suppkey", 4, Scaled(sf, 10000));
    b.Col("ps_availqty", 4, 9999);
    b.Col("ps_supplycost", 8, 99901);
    b.Col("ps_comment", 199, Scaled(sf, 800000));
    cat.SetPrimaryKey(t, {ppk, psk});
  }
  // ORDERS
  {
    TableId t = cat.AddTable("orders", Scaled(sf, 1500000));
    TableBuilder b{&cat, t, z};
    ColumnId ok = b.Key("o_orderkey", 4);
    b.Col("o_custkey", 4, Scaled(sf, 100000));
    b.Col("o_orderstatus", 1, 3);
    b.Col("o_totalprice", 8, Scaled(sf, 1500000));
    b.Col("o_orderdate", 4, 2406);
    b.Col("o_orderpriority", 15, 5);
    b.Col("o_clerk", 15, Scaled(sf, 1000));
    b.Col("o_shippriority", 4, 1);
    b.Col("o_comment", 79, Scaled(sf, 1500000));
    cat.SetPrimaryKey(t, {ok});
  }
  // LINEITEM
  {
    TableId t = cat.AddTable("lineitem", Scaled(sf, 6000000));
    TableBuilder b{&cat, t, z};
    ColumnId lok = b.Col("l_orderkey", 4, Scaled(sf, 1500000));
    b.Col("l_partkey", 4, Scaled(sf, 200000));
    b.Col("l_suppkey", 4, Scaled(sf, 10000));
    ColumnId lln = b.Col("l_linenumber", 4, 7);
    b.Col("l_quantity", 8, 50);
    b.Col("l_extendedprice", 8, Scaled(sf, 933900));
    b.Col("l_discount", 8, 11);
    b.Col("l_tax", 8, 9);
    b.Col("l_returnflag", 1, 3);
    b.Col("l_linestatus", 1, 2);
    b.Col("l_shipdate", 4, 2526);
    b.Col("l_commitdate", 4, 2466);
    b.Col("l_receiptdate", 4, 2555);
    b.Col("l_shipinstruct", 25, 4);
    b.Col("l_shipmode", 10, 7);
    b.Col("l_comment", 44, Scaled(sf, 4500000));
    cat.SetPrimaryKey(t, {lok, lln});
  }

  return cat;
}

}  // namespace cophy
