// The statistics catalog: table/column metadata plus the per-column
// value-distribution statistics that the what-if optimizer costs plans
// from. There is no materialized data — like a real what-if optimizer,
// everything downstream consumes only statistics (see DESIGN.md §1).
#ifndef COPHY_CATALOG_CATALOG_H_
#define COPHY_CATALOG_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace cophy {

using TableId = int32_t;
using ColumnId = int32_t;

inline constexpr TableId kInvalidTable = -1;
inline constexpr ColumnId kInvalidColumn = -1;

/// Column metadata + statistics. `distinct` is the number of distinct
/// values; `zipf_z` is the skew of the value-frequency distribution
/// (z = 0 uniform, z = 2 highly skewed, as in tpcdskew).
struct Column {
  ColumnId id = kInvalidColumn;
  TableId table = kInvalidTable;
  std::string name;
  int width_bytes = 4;
  uint64_t distinct = 1;
  double zipf_z = 0.0;
};

/// Table metadata. `primary_key` is the clustered primary-key column
/// sequence; the base configuration X0 in the paper consists of exactly
/// these clustered PK indexes.
struct Table {
  TableId id = kInvalidTable;
  std::string name;
  uint64_t row_count = 0;
  std::vector<ColumnId> columns;
  std::vector<ColumnId> primary_key;
};

/// The database catalog: schema plus statistics, with Zipf-aware
/// selectivity estimation primitives shared by the optimizer and the
/// index size estimator.
class Catalog {
 public:
  /// Bytes per page, used for all page-count estimates.
  static constexpr double kPageSize = 8192.0;

  TableId AddTable(std::string name, uint64_t row_count);
  ColumnId AddColumn(TableId table, std::string name, int width_bytes,
                     uint64_t distinct, double zipf_z = 0.0);
  void SetPrimaryKey(TableId table, std::vector<ColumnId> key);

  const Table& table(TableId t) const { return tables_[t]; }
  const Column& column(ColumnId c) const { return columns_[c]; }
  int num_tables() const { return static_cast<int>(tables_.size()); }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Looks up a table by name; kInvalidTable if absent.
  TableId FindTable(const std::string& name) const;
  /// Looks up a column by name within a table; kInvalidColumn if absent.
  ColumnId FindColumn(TableId table, const std::string& name) const;

  /// Width in bytes of one row of `t` (sum of column widths).
  double RowWidth(TableId t) const;
  /// Heap pages occupied by table `t`.
  double TablePages(TableId t) const;
  /// Total data size in bytes across all tables (the paper's storage
  /// budgets are expressed as a fraction M of this).
  double TotalDataBytes() const;

  /// Selectivity of an equality predicate `col = v` where v is the value
  /// of rank `1 + floor(quantile * distinct)` in the frequency-ordered
  /// domain. Under skew, cold values give tiny selectivities and hot
  /// values large ones — which is how skewed data changes index benefit.
  double EqSelectivity(ColumnId c, double quantile) const;

  /// Selectivity of a range predicate covering a `width` fraction of the
  /// rank domain starting at `quantile`.
  double RangeSelectivity(ColumnId c, double quantile, double width) const;

  /// Forces the lazy per-column distribution cache to be fully built.
  /// The selectivity getters are const but populate that cache on first
  /// touch, so concurrent first touches would race; parallel consumers
  /// (Inum::Prepare with a thread pool) call this once up front, after
  /// which every selectivity query is a pure read.
  void WarmStatistics() const;

 private:
  const Zipf& ZipfFor(ColumnId c) const;

  std::vector<Table> tables_;
  std::vector<Column> columns_;
  // Lazily built per-column distributions (index == ColumnId).
  mutable std::vector<std::unique_ptr<Zipf>> zipf_cache_;
};

/// Builds the TPC-H schema (8 tables) at scale factor `sf` with skew
/// parameter `z` applied to non-unique columns, mirroring the paper's
/// tpcdskew-generated 1 GB databases with z in {0, 1, 2}.
Catalog MakeTpchCatalog(double sf, double z);

}  // namespace cophy

#endif  // COPHY_CATALOG_CATALOG_H_
