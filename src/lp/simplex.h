// A sparse bounded-variable revised simplex for the LP relaxations
// solved by the generic MIP path. Variable bounds `lo <= x <= hi` are
// handled implicitly through nonbasic-at-lower / nonbasic-at-upper
// states (no synthetic bound rows), pricing walks the model's CSC
// column views, and the reduced-cost row is maintained incrementally
// from the sparse pivot row across pivots. The basis is held as a
// sparse LU factorization (lp/lu_factor.h: Markowitz-ordered,
// threshold-pivoted, Forrest–Tomlin updated per pivot, refactorized on
// a fill/stability trigger), so FTRAN/BTRAN cost O(factor nnz) instead
// of O(rows^2).
//
// Two entry points, selected by LpOptions::entry:
//  - Primal (default): artificial-free phase 1 restores primal
//    feasibility of an arbitrary starting basis by minimizing the
//    total bound violation of the basic variables, then phase 2
//    optimizes. Phase-2 pricing is devex by default (reference-
//    framework weights with cheap resets, LpOptions::pricing switches
//    back to Dantzig), every candidate is confirmed against its exact
//    reduced cost after FTRAN, and a Bland fallback guards against
//    cycling.
//  - Dual: from a dual-feasible basis (wrong-sign reduced costs on
//    boxed nonbasics are repaired by bound flips first), a dual ratio
//    test with bound-flipping long steps drives the primal
//    infeasibility out without ever entering primal phase 1. This is
//    the branch-and-bound node path: a parent-optimal basis stays dual
//    feasible under child bound changes, so node re-solves cost a few
//    dual pivots. A start that cannot be made dual feasible falls back
//    to the primal phases transparently.
//
// The old dense tableau implementation survives as SolveLpDense in
// lp/dense_simplex.h (differential-test oracle and benchmark baseline).
#ifndef COPHY_LP_SIMPLEX_H_
#define COPHY_LP_SIMPLEX_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "lp/model.h"

namespace cophy::lp {

/// Simplex status of one variable (structural or row slack).
enum class VarStatus : int8_t {
  kAtLower = 0,  ///< nonbasic at its lower bound
  kAtUpper = 1,  ///< nonbasic at its upper bound
  kBasic = 2,
  kFree = 3,     ///< nonbasic with no finite bound (value 0)
};

/// An exported simplex basis: one status per structural variable and
/// one per row (the row's slack). Feed it back into SolveLp to
/// warm-start a related solve (same model shape, perturbed bounds).
struct LpBasis {
  std::vector<VarStatus> variables;
  std::vector<VarStatus> slacks;
  bool empty() const { return variables.empty() && slacks.empty(); }
};

/// Phase-2 pricing rule for the primal simplex.
enum class Pricing : int8_t {
  /// Largest reduced-cost violation. Cheap per pivot, but blind to the
  /// steepness of the resulting edge — degenerate BIP relaxations pay
  /// for it in pivot count.
  kDantzig = 0,
  /// Devex (Harris '73): approximate steepest-edge weights maintained
  /// from the pivot row against a reference framework, reset to the
  /// current nonbasic set whenever the weights blow past their trusted
  /// range. Nearly Dantzig-cheap per pivot, close to steepest-edge in
  /// pivot count. The default.
  kDevex = 1,
};

/// How SolveLp enters the solve.
enum class SimplexEntry : int8_t {
  /// Phase 1 (restore primal feasibility), then phase 2.
  kPrimal = 0,
  /// Dual simplex from the (possibly flip-repaired) starting basis;
  /// falls back to the primal phases if the basis cannot be made dual
  /// feasible. The right entry when the basis of a *related* solve is
  /// re-imported under changed bounds or rhs: it skips primal phase 1
  /// entirely.
  kDual = 1,
};

/// How the constraint matrix is conditioned before the solve. Scaling
/// is deterministic from the model alone, so re-imported bases see the
/// same scaled problem on every solve.
enum class LpScaling : int8_t {
  /// Rows divided by their largest |coefficient| (the legacy behavior).
  kRowEquilibrate = 0,
  /// Geometric-mean column scaling (factors snapped to powers of two,
  /// so applying and undoing them is exact) composed with the row
  /// equilibration. The default: wide-dynamic-range columns stop
  /// dictating pivot tolerances for everyone else.
  kGeometricMean = 1,
};

/// Knobs for one SolveLp call.
struct LpOptions {
  Pricing pricing = Pricing::kDevex;
  SimplexEntry entry = SimplexEntry::kPrimal;
  /// Whether the final row duals / reduced costs are exported (one
  /// extra BTRAN + pricing pass; node LPs that never read them pass
  /// false).
  bool want_duals = true;
  LpScaling scaling = LpScaling::kGeometricMean;
  /// Master switch for the numerical self-defense layer: the
  /// stall/cycling watchdog, degeneracy perturbation, the recovery
  /// ladder (Bland / Markowitz-threshold / slack-repair / cold
  /// restart), and solution certification with iterative refinement.
  /// Off is the ablation baseline the safeguard-overhead CI gate
  /// compares against.
  bool safeguards = true;
  /// Degenerate pivots in a row before the watchdog declares a stall
  /// and escalates (perturb, then Bland). <= 0 picks an adaptive
  /// default; tests pin tiny values to exercise the ladder.
  int64_t stall_pivot_limit = 0;
};

/// Per-solve work counters.
struct LpSolveStats {
  int64_t phase1_pivots = 0;   ///< primal feasibility-restoring pivots
  int64_t phase2_pivots = 0;   ///< primal optimality pivots
  int64_t dual_pivots = 0;     ///< dual-simplex pivots
  int64_t bound_flips = 0;     ///< nonbasic lower<->upper moves (no pivot)
  int64_t devex_resets = 0;    ///< devex reference-framework resets
  bool warm_started = false;   ///< an imported basis was accepted
  bool dual_entered = false;   ///< the dual simplex ran (and did not fall back)
  // Basis-factorization accounting (the sparse LU behind FTRAN/BTRAN).
  int64_t refactorizations = 0;  ///< fresh LU factorizations (incl. imports)
  int64_t ft_updates = 0;        ///< Forrest–Tomlin basis updates applied
  int64_t eta_nnz = 0;           ///< update fill appended (spike + row etas)
  int64_t lu_fill_nnz = 0;       ///< L+U fill-in at the last factorization
  double max_drift = 0.0;        ///< worst basic-value drift caught at a refresh
  double ftran_btran_seconds = 0.0;  ///< wall time inside FTRAN/BTRAN solves
  // Numerical-safeguard accounting (LpOptions::safeguards).
  /// The independent unscaled verification pass (primal/dual
  /// feasibility, complementarity, objective match) accepted the
  /// solution. Only ever true on an Ok status with safeguards on;
  /// branch-and-bound refuses to prune on uncertified bounds.
  bool certified = false;
  double primal_residual = 0.0;  ///< worst relative row/bound violation, unscaled
  double dual_residual = 0.0;    ///< worst relative reduced-cost sign violation
  double objective_gap = 0.0;    ///< relative primal-vs-dual objective mismatch
  int64_t refinement_rounds = 0; ///< residual-FTRAN refinement passes applied
  int64_t perturbations_applied = 0;  ///< degeneracy perturbations installed
  int64_t perturbations_removed = 0;  ///< ... removed before the final verdict
  int64_t bland_escalations = 0;      ///< watchdog forced Bland's rule
  int64_t markowitz_escalations = 0;  ///< LU pivot threshold raised (0.1->0.5->0.99)
  int64_t singular_repairs = 0;       ///< dependent basic columns replaced by slacks
  int64_t cold_restarts = 0;          ///< solve restarted from the slack basis
};

/// Result of an LP solve.
struct LpSolution {
  Status status;          ///< Ok, Infeasible, or Unbounded
  std::vector<double> x;  ///< primal values (valid when status ok)
  double objective = 0.0; ///< includes the model's objective constant
  LpBasis basis;          ///< final basis (valid when status ok)
  /// Row duals y (one per constraint row, in the model's original row
  /// scaling). Sign convention: minimize c'x with row + slack = rhs, so
  /// a binding <= row has y <= 0 and a binding >= row has y >= 0.
  std::vector<double> duals;
  /// Reduced costs d_j = c_j - y'A_j per structural variable (zero for
  /// basic variables; >= 0 at lower bound, <= 0 at upper bound, up to
  /// the dual tolerance). The raw material for reduced-cost fixing.
  std::vector<double> reduced_costs;
  LpSolveStats stats;
};

/// Plain value snapshot of the process-wide pivot/pricing accounting
/// (what benchmarks and reports diff; see AtomicSolverCounters for the
/// live accumulator).
struct SolverCounters {
  int64_t lp_solves = 0;
  int64_t phase1_pivots = 0;
  int64_t phase2_pivots = 0;
  int64_t dual_pivots = 0;     ///< dual-simplex pivots
  int64_t bound_flips = 0;
  int64_t devex_resets = 0;    ///< devex reference-framework resets
  int64_t warm_starts = 0;     ///< solves that accepted an imported basis
  int64_t cold_starts = 0;     ///< solves from the slack basis
  int64_t factorizations = 0;  ///< fresh sparse-LU basis factorizations
  int64_t ft_updates = 0;      ///< Forrest–Tomlin basis updates applied
  int64_t eta_nnz = 0;         ///< update fill appended (spike + row etas)
  double ftran_btran_seconds = 0.0;  ///< wall time inside FTRAN/BTRAN
  // Numerical-safeguard totals (see the LpSolveStats counterparts).
  int64_t certified_solves = 0;    ///< Ok solves that passed certification
  int64_t uncertified_solves = 0;  ///< Ok solves that failed it
  int64_t refinement_rounds = 0;
  int64_t perturbations_applied = 0;
  int64_t perturbations_removed = 0;
  int64_t bland_escalations = 0;
  int64_t markowitz_escalations = 0;
  int64_t singular_repairs = 0;
  int64_t cold_restarts = 0;
};

/// The live process-wide accumulator: every field is a relaxed atomic,
/// so concurrent solves (distinct tenants in the service tier) can bump
/// it without synchronization and observers can Snapshot() a coherent
/// value set while solves are in flight. Counter bumps are relaxed —
/// totals are exact once the writer threads are quiescent or joined, and
/// monotone (never torn) in between; cross-field consistency at a
/// snapshot is best-effort by design.
struct AtomicSolverCounters {
  std::atomic<int64_t> lp_solves{0};
  std::atomic<int64_t> phase1_pivots{0};
  std::atomic<int64_t> phase2_pivots{0};
  std::atomic<int64_t> dual_pivots{0};
  std::atomic<int64_t> bound_flips{0};
  std::atomic<int64_t> devex_resets{0};
  std::atomic<int64_t> warm_starts{0};
  std::atomic<int64_t> cold_starts{0};
  std::atomic<int64_t> factorizations{0};
  std::atomic<int64_t> ft_updates{0};
  std::atomic<int64_t> eta_nnz{0};
  std::atomic<double> ftran_btran_seconds{0.0};
  std::atomic<int64_t> certified_solves{0};
  std::atomic<int64_t> uncertified_solves{0};
  std::atomic<int64_t> refinement_rounds{0};
  std::atomic<int64_t> perturbations_applied{0};
  std::atomic<int64_t> perturbations_removed{0};
  std::atomic<int64_t> bland_escalations{0};
  std::atomic<int64_t> markowitz_escalations{0};
  std::atomic<int64_t> singular_repairs{0};
  std::atomic<int64_t> cold_restarts{0};

  /// Accumulates into the double field (C++17 has no fetch_add for
  /// atomic<double>; this is the standard CAS loop).
  void AddSeconds(double s) {
    double cur = ftran_btran_seconds.load(std::memory_order_relaxed);
    while (!ftran_btran_seconds.compare_exchange_weak(
        cur, cur + s, std::memory_order_relaxed)) {
    }
  }

  SolverCounters Snapshot() const;
  void Reset();
};

AtomicSolverCounters& GlobalSolverCounters();
void ResetSolverCounters();
/// Relaxed-coherent value copy of the global accumulator (safe while
/// solves are running on other threads).
SolverCounters SolverCountersSnapshot();
/// Counter delta since a snapshot (work attribution for one run).
SolverCounters SolverCountersSince(const SolverCounters& snapshot);

/// Solves the LP relaxation of `model` (integrality dropped). Variable
/// bounds are honored. `var_lower`/`var_upper` optionally override the
/// model bounds (used by branch-and-bound to fix variables).
/// `warm_basis`, if given and structurally compatible, seeds the solve
/// with that basis; an unusable basis silently falls back to a cold
/// start from the slack basis. Pricing rule, entry (primal phases vs
/// dual simplex), and dual export are set through `options`.
LpSolution SolveLp(const Model& model, const LpOptions& options,
                   const std::vector<double>* var_lower = nullptr,
                   const std::vector<double>* var_upper = nullptr,
                   const LpBasis* warm_basis = nullptr);

/// Positional convenience overload at default pricing/entry.
LpSolution SolveLp(const Model& model,
                   const std::vector<double>* var_lower = nullptr,
                   const std::vector<double>* var_upper = nullptr,
                   const LpBasis* warm_basis = nullptr,
                   bool want_duals = true);

}  // namespace cophy::lp

#endif  // COPHY_LP_SIMPLEX_H_
