// A dense two-phase primal simplex for the LP relaxations of small and
// medium models (the generic solver path; the structured ChoiceSolver
// handles production-scale instances). Bland's rule guards against
// cycling.
#ifndef COPHY_LP_SIMPLEX_H_
#define COPHY_LP_SIMPLEX_H_

#include <vector>

#include "common/status.h"
#include "lp/model.h"

namespace cophy::lp {

/// Result of an LP solve.
struct LpSolution {
  Status status;          ///< Ok, Infeasible, or Unbounded
  std::vector<double> x;  ///< primal values (valid when status ok)
  double objective = 0.0; ///< includes the model's objective constant
};

/// Solves the LP relaxation of `model` (integrality dropped). Variable
/// bounds are honored. `var_lower`/`var_upper` optionally override the
/// model bounds (used by branch-and-bound to fix variables).
LpSolution SolveLp(const Model& model,
                   const std::vector<double>* var_lower = nullptr,
                   const std::vector<double>* var_upper = nullptr);

}  // namespace cophy::lp

#endif  // COPHY_LP_SIMPLEX_H_
