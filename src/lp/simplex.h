// A sparse bounded-variable revised primal simplex for the LP
// relaxations solved by the generic MIP path. Variable bounds
// `lo <= x <= hi` are handled implicitly through nonbasic-at-lower /
// nonbasic-at-upper states (no synthetic bound rows), pricing walks the
// model's CSC column views, and the reduced-cost row is maintained
// incrementally across pivots. The basis is held as a sparse LU
// factorization (lp/lu_factor.h: Markowitz-ordered, threshold-pivoted,
// product-form eta updates per pivot, refactorized periodically and on
// drift), so FTRAN/BTRAN cost O(factor nnz) instead of O(rows^2).
// Phase 1 is artificial-free: it restores primal feasibility of an
// arbitrary starting basis by minimizing the total bound violation of
// the basic variables, which is also what makes warm starts from a
// parent basis cheap. Dantzig pricing with a Bland fallback guards
// against cycling.
//
// The old dense tableau implementation survives as SolveLpDense in
// lp/dense_simplex.h (differential-test oracle and benchmark baseline).
#ifndef COPHY_LP_SIMPLEX_H_
#define COPHY_LP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "lp/model.h"

namespace cophy::lp {

/// Simplex status of one variable (structural or row slack).
enum class VarStatus : int8_t {
  kAtLower = 0,  ///< nonbasic at its lower bound
  kAtUpper = 1,  ///< nonbasic at its upper bound
  kBasic = 2,
  kFree = 3,     ///< nonbasic with no finite bound (value 0)
};

/// An exported simplex basis: one status per structural variable and
/// one per row (the row's slack). Feed it back into SolveLp to
/// warm-start a related solve (same model shape, perturbed bounds).
struct LpBasis {
  std::vector<VarStatus> variables;
  std::vector<VarStatus> slacks;
  bool empty() const { return variables.empty() && slacks.empty(); }
};

/// Per-solve work counters.
struct LpSolveStats {
  int64_t phase1_pivots = 0;   ///< feasibility-restoring pivots
  int64_t phase2_pivots = 0;   ///< optimality pivots
  int64_t bound_flips = 0;     ///< nonbasic lower<->upper moves (no pivot)
  bool warm_started = false;   ///< an imported basis was accepted
  // Basis-factorization accounting (the sparse LU behind FTRAN/BTRAN).
  int64_t refactorizations = 0;  ///< fresh LU factorizations (incl. imports)
  int64_t eta_nnz = 0;           ///< product-form eta nonzeros appended
  int64_t lu_fill_nnz = 0;       ///< L+U fill-in at the last factorization
  double max_drift = 0.0;        ///< worst basic-value drift caught at a refresh
  double ftran_btran_seconds = 0.0;  ///< wall time inside FTRAN/BTRAN solves
};

/// Result of an LP solve.
struct LpSolution {
  Status status;          ///< Ok, Infeasible, or Unbounded
  std::vector<double> x;  ///< primal values (valid when status ok)
  double objective = 0.0; ///< includes the model's objective constant
  LpBasis basis;          ///< final basis (valid when status ok)
  /// Row duals y (one per constraint row, in the model's original row
  /// scaling). Sign convention: minimize c'x with row + slack = rhs, so
  /// a binding <= row has y <= 0 and a binding >= row has y >= 0.
  std::vector<double> duals;
  /// Reduced costs d_j = c_j - y'A_j per structural variable (zero for
  /// basic variables; >= 0 at lower bound, <= 0 at upper bound, up to
  /// the dual tolerance). The raw material for reduced-cost fixing.
  std::vector<double> reduced_costs;
  LpSolveStats stats;
};

/// Process-wide pivot/pricing accounting, accumulated by every SolveLp
/// call (single-threaded; benchmarks snapshot and diff it).
struct SolverCounters {
  int64_t lp_solves = 0;
  int64_t phase1_pivots = 0;
  int64_t phase2_pivots = 0;
  int64_t bound_flips = 0;
  int64_t warm_starts = 0;     ///< solves that accepted an imported basis
  int64_t cold_starts = 0;     ///< solves from the slack basis
  int64_t factorizations = 0;  ///< fresh sparse-LU basis factorizations
  int64_t eta_nnz = 0;         ///< product-form eta nonzeros appended
  double ftran_btran_seconds = 0.0;  ///< wall time inside FTRAN/BTRAN
};
SolverCounters& GlobalSolverCounters();
void ResetSolverCounters();
/// Counter delta since a snapshot (work attribution for one run).
SolverCounters SolverCountersSince(const SolverCounters& snapshot);

/// Solves the LP relaxation of `model` (integrality dropped). Variable
/// bounds are honored. `var_lower`/`var_upper` optionally override the
/// model bounds (used by branch-and-bound to fix variables).
/// `warm_basis`, if given and structurally compatible, seeds the solve
/// with that basis; an unusable basis silently falls back to a cold
/// start from the slack basis. `want_duals` controls whether the final
/// row duals / reduced costs are exported (one extra BTRAN + pricing
/// pass; node LPs that never read them pass false).
LpSolution SolveLp(const Model& model,
                   const std::vector<double>* var_lower = nullptr,
                   const std::vector<double>* var_upper = nullptr,
                   const LpBasis* warm_basis = nullptr,
                   bool want_duals = true);

}  // namespace cophy::lp

#endif  // COPHY_LP_SIMPLEX_H_
