#include "lp/choice_problem.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/stopwatch.h"
#include "lp/simplex.h"

namespace cophy::lp {

namespace {
constexpr double kTol = 1e-9;
/// Branch score for a zero-delta tie (see NodeBound): small enough that
/// any real penalty dominates, positive so pick_branch still branches.
constexpr double kTieScore = 1e-30;
}

// ---------------------------------------------------------------------------
// ChoiceProblem evaluation

double ChoiceProblem::QueryCost(int q, const std::vector<uint8_t>& selected) const {
  const ChoiceQuery& query = queries[q];
  double best = kInf;
  for (const ChoicePlan& plan : query.plans) {
    double c = plan.beta;
    bool ok = true;
    for (const ChoiceSlot& slot : plan.slots) {
      double g = kInf;
      for (const ChoiceOption& o : slot.options) {  // sorted by gamma
        if (o.index == kBaseOption || selected[o.index]) {
          g = o.gamma;
          break;
        }
      }
      if (g == kInf) {
        ok = false;
        break;
      }
      c += g;
    }
    if (ok) best = std::min(best, c);
  }
  return best;
}

double ChoiceProblem::Objective(const std::vector<uint8_t>& selected) const {
  double total = constant_cost;
  for (int a = 0; a < num_indexes; ++a) {
    if (selected[a]) total += fixed_cost[a];
  }
  for (int q = 0; q < static_cast<int>(queries.size()); ++q) {
    const double c = QueryCost(q, selected);
    if (c == kInf) return kInf;
    total += queries[q].weight * c;
  }
  return total;
}

bool ChoiceProblem::Feasible(const std::vector<uint8_t>& selected) const {
  double used = 0;
  for (int a = 0; a < num_indexes; ++a) {
    if (selected[a]) used += size[a];
  }
  if (used > storage_budget * (1 + kTol) + kTol) return false;
  for (const ZRow& row : z_rows) {
    double lhs = 0;
    for (const auto& [a, c] : row.terms) {
      if (selected[a]) lhs += c;
    }
    switch (row.sense) {
      case Sense::kLe:
        if (lhs > row.rhs + 1e-6) return false;
        break;
      case Sense::kGe:
        if (lhs < row.rhs - 1e-6) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - row.rhs) > 1e-6) return false;
        break;
    }
  }
  for (int q = 0; q < static_cast<int>(queries.size()); ++q) {
    if (queries[q].cost_cap < kInf &&
        QueryCost(q, selected) > queries[q].cost_cap * (1 + 1e-9)) {
      return false;
    }
  }
  return true;
}

int64_t ChoiceProblem::NumOptionEntries() const {
  int64_t n = 0;
  for (const ChoiceQuery& q : queries) {
    for (const ChoicePlan& p : q.plans) {
      for (const ChoiceSlot& s : p.slots) n += s.options.size();
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Solver construction

ChoiceSolver::ChoiceSolver(const ChoiceProblem* problem) : p_(problem) {
  COPHY_CHECK(problem != nullptr);
  for (int a = 0; a < p_->num_indexes; ++a) {
    COPHY_CHECK_GE(p_->fixed_cost[a], 0.0);
    COPHY_CHECK_GE(p_->size[a], 0.0);
  }
  // Precondition of the aggregated (query, index) Lagrangian: within any
  // plan, different slots must offer disjoint index sets. This holds by
  // construction for index-tuning problems (slots are distinct tables)
  // and is what makes one multiplier per (query, index) exact.
  {
    std::vector<int> last_slot_of(p_->num_indexes, -1);
    int plan_counter = 0;
    for (const ChoiceQuery& q : p_->queries) {
      for (const ChoicePlan& plan : q.plans) {
        int slot_counter = 0;
        for (const ChoiceSlot& slot : plan.slots) {
          const int tag = plan_counter * 1000 + slot_counter;
          for (const ChoiceOption& o : slot.options) {
            if (o.index == kBaseOption) continue;
            const int prev = last_slot_of[o.index];
            COPHY_CHECK(prev / 1000 != plan_counter || prev == tag ||
                        prev < 0);
            last_slot_of[o.index] = tag;
          }
          ++slot_counter;
        }
        ++plan_counter;
      }
    }
  }
  // Flatten the z constraints into CSR form once; ConstraintsAdmissible
  // runs on every node and should not chase row-of-vectors pointers.
  zrow_start_.assign(1, 0);
  for (const ZRow& row : p_->z_rows) {
    for (const auto& [a, c] : row.terms) {
      zrow_idx_.push_back(a);
      zrow_coef_.push_back(c);
    }
    zrow_start_.push_back(static_cast<int32_t>(zrow_idx_.size()));
  }
  queries_of_index_.assign(p_->num_indexes, {});
  slot_refs_of_index_.assign(p_->num_indexes, {});
  indexes_of_query_.assign(p_->queries.size(), {});
  plan_start_.assign(p_->queries.size() + 1, 0);
  for (int q = 0; q < static_cast<int>(p_->queries.size()); ++q) {
    plan_start_[q + 1] =
        plan_start_[q] + static_cast<int32_t>(p_->queries[q].plans.size());
  }
  slot_start_.assign(plan_start_.back() + 1, 0);
  // Assign one μ-slot per distinct (query, index) pair and map every
  // option entry (canonical iteration order) to its slot.
  std::vector<int32_t> mu_slot_of(p_->num_indexes, -1);
  for (int q = 0; q < static_cast<int>(p_->queries.size()); ++q) {
    std::vector<int> touched;
    const auto& plans = p_->queries[q].plans;
    for (int pi = 0; pi < static_cast<int>(plans.size()); ++pi) {
      const int plan_id = plan_start_[q] + pi;
      slot_start_[plan_id + 1] =
          slot_start_[plan_id] + static_cast<int32_t>(plans[pi].slots.size());
      for (int si = 0; si < static_cast<int>(plans[pi].slots.size()); ++si) {
        for (const ChoiceOption& o : plans[pi].slots[si].options) {
          if (o.index == kBaseOption) continue;
          if (mu_slot_of[o.index] < 0) {
            mu_slot_of[o.index] = static_cast<int32_t>(mu_owner_index_.size());
            mu_owner_index_.push_back(o.index);
            mu_owner_query_.push_back(q);
            queries_of_index_[o.index].push_back(q);
            touched.push_back(o.index);
          }
          entry_mu_idx_.push_back(mu_slot_of[o.index]);
          // Positions arrive in iteration order, so a back-of-list
          // check is all the dedup the slot inverted list needs (a
          // repeat of one index within a slot keeps the first = the
          // γ-cheapest occurrence).
          auto& refs = slot_refs_of_index_[o.index];
          if (refs.empty() || refs.back().query != q ||
              refs.back().plan != pi || refs.back().slot != si) {
            refs.push_back({q, pi, si, o.gamma});
          }
        }
      }
    }
    indexes_of_query_[q].assign(touched.begin(), touched.end());
    for (int a : touched) mu_slot_of[a] = -1;  // reset for the next query
  }
}

// ---------------------------------------------------------------------------
// Bounds

double ChoiceSolver::NodeBound(const std::vector<int8_t>& fixed,
                               std::vector<double>* branch_score) const {
  double total = p_->constant_cost;
  double budget_left = p_->storage_budget;
  for (int a = 0; a < p_->num_indexes; ++a) {
    if (fixed[a] == 1) {
      total += p_->fixed_cost[a];
      budget_left -= p_->size[a];
    }
  }
  const bool budgeted = p_->storage_budget < kInf;

  // Per-index attributed penalties: each query attributes the cost
  // increase of losing its most load-bearing free index to that single
  // index, which keeps the penalties additive across queries (a valid
  // joint lower bound; see the knapsack correction below).
  scratch_penalty_.assign(p_->num_indexes, 0.0);
  int tie_branch = -1;  // free first-choice index with a zero-delta tie

  // Evaluates the query's optimistic cost with one extra index banned.
  auto optimistic_without = [&](const ChoiceQuery& query, int banned) {
    double best = kInf;
    for (const ChoicePlan& plan : query.plans) {
      double c = plan.beta;
      bool ok = true;
      for (const ChoiceSlot& slot : plan.slots) {
        double g = kInf;
        for (const ChoiceOption& o : slot.options) {
          if (o.index == banned) continue;
          if (o.index == kBaseOption || fixed[o.index] != 0) {
            g = o.gamma;
            break;
          }
        }
        if (g == kInf) {
          ok = false;
          break;
        }
        c += g;
      }
      if (ok && c < best) best = c;
    }
    return best;
  };

  for (int q = 0; q < static_cast<int>(p_->queries.size()); ++q) {
    const ChoiceQuery& query = p_->queries[q];
    double qbest = kInf;
    const ChoicePlan* best_plan = nullptr;
    for (const ChoicePlan& plan : query.plans) {
      double c = plan.beta;
      bool ok = true;
      for (const ChoiceSlot& slot : plan.slots) {
        double g = kInf;
        for (const ChoiceOption& o : slot.options) {
          if (o.index == kBaseOption || fixed[o.index] != 0) {
            g = o.gamma;
            break;
          }
        }
        if (g == kInf) {
          ok = false;
          break;
        }
        c += g;
      }
      if (ok && c < qbest) {
        qbest = c;
        best_plan = &plan;
      }
    }
    if (qbest == kInf) return kInf;                       // unsatisfiable
    if (qbest > query.cost_cap * (1 + 1e-9)) return kInf;  // cap unreachable
    total += query.weight * qbest;

    if (best_plan != nullptr) {
      // Distinct free first-choice indexes of the winning plan.
      int banned_ids[16];
      int num_banned = 0;
      for (const ChoiceSlot& slot : best_plan->slots) {
        for (const ChoiceOption& o : slot.options) {
          if (o.index == kBaseOption || fixed[o.index] != 0) {
            if (o.index != kBaseOption && fixed[o.index] == -1 &&
                num_banned < 16) {
              bool dup = false;
              for (int i = 0; i < num_banned; ++i) {
                dup |= banned_ids[i] == o.index;
              }
              if (!dup) banned_ids[num_banned++] = o.index;
            }
            break;
          }
        }
      }
      double best_delta = 0;
      int best_idx = -1;
      for (int i = 0; i < num_banned; ++i) {
        const double without = optimistic_without(query, banned_ids[i]);
        const double delta = without - qbest;  // >= 0
        if (delta > best_delta) {
          best_delta = delta;
          best_idx = banned_ids[i];
        }
      }
      if (best_idx >= 0) {
        scratch_penalty_[best_idx] += query.weight * best_delta;
      } else if (num_banned > 0 && tie_branch < 0) {
        // The winning plan leans on free indexes, but banning any single
        // one costs nothing (another free index ties for the slot). No
        // penalty may be charged (the bound must stay valid), yet the
        // node is NOT a resolved leaf: dropping all tied indexes at once
        // can lose real value. Remember one of them so pick_branch has
        // something to branch on — without this the search would close
        // the subtree around its "fixed-only" completion and could prune
        // the true optimum (observed as two bit-equivalent BIPs "proving"
        // different optima).
        tie_branch = banned_ids[0];
      }
    }
  }

  // Knapsack correction: the free indexes carrying penalties cannot all
  // fit into the remaining budget; any feasible completion must drop a
  // subset whose sizes close the overflow, forfeiting at least the
  // fractional-knapsack value of the dropped penalties.
  double correction = 0.0;
  if (budgeted) {
    double used = 0;
    std::vector<std::pair<double, int>> carriers;  // (penalty/size, index)
    for (int a = 0; a < p_->num_indexes; ++a) {
      if (scratch_penalty_[a] > 0) {
        used += p_->size[a];
        carriers.push_back(
            {scratch_penalty_[a] / std::max(1.0, p_->size[a]), a});
      }
    }
    if (used > budget_left) {
      // Keep the densest carriers within budget; forfeit the rest.
      std::sort(carriers.begin(), carriers.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      double room = std::max(0.0, budget_left);
      for (const auto& [density, a] : carriers) {
        const double sz = std::max(1.0, p_->size[a]);
        if (room >= sz) {
          room -= sz;
        } else {
          correction += scratch_penalty_[a] * (1.0 - room / sz);
          room = 0;
        }
      }
    }
  }

  if (branch_score != nullptr) {
    *branch_score = scratch_penalty_;
    // Zero-delta ties: surface one tied index with an infinitesimal
    // score so the node keeps branching when no real penalty exists.
    // The bound itself is untouched.
    if (tie_branch >= 0 && (*branch_score)[tie_branch] <= 0.0) {
      (*branch_score)[tie_branch] = kTieScore;
    }
  }
  return total + correction;
}

double ChoiceSolver::LagrangianNodeBound(const std::vector<int8_t>& fixed) const {
  if (!mu_ready_) return -kInf;
  double total = p_->constant_cost;
  const bool budgeted = p_->storage_budget < kInf;
  if (budgeted) total -= lambda_;  // λ · (normalized budget of 1)
  for (int a = 0; a < p_->num_indexes; ++a) {
    const double coef = p_->fixed_cost[a] +
                        (budgeted ? lambda_ * sigma_[a] : 0.0) - mu_sum_[a];
    if (fixed[a] == 1) {
      total += coef;
    } else if (fixed[a] == -1) {
      total += std::min(0.0, coef);
    }
  }
  size_t e = 0;  // cursor over entry_mu_idx_ (canonical iteration order)
  for (const ChoiceQuery& query : p_->queries) {
    double qbest = kInf;
    for (const ChoicePlan& plan : query.plans) {
      double c = query.weight * plan.beta;
      bool ok = true;
      // Every slot/option is visited (no early exit) so the entry
      // cursor stays aligned.
      for (const ChoiceSlot& slot : plan.slots) {
        double g = kInf;
        for (const ChoiceOption& o : slot.options) {
          double price;
          if (o.index == kBaseOption) {
            price = query.weight * o.gamma;
          } else {
            price = query.weight * o.gamma + mu_[entry_mu_idx_[e]];
            ++e;
          }
          if ((o.index == kBaseOption || fixed[o.index] != 0) && price < g) {
            g = price;
          }
        }
        if (g == kInf) {
          ok = false;
        } else {
          c += g;
        }
      }
      if (ok) qbest = std::min(qbest, c);
    }
    if (qbest == kInf) return kInf;
    total += qbest;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Root LP relaxation: the full Theorem-1 LP over the choice structure,
// solved with the sparse revised simplex. Its optimum is the exact LP
// bound (>= any Lagrangian dual value), its link-row duals seed μ, and
// its reduced costs drive variable fixing.

bool ChoiceSolver::BuildRootLp(Model* model, RootLpLayout* layout,
                               int64_t max_rows) const {
  // Compact form: base options are substituted out (a slot with a base
  // fallback charges its base gamma through y and lets each non-base x
  // buy the *difference*, with Σ x <= y instead of Σ x = y), and the
  // per-entry linking rows are aggregated per (query, index) —
  // z_a >= Σ_e x_e — which is valid for every integral solution (a
  // query's chosen plan uses an index in at most one slot), *tighter*
  // than the per-entry rows, and emits exactly one row per μ slot, so
  // the LP duals are the Lagrangian multipliers verbatim.
  //
  // Row estimate: one pick-one row per query, one fill row per
  // (plan, slot) with any non-base option or no base, one link row per
  // μ slot, plus caps, z-rows, and the storage row.
  int64_t rows = static_cast<int64_t>(mu_owner_index_.size()) +
                 static_cast<int64_t>(p_->z_rows.size());
  for (const ChoiceQuery& q : p_->queries) {
    rows += 1;
    if (q.cost_cap < kInf) rows += 1;
    for (const ChoicePlan& plan : q.plans) {
      for (const ChoiceSlot& slot : plan.slots) {
        const bool only_base =
            slot.options.size() == 1 && slot.options[0].index == kBaseOption;
        if (!only_base) rows += 1;
      }
    }
  }
  if (p_->storage_budget < kInf) rows += 1;
  if (rows > max_rows) return false;

  model->AddObjectiveConstant(p_->constant_cost);
  for (int a = 0; a < p_->num_indexes; ++a) {
    model->AddVariable(0.0, 1.0, p_->fixed_cost[a], /*is_integer=*/true);
  }
  layout->mu_link_row.assign(mu_owner_index_.size(), -1);
  size_t e = 0;  // canonical non-base entry cursor (entry_mu_idx_ order)
  std::vector<std::pair<VarId, double>> pick, fill, cap_terms;
  std::vector<std::pair<int32_t, VarId>> links;  // (μ slot, x var)
  for (const ChoiceQuery& q : p_->queries) {
    pick.clear();
    cap_terms.clear();
    links.clear();
    const bool has_cap = q.cost_cap < kInf;
    for (const ChoicePlan& plan : q.plans) {
      // The y objective carries beta plus every base fallback the plan
      // would pay with nothing selected; x objectives carry the
      // (non-positive after presolve) improvement over that fallback.
      double base_cost = plan.beta;
      for (const ChoiceSlot& slot : plan.slots) {
        for (const ChoiceOption& o : slot.options) {
          if (o.index == kBaseOption) {
            base_cost += o.gamma;
            break;
          }
        }
      }
      const VarId y = model->AddVariable(0.0, 1.0, q.weight * base_cost, true);
      pick.push_back({y, 1.0});
      if (has_cap) cap_terms.push_back({y, base_cost});
      for (const ChoiceSlot& slot : plan.slots) {
        double base_gamma = kInf;
        for (const ChoiceOption& o : slot.options) {
          if (o.index == kBaseOption) base_gamma = o.gamma;
        }
        const bool has_base = base_gamma < kInf;
        fill.clear();
        fill.push_back({y, -1.0});
        for (const ChoiceOption& o : slot.options) {
          if (o.index == kBaseOption) continue;
          const double delta = has_base ? o.gamma - base_gamma : o.gamma;
          const VarId x =
              model->AddVariable(0.0, 1.0, q.weight * delta, true);
          fill.push_back({x, 1.0});
          if (has_cap) cap_terms.push_back({x, delta});
          links.push_back({entry_mu_idx_[e], x});
          ++e;
        }
        if (fill.size() > 1 || !has_base) {
          // Σ_a x <= y with a base fallback (the slack is the base
          // path); Σ_a x = y when the slot has no fallback.
          model->AddRow(fill, has_base ? Sense::kLe : Sense::kEq, 0.0);
        }
      }
    }
    model->AddRow(pick, Sense::kEq, 1.0);  // Σ_k y = 1
    if (has_cap) model->AddRow(cap_terms, Sense::kLe, q.cost_cap);
    // Aggregated linking rows, one per μ slot of this query, in slot
    // creation (first-touch) order.
    std::stable_sort(links.begin(), links.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (size_t k = 0; k < links.size();) {
      const int32_t mu = links[k].first;
      model->BeginRow(Sense::kGe, 0.0);  // z_a >= Σ x
      model->AddTerm(mu_owner_index_[mu], 1.0);
      while (k < links.size() && links[k].first == mu) {
        model->AddTerm(links[k].second, -1.0);
        ++k;
      }
      layout->mu_link_row[mu] = model->EndRow();
    }
  }
  COPHY_CHECK_EQ(e, entry_mu_idx_.size());
  layout->storage_row = -1;
  if (p_->storage_budget < kInf) {
    model->BeginRow(Sense::kLe, p_->storage_budget);
    for (int a = 0; a < p_->num_indexes; ++a) {
      model->AddTerm(a, p_->size[a]);
    }
    layout->storage_row = model->EndRow();
  }
  for (const ZRow& row : p_->z_rows) {
    model->BeginRow(row.sense, row.rhs, row.name);
    for (const auto& [a, c] : row.terms) model->AddTerm(a, c);
    model->EndRow();
  }
  return true;
}

void ChoiceSolver::EnsureSigma() {
  sigma_.assign(p_->num_indexes, 0.0);
  if (p_->storage_budget < kInf) {
    const double m = std::max(1.0, p_->storage_budget);
    for (int a = 0; a < p_->num_indexes; ++a) sigma_[a] = p_->size[a] / m;
  }
}

void ChoiceSolver::SeedLagrangianFromDuals(const LpSolution& lp,
                                           const RootLpLayout& layout) {
  const size_t num_mu = mu_owner_index_.size();
  mu_.assign(num_mu, 0.0);
  // The aggregated link row z_a >= Σ x is the relaxed constraint
  // Σ x - z_a <= 0; its dual (>= 0 under the solver's sign convention
  // for >= rows) is exactly the Lagrangian multiplier μ_{q,a}.
  for (size_t m = 0; m < num_mu; ++m) {
    const int32_t row = layout.mu_link_row[m];
    if (row >= 0) mu_[m] = std::max(0.0, lp.duals[row]);
  }
  mu_sum_.assign(p_->num_indexes, 0.0);
  for (size_t m = 0; m < num_mu; ++m) {
    mu_sum_[mu_owner_index_[m]] += mu_[m];
  }
  EnsureSigma();
  lambda_ = 0.0;
  if (layout.storage_row >= 0) {
    // Binding <= row: dual y <= 0, true multiplier λ = -y; the solver
    // keeps λ in normalized budget units (σ_a = size_a / M), so scale
    // by M.
    lambda_ = std::max(0.0, -lp.duals[layout.storage_row]) *
              std::max(1.0, p_->storage_budget);
  }
  mu_ready_ = true;
  mu_seeded_ = true;
}

int ChoiceSolver::ApplyReducedCostFixing(double upper_bound) {
  if (!std::isfinite(upper_bound)) return 0;
  const bool lp = !rc_status_.empty();
  const bool lagr = std::isfinite(lag_bound_) && !lag_coef_.empty();
  if (!lp && !lagr) return 0;
  int fixed = 0;
  for (int a = 0; a < p_->num_indexes; ++a) {
    if (root_fix_[a] != -1) continue;
    // Moving a nonbasic z off its LP-optimal bound costs at least |d|
    // on top of the LP optimum, so the opposite bound is provably no
    // better than the incumbent: fix the variable permanently.
    if (lp) {
      const double d = rc_d_[a];
      if (rc_status_[a] == VarStatus::kAtLower && d > 0 &&
          root_lp_bound_ + d >= upper_bound - kTol) {
        root_fix_[a] = 0;
        ++fixed;
        continue;
      }
      if (rc_status_[a] == VarStatus::kAtUpper && d < 0 &&
          root_lp_bound_ - d >= upper_bound - kTol) {
        root_fix_[a] = 1;
        ++fixed;
        continue;
      }
    }
    // Same argument on the Lagrangian: z separates additively, so a
    // solution with z_a flipped off its subproblem minimizer has
    // Lagrangian value (a lower bound on its true objective) of at
    // least lag_bound_ + |coef_a|.
    if (lagr) {
      const double c = lag_coef_[a];
      if (c >= 0 && lag_bound_ + c >= upper_bound - kTol) {
        root_fix_[a] = 0;
        ++fixed;
      } else if (c < 0 && lag_bound_ - c >= upper_bound - kTol) {
        root_fix_[a] = 1;
        ++fixed;
      }
    }
  }
  return fixed;
}

// ---------------------------------------------------------------------------
// Lagrangian dual (subgradient on the linking constraints + storage)

double ChoiceSolver::OptimizeLagrangian(double upper_bound, int iterations) {
  const size_t num_mu = mu_owner_index_.size();
  if (!mu_seeded_) {
    // Cold start from zero multipliers (the §4.1 schedule); a prior
    // SeedLagrangianFromDuals call leaves μ/λ/σ at the LP duals instead
    // and the first iteration evaluates that point.
    mu_.assign(num_mu, 0.0);
    mu_sum_.assign(p_->num_indexes, 0.0);
    lambda_ = 0.0;
    EnsureSigma();
  }

  const bool budgeted = p_->storage_budget < kInf;
  std::vector<int8_t> x(num_mu);        // x_{q,a} of the inner solution
  std::vector<uint8_t> z(p_->num_indexes);
  std::vector<double> best_mu;
  std::vector<double> best_mu_sum;
  double best_lambda = 0.0;
  double best = -kInf;
  double alpha = 1.0;
  int stall = 0;

  if (!std::isfinite(upper_bound)) {
    upper_bound = std::abs(p_->constant_cost) + 1.0;
  }

  for (int it = 0; it < iterations; ++it) {
    // z subproblem: open index a iff its reduced coefficient is negative.
    double value = p_->constant_cost;
    if (budgeted) value -= lambda_;  // λ · (normalized budget of 1)
    double storage_sel = 0.0;  // in normalized (budget) units
    for (int a = 0; a < p_->num_indexes; ++a) {
      const double coef = p_->fixed_cost[a] +
                          (budgeted ? lambda_ * sigma_[a] : 0.0) - mu_sum_[a];
      z[a] = coef < 0 ? 1 : 0;
      if (z[a]) {
        value += coef;
        storage_sel += sigma_[a];
      }
    }

    // x subproblem: per query, the μ-priced min plan. Mark chosen
    // (query, index) pairs in x.
    std::fill(x.begin(), x.end(), 0);
    size_t e = 0;
    for (const ChoiceQuery& query : p_->queries) {
      double qbest = kInf;
      int best_plan = -1;
      std::vector<std::pair<double, std::vector<int32_t>>> plan_costs;
      plan_costs.reserve(query.plans.size());
      for (const ChoicePlan& plan : query.plans) {
        double c = query.weight * plan.beta;
        bool ok = true;
        std::vector<int32_t> chosen;
        for (const ChoiceSlot& slot : plan.slots) {
          double g = kInf;
          int32_t g_mu = -1;
          for (const ChoiceOption& o : slot.options) {
            double price;
            int32_t mu_idx = -1;
            if (o.index == kBaseOption) {
              price = query.weight * o.gamma;
            } else {
              mu_idx = entry_mu_idx_[e];
              price = query.weight * o.gamma + mu_[mu_idx];
              ++e;
            }
            if (price < g) {
              g = price;
              g_mu = mu_idx;
            }
          }
          if (g == kInf) {
            ok = false;
          } else {
            if (g_mu >= 0) chosen.push_back(g_mu);
            c += g;
          }
        }
        if (!ok) c = kInf;
        plan_costs.push_back({c, std::move(chosen)});
      }
      for (int k = 0; k < static_cast<int>(plan_costs.size()); ++k) {
        if (plan_costs[k].first < qbest) {
          qbest = plan_costs[k].first;
          best_plan = k;
        }
      }
      COPHY_CHECK(best_plan >= 0);
      value += qbest;
      for (int32_t id : plan_costs[best_plan].second) x[id] = 1;
    }
    COPHY_CHECK_EQ(e, entry_mu_idx_.size());

    if (value > best + 1e-9) {
      best = value;
      best_mu = mu_;
      best_mu_sum = mu_sum_;
      best_lambda = lambda_;
      stall = 0;
    } else if (++stall >= 4) {
      alpha *= 0.6;
      stall = 0;
      if (alpha < 1e-5) break;
    }

    // Polyak subgradient step on g_{q,a} = x_{q,a} - z_a and
    // g_λ = Σ size·z - M.
    double norm2 = 0.0;
    for (size_t m = 0; m < num_mu; ++m) {
      const double g = x[m] - z[mu_owner_index_[m]];
      norm2 += g * g;
    }
    double g_lambda = 0.0;
    if (budgeted) {
      g_lambda = storage_sel - 1.0;  // normalized budget units
      norm2 += g_lambda * g_lambda;
    }
    if (norm2 < 1e-12) break;  // inner solution is primal feasible
    const double step = alpha * std::max(1e-9, upper_bound - value) / norm2;

    for (size_t m = 0; m < num_mu; ++m) {
      const int a = mu_owner_index_[m];
      const double g = x[m] - z[a];
      if (g == 0.0) continue;
      const double old = mu_[m];
      mu_[m] = std::max(0.0, old + step * g);
      mu_sum_[a] += mu_[m] - old;
    }
    if (budgeted) lambda_ = std::max(0.0, lambda_ + step * g_lambda);
  }

  if (!best_mu.empty()) {
    mu_ = std::move(best_mu);
    mu_sum_ = std::move(best_mu_sum);
    lambda_ = best_lambda;
  }
  mu_ready_ = true;
  // Subsequent calls continue the subgradient from the best multipliers
  // (the mid-search refreshes with a tightened upper bound).
  mu_seeded_ = true;
  if (std::isfinite(best) && best >= lag_bound_) {
    // Snapshot the z-subproblem reduced coefficients at the best
    // multipliers for Lagrangian reduced-cost fixing (bound and
    // coefficients must come from the same multipliers).
    lag_bound_ = best;
    lag_coef_.resize(p_->num_indexes);
    for (int a = 0; a < p_->num_indexes; ++a) {
      lag_coef_[a] = p_->fixed_cost[a] +
                     (budgeted ? lambda_ * sigma_[a] : 0.0) - mu_sum_[a];
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Constraint admissibility (interval propagation)

bool ChoiceSolver::ConstraintsAdmissible(const std::vector<int8_t>& fixed) const {
  if (p_->storage_budget < kInf) {
    double used = 0;
    for (int a = 0; a < p_->num_indexes; ++a) {
      if (fixed[a] == 1) used += p_->size[a];
    }
    if (used > p_->storage_budget * (1 + kTol) + kTol) return false;
  }
  for (size_t r = 0; r < p_->z_rows.size(); ++r) {
    const ZRow& row = p_->z_rows[r];
    double lo = 0, hi = 0;
    for (int32_t k = zrow_start_[r]; k < zrow_start_[r + 1]; ++k) {
      const int a = zrow_idx_[k];
      const double c = zrow_coef_[k];
      if (fixed[a] == 1) {
        lo += c;
        hi += c;
      } else if (fixed[a] == -1) {
        if (c > 0) {
          hi += c;
        } else {
          lo += c;
        }
      }
    }
    switch (row.sense) {
      case Sense::kLe:
        if (lo > row.rhs + 1e-6) return false;
        break;
      case Sense::kGe:
        if (hi < row.rhs - 1e-6) return false;
        break;
      case Sense::kEq:
        if (lo > row.rhs + 1e-6 || hi < row.rhs - 1e-6) return false;
        break;
    }
  }
  return true;
}

Status ChoiceSolver::CheckFeasible() const {
  std::vector<int8_t> fixed(p_->num_indexes, -1);
  if (!ConstraintsAdmissible(fixed)) {
    return Status::Infeasible("z-constraints admit no assignment");
  }
  const double bound = NodeBound(fixed, nullptr);
  if (bound == kInf) {
    return Status::Infeasible(
        "a query cost cap is unreachable even with all candidates");
  }
  // Storage: the cheapest assignment satisfying >=/= rows must fit.
  if (p_->storage_budget < kInf) {
    double forced = 0;
    // Greedy lower estimate: for each >=/= row needing positive mass,
    // assume the smallest-size index can serve it. (Approximate probe;
    // exact infeasibility still surfaces during search.)
    for (const ZRow& row : p_->z_rows) {
      if (row.sense == Sense::kLe || row.rhs <= 0) continue;
      double smallest = kInf;
      for (const auto& [a, c] : row.terms) {
        if (c > 0) smallest = std::min(smallest, p_->size[a]);
      }
      if (smallest < kInf) forced += smallest;
    }
    if (forced > p_->storage_budget * (1 + kTol)) {
      return Status::Infeasible("required indexes exceed the storage budget");
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Greedy incumbent (lazy-greedy benefit/size dive)

bool ChoiceSolver::GreedyIncumbent(const std::vector<int8_t>& fixed,
                                   std::vector<uint8_t>& out) const {
  const int n = p_->num_indexes;
  std::vector<uint8_t> sel(n, 0);
  double used = 0;
  for (int a = 0; a < n; ++a) {
    if (fixed[a] == 1) {
      sel[a] = 1;
      used += p_->size[a];
    }
  }

  auto plan_cost_with = [&](const ChoicePlan& plan, int extra) {
    double c = plan.beta;
    for (const ChoiceSlot& slot : plan.slots) {
      double g = kInf;
      for (const ChoiceOption& o : slot.options) {
        if (o.index == kBaseOption || sel[o.index] || o.index == extra) {
          g = o.gamma;
          break;
        }
      }
      if (g == kInf) return kInf;
      c += g;
    }
    return c;
  };
  auto query_cost_with = [&](int q, int extra) {
    double best = kInf;
    for (const ChoicePlan& plan : p_->queries[q].plans) {
      best = std::min(best, plan_cost_with(plan, extra));
    }
    return best;
  };

  // Incrementally-maintained pricing state. g_cur[slot_id] is the γ of
  // the slot's first available option (kInf if it has none); per flat
  // plan id, inf_cnt counts kInf slots and psum sums the finite γs, so
  // a plan currently costs beta + psum when inf_cnt == 0 and kInf
  // otherwise; cur[q] is the min over the query's plans. add/drop
  // touch only the slots referencing the moved index
  // (slot_refs_of_index_), so moves and candidate pricing are O(refs)
  // with no plan rescans — this loop is the solve-time hot path on
  // session delta retunes.
  const int n_plans = plan_start_.back();
  const int n_slots = slot_start_.back();
  std::vector<double> g_cur(n_slots, kInf), psum(n_plans, 0.0);
  std::vector<int32_t> inf_cnt(n_plans, 0);
  const int nq = static_cast<int>(p_->queries.size());
  std::vector<double> cur(nq);
  auto plan_cost = [&](int plan_id, double beta) {
    return inf_cnt[plan_id] > 0 ? kInf : beta + psum[plan_id];
  };

  // Satisfaction pass: queries with no base fallback need their plan's
  // indexes selected (ILP-form problems).
  auto can_add = [&](int a) {
    if (fixed[a] == 0 || sel[a]) return false;
    if (used + p_->size[a] > p_->storage_budget * (1 + kTol)) return false;
    for (const ZRow& row : p_->z_rows) {
      if (row.sense == Sense::kGe) continue;  // adding never hurts >=
      double lhs = 0, coef_a = 0;
      for (const auto& [b, c] : row.terms) {
        if (sel[b]) lhs += c;
        if (b == a) coef_a = c;
      }
      if (coef_a > 0 && lhs + coef_a > row.rhs + 1e-6) return false;
    }
    return true;
  };
  auto add = [&](int a) {
    sel[a] = 1;
    used += p_->size[a];
    // Slots without a are untouched, and a newly available option only
    // ever lowers a slot's pick (options are γ-sorted), so cur[q] just
    // needs the min against the plans whose slots got cheaper.
    const auto& refs = slot_refs_of_index_[a];
    for (size_t i = 0; i < refs.size();) {
      const int q = refs[i].query;
      double with = cur[q];
      for (; i < refs.size() && refs[i].query == q; ++i) {
        const SlotRef& r = refs[i];
        const int plan_id = plan_start_[q] + r.plan;
        const int slot_id = slot_start_[plan_id] + r.slot;
        const double g = g_cur[slot_id];
        if (r.gamma >= g) continue;  // slot already has a cheaper pick
        if (g == kInf) {
          --inf_cnt[plan_id];
          psum[plan_id] += r.gamma;
        } else {
          psum[plan_id] += r.gamma - g;
        }
        g_cur[slot_id] = r.gamma;
        with = std::min(
            with, plan_cost(plan_id, p_->queries[q].plans[r.plan].beta));
      }
      cur[q] = with;
    }
  };

  for (int q = 0; q < nq; ++q) {
    const auto& plans = p_->queries[q].plans;
    double best = kInf;
    for (int pi = 0; pi < static_cast<int>(plans.size()); ++pi) {
      const int plan_id = plan_start_[q] + pi;
      const auto& slots = plans[pi].slots;
      for (int si = 0; si < static_cast<int>(slots.size()); ++si) {
        double g = kInf;
        for (const ChoiceOption& o : slots[si].options) {
          if (o.index == kBaseOption || sel[o.index]) {
            g = o.gamma;
            break;
          }
        }
        g_cur[slot_start_[plan_id] + si] = g;
        if (g == kInf) {
          ++inf_cnt[plan_id];
        } else {
          psum[plan_id] += g;
        }
      }
      best = std::min(best, plan_cost(plan_id, plans[pi].beta));
    }
    cur[q] = best;
  }
  for (int q = 0; q < nq; ++q) {
    if (cur[q] < kInf) continue;
    // Pick the cheapest plan completion.
    const ChoiceQuery& query = p_->queries[q];
    double best_cost = kInf;
    std::vector<int> best_need;
    for (const ChoicePlan& plan : query.plans) {
      double c = plan.beta;
      std::vector<int> need;
      bool ok = true;
      for (const ChoiceSlot& slot : plan.slots) {
        double g = kInf;
        int need_idx = -2;
        for (const ChoiceOption& o : slot.options) {
          if (o.index == kBaseOption || sel[o.index]) {
            g = o.gamma;
            need_idx = -2;
            break;
          }
          if (fixed[o.index] != 0) {  // selectable
            g = o.gamma;
            need_idx = o.index;
            break;
          }
        }
        if (g == kInf) {
          ok = false;
          break;
        }
        if (need_idx >= 0) need.push_back(need_idx);
        c += g;
      }
      if (ok && c < best_cost) {
        best_cost = c;
        best_need = std::move(need);
      }
    }
    if (best_cost == kInf) return false;
    for (int a : best_need) {
      if (!sel[a]) {
        if (!can_add(a)) return false;
        add(a);
      }
    }
    cur[q] = query_cost_with(q, kBaseOption);
  }

  // Repair >=/= rows that demand positive mass.
  for (const ZRow& row : p_->z_rows) {
    if (row.sense == Sense::kLe) continue;
    double lhs = 0;
    for (const auto& [a, c] : row.terms) {
      if (sel[a]) lhs += c;
    }
    // Add positive-coefficient indexes (smallest size first).
    std::vector<std::pair<double, int>> adds;
    for (const auto& [a, c] : row.terms) {
      if (c > 0 && !sel[a] && fixed[a] != 0) adds.push_back({p_->size[a], a});
    }
    std::sort(adds.begin(), adds.end());
    for (const auto& [sz, a] : adds) {
      if (lhs >= row.rhs - 1e-6) break;
      (void)sz;
      if (!can_add(a)) continue;
      double coef = 0;
      for (const auto& [b, c] : row.terms) {
        if (b == a) coef = c;
      }
      add(a);
      lhs += coef;
    }
    if (lhs < row.rhs - 1e-6) return false;
  }

  // Lazy-greedy improvement on benefit / size. Selecting `a` only
  // changes the slots that contain it, so a candidate is priced off the
  // maintained per-plan state: each touched plan's what-if cost is
  // psum plus the candidate's slot deltas (min(0, γ_a - g_cur), or the
  // full γ_a when it fills a currently-empty slot), with the cached
  // cur[q] standing in for every untouched plan — identical value to a
  // full rescan of each touched query at a fraction of the work.
  auto benefit_of = [&](int a) {
    double b = -p_->fixed_cost[a];
    const auto& refs = slot_refs_of_index_[a];
    for (size_t i = 0; i < refs.size();) {
      const int q = refs[i].query;
      double with = cur[q];
      for (; i < refs.size() && refs[i].query == q;) {
        const int pi = refs[i].plan;
        const int plan_id = plan_start_[q] + pi;
        double delta = 0.0;
        int filled = 0;
        for (; i < refs.size() && refs[i].query == q && refs[i].plan == pi;
             ++i) {
          const double g = g_cur[slot_start_[plan_id] + refs[i].slot];
          if (g == kInf) {
            ++filled;
            delta += refs[i].gamma;
          } else {
            delta += std::min(0.0, refs[i].gamma - g);
          }
        }
        if (inf_cnt[plan_id] > filled) continue;  // plan stays infeasible
        with = std::min(
            with, p_->queries[q].plans[pi].beta + psum[plan_id] + delta);
      }
      if (cur[q] < kInf && with < cur[q]) {
        b += p_->queries[q].weight * (cur[q] - with);
      }
    }
    return b;
  };
  struct Cand {
    double ratio;
    int index;
    uint64_t version;
  };
  auto cmp = [](const Cand& a, const Cand& b) { return a.ratio < b.ratio; };
  std::priority_queue<Cand, std::vector<Cand>, decltype(cmp)> heap(cmp);
  const bool budgeted = p_->storage_budget < kInf;
  auto ratio_of = [&](int a, double benefit) {
    return budgeted ? benefit / std::max(1.0, p_->size[a]) : benefit;
  };
  uint64_t version = 0;
  for (int a = 0; a < n; ++a) {
    if (fixed[a] == 0 || sel[a]) continue;
    const double b = benefit_of(a);
    if (b > kTol) heap.push({ratio_of(a, b), a, version});
  }
  while (!heap.empty()) {
    Cand top = heap.top();
    heap.pop();
    if (sel[top.index]) continue;
    if (top.version != version) {  // stale: re-price (lazy greedy)
      const double b = benefit_of(top.index);
      if (b > kTol) heap.push({ratio_of(top.index, b), top.index, version});
      continue;
    }
    if (!can_add(top.index)) continue;
    add(top.index);
    ++version;
  }

  // Local-search polish: try dropping each selected (non-forced) index
  // and greedily refilling the freed budget; keep strict improvements.
  auto total_objective = [&]() {
    double t = p_->constant_cost;
    for (int a = 0; a < n; ++a) {
      if (sel[a]) t += p_->fixed_cost[a];
    }
    for (int q = 0; q < nq; ++q) {
      if (cur[q] == kInf) return kInf;
      t += p_->queries[q].weight * cur[q];
    }
    return t;
  };
  auto drop = [&](int a) {
    sel[a] = 0;
    used -= p_->size[a];
    const auto& refs = slot_refs_of_index_[a];
    for (size_t i = 0; i < refs.size();) {
      const int q = refs[i].query;
      for (; i < refs.size() && refs[i].query == q; ++i) {
        const SlotRef& r = refs[i];
        const int plan_id = plan_start_[q] + r.plan;
        const int slot_id = slot_start_[plan_id] + r.slot;
        const double old_g = g_cur[slot_id];
        double g = kInf;
        for (const ChoiceOption& o :
             p_->queries[q].plans[r.plan].slots[r.slot].options) {
          if (o.index == kBaseOption || sel[o.index]) {
            g = o.gamma;
            break;
          }
        }
        if (g == old_g) continue;  // a wasn't this slot's pick
        if (old_g == kInf) {
          --inf_cnt[plan_id];
        } else {
          psum[plan_id] -= old_g;
        }
        if (g == kInf) {
          ++inf_cnt[plan_id];
        } else {
          psum[plan_id] += g;
        }
        g_cur[slot_id] = g;
      }
      // Slot picks can only get worse on a drop, so the query min needs
      // a recompute over its (maintained) plan costs.
      const auto& plans = p_->queries[q].plans;
      double best = kInf;
      for (int pi = 0; pi < static_cast<int>(plans.size()); ++pi) {
        best = std::min(best, plan_cost(plan_start_[q] + pi, plans[pi].beta));
      }
      cur[q] = best;
    }
  };
  // Cached candidate gains for the polish refill. benefit_of(b) reads
  // only cur[] entries for b's own queries, so a drop/add of index `m`
  // can change it only when b shares a query with `m`. Moves mark that
  // neighbourhood dirty (cheap flag sweep, no pricing); the refill scan
  // prices a dirty candidate only once it passes can_add — matching the
  // original full rescan's can_add-first filtering — and clean entries
  // reuse their cached value. Snapshotting cache + flags around
  // reverted moves keeps the selection order exactly that of a fresh
  // rescan every iteration.
  std::vector<double> gain(n, 0.0);
  std::vector<uint8_t> stale(n, 1);
  auto mark_neighbours = [&](int moved) {
    for (int q : queries_of_index_[moved]) {
      for (int c : indexes_of_query_[q]) stale[c] = 1;
    }
  };
  for (int pass = 0; pass < 2; ++pass) {
    bool any_improvement = false;
    for (int a = 0; a < n; ++a) {
      if (!sel[a] || fixed[a] == 1) continue;
      const double before = total_objective();
      // Tentatively drop `a`, then refill greedily.
      std::vector<uint8_t> sel_backup = sel;
      std::vector<double> cur_backup = cur;
      std::vector<double> gain_backup = gain;
      std::vector<uint8_t> stale_backup = stale;
      std::vector<double> g_cur_backup = g_cur;
      std::vector<double> psum_backup = psum;
      std::vector<int32_t> inf_cnt_backup = inf_cnt;
      const double used_backup = used;
      auto revert = [&]() {
        sel = std::move(sel_backup);
        cur = std::move(cur_backup);
        g_cur = std::move(g_cur_backup);
        psum = std::move(psum_backup);
        inf_cnt = std::move(inf_cnt_backup);
        used = used_backup;
      };
      drop(a);
      if (total_objective() == kInf) {  // a was load-bearing (no base)
        revert();
        continue;  // gain/stale untouched so far
      }
      mark_neighbours(a);
      bool grew = true;
      while (grew) {
        grew = false;
        double best_b = kTol;
        int best_i = -1;
        for (int b = 0; b < n; ++b) {
          if (sel[b] || b == a || fixed[b] == 0) continue;
          if (!stale[b] && gain[b] <= best_b) continue;
          if (!can_add(b)) continue;  // stale entries stay stale until feasible
          if (stale[b]) {
            gain[b] = benefit_of(b);
            stale[b] = 0;
          }
          if (gain[b] > best_b) {
            best_b = gain[b];
            best_i = b;
          }
        }
        if (best_i >= 0) {
          add(best_i);
          mark_neighbours(best_i);
          grew = true;
        }
      }
      if (total_objective() < before - kTol) {
        any_improvement = true;  // keep the move
      } else {
        revert();
        gain = std::move(gain_backup);
        stale = std::move(stale_backup);
      }
    }
    if (!any_improvement) break;
  }

  // Enforce query caps by forced additions where possible.
  for (int q = 0; q < nq; ++q) {
    int guard = 0;
    while (cur[q] > p_->queries[q].cost_cap * (1 + 1e-9) && guard++ < 64) {
      double best_gain = 0;
      int best_a = -1;
      // Scan this query's candidate indexes for the largest reduction.
      for (const ChoicePlan& plan : p_->queries[q].plans) {
        for (const ChoiceSlot& slot : plan.slots) {
          for (const ChoiceOption& o : slot.options) {
            if (o.index == kBaseOption || sel[o.index]) continue;
            if (!can_add(o.index)) continue;
            const double with = query_cost_with(q, o.index);
            const double gain = cur[q] - with;
            if (gain > best_gain) {
              best_gain = gain;
              best_a = o.index;
            }
          }
        }
      }
      if (best_a < 0) break;
      add(best_a);
      ++version;
    }
    if (cur[q] > p_->queries[q].cost_cap * (1 + 1e-9)) return false;
  }

  if (!p_->Feasible(sel)) return false;
  out = std::move(sel);
  return true;
}

// ---------------------------------------------------------------------------
// Main search

ChoiceSolution ChoiceSolver::Solve(const ChoiceSolveOptions& options) {
  Stopwatch watch;
  ChoiceSolution result;
  result.status = CheckFeasible();
  if (!result.status.ok()) return result;

  const int n = p_->num_indexes;
  root_fix_.assign(n, -1);
  rc_status_.clear();
  rc_d_.clear();
  root_lp_bound_ = -kInf;
  lag_coef_.clear();
  lag_bound_ = -kInf;
  mu_ready_ = false;
  mu_seeded_ = false;

  // Delta re-solve: continue the Lagrangian dual from the previous
  // solve's multipliers. Valid for any re-weighted problem (every
  // μ >= 0, λ >= 0 prices a true lower bound); a later successful root
  // LP overwrites the seed with the exact new duals.
  if (options.mu_seed != nullptr &&
      options.mu_seed->size() == mu_owner_index_.size()) {
    mu_ = *options.mu_seed;
    for (double& m : mu_) m = std::max(0.0, m);
    mu_sum_.assign(n, 0.0);
    for (size_t m = 0; m < mu_.size(); ++m) {
      mu_sum_[mu_owner_index_[m]] += mu_[m];
    }
    lambda_ = std::max(0.0, options.lambda_seed);
    EnsureSigma();
    mu_ready_ = true;
    mu_seeded_ = true;
  }

  bool has_incumbent = false;
  std::vector<uint8_t> incumbent;
  double incumbent_obj = kInf;
  auto offer = [&](const std::vector<uint8_t>& sel) {
    if (!p_->Feasible(sel)) return false;
    const double obj = p_->Objective(sel);
    if (obj < incumbent_obj - kTol) {
      incumbent = sel;
      incumbent_obj = obj;
      has_incumbent = true;
      // A tighter incumbent may prove more variables out via their root
      // reduced costs; the new fixings apply to every node expanded
      // from here on.
      if (options.reduced_cost_fixing) {
        result.variables_fixed += ApplyReducedCostFixing(incumbent_obj);
      }
      return true;
    }
    return false;
  };

  if (!options.warm_start.empty() &&
      static_cast<int>(options.warm_start.size()) == n) {
    offer(options.warm_start);
  }
  {
    std::vector<int8_t> all_free(n, -1);
    std::vector<uint8_t> greedy;
    if (GreedyIncumbent(all_free, greedy)) offer(greedy);
  }

  // Root LP relaxation: exact LP bound, dual-seeded multipliers, and
  // the reduced-cost data the fixing hook above consumes.
  int64_t bound_evals = 0;
  if (options.root_lp) {
    Model model;
    RootLpLayout layout;
    if (BuildRootLp(&model, &layout, options.root_lp_max_rows)) {
      result.root_lp_rows = model.num_rows();
      // A retained basis from a previous retune round (delta re-tuning
      // in core/session.cc) stays dual feasible under the perturbed
      // objective/bounds — enter through the dual simplex and skip
      // primal phase 1; a fresh solve takes the primal phases.
      LpOptions lp_options;
      if (options.root_basis_seed != nullptr &&
          !options.root_basis_seed->empty()) {
        lp_options.entry = SimplexEntry::kDual;
      }
      LpSolution lp = SolveLp(model, lp_options, nullptr, nullptr,
                              options.root_basis_seed);
      if (lp.status.ok() && !lp.stats.certified) {
        // The bound, the seeded multipliers, and reduced-cost fixing
        // all cut the search permanently, so an uncertified root
        // solution gets one escalated re-solve: cold, primal entry,
        // fresh safeguard headroom.
        LpOptions retry;  // primal entry, no warm basis
        LpSolution again = SolveLp(model, retry, nullptr, nullptr, nullptr);
        if (again.status.ok()) lp = std::move(again);
      }
      result.root_lp_stats = lp.stats;
      if (lp.status.ok() && lp.stats.certified) {
        root_lp_bound_ = lp.objective;
        result.root_lp_bound = lp.objective;
        result.root_basis = lp.basis;
        rc_status_.assign(lp.basis.variables.begin(),
                          lp.basis.variables.begin() + n);
        rc_d_.assign(lp.reduced_costs.begin(), lp.reduced_costs.begin() + n);
        SeedLagrangianFromDuals(lp, layout);
        if (options.reduced_cost_fixing && has_incumbent) {
          result.variables_fixed += ApplyReducedCostFixing(incumbent_obj);
        }
      }
      // A non-OK LP (including an "infeasible" verdict, which on badly
      // scaled instances can be a phase-1 tolerance artifact) or one
      // that failed certification twice just forfeits the LP bound:
      // the combinatorial search and the Lagrangian dual remain the
      // authority, and a verified-feasible incumbent must never be
      // discarded on an unverified LP's word.
    }
  }

  // Closes the solve when the root state (after reduced-cost fixing)
  // admits no completion that could beat the incumbent.
  auto proven_at_root = [&]() {
    result.bound_evaluations = bound_evals;
    if (has_incumbent) {
      // Fixing closed the root: nothing beats the incumbent.
      result.selected = std::move(incumbent);
      result.objective = incumbent_obj;
      result.lower_bound = incumbent_obj;
      result.gap = 0.0;
      result.status = Status::Ok();
      if (mu_ready_) {
        result.mu_exit = mu_;
        result.lambda_exit = lambda_;
      }
    } else {
      result.status = Status::Infeasible("root bound infinite");
    }
    return result;
  };

  std::vector<double> scores;
  double root_plain = NodeBound(root_fix_, &scores);
  ++bound_evals;
  if (root_plain == kInf || !ConstraintsAdmissible(root_fix_)) {
    return proven_at_root();
  }
  double root_lagr = -kInf;
  double lagr_refresh_ub = kInf;  // incumbent at the last dual (re)solve
  if (options.lagrangian) {
    const int64_t fixed_before = result.variables_fixed;
    root_lagr = OptimizeLagrangian(
        has_incumbent ? incumbent_obj : root_plain * 2 + 1,
        options.lagrangian_iterations);
    result.root_lagrangian_bound = root_lagr;
    if (has_incumbent) lagr_refresh_ub = incumbent_obj;
    // The optimized multipliers may immediately prove variables out; if
    // they did, the root bound and branching scores must reflect the
    // new fixings.
    if (options.reduced_cost_fixing && has_incumbent) {
      result.variables_fixed += ApplyReducedCostFixing(incumbent_obj);
    }
    if (result.variables_fixed != fixed_before) {
      root_plain = NodeBound(root_fix_, &scores);
      ++bound_evals;
      if (root_plain == kInf || !ConstraintsAdmissible(root_fix_)) {
        return proven_at_root();
      }
    }
  }
  struct Node {
    double bound;
    int branch;  // chosen branching index (-1: leaf)
    std::vector<std::pair<int, int8_t>> fixes;
  };
  auto node_cmp = [](const Node& a, const Node& b) { return a.bound > b.bound; };
  std::priority_queue<Node, std::vector<Node>, decltype(node_cmp)> open(node_cmp);

  auto pick_branch = [&](const std::vector<double>& sc) {
    int best = -1;
    double best_v = 0;
    for (int a = 0; a < n; ++a) {
      if (sc[a] > best_v) {
        best_v = sc[a];
        best = a;
      }
    }
    return best;
  };

  {
    // Reduced-cost fixing can resolve the root outright (every variable
    // pinned): popped leaves are only *pruned*, completions are offered
    // at node creation — so the root's own completion must be offered
    // here like any other leaf.
    const int root_branch = pick_branch(scores);
    if (root_branch < 0) {
      std::vector<uint8_t> sel(n, 0);
      for (int a = 0; a < n; ++a) sel[a] = root_fix_[a] == 1 ? 1 : 0;
      offer(sel);
    }
    Node root{std::max({root_plain, root_lagr, root_lp_bound_}), root_branch,
              {}};
    open.push(std::move(root));
  }

  auto current_lb = [&]() {
    double lb = has_incumbent ? incumbent_obj : kInf;
    if (!open.empty()) lb = std::min(lb, open.top().bound);
    return std::max(lb == kInf ? -kInf : lb,
                    std::max(root_lagr, root_lp_bound_));
  };
  auto report = [&]() -> bool {
    MipProgress pr;
    pr.seconds = watch.Elapsed();
    pr.nodes = result.nodes;
    pr.has_incumbent = has_incumbent;
    pr.incumbent = incumbent_obj;
    pr.lower_bound = current_lb();
    if (has_incumbent) {
      pr.gap = std::max(0.0, (incumbent_obj - pr.lower_bound) /
                                 std::max(1e-12, std::abs(incumbent_obj)));
    }
    if (options.callback && !options.callback(pr)) return false;
    return true;
  };

  std::vector<int8_t> fixed(n);
  bool stopped = false;
  if (!report()) stopped = true;  // root feedback (bounds + first incumbent)
  while (!open.empty() && !stopped) {
    if (result.nodes >= options.node_limit ||
        watch.Elapsed() > options.time_limit_seconds) {
      break;
    }
    Node node = open.top();
    open.pop();
    if (has_incumbent) {
      // The popped node's subtree is not in the queue yet, so it must
      // participate in the proven lower bound.
      const double lb = std::min(node.bound, current_lb());
      const double gap = std::max(
          0.0, (incumbent_obj - lb) / std::max(1e-12, std::abs(incumbent_obj)));
      if (gap <= options.gap_target + 1e-12) {
        // Push the node back so the final bound accounting sees it.
        open.push(std::move(node));
        break;
      }
      if (node.bound >= incumbent_obj - kTol) continue;  // prune
    }
    if (node.branch < 0) continue;  // resolved leaf

    for (int8_t val : {static_cast<int8_t>(1), static_cast<int8_t>(0)}) {
      // Root reduced-cost fixings apply tree-wide; explicit node
      // branching decisions overlay them (an older node's own fix wins,
      // which merely forgoes the pruning for that subtree).
      std::copy(root_fix_.begin(), root_fix_.end(), fixed.begin());
      for (const auto& [a, v] : node.fixes) fixed[a] = v;
      fixed[node.branch] = val;
      ++result.nodes;
      if (!ConstraintsAdmissible(fixed)) continue;
      std::vector<double> child_scores;
      double bound = NodeBound(fixed, &child_scores);
      ++bound_evals;
      if (bound == kInf) continue;
      bound = std::max(bound, LagrangianNodeBound(fixed));
      if (mu_ready_) ++bound_evals;
      // Every completion is a solution, so the global LP bound floors
      // every node bound (tightens best-first ordering and gap checks).
      bound = std::max(bound, root_lp_bound_);
      if (has_incumbent && bound >= incumbent_obj - kTol) continue;

      const int branch = pick_branch(child_scores);
      if (branch < 0) {
        // Every query settles on base/selected options: the fixed set
        // itself (plus nothing) is the best completion of this node.
        std::vector<uint8_t> sel(n, 0);
        for (int a = 0; a < n; ++a) sel[a] = fixed[a] == 1 ? 1 : 0;
        if (offer(sel) && !report()) {
          stopped = true;
          break;
        }
        continue;
      }
      Node child;
      child.bound = bound;
      child.branch = branch;
      child.fixes = node.fixes;
      child.fixes.push_back({node.branch, val});
      open.push(std::move(child));
    }

    // Re-optimize the dual whenever the incumbent improved materially
    // since the last (re)solve: the tighter Polyak target lifts the
    // proven bound, and the refreshed coefficients may fix more
    // variables for the rest of the search.
    if (options.lagrangian && has_incumbent &&
        lagr_refresh_ub - incumbent_obj >
            0.02 * std::max(1.0, std::abs(incumbent_obj))) {
      root_lagr = std::max(
          root_lagr,
          OptimizeLagrangian(incumbent_obj,
                             options.lagrangian_iterations / 2 + 1));
      result.root_lagrangian_bound =
          std::max(result.root_lagrangian_bound, root_lagr);
      lagr_refresh_ub = incumbent_obj;
      if (options.reduced_cost_fixing) {
        result.variables_fixed += ApplyReducedCostFixing(incumbent_obj);
      }
    }

    if ((result.nodes & 0xff) == 0) {
      if (!report()) break;
    }
    // Periodic dives to refresh the incumbent from a promising node.
    if ((result.nodes & 0x1ff) == 0 && !open.empty()) {
      std::copy(root_fix_.begin(), root_fix_.end(), fixed.begin());
      for (const auto& [a, v] : open.top().fixes) fixed[a] = v;
      std::vector<uint8_t> dive;
      if (GreedyIncumbent(fixed, dive) && offer(dive)) {
        if (!report()) break;
      }
    }
  }

  if (!has_incumbent) {
    result.bound_evaluations = bound_evals;
    result.status = Status::Infeasible("no feasible selection found");
    return result;
  }
  result.selected = std::move(incumbent);
  result.bound_evaluations = bound_evals;
  result.objective = incumbent_obj;
  result.lower_bound = open.empty() && !stopped &&
                               result.nodes < options.node_limit
                           ? incumbent_obj
                           : current_lb();
  result.gap = std::max(
      0.0, (result.objective - result.lower_bound) /
               std::max(1e-12, std::abs(result.objective)));
  result.status = Status::Ok();
  if (mu_ready_) {
    result.mu_exit = mu_;
    result.lambda_exit = lambda_;
  }
  return result;
}

}  // namespace cophy::lp
