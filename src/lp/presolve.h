// BIP presolve for the structured ChoiceProblem (the paper's §5 story:
// the Theorem-1 program stays tractable because it can be *shrunk*
// before it is solved). Four exact reductions:
//
//  1. slot-option pruning — options sorted after a slot's base option
//     (the base path is always available and no more expensive) and
//     shadowed duplicate indexes within a slot can never be chosen;
//  2. plan dedup — plans with bit-identical slot structures collapse to
//     the cheapest beta (identical atomic configurations across plans);
//  3. dominated-plan elimination — a plan whose best case is no better
//     than another plan's worst case, and (for requirement-style plans,
//     the ILP per-configuration form) a plan whose index requirements
//     are a superset of a no-more-expensive plan's, can never win the
//     per-query min;
//  4. index dropping — an index that appears in no strictly-improving
//     surviving option and is not needed by any >=/= constraint can be
//     fixed to 0 and removed.
//
// Every rule preserves QueryCost/Objective/Feasible for *every*
// selection over the kept indexes, so the reduced problem's optimum
// re-inflates exactly (PresolvedChoiceProblem::Inflate). The per-query
// scans run on a common/thread_pool with bit-identical output across
// thread counts (each query writes only its own result slot).
#ifndef COPHY_LP_PRESOLVE_H_
#define COPHY_LP_PRESOLVE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "lp/choice_problem.h"
#include "lp/simplex.h"

namespace cophy {
class ThreadPool;
}

namespace cophy::lp {

/// Reduction accounting, reported next to the solver counters.
struct PresolveStats {
  int64_t queries = 0;
  int64_t plans_in = 0;
  int64_t plans_out = 0;
  int64_t duplicate_plans = 0;  ///< exact-duplicate merges (rule 2)
  int64_t dominated_plans = 0;  ///< dominance eliminations (rules 2+3)
  int64_t options_in = 0;       ///< (plan, slot, option) entries before
  int64_t options_out = 0;
  int64_t indexes_in = 0;
  int64_t indexes_out = 0;
  double seconds = 0;

  int64_t PlansRemoved() const { return plans_in - plans_out; }
  int64_t OptionsRemoved() const { return options_in - options_out; }
  int64_t IndexesRemoved() const { return indexes_in - indexes_out; }
  bool AnyReduction() const {
    return PlansRemoved() > 0 || OptionsRemoved() > 0 || IndexesRemoved() > 0;
  }
};

/// The reduced problem plus the exact re-inflation map.
struct PresolvedChoiceProblem {
  ChoiceProblem problem;
  /// kept_indexes[new_dense_id] = original dense id.
  std::vector<int> kept_indexes;
  int original_num_indexes = 0;
  PresolveStats stats;

  /// Maps a selection over the reduced index space back to the original
  /// space (dropped indexes are never selected — rule 4 guarantees an
  /// optimal solution exists with them at 0).
  std::vector<uint8_t> Inflate(const std::vector<uint8_t>& reduced) const;
  /// Projects an original-space selection (e.g. a warm start) onto the
  /// reduced space.
  std::vector<uint8_t> Restrict(const std::vector<uint8_t>& original) const;
};

/// Runs the presolve pass. `pool` parallelizes the per-query
/// dedup/dominance scans (nullptr = inline); the output is bit-identical
/// for any thread count.
PresolvedChoiceProblem PresolveChoiceProblem(const ChoiceProblem& p,
                                             cophy::ThreadPool* pool = nullptr);

/// Digest of everything the presolve reductions and the solver's
/// structural state depend on: query/plan/slot/option shape with exact
/// β/γ bit patterns, index count, and z-row structure (terms + sense).
/// Deliberately EXCLUDED: query weights, fixed costs, the objective
/// constant, cost caps, storage budget, index sizes, and z-row
/// right-hand sides — none of them drive a reduction decision, so a
/// re-weighted or re-budgeted delta re-tune keeps its digest and stays
/// on the warm path.
uint64_t ChoiceStructureDigest(const ChoiceProblem& p);

/// Companion digest of the constraint-side data the structure digest
/// deliberately ignores: storage budget, per-query cost caps, and z-row
/// right-hand sides. Callers that want to distinguish "pure
/// re-weighting" (objective-only delta) from a constraint change
/// compare both digests — e.g. the session skips the root LP only when
/// the constraint picture is unchanged too.
uint64_t ChoiceConstraintSideDigest(const ChoiceProblem& p);

/// Re-applies a previously computed reduction map to a problem with the
/// same structure digest but possibly different weight-style data: the
/// reduced problem is copied from `prior` and its weight-dependent
/// coefficients (query weights, caps, fixed costs, sizes, budget,
/// constant, z-row right-hand sides) are re-extracted from `p`. Exact:
/// identical to running PresolveChoiceProblem(p) from scratch, at a
/// fraction of the cost (the per-query dedup/dominance scans are
/// skipped).
PresolvedChoiceProblem ReapplyPresolve(const PresolvedChoiceProblem& prior,
                                       const ChoiceProblem& p);

/// Cross-solve reuse state for interactive delta re-tuning (§4.2): one
/// state object accompanies a logical tuning session. When the new
/// problem's structure digest matches the previous solve's,
/// SolveChoiceProblem seeds the solve with
///  * the retained presolve reductions, re-applied through the
///    reduction map (ReapplyPresolve) instead of re-scanned;
///  * the previous incumbent (original index space), repaired through
///    the map into a warm-start offer;
///  * the previous root-LP basis (warm simplex start) and the exit
///    Lagrangian multipliers/storage dual (subgradient seed).
/// On a digest mismatch the solve runs cold; either way the state is
/// overwritten with the finished solve's data.
struct ChoiceResolveState {
  bool valid = false;
  uint64_t structure_digest = 0;
  bool presolve_enabled = false;  ///< space μ/basis live in (reduced?)
  std::vector<uint8_t> selected;  ///< incumbent, original index space
  std::vector<double> mu;         ///< multipliers at exit (solver space)
  double lambda = 0.0;
  LpBasis root_basis;             ///< root-LP basis (solver space)
  std::shared_ptr<const PresolvedChoiceProblem> presolved;
  int64_t solves = 0;             ///< solves recorded into this state
  int64_t warm_reuses = 0;        ///< solves that accepted the seeds
};

/// Presolve + solve + re-inflate: the entry point the advisors use.
/// Honors `options.presolve` (off = solve `p` directly); warm starts are
/// given in the original index space and projected automatically.
/// `stats`, if non-null, receives the reduction accounting.
ChoiceSolution SolveChoiceProblem(const ChoiceProblem& p,
                                  const ChoiceSolveOptions& options = {},
                                  PresolveStats* stats = nullptr,
                                  cophy::ThreadPool* pool = nullptr);

}  // namespace cophy::lp

#endif  // COPHY_LP_PRESOLVE_H_
