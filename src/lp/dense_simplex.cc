// The seed dense two-phase tableau simplex, preserved verbatim in
// behavior: every finite bound span becomes an explicit x' <= hi - lo
// row, and every reduced cost is re-derived from the full tableau each
// iteration. Kept only as a differential-test oracle and as the
// baseline side of the bench_micro solver comparison.
#include "lp/dense_simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace cophy::lp {

namespace {

constexpr double kEps = 1e-9;
constexpr double kFeasEps = 1e-7;

/// Dense tableau state for the two-phase method.
struct Tableau {
  int m = 0;                      // rows
  int n = 0;                      // columns (structural + slack + artificial)
  std::vector<std::vector<double>> a;  // m x n
  std::vector<double> b;          // m (kept nonnegative)
  std::vector<int> basis;         // basis[r] = column basic in row r
  std::vector<bool> allowed;      // column may enter

  void Pivot(int r, int j) {
    const double p = a[r][j];
    COPHY_CHECK(std::abs(p) > kEps);
    const double inv = 1.0 / p;
    for (int k = 0; k < n; ++k) a[r][k] *= inv;
    b[r] *= inv;
    a[r][j] = 1.0;  // fight roundoff
    for (int i = 0; i < m; ++i) {
      if (i == r) continue;
      const double f = a[i][j];
      if (std::abs(f) < kEps) continue;
      for (int k = 0; k < n; ++k) a[i][k] -= f * a[r][k];
      a[i][j] = 0.0;
      b[i] -= f * b[r];
    }
    basis[r] = j;
  }
};

enum class IterStatus { kOptimal, kUnbounded, kIterLimit };

/// Runs primal simplex iterations for cost vector `c`, returning on
/// optimality or unboundedness. Dantzig rule with a Bland fallback.
IterStatus Iterate(Tableau& t, const std::vector<double>& c) {
  const int iter_limit = 200 * (t.m + t.n) + 2000;
  for (int iter = 0; iter < iter_limit; ++iter) {
    const bool bland = iter > iter_limit / 2;
    // Reduced costs: c_j - c_B' T_j.
    int enter = -1;
    double best = -kFeasEps;
    for (int j = 0; j < t.n; ++j) {
      if (!t.allowed[j]) continue;
      double red = c[j];
      for (int r = 0; r < t.m; ++r) {
        const double cb = c[t.basis[r]];
        if (cb != 0.0) red -= cb * t.a[r][j];
      }
      if (red < best) {
        if (bland) {  // first improving column
          enter = j;
          break;
        }
        best = red;
        enter = j;
      }
    }
    if (enter < 0) return IterStatus::kOptimal;
    // Ratio test.
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < t.m; ++r) {
      if (t.a[r][enter] > kEps) {
        const double ratio = t.b[r] / t.a[r][enter];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && leave >= 0 &&
             t.basis[r] < t.basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave < 0) return IterStatus::kUnbounded;
    t.Pivot(leave, enter);
  }
  return IterStatus::kIterLimit;
}

}  // namespace

LpSolution SolveLpDense(const Model& model, const std::vector<double>* var_lower,
                        const std::vector<double>* var_upper) {
  const int nv = model.num_variables();
  std::vector<double> lo(nv), hi(nv);
  for (int i = 0; i < nv; ++i) {
    lo[i] = var_lower != nullptr ? (*var_lower)[i] : model.variable(i).lower;
    hi[i] = var_upper != nullptr ? (*var_upper)[i] : model.variable(i).upper;
    if (lo[i] > hi[i]) {
      LpSolution bad;
      bad.status = Status::Infeasible("contradictory variable bounds");
      return bad;
    }
  }

  // Shift x = lo + x'; upper bounds become explicit rows x' <= hi - lo.
  struct NormRow {
    std::vector<std::pair<int, double>> terms;
    Sense sense;
    double rhs;
  };
  std::vector<NormRow> rows;
  rows.reserve(model.num_rows() + nv);
  for (int r = 0; r < model.num_rows(); ++r) {
    const RowView rv = model.row(r);
    NormRow nr{{}, rv.sense, rv.rhs};
    nr.terms.reserve(rv.nnz);
    for (int k = 0; k < rv.nnz; ++k) {
      nr.terms.push_back({rv.cols[k], rv.vals[k]});
      nr.rhs -= rv.vals[k] * lo[rv.cols[k]];
    }
    rows.push_back(std::move(nr));
  }
  for (int i = 0; i < nv; ++i) {
    const double span = hi[i] - lo[i];
    if (std::isfinite(span)) {
      rows.push_back(NormRow{{{i, 1.0}}, Sense::kLe, span});
    }
  }

  const int m = static_cast<int>(rows.size());
  // Column layout: [0, nv) structural, then one slack/surplus per
  // inequality, then artificials as needed.
  int n = nv;
  std::vector<int> slack_col(m, -1);
  for (int r = 0; r < m; ++r) {
    // Normalize rhs >= 0.
    if (rows[r].rhs < 0) {
      rows[r].rhs = -rows[r].rhs;
      for (auto& [v, c] : rows[r].terms) c = -c;
      if (rows[r].sense == Sense::kLe) {
        rows[r].sense = Sense::kGe;
      } else if (rows[r].sense == Sense::kGe) {
        rows[r].sense = Sense::kLe;
      }
    }
    if (rows[r].sense != Sense::kEq) slack_col[r] = n++;
  }
  const int art_begin = n;  // columns >= art_begin are artificial
  std::vector<int> art_col(m, -1);
  for (int r = 0; r < m; ++r) {
    // kLe rows with slack start basic; kGe and kEq need artificials.
    if (rows[r].sense != Sense::kLe) art_col[r] = n++;
  }

  Tableau t;
  t.m = m;
  t.n = n;
  t.a.assign(m, std::vector<double>(n, 0.0));
  t.b.resize(m);
  t.basis.resize(m);
  t.allowed.assign(n, true);
  for (int r = 0; r < m; ++r) {
    for (const auto& [v, c] : rows[r].terms) t.a[r][v] += c;
    t.b[r] = rows[r].rhs;
    if (slack_col[r] >= 0) {
      t.a[r][slack_col[r]] = rows[r].sense == Sense::kLe ? 1.0 : -1.0;
    }
    if (art_col[r] >= 0) {
      t.a[r][art_col[r]] = 1.0;
      t.basis[r] = art_col[r];
    } else {
      t.basis[r] = slack_col[r];
    }
  }

  // Phase 1: minimize the sum of artificials.
  bool need_phase1 = false;
  std::vector<double> c1(n, 0.0);
  for (int r = 0; r < m; ++r) {
    if (art_col[r] >= 0) {
      c1[art_col[r]] = 1.0;
      need_phase1 = true;
    }
  }
  if (need_phase1) {
    const IterStatus st = Iterate(t, c1);
    if (st == IterStatus::kIterLimit) {
      LpSolution bad;
      bad.status = Status::Internal("simplex iteration limit (phase 1)");
      return bad;
    }
    double art_sum = 0;
    for (int r = 0; r < m; ++r) {
      if (c1[t.basis[r]] != 0.0) art_sum += t.b[r];
    }
    if (art_sum > 1e-6) {
      LpSolution bad;
      bad.status = Status::Infeasible("phase-1 optimum positive");
      return bad;
    }
    // Drive remaining (degenerate) artificials out of the basis through
    // any structural *or slack* column (largest |pivot| for stability).
    // Pivoting only on structural columns used to leave artificials
    // basic whenever the row's nonzeros sat in slack columns; such an
    // artificial could drift to a nonzero value during phase 2 and
    // silently violate its row.
    for (int r = 0; r < m; ++r) {
      if (t.basis[r] >= art_begin && c1[t.basis[r]] != 0.0) {
        int piv = -1;
        double best_piv = kEps;
        for (int j = 0; j < art_begin; ++j) {
          const double a = std::abs(t.a[r][j]);
          if (a > best_piv) {
            best_piv = a;
            piv = j;
          }
        }
        if (piv >= 0) t.Pivot(r, piv);
        // No pivot means the row is zero in every non-artificial
        // column; its rhs is 0 and stays 0 through phase-2 pivots
        // (every update scales by this row's zero entries), so the
        // basic artificial is genuinely harmless.
      }
    }
    // Artificials may not re-enter.
    for (int r = 0; r < m; ++r) {
      if (art_col[r] >= 0) t.allowed[art_col[r]] = false;
    }
  }

  // Phase 2: the real objective (on shifted variables).
  std::vector<double> c2(n, 0.0);
  for (int i = 0; i < nv; ++i) c2[i] = model.variable(i).objective;
  const IterStatus st = Iterate(t, c2);
  if (st == IterStatus::kIterLimit) {
    LpSolution bad;
    bad.status = Status::Internal("simplex iteration limit (phase 2)");
    return bad;
  }
  if (st == IterStatus::kUnbounded) {
    LpSolution bad;
    bad.status = Status::Unbounded("LP relaxation unbounded");
    return bad;
  }

  LpSolution sol;
  sol.status = Status::Ok();
  sol.x.assign(nv, 0.0);
  for (int r = 0; r < m; ++r) {
    if (t.basis[r] < nv) sol.x[t.basis[r]] = t.b[r];
  }
  for (int i = 0; i < nv; ++i) sol.x[i] += lo[i];
  sol.objective = model.ObjectiveValue(sol.x);
  return sol;
}

}  // namespace cophy::lp
