#include "lp/model.h"

#include <cmath>

#include "common/check.h"

namespace cophy::lp {

void Model::LatchInvalid(const char* what) {
  if (input_status_.ok()) input_status_ = Status::InvalidArgument(what);
}

VarId Model::AddVariable(double lower, double upper, double objective,
                         bool is_integer, std::string name) {
  if (std::isnan(lower) || std::isnan(upper)) {
    LatchInvalid("NaN variable bound");
    lower = 0.0;
    upper = 0.0;
  }
  if (!std::isfinite(objective)) {
    LatchInvalid("non-finite objective coefficient");
    objective = 0.0;
  }
  COPHY_CHECK_LE(lower, upper);
  vars_.push_back(Variable{lower, upper, objective, is_integer, std::move(name)});
  columns_ready_ = false;  // col_start_ needs a slot for the new column
  return static_cast<VarId>(vars_.size()) - 1;
}

void Model::SetVariableBounds(VarId v, double lower, double upper) {
  COPHY_CHECK_GE(v, 0);
  COPHY_CHECK_LT(v, num_variables());
  if (std::isnan(lower) || std::isnan(upper) || lower > upper) {
    LatchInvalid("invalid variable bounds");
    return;
  }
  vars_[v].lower = lower;
  vars_[v].upper = upper;
}

VarId Model::AddBinary(double objective, std::string name) {
  return AddVariable(0.0, 1.0, objective, /*is_integer=*/true, std::move(name));
}

int Model::AddRow(Row row) {
  BeginRow(row.sense, row.rhs, std::move(row.name));
  for (const auto& [v, c] : row.terms) AddTerm(v, c);
  return EndRow();
}

int Model::AddRow(const std::vector<std::pair<VarId, double>>& terms,
                  Sense sense, double rhs, std::string name) {
  BeginRow(sense, rhs, std::move(name));
  for (const auto& [v, c] : terms) AddTerm(v, c);
  return EndRow();
}

void Model::BeginRow(Sense sense, double rhs, std::string name) {
  COPHY_CHECK(!row_open_);
  if (!std::isfinite(rhs)) {
    LatchInvalid("non-finite row rhs");
    rhs = 0.0;
  }
  row_open_ = true;
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  row_names_.push_back(std::move(name));
}

void Model::AddTerm(VarId v, double coef) {
  COPHY_CHECK(row_open_);
  COPHY_CHECK_GE(v, 0);
  COPHY_CHECK_LT(v, num_variables());
  if (!std::isfinite(coef)) {
    LatchInvalid("non-finite row coefficient");
    return;  // keep the CSR arrays finite
  }
  cols_.push_back(v);
  vals_.push_back(coef);
}

int Model::EndRow() {
  COPHY_CHECK(row_open_);
  row_open_ = false;
  row_start_.push_back(static_cast<int64_t>(cols_.size()));
  columns_ready_ = false;
  return num_rows() - 1;
}

RowView Model::row(int r) const {
  COPHY_CHECK(!row_open_);
  RowView view;
  const int64_t begin = row_start_[r];
  view.cols = cols_.data() + begin;
  view.vals = vals_.data() + begin;
  view.nnz = static_cast<int>(row_start_[r + 1] - begin);
  view.sense = senses_[r];
  view.rhs = rhs_[r];
  return view;
}

void Model::EnsureColumns() const {
  if (columns_ready_) return;
  const int nv = num_variables();
  col_start_.assign(nv + 1, 0);
  for (VarId v : cols_) ++col_start_[v + 1];
  for (int v = 0; v < nv; ++v) col_start_[v + 1] += col_start_[v];
  col_rows_.resize(cols_.size());
  col_vals_.resize(cols_.size());
  std::vector<int64_t> cursor(col_start_.begin(), col_start_.end() - 1);
  for (int r = 0; r < num_rows(); ++r) {
    for (int64_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      const int64_t at = cursor[cols_[k]]++;
      col_rows_[at] = r;
      col_vals_[at] = vals_[k];
    }
  }
  columns_ready_ = true;
}

ColumnView Model::column(VarId v) const {
  COPHY_CHECK(!row_open_);
  EnsureColumns();
  ColumnView view;
  const int64_t begin = col_start_[v];
  view.rows = col_rows_.data() + begin;
  view.vals = col_vals_.data() + begin;
  view.nnz = static_cast<int>(col_start_[v + 1] - begin);
  return view;
}

double Model::ObjectiveValue(const std::vector<double>& x) const {
  COPHY_CHECK_EQ(x.size(), vars_.size());
  double obj = objective_constant_;
  for (size_t i = 0; i < vars_.size(); ++i) obj += vars_[i].objective * x[i];
  return obj;
}

bool Model::IsFeasible(const std::vector<double>& x, double eps) const {
  if (x.size() != vars_.size()) return false;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (x[i] < vars_[i].lower - eps || x[i] > vars_[i].upper + eps) return false;
    if (vars_[i].is_integer && std::abs(x[i] - std::round(x[i])) > eps) {
      return false;
    }
  }
  for (int r = 0; r < num_rows(); ++r) {
    const RowView rv = row(r);
    double lhs = 0;
    for (int k = 0; k < rv.nnz; ++k) lhs += rv.vals[k] * x[rv.cols[k]];
    switch (rv.sense) {
      case Sense::kLe:
        if (lhs > rv.rhs + eps) return false;
        break;
      case Sense::kGe:
        if (lhs < rv.rhs - eps) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - rv.rhs) > eps) return false;
        break;
    }
  }
  return true;
}

}  // namespace cophy::lp
