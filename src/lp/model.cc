#include "lp/model.h"

#include <cmath>

#include "common/check.h"

namespace cophy::lp {

VarId Model::AddVariable(double lower, double upper, double objective,
                         bool is_integer, std::string name) {
  COPHY_CHECK_LE(lower, upper);
  vars_.push_back(Variable{lower, upper, objective, is_integer, std::move(name)});
  return static_cast<VarId>(vars_.size()) - 1;
}

VarId Model::AddBinary(double objective, std::string name) {
  return AddVariable(0.0, 1.0, objective, /*is_integer=*/true, std::move(name));
}

int Model::AddRow(Row row) {
  for (const auto& [v, c] : row.terms) {
    COPHY_CHECK_GE(v, 0);
    COPHY_CHECK_LT(v, num_variables());
    (void)c;
  }
  rows_.push_back(std::move(row));
  return num_rows() - 1;
}

double Model::ObjectiveValue(const std::vector<double>& x) const {
  COPHY_CHECK_EQ(x.size(), vars_.size());
  double obj = objective_constant_;
  for (size_t i = 0; i < vars_.size(); ++i) obj += vars_[i].objective * x[i];
  return obj;
}

bool Model::IsFeasible(const std::vector<double>& x, double eps) const {
  if (x.size() != vars_.size()) return false;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (x[i] < vars_[i].lower - eps || x[i] > vars_[i].upper + eps) return false;
    if (vars_[i].is_integer && std::abs(x[i] - std::round(x[i])) > eps) {
      return false;
    }
  }
  for (const Row& r : rows_) {
    double lhs = 0;
    for (const auto& [v, c] : r.terms) lhs += c * x[v];
    switch (r.sense) {
      case Sense::kLe:
        if (lhs > r.rhs + eps) return false;
        break;
      case Sense::kGe:
        if (lhs < r.rhs - eps) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - r.rhs) > eps) return false;
        break;
    }
  }
  return true;
}

}  // namespace cophy::lp
