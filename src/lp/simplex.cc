// Bounded-variable revised primal simplex over the CSR/CSC model.
//
// Internal layout: columns [0, nv) are the structural variables, column
// nv + r is the slack of row r with coefficient +1 and sense encoded in
// its bounds (kLe: [0, inf), kGe: (-inf, 0], kEq: [0, 0]), so every row
// is an equality A'x' = b over bounded variables and the slack basis is
// the identity. The basis is held as a sparse LU factorization
// (lp/lu_factor.h): Markowitz-ordered threshold-pivoted LU with sparse
// FTRAN/BTRAN through the factors and a product-form eta appended per
// pivot, refactorized on a fixed pivot interval and early whenever the
// eta file degrades (unstable pivot or fill past budget). Pricing uses
// the model's sparse column views, and in phase 2 the reduced-cost row
// is updated incrementally from the pivot row (one extra unit-vector
// BTRAN per pivot) instead of being re-derived.
//
// Phase 1 is artificial-free: starting from any basis (slack or
// imported), it minimizes the total bound violation of the basic
// variables with the composite-objective rule — an infeasible-below
// basic prices with sigma = -1 and blocks the ratio test at its lower
// bound, an infeasible-above basic with sigma = +1 at its upper bound.
// This is what makes branch-and-bound warm starts cheap: a parent basis
// re-imported under tightened child bounds is usually one or two
// restoring pivots away from feasibility.
#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stopwatch.h"
#include "lp/lu_factor.h"

namespace cophy::lp {

namespace {

constexpr double kLeaveEps = 1e-7;  // min |w_r| to accept a pivot element
constexpr double kDualEps = 1e-7;
constexpr double kFeasEps = 1e-7;
constexpr double kInfeasTotal = 1e-6;
constexpr int kRefactorInterval = 96;  // pivots between refactorizations
constexpr double kInf = std::numeric_limits<double>::infinity();

enum class IterStatus {
  kOptimal,
  kUnbounded,
  kStalled,
  kIterLimit,
  kNumericalFailure,  // basis factorization lost and unrecoverable
};

class RevisedSimplex {
 public:
  RevisedSimplex(const Model& model, const std::vector<double>& lo_struct,
                 const std::vector<double>& hi_struct)
      : model_(model),
        nv_(model.num_variables()),
        m_(model.num_rows()),
        n_(nv_ + m_) {
    lo_.resize(n_);
    hi_.resize(n_);
    cost_.assign(n_, 0.0);
    b_.resize(m_);
    for (int j = 0; j < nv_; ++j) {
      lo_[j] = lo_struct[j];
      hi_[j] = hi_struct[j];
      cost_[j] = model.variable(j).objective;
    }
    // Row equilibration: divide each row by its largest |coefficient| so
    // rows of wildly different magnitude (storage bytes next to 0/1
    // linking rows) don't wreck the conditioning of the factorization.
    // Slack bounds are 0 / +-inf, so they are invariant under positive
    // row scaling and the structural solution is unchanged.
    row_scale_.assign(m_, 1.0);
    for (int r = 0; r < m_; ++r) {
      const RowView row = model.row(r);
      double big = 0;
      for (int k = 0; k < row.nnz; ++k) big = std::max(big, std::abs(row.vals[k]));
      if (big > 0) row_scale_[r] = 1.0 / big;
    }
    for (int r = 0; r < m_; ++r) {
      const RowView row = model.row(r);
      b_[r] = row.rhs * row_scale_[r];
      const int s = nv_ + r;
      switch (row.sense) {
        case Sense::kLe:
          lo_[s] = 0.0;
          hi_[s] = kInf;
          break;
        case Sense::kGe:
          lo_[s] = -kInf;
          hi_[s] = 0.0;
          break;
        case Sense::kEq:
          lo_[s] = 0.0;
          hi_[s] = 0.0;
          break;
      }
    }
    basis_.resize(m_);
    vstat_.assign(n_, VarStatus::kAtLower);
    xval_.assign(n_, 0.0);
    d_.assign(n_, 0.0);
    w_.resize(m_);
    rho_.resize(m_);
    y_.resize(m_);
    scratch_.resize(m_);
  }

  /// Installs the all-slack basis with structurals at their nearest
  /// finite bound.
  void ColdStart() {
    for (int j = 0; j < nv_; ++j) SetNonbasicAtBound(j, VarStatus::kAtLower);
    std::vector<int> cols(m_);
    for (int r = 0; r < m_; ++r) cols[r] = nv_ + r;
    const bool ok = Factorize(cols);  // slack basis: identity, can't fail
    COPHY_CHECK(ok);
    ComputeBasicValues();
  }

  /// Installs an imported basis; false if it is unusable (wrong shape,
  /// wrong basic count, or singular basis matrix).
  bool WarmStart(const LpBasis& wb) {
    if (static_cast<int>(wb.variables.size()) != nv_ ||
        static_cast<int>(wb.slacks.size()) != m_) {
      return false;
    }
    std::vector<int> basic_cols;
    basic_cols.reserve(m_);
    for (int j = 0; j < nv_; ++j) {
      if (wb.variables[j] == VarStatus::kBasic) basic_cols.push_back(j);
    }
    for (int r = 0; r < m_; ++r) {
      if (wb.slacks[r] == VarStatus::kBasic) basic_cols.push_back(nv_ + r);
    }
    if (static_cast<int>(basic_cols.size()) != m_) return false;
    if (!Factorize(basic_cols)) return false;
    for (int j = 0; j < n_; ++j) {
      const VarStatus st =
          j < nv_ ? wb.variables[j] : wb.slacks[j - nv_];
      if (st == VarStatus::kBasic) continue;  // set by Factorize
      SetNonbasicAtBound(j, st);
    }
    ComputeBasicValues();
    return true;
  }

  /// Restores primal feasibility of the current basis (phase 1).
  IterStatus Phase1(LpSolveStats* stats) {
    return Iterate(/*phase1=*/true, stats);
  }
  /// Optimizes the real objective from a primal-feasible basis.
  IterStatus Phase2(LpSolveStats* stats) {
    RecomputeReducedCosts();
    return Iterate(/*phase1=*/false, stats);
  }

  /// Total bound violation of the basic variables.
  double Infeasibility() const {
    double total = 0;
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[r];
      if (xval_[j] < lo_[j]) total += lo_[j] - xval_[j];
      if (xval_[j] > hi_[j]) total += xval_[j] - hi_[j];
    }
    return total;
  }

  /// Largest single bound violation among the basic variables.
  double MaxViolation() const {
    double worst = 0;
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[r];
      worst = std::max(worst, lo_[j] - xval_[j]);
      worst = std::max(worst, xval_[j] - hi_[j]);
    }
    return worst;
  }

  std::vector<double> ExtractPrimal() const {
    std::vector<double> x(xval_.begin(), xval_.begin() + nv_);
    for (int j = 0; j < nv_; ++j) {
      if (std::isfinite(lo_[j])) x[j] = std::max(x[j], lo_[j]);
      if (std::isfinite(hi_[j])) x[j] = std::min(x[j], hi_[j]);
    }
    return x;
  }

  LpBasis ExportBasis() const {
    LpBasis basis;
    basis.variables.assign(vstat_.begin(), vstat_.begin() + nv_);
    basis.slacks.assign(vstat_.begin() + nv_, vstat_.end());
    return basis;
  }

  /// Row duals (unscaled back to the model's original rows) and
  /// structural reduced costs at the final basis. One BTRAN plus a full
  /// pricing pass — called once per solve, after optimality.
  void ExportDuals(std::vector<double>* duals,
                   std::vector<double>* reduced_costs) {
    RecomputeReducedCosts();  // leaves y_ = c_B B^{-1} (scaled rows)
    duals->resize(m_);
    for (int r = 0; r < m_; ++r) (*duals)[r] = y_[r] * row_scale_[r];
    reduced_costs->assign(d_.begin(), d_.begin() + nv_);
  }

  /// Copies the factorization accounting into `stats` and charges the
  /// process-wide counters. Called once per solve, on every exit path.
  void ExportFactorStats(LpSolveStats* stats) {
    stats->refactorizations = refactorizations_;
    stats->eta_nnz = lu_.total_eta_nnz();
    stats->lu_fill_nnz = lu_.fill_nnz();
    stats->max_drift = max_drift_;
    stats->ftran_btran_seconds = ftran_btran_seconds_;
    SolverCounters& counters = GlobalSolverCounters();
    counters.eta_nnz += lu_.total_eta_nnz();
    counters.ftran_btran_seconds += ftran_btran_seconds_;
  }

 private:
  /// Applies `f(row, value)` to every nonzero of internal column `j`,
  /// in the row-equilibrated space.
  template <typename F>
  void ForEachEntry(int j, F&& f) const {
    if (j < nv_) {
      const ColumnView col = model_.column(j);
      for (int k = 0; k < col.nnz; ++k) {
        f(col.rows[k], col.vals[k] * row_scale_[col.rows[k]]);
      }
    } else {
      f(j - nv_, 1.0);
    }
  }

  void SetNonbasicAtBound(int j, VarStatus preferred) {
    const bool lo_finite = std::isfinite(lo_[j]);
    const bool hi_finite = std::isfinite(hi_[j]);
    VarStatus st = preferred;
    if (st == VarStatus::kBasic) st = VarStatus::kAtLower;
    if (st == VarStatus::kAtLower && !lo_finite) {
      st = hi_finite ? VarStatus::kAtUpper : VarStatus::kFree;
    } else if (st == VarStatus::kAtUpper && !hi_finite) {
      st = lo_finite ? VarStatus::kAtLower : VarStatus::kFree;
    } else if (st == VarStatus::kFree && (lo_finite || hi_finite)) {
      st = lo_finite ? VarStatus::kAtLower : VarStatus::kAtUpper;
    }
    vstat_[j] = st;
    xval_[j] = st == VarStatus::kAtLower   ? lo_[j]
               : st == VarStatus::kAtUpper ? hi_[j]
                                           : 0.0;
  }

  /// w = B^{-1} * (column j): scatter the column by row, then one
  /// sparse LU + eta-file solve. Output indexed by basis position.
  void Ftran(int j) {
    std::fill(w_.begin(), w_.end(), 0.0);
    ForEachEntry(j, [&](int row, double v) { w_[row] += v; });
    const Stopwatch timer;
    lu_.Ftran(w_);
    ftran_btran_seconds_ += timer.Elapsed();
  }

  /// y^T = cb^T * B^{-1} (cb indexed by basis position, y by row).
  void Btran(const std::vector<double>& cb) {
    y_ = cb;
    const Stopwatch timer;
    lu_.Btran(y_);
    ftran_btran_seconds_ += timer.Elapsed();
  }

  /// rho = e_pos^T B^{-1}, the pivot row of the (pre-update) basis
  /// inverse, via a unit-vector BTRAN.
  void BtranUnit(int pos) {
    std::fill(rho_.begin(), rho_.end(), 0.0);
    rho_[pos] = 1.0;
    const Stopwatch timer;
    lu_.Btran(rho_);
    ftran_btran_seconds_ += timer.Elapsed();
  }

  /// x_B = B^{-1} (b - N x_N); nonbasic values are already in xval_.
  /// With `measure_drift`, the largest |old - new| over the basic
  /// values — the eta-file drift caught by this refresh — feeds the
  /// solve's max_drift statistic.
  void ComputeBasicValues(bool measure_drift = false) {
    std::copy(b_.begin(), b_.end(), scratch_.begin());
    for (int j = 0; j < n_; ++j) {
      if (vstat_[j] == VarStatus::kBasic || xval_[j] == 0.0) continue;
      const double xj = xval_[j];
      ForEachEntry(j, [&](int row, double v) { scratch_[row] -= v * xj; });
    }
    std::copy(scratch_.begin(), scratch_.end(), w_.begin());
    const Stopwatch timer;
    lu_.Ftran(w_);
    ftran_btran_seconds_ += timer.Elapsed();
    if (measure_drift) {
      double worst = 0;
      for (int r = 0; r < m_; ++r) {
        worst = std::max(worst, std::abs(xval_[basis_[r]] - w_[r]));
      }
      max_drift_ = std::max(max_drift_, worst);
    }
    for (int r = 0; r < m_; ++r) xval_[basis_[r]] = w_[r];
  }

  /// Full re-pricing of the phase-2 reduced-cost row (also the periodic
  /// numerical refresh).
  void RecomputeReducedCosts() {
    for (int r = 0; r < m_; ++r) scratch_[r] = cost_[basis_[r]];
    Btran(scratch_);
    for (int j = 0; j < n_; ++j) {
      if (vstat_[j] == VarStatus::kBasic) {
        d_[j] = 0.0;
        continue;
      }
      double acc = cost_[j];
      ForEachEntry(j, [&](int row, double v) { acc -= y_[row] * v; });
      d_[j] = acc;
    }
  }

  /// Phase-1 pricing: reduced costs of the composite infeasibility
  /// objective (sigma on violating basics, zero elsewhere).
  void RecomputePhase1Costs() {
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[r];
      if (xval_[j] < lo_[j] - kFeasEps) {
        scratch_[r] = -1.0;
      } else if (xval_[j] > hi_[j] + kFeasEps) {
        scratch_[r] = 1.0;
      } else {
        scratch_[r] = 0.0;
      }
    }
    Btran(scratch_);
    for (int j = 0; j < n_; ++j) {
      d_[j] = 0.0;
      if (vstat_[j] == VarStatus::kBasic) continue;
      double acc = 0;
      ForEachEntry(j, [&](int row, double v) { acc -= y_[row] * v; });
      d_[j] = acc;
    }
  }

  /// Sparse LU factorization of the basis matrix given by `basic_cols`
  /// (in basis-position order, which stays stable across pivots).
  /// False if the matrix is numerically singular; the previous factors,
  /// if any, are kept intact in that case.
  bool Factorize(const std::vector<int>& basic_cols) {
    col_start_scratch_.assign(1, 0);
    col_rows_scratch_.clear();
    col_vals_scratch_.clear();
    for (int c = 0; c < m_; ++c) {
      ForEachEntry(basic_cols[c], [&](int row, double v) {
        col_rows_scratch_.push_back(row);
        col_vals_scratch_.push_back(v);
      });
      col_start_scratch_.push_back(
          static_cast<int32_t>(col_rows_scratch_.size()));
    }
    if (!lu_.Factorize(m_, col_start_scratch_, col_rows_scratch_,
                       col_vals_scratch_)) {
      return false;
    }
    for (int c = 0; c < m_; ++c) {
      basis_[c] = basic_cols[c];
      vstat_[basic_cols[c]] = VarStatus::kBasic;
    }
    ++refactorizations_;
    GlobalSolverCounters().factorizations += 1;
    return true;
  }

  /// Refactorizes the current basis from scratch. The eta file
  /// accumulates roundoff with every pivot; a periodic fresh
  /// factorization keeps the factors (and everything priced through
  /// them) healthy. Keeps the previous factors if the matrix has gone
  /// numerically singular.
  bool Refactorize() { return Factorize(basis_); }

  /// Shared primal iteration loop. In phase 1 the composite objective
  /// is re-priced each iteration (it changes whenever a violation
  /// clears); in phase 2 the reduced-cost row is updated incrementally
  /// from the pivot row, with a periodic full refresh.
  IterStatus Iterate(bool phase1, LpSolveStats* stats) {
    const int64_t iter_limit = 200 * (static_cast<int64_t>(m_) + n_) + 2000;
    int64_t pivots_since_refresh = 0;
    int64_t pivots_since_factor = 0;
    for (int64_t iter = 0; iter < iter_limit; ++iter) {
      const bool bland = iter > iter_limit / 2;
      if (pivots_since_factor >= kRefactorInterval ||
          (pivots_since_factor > 0 && lu_.NeedsRefactorization())) {
        if (Refactorize()) {
          ComputeBasicValues(/*measure_drift=*/true);
          if (!phase1) RecomputeReducedCosts();
          pivots_since_refresh = 0;
        }
        pivots_since_factor = 0;
      }
      if (phase1) {
        // Done when no basic variable violates its bounds beyond the
        // per-variable tolerance (the same criterion that assigns the
        // composite sigma costs).
        if (MaxViolation() <= kFeasEps) return IterStatus::kOptimal;
        RecomputePhase1Costs();
      } else if (pivots_since_refresh >= 64) {
        RecomputeReducedCosts();
        ComputeBasicValues(/*measure_drift=*/true);
        pivots_since_refresh = 0;
      }

      // --- Pricing: pick the entering variable. ---
      int enter = -1;
      double best_score = kDualEps;
      int dir = 0;
      for (int j = 0; j < n_; ++j) {
        const VarStatus st = vstat_[j];
        if (st == VarStatus::kBasic) continue;
        if (lo_[j] == hi_[j]) continue;  // fixed: can never move
        double score = 0;
        int jdir = 0;
        if (st == VarStatus::kAtLower && d_[j] < -kDualEps) {
          score = -d_[j];
          jdir = 1;
        } else if (st == VarStatus::kAtUpper && d_[j] > kDualEps) {
          score = d_[j];
          jdir = -1;
        } else if (st == VarStatus::kFree && std::abs(d_[j]) > kDualEps) {
          score = std::abs(d_[j]);
          jdir = d_[j] < 0 ? 1 : -1;
        } else {
          continue;
        }
        if (bland) {  // first eligible column
          enter = j;
          dir = jdir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          enter = j;
          dir = jdir;
        }
      }
      if (enter < 0) {
        if (phase1 && MaxViolation() > kInfeasTotal) {
          return IterStatus::kStalled;
        }
        if (!phase1 && pivots_since_refresh > 0) {
          // The incremental reduced costs say "optimal" — confirm with a
          // from-scratch re-pricing before accepting (guards against
          // drift-induced premature termination).
          RecomputeReducedCosts();
          ComputeBasicValues(/*measure_drift=*/true);
          pivots_since_refresh = 0;
          continue;
        }
        return IterStatus::kOptimal;
      }

      Ftran(enter);

      if (!phase1) {
        // Confirm the candidate against its exact reduced cost
        // c_j - c_B . w (O(m), w is already available). The incremental
        // d row can drift badly after a small-pivot update; a pivot
        // driven by a phantom reduced cost stalls convergence. Columns
        // that fail the check get their entry corrected in place and
        // pricing just runs again.
        double exact = cost_[enter];
        for (int i = 0; i < m_; ++i) {
          const double cb = cost_[basis_[i]];
          if (cb != 0.0) exact -= cb * w_[i];
        }
        d_[enter] = exact;
        const bool improving = dir > 0 ? exact < -kDualEps : exact > kDualEps;
        if (!improving) continue;
      }

      // --- Bounded-variable ratio test. ---
      // The entering variable moves by t >= 0 in direction `dir`; basic
      // variable in row i changes at rate -dir * w_[i].
      double t_flip = kInf;  // entering reaches its opposite bound
      if (std::isfinite(lo_[enter]) && std::isfinite(hi_[enter])) {
        t_flip = hi_[enter] - lo_[enter];
      }
      double t = t_flip;
      int leave = -1;
      double leave_target = 0;
      VarStatus leave_stat = VarStatus::kAtLower;
      double leave_w = 0;
      for (int i = 0; i < m_; ++i) {
        const double wi = w_[i];
        // A pivot element this small would poison the eta update;
        // treat the row as non-blocking instead.
        if (std::abs(wi) <= kLeaveEps) continue;
        const int j = basis_[i];
        const double rate = -dir * wi;
        double target;
        VarStatus target_stat;
        if (phase1 && xval_[j] < lo_[j] - kFeasEps) {
          // Infeasible below: blocks only when rising to its lower bound.
          if (rate <= 0) continue;
          target = lo_[j];
          target_stat = VarStatus::kAtLower;
        } else if (phase1 && xval_[j] > hi_[j] + kFeasEps) {
          if (rate >= 0) continue;
          target = hi_[j];
          target_stat = VarStatus::kAtUpper;
        } else if (rate > 0) {
          target = hi_[j];
          target_stat = VarStatus::kAtUpper;
        } else {
          target = lo_[j];
          target_stat = VarStatus::kAtLower;
        }
        if (!std::isfinite(target)) continue;
        double ti = (target - xval_[j]) / rate;
        if (ti < 0) ti = 0;  // degenerate (or tiny violation) pivot
        // Near-tied ratios (within the feasibility tolerance) resolve
        // toward the largest pivot element — small pivots poison both
        // the eta update and the incremental reduced costs.
        const bool take =
            ti < t - kFeasEps ||
            (ti < t + kFeasEps && leave >= 0 &&
             (bland ? basis_[i] < basis_[leave]
                    : std::abs(wi) > std::abs(leave_w)));
        if (take) {
          t = ti;
          leave = i;
          leave_target = target;
          leave_stat = target_stat;
          leave_w = wi;
        }
      }

      if (!std::isfinite(t)) {
        return phase1 ? IterStatus::kStalled : IterStatus::kUnbounded;
      }

      if (leave < 0) {
        // Bound flip: the entering variable crosses to its other bound;
        // no basis change, reduced costs unchanged.
        for (int i = 0; i < m_; ++i) {
          if (w_[i] != 0.0) xval_[basis_[i]] += -dir * w_[i] * t;
        }
        vstat_[enter] = vstat_[enter] == VarStatus::kAtLower
                            ? VarStatus::kAtUpper
                            : VarStatus::kAtLower;
        xval_[enter] =
            vstat_[enter] == VarStatus::kAtLower ? lo_[enter] : hi_[enter];
        stats->bound_flips += 1;
        GlobalSolverCounters().bound_flips += 1;
        continue;
      }

      // --- Pivot: update values, statuses, factorization, reduced
      // costs. ---
      for (int i = 0; i < m_; ++i) {
        if (w_[i] != 0.0) xval_[basis_[i]] += -dir * w_[i] * t;
      }
      xval_[enter] += dir * t;
      const int leaving_var = basis_[leave];
      xval_[leaving_var] = leave_target;  // snap exactly onto its bound
      vstat_[leaving_var] = lo_[leaving_var] == hi_[leaving_var]
                                ? VarStatus::kAtLower
                                : leave_stat;
      vstat_[enter] = VarStatus::kBasic;
      basis_[leave] = enter;

      if (!phase1) {
        // Incremental reduced-cost row update from the (pre-update)
        // pivot row rho = e_r B^{-1}: d_j -= (d_q / w_r) * (rho . a_j).
        BtranUnit(leave);
        const double theta = d_[enter] / w_[leave];
        if (theta != 0.0) {
          for (int j = 0; j < n_; ++j) {
            if (vstat_[j] == VarStatus::kBasic) {
              d_[j] = 0.0;
              continue;
            }
            double alpha = 0;
            if (j < nv_) {
              const ColumnView col = model_.column(j);
              for (int k = 0; k < col.nnz; ++k) {
                alpha +=
                    rho_[col.rows[k]] * col.vals[k] * row_scale_[col.rows[k]];
              }
            } else {
              alpha = rho_[j - nv_];
            }
            if (alpha != 0.0) d_[j] -= theta * alpha;
          }
        } else {
          d_[leaving_var] = 0.0;
        }
        d_[enter] = 0.0;
        stats->phase2_pivots += 1;
        GlobalSolverCounters().phase2_pivots += 1;
        ++pivots_since_refresh;
      } else {
        stats->phase1_pivots += 1;
        GlobalSolverCounters().phase1_pivots += 1;
      }
      ++pivots_since_factor;
      if (!lu_.Update(w_, leave)) {
        // Unusable eta pivot (the ratio test's kLeaveEps floor keeps
        // this out of reach in practice): refactorize the
        // already-updated basis immediately. If even that fails, the
        // factors still describe the *pre-pivot* basis while basis_ /
        // xval_ moved on — continuing would price every later
        // iteration against the wrong basis, so fail the solve loudly
        // instead of returning a silently wrong optimum.
        if (!Refactorize()) return IterStatus::kNumericalFailure;
        ComputeBasicValues();
        if (!phase1) RecomputeReducedCosts();
        pivots_since_refresh = 0;
        pivots_since_factor = 0;
      }
    }
    return IterStatus::kIterLimit;
  }

  const Model& model_;
  const int nv_;  // structural variables
  const int m_;   // rows
  const int n_;   // structural + slacks

  std::vector<double> lo_, hi_;   // per internal column
  std::vector<double> cost_;      // phase-2 objective (slacks zero)
  std::vector<double> b_;         // row-equilibrated rhs
  std::vector<double> row_scale_; // 1 / max|coef| per row
  LuFactor lu_;                   // sparse LU + eta-file basis
  std::vector<int> basis_;        // basis_[pos] = column basic at pos
  std::vector<VarStatus> vstat_;  // per internal column
  std::vector<double> xval_;      // all variable values
  std::vector<double> d_;         // reduced costs
  std::vector<double> w_;         // FTRAN scratch (basis-position space)
  std::vector<double> rho_;       // pivot-row scratch (row space)
  std::vector<double> y_;         // BTRAN scratch (row space)
  std::vector<double> scratch_;   // cb / residual scratch

  // Basis-column gather scratch for Factorize.
  std::vector<int32_t> col_start_scratch_;
  std::vector<int32_t> col_rows_scratch_;
  std::vector<double> col_vals_scratch_;

  // Factorization accounting for LpSolveStats.
  int64_t refactorizations_ = 0;
  double max_drift_ = 0.0;
  double ftran_btran_seconds_ = 0.0;
};

}  // namespace

SolverCounters& GlobalSolverCounters() {
  static SolverCounters counters;
  return counters;
}

void ResetSolverCounters() { GlobalSolverCounters() = SolverCounters{}; }

SolverCounters SolverCountersSince(const SolverCounters& snapshot) {
  const SolverCounters& now = GlobalSolverCounters();
  SolverCounters delta;
  delta.lp_solves = now.lp_solves - snapshot.lp_solves;
  delta.phase1_pivots = now.phase1_pivots - snapshot.phase1_pivots;
  delta.phase2_pivots = now.phase2_pivots - snapshot.phase2_pivots;
  delta.bound_flips = now.bound_flips - snapshot.bound_flips;
  delta.warm_starts = now.warm_starts - snapshot.warm_starts;
  delta.cold_starts = now.cold_starts - snapshot.cold_starts;
  delta.factorizations = now.factorizations - snapshot.factorizations;
  delta.eta_nnz = now.eta_nnz - snapshot.eta_nnz;
  delta.ftran_btran_seconds =
      now.ftran_btran_seconds - snapshot.ftran_btran_seconds;
  return delta;
}

LpSolution SolveLp(const Model& model, const std::vector<double>* var_lower,
                   const std::vector<double>* var_upper,
                   const LpBasis* warm_basis, bool want_duals) {
  const int nv = model.num_variables();
  std::vector<double> lo(nv), hi(nv);
  for (int i = 0; i < nv; ++i) {
    lo[i] = var_lower != nullptr ? (*var_lower)[i] : model.variable(i).lower;
    hi[i] = var_upper != nullptr ? (*var_upper)[i] : model.variable(i).upper;
    if (lo[i] > hi[i]) {
      LpSolution bad;
      bad.status = Status::Infeasible("contradictory variable bounds");
      return bad;
    }
  }

  SolverCounters& counters = GlobalSolverCounters();
  counters.lp_solves += 1;

  RevisedSimplex simplex(model, lo, hi);
  LpSolution sol;
  const auto finish = [&]() -> LpSolution {
    simplex.ExportFactorStats(&sol.stats);
    return std::move(sol);
  };
  if (warm_basis != nullptr && !warm_basis->empty() &&
      simplex.WarmStart(*warm_basis)) {
    sol.stats.warm_started = true;
    counters.warm_starts += 1;
  } else {
    simplex.ColdStart();
    counters.cold_starts += 1;
  }

  IterStatus st = simplex.Phase1(&sol.stats);
  if (st == IterStatus::kStalled) {
    sol.status = Status::Infeasible("phase-1 optimum positive");
    return finish();
  }
  if (st == IterStatus::kIterLimit) {
    sol.status = Status::Internal("simplex iteration limit (phase 1)");
    return finish();
  }
  if (st == IterStatus::kNumericalFailure) {
    sol.status = Status::Internal("basis factorization failed (phase 1)");
    return finish();
  }
  if (simplex.MaxViolation() > kInfeasTotal) {
    sol.status = Status::Infeasible("phase-1 optimum positive");
    return finish();
  }

  st = simplex.Phase2(&sol.stats);
  if (st == IterStatus::kIterLimit) {
    sol.status = Status::Internal("simplex iteration limit (phase 2)");
    return finish();
  }
  if (st == IterStatus::kNumericalFailure) {
    sol.status = Status::Internal("basis factorization failed (phase 2)");
    return finish();
  }
  if (st == IterStatus::kUnbounded) {
    sol.status = Status::Unbounded("LP relaxation unbounded");
    return finish();
  }

  sol.status = Status::Ok();
  sol.x = simplex.ExtractPrimal();
  sol.objective = model.ObjectiveValue(sol.x);
  sol.basis = simplex.ExportBasis();
  if (want_duals) simplex.ExportDuals(&sol.duals, &sol.reduced_costs);
  return finish();
}

}  // namespace cophy::lp
