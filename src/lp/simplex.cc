// Bounded-variable revised simplex (primal and dual) over the CSR/CSC
// model.
//
// Internal layout: columns [0, nv) are the structural variables, column
// nv + r is the slack of row r with coefficient +1 and sense encoded in
// its bounds (kLe: [0, inf), kGe: (-inf, 0], kEq: [0, 0]), so every row
// is an equality A'x' = b over bounded variables and the slack basis is
// the identity. The basis is held as a sparse LU factorization
// (lp/lu_factor.h): Markowitz-ordered threshold-pivoted LU with sparse
// FTRAN/BTRAN through the factors and a Forrest–Tomlin update per
// pivot. Refactorization is driven by the factorization's own
// fill/stability trigger (plus a large backstop interval) — FT keeps
// the factors compact, so the old fixed 96-pivot interval is gone.
//
// Both simplex variants price over the *sparse pivot row*: after the
// unit BTRAN for row r, alpha_j = rho . a_j is accumulated only for
// the columns intersecting rho's nonzero rows (CSR row walk), so a
// pivot costs O(nnz of the active rows), not O(nnz of the model).
//
// Primal phase 2 prices with devex by default (reference-framework
// weights updated from the same sparse pivot row, reset when they
// outgrow their trusted range), confirms every candidate against its
// exact reduced cost c_j - c_B . w after FTRAN, and falls back to
// Bland's rule late in the iteration budget to guard against cycling.
//
// Phase 1 is artificial-free: starting from any basis (slack or
// imported), it minimizes the total bound violation of the basic
// variables with the composite-objective rule — an infeasible-below
// basic prices with sigma = -1 and blocks the ratio test at its lower
// bound, an infeasible-above basic with sigma = +1 at its upper bound.
//
// The dual simplex (SolveLp with SimplexEntry::kDual) is the
// branch-and-bound node path: a parent-optimal basis re-imported under
// child bounds is still dual feasible (the branching variable was
// basic), so the dual ratio test walks the primal infeasibility out in
// a few pivots with *zero* primal phase-1 work. Boxed nonbasics whose
// reduced cost has the wrong sign are repaired by bound flips on
// entry; the dual ratio test itself takes bound-flipping long steps
// (skipping boxed blockers by flipping them, absorbing |alpha| * range
// of infeasibility each) before committing to an entering column.
#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/stopwatch.h"
#include "lp/lu_factor.h"

namespace cophy::lp {

namespace {

constexpr double kLeaveEps = 1e-7;  // min |w_r| to accept a pivot element
constexpr double kDualEps = 1e-7;
// The dual simplex tolerates wrong-sign reduced costs up to this band
// on columns it cannot flip-repair (free / one-sided): recomputing d on
// a warm parent basis routinely lands a hair past kDualEps, and bailing
// out to primal phase 1 over recompute noise throws the warm start
// away. Within the band the dual solve proceeds (the column surfaces as
// a zero-ratio candidate and is fixed by a degenerate pivot); the final
// optimality verdict still requires the strict kDualEps.
constexpr double kDualRepairEps = 1e-5;
constexpr double kFeasEps = 1e-7;
constexpr double kInfeasTotal = 1e-6;
// Forced refactorization backstop. The working trigger is the
// factorization's own fill/stability signal (LuFactor::
// NeedsRefactorization); this bound only caps drift accumulation on
// solves where Forrest–Tomlin updates stay unusually clean.
constexpr int kRefactorBackstop = 1024;
// Devex weights above this have outgrown the reference framework the
// run started from; reset the framework to the current nonbasic set.
constexpr double kDevexWeightCap = 1e7;
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- Numerical-safeguard tuning (LpOptions::safeguards). ---
// EXPAND working tolerance for the Harris two-pass ratio tests: bounds
// are treated as relaxed by expand_tol_, which starts at half the
// feasibility tolerance, creeps up per pivot, and snaps back at every
// refactorization. The creep guarantees strictly positive steps
// through long degenerate stretches.
constexpr double kExpandBase = 0.5 * kFeasEps;
constexpr double kExpandInc = 2e-11;
constexpr double kExpandMax = 1e-7;
// Degeneracy perturbation magnitudes (deterministic per-column jitter
// in [0.5, 1) times these): bounds for the primal, costs for the dual.
constexpr double kBoundPerturb = 1e-9;
constexpr double kCostPerturb = 1e-9;
// Perturbation rounds per solve before escalating to Bland instead.
constexpr int kMaxPerturbRounds = 3;
// A pivot step below this counts as degenerate for the stall watchdog.
constexpr double kDegenStep = 1e-12;
// Certification tolerances (relative, in the unscaled space).
constexpr double kCertTol = 1e-6;

enum class IterStatus {
  kOptimal,
  kUnbounded,
  kStalled,
  kIterLimit,
  kNumericalFailure,  // basis factorization lost and unrecoverable
  kDualInfeasible,    // dual simplex proved the LP primal infeasible
  kNotDualFeasible,   // start not flip-repairable; run the primal phases
  kFeasibilityLost,   // basis repair broke primal feasibility; rerun phase 1
};

// splitmix64-style column hash for the basis-revisit detector and the
// deterministic perturbation jitter.
uint64_t ColHash(uint64_t j) {
  uint64_t h = j + 0x9E3779B97F4A7C15ull;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

// Deterministic jitter in [0.5, 1): breaks ties differently per column
// and per perturbation round without any global random state.
double Jitter(int j, int round) {
  const uint64_t h = ColHash(static_cast<uint64_t>(j) * 0x10001u + round);
  return 0.5 + static_cast<double>(h >> 40) * (0.5 / 16777216.0);
}

class RevisedSimplex {
 public:
  RevisedSimplex(const Model& model, const LpOptions& options,
                 const std::vector<double>& lo_struct,
                 const std::vector<double>& hi_struct)
      : model_(model),
        options_(options),
        nv_(model.num_variables()),
        m_(model.num_rows()),
        n_(nv_ + m_) {
    lo_.resize(n_);
    hi_.resize(n_);
    cost_.assign(n_, 0.0);
    b_.resize(m_);
    // Scaling. The solver works on A' = R A C with positive diagonal R
    // (rows) and C (columns): internal variables are x' = C^{-1} x,
    // bounds lo/C <= x' <= hi/C, costs c' = C c (so c'.x' = c.x), and
    // exports map back with x = C x', y = R y', d = C^{-1} d'. With
    // LpScaling::kGeometricMean two alternating geometric-mean passes
    // balance each row's and column's magnitude spread first, every
    // factor snapped to a power of two so the transform is exact in
    // floating point; a final row equilibration (the legacy scaling,
    // and the whole story under kRowEquilibrate) then pins each row's
    // largest |coefficient| at 1 for the factorization. Scaling depends
    // only on the model, so warm-started solves of the same model see
    // bit-identical scaled problems.
    col_scale_.assign(nv_, 1.0);
    row_scale_.assign(m_, 1.0);
    if (options.scaling == LpScaling::kGeometricMean && m_ > 0) {
      const auto snap = [](double s) {
        return s > 0.0 && std::isfinite(s) ? std::exp2(std::round(std::log2(s)))
                                           : 1.0;
      };
      for (int pass = 0; pass < 2; ++pass) {
        for (int r = 0; r < m_; ++r) {
          const RowView row = model.row(r);
          double small = kInf, big = 0.0;
          for (int k = 0; k < row.nnz; ++k) {
            const double a =
                std::abs(row.vals[k]) * col_scale_[row.cols[k]] * row_scale_[r];
            if (a > 0) {
              small = std::min(small, a);
              big = std::max(big, a);
            }
          }
          if (big > 0) row_scale_[r] = snap(row_scale_[r] / std::sqrt(small * big));
        }
        for (int j = 0; j < nv_; ++j) {
          const ColumnView col = model.column(j);
          double small = kInf, big = 0.0;
          for (int k = 0; k < col.nnz; ++k) {
            const double a =
                std::abs(col.vals[k]) * row_scale_[col.rows[k]] * col_scale_[j];
            if (a > 0) {
              small = std::min(small, a);
              big = std::max(big, a);
            }
          }
          if (big > 0) col_scale_[j] = snap(col_scale_[j] / std::sqrt(small * big));
        }
      }
    }
    // Row equilibration: divide each (column-scaled) row by its largest
    // |coefficient| so rows of wildly different magnitude (storage bytes
    // next to 0/1 linking rows) don't wreck the conditioning of the
    // factorization. Slack bounds are 0 / +-inf, so they are invariant
    // under positive row scaling and the structural solution is
    // unchanged.
    for (int r = 0; r < m_; ++r) {
      const RowView row = model.row(r);
      double big = 0;
      for (int k = 0; k < row.nnz; ++k) {
        big = std::max(big, std::abs(row.vals[k]) * col_scale_[row.cols[k]]);
      }
      row_scale_[r] = big > 0 ? 1.0 / big : 1.0;
    }
    for (int j = 0; j < nv_; ++j) {
      lo_[j] = lo_struct[j] / col_scale_[j];
      hi_[j] = hi_struct[j] / col_scale_[j];
      cost_[j] = model.variable(j).objective * col_scale_[j];
    }
    for (int r = 0; r < m_; ++r) {
      const RowView row = model.row(r);
      b_[r] = row.rhs * row_scale_[r];
      const int s = nv_ + r;
      switch (row.sense) {
        case Sense::kLe:
          lo_[s] = 0.0;
          hi_[s] = kInf;
          break;
        case Sense::kGe:
          lo_[s] = -kInf;
          hi_[s] = 0.0;
          break;
        case Sense::kEq:
          lo_[s] = 0.0;
          hi_[s] = 0.0;
          break;
      }
    }
    basis_.resize(m_);
    vstat_.assign(n_, VarStatus::kAtLower);
    xval_.assign(n_, 0.0);
    d_.assign(n_, 0.0);
    w_.resize(m_);
    rho_.resize(m_);
    y_.resize(m_);
    scratch_.resize(m_);
    alpha_.assign(n_, 0.0);
    alpha_mark_.assign(n_, 0);
    in_cand_.assign(n_, 0);
  }

  /// Installs the all-slack basis with structurals at their nearest
  /// finite bound.
  void ColdStart() {
    for (int j = 0; j < nv_; ++j) SetNonbasicAtBound(j, VarStatus::kAtLower);
    std::vector<int> cols(m_);
    for (int r = 0; r < m_; ++r) cols[r] = nv_ + r;
    const bool ok = Factorize(cols);  // slack basis: identity, can't fail
    COPHY_CHECK(ok);
    ComputeBasicValues();
    ResetWatchdog();
  }

  /// Installs an imported basis; false if it is unusable (wrong shape,
  /// wrong basic count, or singular basis matrix).
  bool WarmStart(const LpBasis& wb) {
    if (static_cast<int>(wb.variables.size()) != nv_ ||
        static_cast<int>(wb.slacks.size()) != m_) {
      return false;
    }
    std::vector<int> basic_cols;
    basic_cols.reserve(m_);
    for (int j = 0; j < nv_; ++j) {
      if (wb.variables[j] == VarStatus::kBasic) basic_cols.push_back(j);
    }
    for (int r = 0; r < m_; ++r) {
      if (wb.slacks[r] == VarStatus::kBasic) basic_cols.push_back(nv_ + r);
    }
    if (static_cast<int>(basic_cols.size()) != m_) return false;
    if (!Factorize(basic_cols)) return false;
    // Keyed on the *installed* statuses, not the imported ones: a
    // singular-basis repair may have ejected an imported basic column
    // (now nonbasic) and promoted a slack the import held at a bound.
    for (int j = 0; j < n_; ++j) {
      if (vstat_[j] == VarStatus::kBasic) continue;  // set by Factorize
      SetNonbasicAtBound(j, j < nv_ ? wb.variables[j] : wb.slacks[j - nv_]);
    }
    ComputeBasicValues();
    ResetWatchdog();
    // A repaired import is a valid (if different) start; the primal or
    // dual loop re-establishes its own invariants from here.
    basis_repaired_ = false;
    return true;
  }

  /// Restores primal feasibility of the current basis (phase 1).
  IterStatus Phase1(LpSolveStats* stats) {
    return Iterate(/*phase1=*/true, stats);
  }
  /// Optimizes the real objective from a primal-feasible basis.
  IterStatus Phase2(LpSolveStats* stats) {
    RecomputeReducedCosts();
    if (options_.pricing == Pricing::kDevex) devex_w_.assign(n_, 1.0);
    return Iterate(/*phase1=*/false, stats);
  }

  /// Bounded-variable dual simplex with bound-flipping long steps, from
  /// the currently installed basis. Returns
  ///  - kOptimal: primal and dual feasible (LP solved),
  ///  - kDualInfeasible: the LP is primal infeasible (a violated basic
  ///    row admits no entering column — a dual ray),
  ///  - kNotDualFeasible: the start cannot be flip-repaired into dual
  ///    feasibility (wrong-sign reduced cost on a free or one-sided
  ///    nonbasic); the basis is left valid for the primal phases,
  ///  - kIterLimit / kNumericalFailure as in the primal loop.
  IterStatus DualSolve(LpSolveStats* stats) {
    RecomputeReducedCosts();
    if (!RestoreDualFeasibility(stats)) return IterStatus::kNotDualFeasible;
    const int64_t iter_limit = 200 * (static_cast<int64_t>(m_) + n_) + 2000;
    int64_t pivots_since_refresh = 0;
    int64_t pivots_since_factor = 0;
    for (int64_t iter = 0; iter < iter_limit; ++iter) {
      if (pivots_since_factor >= kRefactorBackstop ||
          (pivots_since_factor > 0 && lu_.NeedsRefactorization())) {
        if (Refactorize()) {
          // A slack repair changes the basis but never the dual loop's
          // contract (it re-establishes dual feasibility right here).
          basis_repaired_ = false;
          ComputeBasicValues(/*measure_drift=*/true);
          RecomputeReducedCosts();
          if (!RestoreDualFeasibility(stats)) {
            return IterStatus::kNotDualFeasible;
          }
          pivots_since_refresh = 0;
        } else if (options_.safeguards) {
          return IterStatus::kNumericalFailure;
        }
        pivots_since_factor = 0;
      } else if (pivots_since_refresh >= 64) {
        ComputeBasicValues(/*measure_drift=*/true);
        RecomputeReducedCosts();
        if (!RestoreDualFeasibility(stats)) return IterStatus::kNotDualFeasible;
        pivots_since_refresh = 0;
      }

      // --- Dual pricing: the most-violated basic variable leaves. ---
      int leave = -1;
      double best_viol = kFeasEps;
      bool above = false;
      for (int r = 0; r < m_; ++r) {
        const int j = basis_[r];
        const double below_by = lo_[j] - xval_[j];
        const double above_by = xval_[j] - hi_[j];
        if (below_by > best_viol) {
          best_viol = below_by;
          leave = r;
          above = false;
        }
        if (above_by > best_viol) {
          best_viol = above_by;
          leave = r;
          above = true;
        }
      }
      if (leave < 0) {
        if (pivots_since_refresh > 0) {
          // The incremental values say "primal feasible" — confirm
          // against freshly recomputed values before declaring
          // optimality (guards against drift).
          ComputeBasicValues(/*measure_drift=*/true);
          RecomputeReducedCosts();
          if (!RestoreDualFeasibility(stats)) {
            return IterStatus::kNotDualFeasible;
          }
          pivots_since_refresh = 0;
          continue;
        }
        // Primal feasible on fresh values. kOptimal additionally needs
        // strict dual feasibility: if a band-level wrong-sign residual
        // survived the whole dual solve, hand the basis to the primal
        // phases instead — it is primal feasible, so phase 1 passes
        // through pivot-free and phase 2 does the exact cleanup.
        return dual_wrong_sign_ > kDualEps ? IterStatus::kNotDualFeasible
                                           : IterStatus::kOptimal;
      }
      const int leaving_var = basis_[leave];
      const double sign = above ? 1.0 : -1.0;
      const double bound_target = above ? hi_[leaving_var] : lo_[leaving_var];

      BtranUnit(leave);
      ComputePivotRow();

      // --- Dual ratio test over the sparse pivot row. An at-lower
      // column blocks when sign * alpha > 0 (its reduced cost falls as
      // the dual step grows), an at-upper column when sign * alpha < 0,
      // a free column immediately (d ~ 0). ---
      dual_cands_.clear();
      bool weak_candidate = false;
      for (const int j : alpha_touched_) {
        if (vstat_[j] == VarStatus::kBasic || lo_[j] == hi_[j]) continue;
        const double a = alpha_[j];
        const double abar = sign * a;
        const VarStatus st = vstat_[j];
        const bool eligible =
            st == VarStatus::kFree ||
            (st == VarStatus::kAtLower && abar > 0) ||
            (st == VarStatus::kAtUpper && abar < 0);
        if (!eligible) continue;
        if (std::abs(a) <= kLeaveEps) {
          // Too small to pivot on, but real enough that this row is
          // not a clean infeasibility certificate.
          if (std::abs(a) > 1e-11) weak_candidate = true;
          continue;
        }
        double ratio = d_[j] / abar;
        if (ratio < 0) ratio = 0;  // dual-degenerate / tolerance noise
        dual_cands_.push_back(DualCand{ratio, std::abs(a), j});
      }
      if (dual_cands_.empty()) {
        if (pivots_since_refresh > 0) {
          ComputeBasicValues(/*measure_drift=*/true);
          RecomputeReducedCosts();
          if (!RestoreDualFeasibility(stats)) {
            return IterStatus::kNotDualFeasible;
          }
          pivots_since_refresh = 0;
          continue;
        }
        // No entering column can repair the violated row: with clean
        // candidates ruled out this is a dual ray — the LP is primal
        // infeasible. If only tolerance-sized pivots were rejected,
        // hand the verdict to the primal phases instead of certifying
        // infeasibility off numerical dust.
        return weak_candidate ? IterStatus::kNotDualFeasible
                              : IterStatus::kDualInfeasible;
      }
      std::sort(dual_cands_.begin(), dual_cands_.end(),
                [](const DualCand& x, const DualCand& y) {
                  if (x.ratio != y.ratio) return x.ratio < y.ratio;
                  if (x.abs_alpha != y.abs_alpha) {
                    return x.abs_alpha > y.abs_alpha;
                  }
                  return x.j < y.j;
                });

      // --- Bound-flipping long step: a boxed blocker whose whole range
      // absorbs less than the remaining infeasibility flips to its
      // other bound (no pivot) and the dual step marches past it to
      // the next candidate. ---
      double remaining = best_viol;
      size_t pick = dual_cands_.size() - 1;
      flip_scratch_.clear();
      for (size_t k = 0; k < dual_cands_.size(); ++k) {
        const DualCand& c = dual_cands_[k];
        const double range = hi_[c.j] - lo_[c.j];
        if (k + 1 < dual_cands_.size() && std::isfinite(range) &&
            remaining - c.abs_alpha * range > kFeasEps) {
          flip_scratch_.push_back(c.j);
          remaining -= c.abs_alpha * range;
          continue;
        }
        pick = k;
        break;
      }
      if (options_.safeguards) {
        // Harris pass 2 under EXPAND: later candidates whose exact
        // ratio still fits under every earlier candidate's relaxed
        // bound (ratio + expand_tol_/|alpha|) are admissible — any
        // skipped column's reduced cost goes wrong-sign by at most
        // expand_tol_, inside the dual repair band. Take the largest
        // pivot element in the window.
        double window = dual_cands_[pick].ratio +
                        expand_tol_ / dual_cands_[pick].abs_alpha;
        for (size_t k = pick + 1; k < dual_cands_.size(); ++k) {
          const DualCand& c = dual_cands_[k];
          if (c.ratio > window) break;
          window = std::min(window, c.ratio + expand_tol_ / c.abs_alpha);
          if (c.abs_alpha > dual_cands_[pick].abs_alpha) pick = k;
        }
        expand_tol_ = std::min(expand_tol_ + kExpandInc, kExpandMax);
      }
      const int enter = dual_cands_[pick].j;
      if (!flip_scratch_.empty()) {
        // One combined FTRAN over the flipped columns' deltas, through
        // the same hyper-sparse path as the entering column.
        for (const int32_t i : w_pattern_) w_[i] = 0.0;
        w_pattern_.clear();
        for (const int j : flip_scratch_) {
          const double delta = vstat_[j] == VarStatus::kAtLower
                                   ? hi_[j] - lo_[j]
                                   : lo_[j] - hi_[j];
          ForEachEntry(j, [&](int row, double v) {
            if (w_[row] == 0.0 && v != 0.0) w_pattern_.push_back(row);
            w_[row] += v * delta;
          });
          vstat_[j] = vstat_[j] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                       : VarStatus::kAtLower;
          xval_[j] = vstat_[j] == VarStatus::kAtLower ? lo_[j] : hi_[j];
        }
        const Stopwatch timer;
        lu_.FtranSparse(w_, w_pattern_);
        ftran_btran_seconds_ += timer.Elapsed();
        for (const int32_t r : w_pattern_) {
          xval_[basis_[r]] -= w_[r];
        }
        stats->bound_flips += static_cast<int64_t>(flip_scratch_.size());
        GlobalSolverCounters().bound_flips.fetch_add(
            static_cast<int64_t>(flip_scratch_.size()),
            std::memory_order_relaxed);
      }

      Ftran(enter);
      const double wr = w_[leave];
      if (std::abs(wr) <= kLeaveEps) {
        // The FTRAN image disagrees with the pivot row badly enough
        // that this pivot would poison the update: refresh everything
        // and re-price the row (bounded by the iteration budget).
        if (!Refactorize()) return IterStatus::kNumericalFailure;
        ComputeBasicValues(/*measure_drift=*/true);
        RecomputeReducedCosts();
        if (!RestoreDualFeasibility(stats)) return IterStatus::kNotDualFeasible;
        pivots_since_refresh = 0;
        pivots_since_factor = 0;
        continue;
      }

      // --- Pivot: primal step to the leaving bound, dual step by the
      // entering ratio, incremental d over the sparse pivot row. ---
      const double dx = (xval_[leaving_var] - bound_target) / wr;
      for (const int32_t r : w_pattern_) {
        xval_[basis_[r]] -= w_[r] * dx;
      }
      xval_[enter] += dx;
      xval_[leaving_var] = bound_target;  // snap exactly onto its bound
      vstat_[leaving_var] = lo_[leaving_var] == hi_[leaving_var]
                                ? VarStatus::kAtLower
                                : (above ? VarStatus::kAtUpper
                                         : VarStatus::kAtLower);
      const double theta_d = d_[enter] / wr;
      if (theta_d != 0.0) {
        for (const int j : alpha_touched_) {
          if (vstat_[j] == VarStatus::kBasic || j == enter) continue;
          d_[j] -= theta_d * alpha_[j];
        }
      }
      d_[leaving_var] = -theta_d;
      d_[enter] = 0.0;
      vstat_[enter] = VarStatus::kBasic;
      basis_[leave] = enter;
      stats->dual_pivots += 1;
      GlobalSolverCounters().dual_pivots.fetch_add(1,
                                                   std::memory_order_relaxed);
      ++pivots_since_refresh;
      ++pivots_since_factor;
      if (!lu_.Update(w_, w_pattern_, leave)) {
        // Same contract as the primal loop: the factors still describe
        // the pre-pivot basis, so refactorize immediately or fail.
        if (!Refactorize()) return IterStatus::kNumericalFailure;
        basis_repaired_ = false;
        ComputeBasicValues();
        RecomputeReducedCosts();
        if (!RestoreDualFeasibility(stats)) return IterStatus::kNotDualFeasible;
        pivots_since_refresh = 0;
        pivots_since_factor = 0;
      }
      // Watchdog last: a cost-perturbation escalation re-prices
      // through the factors, which now include this pivot.
      if (WatchdogTripped(theta_d, enter, leaving_var)) {
        if (perturb_rounds_ < kMaxPerturbRounds) {
          // Dual stall: split the dual-degenerate ties with a
          // sign-safe cost perturbation and keep going.
          PerturbCosts();
          if (!RestoreDualFeasibility(stats)) {
            return IterStatus::kNotDualFeasible;
          }
          pivots_since_refresh = 0;
        } else {
          // Out of perturbation rounds: hand the basis to the primal
          // phases, whose own ladder ends in Bland's rule.
          return IterStatus::kNotDualFeasible;
        }
      }
    }
    return IterStatus::kIterLimit;
  }

  /// Total bound violation of the basic variables.
  double Infeasibility() const {
    double total = 0;
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[r];
      if (xval_[j] < lo_[j]) total += lo_[j] - xval_[j];
      if (xval_[j] > hi_[j]) total += xval_[j] - hi_[j];
    }
    return total;
  }

  /// Largest single bound violation among the basic variables.
  double MaxViolation() const {
    double worst = 0;
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[r];
      worst = std::max(worst, lo_[j] - xval_[j]);
      worst = std::max(worst, xval_[j] - hi_[j]);
    }
    return worst;
  }

  std::vector<double> ExtractPrimal() const {
    std::vector<double> x(nv_);
    for (int j = 0; j < nv_; ++j) {
      x[j] = xval_[j] * col_scale_[j];
      if (std::isfinite(lo_[j])) x[j] = std::max(x[j], lo_[j] * col_scale_[j]);
      if (std::isfinite(hi_[j])) x[j] = std::min(x[j], hi_[j] * col_scale_[j]);
    }
    return x;
  }

  LpBasis ExportBasis() const {
    LpBasis basis;
    basis.variables.assign(vstat_.begin(), vstat_.begin() + nv_);
    basis.slacks.assign(vstat_.begin() + nv_, vstat_.end());
    return basis;
  }

  /// Row duals (unscaled back to the model's original rows) and
  /// structural reduced costs at the final basis. One BTRAN plus a full
  /// pricing pass — called once per solve, after optimality.
  void ExportDuals(std::vector<double>* duals,
                   std::vector<double>* reduced_costs) {
    RecomputeReducedCosts();  // leaves y_ = c_B B^{-1} (scaled rows)
    duals->resize(m_);
    for (int r = 0; r < m_; ++r) (*duals)[r] = y_[r] * row_scale_[r];
    reduced_costs->resize(nv_);
    for (int j = 0; j < nv_; ++j) (*reduced_costs)[j] = d_[j] / col_scale_[j];
  }

  /// Copies the factorization accounting into `stats` and charges the
  /// process-wide counters. Called once per solve, on every exit path.
  void ExportFactorStats(LpSolveStats* stats) {
    stats->refactorizations = refactorizations_;
    stats->ft_updates = lu_.total_updates();
    stats->eta_nnz = lu_.total_eta_nnz();
    stats->lu_fill_nnz = lu_.fill_nnz();
    stats->max_drift = max_drift_;
    stats->ftran_btran_seconds = ftran_btran_seconds_;
    stats->perturbations_applied = perturbations_applied_;
    stats->perturbations_removed = perturbations_removed_;
    stats->bland_escalations = bland_escalations_;
    stats->markowitz_escalations = markowitz_escalations_;
    stats->singular_repairs = singular_repairs_;
    AtomicSolverCounters& counters = GlobalSolverCounters();
    const auto add = [](std::atomic<int64_t>& f, int64_t v) {
      f.fetch_add(v, std::memory_order_relaxed);
    };
    add(counters.ft_updates, lu_.total_updates());
    add(counters.eta_nnz, lu_.total_eta_nnz());
    counters.AddSeconds(ftran_btran_seconds_);
    add(counters.perturbations_applied, perturbations_applied_);
    add(counters.perturbations_removed, perturbations_removed_);
    add(counters.bland_escalations, bland_escalations_);
    add(counters.markowitz_escalations, markowitz_escalations_);
    add(counters.singular_repairs, singular_repairs_);
  }

  /// True while a degeneracy perturbation (bounds or costs) is
  /// installed. The driver must remove it (and make the cleanup
  /// pivots) before certifying or exporting a verdict.
  bool PerturbationActive() const { return bounds_perturbed_ || cost_perturbed_; }

  /// Takes any installed perturbation back out: restores the original
  /// bounds/costs, snaps nonbasics onto their true bounds, and
  /// recomputes the basic values. The caller re-runs its optimality
  /// loop — the cleanup pivots — before the final verdict.
  void RemovePerturbation() {
    if (bounds_perturbed_) {
      lo_ = lo_base_;
      hi_ = hi_base_;
      bounds_perturbed_ = false;
    }
    if (cost_perturbed_) {
      cost_ = cost_base_;
      cost_perturbed_ = false;
    }
    perturbations_removed_ += active_perturb_rounds_;
    active_perturb_rounds_ = 0;
    for (int j = 0; j < n_; ++j) {
      if (vstat_[j] != VarStatus::kBasic) SetNonbasicAtBound(j, vstat_[j]);
    }
    ComputeBasicValues();
  }

  /// Clears every escalation artifact (perturbations, forced Bland,
  /// EXPAND creep) without touching the — possibly broken — factors or
  /// basic values, so a ColdStart right after restarts from a clean
  /// slate. The raised Markowitz threshold stays raised: it failed at
  /// the lower setting. Discarded perturbations are not counted as
  /// removed (nothing was cleaned up at the true data).
  void PrepareColdRestart() {
    if (bounds_perturbed_) {
      lo_ = lo_base_;
      hi_ = hi_base_;
      bounds_perturbed_ = false;
    }
    if (cost_perturbed_) {
      cost_ = cost_base_;
      cost_perturbed_ = false;
    }
    active_perturb_rounds_ = 0;
    perturb_rounds_ = 0;
    force_bland_ = false;
    basis_repaired_ = false;
    expand_tol_ = kExpandBase;
  }

  /// Independent verification of the final basis in the *unscaled*
  /// space: row feasibility, bound feasibility, reduced-cost signs,
  /// and primal-vs-dual objective agreement, each as a relative
  /// residual checked against kCertTol. One round of iterative
  /// refinement (a residual FTRAN correcting the basic values) runs
  /// first when the row residual warrants it. Requires any
  /// perturbation to be removed. Fills the certification stats and
  /// charges the process-wide certified/uncertified counters.
  bool Certify(LpSolveStats* stats) {
    double row_resid = ComputeRowResidual();
    if (row_resid > kCertTol / 8) {
      // x_B += B^{-1} r moves the basic values by exactly the row
      // residual (up to the factors' own error).
      std::copy(resid_.begin(), resid_.end(), y_.begin());
      const Stopwatch timer;
      lu_.Ftran(y_);
      ftran_btran_seconds_ += timer.Elapsed();
      for (int r = 0; r < m_; ++r) xval_[basis_[r]] += y_[r];
      stats->refinement_rounds += 1;
      row_resid = ComputeRowResidual();
    }
    double bound_resid = 0.0;
    for (int j = 0; j < n_; ++j) {
      const double s = ColScale(j);
      if (std::isfinite(lo_[j]) && xval_[j] < lo_[j]) {
        bound_resid = std::max(bound_resid, (lo_[j] - xval_[j]) * s /
                                                (1.0 + std::abs(lo_[j] * s)));
      }
      if (std::isfinite(hi_[j]) && xval_[j] > hi_[j]) {
        bound_resid = std::max(bound_resid, (xval_[j] - hi_[j]) * s /
                                                (1.0 + std::abs(hi_[j] * s)));
      }
    }
    RecomputeReducedCosts();  // exact d_ and y_ at the final basis
    double dual_resid = 0.0;
    for (int j = 0; j < n_; ++j) {
      const VarStatus st = vstat_[j];
      if (st == VarStatus::kBasic || lo_[j] == hi_[j]) continue;
      double wrong = 0.0;
      if (st == VarStatus::kAtLower) {
        wrong = -d_[j];
      } else if (st == VarStatus::kAtUpper) {
        wrong = d_[j];
      } else {
        wrong = std::abs(d_[j]);
      }
      if (wrong <= 0) continue;
      const double s = ColScale(j);
      dual_resid =
          std::max(dual_resid, (wrong / s) / (1.0 + std::abs(cost_[j] / s)));
    }
    // Objective agreement. Scaling preserves inner products (c'.x' =
    // c.x, y'.b' = y.b), so both objectives are computed directly in
    // the scaled space.
    double pobj = 0.0;
    for (int j = 0; j < n_; ++j) {
      if (cost_[j] != 0.0 && xval_[j] != 0.0) pobj += cost_[j] * xval_[j];
    }
    double dobj = 0.0;
    for (int r = 0; r < m_; ++r) dobj += y_[r] * b_[r];
    for (int j = 0; j < n_; ++j) {
      if (vstat_[j] == VarStatus::kBasic || d_[j] == 0.0 || xval_[j] == 0.0) {
        continue;
      }
      dobj += d_[j] * xval_[j];
    }
    const double gap = std::abs(pobj - dobj) / (1.0 + std::abs(pobj));
    stats->primal_residual = std::max(row_resid, bound_resid);
    stats->dual_residual = dual_resid;
    stats->objective_gap = gap;
    stats->certified = stats->primal_residual <= kCertTol &&
                       dual_resid <= kCertTol && gap <= kCertTol;
    AtomicSolverCounters& counters = GlobalSolverCounters();
    counters.refinement_rounds.fetch_add(stats->refinement_rounds,
                                         std::memory_order_relaxed);
    if (stats->certified) {
      counters.certified_solves.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters.uncertified_solves.fetch_add(1, std::memory_order_relaxed);
    }
    return stats->certified;
  }

 private:
  struct DualCand {
    double ratio;      // d_j / (sign * alpha_j), clamped at 0
    double abs_alpha;  // |pivot element| (stability tie-break)
    int j;
  };

  /// Applies `f(row, value)` to every nonzero of internal column `j`,
  /// in the fully scaled space (row and column scaling applied).
  template <typename F>
  void ForEachEntry(int j, F&& f) const {
    if (j < nv_) {
      const ColumnView col = model_.column(j);
      const double cs = col_scale_[j];
      for (int k = 0; k < col.nnz; ++k) {
        f(col.rows[k], col.vals[k] * row_scale_[col.rows[k]] * cs);
      }
    } else {
      f(j - nv_, 1.0);
    }
  }

  /// Column scale of internal column j: structurals carry their
  /// geometric-mean factor, the slack of row r carries 1/row_scale so
  /// its internal value maps back to the original row's slack.
  double ColScale(int j) const {
    return j < nv_ ? col_scale_[j] : 1.0 / row_scale_[j - nv_];
  }

  void SetNonbasicAtBound(int j, VarStatus preferred) {
    const bool lo_finite = std::isfinite(lo_[j]);
    const bool hi_finite = std::isfinite(hi_[j]);
    VarStatus st = preferred;
    if (st == VarStatus::kBasic) st = VarStatus::kAtLower;
    if (st == VarStatus::kAtLower && !lo_finite) {
      st = hi_finite ? VarStatus::kAtUpper : VarStatus::kFree;
    } else if (st == VarStatus::kAtUpper && !hi_finite) {
      st = lo_finite ? VarStatus::kAtLower : VarStatus::kFree;
    } else if (st == VarStatus::kFree && (lo_finite || hi_finite)) {
      st = lo_finite ? VarStatus::kAtLower : VarStatus::kAtUpper;
    }
    vstat_[j] = st;
    xval_[j] = st == VarStatus::kAtLower   ? lo_[j]
               : st == VarStatus::kAtUpper ? hi_[j]
                                           : 0.0;
  }

  /// w = B^{-1} * (column j): scatter the column by row, then one
  /// hyper-sparse LU solve through the update chain. Output indexed by
  /// basis position; w_ stays all-zero outside w_pattern_, so every
  /// consumer (ratio test, value update, FT spike) walks the pattern
  /// instead of all m rows.
  void Ftran(int j) {
    for (const int32_t i : w_pattern_) w_[i] = 0.0;
    w_pattern_.clear();
    ForEachEntry(j, [&](int row, double v) {
      if (w_[row] == 0.0 && v != 0.0) w_pattern_.push_back(row);
      w_[row] += v;
    });
    const Stopwatch timer;
    lu_.FtranSparse(w_, w_pattern_);
    ftran_btran_seconds_ += timer.Elapsed();
  }

  /// y^T = cb^T * B^{-1} (cb indexed by basis position, y by row).
  void Btran(const std::vector<double>& cb) {
    y_ = cb;
    const Stopwatch timer;
    lu_.Btran(y_);
    ftran_btran_seconds_ += timer.Elapsed();
  }

  /// rho = e_pos^T B^{-1}, the pivot row of the (pre-update) basis
  /// inverse, via a hyper-sparse unit-vector BTRAN. rho_ stays
  /// all-zero outside rho_pattern_.
  void BtranUnit(int pos) {
    for (const int32_t r : rho_pattern_) rho_[r] = 0.0;
    rho_pattern_.assign(1, pos);
    rho_[pos] = 1.0;
    const Stopwatch timer;
    lu_.BtranSparse(rho_, rho_pattern_);
    ftran_btran_seconds_ += timer.Elapsed();
  }

  /// Sparse pivot row from rho_: alpha_j = rho . a_j accumulated by
  /// walking the CSR rows where rho is nonzero (plus the slack of each
  /// such row), so only columns that can change are touched. Fills
  /// alpha_ (stamped) and alpha_touched_.
  void ComputePivotRow() {
    ++alpha_stamp_;
    const int32_t stamp = alpha_stamp_;
    alpha_touched_.clear();
    for (const int32_t r : rho_pattern_) {
      const double rr = rho_[r];
      if (rr == 0.0) continue;
      const RowView row = model_.row(r);
      const double scaled = rr * row_scale_[r];
      for (int k = 0; k < row.nnz; ++k) {
        const int j = row.cols[k];
        if (alpha_mark_[j] != stamp) {
          alpha_mark_[j] = stamp;
          alpha_[j] = 0.0;
          alpha_touched_.push_back(j);
        }
        alpha_[j] += scaled * row.vals[k] * col_scale_[j];
      }
      const int s = nv_ + r;  // slack column of row r: coefficient 1
      if (alpha_mark_[s] != stamp) {
        alpha_mark_[s] = stamp;
        alpha_[s] = 0.0;
        alpha_touched_.push_back(s);
      }
      alpha_[s] += rr;
    }
  }

  /// x_B = B^{-1} (b - N x_N); nonbasic values are already in xval_.
  /// With `measure_drift`, the largest |old - new| over the basic
  /// values — the update-chain drift caught by this refresh — feeds
  /// the solve's max_drift statistic.
  void ComputeBasicValues(bool measure_drift = false) {
    std::copy(b_.begin(), b_.end(), scratch_.begin());
    for (int j = 0; j < n_; ++j) {
      if (vstat_[j] == VarStatus::kBasic || xval_[j] == 0.0) continue;
      const double xj = xval_[j];
      ForEachEntry(j, [&](int row, double v) { scratch_[row] -= v * xj; });
    }
    std::copy(scratch_.begin(), scratch_.end(), y_.begin());
    const Stopwatch timer;
    lu_.Ftran(y_);
    ftran_btran_seconds_ += timer.Elapsed();
    if (measure_drift) {
      double worst = 0;
      for (int r = 0; r < m_; ++r) {
        worst = std::max(worst, std::abs(xval_[basis_[r]] - y_[r]));
      }
      max_drift_ = std::max(max_drift_, worst);
    }
    for (int r = 0; r < m_; ++r) xval_[basis_[r]] = y_[r];
  }

  /// Scaled-space row residual r = b' - A'x' over *all* columns into
  /// resid_ (independent of the factorization). Returns the worst
  /// unscaled relative residual max_r |r_r / R_r| / (1 + |rhs_r|).
  double ComputeRowResidual() {
    resid_ = b_;
    for (int j = 0; j < n_; ++j) {
      const double xj = xval_[j];
      if (xj == 0.0) continue;
      ForEachEntry(j, [&](int row, double v) { resid_[row] -= v * xj; });
    }
    double worst = 0.0;
    for (int r = 0; r < m_; ++r) {
      const double unscaled = std::abs(resid_[r]) / row_scale_[r];
      worst =
          std::max(worst, unscaled / (1.0 + std::abs(model_.row(r).rhs)));
    }
    return worst;
  }

  /// Degenerate pivots the watchdog tolerates before escalating.
  int64_t StallLimit() const {
    return options_.stall_pivot_limit > 0 ? options_.stall_pivot_limit
                                          : 100 + m_ / 4;
  }

  /// Re-seeds the stall/cycling watchdog from the installed basis.
  void ResetWatchdog() {
    stall_pivots_ = 0;
    basis_hash_ = 0;
    for (int r = 0; r < m_; ++r) basis_hash_ ^= ColHash(basis_[r]);
    recent_basis_.assign(64, basis_hash_);
    recent_pos_ = 0;
  }

  /// Folds one pivot into the watchdog: maintains the XOR basis hash,
  /// counts the degenerate streak (|step| <= kDegenStep — no objective
  /// progress), and checks degenerate pivots against the ring of
  /// recently visited basis hashes (a revisit while degenerate is the
  /// cycling signature; a productive pivot can never legally revisit,
  /// so the check is skipped there to dodge hash-collision noise).
  /// True means the caller must escalate; the streak restarts.
  bool WatchdogTripped(double step, int entered, int left) {
    if (!options_.safeguards) return false;
    basis_hash_ ^= ColHash(entered) ^ ColHash(left);
    bool tripped = false;
    if (std::abs(step) <= kDegenStep) {
      ++stall_pivots_;
      tripped = stall_pivots_ >= StallLimit();
      if (!tripped) {
        for (const uint64_t h : recent_basis_) {
          if (h == basis_hash_) {
            tripped = true;
            break;
          }
        }
      }
    } else {
      stall_pivots_ = 0;
    }
    recent_basis_[recent_pos_] = basis_hash_;
    recent_pos_ = (recent_pos_ + 1) & 63;
    if (tripped) stall_pivots_ = 0;
    return tripped;
  }

  /// Installs one round of outward bound perturbation (primal
  /// degeneracy breaker): every finite non-fixed bound moves outward
  /// by a deterministic per-column jitter, so the ratio-test ties that
  /// pinned the degenerate vertex split apart. Feasibility can only
  /// improve (the box grows). Removed by RemovePerturbation.
  void PerturbBounds() {
    if (!bounds_perturbed_) {
      lo_base_ = lo_;
      hi_base_ = hi_;
      bounds_perturbed_ = true;
    }
    ++perturb_rounds_;
    ++active_perturb_rounds_;
    ++perturbations_applied_;
    for (int j = 0; j < n_; ++j) {
      if (lo_[j] == hi_[j]) continue;  // fixed stays fixed
      const double eps = kBoundPerturb * Jitter(j, perturb_rounds_);
      if (std::isfinite(lo_[j])) lo_[j] -= eps * (1.0 + std::abs(lo_[j]));
      if (std::isfinite(hi_[j])) hi_[j] += eps * (1.0 + std::abs(hi_[j]));
    }
    for (int j = 0; j < n_; ++j) {
      if (vstat_[j] != VarStatus::kBasic) SetNonbasicAtBound(j, vstat_[j]);
    }
    ComputeBasicValues();
  }

  /// Dual analogue: sign-safe cost perturbation. An at-lower nonbasic
  /// needs d >= 0, so *raising* its cost only deepens dual
  /// feasibility; at-upper symmetrically. Dual-degenerate zero ratios
  /// turn into distinct positive ones. Removed by RemovePerturbation.
  void PerturbCosts() {
    if (!cost_perturbed_) {
      cost_base_ = cost_;
      cost_perturbed_ = true;
    }
    ++perturb_rounds_;
    ++active_perturb_rounds_;
    ++perturbations_applied_;
    for (int j = 0; j < n_; ++j) {
      if (lo_[j] == hi_[j]) continue;
      const double eps = kCostPerturb * Jitter(j, perturb_rounds_) *
                         (1.0 + std::abs(cost_[j]));
      if (vstat_[j] == VarStatus::kAtLower) {
        cost_[j] += eps;
      } else if (vstat_[j] == VarStatus::kAtUpper) {
        cost_[j] -= eps;
      }
    }
    RecomputeReducedCosts();
  }

  /// Entering direction of column j under the phase-2 reduced costs,
  /// or 0 if j cannot improve (basic, fixed, or dual feasible).
  int PriceDir(int j) const {
    const VarStatus st = vstat_[j];
    if (st == VarStatus::kBasic) return 0;
    const double dj = d_[j];
    int jdir = 0;
    if (st == VarStatus::kAtLower && dj < -kDualEps) {
      jdir = 1;
    } else if (st == VarStatus::kAtUpper && dj > kDualEps) {
      jdir = -1;
    } else if (st == VarStatus::kFree && std::abs(dj) > kDualEps) {
      jdir = dj < 0 ? 1 : -1;
    } else {
      return 0;
    }
    if (lo_[j] == hi_[j]) return 0;  // fixed: can never move
    return jdir;
  }

  /// Adds j to the phase-2 pricing candidate list if it improves and
  /// is not already listed. Stale entries are dropped lazily during
  /// the pricing scan, so the list is always a superset of the
  /// improving columns.
  void UpdateCandidate(int j) {
    if (!in_cand_[j] && PriceDir(j) != 0) {
      in_cand_[j] = 1;
      price_cand_.push_back(j);
    }
  }

  /// Full re-pricing of the phase-2 reduced-cost row (also the periodic
  /// numerical refresh). Rebuilds the pricing candidate list: every
  /// global d refresh invalidates the incremental maintenance.
  void RecomputeReducedCosts() {
    for (int r = 0; r < m_; ++r) scratch_[r] = cost_[basis_[r]];
    Btran(scratch_);
    for (int j = 0; j < n_; ++j) {
      if (vstat_[j] == VarStatus::kBasic) {
        d_[j] = 0.0;
        continue;
      }
      double acc = cost_[j];
      ForEachEntry(j, [&](int row, double v) { acc -= y_[row] * v; });
      d_[j] = acc;
    }
    price_cand_.clear();
    for (int j = 0; j < n_; ++j) {
      in_cand_[j] = PriceDir(j) != 0;
      if (in_cand_[j]) price_cand_.push_back(j);
    }
  }

  /// Phase-1 pricing: reduced costs of the composite infeasibility
  /// objective (sigma on violating basics, zero elsewhere).
  void RecomputePhase1Costs() {
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[r];
      if (xval_[j] < lo_[j] - kFeasEps) {
        scratch_[r] = -1.0;
      } else if (xval_[j] > hi_[j] + kFeasEps) {
        scratch_[r] = 1.0;
      } else {
        scratch_[r] = 0.0;
      }
    }
    Btran(scratch_);
    for (int j = 0; j < n_; ++j) {
      d_[j] = 0.0;
      if (vstat_[j] == VarStatus::kBasic) continue;
      double acc = 0;
      ForEachEntry(j, [&](int row, double v) { acc -= y_[row] * v; });
      d_[j] = acc;
    }
  }

  /// Repairs wrong-sign reduced costs on boxed nonbasics by flipping
  /// them to the opposite bound (where that sign is the correct one).
  /// A free or one-sided nonbasic with a wrong-sign reduced cost is not
  /// flip-repairable: beyond kDualRepairEps the function returns false
  /// and the basis stays valid (any flips already applied are legal
  /// nonbasic states) for the primal phases. Within kDualRepairEps —
  /// recompute noise on an optimal parent basis, the common warm-start
  /// case — the dual solve proceeds anyway: such a column surfaces in
  /// the ratio test as a zero-ratio candidate and is repaired by a
  /// degenerate pivot, and dual_wrong_sign_ records the worst residual
  /// so the optimality verdict can stay strict. Requires d_ freshly
  /// computed.
  bool RestoreDualFeasibility(LpSolveStats* stats) {
    bool restorable = true;
    int64_t flips = 0;
    dual_wrong_sign_ = 0.0;
    for (int j = 0; j < n_; ++j) {
      const VarStatus st = vstat_[j];
      if (st == VarStatus::kBasic || lo_[j] == hi_[j]) continue;
      if (st == VarStatus::kAtLower && d_[j] < -kDualEps) {
        if (!std::isfinite(hi_[j])) {
          if (-d_[j] > kDualRepairEps) {
            restorable = false;
            break;
          }
          dual_wrong_sign_ = std::max(dual_wrong_sign_, -d_[j]);
          continue;
        }
        vstat_[j] = VarStatus::kAtUpper;
        xval_[j] = hi_[j];
        ++flips;
      } else if (st == VarStatus::kAtUpper && d_[j] > kDualEps) {
        if (!std::isfinite(lo_[j])) {
          if (d_[j] > kDualRepairEps) {
            restorable = false;
            break;
          }
          dual_wrong_sign_ = std::max(dual_wrong_sign_, d_[j]);
          continue;
        }
        vstat_[j] = VarStatus::kAtLower;
        xval_[j] = lo_[j];
        ++flips;
      } else if (st == VarStatus::kFree && std::abs(d_[j]) > kDualEps) {
        if (std::abs(d_[j]) > kDualRepairEps) {
          restorable = false;
          break;
        }
        dual_wrong_sign_ = std::max(dual_wrong_sign_, std::abs(d_[j]));
      }
    }
    if (flips > 0) {
      stats->bound_flips += flips;
      GlobalSolverCounters().bound_flips.fetch_add(flips,
                                                   std::memory_order_relaxed);
      ComputeBasicValues();
    }
    return restorable;
  }

  /// Gathers the basis matrix given by `basic_cols` into the CSC
  /// scratch arrays.
  void GatherBasis(const std::vector<int>& basic_cols) {
    col_start_scratch_.assign(1, 0);
    col_rows_scratch_.clear();
    col_vals_scratch_.clear();
    for (int c = 0; c < m_; ++c) {
      ForEachEntry(basic_cols[c], [&](int row, double v) {
        col_rows_scratch_.push_back(row);
        col_vals_scratch_.push_back(v);
      });
      col_start_scratch_.push_back(
          static_cast<int32_t>(col_rows_scratch_.size()));
    }
  }

  bool TryFactorize(const std::vector<int>& basic_cols) {
    GatherBasis(basic_cols);
    return lu_.Factorize(m_, col_start_scratch_, col_rows_scratch_,
                         col_vals_scratch_);
  }

  /// Commits `basic_cols` as the installed basis after a successful
  /// factorization, and resets the EXPAND creep (fresh factors, fresh
  /// working tolerance).
  void CommitBasis(const std::vector<int>& basic_cols) {
    for (int c = 0; c < m_; ++c) {
      basis_[c] = basic_cols[c];
      vstat_[basic_cols[c]] = VarStatus::kBasic;
    }
    expand_tol_ = kExpandBase;
    ++refactorizations_;
    GlobalSolverCounters().factorizations.fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Rung 2 of the singular-basis ladder: re-run the elimination in
  /// skip-and-report mode, eject each dependent basic column, and
  /// substitute the slack of an uncovered row (its unit column covers
  /// that row by construction). Ejected columns become nonbasic at a
  /// bound; the repaired basis is refactorized for real. False when no
  /// pairing exists (an uncovered row's slack is itself among the
  /// dependent columns) or the repaired matrix still fails — the
  /// caller's next rung is a cold restart.
  bool RepairSingularBasis(const std::vector<int>& basic_cols) {
    std::vector<int> cols = basic_cols;  // basic_cols may alias basis_
    GatherBasis(cols);
    std::vector<int32_t> deficient, uncovered;
    if (lu_.FactorizeDeficient(m_, col_start_scratch_, col_rows_scratch_,
                               col_vals_scratch_, &deficient, &uncovered)) {
      CommitBasis(cols);  // not singular after all under skip mode
      return true;
    }
    if (deficient.empty() || deficient.size() != uncovered.size()) {
      return false;
    }
    std::vector<uint8_t> slack_basic(m_, 0);
    for (const int c : cols) {
      if (c >= nv_) slack_basic[c - nv_] = 1;
    }
    size_t u = 0;
    for (const int32_t pos : deficient) {
      while (u < uncovered.size() && slack_basic[uncovered[u]]) ++u;
      if (u == uncovered.size()) return false;  // no free slack to swap in
      const int ejected = cols[pos];
      const int slack = nv_ + uncovered[u];
      cols[pos] = slack;
      slack_basic[uncovered[u]] = 1;
      SetNonbasicAtBound(ejected, VarStatus::kAtLower);
      ++singular_repairs_;
      ++u;
    }
    if (!TryFactorize(cols)) return false;
    CommitBasis(cols);
    basis_repaired_ = true;
    return true;
  }

  /// Sparse LU factorization of the basis matrix given by `basic_cols`
  /// (in basis-position order, which stays stable across pivots).
  /// With safeguards on, a singular factorization walks the recovery
  /// ladder before giving up: the Markowitz pivot threshold is raised
  /// (0.1 -> 0.5 -> 0.99, sticky for the rest of the solve), then the
  /// dependent columns are swapped for slacks (RepairSingularBasis).
  /// False only when the ladder is exhausted (or safeguards are off);
  /// the previous factors stay intact in that case.
  bool Factorize(const std::vector<int>& basic_cols) {
    if (TryFactorize(basic_cols)) {
      CommitBasis(basic_cols);
      return true;
    }
    if (!options_.safeguards) return false;
    while (lu_.pivot_threshold() < 0.99) {
      lu_.SetPivotThreshold(lu_.pivot_threshold() < 0.5 ? 0.5 : 0.99);
      ++markowitz_escalations_;
      if (TryFactorize(basic_cols)) {
        CommitBasis(basic_cols);
        return true;
      }
    }
    return RepairSingularBasis(basic_cols);
  }

  /// Refactorizes the current basis from scratch. The update chain
  /// accumulates roundoff with every pivot; a fresh factorization
  /// (fill/stability-triggered, or at the backstop interval) keeps the
  /// factors and everything priced through them healthy. Keeps the
  /// previous factors if the matrix has gone numerically singular.
  bool Refactorize() { return Factorize(basis_); }

  /// Shared primal iteration loop. In phase 1 the composite objective
  /// is re-priced each iteration (it changes whenever a violation
  /// clears); in phase 2 the reduced-cost row is updated incrementally
  /// from the sparse pivot row, with a periodic full refresh.
  IterStatus Iterate(bool phase1, LpSolveStats* stats) {
    const int64_t iter_limit = 200 * (static_cast<int64_t>(m_) + n_) + 2000;
    const bool use_devex = !phase1 && options_.pricing == Pricing::kDevex;
    int64_t pivots_since_refresh = 0;
    int64_t pivots_since_factor = 0;
    for (int64_t iter = 0; iter < iter_limit; ++iter) {
      const bool bland = force_bland_ || iter > iter_limit / 2;
      if (pivots_since_factor >= kRefactorBackstop ||
          (pivots_since_factor > 0 && lu_.NeedsRefactorization())) {
        if (Refactorize()) {
          ComputeBasicValues(/*measure_drift=*/true);
          if (!phase1) RecomputeReducedCosts();
          pivots_since_refresh = 0;
          if (basis_repaired_) {
            // A slack swap mid-phase-2 may have broken primal
            // feasibility; hand control back to phase 1 if so.
            basis_repaired_ = false;
            if (!phase1 && MaxViolation() > kFeasEps) {
              return IterStatus::kFeasibilityLost;
            }
          }
        } else if (options_.safeguards) {
          // The whole ladder failed: the factors describe a stale
          // basis. Fail loudly — the driver's last rung is a cold
          // restart from the slack basis.
          return IterStatus::kNumericalFailure;
        }
        pivots_since_factor = 0;
      }
      if (phase1) {
        // Done when no basic variable violates its bounds beyond the
        // per-variable tolerance (the same criterion that assigns the
        // composite sigma costs).
        if (MaxViolation() <= kFeasEps) return IterStatus::kOptimal;
        RecomputePhase1Costs();
      } else if (pivots_since_refresh >= 64) {
        RecomputeReducedCosts();
        ComputeBasicValues(/*measure_drift=*/true);
        pivots_since_refresh = 0;
      }

      // --- Pricing: pick the entering variable. Devex scores
      // d^2 / weight (approximate steepest edge); Dantzig scores |d|.
      // Phase 2 scans the incrementally-maintained candidate list
      // (compacting stale entries in place); phase 1 re-prices d every
      // iteration and Bland needs the lowest eligible index, so both
      // scan every column. ---
      int enter = -1;
      double best_score = 0.0;
      int dir = 0;
      if (!phase1 && !bland) {
        size_t keep = 0;
        for (size_t k = 0; k < price_cand_.size(); ++k) {
          const int j = price_cand_[k];
          const int jdir = PriceDir(j);
          if (jdir == 0) {
            in_cand_[j] = 0;
            continue;
          }
          price_cand_[keep++] = j;
          const double dj = d_[j];
          if (use_devex) {
            // dj^2 / w_j > best is evaluated cross-multiplied so the
            // divide only runs when the leader actually changes.
            const double dj2 = dj * dj;
            if (dj2 > best_score * devex_w_[j]) {
              best_score = dj2 / devex_w_[j];
              enter = j;
              dir = jdir;
            }
          } else if (std::abs(dj) > best_score) {
            best_score = std::abs(dj);
            enter = j;
            dir = jdir;
          }
        }
        price_cand_.resize(keep);
      } else {
        for (int j = 0; j < n_; ++j) {
          const int jdir = PriceDir(j);
          if (jdir == 0) continue;
          if (bland) {  // first eligible column
            enter = j;
            dir = jdir;
            break;
          }
          const double dj = d_[j];
          if (use_devex) {
            const double dj2 = dj * dj;
            if (dj2 > best_score * devex_w_[j]) {
              best_score = dj2 / devex_w_[j];
              enter = j;
              dir = jdir;
            }
          } else if (std::abs(dj) > best_score) {
            best_score = std::abs(dj);
            enter = j;
            dir = jdir;
          }
        }
      }
      if (enter < 0) {
        if (phase1 && MaxViolation() > kInfeasTotal) {
          return IterStatus::kStalled;
        }
        if (!phase1 && pivots_since_refresh > 0) {
          // The incremental reduced costs say "optimal" — confirm with a
          // from-scratch re-pricing before accepting (guards against
          // drift-induced premature termination).
          RecomputeReducedCosts();
          ComputeBasicValues(/*measure_drift=*/true);
          pivots_since_refresh = 0;
          continue;
        }
        return IterStatus::kOptimal;
      }

      Ftran(enter);

      if (!phase1) {
        // Confirm the candidate against its exact reduced cost
        // c_j - c_B . w (O(m), w is already available). The incremental
        // d row can drift badly after a small-pivot update; a pivot
        // driven by a phantom reduced cost stalls convergence. Columns
        // that fail the check get their entry corrected in place and
        // pricing just runs again.
        double exact = cost_[enter];
        for (const int32_t i : w_pattern_) {
          exact -= cost_[basis_[i]] * w_[i];
        }
        d_[enter] = exact;
        const bool improving = dir > 0 ? exact < -kDualEps : exact > kDualEps;
        if (!improving) continue;
      }

      // --- Bounded-variable ratio test. ---
      // The entering variable moves by t >= 0 in direction `dir`; basic
      // variable in row i changes at rate -dir * w_[i]. The blocking
      // bound of row i (phase 1 treats an infeasible basic's *violated*
      // bound as the block, so the step drives the violation out):
      const auto classify = [&](int i, double wi, double* rate,
                                double* target, VarStatus* tstat) -> bool {
        const int j = basis_[i];
        *rate = -dir * wi;
        if (phase1 && xval_[j] < lo_[j] - kFeasEps) {
          // Infeasible below: blocks only when rising to its lower bound.
          if (*rate <= 0) return false;
          *target = lo_[j];
          *tstat = VarStatus::kAtLower;
        } else if (phase1 && xval_[j] > hi_[j] + kFeasEps) {
          if (*rate >= 0) return false;
          *target = hi_[j];
          *tstat = VarStatus::kAtUpper;
        } else if (*rate > 0) {
          *target = hi_[j];
          *tstat = VarStatus::kAtUpper;
        } else {
          *target = lo_[j];
          *tstat = VarStatus::kAtLower;
        }
        return std::isfinite(*target);
      };
      double t_flip = kInf;  // entering reaches its opposite bound
      if (std::isfinite(lo_[enter]) && std::isfinite(hi_[enter])) {
        t_flip = hi_[enter] - lo_[enter];
      }
      double t = t_flip;
      int leave = -1;
      double leave_target = 0;
      VarStatus leave_stat = VarStatus::kAtLower;
      double leave_w = 0;
      if (options_.safeguards && !bland) {
        // Harris two-pass ratio test under the EXPAND working
        // tolerance. Pass 1: the largest step any blocker allows when
        // its bound is relaxed by expand_tol_ (each candidate's
        // relaxed ratio is its exact ratio + expand_tol_/|rate|).
        // Pass 2: among rows whose *exact* ratio fits under that
        // relaxed cap, pivot on the largest |w_i| — stability instead
        // of the accidental order of near-ties. Any overshot row is
        // violated by at most expand_tol_ <= kFeasEps, inside the
        // solver's feasibility tolerance.
        double theta_max = t_flip;
        for (const int32_t i : w_pattern_) {
          const double wi = w_[i];
          if (std::abs(wi) <= kLeaveEps) continue;
          double rate, target;
          VarStatus tstat;
          if (!classify(i, wi, &rate, &target, &tstat)) continue;
          double ti = (target - xval_[basis_[i]]) / rate +
                      expand_tol_ / std::abs(rate);
          if (ti < 0) ti = 0;
          theta_max = std::min(theta_max, ti);
        }
        if (!std::isfinite(theta_max)) {
          return phase1 ? IterStatus::kStalled : IterStatus::kUnbounded;
        }
        for (const int32_t i : w_pattern_) {
          const double wi = w_[i];
          if (std::abs(wi) <= kLeaveEps) continue;
          double rate, target;
          VarStatus tstat;
          if (!classify(i, wi, &rate, &target, &tstat)) continue;
          double ti = (target - xval_[basis_[i]]) / rate;
          if (ti < 0) ti = 0;
          if (ti <= theta_max &&
              (leave < 0 || std::abs(wi) > std::abs(leave_w))) {
            t = ti;
            leave = i;
            leave_target = target;
            leave_stat = tstat;
            leave_w = wi;
          }
        }
        // Pass 1's argmin row always qualifies in pass 2 (its exact
        // ratio <= its relaxed one), so leave < 0 means no blocker at
        // all and theta_max == t_flip (finite): a bound flip.
        if (leave < 0) t = t_flip;
        expand_tol_ = std::min(expand_tol_ + kExpandInc, kExpandMax);
      } else {
        // Exact single-pass test (safeguards off, or Bland mode —
        // Bland's anti-cycling argument needs the exact lowest-index
        // blocker, not a Harris window).
        for (const int32_t i : w_pattern_) {
          const double wi = w_[i];
          // A pivot element this small would poison the basis update;
          // treat the row as non-blocking instead.
          if (std::abs(wi) <= kLeaveEps) continue;
          double rate, target;
          VarStatus tstat;
          if (!classify(i, wi, &rate, &target, &tstat)) continue;
          double ti = (target - xval_[basis_[i]]) / rate;
          if (ti < 0) ti = 0;  // degenerate (or tiny violation) pivot
          // Near-tied ratios (within the feasibility tolerance) resolve
          // toward the largest pivot element — small pivots poison both
          // the basis update and the incremental reduced costs.
          const bool take =
              ti < t - kFeasEps ||
              (ti < t + kFeasEps && leave >= 0 &&
               (bland ? basis_[i] < basis_[leave]
                      : std::abs(wi) > std::abs(leave_w)));
          if (take) {
            t = ti;
            leave = i;
            leave_target = target;
            leave_stat = tstat;
            leave_w = wi;
          }
        }
        if (!std::isfinite(t)) {
          return phase1 ? IterStatus::kStalled : IterStatus::kUnbounded;
        }
      }

      if (leave < 0) {
        // Bound flip: the entering variable crosses to its other bound;
        // no basis change, reduced costs unchanged.
        for (const int32_t i : w_pattern_) {
          xval_[basis_[i]] += -dir * w_[i] * t;
        }
        vstat_[enter] = vstat_[enter] == VarStatus::kAtLower
                            ? VarStatus::kAtUpper
                            : VarStatus::kAtLower;
        xval_[enter] =
            vstat_[enter] == VarStatus::kAtLower ? lo_[enter] : hi_[enter];
        stats->bound_flips += 1;
        GlobalSolverCounters().bound_flips.fetch_add(
            1, std::memory_order_relaxed);
        continue;
      }

      // --- Pivot: update values, statuses, factorization, reduced
      // costs. ---
      for (const int32_t i : w_pattern_) {
        xval_[basis_[i]] += -dir * w_[i] * t;
      }
      xval_[enter] += dir * t;
      const int leaving_var = basis_[leave];
      xval_[leaving_var] = leave_target;  // snap exactly onto its bound
      vstat_[leaving_var] = lo_[leaving_var] == hi_[leaving_var]
                                ? VarStatus::kAtLower
                                : leave_stat;
      vstat_[enter] = VarStatus::kBasic;
      basis_[leave] = enter;

      if (!phase1) {
        // Incremental reduced-cost row update from the (pre-update)
        // sparse pivot row rho = e_r B^{-1}:
        // d_j -= (d_q / w_r) * (rho . a_j), only for the columns the
        // row actually touches. The devex weights ride the same row:
        // w_j = max(w_j, (alpha_j / alpha_q)^2 * gamma_q) — columns
        // with alpha_j = 0 keep their weight, so the sparse walk is
        // exact.
        BtranUnit(leave);
        ComputePivotRow();
        const double theta = d_[enter] / w_[leave];
        if (use_devex) {
          double gamma = devex_w_[enter];
          if (gamma > kDevexWeightCap) {
            // The reference framework has drifted too far from the
            // current nonbasic set for the weights to be trusted:
            // restart devex from here.
            std::fill(devex_w_.begin(), devex_w_.end(), 1.0);
            gamma = 1.0;
            stats->devex_resets += 1;
            GlobalSolverCounters().devex_resets.fetch_add(
                1, std::memory_order_relaxed);
          }
          const double wratio = gamma / (w_[leave] * w_[leave]);
          for (const int j : alpha_touched_) {
            if (vstat_[j] == VarStatus::kBasic || j == enter) continue;
            const double cand = alpha_[j] * alpha_[j] * wratio;
            if (cand > devex_w_[j]) devex_w_[j] = cand;
          }
          devex_w_[leaving_var] = std::max(wratio, 1.0);
        }
        if (theta != 0.0) {
          for (const int j : alpha_touched_) {
            if (vstat_[j] == VarStatus::kBasic || j == enter) continue;
            if (alpha_[j] != 0.0) {
              d_[j] -= theta * alpha_[j];
              UpdateCandidate(j);
            }
          }
        }
        d_[leaving_var] = -theta;
        d_[enter] = 0.0;
        UpdateCandidate(leaving_var);
        stats->phase2_pivots += 1;
        GlobalSolverCounters().phase2_pivots.fetch_add(
            1, std::memory_order_relaxed);
        ++pivots_since_refresh;
      } else {
        stats->phase1_pivots += 1;
        GlobalSolverCounters().phase1_pivots.fetch_add(
            1, std::memory_order_relaxed);
      }
      ++pivots_since_factor;
      if (!lu_.Update(w_, w_pattern_, leave)) {
        // Unusable update pivot (the ratio test's kLeaveEps floor keeps
        // this out of reach in practice): refactorize the
        // already-updated basis immediately. If even that fails, the
        // factors still describe the *pre-pivot* basis while basis_ /
        // xval_ moved on — continuing would price every later
        // iteration against the wrong basis, so fail the solve loudly
        // instead of returning a silently wrong optimum.
        if (!Refactorize()) return IterStatus::kNumericalFailure;
        ComputeBasicValues();
        if (!phase1) RecomputeReducedCosts();
        pivots_since_refresh = 0;
        pivots_since_factor = 0;
        if (basis_repaired_) {
          basis_repaired_ = false;
          if (!phase1 && MaxViolation() > kFeasEps) {
            return IterStatus::kFeasibilityLost;
          }
        }
      }
      // Watchdog last: its escalations (perturb / Bland) solve through
      // the factors, which now include this pivot.
      if (WatchdogTripped(t, enter, leaving_var)) {
        if (!phase1 && perturb_rounds_ < kMaxPerturbRounds) {
          // Escalation rung 1 (phase 2 only): break the degenerate
          // vertex apart with an outward bound perturbation.
          PerturbBounds();
        } else if (!force_bland_) {
          // Rung 2 (and all of phase 1): Bland's rule — slower, but
          // finite termination is guaranteed.
          force_bland_ = true;
          ++bland_escalations_;
        }
      }
    }
    return IterStatus::kIterLimit;
  }

  const Model& model_;
  const LpOptions options_;
  const int nv_;  // structural variables
  const int m_;   // rows
  const int n_;   // structural + slacks

  std::vector<double> lo_, hi_;   // per internal column (scaled)
  std::vector<double> cost_;      // phase-2 objective (scaled; slacks zero)
  std::vector<double> b_;         // scaled rhs
  std::vector<double> row_scale_; // row scale R (geometric mean + equilibrate)
  std::vector<double> col_scale_; // structural column scale C (powers of two)
  LuFactor lu_;                   // sparse LU + Forrest–Tomlin basis
  std::vector<int> basis_;        // basis_[pos] = column basic at pos
  std::vector<VarStatus> vstat_;  // per internal column
  std::vector<double> xval_;      // all variable values
  std::vector<double> d_;         // reduced costs
  std::vector<double> w_;         // FTRAN scratch (basis-position space)
  std::vector<int32_t> w_pattern_;    // nonzero pattern of w_
  std::vector<double> rho_;       // pivot-row scratch (row space)
  std::vector<int32_t> rho_pattern_;  // nonzero pattern of rho_
  std::vector<double> y_;         // BTRAN scratch (row space)
  std::vector<double> scratch_;   // cb / residual scratch

  // Sparse pivot-row scratch (stamped accumulator over all columns).
  std::vector<double> alpha_;
  std::vector<int32_t> alpha_mark_;
  std::vector<int> alpha_touched_;
  int32_t alpha_stamp_ = 0;

  std::vector<double> devex_w_;      // devex reference weights
  std::vector<DualCand> dual_cands_; // dual ratio-test candidates
  std::vector<int> flip_scratch_;    // long-step flips this pivot

  // Worst wrong-sign reduced cost left unrepaired (within
  // kDualRepairEps) by the latest RestoreDualFeasibility.
  double dual_wrong_sign_ = 0.0;

  // Phase-2 pricing candidate list: a superset of the improving
  // nonbasic columns, rebuilt on every global re-price and maintained
  // incrementally from the pivot row in between.
  std::vector<int> price_cand_;
  std::vector<uint8_t> in_cand_;

  // Basis-column gather scratch for Factorize.
  std::vector<int32_t> col_start_scratch_;
  std::vector<int32_t> col_rows_scratch_;
  std::vector<double> col_vals_scratch_;

  // Factorization accounting for LpSolveStats.
  int64_t refactorizations_ = 0;
  double max_drift_ = 0.0;
  double ftran_btran_seconds_ = 0.0;

  // --- Numerical-safeguard state (LpOptions::safeguards). ---
  double expand_tol_ = kExpandBase;  // EXPAND working tolerance (creeps)
  // Stall/cycling watchdog.
  int64_t stall_pivots_ = 0;            // consecutive degenerate pivots
  uint64_t basis_hash_ = 0;             // XOR of ColHash over the basis
  std::vector<uint64_t> recent_basis_;  // ring of recent basis hashes
  int recent_pos_ = 0;
  bool force_bland_ = false;
  // Degeneracy perturbation: saved true data while installed.
  bool bounds_perturbed_ = false;
  bool cost_perturbed_ = false;
  int perturb_rounds_ = 0;         // lifetime rounds (caps escalation)
  int active_perturb_rounds_ = 0;  // rounds currently installed
  std::vector<double> lo_base_, hi_base_, cost_base_;
  // Singular-basis repair: set when a slack swap changed the basis,
  // consumed at the next refactorization's feasibility check.
  bool basis_repaired_ = false;
  // Certification scratch (row residual, also the refinement rhs).
  std::vector<double> resid_;
  // Safeguard accounting for LpSolveStats.
  int64_t perturbations_applied_ = 0;
  int64_t perturbations_removed_ = 0;
  int64_t bland_escalations_ = 0;
  int64_t markowitz_escalations_ = 0;
  int64_t singular_repairs_ = 0;
};

}  // namespace

SolverCounters AtomicSolverCounters::Snapshot() const {
  SolverCounters s;
  s.lp_solves = lp_solves.load(std::memory_order_relaxed);
  s.phase1_pivots = phase1_pivots.load(std::memory_order_relaxed);
  s.phase2_pivots = phase2_pivots.load(std::memory_order_relaxed);
  s.dual_pivots = dual_pivots.load(std::memory_order_relaxed);
  s.bound_flips = bound_flips.load(std::memory_order_relaxed);
  s.devex_resets = devex_resets.load(std::memory_order_relaxed);
  s.warm_starts = warm_starts.load(std::memory_order_relaxed);
  s.cold_starts = cold_starts.load(std::memory_order_relaxed);
  s.factorizations = factorizations.load(std::memory_order_relaxed);
  s.ft_updates = ft_updates.load(std::memory_order_relaxed);
  s.eta_nnz = eta_nnz.load(std::memory_order_relaxed);
  s.ftran_btran_seconds = ftran_btran_seconds.load(std::memory_order_relaxed);
  s.certified_solves = certified_solves.load(std::memory_order_relaxed);
  s.uncertified_solves = uncertified_solves.load(std::memory_order_relaxed);
  s.refinement_rounds = refinement_rounds.load(std::memory_order_relaxed);
  s.perturbations_applied =
      perturbations_applied.load(std::memory_order_relaxed);
  s.perturbations_removed =
      perturbations_removed.load(std::memory_order_relaxed);
  s.bland_escalations = bland_escalations.load(std::memory_order_relaxed);
  s.markowitz_escalations =
      markowitz_escalations.load(std::memory_order_relaxed);
  s.singular_repairs = singular_repairs.load(std::memory_order_relaxed);
  s.cold_restarts = cold_restarts.load(std::memory_order_relaxed);
  return s;
}

void AtomicSolverCounters::Reset() {
  lp_solves.store(0, std::memory_order_relaxed);
  phase1_pivots.store(0, std::memory_order_relaxed);
  phase2_pivots.store(0, std::memory_order_relaxed);
  dual_pivots.store(0, std::memory_order_relaxed);
  bound_flips.store(0, std::memory_order_relaxed);
  devex_resets.store(0, std::memory_order_relaxed);
  warm_starts.store(0, std::memory_order_relaxed);
  cold_starts.store(0, std::memory_order_relaxed);
  factorizations.store(0, std::memory_order_relaxed);
  ft_updates.store(0, std::memory_order_relaxed);
  eta_nnz.store(0, std::memory_order_relaxed);
  ftran_btran_seconds.store(0.0, std::memory_order_relaxed);
  certified_solves.store(0, std::memory_order_relaxed);
  uncertified_solves.store(0, std::memory_order_relaxed);
  refinement_rounds.store(0, std::memory_order_relaxed);
  perturbations_applied.store(0, std::memory_order_relaxed);
  perturbations_removed.store(0, std::memory_order_relaxed);
  bland_escalations.store(0, std::memory_order_relaxed);
  markowitz_escalations.store(0, std::memory_order_relaxed);
  singular_repairs.store(0, std::memory_order_relaxed);
  cold_restarts.store(0, std::memory_order_relaxed);
}

AtomicSolverCounters& GlobalSolverCounters() {
  static AtomicSolverCounters counters;
  return counters;
}

void ResetSolverCounters() { GlobalSolverCounters().Reset(); }

SolverCounters SolverCountersSnapshot() {
  return GlobalSolverCounters().Snapshot();
}

SolverCounters SolverCountersSince(const SolverCounters& snapshot) {
  const SolverCounters now = SolverCountersSnapshot();
  SolverCounters delta;
  delta.lp_solves = now.lp_solves - snapshot.lp_solves;
  delta.phase1_pivots = now.phase1_pivots - snapshot.phase1_pivots;
  delta.phase2_pivots = now.phase2_pivots - snapshot.phase2_pivots;
  delta.dual_pivots = now.dual_pivots - snapshot.dual_pivots;
  delta.bound_flips = now.bound_flips - snapshot.bound_flips;
  delta.devex_resets = now.devex_resets - snapshot.devex_resets;
  delta.warm_starts = now.warm_starts - snapshot.warm_starts;
  delta.cold_starts = now.cold_starts - snapshot.cold_starts;
  delta.factorizations = now.factorizations - snapshot.factorizations;
  delta.ft_updates = now.ft_updates - snapshot.ft_updates;
  delta.eta_nnz = now.eta_nnz - snapshot.eta_nnz;
  delta.ftran_btran_seconds =
      now.ftran_btran_seconds - snapshot.ftran_btran_seconds;
  delta.certified_solves = now.certified_solves - snapshot.certified_solves;
  delta.uncertified_solves =
      now.uncertified_solves - snapshot.uncertified_solves;
  delta.refinement_rounds = now.refinement_rounds - snapshot.refinement_rounds;
  delta.perturbations_applied =
      now.perturbations_applied - snapshot.perturbations_applied;
  delta.perturbations_removed =
      now.perturbations_removed - snapshot.perturbations_removed;
  delta.bland_escalations = now.bland_escalations - snapshot.bland_escalations;
  delta.markowitz_escalations =
      now.markowitz_escalations - snapshot.markowitz_escalations;
  delta.singular_repairs = now.singular_repairs - snapshot.singular_repairs;
  delta.cold_restarts = now.cold_restarts - snapshot.cold_restarts;
  return delta;
}

LpSolution SolveLp(const Model& model, const LpOptions& options,
                   const std::vector<double>* var_lower,
                   const std::vector<double>* var_upper,
                   const LpBasis* warm_basis) {
  if (!model.input_status().ok()) {
    // A NaN/Inf slipped into the model at build time; refuse to run it
    // through the factorization rather than propagate the poison.
    LpSolution bad;
    bad.status = model.input_status();
    return bad;
  }
  const int nv = model.num_variables();
  std::vector<double> lo(nv), hi(nv);
  for (int i = 0; i < nv; ++i) {
    lo[i] = var_lower != nullptr ? (*var_lower)[i] : model.variable(i).lower;
    hi[i] = var_upper != nullptr ? (*var_upper)[i] : model.variable(i).upper;
    if (std::isnan(lo[i]) || std::isnan(hi[i])) {
      LpSolution bad;
      bad.status = Status::InvalidArgument("NaN variable bound override");
      return bad;
    }
    if (lo[i] > hi[i]) {
      LpSolution bad;
      bad.status = Status::Infeasible("contradictory variable bounds");
      return bad;
    }
  }

  AtomicSolverCounters& counters = GlobalSolverCounters();
  counters.lp_solves.fetch_add(1, std::memory_order_relaxed);

  RevisedSimplex simplex(model, options, lo, hi);
  LpSolution sol;
  const auto finish = [&]() -> LpSolution {
    simplex.ExportFactorStats(&sol.stats);
    return std::move(sol);
  };
  const auto succeed = [&]() -> LpSolution {
    sol.status = Status::Ok();
    if (options.safeguards) simplex.Certify(&sol.stats);
    sol.x = simplex.ExtractPrimal();
    sol.objective = model.ObjectiveValue(sol.x);
    sol.basis = simplex.ExportBasis();
    if (options.want_duals) simplex.ExportDuals(&sol.duals, &sol.reduced_costs);
    return finish();
  };
  // The last rung of the recovery ladder: rebuild from the slack basis
  // with every escalation artifact cleared (once per solve).
  const auto cold_restart = [&]() {
    sol.stats.cold_restarts += 1;
    counters.cold_restarts.fetch_add(1, std::memory_order_relaxed);
    simplex.PrepareColdRestart();
    simplex.ColdStart();
  };
  // Primal phases with safeguard plumbing: a basis repair that broke
  // feasibility reruns phase 1, and a perturbed optimum is cleaned up
  // (perturbation out, a few exact pivots) before it counts. Bounded
  // rounds — each retry either clears a perturbation (at most
  // kMaxPerturbRounds installs per solve) or follows a repair.
  const char* phase_tag = "phase 1";
  const auto run_primal = [&]() -> IterStatus {
    for (int round = 0; round < 8; ++round) {
      phase_tag = "phase 1";
      IterStatus st = simplex.Phase1(&sol.stats);
      if (st != IterStatus::kOptimal) return st;
      if (simplex.MaxViolation() > kInfeasTotal) return IterStatus::kStalled;
      phase_tag = "phase 2";
      st = simplex.Phase2(&sol.stats);
      if (st == IterStatus::kFeasibilityLost) continue;
      if (st == IterStatus::kOptimal && simplex.PerturbationActive()) {
        simplex.RemovePerturbation();
        continue;
      }
      return st;
    }
    return IterStatus::kIterLimit;
  };

  if (warm_basis != nullptr && !warm_basis->empty() &&
      simplex.WarmStart(*warm_basis)) {
    sol.stats.warm_started = true;
    counters.warm_starts.fetch_add(1, std::memory_order_relaxed);
  } else {
    simplex.ColdStart();
    counters.cold_starts.fetch_add(1, std::memory_order_relaxed);
  }

  bool restarted = false;
  if (options.entry == SimplexEntry::kDual) {
    IterStatus dst = simplex.DualSolve(&sol.stats);
    // A perturbed dual optimum is not a verdict: take the costs back
    // out and let the dual loop make the exact cleanup pivots.
    for (int cleanup = 0;
         dst == IterStatus::kOptimal && simplex.PerturbationActive() &&
         cleanup < 4;
         ++cleanup) {
      simplex.RemovePerturbation();
      dst = simplex.DualSolve(&sol.stats);
    }
    if (dst == IterStatus::kNumericalFailure && options.safeguards &&
        !restarted) {
      restarted = true;
      cold_restart();
      dst = IterStatus::kNotDualFeasible;  // fall through to the primal path
    }
    if (dst == IterStatus::kOptimal && !simplex.PerturbationActive() &&
        simplex.MaxViolation() <= kInfeasTotal) {
      sol.stats.dual_entered = true;
      return succeed();
    }
    if (dst == IterStatus::kDualInfeasible) {
      sol.stats.dual_entered = true;
      sol.status = Status::Infeasible("dual simplex: dual ray found");
      return finish();
    }
    if (dst == IterStatus::kNumericalFailure) {
      sol.status = Status::Internal("basis factorization failed (dual)");
      return finish();
    }
    // kNotDualFeasible or kIterLimit (or a feasibility check the dual
    // optimum failed, or a perturbation that would not clean up): fall
    // back to the primal phases from the current basis, with any
    // leftover perturbation removed so the verdict is exact.
    if (simplex.PerturbationActive()) simplex.RemovePerturbation();
  }

  IterStatus st = run_primal();
  if (st == IterStatus::kNumericalFailure && options.safeguards &&
      !restarted) {
    restarted = true;
    cold_restart();
    st = run_primal();
  }
  if (st == IterStatus::kStalled) {
    sol.status = Status::Infeasible("phase-1 optimum positive");
    return finish();
  }
  if (st == IterStatus::kIterLimit) {
    sol.status = Status::Internal(std::string("simplex iteration limit (") +
                                  phase_tag + ")");
    return finish();
  }
  if (st == IterStatus::kNumericalFailure) {
    sol.status = Status::Internal(std::string("basis factorization failed (") +
                                  phase_tag + ")");
    return finish();
  }
  if (st == IterStatus::kUnbounded) {
    sol.status = Status::Unbounded("LP relaxation unbounded");
    return finish();
  }

  return succeed();
}

LpSolution SolveLp(const Model& model, const std::vector<double>* var_lower,
                   const std::vector<double>* var_upper,
                   const LpBasis* warm_basis, bool want_duals) {
  LpOptions options;
  options.want_duals = want_duals;
  return SolveLp(model, options, var_lower, var_upper, warm_basis);
}

}  // namespace cophy::lp
