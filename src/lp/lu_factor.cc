// Gilbert–Peierls sparse LU with static Markowitz column ordering,
// threshold partial pivoting, and Forrest–Tomlin updates. See
// lu_factor.h for the contract and the space conventions.
#include "lp/lu_factor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace cophy::lp {

namespace {

// A pivot candidate below this magnitude (after row equilibration by
// the caller) marks the basis numerically singular.
constexpr double kSingularEps = 1e-10;
// An FT pivot this much smaller than the largest spike entry poisons
// every later solve: refactorize.
constexpr double kStabilityFloor = 1e-3;
// Refactorize once U plus the row-eta file outweigh the fresh factors.
// The per-row allowance keeps the trigger meaningful on small bases,
// where a single spike can exceed any fixed ratio of a near-identity
// factorization's handful of nonzeros.
constexpr double kUpdateFillFactor = 1.5;
constexpr double kUpdateFillSlackPerRow = 8.0;
// Entries this small that arise during the FT row elimination or the
// spike insertion are dropped: they are far below the solver's 1e-7
// tolerances and would only accrete fill.
constexpr double kFtDropEps = 1e-13;

}  // namespace

bool LuFactor::Factorize(int m, const std::vector<int32_t>& col_start,
                         const std::vector<int32_t>& rows,
                         const std::vector<double>& vals) {
  return FactorizeInternal(m, col_start, rows, vals, nullptr, nullptr);
}

bool LuFactor::FactorizeDeficient(int m, const std::vector<int32_t>& col_start,
                                  const std::vector<int32_t>& rows,
                                  const std::vector<double>& vals,
                                  std::vector<int32_t>* deficient_cols,
                                  std::vector<int32_t>* uncovered_rows) {
  deficient_cols->clear();
  uncovered_rows->clear();
  return FactorizeInternal(m, col_start, rows, vals, deficient_cols,
                           uncovered_rows);
}

bool LuFactor::FactorizeInternal(int m, const std::vector<int32_t>& col_start,
                                 const std::vector<int32_t>& rows,
                                 const std::vector<double>& vals,
                                 std::vector<int32_t>* deficient_cols,
                                 std::vector<int32_t>* uncovered_rows) {
  COPHY_CHECK_EQ(static_cast<int>(col_start.size()), m + 1);
  // Build into fresh arrays and commit only on success, so a failed
  // refactorization keeps the previous (valid, if drifty) factors.
  std::vector<int32_t> l_start{0}, l_rows, u_start{0}, u_steps;
  std::vector<double> l_vals, u_vals, u_diag;
  std::vector<int32_t> pivot_row_of_step(m), col_of_step(m), step_of_col(m);
  std::vector<int32_t> row_to_step(m, -1);
  u_diag.reserve(m);

  // Static Markowitz data: original row counts for the pivot-row
  // tie-break, columns eliminated in ascending nonzero count.
  std::vector<int32_t> row_count(m, 0);
  for (int32_t r : rows) ++row_count[r];
  std::vector<int32_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return col_start[a + 1] - col_start[a] < col_start[b + 1] - col_start[b];
  });

  std::vector<double> x(m, 0.0);
  std::vector<char> in_x(m, 0);    // row currently scattered into x
  std::vector<char> seen(m, 0);    // step visited by this column's DFS
  std::vector<int32_t> touched;    // rows scattered (pattern)
  std::vector<int32_t> reach;      // reached steps, DFS finish order
  std::vector<int32_t> stack, stack_edge;

  int step = 0;  // elimination steps completed (== t unless columns skip)
  for (int t = 0; t < m; ++t) {
    const int c = order[t];
    touched.clear();
    reach.clear();
    for (int32_t k = col_start[c]; k < col_start[c + 1]; ++k) {
      const int32_t r = rows[k];
      if (!in_x[r]) {
        in_x[r] = 1;
        touched.push_back(r);
        x[r] = 0.0;
      }
      x[r] += vals[k];  // merge duplicate entries
    }

    // Symbolic: depth-first reach of already-eliminated steps from the
    // column's pivotal rows, recorded in finish order so the reversed
    // list is topological (dependencies first).
    for (int32_t k = col_start[c]; k < col_start[c + 1]; ++k) {
      const int32_t s0 = row_to_step[rows[k]];
      if (s0 < 0 || seen[s0]) continue;
      seen[s0] = 1;
      stack.assign(1, s0);
      stack_edge.assign(1, l_start[s0]);
      while (!stack.empty()) {
        const int32_t s = stack.back();
        int32_t e = stack_edge.back();
        bool descended = false;
        while (e < l_start[s + 1]) {
          const int32_t s2 = row_to_step[l_rows[e]];
          ++e;
          if (s2 >= 0 && !seen[s2]) {
            stack_edge.back() = e;
            seen[s2] = 1;
            stack.push_back(s2);
            stack_edge.push_back(l_start[s2]);
            descended = true;
            break;
          }
        }
        if (!descended) {
          reach.push_back(s);
          stack.pop_back();
          stack_edge.pop_back();
        }
      }
    }

    // Numeric: eliminate through the reached steps in topological
    // order. Fill lands on non-pivotal rows and joins the pattern.
    for (int i = static_cast<int>(reach.size()) - 1; i >= 0; --i) {
      const int32_t s = reach[i];
      const double v = x[pivot_row_of_step[s]];
      if (v == 0.0) continue;
      for (int32_t k = l_start[s]; k < l_start[s + 1]; ++k) {
        const int32_t r = l_rows[k];
        if (!in_x[r]) {
          in_x[r] = 1;
          touched.push_back(r);
          x[r] = 0.0;
        }
        x[r] -= l_vals[k] * v;
      }
    }

    // Pivot: threshold partial pivoting with the Markowitz-style
    // fewest-row-nonzeros tie-break among the stable candidates.
    double xmax = 0.0;
    for (int32_t r : touched) {
      if (row_to_step[r] < 0) xmax = std::max(xmax, std::abs(x[r]));
    }
    if (xmax <= kSingularEps) {
      for (int32_t r : touched) {
        x[r] = 0.0;
        in_x[r] = 0;
      }
      for (int32_t s : reach) seen[s] = 0;
      if (deficient_cols == nullptr) {
        return false;  // numerically (or structurally) singular
      }
      // Deficient column: linearly dependent on the columns eliminated
      // so far (or empty). Record it and keep going — the remaining
      // columns still eliminate against the valid partial L.
      deficient_cols->push_back(c);
      continue;
    }
    int32_t pivot = -1;
    int32_t best_count = std::numeric_limits<int32_t>::max();
    double best_abs = 0.0;
    for (int32_t r : touched) {
      if (row_to_step[r] >= 0) continue;
      const double a = std::abs(x[r]);
      if (a < pivot_threshold_ * xmax) continue;
      if (row_count[r] < best_count ||
          (row_count[r] == best_count && a > best_abs)) {
        best_count = row_count[r];
        best_abs = a;
        pivot = r;
      }
    }
    COPHY_CHECK(pivot >= 0);

    for (int i = static_cast<int>(reach.size()) - 1; i >= 0; --i) {
      const int32_t s = reach[i];
      const double v = x[pivot_row_of_step[s]];
      if (v != 0.0) {
        u_steps.push_back(s);
        u_vals.push_back(v);
      }
    }
    u_start.push_back(static_cast<int32_t>(u_steps.size()));
    u_diag.push_back(x[pivot]);
    const double inv_piv = 1.0 / x[pivot];
    for (int32_t r : touched) {
      if (r == pivot || row_to_step[r] >= 0 || x[r] == 0.0) continue;
      l_rows.push_back(r);
      l_vals.push_back(x[r] * inv_piv);
    }
    l_start.push_back(static_cast<int32_t>(l_rows.size()));
    row_to_step[pivot] = step;
    pivot_row_of_step[step] = pivot;
    col_of_step[step] = c;
    step_of_col[c] = step;
    ++step;

    for (int32_t r : touched) {
      x[r] = 0.0;
      in_x[r] = 0;
    }
    for (int32_t s : reach) seen[s] = 0;
  }

  if (step < m) {
    // Deficient columns were skipped: report the rows left without a
    // pivot and keep the previous factors for the caller's repair.
    for (int r = 0; r < m; ++r) {
      if (row_to_step[r] < 0) uncovered_rows->push_back(r);
    }
    return false;
  }

  m_ = m;
  l_start_ = std::move(l_start);
  l_rows_ = std::move(l_rows);
  l_vals_ = std::move(l_vals);
  pivot_row_of_step_ = std::move(pivot_row_of_step);
  col_of_step_ = std::move(col_of_step);
  step_of_col_ = std::move(step_of_col);
  step_of_row_.resize(m);
  for (int t = 0; t < m; ++t) step_of_row_[pivot_row_of_step_[t]] = t;

  // Row-wise L structure (counting sort over the column store) for the
  // sparse L^T reach.
  lt_start_.assign(m + 1, 0);
  lt_steps_.resize(l_rows_.size());
  for (int32_t r : l_rows_) ++lt_start_[r + 1];
  for (int r = 0; r < m; ++r) lt_start_[r + 1] += lt_start_[r];
  {
    std::vector<int32_t> fill_pos(lt_start_.begin(), lt_start_.end() - 1);
    for (int t = 0; t < m; ++t) {
      for (int32_t k = l_start_[t]; k < l_start_[t + 1]; ++k) {
        lt_steps_[fill_pos[l_rows_[k]]++] = t;
      }
    }
  }

  // Commit U into the mirrored dynamic row/column stores the FT update
  // mutates. Column t of the flat elimination output scatters into
  // ucol_[t] directly and into urow_[s] per entry.
  urow_.assign(m, {});
  ucol_.assign(m, {});
  udiag_ = std::move(u_diag);
  udiag_inv_.resize(m);
  for (int s = 0; s < m; ++s) udiag_inv_[s] = 1.0 / udiag_[s];
  {
    std::vector<int32_t> row_nnz(m, 0);
    for (int32_t s : u_steps) ++row_nnz[s];
    for (int s = 0; s < m; ++s) urow_[s].reserve(row_nnz[s]);
    for (int t = 0; t < m; ++t) {
      ucol_[t].reserve(u_start[t + 1] - u_start[t]);
      for (int32_t k = u_start[t]; k < u_start[t + 1]; ++k) {
        ucol_[t].emplace_back(u_steps[k], u_vals[k]);
        urow_[u_steps[k]].emplace_back(t, u_vals[k]);
      }
    }
  }
  order_.resize(m);
  std::iota(order_.begin(), order_.end(), 0);
  pos_in_order_ = order_;

  ft_pos_.clear();
  ft_start_.assign(1, 0);
  ft_steps_.clear();
  ft_vals_.clear();
  eta_nnz_ = 0;
  u_nnz_ = static_cast<int64_t>(u_steps.size()) + m;
  factor_nnz_ = static_cast<int64_t>(l_rows_.size()) + u_nnz_;
  fill_nnz_ = std::max<int64_t>(
      0, factor_nnz_ - static_cast<int64_t>(rows.size()));
  last_pivot_stability_ = 1.0;
  needs_refactor_ = false;
  step_work_.assign(m, 0.0);
  spike_work_.assign(m, 0.0);
  spike_touched_.clear();
  acc_work_.assign(m, 0.0);
  acc_touched_.clear();
  sparse_work_.assign(m, 0.0);
  mark_.assign(m, 0);
  step_list_.clear();
  solve_heap_.clear();
  return true;
}

void LuFactor::Ftran(std::vector<double>& x) const {
  // L solve, in row space (unit diagonal implicit).
  for (int t = 0; t < m_; ++t) {
    const double v = x[pivot_row_of_step_[t]];
    if (v == 0.0) continue;
    for (int32_t k = l_start_[t]; k < l_start_[t + 1]; ++k) {
      x[l_rows_[k]] -= l_vals_[k] * v;
    }
  }
  // Gather into step space, replay the FT row etas (oldest to newest:
  // each update's elimination acts on the result of the previous
  // ones), then back-substitute through U in the dynamic order.
  std::vector<double>& z = step_work_;
  for (int t = 0; t < m_; ++t) z[t] = x[pivot_row_of_step_[t]];
  const int ne = eta_count();
  for (int k = 0; k < ne; ++k) {
    double acc = z[ft_pos_[k]];
    for (int32_t e = ft_start_[k]; e < ft_start_[k + 1]; ++e) {
      acc -= ft_vals_[e] * z[ft_steps_[e]];
    }
    z[ft_pos_[k]] = acc;
  }
  for (int i = m_ - 1; i >= 0; --i) {
    const int32_t t = order_[i];
    double acc = z[t];
    for (const Entry& e : urow_[t]) acc -= e.second * z[e.first];
    z[t] = acc * udiag_inv_[t];
  }
  // Step t solved the column at basis position col_of_step_[t].
  for (int t = 0; t < m_; ++t) x[col_of_step_[t]] = z[t];
}

void LuFactor::Btran(std::vector<double>& x) const {
  std::vector<double>& g = step_work_;
  for (int t = 0; t < m_; ++t) g[t] = x[col_of_step_[t]];
  // U^T forward substitution in the dynamic order (column access of U
  // gives U^T's rows).
  for (int i = 0; i < m_; ++i) {
    const int32_t t = order_[i];
    double acc = g[t];
    for (const Entry& e : ucol_[t]) acc -= e.second * g[e.first];
    g[t] = acc * udiag_inv_[t];
  }
  // Transposed FT row etas, newest to oldest.
  for (int k = eta_count() - 1; k >= 0; --k) {
    const double gp = g[ft_pos_[k]];
    if (gp == 0.0) continue;
    for (int32_t e = ft_start_[k]; e < ft_start_[k + 1]; ++e) {
      g[ft_steps_[e]] -= ft_vals_[e] * gp;
    }
  }
  // L^T backward: every row referenced by L column t is pivotal at a
  // later step, so its y component is already final — the in-place
  // overwrite of x (row space) is safe.
  for (int t = m_ - 1; t >= 0; --t) {
    double acc = g[t];
    for (int32_t k = l_start_[t]; k < l_start_[t + 1]; ++k) {
      acc -= l_vals_[k] * x[l_rows_[k]];
    }
    x[pivot_row_of_step_[t]] = acc;
  }
}

void LuFactor::FtranSparse(std::vector<double>& x,
                           std::vector<int32_t>& pattern) const {
  // Gilbert–Peierls style reach: only the steps a nonzero can flow to
  // are visited, in elimination order via a min-heap. Every push is
  // guarded by mark_, so each step enters the heap exactly once, and
  // all pushes target later steps than the current pop — the pop
  // sequence is sorted.
  const auto min_first = [](int32_t a, int32_t b) { return a > b; };
  std::vector<int32_t>& heap = solve_heap_;
  std::vector<int32_t>& steps = step_list_;
  heap.clear();
  steps.clear();

  // L pass, in row space (L columns only touch rows pivotal later).
  for (int32_t r : pattern) {
    const int32_t s = step_of_row_[r];
    if (!mark_[s]) {
      mark_[s] = 1;
      heap.push_back(s);
      std::push_heap(heap.begin(), heap.end(), min_first);
    }
  }
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), min_first);
    const int32_t t = heap.back();
    heap.pop_back();
    steps.push_back(t);
    const double v = x[pivot_row_of_step_[t]];
    if (v == 0.0) continue;
    for (int32_t k = l_start_[t]; k < l_start_[t + 1]; ++k) {
      const int32_t r2 = l_rows_[k];
      const int32_t s2 = step_of_row_[r2];
      if (!mark_[s2]) {
        mark_[s2] = 1;
        heap.push_back(s2);
        std::push_heap(heap.begin(), heap.end(), min_first);
      }
      x[r2] -= l_vals_[k] * v;
    }
  }

  // Gather into step space, restoring the caller's all-zero invariant
  // on the row-space input as we go.
  std::vector<double>& z = sparse_work_;
  for (int32_t t : steps) {
    const int32_t r = pivot_row_of_step_[t];
    z[t] = x[r];
    x[r] = 0.0;
  }

  // FT row etas, oldest to newest. Unmarked steps hold exact zeros in
  // z, so the accumulation is correct without consulting the pattern.
  const int ne = eta_count();
  for (int k = 0; k < ne; ++k) {
    double acc = 0.0;
    for (int32_t e = ft_start_[k]; e < ft_start_[k + 1]; ++e) {
      acc += ft_vals_[e] * z[ft_steps_[e]];
    }
    if (acc != 0.0) {
      const int32_t t = ft_pos_[k];
      if (!mark_[t]) {
        mark_[t] = 1;
        steps.push_back(t);
      }
      z[t] -= acc;
    }
  }

  // U back-substitution: process marked steps by descending order
  // position (max-heap); a nonzero result reaches the earlier-ordered
  // rows of its U column.
  heap.clear();
  for (int32_t t : steps) heap.push_back(pos_in_order_[t]);
  std::make_heap(heap.begin(), heap.end());
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const int32_t t = order_[heap.back()];
    heap.pop_back();
    double acc = z[t];
    for (const Entry& e : urow_[t]) acc -= e.second * z[e.first];
    if (acc == 0.0) {
      z[t] = 0.0;
      continue;
    }
    z[t] = acc * udiag_inv_[t];
    for (const Entry& e : ucol_[t]) {
      if (!mark_[e.first]) {
        mark_[e.first] = 1;
        steps.push_back(e.first);
        heap.push_back(pos_in_order_[e.first]);
        std::push_heap(heap.begin(), heap.end());
      }
    }
  }

  // Scatter to basis positions; clear marks and z.
  pattern.clear();
  for (int32_t t : steps) {
    mark_[t] = 0;
    const double zt = z[t];
    if (zt != 0.0) {
      z[t] = 0.0;
      const int32_t c = col_of_step_[t];
      x[c] = zt;
      pattern.push_back(c);
    }
  }
}

void LuFactor::BtranSparse(std::vector<double>& x,
                           std::vector<int32_t>& pattern) const {
  const auto min_first = [](int32_t a, int32_t b) { return a > b; };
  std::vector<int32_t>& heap = solve_heap_;
  std::vector<int32_t>& steps = step_list_;
  std::vector<double>& g = sparse_work_;
  heap.clear();
  steps.clear();

  // Gather (basis position -> step), zeroing the input.
  for (int32_t c : pattern) {
    const int32_t t = step_of_col_[c];
    const double xc = x[c];
    x[c] = 0.0;
    if (xc == 0.0) continue;
    g[t] = xc;
    if (!mark_[t]) {
      mark_[t] = 1;
      steps.push_back(t);
    }
  }

  // U^T forward substitution, ascending order positions: a nonzero
  // g[t] reaches the later-ordered columns of row t.
  for (int32_t t : steps) heap.push_back(pos_in_order_[t]);
  std::make_heap(heap.begin(), heap.end(), min_first);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), min_first);
    const int32_t t = order_[heap.back()];
    heap.pop_back();
    double acc = g[t];
    for (const Entry& e : ucol_[t]) acc -= e.second * g[e.first];
    if (acc == 0.0) {
      g[t] = 0.0;
      continue;
    }
    g[t] = acc * udiag_inv_[t];
    for (const Entry& e : urow_[t]) {
      if (!mark_[e.first]) {
        mark_[e.first] = 1;
        steps.push_back(e.first);
        heap.push_back(pos_in_order_[e.first]);
        std::push_heap(heap.begin(), heap.end(), min_first);
      }
    }
  }

  // Transposed FT row etas, newest to oldest.
  for (int k = eta_count() - 1; k >= 0; --k) {
    const double gp = g[ft_pos_[k]];
    if (gp == 0.0) continue;
    for (int32_t e = ft_start_[k]; e < ft_start_[k + 1]; ++e) {
      const int32_t s = ft_steps_[e];
      if (!mark_[s]) {
        mark_[s] = 1;
        steps.push_back(s);
      }
      g[s] -= ft_vals_[e] * gp;
    }
  }

  // L^T backward, descending step order: the result at step t's pivot
  // row feeds the steps whose L column touches that row (all earlier).
  // Marks are cleared at pop — re-pushes would need a later step,
  // which cannot happen.
  heap.assign(steps.begin(), steps.end());
  std::make_heap(heap.begin(), heap.end());
  pattern.clear();
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const int32_t t = heap.back();
    heap.pop_back();
    mark_[t] = 0;
    double acc = g[t];
    g[t] = 0.0;
    for (int32_t k = l_start_[t]; k < l_start_[t + 1]; ++k) {
      acc -= l_vals_[k] * x[l_rows_[k]];
    }
    if (acc == 0.0) continue;
    const int32_t r = pivot_row_of_step_[t];
    x[r] = acc;
    pattern.push_back(r);
    for (int32_t k = lt_start_[r]; k < lt_start_[r + 1]; ++k) {
      const int32_t t2 = lt_steps_[k];
      if (!mark_[t2]) {
        mark_[t2] = 1;
        heap.push_back(t2);
        std::push_heap(heap.begin(), heap.end());
      }
    }
  }
}

bool LuFactor::Update(const std::vector<double>& w, int pos) {
  // Spike: the replaced column of U becomes v = U w̃ where
  // w̃[t] = w[col_of_step_[t]] is the incoming column's FTRAN image
  // gathered into step space (so v = F^{-1} a_q with F the current
  // L+eta chain). Accumulate column-wise over the nonzeros of w̃ only.
  std::vector<double>& v = spike_work_;
  spike_touched_.clear();
  for (int t = 0; t < m_; ++t) {
    const double wt = w[col_of_step_[t]];
    if (wt == 0.0) continue;
    if (v[t] == 0.0) spike_touched_.push_back(t);
    v[t] += udiag_[t] * wt;
    for (const Entry& e : ucol_[t]) {
      if (v[e.first] == 0.0) spike_touched_.push_back(e.first);
      v[e.first] += e.second * wt;
    }
  }
  return FinishUpdate(pos);
}

bool LuFactor::Update(const std::vector<double>& w,
                      const std::vector<int32_t>& wpattern, int pos) {
  // Same spike as the dense-w overload, but the nonzeros of w are
  // handed in, skipping even the O(m) gather scan.
  std::vector<double>& v = spike_work_;
  spike_touched_.clear();
  for (int32_t c : wpattern) {
    const double wt = w[c];
    if (wt == 0.0) continue;
    const int32_t t = step_of_col_[c];
    if (v[t] == 0.0) spike_touched_.push_back(t);
    v[t] += udiag_[t] * wt;
    for (const Entry& e : ucol_[t]) {
      if (v[e.first] == 0.0) spike_touched_.push_back(e.first);
      v[e.first] += e.second * wt;
    }
  }
  return FinishUpdate(pos);
}

bool LuFactor::FinishUpdate(int pos) {
  const int32_t p = step_of_col_[pos];
  const int32_t ip = pos_in_order_[p];
  std::vector<double>& v = spike_work_;
  double vmax = 0.0;
  for (int32_t s : spike_touched_) vmax = std::max(vmax, std::abs(v[s]));

  // Eliminate the replaced step's row of U against the rows ordered
  // after it, read-only: the multipliers land in eta_scratch_ and the
  // running combination of row p in acc_work_. Only the spike column
  // receives fill (row p's other entries cancel by construction), so
  // the only numbers we need out of this pass are the multipliers and
  // the new diagonal.
  // The rows needing elimination are reached from row p's entries
  // through later-ordered rows of U; a min-heap on the order position
  // visits exactly that reach set in elimination order instead of
  // scanning every position past ip.
  std::vector<double>& acc = acc_work_;
  std::vector<int32_t>& heap = elim_heap_;
  const auto later_first = [](int32_t a, int32_t b) { return a > b; };
  acc_touched_.clear();
  heap.clear();
  eta_scratch_.clear();
  for (const Entry& e : urow_[p]) {
    acc[e.first] = e.second;
    acc_touched_.push_back(e.first);
    heap.push_back(pos_in_order_[e.first]);
  }
  std::make_heap(heap.begin(), heap.end(), later_first);
  double accp = v[p];
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later_first);
    const int32_t t = order_[heap.back()];
    heap.pop_back();
    const double a = acc[t];
    if (a == 0.0) continue;  // duplicate heap entry, or cancelled out
    acc[t] = 0.0;
    if (std::abs(a) < kFtDropEps) continue;
    const double r = a * udiag_inv_[t];
    eta_scratch_.emplace_back(t, r);
    for (const Entry& e : urow_[t]) {
      if (e.first == p) continue;  // old column p, about to be deleted
      if (acc[e.first] == 0.0) {
        acc_touched_.push_back(e.first);
        heap.push_back(pos_in_order_[e.first]);
        std::push_heap(heap.begin(), heap.end(), later_first);
      }
      acc[e.first] -= r * e.second;
    }
    accp -= r * v[t];
  }
  for (int32_t t : acc_touched_) acc[t] = 0.0;

  if (!(std::abs(accp) > kSingularEps)) {
    for (int32_t s : spike_touched_) v[s] = 0.0;
    return false;  // factors untouched
  }

  // Commit. Remove row p and column p from the mirrored stores, insert
  // the eliminated spike as the new column p, move p to the back of
  // the elimination order, and append the row eta to the solve chain.
  int64_t removed = 0;
  for (const Entry& e : urow_[p]) {
    auto& col = ucol_[e.first];
    for (size_t k = 0; k < col.size(); ++k) {
      if (col[k].first == p) {
        col[k] = col.back();
        col.pop_back();
        ++removed;
        break;
      }
    }
  }
  for (const Entry& e : ucol_[p]) {
    auto& row = urow_[e.first];
    for (size_t k = 0; k < row.size(); ++k) {
      if (row[k].first == p) {
        row[k] = row.back();
        row.pop_back();
        ++removed;
        break;
      }
    }
  }
  urow_[p].clear();
  ucol_[p].clear();
  int64_t added = 1;  // new diagonal
  for (int32_t s : spike_touched_) {
    const double vs = v[s];
    v[s] = 0.0;  // restore the all-zero invariant; dedupes re-touches
    if (s == p || std::abs(vs) < kFtDropEps) continue;
    ucol_[p].emplace_back(s, vs);
    urow_[s].emplace_back(p, vs);
    ++added;
  }
  udiag_[p] = accp;
  udiag_inv_[p] = 1.0 / accp;
  order_.erase(order_.begin() + ip);
  order_.push_back(p);
  for (int i = ip; i < m_; ++i) pos_in_order_[order_[i]] = i;

  ft_pos_.push_back(p);
  for (const Entry& e : eta_scratch_) {
    ft_steps_.push_back(e.first);
    ft_vals_.push_back(e.second);
    added += 1;
  }
  ft_start_.push_back(static_cast<int32_t>(ft_steps_.size()));

  u_nnz_ += static_cast<int64_t>(ucol_[p].size()) - removed;
  eta_nnz_ += added;
  total_eta_nnz_ += added;
  ++total_updates_;
  last_pivot_stability_ =
      std::abs(accp) / std::max(vmax, std::abs(accp));
  const int64_t ft_nnz =
      static_cast<int64_t>(ft_vals_.size() + ft_pos_.size());
  if (last_pivot_stability_ < kStabilityFloor ||
      u_nnz_ + ft_nnz > kUpdateFillFactor * static_cast<double>(factor_nnz_) +
                            kUpdateFillSlackPerRow * m_) {
    needs_refactor_ = true;
  }
  return true;
}

}  // namespace cophy::lp
