// Gilbert–Peierls sparse LU with static Markowitz column ordering,
// threshold partial pivoting, and a product-form eta file. See
// lu_factor.h for the contract and the space conventions.
#include "lp/lu_factor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace cophy::lp {

namespace {

// A pivot candidate below this magnitude (after row equilibration by
// the caller) marks the basis numerically singular.
constexpr double kSingularEps = 1e-10;
// Threshold partial pivoting: a row may pivot if its |value| is within
// this factor of the eliminated column's largest |value|.
constexpr double kPivotThreshold = 0.1;
// An eta whose pivot is this much smaller than the largest entry of
// the incoming column poisons every later solve: refactorize.
constexpr double kStabilityFloor = 1e-3;
// Refactorize once the eta file outweighs the factors themselves.
constexpr double kEtaFillFactor = 2.0;

}  // namespace

bool LuFactor::Factorize(int m, const std::vector<int32_t>& col_start,
                         const std::vector<int32_t>& rows,
                         const std::vector<double>& vals) {
  COPHY_CHECK_EQ(static_cast<int>(col_start.size()), m + 1);
  // Build into fresh arrays and commit only on success, so a failed
  // refactorization keeps the previous (valid, if drifty) factors.
  std::vector<int32_t> l_start{0}, l_rows, u_start{0}, u_steps;
  std::vector<double> l_vals, u_vals, u_diag;
  std::vector<int32_t> pivot_row_of_step(m), col_of_step(m), step_of_col(m);
  std::vector<int32_t> row_to_step(m, -1);
  u_diag.reserve(m);

  // Static Markowitz data: original row counts for the pivot-row
  // tie-break, columns eliminated in ascending nonzero count.
  std::vector<int32_t> row_count(m, 0);
  for (int32_t r : rows) ++row_count[r];
  std::vector<int32_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return col_start[a + 1] - col_start[a] < col_start[b + 1] - col_start[b];
  });

  std::vector<double> x(m, 0.0);
  std::vector<char> in_x(m, 0);    // row currently scattered into x
  std::vector<char> seen(m, 0);    // step visited by this column's DFS
  std::vector<int32_t> touched;    // rows scattered (pattern)
  std::vector<int32_t> reach;      // reached steps, DFS finish order
  std::vector<int32_t> stack, stack_edge;

  for (int t = 0; t < m; ++t) {
    const int c = order[t];
    touched.clear();
    reach.clear();
    for (int32_t k = col_start[c]; k < col_start[c + 1]; ++k) {
      const int32_t r = rows[k];
      if (!in_x[r]) {
        in_x[r] = 1;
        touched.push_back(r);
        x[r] = 0.0;
      }
      x[r] += vals[k];  // merge duplicate entries
    }

    // Symbolic: depth-first reach of already-eliminated steps from the
    // column's pivotal rows, recorded in finish order so the reversed
    // list is topological (dependencies first).
    for (int32_t k = col_start[c]; k < col_start[c + 1]; ++k) {
      const int32_t s0 = row_to_step[rows[k]];
      if (s0 < 0 || seen[s0]) continue;
      seen[s0] = 1;
      stack.assign(1, s0);
      stack_edge.assign(1, l_start[s0]);
      while (!stack.empty()) {
        const int32_t s = stack.back();
        int32_t e = stack_edge.back();
        bool descended = false;
        while (e < l_start[s + 1]) {
          const int32_t s2 = row_to_step[l_rows[e]];
          ++e;
          if (s2 >= 0 && !seen[s2]) {
            stack_edge.back() = e;
            seen[s2] = 1;
            stack.push_back(s2);
            stack_edge.push_back(l_start[s2]);
            descended = true;
            break;
          }
        }
        if (!descended) {
          reach.push_back(s);
          stack.pop_back();
          stack_edge.pop_back();
        }
      }
    }

    // Numeric: eliminate through the reached steps in topological
    // order. Fill lands on non-pivotal rows and joins the pattern.
    for (int i = static_cast<int>(reach.size()) - 1; i >= 0; --i) {
      const int32_t s = reach[i];
      const double v = x[pivot_row_of_step[s]];
      if (v == 0.0) continue;
      for (int32_t k = l_start[s]; k < l_start[s + 1]; ++k) {
        const int32_t r = l_rows[k];
        if (!in_x[r]) {
          in_x[r] = 1;
          touched.push_back(r);
          x[r] = 0.0;
        }
        x[r] -= l_vals[k] * v;
      }
    }

    // Pivot: threshold partial pivoting with the Markowitz-style
    // fewest-row-nonzeros tie-break among the stable candidates.
    double xmax = 0.0;
    for (int32_t r : touched) {
      if (row_to_step[r] < 0) xmax = std::max(xmax, std::abs(x[r]));
    }
    if (xmax <= kSingularEps) {
      for (int32_t r : touched) {
        x[r] = 0.0;
        in_x[r] = 0;
      }
      return false;  // numerically (or structurally) singular
    }
    int32_t pivot = -1;
    int32_t best_count = std::numeric_limits<int32_t>::max();
    double best_abs = 0.0;
    for (int32_t r : touched) {
      if (row_to_step[r] >= 0) continue;
      const double a = std::abs(x[r]);
      if (a < kPivotThreshold * xmax) continue;
      if (row_count[r] < best_count ||
          (row_count[r] == best_count && a > best_abs)) {
        best_count = row_count[r];
        best_abs = a;
        pivot = r;
      }
    }
    COPHY_CHECK(pivot >= 0);

    for (int i = static_cast<int>(reach.size()) - 1; i >= 0; --i) {
      const int32_t s = reach[i];
      const double v = x[pivot_row_of_step[s]];
      if (v != 0.0) {
        u_steps.push_back(s);
        u_vals.push_back(v);
      }
    }
    u_start.push_back(static_cast<int32_t>(u_steps.size()));
    u_diag.push_back(x[pivot]);
    const double inv_piv = 1.0 / x[pivot];
    for (int32_t r : touched) {
      if (r == pivot || row_to_step[r] >= 0 || x[r] == 0.0) continue;
      l_rows.push_back(r);
      l_vals.push_back(x[r] * inv_piv);
    }
    l_start.push_back(static_cast<int32_t>(l_rows.size()));
    row_to_step[pivot] = t;
    pivot_row_of_step[t] = pivot;
    col_of_step[t] = c;
    step_of_col[c] = t;

    for (int32_t r : touched) {
      x[r] = 0.0;
      in_x[r] = 0;
    }
    for (int32_t s : reach) seen[s] = 0;
  }

  m_ = m;
  l_start_ = std::move(l_start);
  l_rows_ = std::move(l_rows);
  l_vals_ = std::move(l_vals);
  u_start_ = std::move(u_start);
  u_steps_ = std::move(u_steps);
  u_vals_ = std::move(u_vals);
  u_diag_ = std::move(u_diag);
  pivot_row_of_step_ = std::move(pivot_row_of_step);
  col_of_step_ = std::move(col_of_step);
  step_of_col_ = std::move(step_of_col);
  eta_pos_.clear();
  eta_inv_pivot_.clear();
  eta_start_.assign(1, 0);
  eta_idx_.clear();
  eta_val_.clear();
  eta_nnz_ = 0;
  factor_nnz_ = static_cast<int64_t>(l_rows_.size()) +
                static_cast<int64_t>(u_steps_.size()) + m;
  fill_nnz_ = std::max<int64_t>(
      0, factor_nnz_ - static_cast<int64_t>(rows.size()));
  last_pivot_stability_ = 1.0;
  needs_refactor_ = false;
  step_work_.assign(m, 0.0);
  return true;
}

void LuFactor::FtranLu(std::vector<double>& x) const {
  // L solve, in row space (unit diagonal implicit).
  for (int t = 0; t < m_; ++t) {
    const double v = x[pivot_row_of_step_[t]];
    if (v == 0.0) continue;
    for (int32_t k = l_start_[t]; k < l_start_[t + 1]; ++k) {
      x[l_rows_[k]] -= l_vals_[k] * v;
    }
  }
  // Gather into step space and back-substitute through U.
  std::vector<double>& z = step_work_;
  for (int t = 0; t < m_; ++t) z[t] = x[pivot_row_of_step_[t]];
  for (int t = m_ - 1; t >= 0; --t) {
    const double v = z[t] / u_diag_[t];
    z[t] = v;
    if (v == 0.0) continue;
    for (int32_t k = u_start_[t]; k < u_start_[t + 1]; ++k) {
      z[u_steps_[k]] -= u_vals_[k] * v;
    }
  }
  // Step t solved the column at basis position col_of_step_[t].
  for (int t = 0; t < m_; ++t) x[col_of_step_[t]] = z[t];
}

void LuFactor::BtranLu(std::vector<double>& x) const {
  std::vector<double>& g = step_work_;
  for (int t = 0; t < m_; ++t) g[t] = x[col_of_step_[t]];
  // U^T forward substitution (column access of U gives U^T's rows).
  for (int t = 0; t < m_; ++t) {
    double acc = g[t];
    for (int32_t k = u_start_[t]; k < u_start_[t + 1]; ++k) {
      acc -= u_vals_[k] * g[u_steps_[k]];
    }
    g[t] = acc / u_diag_[t];
  }
  // L^T backward: every row referenced by L column t is pivotal at a
  // later step, so its y component is already final — the in-place
  // overwrite of x (row space) is safe.
  for (int t = m_ - 1; t >= 0; --t) {
    double acc = g[t];
    for (int32_t k = l_start_[t]; k < l_start_[t + 1]; ++k) {
      acc -= l_vals_[k] * x[l_rows_[k]];
    }
    x[pivot_row_of_step_[t]] = acc;
  }
}

void LuFactor::Ftran(std::vector<double>& x) const {
  FtranLu(x);
  const int ne = eta_count();
  for (int k = 0; k < ne; ++k) {  // oldest to newest
    const int32_t p = eta_pos_[k];
    const double t = x[p];
    if (t == 0.0) continue;
    x[p] = t * eta_inv_pivot_[k];
    for (int32_t e = eta_start_[k]; e < eta_start_[k + 1]; ++e) {
      x[eta_idx_[e]] += eta_val_[e] * t;
    }
  }
}

void LuFactor::Btran(std::vector<double>& x) const {
  for (int k = eta_count() - 1; k >= 0; --k) {  // newest to oldest
    double acc = eta_inv_pivot_[k] * x[eta_pos_[k]];
    for (int32_t e = eta_start_[k]; e < eta_start_[k + 1]; ++e) {
      acc += eta_val_[e] * x[eta_idx_[e]];
    }
    x[eta_pos_[k]] = acc;
  }
  BtranLu(x);
}

bool LuFactor::Update(const std::vector<double>& w, int pos) {
  const double piv = w[pos];
  if (!(std::abs(piv) > kSingularEps)) return false;
  double amax = std::abs(piv);
  for (int i = 0; i < m_; ++i) amax = std::max(amax, std::abs(w[i]));
  const double inv = 1.0 / piv;
  eta_pos_.push_back(pos);
  eta_inv_pivot_.push_back(inv);
  int64_t added = 1;
  for (int i = 0; i < m_; ++i) {
    if (i == pos || w[i] == 0.0) continue;
    eta_idx_.push_back(i);
    eta_val_.push_back(-w[i] * inv);
    ++added;
  }
  eta_start_.push_back(static_cast<int32_t>(eta_idx_.size()));
  eta_nnz_ += added;
  total_eta_nnz_ += added;
  last_pivot_stability_ = std::abs(piv) / amax;
  if (last_pivot_stability_ < kStabilityFloor ||
      eta_nnz_ > kEtaFillFactor * static_cast<double>(factor_nnz_)) {
    needs_refactor_ = true;
  }
  return true;
}

}  // namespace cophy::lp
