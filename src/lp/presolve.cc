#include "lp/presolve.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace cophy::lp {

namespace {

/// Per-query reduction outcome (one slot per query; written only by the
/// worker that claimed the query, which is what makes the parallel scan
/// bit-identical across thread counts).
struct QueryReduction {
  ChoiceQuery query;
  int64_t duplicate_plans = 0;
  int64_t dominated_plans = 0;
  int64_t options_in = 0;
  int64_t plans_in = 0;
};

/// Exact byte key of a plan's slot structure (indexes + gamma bit
/// patterns, slot-delimited). Two plans with equal keys have identical
/// cost under every selection except for beta.
std::string SlotKey(const ChoicePlan& plan) {
  std::string key;
  key.reserve(plan.slots.size() * 16);
  for (const ChoiceSlot& slot : plan.slots) {
    for (const ChoiceOption& o : slot.options) {
      char buf[sizeof(int) + sizeof(double)];
      std::memcpy(buf, &o.index, sizeof(int));
      std::memcpy(buf + sizeof(int), &o.gamma, sizeof(double));
      key.append(buf, sizeof(buf));
    }
    key.push_back('\xff');  // slot delimiter (index bytes never emit it alone)
  }
  return key;
}

/// Rule 1: drops slot options that can never be chosen — everything
/// sorted after the first base option (the base path is always
/// available and no more expensive), and later duplicates of an index
/// already offered in the slot (QueryCost stops at the first available
/// occurrence).
ChoicePlan PruneOptions(const ChoicePlan& in, int64_t* removed) {
  ChoicePlan out;
  out.beta = in.beta;
  out.slots.reserve(in.slots.size());
  std::vector<int> seen;
  for (const ChoiceSlot& slot : in.slots) {
    ChoiceSlot pruned;
    pruned.options.reserve(slot.options.size());
    seen.clear();
    for (const ChoiceOption& o : slot.options) {
      if (o.index == kBaseOption) {
        pruned.options.push_back(o);
        break;  // options after the base are unreachable
      }
      if (std::find(seen.begin(), seen.end(), o.index) != seen.end()) {
        continue;  // shadowed duplicate: earlier occurrence is cheaper
      }
      seen.push_back(o.index);
      pruned.options.push_back(o);
    }
    *removed +=
        static_cast<int64_t>(slot.options.size()) - pruned.options.size();
    out.slots.push_back(std::move(pruned));
  }
  return out;
}

/// Optimistic (all indexes selected) plan cost.
double BestCase(const ChoicePlan& plan) {
  double c = plan.beta;
  for (const ChoiceSlot& slot : plan.slots) {
    double g = kInf;
    for (const ChoiceOption& o : slot.options) {
      g = std::min(g, o.gamma);
    }
    if (g == kInf) return kInf;  // empty slot: plan never satisfiable
    c += g;
  }
  return c;
}

/// Pessimistic (empty selection) plan cost; kInf when a slot has no
/// base fallback.
double WorstCase(const ChoicePlan& plan) {
  double c = plan.beta;
  for (const ChoiceSlot& slot : plan.slots) {
    double g = kInf;
    for (const ChoiceOption& o : slot.options) {
      if (o.index == kBaseOption) {
        g = o.gamma;
        break;
      }
    }
    if (g == kInf) return kInf;
    c += g;
  }
  return c;
}

/// Requirement-style plan (the ILP per-configuration form): every slot
/// offers exactly one option. Fills the sorted requirement set and the
/// full (selection-independent) cost; false when any slot has
/// alternatives.
bool RequirementForm(const ChoicePlan& plan, std::vector<int>* required,
                     double* total) {
  required->clear();
  *total = plan.beta;
  for (const ChoiceSlot& slot : plan.slots) {
    if (slot.options.size() != 1) return false;
    const ChoiceOption& o = slot.options[0];
    *total += o.gamma;
    if (o.index != kBaseOption) required->push_back(o.index);
  }
  std::sort(required->begin(), required->end());
  return true;
}

/// Is `a` (sorted) a subset of `b` (sorted)?
bool SubsetOf(const std::vector<int>& a, const std::vector<int>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

QueryReduction ReduceQuery(const ChoiceQuery& in) {
  QueryReduction r;
  r.query.weight = in.weight;
  r.query.cost_cap = in.cost_cap;
  r.plans_in = static_cast<int64_t>(in.plans.size());
  for (const ChoicePlan& plan : in.plans) {
    for (const ChoiceSlot& slot : plan.slots) {
      r.options_in += static_cast<int64_t>(slot.options.size());
    }
  }

  // Plans with an empty slot can never be satisfied (QueryCost prices
  // them +inf under every selection): drop them up front. A query left
  // with no plan at all keeps one empty-slot sentinel so the reduced
  // problem is exactly as unsatisfiable as the input — degenerate
  // inputs must surface as Status::Infeasible downstream, not abort
  // here.
  std::vector<const ChoicePlan*> live;
  live.reserve(in.plans.size());
  for (const ChoicePlan& plan : in.plans) {
    bool ok = true;
    for (const ChoiceSlot& slot : plan.slots) {
      ok &= !slot.options.empty();
    }
    if (ok) {
      live.push_back(&plan);
    } else {
      ++r.dominated_plans;
    }
  }
  if (live.empty()) {
    ChoicePlan sentinel;
    sentinel.slots.emplace_back();
    r.query.plans.push_back(std::move(sentinel));
    return r;
  }

  // Rule 1: per-slot option pruning.
  int64_t options_removed = 0;
  std::vector<ChoicePlan> plans;
  plans.reserve(live.size());
  for (const ChoicePlan* plan : live) {
    plans.push_back(PruneOptions(*plan, &options_removed));
  }

  // Rule 2: identical slot structures keep the cheapest beta (first on
  // ties, so the pass is order-deterministic).
  std::vector<uint8_t> dead(plans.size(), 0);
  {
    std::unordered_map<std::string, int> canonical;
    for (int i = 0; i < static_cast<int>(plans.size()); ++i) {
      auto [it, inserted] = canonical.emplace(SlotKey(plans[i]), i);
      if (inserted) continue;
      const int keep = it->second;
      if (plans[i].beta < plans[keep].beta) {
        dead[keep] = 1;
        ++r.dominated_plans;
        it->second = i;
      } else if (plans[i].beta == plans[keep].beta) {
        dead[i] = 1;
        ++r.duplicate_plans;
      } else {
        dead[i] = 1;
        ++r.dominated_plans;
      }
    }
  }

  // Rule 3a: best/worst-case interval dominance. The plan with the
  // smallest worst case covers every selection at that cost, so any
  // other plan whose best case is no better can never win the min.
  {
    double min_worst = kInf;
    int keeper = -1;
    for (int i = 0; i < static_cast<int>(plans.size()); ++i) {
      if (dead[i]) continue;
      const double w = WorstCase(plans[i]);
      if (w < min_worst) {
        min_worst = w;
        keeper = i;
      }
    }
    if (keeper >= 0) {
      for (int i = 0; i < static_cast<int>(plans.size()); ++i) {
        if (dead[i] || i == keeper) continue;
        if (BestCase(plans[i]) >= min_worst) {
          dead[i] = 1;
          ++r.dominated_plans;
        }
      }
    }
  }

  // Rule 3b: requirement-subset dominance for ILP-form plans — a
  // configuration is dominated by a cheaper configuration that needs a
  // subset of its indexes (§5's atomic-configuration pruning).
  {
    std::vector<int> req_i, req_j;
    std::vector<int> candidates;
    std::vector<std::pair<std::vector<int>, double>> forms(plans.size());
    std::vector<uint8_t> is_req(plans.size(), 0);
    for (int i = 0; i < static_cast<int>(plans.size()); ++i) {
      if (dead[i]) continue;
      if (RequirementForm(plans[i], &forms[i].first, &forms[i].second)) {
        is_req[i] = 1;
        candidates.push_back(i);
      }
    }
    for (int i : candidates) {
      if (dead[i]) continue;
      for (int j : candidates) {
        if (i == j || dead[j]) continue;
        const auto& [rj, tj] = forms[j];
        const auto& [ri, ti] = forms[i];
        if (tj > ti || !SubsetOf(rj, ri)) continue;
        // j serves every selection that satisfies i, no dearer. Remove
        // i unless the two are interchangeable and j comes later (keep
        // the first of an equivalent pair).
        if (tj < ti || rj.size() < ri.size() || j < i) {
          dead[i] = 1;
          ++r.dominated_plans;
          break;
        }
      }
    }
  }

  for (int i = 0; i < static_cast<int>(plans.size()); ++i) {
    if (!dead[i]) r.query.plans.push_back(std::move(plans[i]));
  }
  COPHY_CHECK(!r.query.plans.empty());
  return r;
}

}  // namespace

std::vector<uint8_t> PresolvedChoiceProblem::Inflate(
    const std::vector<uint8_t>& reduced) const {
  COPHY_CHECK_EQ(reduced.size(), kept_indexes.size());
  std::vector<uint8_t> full(original_num_indexes, 0);
  for (size_t i = 0; i < kept_indexes.size(); ++i) {
    full[kept_indexes[i]] = reduced[i];
  }
  return full;
}

std::vector<uint8_t> PresolvedChoiceProblem::Restrict(
    const std::vector<uint8_t>& original) const {
  COPHY_CHECK_EQ(static_cast<int>(original.size()), original_num_indexes);
  std::vector<uint8_t> reduced(kept_indexes.size(), 0);
  for (size_t i = 0; i < kept_indexes.size(); ++i) {
    reduced[i] = original[kept_indexes[i]];
  }
  return reduced;
}

PresolvedChoiceProblem PresolveChoiceProblem(const ChoiceProblem& p,
                                             cophy::ThreadPool* pool) {
  Stopwatch watch;
  PresolvedChoiceProblem out;
  out.original_num_indexes = p.num_indexes;
  PresolveStats& stats = out.stats;
  stats.queries = static_cast<int64_t>(p.queries.size());
  stats.indexes_in = p.num_indexes;

  // Per-query dedup/dominance scans, parallel and deterministic (each
  // worker writes only its own slot).
  std::vector<QueryReduction> reduced(p.queries.size());
  cophy::ParallelFor(pool, static_cast<int64_t>(p.queries.size()),
                     [&](int64_t q) { reduced[q] = ReduceQuery(p.queries[q]); });
  for (const QueryReduction& r : reduced) {
    stats.plans_in += r.plans_in;
    stats.duplicate_plans += r.duplicate_plans;
    stats.dominated_plans += r.dominated_plans;
    stats.options_in += r.options_in;
  }

  // Rule 4: index dropping. An index survives if some surviving option
  // strictly improves a slot (cheaper than the slot's base fallback, or
  // the slot has no fallback at all, so the index may be needed for
  // satisfiability), or a >=/= z-row (or a <= row with negative
  // coefficient, where selecting can relax the row) references it.
  std::vector<uint8_t> keep(p.num_indexes, 0);
  for (const QueryReduction& r : reduced) {
    for (const ChoicePlan& plan : r.query.plans) {
      for (const ChoiceSlot& slot : plan.slots) {
        double base_gamma = kInf;
        for (const ChoiceOption& o : slot.options) {
          if (o.index == kBaseOption) base_gamma = o.gamma;
        }
        for (const ChoiceOption& o : slot.options) {
          if (o.index == kBaseOption) continue;
          if (o.gamma < base_gamma) keep[o.index] = 1;
        }
      }
    }
  }
  for (const ZRow& row : p.z_rows) {
    for (const auto& [a, c] : row.terms) {
      if (row.sense != Sense::kLe || c < 0) keep[a] = 1;
    }
  }

  std::vector<int> old_to_new(p.num_indexes, -1);
  for (int a = 0; a < p.num_indexes; ++a) {
    if (keep[a]) {
      old_to_new[a] = static_cast<int>(out.kept_indexes.size());
      out.kept_indexes.push_back(a);
    }
  }
  stats.indexes_out = static_cast<int64_t>(out.kept_indexes.size());

  // Assemble the reduced problem. Options whose index was dropped are
  // exact ties with an always-available base fallback, so removing them
  // leaves every QueryCost unchanged.
  ChoiceProblem& rp = out.problem;
  rp.num_indexes = static_cast<int>(out.kept_indexes.size());
  rp.fixed_cost.reserve(rp.num_indexes);
  rp.size.reserve(rp.num_indexes);
  for (int a : out.kept_indexes) {
    rp.fixed_cost.push_back(p.fixed_cost[a]);
    rp.size.push_back(p.size[a]);
  }
  rp.storage_budget = p.storage_budget;
  rp.constant_cost = p.constant_cost;
  rp.queries.reserve(reduced.size());
  for (QueryReduction& r : reduced) {
    ChoiceQuery cq;
    cq.weight = r.query.weight;
    cq.cost_cap = r.query.cost_cap;
    cq.plans.reserve(r.query.plans.size());
    for (ChoicePlan& plan : r.query.plans) {
      ChoicePlan np;
      np.beta = plan.beta;
      np.slots.reserve(plan.slots.size());
      for (ChoiceSlot& slot : plan.slots) {
        ChoiceSlot ns;
        ns.options.reserve(slot.options.size());
        for (const ChoiceOption& o : slot.options) {
          if (o.index == kBaseOption) {
            ns.options.push_back(o);
          } else if (old_to_new[o.index] >= 0) {
            ns.options.push_back({old_to_new[o.index], o.gamma});
          }
        }
        // Dropped indexes were exact ties with a base fallback, so a
        // non-empty slot stays non-empty; only the unsatisfiable
        // sentinel (slot empty on input) passes through empty.
        COPHY_CHECK(slot.options.empty() || !ns.options.empty());
        ns.options.shrink_to_fit();
        np.slots.push_back(std::move(ns));
      }
      cq.plans.push_back(std::move(np));
    }
    rp.queries.push_back(std::move(cq));
  }
  stats.plans_out = 0;
  stats.options_out = 0;
  for (const ChoiceQuery& q : rp.queries) {
    stats.plans_out += static_cast<int64_t>(q.plans.size());
    for (const ChoicePlan& plan : q.plans) {
      for (const ChoiceSlot& slot : plan.slots) {
        stats.options_out += static_cast<int64_t>(slot.options.size());
      }
    }
  }
  rp.z_rows.reserve(p.z_rows.size());
  for (const ZRow& row : p.z_rows) {
    ZRow nr;
    nr.sense = row.sense;
    nr.rhs = row.rhs;
    nr.name = row.name;
    for (const auto& [a, c] : row.terms) {
      if (old_to_new[a] >= 0) nr.terms.push_back({old_to_new[a], c});
    }
    rp.z_rows.push_back(std::move(nr));
  }

  stats.seconds = watch.Elapsed();
  return out;
}

namespace {

/// SplitMix64-style combiner (same scheme as the workload signatures;
/// duplicated here because lp must not depend on workload/).
struct StructHasher {
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  void Mix(uint64_t v) {
    uint64_t z = state + 0x9e3779b97f4a7c15ULL + v;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    state = z ^ (z >> 31);
  }
  void MixDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
};

}  // namespace

uint64_t ChoiceStructureDigest(const ChoiceProblem& p) {
  StructHasher h;
  h.Mix(static_cast<uint64_t>(p.num_indexes));
  h.Mix(p.queries.size());
  for (const ChoiceQuery& q : p.queries) {
    h.Mix(q.plans.size());
    for (const ChoicePlan& plan : q.plans) {
      h.MixDouble(plan.beta);
      h.Mix(plan.slots.size());
      for (const ChoiceSlot& slot : plan.slots) {
        h.Mix(slot.options.size());
        for (const ChoiceOption& o : slot.options) {
          h.Mix(static_cast<uint64_t>(static_cast<int64_t>(o.index)));
          h.MixDouble(o.gamma);
        }
      }
    }
  }
  h.Mix(p.z_rows.size());
  for (const ZRow& row : p.z_rows) {
    h.Mix(static_cast<uint64_t>(row.sense));
    h.Mix(row.terms.size());
    for (const auto& [a, c] : row.terms) {
      h.Mix(static_cast<uint64_t>(static_cast<int64_t>(a)));
      h.MixDouble(c);
    }
  }
  return h.state;
}

uint64_t ChoiceConstraintSideDigest(const ChoiceProblem& p) {
  StructHasher h;
  h.MixDouble(p.storage_budget);
  h.Mix(p.queries.size());
  for (const ChoiceQuery& q : p.queries) h.MixDouble(q.cost_cap);
  h.Mix(p.z_rows.size());
  for (const ZRow& row : p.z_rows) h.MixDouble(row.rhs);
  return h.state;
}

PresolvedChoiceProblem ReapplyPresolve(const PresolvedChoiceProblem& prior,
                                       const ChoiceProblem& p) {
  Stopwatch watch;
  COPHY_CHECK_EQ(prior.original_num_indexes, p.num_indexes);
  COPHY_CHECK_EQ(prior.problem.queries.size(), p.queries.size());
  PresolvedChoiceProblem out = prior;
  ChoiceProblem& rp = out.problem;
  for (size_t q = 0; q < rp.queries.size(); ++q) {
    rp.queries[q].weight = p.queries[q].weight;
    rp.queries[q].cost_cap = p.queries[q].cost_cap;
  }
  for (size_t i = 0; i < out.kept_indexes.size(); ++i) {
    rp.fixed_cost[i] = p.fixed_cost[out.kept_indexes[i]];
    rp.size[i] = p.size[out.kept_indexes[i]];
  }
  rp.storage_budget = p.storage_budget;
  rp.constant_cost = p.constant_cost;
  COPHY_CHECK_EQ(rp.z_rows.size(), p.z_rows.size());
  for (size_t r = 0; r < rp.z_rows.size(); ++r) {
    rp.z_rows[r].rhs = p.z_rows[r].rhs;
  }
  out.stats.seconds = watch.Elapsed();
  return out;
}

ChoiceSolution SolveChoiceProblem(const ChoiceProblem& p,
                                  const ChoiceSolveOptions& options,
                                  PresolveStats* stats,
                                  cophy::ThreadPool* pool) {
  ChoiceResolveState* rs = options.resolve;
  ChoiceSolveOptions local = options;
  local.resolve = nullptr;
  uint64_t digest = 0;
  bool reuse = false;
  if (rs != nullptr) {
    digest = options.structure_digest_hint != 0 ? options.structure_digest_hint
                                                : ChoiceStructureDigest(p);
    reuse = rs->valid && rs->structure_digest == digest &&
            rs->presolve_enabled == options.presolve &&
            static_cast<int>(rs->selected.size()) == p.num_indexes;
  }
  if (reuse && local.warm_start.empty()) local.warm_start = rs->selected;

  ChoiceSolution sol;
  std::shared_ptr<PresolvedChoiceProblem> pre;
  if (!options.presolve) {
    if (stats != nullptr) {
      *stats = PresolveStats{};
      stats->indexes_in = stats->indexes_out = p.num_indexes;
    }
    if (reuse) {
      local.mu_seed = &rs->mu;
      local.lambda_seed = rs->lambda;
      if (!rs->root_basis.empty()) local.root_basis_seed = &rs->root_basis;
    }
    ChoiceSolver solver(&p);
    sol = solver.Solve(local);
  } else {
    if (reuse && rs->presolved != nullptr) {
      // Retained reductions: re-extract the weight-dependent
      // coefficients through the stored map instead of re-scanning.
      pre = std::make_shared<PresolvedChoiceProblem>(
          ReapplyPresolve(*rs->presolved, p));
      local.mu_seed = &rs->mu;
      local.lambda_seed = rs->lambda;
      if (!rs->root_basis.empty()) local.root_basis_seed = &rs->root_basis;
    } else {
      pre = std::make_shared<PresolvedChoiceProblem>(
          PresolveChoiceProblem(p, pool));
      reuse = false;
    }
    if (stats != nullptr) *stats = pre->stats;
    if (!local.warm_start.empty() &&
        static_cast<int>(local.warm_start.size()) == p.num_indexes) {
      local.warm_start = pre->Restrict(local.warm_start);
    }
    ChoiceSolver solver(&pre->problem);
    sol = solver.Solve(local);
    if (sol.status.ok()) sol.selected = pre->Inflate(sol.selected);
  }

  sol.reused_state = reuse;
  if (rs != nullptr) {
    ++rs->solves;
    if (reuse) ++rs->warm_reuses;
    rs->valid = sol.status.ok();
    if (sol.status.ok()) {
      rs->structure_digest = digest;
      rs->presolve_enabled = options.presolve;
      rs->selected = sol.selected;
      rs->mu = sol.mu_exit;
      rs->lambda = sol.lambda_exit;
      rs->root_basis = sol.root_basis;
      rs->presolved = pre;
    }
  }
  return sol;
}

}  // namespace cophy::lp
