// Sparse LU basis factorization for the revised simplex.
//
// `LuFactor` factorizes an m x m basis matrix B (given in CSC form)
// into P B Q = L U with
//
//  - a Markowitz-style static column ordering (columns eliminated in
//    ascending nonzero count, the classic fill-reducing heuristic for
//    basis matrices whose columns are near-triangular to begin with),
//  - threshold partial pivoting per elimination step: among the rows of
//    the eliminated column with |value| >= tau * max|value|, the one
//    with the fewest original-matrix nonzeros pivots (fill control
//    without giving up the stability guarantee),
//  - Gilbert–Peierls left-looking elimination: each column is solved
//    against the L computed so far with a reach-set DFS, so the whole
//    factorization costs O(flops), not O(m * nnz).
//
// After a simplex pivot the factorization is patched with a
// Forrest–Tomlin update (replacing the product-form eta file of the
// first sparse-LU version): the replaced column of U becomes the spike
// v = L^{-1} a_q, the replaced pivot moves to the end of the
// elimination order, and the now-offending row of U is eliminated into
// a short *row eta* that joins the solve chain. Unlike product-form
// etas — whose file grows by one dense-ish column per pivot and whose
// error compounds multiplicatively — FT keeps U itself triangular and
// compact, so FTRAN/BTRAN cost stays near the fresh-factor cost over
// long solves and refactorization becomes a fill/stability trigger
// rather than a short fixed pivot interval. `Update` tracks the
// post-elimination pivot magnitude and the U + row-eta fill; when
// either degrades, `NeedsRefactorization()` turns true and the simplex
// refactorizes from scratch at the next opportunity.
//
// Spaces: FTRAN input is indexed by constraint row, output by basis
// position (the order the basis columns were given to Factorize);
// BTRAN input is indexed by basis position, output by row. Positions
// and rows coincide for the all-slack basis, and the simplex keeps the
// identification `basis_[position] = column` stable across pivots.
#ifndef COPHY_LP_LU_FACTOR_H_
#define COPHY_LP_LU_FACTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace cophy::lp {

class LuFactor {
 public:
  /// Factorizes the m x m matrix whose column c holds the nonzeros
  /// `rows[k], vals[k]` for k in [col_start[c], col_start[c+1]).
  /// Returns false (keeping any previous factorization intact) if the
  /// matrix is numerically singular. On success the update file is
  /// cleared and NeedsRefactorization() resets.
  bool Factorize(int m, const std::vector<int32_t>& col_start,
                 const std::vector<int32_t>& rows,
                 const std::vector<double>& vals);

  /// Like Factorize, but keeps eliminating past numerically dependent
  /// columns instead of bailing at the first one. On a singular matrix
  /// it returns false with `deficient_cols` holding the CSC column
  /// indices that proved dependent and `uncovered_rows` the rows no
  /// pivot landed on (same count, unordered pairing); the previous
  /// factors stay intact so the caller can repair the basis (e.g.
  /// substitute slacks for the dependent columns) and refactorize. On a
  /// nonsingular matrix it commits and returns true, exactly like
  /// Factorize.
  bool FactorizeDeficient(int m, const std::vector<int32_t>& col_start,
                          const std::vector<int32_t>& rows,
                          const std::vector<double>& vals,
                          std::vector<int32_t>* deficient_cols,
                          std::vector<int32_t>* uncovered_rows);

  /// Threshold-partial-pivoting factor tau in (0, 1]: a row may pivot
  /// when its |value| is within tau of the eliminated column's largest.
  /// The 0.1 default favors sparsity; the simplex's recovery ladder
  /// raises it toward 1.0 (more stable pivots, more fill) when the
  /// factors misbehave. Takes effect at the next (re)factorization.
  void SetPivotThreshold(double tau) { pivot_threshold_ = tau; }
  double pivot_threshold() const { return pivot_threshold_; }

  /// w = B_k^{-1} b for the k-times-updated basis. `x` carries b
  /// indexed by row on input and the solution indexed by basis
  /// position on output.
  void Ftran(std::vector<double>& x) const;

  /// y^T = c^T B_k^{-1}. `x` carries c indexed by basis position on
  /// input and y indexed by row on output.
  void Btran(std::vector<double>& x) const;

  /// Hyper-sparse FTRAN: `x` is all-zero except at the row indices in
  /// `pattern`. Solves by following the reach of those nonzeros
  /// through L, the eta file, and U — cost proportional to the result
  /// pattern, not to m. On return `x` is all-zero except at the basis
  /// positions left in `pattern` (exact zeros are dropped).
  void FtranSparse(std::vector<double>& x,
                   std::vector<int32_t>& pattern) const;

  /// Hyper-sparse BTRAN: `x` all-zero except at the basis positions in
  /// `pattern`; on return all-zero except at the row indices left in
  /// `pattern`.
  void BtranSparse(std::vector<double>& x,
                   std::vector<int32_t>& pattern) const;

  /// Forrest–Tomlin update whose incoming FTRAN image `w` is known to
  /// be zero outside `wpattern` (basis positions): the spike is
  /// accumulated over the pattern only.
  bool Update(const std::vector<double>& w,
              const std::vector<int32_t>& wpattern, int pos);

  /// Forrest–Tomlin update replacing the basis column at `pos` with the
  /// column whose FTRAN image is `w` (dense, indexed by basis
  /// position). Returns false — leaving the factorization unchanged —
  /// if the post-elimination pivot is numerically unusable.
  bool Update(const std::vector<double>& w, int pos);

  /// True once the updated factors have degraded (unstable FT pivot, or
  /// U + row-eta fill past budget) and a fresh Factorize is advised.
  bool NeedsRefactorization() const { return needs_refactor_; }

  int dim() const { return m_; }
  /// Number of Forrest–Tomlin updates applied since the last Factorize.
  int eta_count() const { return static_cast<int>(ft_pos_.size()); }
  /// Update fill since the last Factorize: row-eta entries plus spike
  /// entries inserted into U (diagonal included).
  int64_t eta_nnz() const { return eta_nnz_; }
  /// Update fill appended over this object's lifetime (never reset).
  int64_t total_eta_nnz() const { return total_eta_nnz_; }
  /// Forrest–Tomlin updates applied over this object's lifetime.
  int64_t total_updates() const { return total_updates_; }
  /// L+U nonzeros (diagonal included) of the last factorization.
  int64_t factor_nnz() const { return factor_nnz_; }
  /// factor_nnz() minus the factorized matrix's nonzeros: the fill-in.
  int64_t fill_nnz() const { return fill_nnz_; }
  /// |post-elimination pivot| / max|spike| of the most recent Update
  /// (1 if none since the last Factorize).
  double last_pivot_stability() const { return last_pivot_stability_; }

 private:
  using Entry = std::pair<int32_t, double>;  // (step, value)

  int m_ = 0;
  double pivot_threshold_ = 0.1;

  // L: per elimination step, the below-pivot multipliers by original
  // row; unit diagonal implicit. L is never touched by updates.
  std::vector<int32_t> l_start_{0};
  std::vector<int32_t> l_rows_;
  std::vector<double> l_vals_;

  // U, mutable under Forrest–Tomlin updates, stored both row-wise and
  // column-wise in step space (off-diagonal entries only; values
  // duplicated — FT only ever inserts and deletes entries, never
  // rewrites them in place). urow_[s] holds (t, u_st) for columns t
  // ordered after s; ucol_[t] holds (s, u_st) for rows s ordered
  // before t. The elimination order itself is dynamic: order_[i] is
  // the step solved at position i, and an updated step moves to the
  // back of the order.
  std::vector<std::vector<Entry>> urow_;
  std::vector<std::vector<Entry>> ucol_;
  std::vector<double> udiag_;
  std::vector<double> udiag_inv_;  // 1/udiag_, kept in lock-step
  std::vector<int32_t> order_;
  std::vector<int32_t> pos_in_order_;

  std::vector<int32_t> pivot_row_of_step_;  // step -> original row
  std::vector<int32_t> col_of_step_;        // step -> basis position
  std::vector<int32_t> step_of_col_;        // basis position -> step
  std::vector<int32_t> step_of_row_;        // original row -> step

  // Row-wise structure of L (no values): the steps whose L column
  // touches each original row. Drives the reach in the sparse L^T
  // solve; values still come from the column store.
  std::vector<int32_t> lt_start_;
  std::vector<int32_t> lt_steps_;

  // Forrest–Tomlin row-eta file: update k eliminated the row of step
  // ft_pos_[k] using multipliers ft_vals_[e] against the rows of steps
  // ft_steps_[e], e in [ft_start_[k], ft_start_[k+1]). Applied after
  // the L solve in FTRAN, transposed in reverse order in BTRAN.
  std::vector<int32_t> ft_pos_;
  std::vector<int32_t> ft_start_{0};
  std::vector<int32_t> ft_steps_;
  std::vector<double> ft_vals_;

  int64_t eta_nnz_ = 0;
  int64_t total_eta_nnz_ = 0;
  int64_t total_updates_ = 0;
  int64_t factor_nnz_ = 0;
  int64_t fill_nnz_ = 0;
  int64_t u_nnz_ = 0;  // current off-diagonal U entries + diagonal
  double last_pivot_stability_ = 1.0;
  bool needs_refactor_ = false;

  // Update / solve scratch (sized on Factorize). spike_work_ and
  // acc_work_ are all-zero between calls; the touched lists restore
  // that invariant so Update costs O(spike nonzeros), not O(m).
  mutable std::vector<double> step_work_;
  std::vector<double> spike_work_;
  std::vector<int32_t> spike_touched_;
  std::vector<double> acc_work_;
  std::vector<int32_t> acc_touched_;
  std::vector<int32_t> elim_heap_;  // pending rows, keyed by order_ position
  std::vector<Entry> eta_scratch_;

  // Sparse-solve scratch: sparse_work_ all-zero and mark_ all-clear
  // between calls.
  mutable std::vector<double> sparse_work_;
  mutable std::vector<char> mark_;
  mutable std::vector<int32_t> step_list_;
  mutable std::vector<int32_t> solve_heap_;

  bool FinishUpdate(int pos);  // shared FT tail; expects spike_ filled
  // Shared elimination loop: with null outputs, bails at the first
  // dependent column (Factorize); with outputs, skips it and reports.
  bool FactorizeInternal(int m, const std::vector<int32_t>& col_start,
                         const std::vector<int32_t>& rows,
                         const std::vector<double>& vals,
                         std::vector<int32_t>* deficient_cols,
                         std::vector<int32_t>* uncovered_rows);
};

}  // namespace cophy::lp

#endif  // COPHY_LP_LU_FACTOR_H_
