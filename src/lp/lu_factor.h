// Sparse LU basis factorization for the revised simplex.
//
// `LuFactor` factorizes an m x m basis matrix B (given in CSC form)
// into P B Q = L U with
//
//  - a Markowitz-style static column ordering (columns eliminated in
//    ascending nonzero count, the classic fill-reducing heuristic for
//    basis matrices whose columns are near-triangular to begin with),
//  - threshold partial pivoting per elimination step: among the rows of
//    the eliminated column with |value| >= tau * max|value|, the one
//    with the fewest original-matrix nonzeros pivots (fill control
//    without giving up the stability guarantee),
//  - Gilbert–Peierls left-looking elimination: each column is solved
//    against the L computed so far with a reach-set DFS, so the whole
//    factorization costs O(flops), not O(m * nnz).
//
// After a simplex pivot the factorization is patched with a
// product-form eta (the inverse of the rank-1 column replacement), so
// FTRAN is `apply L/U solves, then the eta file` and BTRAN is `apply
// the eta file in reverse, then the transposed solves`. The eta file
// grows with every pivot and its error compounds, so `Update` tracks a
// pivot-stability estimate and a fill budget; when either degrades,
// `NeedsRefactorization()` turns true and the simplex refactorizes
// from scratch at the next opportunity (it also refactorizes on a
// fixed pivot interval regardless).
//
// Spaces: FTRAN input is indexed by constraint row, output by basis
// position (the order the basis columns were given to Factorize);
// BTRAN input is indexed by basis position, output by row. Positions
// and rows coincide for the all-slack basis, and the simplex keeps the
// identification `basis_[position] = column` stable across pivots.
#ifndef COPHY_LP_LU_FACTOR_H_
#define COPHY_LP_LU_FACTOR_H_

#include <cstdint>
#include <vector>

namespace cophy::lp {

class LuFactor {
 public:
  /// Factorizes the m x m matrix whose column c holds the nonzeros
  /// `rows[k], vals[k]` for k in [col_start[c], col_start[c+1]).
  /// Returns false (keeping any previous factorization intact) if the
  /// matrix is numerically singular. On success the eta file is
  /// cleared and NeedsRefactorization() resets.
  bool Factorize(int m, const std::vector<int32_t>& col_start,
                 const std::vector<int32_t>& rows,
                 const std::vector<double>& vals);

  /// w = (B E_1 ... E_k)^{-1} b. `x` carries b indexed by row on input
  /// and the solution indexed by basis position on output.
  void Ftran(std::vector<double>& x) const;

  /// y^T = c^T (B E_1 ... E_k)^{-1}. `x` carries c indexed by basis
  /// position on input and y indexed by row on output.
  void Btran(std::vector<double>& x) const;

  /// Appends the product-form eta for replacing the basis column at
  /// `pos` with the column whose FTRAN image is `w` (dense, indexed by
  /// basis position). Returns false — leaving the factorization
  /// unchanged — if the pivot element w[pos] is numerically unusable.
  bool Update(const std::vector<double>& w, int pos);

  /// True once the eta file has degraded (unstable pivot or fill past
  /// budget) and a fresh Factorize is advised.
  bool NeedsRefactorization() const { return needs_refactor_; }

  int dim() const { return m_; }
  /// Number of product-form etas appended since the last Factorize.
  int eta_count() const { return static_cast<int>(eta_pos_.size()); }
  /// Eta nonzeros currently in the file (reset by Factorize).
  int64_t eta_nnz() const { return eta_nnz_; }
  /// Eta nonzeros appended over this object's lifetime (never reset).
  int64_t total_eta_nnz() const { return total_eta_nnz_; }
  /// L+U nonzeros (diagonal included) of the last factorization.
  int64_t factor_nnz() const { return factor_nnz_; }
  /// factor_nnz() minus the factorized matrix's nonzeros: the fill-in.
  int64_t fill_nnz() const { return fill_nnz_; }
  /// |w[pos]| / max_i |w[i]| of the most recent Update (1 if none).
  double last_pivot_stability() const { return last_pivot_stability_; }

 private:
  void FtranLu(std::vector<double>& x) const;
  void BtranLu(std::vector<double>& x) const;

  int m_ = 0;

  // L: per elimination step, the below-pivot multipliers by original
  // row; unit diagonal implicit. U: per step (column of U), the
  // above-diagonal entries by earlier step, plus the pivot value.
  std::vector<int32_t> l_start_{0};
  std::vector<int32_t> l_rows_;
  std::vector<double> l_vals_;
  std::vector<int32_t> u_start_{0};
  std::vector<int32_t> u_steps_;
  std::vector<double> u_vals_;
  std::vector<double> u_diag_;

  std::vector<int32_t> pivot_row_of_step_;  // step -> original row
  std::vector<int32_t> col_of_step_;        // step -> basis position
  std::vector<int32_t> step_of_col_;        // basis position -> step

  // Product-form eta file: eta k replaces position eta_pos_[k]; its
  // off-pivot entries live in [eta_start_[k], eta_start_[k+1]).
  std::vector<int32_t> eta_pos_;
  std::vector<double> eta_inv_pivot_;
  std::vector<int32_t> eta_start_{0};
  std::vector<int32_t> eta_idx_;
  std::vector<double> eta_val_;

  int64_t eta_nnz_ = 0;
  int64_t total_eta_nnz_ = 0;
  int64_t factor_nnz_ = 0;
  int64_t fill_nnz_ = 0;
  double last_pivot_stability_ = 1.0;
  bool needs_refactor_ = false;

  // Step-space solve scratch (sized on Factorize).
  mutable std::vector<double> step_work_;
};

}  // namespace cophy::lp

#endif  // COPHY_LP_LU_FACTOR_H_
