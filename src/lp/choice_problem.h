// The structured BIP core shared by CoPhy's Theorem-1 formulation and
// the ILP baseline's per-configuration formulation.
//
// Both programs have the shape: every query picks exactly one plan
// alternative (y_qk = 1); each plan fills its slots with one access
// option each (x_qkia); selecting a non-base option requires activating
// its index (z_a >= x_qkia); index activation carries a fixed objective
// term (update cost) plus resource footprints (storage, arbitrary
// linear z-constraints). The solver below is a best-first
// branch-and-bound on the z variables whose node bounds combine an
// optimistic-completion bound with a Lagrangian-relaxation bound
// (subgradient on the linking constraints — the paper's relax(B) step),
// and which exposes anytime incumbents, gap feedback, early
// termination, and warm starts.
#ifndef COPHY_LP_CHOICE_PROBLEM_H_
#define COPHY_LP_CHOICE_PROBLEM_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "lp/branch_and_bound.h"
#include "lp/model.h"

namespace cophy::lp {

struct ChoiceResolveState;  // presolve.h: cross-solve delta-reuse state

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// One access option of a slot. `index` is a solver-local dense index
/// id, or kBaseOption for the always-available base path (I∅).
inline constexpr int kBaseOption = -1;
struct ChoiceOption {
  int index = kBaseOption;
  double gamma = 0.0;
};

/// A slot: options sorted ascending by gamma. A slot without a base
/// option is satisfiable only if one of its indexes is selected (the
/// ILP formulation uses this to encode "configuration requires index").
struct ChoiceSlot {
  std::vector<ChoiceOption> options;
};

/// One plan alternative (a template plan, or one atomic configuration
/// in the ILP formulation).
struct ChoicePlan {
  double beta = 0.0;
  std::vector<ChoiceSlot> slots;
};

/// Per-query structure. The query's cost under selection S is
///   min_plans [ beta + sum_slots min_{option available in S} gamma ].
struct ChoiceQuery {
  double weight = 1.0;
  std::vector<ChoicePlan> plans;
  /// Optional per-query cost cap (query-cost constraints, §E.2);
  /// the weightless cost min(...) must be <= cost_cap.
  double cost_cap = kInf;
};

/// A linear constraint over the z (index-selection) variables.
struct ZRow {
  std::vector<std::pair<int, double>> terms;  // (dense index id, coef)
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// The full structured problem.
struct ChoiceProblem {
  int num_indexes = 0;
  std::vector<double> fixed_cost;  ///< per-index objective term (>= 0)
  std::vector<double> size;        ///< per-index storage footprint
  double storage_budget = kInf;    ///< sum(size[z=1]) <= budget
  std::vector<ZRow> z_rows;        ///< additional linear z constraints
  std::vector<ChoiceQuery> queries;
  double constant_cost = 0.0;      ///< e.g. base-table update costs

  /// Cost of query q (unweighted) under a 0/1 selection; kInf if no
  /// plan is satisfiable.
  double QueryCost(int q, const std::vector<uint8_t>& selected) const;
  /// Full objective (weighted query costs + fixed costs + constant);
  /// kInf if any query is unsatisfiable.
  double Objective(const std::vector<uint8_t>& selected) const;
  /// Do storage budget, z_rows, and query caps hold under `selected`?
  bool Feasible(const std::vector<uint8_t>& selected) const;
  /// Total number of (plan, slot, option) entries — the x-variable
  /// count of the underlying BIP.
  int64_t NumOptionEntries() const;
};

/// Solve options (mirrors MipOptions; defaults match the paper's
/// experimental setup: stop at the first solution within 5% of optimal).
struct ChoiceSolveOptions {
  double gap_target = 0.05;
  double time_limit_seconds = kInf;
  int64_t node_limit = 50'000;
  std::function<bool(const MipProgress&)> callback;
  /// Warm start: previous selection (dense ids). Used for interactive
  /// re-tuning and Pareto sweeps.
  std::vector<uint8_t> warm_start;
  /// Use the Lagrangian-relaxation root bound (ablation knob).
  bool lagrangian = true;
  int lagrangian_iterations = 300;
  /// Presolve the problem before solving. Consumed by
  /// SolveChoiceProblem (lp/presolve.h); ChoiceSolver itself always
  /// solves exactly the problem it was given.
  bool presolve = true;
  /// Solve the full root LP relaxation with the sparse revised simplex:
  /// the LP optimum is the tightest bound this relaxation family offers,
  /// its duals warm-start the Lagrangian multipliers (instead of the
  /// cold §4.1 subgradient schedule), and its reduced costs drive
  /// variable fixing.
  bool root_lp = true;
  /// Skip the root LP above this row count. With the sparse-LU basis
  /// factorization (lp/lu_factor.h) the simplex costs O(factor nnz) per
  /// pivot, so this is a wall-clock guard for pathological instances,
  /// not a memory wall: sharded-session root LPs in the tens of
  /// thousands of rows solve exactly. (The Lagrangian bound and its
  /// reduced-cost fixing still run at any size.)
  int64_t root_lp_max_rows = 50'000;
  /// Permanently fix z variables whose reduced cost — from the root LP
  /// basis or from the Lagrangian z-subproblem coefficients at the best
  /// multipliers — proves the opposite bound can never beat the
  /// incumbent (re-applied as the incumbent drops).
  bool reduced_cost_fixing = true;
  /// Cross-solve reuse state for warm-started delta re-solves (see
  /// presolve.h). Consumed and refreshed by SolveChoiceProblem;
  /// ChoiceSolver itself ignores it and reads the low-level seeds below.
  ChoiceResolveState* resolve = nullptr;
  /// Optional precomputed ChoiceStructureDigest of the problem being
  /// solved (0 = unknown): callers that already hashed the problem
  /// (e.g. to pick solve knobs) save SolveChoiceProblem the O(problem)
  /// re-walk. Must be the digest of exactly this problem.
  uint64_t structure_digest_hint = 0;
  /// Low-level delta-re-solve seeds in the solver's own (possibly
  /// presolve-reduced) space; SolveChoiceProblem fills them from a
  /// valid resolve state. mu_seed/lambda_seed warm the Lagrangian
  /// multipliers (any μ >= 0, λ >= 0 is a valid dual point for a
  /// re-weighted problem, so the subgradient continues instead of
  /// starting cold); root_basis_seed warm-starts the root LP simplex
  /// (silently ignored when structurally incompatible).
  const std::vector<double>* mu_seed = nullptr;
  double lambda_seed = 0.0;
  const LpBasis* root_basis_seed = nullptr;
};

/// Solve result.
struct ChoiceSolution {
  Status status;
  std::vector<uint8_t> selected;
  double objective = kInf;
  double lower_bound = -kInf;
  double gap = kInf;
  int64_t nodes = 0;
  int64_t bound_evaluations = 0;  ///< NodeBound/Lagrangian bound calls
  double root_lagrangian_bound = -kInf;
  double root_lp_bound = -kInf;  ///< objective of the root LP relaxation
  int64_t root_lp_rows = 0;      ///< rows of the root LP (0: skipped)
  /// Simplex work behind the root LP bound: pivots, warm-start
  /// acceptance, and the basis-factorization counters
  /// (refactorizations, eta fill, drift, FTRAN/BTRAN time).
  LpSolveStats root_lp_stats;
  int64_t variables_fixed = 0;   ///< z fixed 0/1 by reduced costs
  /// Exit state for delta re-solves (solver space): the Lagrangian
  /// multipliers/storage dual at return and the root-LP basis (empty
  /// when the LP was skipped). SolveChoiceProblem copies these into the
  /// caller's ChoiceResolveState.
  std::vector<double> mu_exit;
  double lambda_exit = 0.0;
  LpBasis root_basis;
  /// True when the solve consumed a valid resolve state (presolve map
  /// re-applied, incumbent/dual/basis seeds offered).
  bool reused_state = false;
};

/// The structured branch-and-bound solver.
class ChoiceSolver {
 public:
  explicit ChoiceSolver(const ChoiceProblem* problem);

  /// Quick feasibility probe (interval propagation on z constraints and
  /// best-case query costs vs caps).
  Status CheckFeasible() const;

  ChoiceSolution Solve(const ChoiceSolveOptions& options = {});

  /// Test/diagnostic hooks: the two node bounds for an explicit fixing
  /// vector (-1 free, 0 excluded, 1 selected). Valid bounds never
  /// exceed the optimum of any completion consistent with `fixed`.
  double DebugNodeBound(const std::vector<int8_t>& fixed) const {
    return NodeBound(fixed, nullptr);
  }
  double DebugLagrangianBound(const std::vector<int8_t>& fixed) const {
    return LagrangianNodeBound(fixed);
  }
  /// Runs the root dual optimization (test hook).
  double DebugOptimizeLagrangian(double upper_bound, int iterations) {
    return OptimizeLagrangian(upper_bound, iterations);
  }
  const std::vector<double>& DebugMu() const { return mu_; }
  const std::vector<double>& DebugMuSum() const { return mu_sum_; }
  const std::vector<int32_t>& DebugMuOwnerIndex() const {
    return mu_owner_index_;
  }
  const std::vector<int32_t>& DebugEntryMuIdx() const { return entry_mu_idx_; }
  double DebugLambda() const { return lambda_; }

  /// Test hook: materializes the root LP relaxation (z variables first)
  /// and returns its row count, or -1 when the estimate exceeds
  /// `max_rows`.
  int64_t DebugBuildRootLp(Model* model, int64_t max_rows) const {
    RootLpLayout layout;
    return BuildRootLp(model, &layout, max_rows) ? model->num_rows() : -1;
  }

 private:
  struct NodeState;

  /// Bookkeeping of the root LP's rows: which row carries each μ slot's
  /// aggregated link constraint (its dual is that multiplier's seed) and
  /// where the storage row landed (for the λ seed). -1: no row (the μ
  /// slot's entries were all pruned).
  struct RootLpLayout {
    int storage_row = -1;
    std::vector<int32_t> mu_link_row;
  };

  /// Optimistic completion bound for the current fixings (optionally
  /// priced with the Lagrangian multipliers). Also gathers branching
  /// scores.
  double NodeBound(const std::vector<int8_t>& fixed,
                   std::vector<double>* branch_score) const;
  double LagrangianNodeBound(const std::vector<int8_t>& fixed) const;
  /// Greedy benefit/size dive producing a feasible incumbent; returns
  /// false if no feasible completion was found.
  bool GreedyIncumbent(const std::vector<int8_t>& fixed,
                       std::vector<uint8_t>& out) const;
  /// Subgradient optimization of the Lagrangian dual at the root;
  /// fills mu_/lambda_ and returns the best dual bound. Starts from the
  /// LP-dual seed when SeedLagrangianFromDuals ran, else from zero.
  double OptimizeLagrangian(double upper_bound, int iterations);
  /// Interval-based constraint pruning. Returns false if the fixings
  /// already violate a constraint.
  bool ConstraintsAdmissible(const std::vector<int8_t>& fixed) const;
  /// Emits the full root LP relaxation (Theorem-1 rows over the choice
  /// structure, z variables first) through the model's CSR streaming
  /// interface. False when the row estimate exceeds `max_rows`.
  bool BuildRootLp(Model* model, RootLpLayout* layout, int64_t max_rows) const;
  /// Seeds μ (per link-row duals, aggregated per (query, index)) and λ
  /// (storage-row dual, rescaled to normalized budget units) from an
  /// optimal root LP solution.
  void SeedLagrangianFromDuals(const LpSolution& lp, const RootLpLayout& layout);
  /// Normalized storage sizes (σ_a = size_a / M).
  void EnsureSigma();
  /// Fixes free z variables whose reduced cost proves that every
  /// solution on the other bound costs at least `upper_bound`; returns
  /// how many were newly fixed into root_fix_. Two proof sources: the
  /// root LP basis (bound + |d_a|) and the Lagrangian z-subproblem
  /// (bound + |coef_a|, exact because z separates additively).
  int ApplyReducedCostFixing(double upper_bound);

  const ChoiceProblem* p_;
  // Inverted list: dense index id -> queries whose plans reference it.
  std::vector<std::vector<int>> queries_of_index_;
  // Finest inverted list: for each dense index id, every (query, plan,
  // slot) position whose options include it, plus that option's γ.
  // Ordered (query, plan, slot) ascending, one entry per slot — the
  // first (γ-cheapest, options are γ-sorted) occurrence wins.
  // Selecting an index can only change the cost of the slots that
  // contain it, which lets the greedy incumbent maintain per-slot
  // chosen costs incrementally and price a candidate in O(refs)
  // instead of rescanning every plan of every touched query.
  struct SlotRef {
    int32_t query, plan, slot;  // plan/slot are positions within parent
    double gamma;
  };
  std::vector<std::vector<SlotRef>> slot_refs_of_index_;
  // Flat plan/slot numbering for the incremental pricing state:
  // plan_id = plan_start_[q] + plan_pos, slot_id = slot_start_[plan_id]
  // + slot_pos; both carry an end sentinel (total count in .back()).
  std::vector<int32_t> plan_start_;
  std::vector<int32_t> slot_start_;
  // Inverse of queries_of_index_: query -> distinct dense index ids its
  // plans reference. A candidate's greedy benefit depends only on its
  // own queries' cached costs, so after a drop/add only the moved
  // index's query-neighbourhood (union of these lists) needs
  // re-pricing.
  std::vector<std::vector<int32_t>> indexes_of_query_;

  // CSR copy of p_->z_rows (flat index/coefficient arrays) for the hot
  // admissibility scans — same layout idea as lp::Model's row storage.
  std::vector<int32_t> zrow_start_;
  std::vector<int32_t> zrow_idx_;
  std::vector<double> zrow_coef_;

  // Lagrangian state. Multipliers are aggregated per (query, index) —
  // exact for this structure because a query's chosen plan uses an
  // index in at most one slot — which keeps the dual space small and
  // subgradient components in {-1, 0, +1}.
  //   entry_mu_idx_[e]  μ-slot of the e-th non-base option in canonical
  //                     (query, plan, slot, option) iteration order
  //   mu_owner_index_/mu_owner_query_: per μ-slot owners
  std::vector<int32_t> entry_mu_idx_;
  std::vector<int32_t> mu_owner_index_;
  std::vector<int32_t> mu_owner_query_;
  std::vector<double> mu_;
  std::vector<double> mu_sum_;  // per index: Σ_q μ_{q,a}
  // Storage sizes normalized to budget units (σ_a = size_a / M), so the
  // storage dual λ lives in objective units.
  std::vector<double> sigma_;
  double lambda_ = 0.0;
  bool mu_ready_ = false;
  bool mu_seeded_ = false;  ///< μ/λ carry the root LP duals

  // Root-LP state for reduced-cost fixing (valid while rc_status_ is
  // non-empty): per-z basis status and reduced cost at the LP optimum,
  // the LP bound itself, and the permanent 0/1 fixings every node
  // inherits (-1 = free).
  std::vector<VarStatus> rc_status_;
  std::vector<double> rc_d_;
  double root_lp_bound_ = -kInf;
  std::vector<int8_t> root_fix_;
  // Lagrangian fixing data: z-subproblem reduced coefficients
  // fixed_cost + λσ − Σμ at the best multipliers, and the dual bound
  // they certify (flipping z_a off its unconstrained minimizer costs
  // at least |lag_coef_[a]| on top of lag_bound_).
  std::vector<double> lag_coef_;
  double lag_bound_ = -kInf;

  // Scratch for NodeBound's attributed penalties (single-threaded).
  mutable std::vector<double> scratch_penalty_;
};

}  // namespace cophy::lp

#endif  // COPHY_LP_CHOICE_PROBLEM_H_
