#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "common/check.h"
#include "common/stopwatch.h"
#include "lp/simplex.h"

namespace cophy::lp {

namespace {

constexpr double kIntEps = 1e-6;

/// A search node: variable-bound overrides along the path from the
/// root, plus the parent's optimal basis for warm-starting this node's
/// relaxation (shared between both children).
struct Node {
  double bound;  // LP relaxation value (lower bound for the subtree)
  std::vector<std::pair<VarId, std::pair<double, double>>> fixes;
  std::shared_ptr<const LpBasis> parent_basis;
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    return a->bound > b->bound;  // min-heap on bound (best-first)
  }
};

/// Picks the integer variable whose LP value is most fractional.
int MostFractional(const Model& model, const std::vector<double>& x) {
  int best = -1;
  double best_frac = kIntEps;
  for (int i = 0; i < model.num_variables(); ++i) {
    if (!model.variable(i).is_integer) continue;
    const double f = std::abs(x[i] - std::round(x[i]));
    if (f > best_frac) {
      best_frac = f;
      best = i;
    }
  }
  return best;
}

}  // namespace

Status CheckFeasible(const Model& model) {
  return SolveLp(model, nullptr, nullptr, nullptr, /*want_duals=*/false)
      .status;
}

MipSolution SolveMip(const Model& model, const MipOptions& options) {
  Stopwatch watch;
  MipSolution result;
  result.status = Status::Ok();

  std::vector<double> base_lo(model.num_variables()),
      base_hi(model.num_variables());
  for (int i = 0; i < model.num_variables(); ++i) {
    base_lo[i] = model.variable(i).lower;
    base_hi[i] = model.variable(i).upper;
  }

  auto account = [&result](const LpSolution& lp, bool dual_entry_node) {
    result.lp.lp_solves += 1;
    result.lp.phase1_pivots += lp.stats.phase1_pivots;
    result.lp.phase2_pivots += lp.stats.phase2_pivots;
    result.lp.dual_pivots += lp.stats.dual_pivots;
    result.lp.bound_flips += lp.stats.bound_flips;
    if (lp.stats.warm_started) result.lp.warm_started_nodes += 1;
    if (lp.stats.dual_entered) result.lp.dual_entered_nodes += 1;
    if (dual_entry_node) {
      result.lp.dual_node_phase1_pivots += lp.stats.phase1_pivots;
    }
  };

  // Seed the incumbent from the warm start if it is feasible.
  bool has_incumbent = false;
  if (!options.warm_start.empty() &&
      model.IsFeasible(options.warm_start)) {
    result.x = options.warm_start;
    result.objective = model.ObjectiveValue(options.warm_start);
    has_incumbent = true;
  }

  auto report = [&](double best_open_bound) -> bool {
    MipProgress p;
    p.seconds = watch.Elapsed();
    p.nodes = result.nodes;
    p.has_incumbent = has_incumbent;
    p.incumbent = result.objective;
    p.lower_bound = best_open_bound;
    if (has_incumbent) {
      p.gap = (result.objective - best_open_bound) /
              std::max(1e-12, std::abs(result.objective));
      p.gap = std::max(0.0, p.gap);
    }
    result.lower_bound = best_open_bound;
    result.gap = p.gap;
    if (options.callback && !options.callback(p)) return false;
    return true;
  };

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;

  LpOptions root_options;
  root_options.pricing = options.pricing;
  root_options.want_duals = false;
  root_options.safeguards = options.safeguards;

  // Is this Ok relaxation's bound safe to cut the tree with? With
  // safeguards on, only a certified solution's objective may prune.
  const auto certified = [&options](const LpSolution& lp) {
    return !options.safeguards || lp.stats.certified;
  };

  // Root relaxation (always a cold solve, primal entry).
  {
    const LpSolution root =
        SolveLp(model, root_options, nullptr, nullptr, nullptr);
    account(root, /*dual_entry_node=*/false);
    if (!root.status.ok()) {
      result.status = root.status;
      return result;
    }
    if (options.safeguards) {
      if (root.stats.certified) {
        result.lp.certified_nodes += 1;
      } else {
        result.lp.uncertified_nodes += 1;
      }
    }
    auto node = std::make_shared<Node>();
    // An uncertified root objective is not a proven subtree bound.
    node->bound = certified(root) ? root.objective
                                  : -std::numeric_limits<double>::infinity();
    if (options.warm_start_nodes) {
      node->parent_basis = std::make_shared<const LpBasis>(root.basis);
    }
    open.push(std::move(node));
  }

  std::vector<double> lo = base_lo, hi = base_hi;
  while (!open.empty()) {
    if (result.nodes >= options.node_limit ||
        watch.Elapsed() > options.time_limit_seconds) {
      result.status = has_incumbent
                          ? Status::Ok()
                          : Status::Timeout("no incumbent within limits");
      break;
    }
    auto node = open.top();
    open.pop();
    const double best_open =
        has_incumbent ? std::min(node->bound, result.objective) : node->bound;
    if (has_incumbent) {
      const double gap = (result.objective - best_open) /
                         std::max(1e-12, std::abs(result.objective));
      if (gap <= options.gap_target + 1e-12) {
        if (!report(best_open)) break;
        break;  // incumbent provably within the gap target
      }
      if (node->bound >= result.objective - 1e-9) continue;  // pruned
    }

    // Materialize this node's bounds.
    lo = base_lo;
    hi = base_hi;
    for (const auto& [v, b] : node->fixes) {
      lo[v] = std::max(lo[v], b.first);
      hi[v] = std::min(hi[v], b.second);
    }
    // Warm nodes re-import a parent-optimal basis under tightened
    // bounds: dual feasible by construction, so the dual simplex walks
    // the bound violation out with no primal phase-1 work. (SolveLp
    // falls back to the primal phases transparently if the import
    // fails or the basis is not flip-repairable.)
    LpOptions node_options = root_options;
    if (options.dual_entry_nodes && node->parent_basis != nullptr) {
      node_options.entry = SimplexEntry::kDual;
    }
    LpSolution relax =
        SolveLp(model, node_options, &lo, &hi, node->parent_basis.get());
    account(relax, node_options.entry == SimplexEntry::kDual);
    ++result.nodes;
    if (relax.status.ok() && options.safeguards && !relax.stats.certified) {
      // Uncertified node: one escalated re-solve — cold, through the
      // primal phases, with a fresh solver (full escalation headroom,
      // no inherited basis to mislead it). Accounted as a non-dual
      // node so the dual-warm-start phase-1 contract stays clean.
      result.lp.safeguard_resolves += 1;
      LpSolution again = SolveLp(model, root_options, &lo, &hi, nullptr);
      account(again, /*dual_entry_node=*/false);
      if (again.status.ok()) relax = std::move(again);
    }
    if (relax.status.ok() && options.safeguards) {
      if (relax.stats.certified) {
        result.lp.certified_nodes += 1;
      } else {
        result.lp.uncertified_nodes += 1;
      }
    }
    if (!relax.status.ok()) continue;  // infeasible subtree
    if (has_incumbent && certified(relax) &&
        relax.objective >= result.objective - 1e-9) {
      continue;
    }

    const int frac = MostFractional(model, relax.x);
    if (frac < 0) {
      // Integral: new incumbent. An uncertified relaxation's rounded
      // point must re-prove feasibility against the model before it
      // may replace the incumbent.
      std::vector<double> x = relax.x;
      for (int i = 0; i < model.num_variables(); ++i) {
        if (model.variable(i).is_integer) x[i] = std::round(x[i]);
      }
      if ((!has_incumbent || relax.objective < result.objective) &&
          (certified(relax) || model.IsFeasible(x))) {
        result.x = std::move(x);
        result.objective = relax.objective;
        has_incumbent = true;
        if (!report(open.empty() ? relax.objective
                                 : std::min(open.top()->bound, relax.objective))) {
          break;
        }
      }
      continue;
    }

    // Branch on the fractional variable; both children inherit this
    // node's optimal basis as their warm start.
    std::shared_ptr<const LpBasis> child_basis;
    if (options.warm_start_nodes) {
      child_basis = std::make_shared<const LpBasis>(relax.basis);
    }
    // An uncertified node objective cannot cut its children either:
    // they inherit the parent's proven bound instead.
    const double child_bound =
        certified(relax) ? relax.objective : node->bound;
    const double v = relax.x[frac];
    auto down = std::make_shared<Node>();
    down->fixes = node->fixes;
    down->fixes.push_back({frac, {base_lo[frac], std::floor(v)}});
    down->bound = child_bound;
    down->parent_basis = child_basis;
    auto up = std::make_shared<Node>();
    up->fixes = node->fixes;
    up->fixes.push_back({frac, {std::ceil(v), base_hi[frac]}});
    up->bound = child_bound;
    up->parent_basis = child_basis;
    open.push(std::move(down));
    open.push(std::move(up));

    if ((result.nodes & 0x3f) == 0) {
      const double bound =
          open.empty() ? result.objective : open.top()->bound;
      if (!report(has_incumbent ? std::min(bound, result.objective) : bound)) {
        break;
      }
    }
  }

  if (!has_incumbent && result.status.ok()) {
    result.status = Status::Infeasible("no integral solution found");
  }
  if (has_incumbent) {
    const double bound = open.empty() ? result.objective : open.top()->bound;
    result.lower_bound = std::min(bound, result.objective);
    result.gap = std::max(0.0, (result.objective - result.lower_bound) /
                                   std::max(1e-12, std::abs(result.objective)));
    result.status = Status::Ok();
  }
  return result;
}

}  // namespace cophy::lp
