// Generic branch-and-bound MIP solver over lp::Model, using the sparse
// revised simplex for node relaxations. Exposes the "off-the-shelf
// solver" behaviours CoPhy leans on: anytime incumbents, a global lower
// bound with an optimality-gap readout, early termination at a gap
// target, warm starts, and a feasibility pre-check. Node LPs warm-start
// from their parent's exported basis *through the dual simplex*: a
// parent-optimal basis stays dual feasible when a child tightens the
// branching variable's bounds (the branching variable was basic), so
// each node re-solve costs a few dual pivots and zero primal phase-1
// work. Cold phase-1 solves remain only for the root and for nodes
// whose basis import is unusable.
#ifndef COPHY_LP_BRANCH_AND_BOUND_H_
#define COPHY_LP_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/status.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace cophy::lp {

/// Progress snapshot passed to the solve callback (drives the paper's
/// Fig. 6(a) feedback curve and early termination).
struct MipProgress {
  double seconds = 0;       ///< elapsed wall-clock time
  double incumbent = std::numeric_limits<double>::infinity();
  double lower_bound = -std::numeric_limits<double>::infinity();
  double gap = std::numeric_limits<double>::infinity();  ///< relative
  int64_t nodes = 0;
  bool has_incumbent = false;
};

/// Options for a MIP solve.
struct MipOptions {
  /// Terminate once (incumbent - bound)/|incumbent| <= gap_target
  /// (paper default: the CPLEX run returns the first solution within 5%
  /// of optimal).
  double gap_target = 0.0;
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  int64_t node_limit = 2'000'000;
  /// Called on progress updates; return false to stop (early
  /// termination with the current incumbent).
  std::function<bool(const MipProgress&)> callback;
  /// Optional starting point: if feasible it seeds the incumbent (the
  /// mechanism behind fast interactive re-tuning).
  std::vector<double> warm_start;
  /// Warm-start each node LP from its parent's basis (ablation knob;
  /// off = every node solves cold from the slack basis).
  bool warm_start_nodes = true;
  /// Phase-2 pricing rule for every node relaxation.
  Pricing pricing = Pricing::kDevex;
  /// Enter warm node re-solves through the dual simplex (the parent
  /// basis is dual feasible under the child's tightened bounds), so no
  /// primal phase-1 pivots run on the tree. Ablation knob; off = warm
  /// nodes use the primal phases as before.
  bool dual_entry_nodes = true;
  /// Run every node LP with the numerical safeguards (scaling stays on
  /// either way) and prune only on *certified* node bounds: an
  /// uncertified Ok node is re-solved once, cold through the primal
  /// phases with fresh escalation headroom, and if it still fails
  /// certification its objective is never used to cut the tree — the
  /// children inherit the parent's proven bound instead. Ablation knob
  /// for the safeguard-overhead CI gate.
  bool safeguards = true;
};

/// Aggregated LP work across all node relaxations of one MIP solve.
struct MipLpStats {
  int64_t lp_solves = 0;
  int64_t phase1_pivots = 0;
  int64_t phase2_pivots = 0;
  int64_t dual_pivots = 0;  ///< dual-simplex pivots on warm node re-solves
  int64_t bound_flips = 0;
  int64_t warm_started_nodes = 0;  ///< node LPs that accepted a basis
  int64_t dual_entered_nodes = 0;  ///< node LPs solved by the dual simplex
  /// Primal phase-1 pivots on node re-solves that attempted dual entry.
  /// The dual-warm-start contract says this is zero: a parent-optimal
  /// basis is dual feasible under the child's tightened bounds, and
  /// even a fallback hands the primal phases a primal-feasible basis.
  /// Nonzero means warm children are re-deriving feasibility from
  /// scratch again (CI gates it at exactly 0 on the bench BIP tree).
  int64_t dual_node_phase1_pivots = 0;
  // Certification accounting (only populated with MipOptions::
  // safeguards on).
  int64_t certified_nodes = 0;    ///< Ok node LPs whose solution certified
  int64_t uncertified_nodes = 0;  ///< ... that failed even after the re-solve
  /// Escalated re-solves of uncertified nodes (cold, primal entry).
  int64_t safeguard_resolves = 0;
};

/// Result of a MIP solve.
struct MipSolution {
  Status status;            ///< Ok (possibly early-terminated), Infeasible, …
  std::vector<double> x;
  double objective = std::numeric_limits<double>::infinity();
  double lower_bound = -std::numeric_limits<double>::infinity();
  double gap = std::numeric_limits<double>::infinity();
  int64_t nodes = 0;
  MipLpStats lp;
};

/// Solves the MIP with best-first branch-and-bound.
MipSolution SolveMip(const Model& model, const MipOptions& options = {});

/// Cheap feasibility probe (solves one LP relaxation): does the model
/// admit any fractional solution? Infeasible relaxation implies an
/// infeasible BIP — CoPhy's Solver uses this as its line-1 check.
Status CheckFeasible(const Model& model);

}  // namespace cophy::lp

#endif  // COPHY_LP_BRANCH_AND_BOUND_H_
