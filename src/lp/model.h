// A sparse (mixed) binary integer program: minimize c'x subject to
// linear rows, variable bounds, and integrality marks. This is the
// "off-the-shelf solver" input format: CoPhy's BIPGen emits exactly the
// program of Theorem 1 into this structure.
#ifndef COPHY_LP_MODEL_H_
#define COPHY_LP_MODEL_H_

#include <string>
#include <vector>

namespace cophy::lp {

using VarId = int;

/// Row sense of a linear constraint.
enum class Sense { kLe, kEq, kGe };

/// One sparse row: sum(coef_i * x_i) <sense> rhs.
struct Row {
  std::vector<std::pair<VarId, double>> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// Variable metadata.
struct Variable {
  double lower = 0.0;
  double upper = 1.0;
  double objective = 0.0;
  bool is_integer = false;
  std::string name;
};

/// The program. Objective is always minimization (negate to maximize).
class Model {
 public:
  /// Adds a variable, returning its id.
  VarId AddVariable(double lower, double upper, double objective,
                    bool is_integer, std::string name = "");
  /// Convenience: binary decision variable.
  VarId AddBinary(double objective, std::string name = "");
  /// Adds a constraint row, returning its index.
  int AddRow(Row row);

  /// Adds `offset` to every solution's objective value (constant term).
  void AddObjectiveConstant(double c) { objective_constant_ += c; }
  double objective_constant() const { return objective_constant_; }

  int num_variables() const { return static_cast<int>(vars_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const Variable& variable(VarId v) const { return vars_[v]; }
  Variable& variable(VarId v) { return vars_[v]; }
  const Row& row(int r) const { return rows_[r]; }
  const std::vector<Variable>& variables() const { return vars_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Objective value of a full assignment (including the constant).
  double ObjectiveValue(const std::vector<double>& x) const;
  /// Is `x` feasible w.r.t. rows, bounds, and integrality (tolerance
  /// `eps`)?
  bool IsFeasible(const std::vector<double>& x, double eps = 1e-6) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Row> rows_;
  double objective_constant_ = 0.0;
};

}  // namespace cophy::lp

#endif  // COPHY_LP_MODEL_H_
