// A sparse (mixed) binary integer program: minimize c'x subject to
// linear rows, variable bounds, and integrality marks. This is the
// "off-the-shelf solver" input format: CoPhy's BIPGen emits exactly the
// program of Theorem 1 into this structure.
//
// Rows are stored in CSR form (one flat column-id array and one flat
// coefficient array, plus per-row offsets); a CSC transpose (per-column
// views) is built lazily for the revised simplex's pricing loops.
// Producers can either pass a Row literal, or stream terms directly
// into the CSR arrays with BeginRow/AddTerm/EndRow.
#ifndef COPHY_LP_MODEL_H_
#define COPHY_LP_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cophy::lp {

using VarId = int;

/// Row sense of a linear constraint.
enum class Sense { kLe, kEq, kGe };

/// One sparse row literal: sum(coef_i * x_i) <sense> rhs. Construction
/// convenience only — the model copies the terms into its CSR arrays.
struct Row {
  std::vector<std::pair<VarId, double>> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// Variable metadata.
struct Variable {
  double lower = 0.0;
  double upper = 1.0;
  double objective = 0.0;
  bool is_integer = false;
  std::string name;
};

/// Read-only view of one CSR row.
struct RowView {
  const VarId* cols = nullptr;
  const double* vals = nullptr;
  int nnz = 0;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// Read-only view of one CSC column: the rows a variable appears in.
struct ColumnView {
  const int* rows = nullptr;
  const double* vals = nullptr;
  int nnz = 0;
};

/// The program. Objective is always minimization (negate to maximize).
class Model {
 public:
  /// Adds a variable, returning its id.
  VarId AddVariable(double lower, double upper, double objective,
                    bool is_integer, std::string name = "");
  /// Convenience: binary decision variable.
  VarId AddBinary(double objective, std::string name = "");

  /// Adds a constraint row from a literal, returning its index.
  int AddRow(Row row);
  /// Adds a constraint row from a term list (no Row object needed).
  int AddRow(const std::vector<std::pair<VarId, double>>& terms, Sense sense,
             double rhs, std::string name = "");

  /// Streaming row emission: terms go straight into the CSR arrays.
  /// Exactly one row may be open at a time; EndRow returns its index.
  void BeginRow(Sense sense, double rhs, std::string name = "");
  void AddTerm(VarId v, double coef);
  int EndRow();

  /// Validated bound update for an existing variable. A NaN bound (or
  /// lower > upper) latches InvalidArgument and leaves the variable
  /// unchanged; infinite bounds of the right sign are fine.
  void SetVariableBounds(VarId v, double lower, double upper);

  /// First invalid input latched by any mutator (NaN/Inf coefficient,
  /// objective, or rhs; NaN bound), or Ok. Every solver entry point
  /// refuses a model with a latched error, so one bad term surfaces as
  /// a clean InvalidArgument instead of propagating NaN through the
  /// basis factorization.
  const Status& input_status() const { return input_status_; }

  /// Adds `offset` to every solution's objective value (constant term).
  void AddObjectiveConstant(double c) { objective_constant_ += c; }
  double objective_constant() const { return objective_constant_; }

  int num_variables() const { return static_cast<int>(vars_.size()); }
  int num_rows() const { return static_cast<int>(rhs_.size()); }
  /// Total structural nonzeros across all rows.
  int64_t num_nonzeros() const { return static_cast<int64_t>(cols_.size()); }

  const Variable& variable(VarId v) const { return vars_[v]; }
  Variable& variable(VarId v) { return vars_[v]; }
  const std::vector<Variable>& variables() const { return vars_; }

  RowView row(int r) const;
  const std::string& row_name(int r) const { return row_names_[r]; }

  /// Per-column view over the rows (CSC). Built on first use after a
  /// row mutation; cheap thereafter.
  ColumnView column(VarId v) const;

  /// Objective value of a full assignment (including the constant).
  double ObjectiveValue(const std::vector<double>& x) const;
  /// Is `x` feasible w.r.t. rows, bounds, and integrality (tolerance
  /// `eps`)?
  bool IsFeasible(const std::vector<double>& x, double eps = 1e-6) const;

 private:
  void EnsureColumns() const;
  void LatchInvalid(const char* what);

  std::vector<Variable> vars_;
  Status input_status_ = Status::Ok();

  // CSR row storage.
  std::vector<int64_t> row_start_{0};  // num_rows + 1 offsets into cols_/vals_
  std::vector<VarId> cols_;
  std::vector<double> vals_;
  std::vector<Sense> senses_;
  std::vector<double> rhs_;
  std::vector<std::string> row_names_;
  bool row_open_ = false;

  // Lazily built CSC transpose (per-column views).
  mutable bool columns_ready_ = false;
  mutable std::vector<int64_t> col_start_;
  mutable std::vector<int> col_rows_;
  mutable std::vector<double> col_vals_;

  double objective_constant_ = 0.0;
};

}  // namespace cophy::lp

#endif  // COPHY_LP_MODEL_H_
