// The original dense two-phase tableau simplex, kept as a reference
// oracle for differential tests and as the "before" side of the
// revised-simplex benchmarks. It materializes every finite upper bound
// as an explicit row and re-prices the full tableau each iteration —
// do not use it on large models; call lp::SolveLp instead.
#ifndef COPHY_LP_DENSE_SIMPLEX_H_
#define COPHY_LP_DENSE_SIMPLEX_H_

#include <vector>

#include "lp/simplex.h"

namespace cophy::lp {

/// Solves the LP relaxation of `model` with the dense tableau method.
/// Semantics match SolveLp (bound overrides included); only the
/// algorithm differs.
LpSolution SolveLpDense(const Model& model,
                        const std::vector<double>* var_lower = nullptr,
                        const std::vector<double>* var_upper = nullptr);

}  // namespace cophy::lp

#endif  // COPHY_LP_DENSE_SIMPLEX_H_
