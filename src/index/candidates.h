// CGen (§4, Fig. 2): per-query candidate-index generation. Examines
// each statement's sargable/join/grouping/ordering columns and emits a
// large candidate set without aggressive pruning — pruning is delegated
// to the BIP solver, which is the point of the paper.
#ifndef COPHY_INDEX_CANDIDATES_H_
#define COPHY_INDEX_CANDIDATES_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "index/index.h"
#include "query/query.h"

namespace cophy {

/// Knobs for candidate generation.
struct CandidateOptions {
  /// Emit multi-column keys (predicate-column permutations capped by
  /// `max_key_columns`).
  int max_key_columns = 3;
  /// Also emit covering variants (key + INCLUDE of the statement's
  /// remaining referenced columns).
  bool covering_variants = true;
  /// Emit candidates for join columns / group-by / order-by prefixes.
  bool order_candidates = true;
  /// Emit the wider variant families (range-leading keys, keys extended
  /// with output columns, partial-INCLUDE variants). CGen deliberately
  /// does not prune (§4): a large S is the point, the solver prunes.
  bool extra_variants = true;
};

/// Generates candidates for one statement (SELECT or UPDATE shell).
std::vector<Index> CandidatesForQuery(const Query& q, const Catalog& cat,
                                      const CandidateOptions& opts);

/// Forms the full candidate set S = ∪_q candidates(q) ∪ S_DBA,
/// deduplicated through `pool`. Returns the ids added (ALL distinct
/// candidates, in pool id order).
std::vector<IndexId> GenerateCandidates(const Workload& w, const Catalog& cat,
                                        const CandidateOptions& opts,
                                        IndexPool& pool,
                                        const std::vector<Index>& dba_indexes = {});

/// Pads the pool with `count` random (syntactically valid, semantically
/// useless-to-random) indexes — used by the paper's S_L = 10K-candidate
/// scaling experiment (§5.3).
std::vector<IndexId> PadWithRandomIndexes(const Catalog& cat, int count,
                                          Rng& rng, IndexPool& pool);

}  // namespace cophy

#endif  // COPHY_INDEX_CANDIDATES_H_
