#include "index/index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace cophy {

bool Index::SameDefinition(const Index& other) const {
  return table == other.table && clustered == other.clustered &&
         key_columns == other.key_columns &&
         include_columns == other.include_columns;
}

bool Index::Covers(const std::vector<ColumnId>& cols) const {
  if (clustered) return true;
  for (ColumnId c : cols) {
    const bool in_key =
        std::find(key_columns.begin(), key_columns.end(), c) != key_columns.end();
    const bool in_inc = std::find(include_columns.begin(),
                                  include_columns.end(), c) != include_columns.end();
    if (!in_key && !in_inc) return false;
  }
  return true;
}

std::string Index::ToString(const Catalog& cat) const {
  std::vector<std::string> keys, incs;
  for (ColumnId c : key_columns) keys.push_back(cat.column(c).name);
  for (ColumnId c : include_columns) incs.push_back(cat.column(c).name);
  std::string s = StrFormat("%sINDEX ON %s(%s)", clustered ? "CLUSTERED " : "",
                            cat.table(table).name.c_str(),
                            StrJoin(keys, ", ").c_str());
  if (!incs.empty()) s += " INCLUDE(" + StrJoin(incs, ", ") + ")";
  return s;
}

double IndexLeafPages(const Index& idx, const Catalog& cat) {
  const Table& t = cat.table(idx.table);
  if (idx.clustered) return cat.TablePages(idx.table);
  double entry = 8.0;  // row locator
  for (ColumnId c : idx.key_columns) entry += cat.column(c).width_bytes;
  for (ColumnId c : idx.include_columns) entry += cat.column(c).width_bytes;
  const double fill = 0.7;  // B-tree fill factor
  return std::max(
      1.0, std::ceil(t.row_count * entry / (Catalog::kPageSize * fill)));
}

double IndexSizeBytes(const Index& idx, const Catalog& cat) {
  // Leaf level plus ~0.5% inner-node overhead.
  return IndexLeafPages(idx, cat) * Catalog::kPageSize * 1.005;
}

namespace {
std::string DefinitionKey(const Index& idx) {
  std::string k = std::to_string(idx.table);
  k += idx.clustered ? "C:" : ":";
  for (ColumnId c : idx.key_columns) k += std::to_string(c) + ",";
  k += "|";
  for (ColumnId c : idx.include_columns) k += std::to_string(c) + ",";
  return k;
}
}  // namespace

IndexPool::IndexPool()
    : chunks_(std::make_unique<std::atomic<Index*>[]>(kMaxChunks)) {
  for (int c = 0; c < kMaxChunks; ++c) {
    chunks_[c].store(nullptr, std::memory_order_relaxed);
  }
}

void IndexPool::FreeChunks() {
  if (chunks_ == nullptr) return;
  for (int c = 0; c < kMaxChunks; ++c) {
    delete[] chunks_[c].load(std::memory_order_relaxed);
  }
}

IndexPool::~IndexPool() { FreeChunks(); }

IndexPool::IndexPool(IndexPool&& other) noexcept
    : chunks_(std::move(other.chunks_)),
      size_(other.size_.load(std::memory_order_relaxed)),
      by_definition_(std::move(other.by_definition_)) {
  other.size_.store(0, std::memory_order_relaxed);
}

IndexPool& IndexPool::operator=(IndexPool&& other) noexcept {
  if (this != &other) {
    FreeChunks();
    chunks_ = std::move(other.chunks_);
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    by_definition_ = std::move(other.by_definition_);
    other.size_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

IndexId IndexPool::Add(Index idx) {
  COPHY_CHECK(!idx.key_columns.empty());
  // INCLUDE columns are a set; canonicalize so equivalent definitions
  // deduplicate regardless of the order the generator emitted them in.
  std::sort(idx.include_columns.begin(), idx.include_columns.end());
  const std::string key = DefinitionKey(idx);
  std::lock_guard<std::mutex> lock(add_mu_);
  auto it = by_definition_.find(key);
  if (it != by_definition_.end()) return it->second;
  const int id = size_.load(std::memory_order_relaxed);
  COPHY_CHECK(id < kMaxChunks * kChunkSize);
  const int c = id >> kChunkShift;
  Index* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Index[kChunkSize];
    chunks_[c].store(chunk, std::memory_order_release);
  }
  idx.id = static_cast<IndexId>(id);
  chunk[id & kChunkMask] = std::move(idx);
  by_definition_.emplace(key, static_cast<IndexId>(id));
  // Publish after the slot is fully constructed: a reader that observes
  // size() > id is guaranteed to see the entry.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<IndexId>(id);
}

std::vector<IndexId> IndexPool::OnTable(TableId t) const {
  std::vector<IndexId> out;
  const int n = size();
  for (int id = 0; id < n; ++id) {
    if ((*this)[id].table == t) out.push_back(static_cast<IndexId>(id));
  }
  return out;
}

}  // namespace cophy
