// Index definitions, the deduplicating index pool, and size estimation.
// An index is defined on exactly one table (no join indexes, per §2) and
// has an ordered key, optional INCLUDE columns, and a clustered flag.
#ifndef COPHY_INDEX_INDEX_H_
#define COPHY_INDEX_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"

namespace cophy {

using IndexId = int32_t;
inline constexpr IndexId kInvalidIndex = -1;

/// A candidate (or materialized) index.
struct Index {
  IndexId id = kInvalidIndex;
  TableId table = kInvalidTable;
  std::vector<ColumnId> key_columns;      ///< ordered search key
  std::vector<ColumnId> include_columns;  ///< non-key covered columns
  bool clustered = false;

  /// True if the key (and clustered flag) equal `other`'s — identity for
  /// deduplication; INCLUDE columns participate too.
  bool SameDefinition(const Index& other) const;

  /// Does key ∪ include contain every column in `cols`? (Clustered
  /// indexes cover everything: the leaf level is the row.)
  bool Covers(const std::vector<ColumnId>& cols) const;

  /// "CREATE INDEX"-style rendering.
  std::string ToString(const Catalog& cat) const;
};

/// Estimated on-disk size of the index in bytes (leaf level dominated;
/// clustered indexes are counted as the table itself plus key overhead).
double IndexSizeBytes(const Index& idx, const Catalog& cat);

/// Estimated leaf page count.
double IndexLeafPages(const Index& idx, const Catalog& cat);

/// The global registry of candidate indexes. Deduplicates by
/// definition; ids are dense and stable, so solvers use them as variable
/// indices directly.
///
/// Thread safety: Add() may be called from any thread (writers serialize
/// on an internal mutex), and operator[]/size()/OnTable() are safe to
/// call concurrently with Add — storage is a fixed array of
/// atomically-published chunks, so an id obtained from Add (or any value
/// < size()) stays dereferenceable forever without locking. This is what
/// lets concurrent advisor sessions share one pool while another
/// tenant's candidate generation is appending. Entries are immutable
/// once published. Moving a pool is NOT thread-safe; moves are for
/// single-threaded fixture setup only.
class IndexPool {
 public:
  IndexPool();
  ~IndexPool();
  IndexPool(IndexPool&& other) noexcept;
  IndexPool& operator=(IndexPool&& other) noexcept;
  IndexPool(const IndexPool&) = delete;
  IndexPool& operator=(const IndexPool&) = delete;

  /// Adds an index if new, returning its id (or the existing duplicate's
  /// id).
  IndexId Add(Index idx);

  const Index& operator[](IndexId id) const {
    return chunks_[id >> kChunkShift].load(std::memory_order_acquire)
                  [id & kChunkMask];
  }
  int size() const { return size_.load(std::memory_order_acquire); }

  /// Ids of indexes on table `t` (among the entries published at call
  /// time), in id order.
  std::vector<IndexId> OnTable(TableId t) const;

 private:
  static constexpr int kChunkShift = 10;              // 1024 entries/chunk
  static constexpr int kChunkSize = 1 << kChunkShift;
  static constexpr int kChunkMask = kChunkSize - 1;
  static constexpr int kMaxChunks = 1 << 12;          // 4M ids total

  void FreeChunks();

  /// chunks_[c] is null until the first id in its range is allocated,
  /// then points at a heap array of kChunkSize entries that never moves.
  std::unique_ptr<std::atomic<Index*>[]> chunks_;
  std::atomic<int> size_{0};
  std::mutex add_mu_;  // guards by_definition_ and slot construction
  std::unordered_map<std::string, IndexId> by_definition_;
};

}  // namespace cophy

#endif  // COPHY_INDEX_INDEX_H_
