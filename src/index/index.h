// Index definitions, the deduplicating index pool, and size estimation.
// An index is defined on exactly one table (no join indexes, per §2) and
// has an ordered key, optional INCLUDE columns, and a clustered flag.
#ifndef COPHY_INDEX_INDEX_H_
#define COPHY_INDEX_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"

namespace cophy {

using IndexId = int32_t;
inline constexpr IndexId kInvalidIndex = -1;

/// A candidate (or materialized) index.
struct Index {
  IndexId id = kInvalidIndex;
  TableId table = kInvalidTable;
  std::vector<ColumnId> key_columns;      ///< ordered search key
  std::vector<ColumnId> include_columns;  ///< non-key covered columns
  bool clustered = false;

  /// True if the key (and clustered flag) equal `other`'s — identity for
  /// deduplication; INCLUDE columns participate too.
  bool SameDefinition(const Index& other) const;

  /// Does key ∪ include contain every column in `cols`? (Clustered
  /// indexes cover everything: the leaf level is the row.)
  bool Covers(const std::vector<ColumnId>& cols) const;

  /// "CREATE INDEX"-style rendering.
  std::string ToString(const Catalog& cat) const;
};

/// Estimated on-disk size of the index in bytes (leaf level dominated;
/// clustered indexes are counted as the table itself plus key overhead).
double IndexSizeBytes(const Index& idx, const Catalog& cat);

/// Estimated leaf page count.
double IndexLeafPages(const Index& idx, const Catalog& cat);

/// The global registry of candidate indexes. Deduplicates by
/// definition; ids are dense and stable, so solvers use them as variable
/// indices directly.
class IndexPool {
 public:
  /// Adds an index if new, returning its id (or the existing duplicate's
  /// id).
  IndexId Add(Index idx);

  const Index& operator[](IndexId id) const { return indexes_[id]; }
  int size() const { return static_cast<int>(indexes_.size()); }
  const std::vector<Index>& all() const { return indexes_; }

  /// Ids of indexes on table `t`.
  std::vector<IndexId> OnTable(TableId t) const;

 private:
  std::vector<Index> indexes_;
  std::unordered_map<std::string, IndexId> by_definition_;
};

}  // namespace cophy

#endif  // COPHY_INDEX_INDEX_H_
