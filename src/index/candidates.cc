#include "index/candidates.h"

#include <algorithm>

#include "common/check.h"

namespace cophy {

namespace {

/// Appends idx to out if not already present by definition.
void Emit(std::vector<Index>& out, Index idx) {
  std::sort(idx.include_columns.begin(), idx.include_columns.end());
  for (const Index& e : out) {
    if (e.SameDefinition(idx)) return;
  }
  out.push_back(std::move(idx));
}

/// Key-column orderings worth emitting for a table: equality columns
/// first (any equality prefix enables prefix matching), then at most one
/// range column, then order-providing columns.
void EmitKeyVariants(std::vector<Index>& out, TableId t,
                     const std::vector<ColumnId>& eq_cols,
                     const std::vector<ColumnId>& range_cols,
                     const std::vector<ColumnId>& order_cols,
                     const std::vector<ColumnId>& all_used, int max_key,
                     bool covering, bool extra) {
  std::vector<std::vector<ColumnId>> keys;

  // Single-column keys for every interesting column.
  for (ColumnId c : eq_cols) keys.push_back({c});
  for (ColumnId c : range_cols) keys.push_back({c});
  for (ColumnId c : order_cols) keys.push_back({c});

  // Equality pairs (both orders — the optimizer benefits differ).
  for (size_t i = 0; i < eq_cols.size() && max_key >= 2; ++i) {
    for (size_t j = 0; j < eq_cols.size(); ++j) {
      if (i == j) continue;
      keys.push_back({eq_cols[i], eq_cols[j]});
    }
  }
  // Equality prefix + range suffix.
  for (ColumnId e : eq_cols) {
    for (ColumnId r : range_cols) {
      if (max_key >= 2 && e != r) keys.push_back({e, r});
    }
  }
  // Equality prefix + order suffix (serves sorted access after filter).
  for (ColumnId e : eq_cols) {
    for (ColumnId o : order_cols) {
      if (max_key >= 2 && e != o) keys.push_back({e, o});
    }
  }
  if (extra) {
    // Range-leading pairs (useful when the range predicate dominates).
    for (ColumnId r : range_cols) {
      for (ColumnId e : eq_cols) {
        if (max_key >= 2 && e != r) keys.push_back({r, e});
      }
      for (ColumnId o : order_cols) {
        if (max_key >= 2 && o != r) keys.push_back({r, o});
      }
    }
    // Keys extended with non-predicate used columns (narrow "index-only
    // plan" enablers), capped to keep S from exploding quadratically.
    int emitted = 0;
    for (ColumnId lead : eq_cols) {
      for (ColumnId tail : all_used) {
        if (tail == lead || max_key < 2 || emitted >= 6) continue;
        keys.push_back({lead, tail});
        ++emitted;
      }
    }
    emitted = 0;
    for (ColumnId lead : range_cols) {
      for (ColumnId tail : all_used) {
        if (tail == lead || max_key < 2 || emitted >= 6) continue;
        keys.push_back({lead, tail});
        ++emitted;
      }
    }
    // Order column + each used column.
    emitted = 0;
    for (ColumnId lead : order_cols) {
      for (ColumnId tail : all_used) {
        if (tail == lead || max_key < 2 || emitted >= 4) continue;
        keys.push_back({lead, tail});
        ++emitted;
      }
    }
  }

  // Three-column: eq + eq + range/order.
  if (max_key >= 3 && eq_cols.size() >= 2) {
    for (size_t i = 0; i < eq_cols.size(); ++i) {
      for (size_t j = 0; j < eq_cols.size(); ++j) {
        if (i == j) continue;
        for (ColumnId tail : range_cols) {
          if (tail != eq_cols[i] && tail != eq_cols[j]) {
            keys.push_back({eq_cols[i], eq_cols[j], tail});
          }
        }
        for (ColumnId tail : order_cols) {
          if (tail != eq_cols[i] && tail != eq_cols[j]) {
            keys.push_back({eq_cols[i], eq_cols[j], tail});
          }
        }
      }
    }
  }

  for (auto& key : keys) {
    // Drop duplicate columns within a key while preserving order.
    std::vector<ColumnId> dedup;
    for (ColumnId c : key) {
      if (std::find(dedup.begin(), dedup.end(), c) == dedup.end()) {
        dedup.push_back(c);
      }
    }
    if (dedup.empty()) continue;
    Index idx;
    idx.table = t;
    idx.key_columns = dedup;
    Emit(out, idx);
    if (covering) {
      // Covering variant: INCLUDE the statement's remaining columns.
      Index cov = idx;
      for (ColumnId c : all_used) {
        if (std::find(dedup.begin(), dedup.end(), c) == dedup.end()) {
          cov.include_columns.push_back(c);
        }
      }
      if (!cov.include_columns.empty()) {
        if (extra && cov.include_columns.size() >= 2) {
          // Partial-INCLUDE variants: each single column, and the
          // first half (cheaper, partially covering alternatives the
          // solver can trade against the full covering index).
          for (ColumnId c : cov.include_columns) {
            Index single = idx;
            single.include_columns = {c};
            Emit(out, std::move(single));
          }
          Index half = idx;
          half.include_columns.assign(
              cov.include_columns.begin(),
              cov.include_columns.begin() + cov.include_columns.size() / 2);
          if (!half.include_columns.empty()) Emit(out, std::move(half));
        }
        Emit(out, std::move(cov));
      }
    }
  }
}

}  // namespace

std::vector<Index> CandidatesForQuery(const Query& q, const Catalog& cat,
                                      const CandidateOptions& opts) {
  std::vector<Index> out;
  std::vector<TableId> tables = q.tables;
  if (q.IsUpdate() && q.update_table != kInvalidTable &&
      std::find(tables.begin(), tables.end(), q.update_table) == tables.end()) {
    tables.push_back(q.update_table);
  }
  for (TableId t : tables) {
    std::vector<ColumnId> eq_cols, range_cols, order_cols;
    for (const Predicate& p : q.PredicatesOn(t, cat)) {
      if (p.op == Predicate::Op::kEq) {
        eq_cols.push_back(p.column);
      } else {
        range_cols.push_back(p.column);
      }
    }
    if (opts.order_candidates) {
      for (const JoinPredicate& j : q.joins) {
        if (cat.column(j.left).table == t) order_cols.push_back(j.left);
        if (cat.column(j.right).table == t) order_cols.push_back(j.right);
      }
      for (ColumnId c : q.group_by) {
        if (cat.column(c).table == t) order_cols.push_back(c);
      }
      for (ColumnId c : q.order_by) {
        if (cat.column(c).table == t) order_cols.push_back(c);
      }
    }
    EmitKeyVariants(out, t, eq_cols, range_cols, order_cols,
                    q.ColumnsUsed(t, cat), opts.max_key_columns,
                    opts.covering_variants, opts.extra_variants);
  }
  return out;
}

std::vector<IndexId> GenerateCandidates(const Workload& w, const Catalog& cat,
                                        const CandidateOptions& opts,
                                        IndexPool& pool,
                                        const std::vector<Index>& dba_indexes) {
  std::vector<IndexId> ids;
  std::vector<uint8_t> emitted;  // dedup for the returned list
  auto add = [&](Index idx) {
    const IndexId id = pool.Add(std::move(idx));
    if (static_cast<size_t>(id) >= emitted.size()) {
      emitted.resize(id + 1, 0);
    }
    if (!emitted[id]) {
      emitted[id] = 1;
      ids.push_back(id);
    }
  };
  for (const Query& q : w.statements()) {
    for (Index& idx : CandidatesForQuery(q, cat, opts)) {
      add(std::move(idx));
    }
  }
  for (const Index& idx : dba_indexes) add(idx);
  return ids;
}

std::vector<IndexId> PadWithRandomIndexes(const Catalog& cat, int count,
                                          Rng& rng, IndexPool& pool) {
  std::vector<IndexId> ids;
  int attempts = 0;
  while (static_cast<int>(ids.size()) < count && attempts < count * 20) {
    ++attempts;
    const TableId t =
        static_cast<TableId>(rng.Uniform(static_cast<uint64_t>(cat.num_tables())));
    const Table& tab = cat.table(t);
    const int ncols = 1 + static_cast<int>(rng.Uniform(3));
    Index idx;
    idx.table = t;
    for (int i = 0; i < ncols; ++i) {
      const ColumnId c =
          tab.columns[rng.Uniform(static_cast<uint64_t>(tab.columns.size()))];
      if (std::find(idx.key_columns.begin(), idx.key_columns.end(), c) ==
          idx.key_columns.end()) {
        idx.key_columns.push_back(c);
      }
    }
    if (idx.key_columns.empty()) continue;
    const int before = pool.size();
    const IndexId id = pool.Add(std::move(idx));
    if (pool.size() > before) ids.push_back(id);
  }
  return ids;
}

}  // namespace cophy
