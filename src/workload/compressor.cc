#include "workload/compressor.h"

#include <cstring>
#include <unordered_map>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"

namespace cophy {

namespace {

/// SplitMix64-style hash combiner (deterministic across platforms).
struct Hasher {
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  void Mix(uint64_t v) {
    uint64_t z = state + 0x9e3779b97f4a7c15ULL + v;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    state = z ^ (z >> 31);
  }
  void MixDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
};

/// The per-predicate digest the cost model observes: which column, eq
/// vs range, and the catalog selectivity of the constant. Two
/// predicates with equal digests are interchangeable inside every cost
/// function (AnalyzeSlot keeps exactly (column, op, selectivity)).
double PredicateSelectivity(const Predicate& p, const Catalog& cat) {
  if (p.op == Predicate::Op::kEq) {
    return cat.EqSelectivity(p.column, p.quantile);
  }
  return cat.RangeSelectivity(p.column, p.quantile, p.width);
}

template <typename Fn>
void HashStatement(const Query& q, Hasher& h, const Fn& mix_predicate) {
  h.Mix(static_cast<uint64_t>(q.kind));
  h.Mix(q.tables.size());
  for (TableId t : q.tables) h.Mix(static_cast<uint64_t>(t));
  h.Mix(q.joins.size());
  for (const JoinPredicate& j : q.joins) {
    h.Mix(static_cast<uint64_t>(j.left));
    h.Mix(static_cast<uint64_t>(j.right));
  }
  h.Mix(q.predicates.size());
  for (const Predicate& p : q.predicates) mix_predicate(p, h);
  h.Mix(q.outputs.size());
  for (const OutputExpr& o : q.outputs) {
    h.Mix(static_cast<uint64_t>(o.func));
    h.Mix(static_cast<uint64_t>(o.column));
  }
  h.Mix(q.group_by.size());
  for (ColumnId c : q.group_by) h.Mix(static_cast<uint64_t>(c));
  h.Mix(q.order_by.size());
  for (ColumnId c : q.order_by) h.Mix(static_cast<uint64_t>(c));
  h.Mix(static_cast<uint64_t>(q.update_table));
  h.Mix(q.set_columns.size());
  for (ColumnId c : q.set_columns) h.Mix(static_cast<uint64_t>(c));
}

}  // namespace

uint64_t StatementCostSignature(const Query& q, const Catalog& cat) {
  Hasher h;
  HashStatement(q, h, [&cat](const Predicate& p, Hasher& hh) {
    hh.Mix(static_cast<uint64_t>(p.column));
    hh.Mix(static_cast<uint64_t>(p.op));
    hh.MixDouble(PredicateSelectivity(p, cat));
  });
  return h.state;
}

uint64_t StatementShapeSignature(const Query& q) {
  Hasher h;
  HashStatement(q, h, [](const Predicate& p, Hasher& hh) {
    hh.Mix(static_cast<uint64_t>(p.column));
    hh.Mix(static_cast<uint64_t>(p.op));
  });
  return h.state;
}

namespace {

bool StructurallyEquivalent(const Query& a, const Query& b) {
  if (a.kind != b.kind || a.tables != b.tables) return false;
  if (a.joins.size() != b.joins.size()) return false;
  for (size_t i = 0; i < a.joins.size(); ++i) {
    if (a.joins[i].left != b.joins[i].left ||
        a.joins[i].right != b.joins[i].right) {
      return false;
    }
  }
  if (a.predicates.size() != b.predicates.size()) return false;
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    if (a.predicates[i].column != b.predicates[i].column ||
        a.predicates[i].op != b.predicates[i].op) {
      return false;
    }
  }
  if (a.outputs.size() != b.outputs.size()) return false;
  for (size_t i = 0; i < a.outputs.size(); ++i) {
    if (a.outputs[i].func != b.outputs[i].func ||
        a.outputs[i].column != b.outputs[i].column) {
      return false;
    }
  }
  return a.group_by == b.group_by && a.order_by == b.order_by &&
         a.update_table == b.update_table && a.set_columns == b.set_columns;
}

}  // namespace

bool CostEquivalent(const Query& a, const Query& b, const Catalog& cat) {
  if (!StructurallyEquivalent(a, b)) return false;
  // Constants must resolve to bit-identical selectivities: the cost
  // functions consume nothing finer, so equality here implies equal β,
  // γ, ucost, and candidate sets.
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    if (PredicateSelectivity(a.predicates[i], cat) !=
        PredicateSelectivity(b.predicates[i], cat)) {
      return false;
    }
  }
  return true;
}

bool ShapeEquivalent(const Query& a, const Query& b) {
  return StructurallyEquivalent(a, b);
}

std::vector<QueryId> ClusterLeaders(const Workload& w, const Catalog& cat,
                                    bool by_shape) {
  std::vector<QueryId> leaders(w.size(), -1);
  std::unordered_map<uint64_t, std::vector<QueryId>> buckets;
  for (const Query& q : w.statements()) {
    const uint64_t sig = by_shape ? StatementShapeSignature(q)
                                  : StatementCostSignature(q, cat);
    std::vector<QueryId>& bucket = buckets[sig];
    QueryId found = -1;
    for (QueryId lead : bucket) {
      const bool equal = by_shape ? ShapeEquivalent(q, w[lead])
                                  : CostEquivalent(q, w[lead], cat);
      if (equal) {
        found = lead;
        break;
      }
    }
    if (found < 0) {
      bucket.push_back(q.id);
      found = q.id;
    }
    leaders[q.id] = found;
  }
  return leaders;
}

CompressedWorkload CompressWorkload(const Workload& w, const Catalog& cat,
                                    const CompressionOptions& opts) {
  Stopwatch watch;
  CompressedWorkload out;
  out.map.assign(w.size(), -1);
  out.stats.input_statements = w.size();
  for (const Query& q : w.statements()) out.stats.input_weight += q.weight;

  // --- Cluster ----------------------------------------------------------
  // clusters[i] = (representative original id, aggregated weight).
  struct Cluster {
    QueryId rep = -1;
    double weight = 0.0;
  };
  std::vector<Cluster> clusters;
  std::vector<int> cluster_of(w.size(), -1);

  const bool merge =
      opts.mode == CompressionMode::kLossless ||
      (opts.mode == CompressionMode::kLossy && opts.cluster_by_shape);
  if (merge) {
    const std::vector<QueryId> leaders =
        ClusterLeaders(w, cat, /*by_shape=*/opts.mode == CompressionMode::kLossy);
    std::vector<int> cluster_of_leader(w.size(), -1);
    for (const Query& q : w.statements()) {
      const QueryId lead = leaders[q.id];
      int ci = cluster_of_leader[lead];
      if (ci < 0) {
        ci = static_cast<int>(clusters.size());
        cluster_of_leader[lead] = ci;
        clusters.push_back({lead, 0.0});
      }
      clusters[ci].weight += q.weight;
      cluster_of[q.id] = ci;
    }
  } else {
    clusters.reserve(w.size());
    for (const Query& q : w.statements()) {
      cluster_of[q.id] = static_cast<int>(clusters.size());
      clusters.push_back({q.id, q.weight});
    }
  }

  // --- Sample (lossy only) ---------------------------------------------
  std::vector<uint8_t> kept(clusters.size(), 1);
  double weight_scale = 1.0;
  if (opts.mode == CompressionMode::kLossy && opts.max_statements > 0 &&
      static_cast<int>(clusters.size()) > opts.max_statements) {
    // Deterministic partial Fisher–Yates over cluster indices.
    Rng rng(opts.seed);
    std::vector<int> order(clusters.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    const int k = opts.max_statements;
    for (int i = 0; i < k; ++i) {
      std::swap(order[i], order[i + rng.Uniform(order.size() - i)]);
    }
    kept.assign(clusters.size(), 0);
    double kept_weight = 0.0;
    for (int i = 0; i < k; ++i) {
      kept[order[i]] = 1;
      kept_weight += clusters[order[i]].weight;
    }
    // Rescale so the sample stands in for the full workload's weight
    // mass (unbiased objective estimate).
    weight_scale = kept_weight > 0 ? out.stats.input_weight / kept_weight : 1.0;
  }

  // --- Emit representatives in first-occurrence order -------------------
  std::vector<QueryId> compressed_id(clusters.size(), -1);
  for (const Query& q : w.statements()) {
    const int ci = cluster_of[q.id];
    if (!kept[ci]) continue;
    if (compressed_id[ci] < 0 && clusters[ci].rep == q.id) {
      Query rep = q;  // keeps predicates/constants of the representative
      rep.weight = clusters[ci].weight * weight_scale;
      compressed_id[ci] = out.workload.Add(std::move(rep));
      out.representative_of.push_back(q.id);
      out.stats.output_weight += out.workload[compressed_id[ci]].weight;
    }
    out.map[q.id] = compressed_id[ci];
  }

  out.stats.output_statements = out.workload.size();
  out.stats.lossless = opts.mode != CompressionMode::kLossy;
  out.stats.seconds = watch.Elapsed();
  return out;
}

ShardRouter::ShardRouter(int num_shards)
    : num_shards_(num_shards < 1 ? 1 : num_shards) {}

ShardRouter::Route ShardRouter::Insert(const Query& q, const Catalog& cat,
                                       const ExemplarFn& exemplar) {
  const uint64_t sig = StatementCostSignature(q, cat);
  std::vector<Entry>& bucket = buckets_[sig];
  for (const Entry& e : bucket) {
    if (CostEquivalent(q, exemplar(e.cls), cat)) {
      return {e.cls, e.shard, /*is_new=*/false};
    }
  }
  Entry e;
  e.cls = next_class_++;
  e.shard = next_shard_;
  next_shard_ = (next_shard_ + 1) % num_shards_;
  bucket.push_back(e);
  return {e.cls, e.shard, /*is_new=*/true};
}

bool ShardRouter::Erase(const Query& q, const Catalog& cat, int cls) {
  // The signature must be recomputed from the *exemplar* (the statement
  // that opened the class): signatures are weight-blind, so any later
  // member — decayed or not — hashes identically, but handing a
  // non-member here would silently leave the real entry behind.
  const uint64_t sig = StatementCostSignature(q, cat);
  auto it = buckets_.find(sig);
  if (it == buckets_.end()) return false;
  std::vector<Entry>& bucket = it->second;
  bool erased = false;
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i].cls == cls) {
      bucket.erase(bucket.begin() + i);
      erased = true;
      break;
    }
  }
  if (bucket.empty()) buckets_.erase(it);
  return erased;
}

}  // namespace cophy
