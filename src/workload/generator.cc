#include "workload/generator.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace cophy {

namespace {

/// Cached column handles for the TPC-H schema.
struct Schema {
  const Catalog& cat;
  TableId region, nation, supplier, customer, part, partsupp, orders, lineitem;

  explicit Schema(const Catalog& c) : cat(c) {
    region = c.FindTable("region");
    nation = c.FindTable("nation");
    supplier = c.FindTable("supplier");
    customer = c.FindTable("customer");
    part = c.FindTable("part");
    partsupp = c.FindTable("partsupp");
    orders = c.FindTable("orders");
    lineitem = c.FindTable("lineitem");
    COPHY_CHECK(lineitem != kInvalidTable);
  }
  ColumnId col(TableId t, const char* name) const {
    const ColumnId c = cat.FindColumn(t, name);
    COPHY_CHECK(c != kInvalidColumn);
    return c;
  }
};

Predicate Eq(ColumnId c, double quantile) {
  Predicate p;
  p.column = c;
  p.op = Predicate::Op::kEq;
  p.quantile = quantile;
  return p;
}

Predicate Range(ColumnId c, double quantile, double width) {
  Predicate p;
  p.column = c;
  p.op = Predicate::Op::kRange;
  p.quantile = quantile;
  p.width = width;
  return p;
}

OutputExpr Out(ColumnId c) { return OutputExpr{AggFunc::kNone, c}; }
OutputExpr Agg(AggFunc f, ColumnId c) { return OutputExpr{f, c}; }

/// The 15 homogeneous templates (TPC-H-like shapes over our AST).
Query HomTemplate(const Schema& s, int t, Rng& rng) {
  Query q;
  const double u0 = rng.NextDouble();
  const double u1 = rng.NextDouble();
  switch (t) {
    case 0: {  // Q1: big scan + group on lineitem
      q.tables = {s.lineitem};
      q.predicates = {Range(s.col(s.lineitem, "l_shipdate"), u0 * 0.05, 0.9)};
      q.group_by = {s.col(s.lineitem, "l_returnflag"),
                    s.col(s.lineitem, "l_linestatus")};
      q.outputs = {Out(q.group_by[0]), Out(q.group_by[1]),
                   Agg(AggFunc::kSum, s.col(s.lineitem, "l_quantity")),
                   Agg(AggFunc::kSum, s.col(s.lineitem, "l_extendedprice")),
                   Agg(AggFunc::kAvg, s.col(s.lineitem, "l_discount")),
                   Agg(AggFunc::kCount, kInvalidColumn)};
      q.order_by = q.group_by;
      break;
    }
    case 1: {  // Q3: shipping priority
      q.tables = {s.customer, s.orders, s.lineitem};
      q.joins = {{s.col(s.customer, "c_custkey"), s.col(s.orders, "o_custkey")},
                 {s.col(s.orders, "o_orderkey"),
                  s.col(s.lineitem, "l_orderkey")}};
      q.predicates = {Eq(s.col(s.customer, "c_mktsegment"), u0),
                      Range(s.col(s.orders, "o_orderdate"), u1 * 0.4, 0.45)};
      q.group_by = {s.col(s.lineitem, "l_orderkey")};
      q.outputs = {Out(q.group_by[0]),
                   Agg(AggFunc::kSum, s.col(s.lineitem, "l_extendedprice"))};
      break;
    }
    case 2: {  // Q4: order priority checking
      q.tables = {s.orders, s.lineitem};
      q.joins = {{s.col(s.orders, "o_orderkey"), s.col(s.lineitem, "l_orderkey")}};
      q.predicates = {Range(s.col(s.orders, "o_orderdate"), u0 * 0.9, 0.04)};
      q.group_by = {s.col(s.orders, "o_orderpriority")};
      q.outputs = {Out(q.group_by[0]), Agg(AggFunc::kCount, kInvalidColumn)};
      q.order_by = q.group_by;
      break;
    }
    case 3: {  // Q5: local supplier volume (5-way join)
      q.tables = {s.customer, s.orders, s.lineitem, s.supplier, s.nation};
      q.joins = {{s.col(s.customer, "c_custkey"), s.col(s.orders, "o_custkey")},
                 {s.col(s.orders, "o_orderkey"), s.col(s.lineitem, "l_orderkey")},
                 {s.col(s.lineitem, "l_suppkey"), s.col(s.supplier, "s_suppkey")},
                 {s.col(s.supplier, "s_nationkey"), s.col(s.nation, "n_nationkey")}};
      q.predicates = {Eq(s.col(s.nation, "n_regionkey"), u0),
                      Range(s.col(s.orders, "o_orderdate"), u1 * 0.8, 0.15)};
      q.group_by = {s.col(s.nation, "n_name")};
      q.outputs = {Out(q.group_by[0]),
                   Agg(AggFunc::kSum, s.col(s.lineitem, "l_extendedprice"))};
      break;
    }
    case 4: {  // Q6: forecasting revenue change
      q.tables = {s.lineitem};
      q.predicates = {Range(s.col(s.lineitem, "l_shipdate"), u0 * 0.8, 0.15),
                      Range(s.col(s.lineitem, "l_discount"), u1 * 0.5, 0.2),
                      Range(s.col(s.lineitem, "l_quantity"), 0.0, 0.48)};
      q.outputs = {Agg(AggFunc::kSum, s.col(s.lineitem, "l_extendedprice"))};
      break;
    }
    case 5: {  // Q10: returned items
      q.tables = {s.customer, s.orders, s.lineitem};
      q.joins = {{s.col(s.customer, "c_custkey"), s.col(s.orders, "o_custkey")},
                 {s.col(s.orders, "o_orderkey"), s.col(s.lineitem, "l_orderkey")}};
      q.predicates = {Range(s.col(s.orders, "o_orderdate"), u0 * 0.9, 0.08),
                      Eq(s.col(s.lineitem, "l_returnflag"), u1)};
      q.group_by = {s.col(s.customer, "c_custkey")};
      q.outputs = {Out(q.group_by[0]),
                   Agg(AggFunc::kSum, s.col(s.lineitem, "l_extendedprice"))};
      break;
    }
    case 6: {  // Q12: shipping modes
      q.tables = {s.orders, s.lineitem};
      q.joins = {{s.col(s.orders, "o_orderkey"), s.col(s.lineitem, "l_orderkey")}};
      q.predicates = {Eq(s.col(s.lineitem, "l_shipmode"), u0),
                      Range(s.col(s.lineitem, "l_receiptdate"), u1 * 0.9, 0.08)};
      q.group_by = {s.col(s.lineitem, "l_shipmode")};
      q.outputs = {Out(q.group_by[0]), Agg(AggFunc::kCount, kInvalidColumn)};
      break;
    }
    case 7: {  // Q14: promotion effect
      q.tables = {s.lineitem, s.part};
      q.joins = {{s.col(s.lineitem, "l_partkey"), s.col(s.part, "p_partkey")}};
      q.predicates = {Range(s.col(s.lineitem, "l_shipdate"), u0 * 0.95, 0.03)};
      q.outputs = {Agg(AggFunc::kSum, s.col(s.lineitem, "l_extendedprice"))};
      break;
    }
    case 8: {  // Q11: important stock
      q.tables = {s.partsupp, s.supplier, s.nation};
      q.joins = {{s.col(s.partsupp, "ps_suppkey"), s.col(s.supplier, "s_suppkey")},
                 {s.col(s.supplier, "s_nationkey"), s.col(s.nation, "n_nationkey")}};
      q.predicates = {Eq(s.col(s.nation, "n_nationkey"), u0)};
      q.group_by = {s.col(s.partsupp, "ps_partkey")};
      q.outputs = {Out(q.group_by[0]),
                   Agg(AggFunc::kSum, s.col(s.partsupp, "ps_supplycost"))};
      break;
    }
    case 9: {  // Q16: part/supplier relationship
      q.tables = {s.partsupp, s.part};
      q.joins = {{s.col(s.partsupp, "ps_partkey"), s.col(s.part, "p_partkey")}};
      q.predicates = {Eq(s.col(s.part, "p_brand"), u0),
                      Range(s.col(s.part, "p_size"), u1 * 0.5, 0.2)};
      q.group_by = {s.col(s.part, "p_type")};
      q.outputs = {Out(q.group_by[0]), Agg(AggFunc::kCount, kInvalidColumn)};
      break;
    }
    case 10: {  // Q19: discounted revenue
      q.tables = {s.lineitem, s.part};
      q.joins = {{s.col(s.lineitem, "l_partkey"), s.col(s.part, "p_partkey")}};
      q.predicates = {Eq(s.col(s.part, "p_brand"), u0),
                      Eq(s.col(s.part, "p_container"), u1),
                      Range(s.col(s.lineitem, "l_quantity"), 0.1, 0.25)};
      q.outputs = {Agg(AggFunc::kSum, s.col(s.lineitem, "l_extendedprice"))};
      break;
    }
    case 11: {  // Q8-like: national market share (5-way)
      q.tables = {s.part, s.lineitem, s.supplier, s.orders, s.nation};
      q.joins = {{s.col(s.part, "p_partkey"), s.col(s.lineitem, "l_partkey")},
                 {s.col(s.lineitem, "l_suppkey"), s.col(s.supplier, "s_suppkey")},
                 {s.col(s.lineitem, "l_orderkey"), s.col(s.orders, "o_orderkey")},
                 {s.col(s.supplier, "s_nationkey"), s.col(s.nation, "n_nationkey")}};
      q.predicates = {Eq(s.col(s.part, "p_type"), u0),
                      Range(s.col(s.orders, "o_orderdate"), u1 * 0.5, 0.3)};
      q.outputs = {Agg(AggFunc::kSum, s.col(s.lineitem, "l_extendedprice"))};
      break;
    }
    case 12: {  // Q15-like: top supplier
      q.tables = {s.lineitem, s.supplier};
      q.joins = {{s.col(s.lineitem, "l_suppkey"), s.col(s.supplier, "s_suppkey")}};
      q.predicates = {Range(s.col(s.lineitem, "l_shipdate"), u0 * 0.9, 0.08)};
      q.group_by = {s.col(s.lineitem, "l_suppkey")};
      q.outputs = {Out(q.group_by[0]),
                   Agg(AggFunc::kSum, s.col(s.lineitem, "l_extendedprice"))};
      break;
    }
    case 13: {  // order lookup by customer + date
      q.tables = {s.orders};
      q.predicates = {Eq(s.col(s.orders, "o_custkey"), u0),
                      Range(s.col(s.orders, "o_orderdate"), u1 * 0.7, 0.2)};
      q.outputs = {Out(s.col(s.orders, "o_orderkey")),
                   Out(s.col(s.orders, "o_totalprice"))};
      q.order_by = {s.col(s.orders, "o_orderdate")};
      break;
    }
    case 14: {  // Q17-like: small-quantity-order revenue
      q.tables = {s.lineitem, s.part};
      q.joins = {{s.col(s.lineitem, "l_partkey"), s.col(s.part, "p_partkey")}};
      q.predicates = {Eq(s.col(s.part, "p_brand"), u0),
                      Eq(s.col(s.part, "p_container"), u1)};
      q.outputs = {Agg(AggFunc::kAvg, s.col(s.lineitem, "l_quantity"))};
      break;
    }
    default:
      COPHY_CHECK(false);
  }
  return q;
}

/// Update templates for mixed workloads.
Query UpdateTemplate(const Schema& s, int t, Rng& rng) {
  Query q;
  q.kind = StatementKind::kUpdate;
  const double u0 = rng.NextDouble();
  switch (t % 3) {
    case 0: {  // point-ish update of a customer's balance
      q.update_table = s.customer;
      q.tables = {s.customer};
      q.predicates = {Eq(s.col(s.customer, "c_custkey"), u0)};
      q.set_columns = {s.col(s.customer, "c_acctbal")};
      break;
    }
    case 1: {  // reprice lineitems of one order
      q.update_table = s.lineitem;
      q.tables = {s.lineitem};
      q.predicates = {Eq(s.col(s.lineitem, "l_orderkey"), u0)};
      q.set_columns = {s.col(s.lineitem, "l_extendedprice"),
                       s.col(s.lineitem, "l_discount")};
      break;
    }
    default: {  // close a narrow band of orders
      q.update_table = s.orders;
      q.tables = {s.orders};
      q.predicates = {Range(s.col(s.orders, "o_orderdate"), u0 * 0.95, 0.002)};
      q.set_columns = {s.col(s.orders, "o_orderstatus")};
      break;
    }
  }
  return q;
}

double DrawWeight(const WorkloadOptions& opts, Rng& rng) {
  if (!opts.randomize_weights) return 1.0;
  return 1.0 + static_cast<double>(rng.Uniform(3));
}

}  // namespace

int NumHomogeneousTemplates() { return 15; }

Query MakeHomogeneousStatement(const Catalog& cat, int t, uint64_t seed) {
  Schema s(cat);
  Rng rng(seed);
  return HomTemplate(s, t, rng);
}

Workload MakeHomogeneousWorkload(const Catalog& cat,
                                 const WorkloadOptions& opts) {
  Schema s(cat);
  Rng rng(opts.seed);
  Workload w;
  for (int i = 0; i < opts.num_statements; ++i) {
    if (rng.Bernoulli(opts.update_fraction)) {
      Query q = UpdateTemplate(s, static_cast<int>(rng.Uniform(3)), rng);
      q.weight = DrawWeight(opts, rng);
      w.Add(std::move(q));
      continue;
    }
    Query q = HomTemplate(s, static_cast<int>(rng.Uniform(15)), rng);
    q.weight = DrawWeight(opts, rng);
    w.Add(std::move(q));
  }
  return w;
}

Workload MakeHeterogeneousWorkload(const Catalog& cat,
                                   const WorkloadOptions& opts) {
  Schema s(cat);
  Rng rng(opts.seed ^ 0x9e3779b9ULL);
  Workload w;

  // FK-style join edges of the schema graph.
  struct Edge {
    TableId a, b;
    const char *ca, *cb;
  };
  const std::vector<Edge> edges = {
      {s.customer, s.orders, "c_custkey", "o_custkey"},
      {s.orders, s.lineitem, "o_orderkey", "l_orderkey"},
      {s.part, s.lineitem, "p_partkey", "l_partkey"},
      {s.supplier, s.lineitem, "s_suppkey", "l_suppkey"},
      {s.part, s.partsupp, "p_partkey", "ps_partkey"},
      {s.supplier, s.partsupp, "s_suppkey", "ps_suppkey"},
      {s.nation, s.customer, "n_nationkey", "c_nationkey"},
      {s.nation, s.supplier, "n_nationkey", "s_nationkey"},
      {s.region, s.nation, "r_regionkey", "n_regionkey"},
  };

  for (int i = 0; i < opts.num_statements; ++i) {
    if (rng.Bernoulli(opts.update_fraction)) {
      Query q = UpdateTemplate(s, static_cast<int>(rng.Uniform(3)), rng);
      q.weight = DrawWeight(opts, rng);
      w.Add(std::move(q));
      continue;
    }
    Query q;
    // Grow a connected table set from a random seed table.
    const int target_tables = 1 + static_cast<int>(rng.Uniform(4));  // 1..4
    q.tables = {static_cast<TableId>(rng.Uniform(cat.num_tables()))};
    int guard = 0;
    while (static_cast<int>(q.tables.size()) < target_tables && guard++ < 32) {
      const Edge& e = edges[rng.Uniform(edges.size())];
      const bool has_a = q.References(e.a), has_b = q.References(e.b);
      if (has_a == has_b) continue;  // need exactly one endpoint present
      const TableId added = has_a ? e.b : e.a;
      q.tables.push_back(added);
      q.joins.push_back({s.col(e.a, e.ca), s.col(e.b, e.cb)});
    }

    // Random sargable predicates on random columns of referenced tables.
    const int npreds = 1 + static_cast<int>(rng.Uniform(3));
    for (int p = 0; p < npreds; ++p) {
      const TableId t = q.tables[rng.Uniform(q.tables.size())];
      const Table& tab = cat.table(t);
      const ColumnId c = tab.columns[rng.Uniform(tab.columns.size())];
      if (rng.Bernoulli(0.5)) {
        q.predicates.push_back(Eq(c, rng.NextDouble()));
      } else {
        q.predicates.push_back(
            Range(c, rng.NextDouble() * 0.8, 0.01 + rng.NextDouble() * 0.2));
      }
    }

    // Outputs / aggregation.
    const TableId ot = q.tables[rng.Uniform(q.tables.size())];
    const Table& otab = cat.table(ot);
    const ColumnId oc = otab.columns[rng.Uniform(otab.columns.size())];
    if (rng.Bernoulli(0.45)) {
      // Aggregate, possibly grouped.
      if (rng.Bernoulli(0.7)) {
        const TableId gt = q.tables[rng.Uniform(q.tables.size())];
        const Table& gtab = cat.table(gt);
        q.group_by = {gtab.columns[rng.Uniform(gtab.columns.size())]};
        if (rng.Bernoulli(0.3) && gtab.columns.size() > 1) {
          ColumnId g2 = gtab.columns[rng.Uniform(gtab.columns.size())];
          if (g2 != q.group_by[0]) q.group_by.push_back(g2);
        }
        for (ColumnId g : q.group_by) q.outputs.push_back(Out(g));
      }
      q.outputs.push_back(Agg(rng.Bernoulli(0.5) ? AggFunc::kSum : AggFunc::kCount, oc));
    } else {
      q.outputs.push_back(Out(oc));
      if (rng.Bernoulli(0.35)) {
        q.order_by = {oc};
      }
    }
    q.weight = DrawWeight(opts, rng);
    w.Add(std::move(q));
  }
  return w;
}

}  // namespace cophy
