// Workload generators mirroring the paper's two synthetic workloads:
//   W_hom — instances of 15 TPC-H-like query templates (qgen-style):
//           few distinct shapes, many instances; favors advisors with
//           workload compression.
//   W_het — random SPJ queries with group-by/aggregation over random
//           table subsets (the index-tuning benchmark's C2 suite
//           style): hundreds of distinct shapes; compression-hostile.
// Both are deterministic in the seed.
#ifndef COPHY_WORKLOAD_GENERATOR_H_
#define COPHY_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "query/query.h"

namespace cophy {

/// Generation knobs.
struct WorkloadOptions {
  int num_statements = 100;
  uint64_t seed = 1;
  /// Fraction of UPDATE statements mixed in (the paper's W contains
  /// SELECT and UPDATE statements; the headline experiments use
  /// read-only workloads, update-cost experiments use > 0).
  double update_fraction = 0.0;
  /// If true, statement weights f_q are drawn from {1, 2, 3}
  /// (frequency-style); otherwise all weights are 1.
  bool randomize_weights = false;
};

/// The homogeneous workload W_hom (15 templates).
Workload MakeHomogeneousWorkload(const Catalog& cat,
                                 const WorkloadOptions& opts);

/// The heterogeneous workload W_het (random SPJ + aggregation).
Workload MakeHeterogeneousWorkload(const Catalog& cat,
                                   const WorkloadOptions& opts);

/// Number of distinct SELECT templates in the homogeneous generator.
int NumHomogeneousTemplates();

/// A single statement from homogeneous template `t` (0-based; used by
/// tests to pin down per-template behaviour).
Query MakeHomogeneousStatement(const Catalog& cat, int t, uint64_t seed);

}  // namespace cophy

#endif  // COPHY_WORKLOAD_GENERATOR_H_
