// Workload compression, the first stage of the advisor pipeline
// (Compress → CGen → INUM → BIPGen → Solve; see docs/architecture.md).
//
// Two notions of statement equivalence drive it:
//
//  * Cost equivalence (lossless): two statements are merged only when
//    every quantity the what-if optimizer can observe about them is
//    bit-identical — same tables/joins/outputs/grouping/ordering, and
//    the same (column, op, selectivity) digest per predicate, where the
//    selectivity comes from the catalog statistics. Merged statements
//    have identical template plans, γ tables, candidate sets, and
//    update costs, so replacing N instances by one representative with
//    weight Σ f_q leaves the tuning BIP's objective and feasible set
//    unchanged. On W_hom-style workloads (few templates, many
//    instances) this is the paper's "large workload" lever.
//
//  * Shape equivalence (lossy): constants/selectivities are ignored, so
//    instances of one query template land in one cluster even under
//    skewed statistics. The representative's weight is the cluster's
//    total weight; costs are approximated by the representative's.
//
// Lossy mode may additionally cap the output by weight-rescaled random
// sampling (the Tool-B-style compression of Zilio et al., now shared by
// GreedyAdvisor): k statements are kept and every kept weight is scaled
// by (total input weight) / (total kept weight), which keeps the
// compressed objective an unbiased estimate of the true one.
#ifndef COPHY_WORKLOAD_COMPRESSOR_H_
#define COPHY_WORKLOAD_COMPRESSOR_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"

namespace cophy {

/// How aggressively to compress.
enum class CompressionMode {
  kNone,      ///< pass-through (identity mapping, stats still filled)
  kLossless,  ///< merge cost-equivalent statements only
  kLossy,     ///< shape clustering and/or sampling
};

struct CompressionOptions {
  CompressionMode mode = CompressionMode::kLossless;
  /// kLossy: merge statements that differ only in constants.
  bool cluster_by_shape = true;
  /// kLossy: cap on output statements (<= 0 = uncapped). Applied after
  /// clustering by deterministic weight-rescaled random sampling.
  int max_statements = 0;
  /// Sampling seed (kLossy with max_statements > 0).
  uint64_t seed = 1;
};

/// What the compressor did (threaded into Recommendation/reports).
struct CompressionStats {
  int input_statements = 0;
  int output_statements = 0;
  double input_weight = 0.0;   ///< Σ f_q before
  double output_weight = 0.0;  ///< Σ f_q after (== before unless sampled)
  bool lossless = true;        ///< true for kNone/kLossless
  double seconds = 0.0;
  double Ratio() const {
    return output_statements > 0
               ? static_cast<double>(input_statements) / output_statements
               : 1.0;
  }
  /// Aggregates another view's accounting (per-shard stats merge).
  CompressionStats& operator+=(const CompressionStats& o) {
    input_statements += o.input_statements;
    output_statements += o.output_statements;
    input_weight += o.input_weight;
    output_weight += o.output_weight;
    lossless = lossless && o.lossless;
    seconds += o.seconds;
    return *this;
  }
};

/// A compressed workload plus the statement mapping. Representative
/// statements keep their original first-occurrence order, so candidate
/// generation and BIP layout are deterministic.
struct CompressedWorkload {
  Workload workload;  ///< representatives with aggregated weights
  /// compressed id -> the original id of the representative statement.
  std::vector<QueryId> representative_of;
  /// original id -> compressed id, or -1 if the statement was dropped
  /// by lossy sampling.
  std::vector<QueryId> map;
  CompressionStats stats;
};

/// 64-bit digest of everything the cost model observes about `q`
/// (catalog selectivities included). Equal signatures are a fast
/// necessary condition for cost equivalence; CompressWorkload always
/// confirms with CostEquivalent before merging.
uint64_t StatementCostSignature(const Query& q, const Catalog& cat);

/// Digest of the statement's shape only (constants ignored).
uint64_t StatementShapeSignature(const Query& q);

/// Exact comparator behind lossless merging: true iff the optimizer's
/// cost functions cannot distinguish `a` from `b` (weights excluded).
bool CostEquivalent(const Query& a, const Query& b, const Catalog& cat);

/// Exact comparator behind shape clustering.
bool ShapeEquivalent(const Query& a, const Query& b);

/// leaders[q] = id of the first statement equivalent to q (== q for
/// first occurrences). `by_shape` picks shape vs cost equivalence.
/// Signature buckets confirmed by the exact comparator, so a hash
/// collision can never alias two distinct statements. This single
/// helper backs both CompressWorkload's clustering and Inum's
/// template-sharing groups — keeping them byte-for-byte in agreement
/// is what makes the compressed/uncompressed BIPs bit-identical.
std::vector<QueryId> ClusterLeaders(const Workload& w, const Catalog& cat,
                                    bool by_shape);

/// Compresses `w` per `opts`. Deterministic in (w, opts).
CompressedWorkload CompressWorkload(const Workload& w, const Catalog& cat,
                                    const CompressionOptions& opts);

/// Routes a live statement stream onto workload shards by
/// cost-equivalence class: every statement of a class lands on the
/// shard of the class's first-seen member (its leader), so per-shard
/// lossless merging sees whole classes and the union of the per-shard
/// compressed views reproduces the global lossless compression exactly
/// (the foundation of AdvisorSession's shard-invariance guarantee).
/// New classes are assigned round-robin in first-occurrence order —
/// deterministic in (arrival order, shard count) and asymptotically
/// balanced on class-uniform streams. Signature buckets are confirmed
/// with the exact CostEquivalent comparator, like ClusterLeaders, so a
/// hash collision can never alias two distinct classes.
class ShardRouter {
 public:
  explicit ShardRouter(int num_shards);

  struct Route {
    int cls = -1;         ///< dense, session-stable class id (never reused)
    int shard = 0;        ///< owning shard
    bool is_new = false;  ///< the statement opened a new class
  };

  /// Resolves a class id to its exemplar statement (the equivalence
  /// authority). The caller owns the exemplars — the router stores only
  /// ids, so each class's Query lives in exactly one place.
  using ExemplarFn = std::function<const Query&(int cls)>;

  /// The routing of q's cost-equivalence class, opening a new class
  /// when q matches none seen so far.
  Route Insert(const Query& q, const Catalog& cat, const ExemplarFn& exemplar);

  /// Forgets class `cls` (its last member left the session; `q` is its
  /// exemplar). A later arrival of an equivalent statement opens a
  /// fresh class with a new id, exactly as a cold run over the
  /// surviving stream would. Returns false when the class was not in
  /// its signature bucket — a routing-table corruption the caller
  /// should treat as a logic error: a stale entry left behind would
  /// silently glue a future equivalent arrival onto the dead class id.
  bool Erase(const Query& q, const Catalog& cat, int cls);

  int num_shards() const { return num_shards_; }
  /// Classes ever opened (dead classes keep their ids).
  int num_classes() const { return next_class_; }

 private:
  struct Entry {
    int cls = -1;
    int shard = 0;
  };
  int num_shards_;
  int next_class_ = 0;
  int next_shard_ = 0;
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
};

}  // namespace cophy

#endif  // COPHY_WORKLOAD_COMPRESSOR_H_
