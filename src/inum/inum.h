// INUM (Papadomanolakis, Dash, Ailamaki, VLDB'07): the fast what-if
// layer. Prepare() pays a few what-if optimizations per statement to
// cache template plans (β_qk) and the per-slot access-cost tables
// (γ_qkia); afterwards Cost(q, X) is a pure table-lookup min — orders of
// magnitude cheaper than a what-if call. CoPhy's BIPGen reads these
// caches directly (they ARE the BIP coefficients of Theorem 1).
//
// Prepare talks to the DBMS through the fallible WhatIfOptimizer
// boundary and returns Status: backend errors flow out instead of
// aborting, and an optional deadline turns a hung backend into
// kTimeout. A successful Prepare caches *everything* the advisor needs
// (including update costs), so the read-side accessors below never
// touch the backend again — post-Prepare costing cannot fail.
#ifndef COPHY_INUM_INUM_H_
#define COPHY_INUM_INUM_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "optimizer/whatif.h"
#include "query/query.h"

namespace cophy {

class InumPlanCache;  // inum/shared_cache.h

/// One γ-table entry: an access path and its cost for (query, slot,
/// order). kInvalidIndex denotes the base path I∅.
struct SlotAccess {
  IndexId index = kInvalidIndex;
  double gamma = 0.0;
};

/// The per-statement INUM cache.
struct QueryCache {
  QueryId qid = -1;
  double weight = 1.0;
  bool is_update = false;
  /// Distinct interesting orders per slot (order 0 is always "none").
  std::vector<std::vector<OrderSpec>> slot_orders;
  /// Template plans: β plus, per slot, the index into `slot_orders`.
  struct Template {
    double beta = 0.0;
    std::vector<int> order_idx;  // one per slot
  };
  std::vector<Template> templates;
  /// access[slot][order_idx] = candidate paths sorted by γ ascending.
  /// Contains the base path I∅ plus every candidate that beats it
  /// (paths costlier than I∅ can never be chosen by the min and are
  /// dropped losslessly; see DESIGN.md).
  std::vector<std::vector<std::vector<SlotAccess>>> access;
  /// Number of γ entries before the domination pruning (the x-variable
  /// count a naive BIP materialization would have).
  int64_t raw_gamma_entries = 0;
  /// The paper's c_q (0 for SELECTs), cached at Prepare time.
  double base_update_cost = 0.0;
  /// Cached nonzero ucost(a, q) per candidate (empty for SELECTs).
  std::unordered_map<IndexId, double> update_costs;
};

/// Preparation knobs. Prepare's output is a pure function of
/// (workload, candidates): it is bit-identical for every thread count
/// and whether or not template sharing is on.
struct InumOptions {
  /// Worker threads for Prepare/AddCandidates (<= 0: hardware count).
  int num_threads = 1;
  /// Compute template plans and γ tables once per group of
  /// cost-equivalent statements (StatementCostSignature) and clone the
  /// cache for the rest — the W_hom redundancy INUM time is dominated
  /// by. Lossless by construction.
  bool share_templates = true;
  /// External worker pool (not owned; overrides num_threads). Sharded
  /// sessions pass one shared pool to every shard's Inum: preparation
  /// fans out across shards on it, and the nested per-statement loops
  /// run inline on whichever worker owns the shard.
  ThreadPool* workers = nullptr;
  /// Wall-clock budget for one Prepare/AddCandidates run; exceeding it
  /// surfaces as kTimeout (a hung backend cannot stall Prepare forever).
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// Cross-session plan cache (not owned; may be shared by many Inum
  /// instances on different threads). When set, template plans and γ
  /// tables are looked up / published by cost-equivalence signature so
  /// overlapping tenants skip what-if preparation; reused entries are
  /// bit-identical to a local rebuild (see inum/shared_cache.h for the
  /// exact contract). nullptr = today's self-contained behavior.
  InumPlanCache* plan_cache = nullptr;
};

/// The INUM module. Holds the caches for one workload + candidate set.
class Inum {
 public:
  explicit Inum(WhatIfOptimizer* whatif, InumOptions options = {});

  /// Builds caches for all statements of `w` against candidate set
  /// `candidates` (ids into the backend's pool). This is the "INUM
  /// time" component of the paper's figures. Statements are prepared in
  /// parallel per InumOptions; the result is thread-count independent.
  /// On error the first failing statement's Status is returned (lowest
  /// statement id wins, independent of scheduling) and the caches must
  /// be treated as unusable until a Prepare succeeds.
  Status Prepare(const Workload& w, const std::vector<IndexId>& candidates);

  /// Adds candidates incrementally (interactive tuning): only γ entries
  /// for the new indexes are computed; β templates are reused. On error
  /// the caches are inconsistent (some statements updated, some not)
  /// and the caller must fall back to a full Prepare.
  Status AddCandidates(const std::vector<IndexId>& new_candidates);

  /// Fast cost(q, X): min over templates × atomic configurations.
  /// For UPDATE statements this covers the query shell only (the BIP
  /// accounts for ucost terms separately, as in §2).
  double ShellCost(QueryId qid, const Configuration& x) const;

  /// Full statement cost including update maintenance of indexes in X —
  /// the INUM-equivalent of WhatIfOptimizer::Cost. Pure cache reads.
  double Cost(QueryId qid, const Configuration& x) const;

  /// Cached ucost(a, q) (0 unless q updates a's table and touches its
  /// columns; 0 for indexes outside the prepared candidate set).
  double UpdateCost(IndexId a, QueryId qid) const;

  /// Cached c_q: the configuration-independent update overhead.
  double BaseUpdateCost(QueryId qid) const {
    return caches_[qid].base_update_cost;
  }

  /// The indexes the statement's optimal plan under X actually uses
  /// (the arg-min access paths of the winning template; empty when the
  /// base paths win everywhere).
  std::vector<IndexId> ChosenIndexes(QueryId qid, const Configuration& x) const;

  const QueryCache& cache(QueryId qid) const { return caches_[qid]; }
  /// The statement whose cache `qid` shares (== qid for leaders).
  /// Statements with the same leader are cost-equivalent: identical
  /// templates, γ tables, and update costs — BIPGen aggregates them
  /// into one weighted query block.
  QueryId leader(QueryId qid) const { return leader_[qid]; }
  int num_statements() const { return static_cast<int>(caches_.size()); }
  const Workload& workload() const { return workload_; }
  const std::vector<IndexId>& candidates() const { return candidates_; }
  WhatIfOptimizer& whatif() const { return *whatif_; }

  /// Total template count across statements (Σ K_q).
  int64_t TotalTemplates() const;
  /// Total γ entries kept after domination pruning.
  int64_t TotalGammaEntries() const;
  /// Total γ entries before pruning (the paper-facing x count).
  int64_t TotalRawGammaEntries() const;

  /// Statements whose cache was cloned from a cost-equivalent leader
  /// instead of re-running template discovery (0 when sharing is off).
  int num_shared_statements() const { return num_shared_statements_; }
  /// The thread count Prepare actually used.
  int num_threads_used() const { return num_threads_used_; }
  const InumOptions& options() const { return options_; }

  /// Shared plan-cache traffic from this Inum (all zero when no cache is
  /// installed). Cumulative across Prepare/AddCandidates runs; relaxed
  /// atomics because leaders prepare on pool workers.
  int64_t plan_cache_template_hits() const {
    return template_hits_.load(std::memory_order_relaxed);
  }
  int64_t plan_cache_template_misses() const {
    return template_misses_.load(std::memory_order_relaxed);
  }
  int64_t plan_cache_gamma_hits() const {
    return gamma_hits_.load(std::memory_order_relaxed);
  }
  int64_t plan_cache_gamma_misses() const {
    return gamma_misses_.load(std::memory_order_relaxed);
  }

 private:
  Status BuildGammaFor(QueryCache& qc, const Query& q,
                       const std::vector<IndexId>& candidates, bool append);
  /// Caches c_q and ucost(a, q) for every candidate on q's update
  /// table. `include_base` is false on incremental candidate additions.
  Status CacheUpdateCosts(QueryCache& qc, const Query& q,
                          const std::vector<IndexId>& candidates,
                          bool include_base);
  /// Full per-statement preparation (orders, templates, γ, ucosts) for
  /// a leader.
  Status PrepareStatement(const Query& q,
                          const std::vector<IndexId>& candidates);
  /// Publishes qc's γ tables under the statement's current
  /// (signature, walk-digest) key. Requires options_.plan_cache.
  void PublishGammasFor(const QueryCache& qc, const Query& q);
  /// Copies the shareable cache parts (orders/templates/γ/ucosts) from
  /// the statement's leader, keeping its own qid/weight/is_update.
  void CloneFromLeader(QueryId qid);
  /// Groups statements by cost equivalence; fills leader_.
  void ComputeLeaders();
  ThreadPool* pool();
  bool DeadlineExpired() const {
    return prepare_sw_.Elapsed() > options_.deadline_seconds;
  }
  Status DeadlineError() const;
  /// Single traversal behind ShellCost and ChosenIndexes: the cost of
  /// the best template under `x`, optionally recording the winning
  /// template's arg-min index picks into `chosen`.
  double BestTemplate(const QueryCache& qc, const Configuration& x,
                      std::vector<IndexId>* chosen) const;

  WhatIfOptimizer* whatif_;
  InumOptions options_;
  Workload workload_;
  std::vector<IndexId> candidates_;
  std::vector<QueryCache> caches_;
  /// leader_[q] == q for leaders; otherwise the id of the earlier,
  /// cost-equivalent statement whose cache q shares.
  std::vector<QueryId> leader_;
  std::unique_ptr<ThreadPool> thread_pool_;  // lazily created
  Stopwatch prepare_sw_;  ///< reset at each Prepare/AddCandidates entry
  int num_shared_statements_ = 0;
  int num_threads_used_ = 1;

  /// Per-leader plan-cache keys (meaningful when plan_cache is set):
  /// the statement's cost signature and the chained candidate-walk
  /// digest of its γ tables (advanced by each AddCandidates).
  std::vector<uint64_t> signatures_;
  std::vector<uint64_t> gamma_digests_;
  std::atomic<int64_t> template_hits_{0};
  std::atomic<int64_t> template_misses_{0};
  std::atomic<int64_t> gamma_hits_{0};
  std::atomic<int64_t> gamma_misses_{0};
};

}  // namespace cophy

#endif  // COPHY_INUM_INUM_H_
