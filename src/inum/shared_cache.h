// The cross-session INUM plan-cache boundary. A service hosting many
// advisor sessions installs an InumPlanCache (see
// service/plan_cache.h); each session's Inum then publishes the
// expensive Prepare products — template plans (β) and γ access-cost
// tables — keyed by the statement's cost-equivalence signature from
// workload/compressor, and any tenant whose statement falls in the same
// equivalence class reuses them without touching the what-if optimizer.
//
// Correctness contract (what makes reuse bit-identical, not just
// approximately right):
//
//  * Template entries are keyed by StatementCostSignature alone. Every
//    entry carries the statement that populated it, and readers confirm
//    with the exact CostEquivalent comparator before reuse — a 64-bit
//    collision degrades to a miss, never to a wrong plan. Cost-
//    equivalent statements have identical SlotOrderCandidates and
//    EnumerateTemplates results by definition, so the copied templates
//    are byte-for-byte what the reader would have computed.
//
//  * γ entries additionally fold the *candidate walk history* into the
//    key: the ordered ids (and definitions) of the pool candidates
//    relevant to the statement, chained across the initial Prepare and
//    every incremental AddCandidates. Two sessions hit the same γ entry
//    only when they walked the same candidates in the same order, which
//    pins tie order inside the sorted per-(slot, order) lists — the
//    copied tables are bit-identical to a local rebuild, so the BIP and
//    the recommendation downstream are too. Sessions sharing one
//    IndexPool (the service arrangement) satisfy this on overlapping
//    workloads by construction.
//
// Entries are immutable once published (shared_ptr<const>, first writer
// wins), so readers never synchronize beyond the lookup itself.
#ifndef COPHY_INUM_SHARED_CACHE_H_
#define COPHY_INUM_SHARED_CACHE_H_

#include <cstdint>
#include <memory>

#include "index/index.h"
#include "inum/inum.h"
#include "query/query.h"

namespace cophy {

/// The template-phase product of one PrepareStatement: everything that
/// depends only on the statement's cost-equivalence class.
struct SharedTemplateEntry {
  /// The statement that populated the entry; readers confirm exact cost
  /// equivalence against it before reuse.
  Query statement;
  std::vector<std::vector<OrderSpec>> slot_orders;
  std::vector<QueryCache::Template> templates;
};

/// The γ-phase product: access tables plus update-cost caches, valid
/// for the (equivalence class, candidate walk) pair in the key.
struct SharedGammaEntry {
  Query statement;
  std::vector<std::vector<std::vector<SlotAccess>>> access;
  int64_t raw_gamma_entries = 0;
  double base_update_cost = 0.0;
  std::unordered_map<IndexId, double> update_costs;
};

/// Monotonic accounting, snapshotable while tenants are preparing.
struct PlanCacheStats {
  int64_t template_hits = 0;
  int64_t template_misses = 0;
  int64_t template_inserts = 0;
  int64_t gamma_hits = 0;
  int64_t gamma_misses = 0;
  int64_t gamma_inserts = 0;
  int64_t Hits() const { return template_hits + gamma_hits; }
  int64_t Lookups() const {
    return template_hits + template_misses + gamma_hits + gamma_misses;
  }
  double HitRate() const {
    const int64_t n = Lookups();
    return n > 0 ? static_cast<double>(Hits()) / static_cast<double>(n) : 0.0;
  }
};

/// Abstract publish/lookup surface Inum talks to. Implementations must
/// be safe for concurrent readers and writers; Publish* must keep the
/// first entry when two writers race (so every reader of a key sees one
/// immutable value forever).
class InumPlanCache {
 public:
  virtual ~InumPlanCache() = default;

  virtual std::shared_ptr<const SharedTemplateEntry> LookupTemplates(
      uint64_t signature) = 0;
  virtual void PublishTemplates(
      uint64_t signature, std::shared_ptr<const SharedTemplateEntry> entry) = 0;

  virtual std::shared_ptr<const SharedGammaEntry> LookupGammas(
      uint64_t signature, uint64_t walk_digest) = 0;
  virtual void PublishGammas(uint64_t signature, uint64_t walk_digest,
                             std::shared_ptr<const SharedGammaEntry> entry) = 0;

  virtual PlanCacheStats stats() const = 0;
};

/// Folds one candidate-walk step into a γ-key digest: the ordered
/// (id, definition) sequence of the candidates in `step` that are
/// relevant to `q` (on its FROM tables or its update table). Returns
/// `digest` unchanged when no candidate is relevant — an append that
/// cannot touch q's γ tables must not change its key. Chained as
/// digest_{k+1} = FoldCandidateWalk(digest_k, q, step_k, pool) across
/// Prepare and each AddCandidates.
uint64_t FoldCandidateWalk(uint64_t digest, const Query& q,
                           const std::vector<IndexId>& step,
                           const IndexPool& pool);

}  // namespace cophy

#endif  // COPHY_INUM_SHARED_CACHE_H_
