#include "inum/shared_cache.h"

namespace cophy {

namespace {
/// SplitMix64-style combiner (same idiom as the compressor's signature
/// hasher; deterministic across platforms).
uint64_t Mix(uint64_t h, uint64_t v) {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}
}  // namespace

uint64_t FoldCandidateWalk(uint64_t digest, const Query& q,
                           const std::vector<IndexId>& step,
                           const IndexPool& pool) {
  uint64_t h = 0;
  int64_t relevant = 0;
  for (IndexId id : step) {
    const Index& idx = pool[id];
    bool on_query_table = q.IsUpdate() && idx.table == q.update_table;
    for (TableId t : q.tables) on_query_table = on_query_table || idx.table == t;
    if (!on_query_table) continue;
    ++relevant;
    // The id pins the walk position; the definition pins what AccessCost
    // saw (two pools assigning one id differently must never collide).
    h = Mix(h, static_cast<uint64_t>(id));
    h = Mix(h, static_cast<uint64_t>(idx.table));
    h = Mix(h, idx.clustered ? 1u : 0u);
    h = Mix(h, idx.key_columns.size());
    for (ColumnId c : idx.key_columns) h = Mix(h, static_cast<uint64_t>(c));
    h = Mix(h, idx.include_columns.size());
    for (ColumnId c : idx.include_columns) h = Mix(h, static_cast<uint64_t>(c));
  }
  // An append with nothing relevant to q leaves its γ tables — and so
  // must leave its key — untouched.
  if (relevant == 0) return digest;
  return Mix(Mix(digest, static_cast<uint64_t>(relevant)), h);
}

}  // namespace cophy
