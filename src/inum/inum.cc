#include "inum/inum.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"
#include "inum/shared_cache.h"
#include "workload/compressor.h"

namespace cophy {

Inum::Inum(WhatIfOptimizer* whatif, InumOptions options)
    : whatif_(whatif), options_(options) {
  COPHY_CHECK(whatif != nullptr);
}

ThreadPool* Inum::pool() {
  if (options_.workers != nullptr) {
    num_threads_used_ = options_.workers->size();
    return options_.workers;
  }
  const int n = ResolveThreadCount(options_.num_threads);
  num_threads_used_ = n;
  if (n <= 1) return nullptr;
  if (thread_pool_ == nullptr || thread_pool_->size() != n) {
    thread_pool_ = std::make_unique<ThreadPool>(n);
  }
  return thread_pool_.get();
}

Status Inum::DeadlineError() const {
  return Status::Timeout(StrFormat("INUM prepare deadline (%.3fs) exceeded",
                                   options_.deadline_seconds));
}

Status Inum::BuildGammaFor(QueryCache& qc, const Query& q,
                           const std::vector<IndexId>& candidates,
                           bool append) {
  const IndexPool& pool = whatif_->pool();
  const auto by_gamma = [](const SlotAccess& a, const SlotAccess& b) {
    return a.gamma < b.gamma;
  };
  for (size_t slot = 0; slot < qc.slot_orders.size(); ++slot) {
    const TableId t = q.tables[slot];
    for (size_t oi = 0; oi < qc.slot_orders[slot].size(); ++oi) {
      if (DeadlineExpired()) return DeadlineError();
      const OrderSpec& order = qc.slot_orders[slot][oi];
      auto& list = qc.access[slot][oi];
      double base_gamma;
      if (!append) {
        Result<double> base =
            whatif_->AccessCost(q, static_cast<int>(slot), order,
                                kInvalidIndex);
        if (!base.ok()) return base.status();
        base_gamma = *base;
        if (base_gamma < kInfiniteCost) {
          list.push_back({kInvalidIndex, base_gamma});
          ++qc.raw_gamma_entries;
        }
      } else {
        base_gamma = kInfiniteCost;
        for (const SlotAccess& sa : list) {
          if (sa.index == kInvalidIndex) base_gamma = sa.gamma;
        }
      }
      const size_t old_size = list.size();
      for (IndexId id : candidates) {
        if (pool[id].table != t) continue;
        Result<double> g =
            whatif_->AccessCost(q, static_cast<int>(slot), order, id);
        if (!g.ok()) return g.status();
        if (*g == kInfiniteCost) continue;
        ++qc.raw_gamma_entries;
        // Domination pruning: the base path is always available, so an
        // index that does not beat it can never be the arg-min.
        if (*g >= base_gamma) continue;
        list.push_back({id, *g});
      }
      if (list.size() == old_size) continue;  // nothing appended
      if (append && old_size > 0) {
        // The existing prefix is already sorted: sort only the new
        // entries and merge in place instead of re-sorting everything.
        std::sort(list.begin() + old_size, list.end(), by_gamma);
        std::inplace_merge(list.begin(), list.begin() + old_size, list.end(),
                           by_gamma);
      } else {
        std::sort(list.begin(), list.end(), by_gamma);
      }
    }
  }
  return Status::Ok();
}

Status Inum::CacheUpdateCosts(QueryCache& qc, const Query& q,
                              const std::vector<IndexId>& candidates,
                              bool include_base) {
  if (!q.IsUpdate()) return Status::Ok();
  if (include_base) {
    Result<double> base = whatif_->BaseUpdateCost(q);
    if (!base.ok()) return base.status();
    qc.base_update_cost = *base;
  }
  const IndexPool& pool = whatif_->pool();
  for (IndexId id : candidates) {
    if (pool[id].table != q.update_table) continue;
    if (DeadlineExpired()) return DeadlineError();
    Result<double> u = whatif_->UpdateCost(id, q);
    if (!u.ok()) return u.status();
    if (*u != 0.0) qc.update_costs.emplace(id, *u);
  }
  return Status::Ok();
}

Status Inum::PrepareStatement(const Query& q,
                              const std::vector<IndexId>& candidates) {
  QueryCache& qc = caches_[q.id];
  qc.qid = q.id;
  qc.weight = q.weight;
  qc.is_update = q.IsUpdate();
  if (DeadlineExpired()) return DeadlineError();

  InumPlanCache* shared = options_.plan_cache;
  const Catalog& cat = whatif_->catalog();
  if (shared != nullptr) {
    signatures_[q.id] = StatementCostSignature(q, cat);
    gamma_digests_[q.id] =
        FoldCandidateWalk(0, q, candidates, whatif_->pool());
  }

  // --- Template phase: per-slot orders, β plans, and the template ->
  // order-index mapping. A shared-cache hit (confirmed by the exact
  // comparator, so a signature collision degrades to a miss) copies the
  // published entry instead of re-running template enumeration — this
  // is where a what-if optimization per template is saved.
  std::shared_ptr<const SharedTemplateEntry> shared_templates;
  if (shared != nullptr) {
    shared_templates = shared->LookupTemplates(signatures_[q.id]);
    if (shared_templates != nullptr &&
        !CostEquivalent(q, shared_templates->statement, cat)) {
      shared_templates = nullptr;
    }
  }
  if (shared_templates != nullptr) {
    qc.slot_orders = shared_templates->slot_orders;
    qc.templates = shared_templates->templates;
    template_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    qc.slot_orders = whatif_->SlotOrderCandidates(q);
    Result<std::vector<TemplatePlan>> templates =
        whatif_->EnumerateTemplates(q);
    if (!templates.ok()) return templates.status();
    qc.templates.reserve(templates->size());
    for (const TemplatePlan& tp : *templates) {
      QueryCache::Template t;
      t.beta = tp.internal_cost;
      t.order_idx.resize(tp.slot_orders.size());
      for (size_t slot = 0; slot < tp.slot_orders.size(); ++slot) {
        const auto& orders = qc.slot_orders[slot];
        auto it = std::find(orders.begin(), orders.end(), tp.slot_orders[slot]);
        COPHY_CHECK(it != orders.end());
        t.order_idx[slot] = static_cast<int>(it - orders.begin());
      }
      qc.templates.push_back(std::move(t));
    }
    if (shared != nullptr) {
      template_misses_.fetch_add(1, std::memory_order_relaxed);
      auto entry = std::make_shared<SharedTemplateEntry>();
      entry->statement = q;
      entry->slot_orders = qc.slot_orders;
      entry->templates = qc.templates;
      shared->PublishTemplates(signatures_[q.id], std::move(entry));
    }
  }

  // --- γ phase: access-cost tables plus update costs, reusable only
  // when the whole candidate walk matches (see FoldCandidateWalk).
  std::shared_ptr<const SharedGammaEntry> shared_gammas;
  if (shared != nullptr) {
    shared_gammas = shared->LookupGammas(signatures_[q.id],
                                         gamma_digests_[q.id]);
    if (shared_gammas != nullptr &&
        !CostEquivalent(q, shared_gammas->statement, cat)) {
      shared_gammas = nullptr;
    }
  }
  if (shared_gammas != nullptr) {
    qc.access = shared_gammas->access;
    qc.raw_gamma_entries = shared_gammas->raw_gamma_entries;
    qc.base_update_cost = shared_gammas->base_update_cost;
    qc.update_costs = shared_gammas->update_costs;
    gamma_hits_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  qc.access.resize(qc.slot_orders.size());
  for (size_t slot = 0; slot < qc.slot_orders.size(); ++slot) {
    qc.access[slot].resize(qc.slot_orders[slot].size());
  }
  Status s = BuildGammaFor(qc, q, candidates, /*append=*/false);
  if (!s.ok()) return s;
  s = CacheUpdateCosts(qc, q, candidates, /*include_base=*/true);
  if (!s.ok()) return s;
  if (shared != nullptr) {
    gamma_misses_.fetch_add(1, std::memory_order_relaxed);
    PublishGammasFor(qc, q);
  }
  return Status::Ok();
}

/// Publishes `qc`'s current γ tables and update costs under the
/// statement's (signature, walk digest) key.
void Inum::PublishGammasFor(const QueryCache& qc, const Query& q) {
  auto entry = std::make_shared<SharedGammaEntry>();
  entry->statement = q;
  entry->access = qc.access;
  entry->raw_gamma_entries = qc.raw_gamma_entries;
  entry->base_update_cost = qc.base_update_cost;
  entry->update_costs = qc.update_costs;
  options_.plan_cache->PublishGammas(signatures_[q.id], gamma_digests_[q.id],
                                     std::move(entry));
}

void Inum::CloneFromLeader(QueryId qid) {
  const QueryCache& src = caches_[leader_[qid]];
  QueryCache& qc = caches_[qid];
  const Query& q = workload_[qid];
  qc.slot_orders = src.slot_orders;
  qc.templates = src.templates;
  qc.access = src.access;
  qc.raw_gamma_entries = src.raw_gamma_entries;
  // Cost-equivalent statements have identical update costs.
  qc.base_update_cost = src.base_update_cost;
  qc.update_costs = src.update_costs;
  qc.qid = qid;
  qc.weight = q.weight;
  qc.is_update = q.IsUpdate();
}

void Inum::ComputeLeaders() {
  num_shared_statements_ = 0;
  if (!options_.share_templates) {
    leader_.resize(workload_.size());
    for (QueryId q = 0; q < workload_.size(); ++q) leader_[q] = q;
    return;
  }
  // Shared with CompressWorkload: the same clustering keeps the
  // compressed and uncompressed pipelines in exact agreement.
  leader_ = ClusterLeaders(workload_, whatif_->catalog(), /*by_shape=*/false);
  for (QueryId q = 0; q < workload_.size(); ++q) {
    if (leader_[q] != q) ++num_shared_statements_;
  }
}

Status Inum::Prepare(const Workload& w,
                     const std::vector<IndexId>& candidates) {
  workload_ = w;
  candidates_ = candidates;
  caches_.clear();
  caches_.resize(w.size());
  signatures_.assign(w.size(), 0);
  gamma_digests_.assign(w.size(), 0);
  ComputeLeaders();
  std::vector<QueryId> leaders;
  leaders.reserve(w.size());
  for (QueryId q = 0; q < w.size(); ++q) {
    if (leader_[q] == q) leaders.push_back(q);
  }

  ThreadPool* tp = pool();
  // The selectivity cache inside the catalog is populated lazily; force
  // it now so the workers only ever read shared state.
  whatif_->catalog().WarmStatistics();
  prepare_sw_ = Stopwatch();
  // Statuses are collected per statement and resolved in statement
  // order, so the reported error is scheduling-independent.
  std::vector<Status> errs(leaders.size());
  ParallelFor(tp, static_cast<int64_t>(leaders.size()), [&](int64_t i) {
    errs[i] = PrepareStatement(workload_[leaders[i]], candidates);
  });
  for (const Status& s : errs) {
    if (!s.ok()) return s;
  }
  ParallelFor(tp, w.size(), [&](int64_t q) {
    if (leader_[q] != q) CloneFromLeader(static_cast<QueryId>(q));
  });
  return Status::Ok();
}

Status Inum::AddCandidates(const std::vector<IndexId>& new_candidates) {
  ThreadPool* tp = pool();
  whatif_->catalog().WarmStatistics();
  prepare_sw_ = Stopwatch();
  InumPlanCache* shared = options_.plan_cache;
  std::vector<Status> errs(workload_.size());
  ParallelFor(tp, workload_.size(), [&](int64_t q) {
    if (leader_[q] != q) return;
    QueryCache& qc = caches_[q];
    const Query& query = workload_[static_cast<QueryId>(q)];
    // Advance the walk digest; `relevant` is false when no new candidate
    // touches this statement's tables (its γ tables and key are
    // unchanged, so there is no cache traffic to account).
    bool relevant = false;
    if (shared != nullptr) {
      const uint64_t next = FoldCandidateWalk(gamma_digests_[q], query,
                                              new_candidates, whatif_->pool());
      relevant = next != gamma_digests_[q];
      if (relevant) {
        gamma_digests_[q] = next;
        // When another session already walked this exact history, take
        // its tables wholesale (bit-identical to the append below) and
        // skip the backend entirely.
        std::shared_ptr<const SharedGammaEntry> entry =
            shared->LookupGammas(signatures_[q], next);
        if (entry != nullptr &&
            !CostEquivalent(query, entry->statement, whatif_->catalog())) {
          entry = nullptr;
        }
        if (entry != nullptr) {
          qc.access = entry->access;
          qc.raw_gamma_entries = entry->raw_gamma_entries;
          qc.base_update_cost = entry->base_update_cost;
          qc.update_costs = entry->update_costs;
          gamma_hits_.fetch_add(1, std::memory_order_relaxed);
          errs[q] = Status::Ok();
          return;
        }
        gamma_misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    errs[q] = BuildGammaFor(qc, query, new_candidates, /*append=*/true);
    if (errs[q].ok()) {
      errs[q] =
          CacheUpdateCosts(qc, query, new_candidates, /*include_base=*/false);
    }
    if (errs[q].ok() && relevant) PublishGammasFor(qc, query);
  });
  for (const Status& s : errs) {
    if (!s.ok()) return s;
  }
  // Followers re-take only the γ tables and ucosts: slot orders and
  // templates are untouched by an incremental candidate addition.
  ParallelFor(tp, workload_.size(), [&](int64_t q) {
    if (leader_[q] == q) return;
    const QueryCache& src = caches_[leader_[q]];
    caches_[q].access = src.access;
    caches_[q].raw_gamma_entries = src.raw_gamma_entries;
    caches_[q].update_costs = src.update_costs;
  });
  candidates_.insert(candidates_.end(), new_candidates.begin(),
                     new_candidates.end());
  return Status::Ok();
}

double Inum::BestTemplate(const QueryCache& qc, const Configuration& x,
                          std::vector<IndexId>* chosen) const {
  double best = kInfiniteCost;
  std::vector<IndexId> used;  // reused across templates when recording
  for (const QueryCache::Template& t : qc.templates) {
    double c = t.beta;
    if (chosen != nullptr) used.clear();
    bool ok = true;
    for (size_t slot = 0; slot < t.order_idx.size(); ++slot) {
      const auto& list = qc.access[slot][t.order_idx[slot]];
      double g = kInfiniteCost;
      IndexId pick = kInvalidIndex;
      for (const SlotAccess& sa : list) {  // sorted ascending by γ
        if (sa.index == kInvalidIndex || x.Contains(sa.index)) {
          g = sa.gamma;
          pick = sa.index;
          break;
        }
      }
      if (g == kInfiniteCost) {
        ok = false;
        break;
      }
      if (chosen != nullptr && pick != kInvalidIndex) used.push_back(pick);
      c += g;
    }
    if (ok && c < best) {
      best = c;
      if (chosen != nullptr) *chosen = used;
    }
  }
  return best;
}

double Inum::ShellCost(QueryId qid, const Configuration& x) const {
  return BestTemplate(caches_[qid], x, nullptr);
}

double Inum::Cost(QueryId qid, const Configuration& x) const {
  const QueryCache& qc = caches_[qid];
  double c = ShellCost(qid, x);
  if (qc.is_update) {
    c += qc.base_update_cost;
    for (IndexId a : x.ids()) c += UpdateCost(a, qid);
  }
  return c;
}

double Inum::UpdateCost(IndexId a, QueryId qid) const {
  const auto& m = caches_[qid].update_costs;
  const auto it = m.find(a);
  return it == m.end() ? 0.0 : it->second;
}

std::vector<IndexId> Inum::ChosenIndexes(QueryId qid,
                                         const Configuration& x) const {
  std::vector<IndexId> chosen;
  BestTemplate(caches_[qid], x, &chosen);
  return chosen;
}

int64_t Inum::TotalTemplates() const {
  int64_t n = 0;
  for (const QueryCache& qc : caches_) n += qc.templates.size();
  return n;
}

int64_t Inum::TotalGammaEntries() const {
  int64_t n = 0;
  for (const QueryCache& qc : caches_) {
    for (const auto& per_slot : qc.access) {
      for (const auto& list : per_slot) n += list.size();
    }
  }
  return n;
}

int64_t Inum::TotalRawGammaEntries() const {
  int64_t n = 0;
  for (const QueryCache& qc : caches_) n += qc.raw_gamma_entries;
  return n;
}

}  // namespace cophy
