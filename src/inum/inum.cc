#include "inum/inum.h"

#include <algorithm>

#include "common/check.h"

namespace cophy {

Inum::Inum(SystemSimulator* sim) : sim_(sim) { COPHY_CHECK(sim != nullptr); }

void Inum::BuildGammaFor(QueryCache& qc, const Query& q,
                         const std::vector<IndexId>& candidates, bool append) {
  const IndexPool& pool = sim_->pool();
  const auto by_gamma = [](const SlotAccess& a, const SlotAccess& b) {
    return a.gamma < b.gamma;
  };
  for (size_t slot = 0; slot < qc.slot_orders.size(); ++slot) {
    const TableId t = q.tables[slot];
    for (size_t oi = 0; oi < qc.slot_orders[slot].size(); ++oi) {
      const OrderSpec& order = qc.slot_orders[slot][oi];
      auto& list = qc.access[slot][oi];
      double base_gamma;
      if (!append) {
        base_gamma =
            sim_->AccessCost(q, static_cast<int>(slot), order, kInvalidIndex);
        if (base_gamma < kInfiniteCost) {
          list.push_back({kInvalidIndex, base_gamma});
          ++qc.raw_gamma_entries;
        }
      } else {
        base_gamma = kInfiniteCost;
        for (const SlotAccess& sa : list) {
          if (sa.index == kInvalidIndex) base_gamma = sa.gamma;
        }
      }
      const size_t old_size = list.size();
      for (IndexId id : candidates) {
        if (pool[id].table != t) continue;
        const double g =
            sim_->AccessCost(q, static_cast<int>(slot), order, id);
        if (g == kInfiniteCost) continue;
        ++qc.raw_gamma_entries;
        // Domination pruning: the base path is always available, so an
        // index that does not beat it can never be the arg-min.
        if (g >= base_gamma) continue;
        list.push_back({id, g});
      }
      if (list.size() == old_size) continue;  // nothing appended
      if (append && old_size > 0) {
        // The existing prefix is already sorted: sort only the new
        // entries and merge in place instead of re-sorting everything.
        std::sort(list.begin() + old_size, list.end(), by_gamma);
        std::inplace_merge(list.begin(), list.begin() + old_size, list.end(),
                           by_gamma);
      } else {
        std::sort(list.begin(), list.end(), by_gamma);
      }
    }
  }
}

void Inum::Prepare(const Workload& w, const std::vector<IndexId>& candidates) {
  workload_ = w;
  candidates_ = candidates;
  caches_.clear();
  caches_.resize(w.size());
  for (const Query& q : w.statements()) {
    QueryCache& qc = caches_[q.id];
    qc.qid = q.id;
    qc.weight = q.weight;
    qc.is_update = q.IsUpdate();

    // Distinct per-slot orders and the template -> order-index mapping.
    qc.slot_orders = sim_->SlotOrderCandidates(q);
    const std::vector<TemplatePlan> templates = sim_->EnumerateTemplates(q);
    qc.templates.reserve(templates.size());
    for (const TemplatePlan& tp : templates) {
      QueryCache::Template t;
      t.beta = tp.internal_cost;
      t.order_idx.resize(tp.slot_orders.size());
      for (size_t slot = 0; slot < tp.slot_orders.size(); ++slot) {
        const auto& orders = qc.slot_orders[slot];
        auto it = std::find(orders.begin(), orders.end(), tp.slot_orders[slot]);
        COPHY_CHECK(it != orders.end());
        t.order_idx[slot] = static_cast<int>(it - orders.begin());
      }
      qc.templates.push_back(std::move(t));
    }

    qc.access.resize(qc.slot_orders.size());
    for (size_t slot = 0; slot < qc.slot_orders.size(); ++slot) {
      qc.access[slot].resize(qc.slot_orders[slot].size());
    }
    BuildGammaFor(qc, q, candidates, /*append=*/false);
  }
}

void Inum::AddCandidates(const std::vector<IndexId>& new_candidates) {
  for (const Query& q : workload_.statements()) {
    BuildGammaFor(caches_[q.id], q, new_candidates, /*append=*/true);
  }
  candidates_.insert(candidates_.end(), new_candidates.begin(),
                     new_candidates.end());
}

double Inum::BestTemplate(const QueryCache& qc, const Configuration& x,
                          std::vector<IndexId>* chosen) const {
  double best = kInfiniteCost;
  std::vector<IndexId> used;  // reused across templates when recording
  for (const QueryCache::Template& t : qc.templates) {
    double c = t.beta;
    if (chosen != nullptr) used.clear();
    bool ok = true;
    for (size_t slot = 0; slot < t.order_idx.size(); ++slot) {
      const auto& list = qc.access[slot][t.order_idx[slot]];
      double g = kInfiniteCost;
      IndexId pick = kInvalidIndex;
      for (const SlotAccess& sa : list) {  // sorted ascending by γ
        if (sa.index == kInvalidIndex || x.Contains(sa.index)) {
          g = sa.gamma;
          pick = sa.index;
          break;
        }
      }
      if (g == kInfiniteCost) {
        ok = false;
        break;
      }
      if (chosen != nullptr && pick != kInvalidIndex) used.push_back(pick);
      c += g;
    }
    if (ok && c < best) {
      best = c;
      if (chosen != nullptr) *chosen = used;
    }
  }
  return best;
}

double Inum::ShellCost(QueryId qid, const Configuration& x) const {
  return BestTemplate(caches_[qid], x, nullptr);
}

double Inum::Cost(QueryId qid, const Configuration& x) const {
  const Query& q = workload_[qid];
  double c = ShellCost(qid, x);
  if (q.IsUpdate()) {
    c += sim_->BaseUpdateCost(q);
    for (IndexId a : x.ids()) c += sim_->UpdateCost(a, q);
  }
  return c;
}

double Inum::UpdateCost(IndexId a, QueryId qid) const {
  return sim_->UpdateCost(a, workload_[qid]);
}

std::vector<IndexId> Inum::ChosenIndexes(QueryId qid,
                                         const Configuration& x) const {
  std::vector<IndexId> chosen;
  BestTemplate(caches_[qid], x, &chosen);
  return chosen;
}

int64_t Inum::TotalTemplates() const {
  int64_t n = 0;
  for (const QueryCache& qc : caches_) n += qc.templates.size();
  return n;
}

int64_t Inum::TotalGammaEntries() const {
  int64_t n = 0;
  for (const QueryCache& qc : caches_) {
    for (const auto& per_slot : qc.access) {
      for (const auto& list : per_slot) n += list.size();
    }
  }
  return n;
}

int64_t Inum::TotalRawGammaEntries() const {
  int64_t n = 0;
  for (const QueryCache& qc : caches_) n += qc.raw_gamma_entries;
  return n;
}

}  // namespace cophy
