#include "inum/inum.h"

#include <algorithm>

#include "common/check.h"

namespace cophy {

Inum::Inum(SystemSimulator* sim) : sim_(sim) { COPHY_CHECK(sim != nullptr); }

void Inum::BuildGammaFor(QueryCache& qc, const Query& q,
                         const std::vector<IndexId>& candidates, bool append) {
  const IndexPool& pool = sim_->pool();
  for (size_t slot = 0; slot < qc.slot_orders.size(); ++slot) {
    const TableId t = q.tables[slot];
    for (size_t oi = 0; oi < qc.slot_orders[slot].size(); ++oi) {
      const OrderSpec& order = qc.slot_orders[slot][oi];
      auto& list = qc.access[slot][oi];
      double base_gamma;
      if (!append) {
        base_gamma =
            sim_->AccessCost(q, static_cast<int>(slot), order, kInvalidIndex);
        if (base_gamma < kInfiniteCost) {
          list.push_back({kInvalidIndex, base_gamma});
          ++qc.raw_gamma_entries;
        }
      } else {
        base_gamma = kInfiniteCost;
        for (const SlotAccess& sa : list) {
          if (sa.index == kInvalidIndex) base_gamma = sa.gamma;
        }
      }
      for (IndexId id : candidates) {
        if (pool[id].table != t) continue;
        const double g =
            sim_->AccessCost(q, static_cast<int>(slot), order, id);
        if (g == kInfiniteCost) continue;
        ++qc.raw_gamma_entries;
        // Domination pruning: the base path is always available, so an
        // index that does not beat it can never be the arg-min.
        if (g >= base_gamma) continue;
        list.push_back({id, g});
      }
      std::sort(list.begin(), list.end(),
                [](const SlotAccess& a, const SlotAccess& b) {
                  return a.gamma < b.gamma;
                });
    }
  }
}

void Inum::Prepare(const Workload& w, const std::vector<IndexId>& candidates) {
  workload_ = w;
  candidates_ = candidates;
  caches_.clear();
  caches_.resize(w.size());
  for (const Query& q : w.statements()) {
    QueryCache& qc = caches_[q.id];
    qc.qid = q.id;
    qc.weight = q.weight;
    qc.is_update = q.IsUpdate();

    // Distinct per-slot orders and the template -> order-index mapping.
    qc.slot_orders = sim_->SlotOrderCandidates(q);
    const std::vector<TemplatePlan> templates = sim_->EnumerateTemplates(q);
    qc.templates.reserve(templates.size());
    for (const TemplatePlan& tp : templates) {
      QueryCache::Template t;
      t.beta = tp.internal_cost;
      t.order_idx.resize(tp.slot_orders.size());
      for (size_t slot = 0; slot < tp.slot_orders.size(); ++slot) {
        const auto& orders = qc.slot_orders[slot];
        auto it = std::find(orders.begin(), orders.end(), tp.slot_orders[slot]);
        COPHY_CHECK(it != orders.end());
        t.order_idx[slot] = static_cast<int>(it - orders.begin());
      }
      qc.templates.push_back(std::move(t));
    }

    qc.access.resize(qc.slot_orders.size());
    for (size_t slot = 0; slot < qc.slot_orders.size(); ++slot) {
      qc.access[slot].resize(qc.slot_orders[slot].size());
    }
    BuildGammaFor(qc, q, candidates, /*append=*/false);
  }
}

void Inum::AddCandidates(const std::vector<IndexId>& new_candidates) {
  for (const Query& q : workload_.statements()) {
    BuildGammaFor(caches_[q.id], q, new_candidates, /*append=*/true);
  }
  candidates_.insert(candidates_.end(), new_candidates.begin(),
                     new_candidates.end());
}

double Inum::ShellCost(QueryId qid, const Configuration& x) const {
  const QueryCache& qc = caches_[qid];
  double best = kInfiniteCost;
  for (const QueryCache::Template& t : qc.templates) {
    double c = t.beta;
    bool ok = true;
    for (size_t slot = 0; slot < t.order_idx.size(); ++slot) {
      const auto& list = qc.access[slot][t.order_idx[slot]];
      double g = kInfiniteCost;
      for (const SlotAccess& sa : list) {  // sorted ascending by γ
        if (sa.index == kInvalidIndex || x.Contains(sa.index)) {
          g = sa.gamma;
          break;
        }
      }
      if (g == kInfiniteCost) {
        ok = false;
        break;
      }
      c += g;
    }
    if (ok) best = std::min(best, c);
  }
  return best;
}

double Inum::Cost(QueryId qid, const Configuration& x) const {
  const Query& q = workload_[qid];
  double c = ShellCost(qid, x);
  if (q.IsUpdate()) {
    c += sim_->BaseUpdateCost(q);
    for (IndexId a : x.ids()) c += sim_->UpdateCost(a, q);
  }
  return c;
}

double Inum::UpdateCost(IndexId a, QueryId qid) const {
  return sim_->UpdateCost(a, workload_[qid]);
}

std::vector<IndexId> Inum::ChosenIndexes(QueryId qid,
                                         const Configuration& x) const {
  const QueryCache& qc = caches_[qid];
  double best = kInfiniteCost;
  std::vector<IndexId> chosen;
  for (const QueryCache::Template& t : qc.templates) {
    double c = t.beta;
    std::vector<IndexId> used;
    bool ok = true;
    for (size_t slot = 0; slot < t.order_idx.size(); ++slot) {
      const auto& list = qc.access[slot][t.order_idx[slot]];
      double g = kInfiniteCost;
      IndexId pick = kInvalidIndex;
      for (const SlotAccess& sa : list) {
        if (sa.index == kInvalidIndex || x.Contains(sa.index)) {
          g = sa.gamma;
          pick = sa.index;
          break;
        }
      }
      if (g == kInfiniteCost) {
        ok = false;
        break;
      }
      if (pick != kInvalidIndex) used.push_back(pick);
      c += g;
    }
    if (ok && c < best) {
      best = c;
      chosen = std::move(used);
    }
  }
  return chosen;
}

int64_t Inum::TotalTemplates() const {
  int64_t n = 0;
  for (const QueryCache& qc : caches_) n += qc.templates.size();
  return n;
}

int64_t Inum::TotalGammaEntries() const {
  int64_t n = 0;
  for (const QueryCache& qc : caches_) {
    for (const auto& per_slot : qc.access) {
      for (const auto& list : per_slot) n += list.size();
    }
  }
  return n;
}

int64_t Inum::TotalRawGammaEntries() const {
  int64_t n = 0;
  for (const QueryCache& qc : caches_) n += qc.raw_gamma_entries;
  return n;
}

}  // namespace cophy
