// CHECK/DCHECK invariant macros (terminate with a message on violation).
// Used for programming errors; recoverable failures use Status instead.
#ifndef COPHY_COMMON_CHECK_H_
#define COPHY_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cophy::internal {
[[noreturn]] inline void CheckFail(const char* expr, const char* file,
                                   int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace cophy::internal

#define COPHY_CHECK(expr)                                        \
  do {                                                           \
    if (!(expr)) {                                               \
      ::cophy::internal::CheckFail(#expr, __FILE__, __LINE__);   \
    }                                                            \
  } while (0)

#define COPHY_CHECK_GE(a, b) COPHY_CHECK((a) >= (b))
#define COPHY_CHECK_GT(a, b) COPHY_CHECK((a) > (b))
#define COPHY_CHECK_LE(a, b) COPHY_CHECK((a) <= (b))
#define COPHY_CHECK_LT(a, b) COPHY_CHECK((a) < (b))
#define COPHY_CHECK_EQ(a, b) COPHY_CHECK((a) == (b))
#define COPHY_CHECK_NE(a, b) COPHY_CHECK((a) != (b))

#ifndef NDEBUG
#define COPHY_DCHECK(expr) COPHY_CHECK(expr)
#else
#define COPHY_DCHECK(expr) \
  do {                     \
  } while (0)
#endif

#endif  // COPHY_COMMON_CHECK_H_
