// Status / Result: exception-free error handling in the style of
// absl::Status, as used throughout production database code.
#ifndef COPHY_COMMON_STATUS_H_
#define COPHY_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace cophy {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kInfeasible,    ///< Constraint system admits no solution.
  kUnbounded,     ///< LP objective unbounded below.
  kResourceExhausted,
  kTimeout,
  kInternal,
};

/// A lightweight success-or-error value. Functions that can fail return
/// Status (or Result<T> below) instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Infeasible(std::string m) {
    return Status(StatusCode::kInfeasible, std::move(m));
  }
  static Status Unbounded(std::string m) {
    return Status(StatusCode::kUnbounded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INFEASIBLE: storage budget".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal {
/// Aborts with the status of an errored Result whose value was accessed.
/// Lives in status.cc so the header stays dependency-free.
[[noreturn]] void ResultValueFail(const Status& status);
}  // namespace internal

/// A value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error and aborts with the contained
/// status message in every build mode.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {      // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result<T> from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const& {
    if (!ok()) internal::ResultValueFail(std::get<Status>(v_));
    return std::get<T>(v_);
  }
  T& value() & {
    if (!ok()) internal::ResultValueFail(std::get<Status>(v_));
    return std::get<T>(v_);
  }
  T&& value() && {
    if (!ok()) internal::ResultValueFail(std::get<Status>(v_));
    return std::move(std::get<T>(v_));
  }
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(v_);
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace cophy

#endif  // COPHY_COMMON_STATUS_H_
