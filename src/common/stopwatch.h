// Wall-clock stopwatch used by every advisor to report the timing
// breakdowns shown in the paper's figures (INUM / build / solve time).
#ifndef COPHY_COMMON_STOPWATCH_H_
#define COPHY_COMMON_STOPWATCH_H_

#include <chrono>

namespace cophy {

/// Measures elapsed wall-clock seconds. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the seconds elapsed so far.
  double Lap() {
    const auto now = Clock::now();
    const double s = Seconds(start_, now);
    start_ = now;
    return s;
  }

  /// Seconds elapsed since construction or the last Lap().
  double Elapsed() const { return Seconds(start_, Clock::now()); }

 private:
  using Clock = std::chrono::steady_clock;
  static double Seconds(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  }
  Clock::time_point start_;
};

}  // namespace cophy

#endif  // COPHY_COMMON_STOPWATCH_H_
