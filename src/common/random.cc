#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cophy {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t r = x;
  r = (r ^ (r >> 30)) * 0xbf58476d1ce4e5b9ULL;
  r = (r ^ (r >> 27)) * 0x94d049bb133111ebULL;
  return r ^ (r >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::Uniform(uint64_t n) {
  COPHY_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % n;
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  COPHY_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5deadbeefULL); }

Zipf::Zipf(uint64_t n, double z) : n_(n), z_(z) {
  COPHY_CHECK_GT(n, 0u);
  COPHY_CHECK_GE(z, 0.0);
  // Exact (unnormalized) prefix sums for the head of the distribution;
  // the tail beyond kExactLimit is evaluated by Euler–Maclaurin in O(1).
  const uint64_t head = n_ < kExactLimit ? n_ : kExactLimit;
  exact_cdf_.resize(head + 1, 0.0);
  double acc = 0.0;
  for (uint64_t r = 1; r <= head; ++r) {
    acc += std::pow(static_cast<double>(r), -z_);
    exact_cdf_[r] = acc;
  }
  h_n_ = Harmonic(n_);
}

double Zipf::Harmonic(uint64_t k) const {
  if (k == 0) return 0.0;
  if (k < exact_cdf_.size()) return exact_cdf_[k];
  // Exact head + Euler–Maclaurin tail for sum_{r=m..k} r^-z.
  const uint64_t m = exact_cdf_.size() - 1;  // == kExactLimit here
  const double head = exact_cdf_[m];
  const double dm = static_cast<double>(m);
  const double dk = static_cast<double>(k);
  double integral;
  if (std::abs(z_ - 1.0) < 1e-12) {
    integral = std::log(dk) - std::log(dm);
  } else {
    integral = (std::pow(dk, 1.0 - z_) - std::pow(dm, 1.0 - z_)) / (1.0 - z_);
  }
  // The integral double-counts rank m relative to the head; the trapezoid
  // correction accounts for the half-terms at both ends.
  const double correction =
      -0.5 * std::pow(dm, -z_) + 0.5 * std::pow(dk, -z_) +
      z_ / 12.0 * (std::pow(dm, -z_ - 1.0) - std::pow(dk, -z_ - 1.0));
  return head + integral + correction;
}

double Zipf::Pmf(uint64_t r) const {
  COPHY_CHECK_GE(r, 1u);
  COPHY_CHECK_LE(r, n_);
  return std::pow(static_cast<double>(r), -z_) / h_n_;
}

double Zipf::Cdf(uint64_t r) const {
  COPHY_CHECK_LE(r, n_);
  if (r == 0) return 0.0;
  return Harmonic(r) / h_n_;
}

double Zipf::Mass(uint64_t lo, uint64_t hi) const {
  COPHY_CHECK_LE(lo, hi);
  COPHY_CHECK_LE(hi, n_);
  return std::max(0.0, (Harmonic(hi) - Harmonic(lo)) / h_n_);
}

uint64_t Zipf::RankAtQuantile(double q) const {
  if (q <= 0.0) return 1;
  if (q >= 1.0) return n_;
  // Binary search over the CDF; both the exact and the approximated CDF
  // are monotone in r.
  uint64_t lo = 1, hi = n_;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (Cdf(mid) > q) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

uint64_t Zipf::Sample(Rng& rng) const { return RankAtQuantile(rng.NextDouble()); }

}  // namespace cophy
