// Small string helpers (printf-style formatting, joining) used for
// EXPLAIN output, bench tables, and error messages.
#ifndef COPHY_COMMON_STRINGS_H_
#define COPHY_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace cophy {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

}  // namespace cophy

#endif  // COPHY_COMMON_STRINGS_H_
