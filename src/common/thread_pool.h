// A small persistent worker pool with a ParallelFor helper, used by the
// preparation pipeline (parallel INUM what-if preprocessing). Work items
// are claimed through an atomic counter, so scheduling is dynamic but
// callers that write result i into slot i get output that is
// bit-identical regardless of thread count or interleaving.
#ifndef COPHY_COMMON_THREAD_POOL_H_
#define COPHY_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cophy {

/// Resolves a thread-count knob: values <= 0 mean "use the hardware"
/// (std::thread::hardware_concurrency, at least 1).
int ResolveThreadCount(int num_threads);

/// A fixed-size pool of worker threads with two entry points:
/// ParallelFor (a blocking fork-join loop; concurrent calls from
/// different threads are serialized by an internal mutex) and Post (a
/// fire-and-forget task queue drained by the same workers, used by the
/// service-tier executor). ParallelFor jobs take priority over queued
/// tasks so preparation fan-outs keep their latency.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates
  /// in every ParallelFor, so a pool of size 1 spawns nothing and runs
  /// purely inline). num_threads <= 0 resolves to the hardware count.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n). Blocks until all iterations
  /// finished. If any iteration throws, the first exception (in claim
  /// order) is rethrown here after the loop drains; remaining claimed
  /// iterations still run. Nested calls from inside a worker run the
  /// loop inline on that worker (no deadlock, no oversubscription).
  /// n <= 0 is a no-op.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Enqueues `task` for execution on some worker thread and returns
  /// immediately. Tasks run in FIFO order relative to each other but
  /// interleave arbitrarily across workers; a pool of size 1 (no
  /// workers) runs the task inline before returning. Tasks must not
  /// throw — an escaping exception terminates the process, as with any
  /// detached thread. Tasks still queued when the pool is destroyed are
  /// dropped without running: owners that need completion (the service
  /// executor) must drain before tearing the pool down.
  void Post(std::function<void()> task);

 private:
  struct Job {
    std::atomic<int64_t> next{0};
    int64_t n = 0;
    const std::function<void(int64_t)>* fn = nullptr;
    std::atomic<int64_t> completed{0};
    /// Workers currently holding a pointer to this job (claimed under
    /// the pool mutex) — the caller must not destroy the job until this
    /// drains back to zero.
    std::atomic<int> in_flight{0};
    std::mutex error_mu;
    std::exception_ptr error;  // first exception wins
  };

  void WorkerLoop();
  void RunJob(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;                    // protects job_/generation_/stop_/tasks_
  std::condition_variable cv_;       // workers wait here for a new job
  std::condition_variable done_cv_;  // caller waits for completion/drain
  std::mutex call_mu_;               // serializes ParallelFor callers
  Job* job_ = nullptr;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::deque<std::function<void()>> tasks_;  // Post() queue
};

/// Convenience wrapper: runs fn(i) over [0, n) on `pool`, or inline when
/// `pool` is null (the serial path used when num_threads == 1).
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn);

}  // namespace cophy

#endif  // COPHY_COMMON_THREAD_POOL_H_
