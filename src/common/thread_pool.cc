#include "common/thread_pool.h"

#include <algorithm>

namespace cophy {

namespace {
/// Set while a pool worker (or a caller inside ParallelFor) is running
/// job iterations; nested ParallelFor calls detect it and run inline.
thread_local bool tls_in_parallel_region = false;
}  // namespace

int ResolveThreadCount(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = ResolveThreadCount(num_threads);
  workers_.reserve(static_cast<size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunJob(Job& job) {
  const bool was_in_region = tls_in_parallel_region;
  tls_in_parallel_region = true;
  while (true) {
    const int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.completed.fetch_add(1, std::memory_order_release) + 1 == job.n) {
      // Last item done: wake the (possibly sleeping) caller. Taking the
      // pool mutex orders this against the caller's predicate check.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
  tls_in_parallel_region = was_in_region;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    Job* job = nullptr;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation) ||
               !tasks_.empty();
      });
      if (stop_) return;
      // A published ParallelFor job outranks the Post queue: fork-join
      // callers are blocked waiting while queued tasks are
      // fire-and-forget.
      if (job_ != nullptr && generation_ != seen_generation) {
        seen_generation = generation_;
        job = job_;
        job->in_flight.fetch_add(1, std::memory_order_relaxed);
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (job != nullptr) {
      RunJob(*job);
      std::lock_guard<std::mutex> lock(mu_);
      job->in_flight.fetch_sub(1, std::memory_order_release);
      done_cv_.notify_all();
    } else {
      task();
    }
  }
}

void ThreadPool::Post(std::function<void()> task) {
  if (workers_.empty()) {
    // Size-1 pool: no one else will ever drain the queue.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  // Nested use (a worker's iteration body fans out again) and trivially
  // small loops run inline: correct, deterministic, no deadlock.
  if (tls_in_parallel_region || workers_.empty() || n == 1) {
    struct RegionReset {
      bool prior;
      ~RegionReset() { tls_in_parallel_region = prior; }
    } reset{tls_in_parallel_region};
    tls_in_parallel_region = true;
    std::exception_ptr error;
    for (int64_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  std::lock_guard<std::mutex> call_lock(call_mu_);
  Job job;
  job.n = n;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
  }
  cv_.notify_all();
  // The calling thread works too; by the time it runs out of items every
  // iteration has been claimed, so it only has to wait (blocking, not
  // spinning — stragglers may run for seconds) for the rest.
  RunJob(job);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.completed.load(std::memory_order_acquire) >= n;
    });
    // Unpublish the job, then wait for workers that already hold a
    // pointer to it to leave RunJob — `job` lives on this stack frame.
    job_ = nullptr;
    done_cv_.wait(lock, [&] {
      return job.in_flight.load(std::memory_order_acquire) == 0;
    });
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
    return;
  }
  for (int64_t i = 0; i < n; ++i) fn(i);
}

}  // namespace cophy
