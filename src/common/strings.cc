#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace cophy {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(n));
  }
  va_end(args);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace cophy
