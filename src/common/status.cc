#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace cophy {

namespace internal {
void ResultValueFail(const Status& status) {
  std::fprintf(stderr, "Result::value() on errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

namespace {
const char* CodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kUnbounded:
      return "UNBOUNDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace cophy
