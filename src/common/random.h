// Deterministic pseudo-random number generation and the Zipf distribution
// used to model skewed data (tpcdskew-style column skew, parameter z).
#ifndef COPHY_COMMON_RANDOM_H_
#define COPHY_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace cophy {

/// SplitMix64-seeded xoshiro256** generator. Deterministic across
/// platforms: every experiment in this repository is reproducible
/// bit-for-bit from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Forks an independent stream (stable under call-order changes).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// The Zipf(n, z) distribution over ranks 1..n: P(r) ~ r^{-z}.
/// z = 0 is uniform; z = 2 is highly skewed (matching the paper's
/// tpcdskew settings). Provides frequency and partial-sum queries used
/// by the selectivity estimator, plus sampling.
class Zipf {
 public:
  /// Builds the distribution over `n` ranks with exponent `z >= 0`.
  Zipf(uint64_t n, double z);

  uint64_t n() const { return n_; }
  double z() const { return z_; }

  /// P(rank r), 1-based. Requires 1 <= r <= n.
  double Pmf(uint64_t r) const;

  /// Sum of P over ranks 1..r (CDF). Requires 0 <= r <= n; Cdf(0) = 0.
  double Cdf(uint64_t r) const;

  /// Probability mass of the rank interval (lo, hi]. Equivalent to
  /// Cdf(hi) - Cdf(lo) but computed with a single normalization, so
  /// intervals of equal unnormalized mass give bit-identical results
  /// wherever they sit (e.g. uniform z = 0: exactly (hi - lo) / n) —
  /// the property the workload compressor's lossless mode leans on.
  double Mass(uint64_t lo, uint64_t hi) const;

  /// The rank at quantile q in [0,1): smallest r with Cdf(r) > q.
  uint64_t RankAtQuantile(double q) const;

  /// Draws a rank using inverse-CDF sampling.
  uint64_t Sample(Rng& rng) const;

 private:
  /// Generalized harmonic number H(k, z) = sum_{r=1..k} r^{-z},
  /// computed exactly for small k and by Euler–Maclaurin otherwise.
  double Harmonic(uint64_t k) const;

  uint64_t n_;
  double z_;
  double h_n_;  // normalizing constant H(n, z)
  // Exact prefix sums for small n (<= kExactLimit) to keep Cdf O(1).
  std::vector<double> exact_cdf_;
  static constexpr uint64_t kExactLimit = 4096;
};

}  // namespace cophy

#endif  // COPHY_COMMON_RANDOM_H_
