// CoPhy behind the common Advisor interface (used by the comparison
// benchmarks; CoPhyA / CoPhyB are this adapter over the two cost-model
// profiles).
#ifndef COPHY_BASELINES_COPHY_ADVISOR_H_
#define COPHY_BASELINES_COPHY_ADVISOR_H_

#include <memory>

#include "baselines/advisor.h"

namespace cophy {

class CoPhyAdvisor : public Advisor {
 public:
  CoPhyAdvisor(SystemSimulator* sim, IndexPool* pool, Workload workload,
               CoPhyOptions options = {})
      : sim_(sim), pool_(pool), workload_(std::move(workload)),
        options_(std::move(options)) {}

  std::string name() const override { return "cophy"; }

  AdvisorResult Recommend(const ConstraintSet& constraints) override;

  /// The underlying session (valid after Recommend), for interactive
  /// follow-ups.
  CoPhy* session() { return session_.get(); }

 private:
  SystemSimulator* sim_;
  IndexPool* pool_;
  Workload workload_;
  CoPhyOptions options_;
  std::unique_ptr<CoPhy> session_;
};

}  // namespace cophy

#endif  // COPHY_BASELINES_COPHY_ADVISOR_H_
