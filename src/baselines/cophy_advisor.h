// CoPhy behind the common Advisor interface (used by the comparison
// benchmarks; CoPhyA / CoPhyB are this adapter over the two cost-model
// profiles). Runs through an AdvisorSession: the first Recommend call
// prepares the session, later calls (constraint-only changes) reuse the
// prepared state verbatim — zero what-if optimizer calls. Lossy
// compression (a batch-mode feature sessions reject) falls back to the
// classic one-shot CoPhy path with identical semantics.
#ifndef COPHY_BASELINES_COPHY_ADVISOR_H_
#define COPHY_BASELINES_COPHY_ADVISOR_H_

#include <memory>

#include "baselines/advisor.h"
#include "core/session.h"

namespace cophy {

class CoPhyAdvisor : public Advisor {
 public:
  /// `num_shards` feeds the underlying session; the recommendation is
  /// shard-count invariant, so benchmarks use it purely as a
  /// preparation-parallelism knob.
  CoPhyAdvisor(WhatIfOptimizer* whatif, IndexPool* pool, Workload workload,
               CoPhyOptions options = {}, int num_shards = 1)
      : whatif_(whatif), pool_(pool), workload_(std::move(workload)),
        options_(std::move(options)), num_shards_(num_shards) {}

  std::string name() const override { return "cophy"; }

  AdvisorResult Recommend(const ConstraintSet& constraints) override;

  /// The underlying session (valid after Recommend, null in the lossy
  /// fallback), for interactive follow-ups
  /// (AddStatements/RemoveStatements/Retune).
  AdvisorSession* session() { return session_.get(); }

 private:
  WhatIfOptimizer* whatif_;
  IndexPool* pool_;
  Workload workload_;
  CoPhyOptions options_;
  int num_shards_;
  std::unique_ptr<AdvisorSession> session_;
  std::unique_ptr<CoPhy> lossy_advisor_;  // kLossy fallback path
};

}  // namespace cophy

#endif  // COPHY_BASELINES_COPHY_ADVISOR_H_
