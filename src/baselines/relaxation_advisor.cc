#include "baselines/relaxation_advisor.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "index/candidates.h"

namespace cophy {

RelaxationAdvisor::RelaxationAdvisor(WhatIfOptimizer* whatif, IndexPool* pool,
                                     Workload workload,
                                     RelaxationOptions options)
    : whatif_(whatif), pool_(pool), workload_(std::move(workload)),
      options_(options) {
  COPHY_CHECK(whatif != nullptr);
}

AdvisorResult RelaxationAdvisor::Recommend(const ConstraintSet& constraints) {
  AdvisorResult result;
  Stopwatch watch;
  const int64_t calls_before = whatif_->num_whatif_calls();
  const lp::SolverCounters lp_before = lp::SolverCountersSnapshot();
  Rng rng(options_.seed);

  const double budget = constraints.storage_budget()
                            ? *constraints.storage_budget()
                            : lp::kInf;
  const Catalog& cat = whatif_->catalog();

  // What-if pricing through the fallible boundary: the first ultimate
  // failure poisons the run, and the advisor returns it as its status
  // instead of crashing mid-relaxation.
  Status failure;
  const auto cost = [&](const Query& q, const Configuration& c) -> double {
    Result<double> r = whatif_->Cost(q, c);
    if (!r.ok()) {
      if (failure.ok()) failure = r.status();
      return kInfiniteCost;
    }
    return *r;
  };
  const auto fail_out = [&]() {
    result.configuration = Configuration();
    result.status = failure;
    result.timed_out = failure.code() == StatusCode::kTimeout;
    result.timings.solve_seconds =
        watch.Elapsed() - result.prepare.compression.seconds;
    result.whatif_calls = whatif_->num_whatif_calls() - calls_before;
    result.lp_work = lp::SolverCountersSince(lp_before);
    return result;
  };

  // ---- Shared preparation: workload compression ----------------------
  // Lossless by default: what-if pricing below then runs once per
  // distinct statement with aggregated weights.
  const CompressedWorkload cw =
      CompressWorkload(workload_, cat, options_.compression);
  result.prepare.compression = cw.stats;
  // Preparation (compression) and solve report as separate stages, like
  // the INUM-based advisors.
  result.timings.inum_seconds = cw.stats.seconds;
  const Workload& w = cw.workload;

  // ---- Seed: the best per-query indexes by direct what-if benefit ----
  struct Scored {
    IndexId id;
    double benefit = 0;
  };
  std::unordered_map<IndexId, double> aggregated;
  std::unordered_map<IndexId, std::vector<QueryId>> referencing;
  for (const Query& q : w.statements()) {
    if (watch.Elapsed() > options_.time_limit_seconds) {
      result.timed_out = true;  // seed with what has been priced so far
      break;
    }
    const double base = cost(q, Configuration::Empty());
    std::vector<Scored> per_query;
    for (const Index& idx : CandidatesForQuery(q, cat, CandidateOptions{})) {
      const IndexId id = pool_->Add(idx);
      const double with = cost(q, Configuration({id}));
      if (with < base) per_query.push_back({id, q.weight * (base - with)});
    }
    if (!failure.ok()) return fail_out();
    std::sort(per_query.begin(), per_query.end(),
              [](const Scored& a, const Scored& b) {
                return a.benefit > b.benefit;
              });
    per_query.resize(std::min<size_t>(per_query.size(),
                                      options_.per_query_candidates));
    for (const Scored& s : per_query) {
      aggregated[s.id] += s.benefit;
      referencing[s.id].push_back(q.id);
    }
  }

  std::vector<Scored> ranked;
  ranked.reserve(aggregated.size());
  for (const auto& [id, benefit] : aggregated) ranked.push_back({id, benefit});
  std::sort(ranked.begin(), ranked.end(),
            [](const Scored& a, const Scored& b) {
              return a.benefit > b.benefit;
            });
  if (static_cast<int>(ranked.size()) > options_.max_candidates) {
    ranked.resize(options_.max_candidates);
  }
  result.candidates_considered = static_cast<int>(ranked.size());

  Configuration x;
  for (const Scored& s : ranked) x.Insert(s.id);

  // ---- Relaxation loop: shrink until the budget holds ----------------
  auto size_of = [&](const Configuration& c) {
    return c.SizeBytes(*pool_, cat);
  };
  // Penalty of replacing `x` by `y` (y ⊆ x or a merged variant),
  // estimated on a sample of the queries that referenced removed parts.
  auto penalty = [&](const Configuration& y,
                     const std::vector<QueryId>& affected) {
    double delta = 0;
    std::vector<QueryId> sample = affected;
    if (static_cast<int>(sample.size()) > options_.penalty_sample) {
      for (int i = 0; i < options_.penalty_sample; ++i) {
        std::swap(sample[i], sample[i + rng.Uniform(sample.size() - i)]);
      }
      sample.resize(options_.penalty_sample);
    }
    const double scale =
        affected.empty()
            ? 1.0
            : static_cast<double>(affected.size()) / std::max<size_t>(1, sample.size());
    for (QueryId qid : sample) {
      const Query& q = w[qid];
      delta += q.weight * (cost(q, y) - cost(q, x));
    }
    return std::max(0.0, delta * scale);
  };

  while (size_of(x) > budget && !x.empty()) {
    if (watch.Elapsed() > options_.time_limit_seconds) {
      result.timed_out = true;
      // Budget fallback: shed the largest indexes.
      while (size_of(x) > budget && !x.empty()) {
        std::vector<IndexId> ids = x.ids();
        IndexId largest = ids[0];
        for (IndexId id : ids) {
          if (IndexSizeBytes((*pool_)[id], cat) >
              IndexSizeBytes((*pool_)[largest], cat)) {
            largest = id;
          }
        }
        x.Remove(largest);
      }
      break;
    }
    struct Move {
      Configuration next;
      double ratio;  // penalty per byte saved
    };
    bool have_move = false;
    Move best{Configuration(), 0};

    // Sample transformations: removals and same-table merges.
    std::vector<IndexId> ids = x.ids();
    for (int t = 0; t < options_.transformations_per_step; ++t) {
      Configuration y = x;
      std::vector<QueryId> affected;
      if (t % 3 != 2 || ids.size() < 2) {
        // Removal.
        const IndexId victim = ids[rng.Uniform(ids.size())];
        y.Remove(victim);
        affected = referencing.count(victim) ? referencing[victim]
                                             : std::vector<QueryId>{};
      } else {
        // Merge two indexes on the same table: key = first's key plus
        // the second's unmatched columns (classic index merging).
        const IndexId a = ids[rng.Uniform(ids.size())];
        const IndexId b = ids[rng.Uniform(ids.size())];
        if (a == b || (*pool_)[a].table != (*pool_)[b].table) continue;
        Index merged;
        merged.table = (*pool_)[a].table;
        merged.key_columns = (*pool_)[a].key_columns;
        for (ColumnId c : (*pool_)[b].key_columns) {
          if (std::find(merged.key_columns.begin(), merged.key_columns.end(),
                        c) == merged.key_columns.end()) {
            merged.key_columns.push_back(c);
          }
        }
        const IndexId mid = pool_->Add(merged);
        y.Remove(a);
        y.Remove(b);
        y.Insert(mid);
        for (IndexId v : {a, b}) {
          if (referencing.count(v)) {
            affected.insert(affected.end(), referencing[v].begin(),
                            referencing[v].end());
          }
        }
        referencing[mid] = affected;
      }
      const double saved = size_of(x) - size_of(y);
      if (saved <= 0) continue;
      const double ratio = penalty(y, affected) / saved;
      if (!failure.ok()) return fail_out();
      if (!have_move || ratio < best.ratio) {
        best = {std::move(y), ratio};
        have_move = true;
      }
    }
    if (!have_move) {
      // Fall back: drop the largest index.
      IndexId largest = ids[0];
      for (IndexId id : ids) {
        if (IndexSizeBytes((*pool_)[id], cat) >
            IndexSizeBytes((*pool_)[largest], cat)) {
          largest = id;
        }
      }
      x.Remove(largest);
      continue;
    }
    x = std::move(best.next);
  }

  result.configuration = std::move(x);
  result.timings.solve_seconds = watch.Elapsed() - cw.stats.seconds;
  result.whatif_calls = whatif_->num_whatif_calls() - calls_before;
  result.lp_work = lp::SolverCountersSince(lp_before);
  result.status = Status::Ok();
  return result;
}

}  // namespace cophy
