#include "baselines/greedy_advisor.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/stopwatch.h"
#include "index/candidates.h"
#include "workload/compressor.h"

namespace cophy {

GreedyAdvisor::GreedyAdvisor(WhatIfOptimizer* whatif, IndexPool* pool,
                             Workload workload, GreedyOptions options)
    : whatif_(whatif), pool_(pool), workload_(std::move(workload)),
      options_(options) {
  COPHY_CHECK(whatif != nullptr);
}

AdvisorResult GreedyAdvisor::Recommend(const ConstraintSet& constraints) {
  AdvisorResult result;
  Stopwatch watch;
  const int64_t calls_before = whatif_->num_whatif_calls();
  const Catalog& cat = whatif_->catalog();
  const double budget = constraints.storage_budget()
                            ? *constraints.storage_budget()
                            : lp::kInf;

  // What-if pricing through the fallible boundary: the first ultimate
  // failure poisons the run, and the advisor returns it as its status
  // instead of crashing mid-greedy.
  Status failure;
  const auto cost = [&](const Query& q, const Configuration& c) -> double {
    Result<double> r = whatif_->Cost(q, c);
    if (!r.ok()) {
      if (failure.ok()) failure = r.status();
      return kInfiniteCost;
    }
    return *r;
  };
  const auto fail_out = [&]() {
    result.configuration = Configuration();
    result.status = failure;
    result.timed_out = failure.code() == StatusCode::kTimeout;
    result.timings.solve_seconds =
        watch.Elapsed() - result.prepare.compression.seconds;
    result.whatif_calls = whatif_->num_whatif_calls() - calls_before;
    return result;
  };

  // ---- Workload compression by random sampling -----------------------
  // Tool-B's compression is the shared compressor's lossy mode with
  // shape clustering off: a weight-rescaled random sample stands in for
  // the full workload.
  CompressionOptions copts;
  copts.mode = CompressionMode::kLossy;
  copts.cluster_by_shape = false;
  copts.max_statements = options_.sample_size;
  copts.seed = options_.seed;
  const CompressedWorkload cw = CompressWorkload(workload_, cat, copts);
  result.prepare.compression = cw.stats;
  // Preparation (compression) and solve report as separate stages, like
  // the INUM-based advisors.
  result.timings.inum_seconds = cw.stats.seconds;
  const Workload& sample = cw.workload;

  // ---- Per-query candidate recommendation on the sample --------------
  std::unordered_map<IndexId, double> benefit;
  std::unordered_map<IndexId, std::vector<QueryId>> referencing;
  for (const Query& q : sample.statements()) {
    const double base = cost(q, Configuration::Empty());
    std::vector<std::pair<double, IndexId>> scored;
    for (const Index& idx : CandidatesForQuery(q, cat, CandidateOptions{})) {
      const IndexId id = pool_->Add(idx);
      const double with = cost(q, Configuration({id}));
      if (with < base) scored.push_back({q.weight * (base - with), id});
    }
    if (!failure.ok()) return fail_out();
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    scored.resize(
        std::min<size_t>(scored.size(), options_.per_query_candidates));
    for (const auto& [b, id] : scored) {
      benefit[id] += b;
      referencing[id].push_back(q.id);
    }
  }
  std::vector<std::pair<double, IndexId>> ranked;
  for (const auto& [id, b] : benefit) ranked.push_back({b, id});
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (static_cast<int>(ranked.size()) > options_.max_candidates) {
    ranked.resize(options_.max_candidates);
  }
  result.candidates_considered = static_cast<int>(ranked.size());

  // ---- Greedy benefit-per-byte knapsack on the compressed workload ---
  // The compressor already rescaled sample weights to stand in for the
  // full workload, so deltas need no extra scale factor.
  Configuration x;
  double used = 0;
  std::vector<double> cur(sample.size(), 0);
  for (const Query& q : sample.statements()) {
    cur[q.id] = cost(q, Configuration::Empty());
  }
  if (!failure.ok()) return fail_out();
  std::vector<IndexId> pool_ids;
  for (const auto& [b, id] : ranked) pool_ids.push_back(id);

  bool improved = true;
  while (improved) {
    improved = false;
    double best_ratio = 0;
    IndexId best_id = kInvalidIndex;
    double best_delta = 0;
    for (IndexId id : pool_ids) {
      if (x.Contains(id)) continue;
      const double sz = IndexSizeBytes((*pool_)[id], cat);
      if (used + sz > budget) continue;
      Configuration y = x;
      y.Insert(id);
      double delta = 0;
      for (QueryId qid : referencing[id]) {
        const Query& q = sample[qid];
        delta += q.weight * (cur[qid] - cost(q, y));
      }
      const double ratio = delta / std::max(1.0, sz);
      if (delta > 0 && ratio > best_ratio) {
        best_ratio = ratio;
        best_id = id;
        best_delta = delta;
      }
    }
    if (!failure.ok()) return fail_out();
    if (best_id != kInvalidIndex && best_delta > 0) {
      x.Insert(best_id);
      used += IndexSizeBytes((*pool_)[best_id], cat);
      for (QueryId qid : referencing[best_id]) {
        cur[qid] = cost(sample[qid], x);
      }
      if (!failure.ok()) return fail_out();
      improved = true;
    }
  }

  result.configuration = std::move(x);
  result.timings.solve_seconds = watch.Elapsed() - cw.stats.seconds;
  result.whatif_calls = whatif_->num_whatif_calls() - calls_before;
  result.status = Status::Ok();
  return result;
}

}  // namespace cophy
