// "Tool-A": a relaxation-based commercial-style advisor modeled on
// Bruno & Chaudhuri (SIGMOD'05), the technique the paper attributes to
// Tool-A. It starts from the best per-query configurations (an
// over-budget upper bound) and repeatedly applies the cheapest
// relaxation transformation — index removal or merging — until the
// storage constraint holds. Every transformation is priced with
// *direct what-if optimization* (no INUM), and penalties are estimated
// on a bounded sample of affected queries; both are the mechanisms
// behind Tool-A's poor scaling with workload size in §5.2.
#ifndef COPHY_BASELINES_RELAXATION_ADVISOR_H_
#define COPHY_BASELINES_RELAXATION_ADVISOR_H_

#include <limits>
#include <vector>

#include "baselines/advisor.h"
#include "workload/compressor.h"

namespace cophy {

struct RelaxationOptions {
  /// Workload compression applied before seeding (shared compressor).
  /// Lossless by default: cost-equivalent statements are priced once
  /// with aggregated weights, which changes nothing semantically but
  /// removes redundant what-if calls.
  CompressionOptions compression;
  /// Best indexes kept per query when seeding the initial configuration.
  int per_query_candidates = 2;
  /// Global cap on the candidate set (the paper traced Tool-A at ~170).
  int max_candidates = 170;
  /// Queries sampled per penalty evaluation (estimation noise grows
  /// with workload size).
  int penalty_sample = 12;
  /// Transformations priced per relaxation step.
  int transformations_per_step = 24;
  /// Wall-clock budget; when exceeded the advisor falls back to
  /// dropping the largest indexes until the storage constraint holds
  /// (and the result is marked timed_out). The paper's Table 1 reports
  /// Tool-A timing out on the hardest cell.
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  uint64_t seed = 7;
};

class RelaxationAdvisor : public Advisor {
 public:
  RelaxationAdvisor(WhatIfOptimizer* whatif, IndexPool* pool,
                    Workload workload, RelaxationOptions options = {});

  std::string name() const override { return "tool-a"; }

  /// A failed what-if call aborts the run: the error lands in
  /// AdvisorResult::status (timed_out set for kTimeout) — never a
  /// crash.
  AdvisorResult Recommend(const ConstraintSet& constraints) override;

 private:
  WhatIfOptimizer* whatif_;
  IndexPool* pool_;
  Workload workload_;
  RelaxationOptions options_;
};

}  // namespace cophy

#endif  // COPHY_BASELINES_RELAXATION_ADVISOR_H_
