#include "baselines/advisor.h"

namespace cophy {

double WorkloadCost(WhatIfOptimizer& opt, const Workload& w,
                    const Configuration& x) {
  double total = 0;
  for (const Query& q : w.statements()) {
    total += q.weight * opt.Cost(q, x);
  }
  return total;
}

double Perf(WhatIfOptimizer& opt, const Workload& w, const Configuration& x) {
  const double base = WorkloadCost(opt, w, Configuration::Empty());
  const double with = WorkloadCost(opt, w, x);
  if (base <= 0) return 0;
  return 1.0 - with / base;
}

}  // namespace cophy
