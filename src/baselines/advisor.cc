#include "baselines/advisor.h"

namespace cophy {

double WorkloadCost(WhatIfOptimizer& opt, const Workload& w,
                    const Configuration& x) {
  double total = 0;
  for (const Query& q : w.statements()) {
    // The evaluation metric is ground truth by definition; score it
    // against a healthy backend (value() aborts on a failed call).
    total += q.weight * opt.Cost(q, x).value();
  }
  return total;
}

double Perf(WhatIfOptimizer& opt, const Workload& w, const Configuration& x) {
  const double base = WorkloadCost(opt, w, Configuration::Empty());
  const double with = WorkloadCost(opt, w, x);
  if (base <= 0) return 0;
  return 1.0 - with / base;
}

}  // namespace cophy
