// "Tool-B": a DB2 Design-Advisor-style greedy tool (Zilio et al.,
// VLDB'04), the technique the paper attributes to Tool-B. It first
// *compresses* the workload by random sampling, recommends per-query
// candidates on the sample, and fills the storage budget greedily by
// benefit-per-byte with direct what-if pricing. Sampling works well on
// homogeneous workloads (few templates) and poorly on heterogeneous
// ones — the paper's Fig. 7 vs Fig. 9 contrast.
#ifndef COPHY_BASELINES_GREEDY_ADVISOR_H_
#define COPHY_BASELINES_GREEDY_ADVISOR_H_

#include <vector>

#include "baselines/advisor.h"

namespace cophy {

struct GreedyOptions {
  /// Workload-compression sample size (runs through the shared
  /// compressor's lossy mode, shape clustering off — pure sampling).
  int sample_size = 40;
  /// Global candidate cap (the paper traced Tool-B at ~45).
  int max_candidates = 45;
  /// Candidates kept per sampled query.
  int per_query_candidates = 3;
  uint64_t seed = 11;
};

class GreedyAdvisor : public Advisor {
 public:
  GreedyAdvisor(WhatIfOptimizer* whatif, IndexPool* pool, Workload workload,
                GreedyOptions options = {});

  std::string name() const override { return "tool-b"; }

  /// A failed what-if call aborts the run: the error lands in
  /// AdvisorResult::status (timed_out set for kTimeout) — never a
  /// crash.
  AdvisorResult Recommend(const ConstraintSet& constraints) override;

 private:
  WhatIfOptimizer* whatif_;
  IndexPool* pool_;
  Workload workload_;
  GreedyOptions options_;
};

}  // namespace cophy

#endif  // COPHY_BASELINES_GREEDY_ADVISOR_H_
