// The ILP baseline (Papadomanolakis & Ailamaki, SMDB'07; §5.3): index
// tuning as a BIP with one variable per *atomic configuration* rather
// than per index. Because the number of atomic configurations grows
// with Π|S_i|, the technique must enumerate, INUM-cost, and prune
// configurations per query before the solver runs — which is exactly
// the build-time bottleneck the paper's Figures 5/10 show. As in the
// paper, our implementation shares CoPhy's INUM layer and solver so the
// comparison isolates the formulation difference.
#ifndef COPHY_BASELINES_ILP_ADVISOR_H_
#define COPHY_BASELINES_ILP_ADVISOR_H_

#include <memory>
#include <vector>

#include "baselines/advisor.h"
#include "common/thread_pool.h"
#include "core/prepared.h"
#include "core/session.h"
#include "inum/inum.h"

namespace cophy {

/// Pruning knobs (the counterpart of [13]'s heuristics).
struct IlpOptions {
  /// Shared preparation stage (compression + CGen + parallel INUM) —
  /// identical to CoPhy's, as in §5.1, so the comparison isolates the
  /// formulation difference.
  PrepareOptions prepare;
  /// Candidate indexes kept per referenced table when enumerating
  /// atomic configurations.
  int per_table_candidates = 8;
  /// Atomic configurations kept per query after costing.
  int max_configs_per_query = 400;
  double gap_target = 0.05;
  int64_t node_limit = 50'000;
  double time_limit_seconds = lp::kInf;
};

class IlpAdvisor : public Advisor {
 public:
  IlpAdvisor(WhatIfOptimizer* whatif, IndexPool* pool, Workload workload,
             IlpOptions options = {});

  std::string name() const override { return "ilp"; }

  AdvisorResult Recommend(const ConstraintSet& constraints) override;

  /// Restricts the candidate set (must be called after Recommend's
  /// implicit CGen, or use PrepareWithCandidates).
  void SetCandidates(std::vector<IndexId> candidates) {
    explicit_candidates_ = std::move(candidates);
    session_.reset();  // next Recommend re-prepares with the new set
  }

  /// Total atomic configurations enumerated in the last run.
  int64_t configurations_enumerated() const { return configs_enumerated_; }

 private:
  /// Worker pool for the presolve scans (prepare.num_threads; nullptr =
  /// inline), lazily created and reused across Recommend calls.
  ThreadPool* PresolvePool();

  WhatIfOptimizer* whatif_;
  IndexPool* pool_;
  Workload workload_;
  IlpOptions options_;
  std::vector<IndexId> explicit_candidates_;
  int64_t configs_enumerated_ = 0;
  std::unique_ptr<ThreadPool> presolve_pool_;  // lazily created
  /// The (1-shard) preparation session, reused across Recommend calls:
  /// a constraint-only re-Recommend pays no compression/CGen/INUM work.
  std::unique_ptr<AdvisorSession> session_;
};

}  // namespace cophy

#endif  // COPHY_BASELINES_ILP_ADVISOR_H_
