#include "baselines/cophy_advisor.h"

namespace cophy {

AdvisorResult CoPhyAdvisor::Recommend(const ConstraintSet& constraints) {
  AdvisorResult result;
  const int64_t calls_before = whatif_->num_whatif_calls();
  const lp::SolverCounters lp_before = lp::SolverCountersSnapshot();
  Recommendation rec;
  if (options_.prepare.compression.mode == CompressionMode::kLossy) {
    // Sessions reject lossy compression (their class routing is what
    // makes sharding exact); run the classic one-shot path instead.
    // The prepared state is still reused across Recommend calls.
    if (lossy_advisor_ == nullptr) {
      lossy_advisor_ = std::make_unique<CoPhy>(whatif_, pool_, workload_,
                                               options_);
      result.status = lossy_advisor_->Prepare();
      if (!result.status.ok()) {
        result.timed_out = result.status.code() == StatusCode::kTimeout;
        lossy_advisor_.reset();
        return result;
      }
    }
    rec = lossy_advisor_->Tune(constraints);
  } else {
    if (session_ == nullptr) {
      SessionOptions so;
      so.tuning = options_;
      so.num_shards = num_shards_;
      session_ = std::make_unique<AdvisorSession>(whatif_, pool_, so);
      session_->AddWorkload(workload_);
    }
    // Tune (not Retune): every Recommend solves with the full cold
    // budget for benchmark comparability, but the prepared session
    // state is reused verbatim across calls — a constraint-only
    // re-Recommend pays no compression, CGen, or INUM work (and no
    // what-if calls).
    rec = session_->Tune(constraints);
  }
  result.status = rec.status;
  result.timed_out = rec.status.code() == StatusCode::kTimeout;
  result.configuration = rec.configuration;
  result.timings = rec.timings;
  result.candidates_considered = rec.num_candidates;
  result.prepare = rec.prepare;
  result.presolve = rec.presolve;
  result.coverage = rec.coverage;
  result.degraded = rec.degraded;
  result.whatif_calls = whatif_->num_whatif_calls() - calls_before;
  result.solver_nodes = rec.nodes;
  result.solver_bound_evaluations = rec.bound_evaluations;
  result.lp_work = lp::SolverCountersSince(lp_before);
  return result;
}

}  // namespace cophy
