#include "baselines/cophy_advisor.h"

namespace cophy {

AdvisorResult CoPhyAdvisor::Recommend(const ConstraintSet& constraints) {
  AdvisorResult result;
  const int64_t calls_before = sim_->num_whatif_calls();
  const lp::SolverCounters lp_before = lp::GlobalSolverCounters();
  session_ = std::make_unique<CoPhy>(sim_, pool_, workload_, options_);
  result.status = session_->Prepare();
  if (!result.status.ok()) return result;
  const Recommendation rec = session_->Tune(constraints);
  result.status = rec.status;
  result.configuration = rec.configuration;
  result.timings = rec.timings;
  result.candidates_considered = rec.num_candidates;
  result.prepare = rec.prepare;
  result.whatif_calls = sim_->num_whatif_calls() - calls_before;
  result.solver_nodes = rec.nodes;
  result.solver_bound_evaluations = rec.bound_evaluations;
  result.lp_work = lp::SolverCountersSince(lp_before);
  return result;
}

}  // namespace cophy
