// The common advisor interface and the paper's evaluation metric.
// Every technique (CoPhy, ILP, Tool-A-like, Tool-B-like) implements
// Advisor, and is scored with perf(X, W) computed by *direct* what-if
// optimization — the ground truth of the underlying optimizer's cost
// model, independent of any approximation the advisor used (§5.1).
#ifndef COPHY_BASELINES_ADVISOR_H_
#define COPHY_BASELINES_ADVISOR_H_

#include <string>

#include "constraints/constraints.h"
#include "core/cophy.h"
#include "lp/simplex.h"
#include "optimizer/whatif.h"

namespace cophy {

/// Outcome of one advisor run.
struct AdvisorResult {
  Status status;
  Configuration configuration;
  TuningTimings timings;
  int candidates_considered = 0;
  int64_t whatif_calls = 0;  ///< optimizer invocations during the run
  bool timed_out = false;    ///< advisor hit its wall-clock budget
  int64_t solver_nodes = 0;  ///< branch-and-bound nodes explored
  int64_t solver_bound_evaluations = 0;  ///< structured-solver bound calls
  /// BIP presolve reductions applied before the solve (advisors that
  /// never build a BIP leave it empty).
  lp::PresolveStats presolve;
  /// LP pivot/pricing work performed during the run (delta of
  /// lp::GlobalSolverCounters; zero for advisors that never solve LPs).
  lp::SolverCounters lp_work;
  /// Preparation-stage accounting: workload compression and (for
  /// INUM-based advisors) threading/sharing. All four techniques now
  /// run their compression through the shared compressor.
  PrepareStats prepare;
  /// Degraded-mode accounting (see Recommendation): the fraction of
  /// live statement weight the recommendation covers, and whether any
  /// part of it rests on quarantined shards or last-known-cache what-if
  /// answers.
  double coverage = 1.0;
  bool degraded = false;
  double TotalSeconds() const { return timings.Total(); }
};

/// An index advisor: given constraints (at minimum a storage budget),
/// recommend a configuration for the workload it was constructed with.
class Advisor {
 public:
  virtual ~Advisor() = default;
  virtual std::string name() const = 0;
  virtual AdvisorResult Recommend(const ConstraintSet& constraints) = 0;
};

/// Σ_q f_q · cost(q, X), evaluated with direct what-if calls.
double WorkloadCost(WhatIfOptimizer& opt, const Workload& w,
                    const Configuration& x);

/// perf(X, W) = 1 − cost(X ∪ X0, W) / cost(X0, W). The clustered-PK
/// baseline X0 is implicit (the simulator always exposes it), so the
/// empty configuration plays the role of X0.
double Perf(WhatIfOptimizer& opt, const Workload& w, const Configuration& x);

}  // namespace cophy

#endif  // COPHY_BASELINES_ADVISOR_H_
