#include "baselines/ilp_advisor.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/stopwatch.h"
#include "core/bipgen.h"
#include "index/candidates.h"
#include "lp/choice_problem.h"
#include "lp/presolve.h"

namespace cophy {

IlpAdvisor::IlpAdvisor(WhatIfOptimizer* whatif, IndexPool* pool,
                       Workload workload, IlpOptions options)
    : whatif_(whatif), pool_(pool), workload_(std::move(workload)),
      options_(options) {
  COPHY_CHECK(whatif != nullptr);
  COPHY_CHECK(pool != nullptr);
}

ThreadPool* IlpAdvisor::PresolvePool() {
  // Presolve scans reuse the preparation stage's thread knob.
  const int n = ResolveThreadCount(options_.prepare.num_threads);
  if (n <= 1) return nullptr;
  if (presolve_pool_ == nullptr || presolve_pool_->size() != n) {
    presolve_pool_ = std::make_unique<ThreadPool>(n);
  }
  return presolve_pool_.get();
}

AdvisorResult IlpAdvisor::Recommend(const ConstraintSet& constraints) {
  AdvisorResult result;
  const int64_t calls_before = whatif_->num_whatif_calls();
  const lp::SolverCounters lp_before = lp::SolverCountersSnapshot();
  configs_enumerated_ = 0;

  // --- Shared preparation stage (same path as CoPhy, as in §5.1),
  // through a persistent 1-shard session so repeated Recommend calls
  // (constraint-only changes) reuse the prepared state verbatim. Lossy
  // compression (rejected by sessions) keeps the classic one-shot
  // PreparedWorkload path. ------
  Stopwatch inum_watch;
  PreparedWorkload lossy_prep;
  const PreparedWorkload* prep = nullptr;
  const std::vector<IndexId>* cand_ptr = nullptr;
  if (options_.prepare.compression.mode == CompressionMode::kLossy) {
    const Status st =
        explicit_candidates_.empty()
            ? lossy_prep.Prepare(whatif_, pool_, workload_, options_.prepare)
            : lossy_prep.PrepareWithCandidates(whatif_, pool_, workload_,
                                               options_.prepare,
                                               explicit_candidates_);
    if (!st.ok()) {
      result.status = st;
      result.timed_out = st.code() == StatusCode::kTimeout;
      return result;
    }
    prep = &lossy_prep;
    cand_ptr = &lossy_prep.candidates();
    result.prepare = lossy_prep.stats();
  } else {
    if (session_ == nullptr) {
      SessionOptions so;
      so.tuning.prepare = options_.prepare;
      so.num_shards = 1;
      session_ = std::make_unique<AdvisorSession>(whatif_, pool_, so);
      session_->AddWorkload(workload_);
      if (!explicit_candidates_.empty()) {
        const Status st = session_->SetExplicitCandidates(explicit_candidates_);
        if (!st.ok()) {
          result.status = st;
          session_.reset();
          return result;
        }
      }
    }
    const Status prep_status = session_->Refresh();
    if (!prep_status.ok()) {
      result.status = prep_status;
      result.timed_out = prep_status.code() == StatusCode::kTimeout;
      return result;
    }
    prep = &session_->shard_prepared(0);
    cand_ptr = &session_->candidates();
    result.prepare = session_->prepare_stats();
  }
  const Inum& inum = prep->inum();
  const Workload& w = prep->tuned();
  const std::vector<IndexId>& candidates = *cand_ptr;
  result.timings.inum_seconds = inum_watch.Elapsed();
  result.candidates_considered = static_cast<int>(candidates.size());

  // --- Build: enumerate + cost + prune atomic configurations ---------
  Stopwatch build_watch;
  std::unordered_map<IndexId, int> dense;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    dense.emplace(candidates[i], i);
  }

  lp::ChoiceProblem p;
  p.num_indexes = static_cast<int>(candidates.size());
  p.fixed_cost.assign(p.num_indexes, 0.0);
  p.size.resize(p.num_indexes);
  for (int i = 0; i < p.num_indexes; ++i) {
    p.size[i] = IndexSizeBytes((*pool_)[candidates[i]], whatif_->catalog());
  }
  for (QueryId uid : w.UpdateIds()) {
    const Query& uq = w[uid];
    p.constant_cost += uq.weight * inum.BaseUpdateCost(uid);
    for (int i = 0; i < p.num_indexes; ++i) {
      p.fixed_cost[i] += uq.weight * inum.UpdateCost(candidates[i], uid);
    }
  }

  const Configuration empty;
  for (const Query& q : w.statements()) {
    const double base_cost = inum.ShellCost(q.id, empty);

    // Per-slot top-P candidates by individual benefit. As in the
    // original technique, the pruning pass prices *every* candidate on
    // the table — this exhaustive scoring is what makes ILP's build
    // phase dominate its runtime (Figs. 5/10).
    std::vector<std::vector<IndexId>> per_slot(q.tables.size());
    for (size_t slot = 0; slot < q.tables.size(); ++slot) {
      const TableId t = q.tables[slot];
      std::vector<std::pair<double, IndexId>> ranked;
      for (IndexId id : candidates) {
        if ((*pool_)[id].table != t) continue;
        const double benefit =
            base_cost - inum.ShellCost(q.id, Configuration({id}));
        ranked.push_back({benefit, id});
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (int i = 0;
           i < std::min<int>(options_.per_table_candidates,
                             static_cast<int>(ranked.size()));
           ++i) {
        if (ranked[i].first > 0) per_slot[slot].push_back(ranked[i].second);
      }
    }

    // Cross product over slots (I∅ included as "no index").
    std::vector<std::pair<double, std::vector<IndexId>>> configs;
    std::vector<size_t> pick(q.tables.size(), 0);
    constexpr int kEnumerationCap = 4096;
    int enumerated = 0;
    while (enumerated < kEnumerationCap) {
      std::vector<IndexId> config;
      for (size_t slot = 0; slot < per_slot.size(); ++slot) {
        if (pick[slot] > 0) config.push_back(per_slot[slot][pick[slot] - 1]);
      }
      const double cost = inum.ShellCost(q.id, Configuration(config));
      configs.push_back({cost, std::move(config)});
      ++enumerated;
      size_t i = 0;
      while (i < pick.size() && ++pick[i] == per_slot[i].size() + 1) {
        pick[i] = 0;
        ++i;
      }
      if (i == pick.size()) break;
    }
    configs_enumerated_ += enumerated;
    std::sort(configs.begin(), configs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (static_cast<int>(configs.size()) > options_.max_configs_per_query) {
      configs.resize(options_.max_configs_per_query);
    }

    // Flat choice structure: one plan per surviving configuration.
    lp::ChoiceQuery cq;
    cq.weight = q.weight;
    bool has_empty = false;
    for (auto& [cost, config] : configs) {
      lp::ChoicePlan plan;
      plan.beta = cost;
      for (IndexId id : config) {
        lp::ChoiceSlot slot;
        slot.options.push_back({dense.at(id), 0.0});
        plan.slots.push_back(std::move(slot));
      }
      if (config.empty()) has_empty = true;
      cq.plans.push_back(std::move(plan));
    }
    if (!has_empty) {
      lp::ChoicePlan base_plan;
      base_plan.beta = base_cost;
      cq.plans.push_back(std::move(base_plan));
    }
    p.queries.push_back(std::move(cq));
  }

  if (constraints.storage_budget()) {
    p.storage_budget = *constraints.storage_budget();
  }
  p.z_rows = TranslateIndexConstraints(constraints, candidates, *pool_,
                                       whatif_->catalog());
  result.timings.build_seconds = build_watch.Elapsed();

  // --- Solve (same presolve + root-LP path as CoPhy) ------------------
  Stopwatch solve_watch;
  lp::ChoiceSolveOptions so;
  so.gap_target = options_.gap_target;
  so.node_limit = options_.node_limit;
  so.time_limit_seconds = options_.time_limit_seconds;
  const lp::ChoiceSolution sol =
      lp::SolveChoiceProblem(p, so, &result.presolve, PresolvePool());
  result.timings.solve_seconds = solve_watch.Elapsed();
  result.whatif_calls = whatif_->num_whatif_calls() - calls_before;
  result.solver_nodes = sol.nodes;
  result.solver_bound_evaluations = sol.bound_evaluations;
  result.lp_work = lp::SolverCountersSince(lp_before);
  result.status = sol.status;
  if (!sol.status.ok()) return result;

  std::vector<IndexId> chosen;
  for (size_t i = 0; i < sol.selected.size(); ++i) {
    if (sol.selected[i]) chosen.push_back(candidates[i]);
  }
  result.configuration = Configuration(std::move(chosen));
  return result;
}

}  // namespace cophy
