// The what-if optimizer interface (§2): the only DBMS-facing surface in
// the whole system. CoPhy, INUM, and every baseline advisor consume the
// DBMS exclusively through this interface, which is what makes the
// advisor portable across systems (CoPhyA / CoPhyB).
//
// Every costing entry point is fallible: a real backend (a planner-hook
// what-if interface over a live server) times out, hits resource limits,
// and throws transient errors, so the boundary returns Result<...> and
// the pipeline above propagates Status instead of aborting. Decorators
// compose over this interface: FaultInjectingWhatIf (deterministic fault
// harness) and ResilientWhatIf (retry/backoff, circuit breaker, degraded
// answers) both wrap any WhatIfOptimizer.
#ifndef COPHY_OPTIMIZER_WHATIF_H_
#define COPHY_OPTIMIZER_WHATIF_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "index/index.h"
#include "optimizer/config.h"
#include "query/query.h"

namespace cophy {

/// An interesting order: a column sequence the slot's access path must
/// deliver. Empty = no order requirement.
using OrderSpec = std::vector<ColumnId>;

inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// One template plan (INUM's TPlans(q) element, §2/Fig. 1): a choice of
/// interesting order per table slot plus the internal plan cost β of the
/// best physical plan given those leaf orders (leaf access excluded).
struct TemplatePlan {
  std::vector<OrderSpec> slot_orders;  ///< one per q.tables slot
  double internal_cost = 0.0;          ///< β_qk
};

/// Counters a fault-tolerant backend exposes about its own behaviour
/// (all zero for an always-healthy backend such as SystemSimulator).
/// Snapshot semantics: monotone counters since construction.
struct WhatIfHealth {
  int64_t retries = 0;            ///< extra attempts beyond the first
  int64_t failures = 0;           ///< calls that ultimately errored
  int64_t degraded = 0;           ///< calls served from last-known cost
  int64_t breaker_fast_fails = 0; ///< calls rejected by an open breaker
  int breaker_trips = 0;          ///< closed → open transitions
  bool breaker_open = false;      ///< breaker currently open
};

/// Abstract what-if optimizer. `Cost(q, X)` is the cost of the optimal
/// plan for q when exactly the hypothetical indexes in X (plus the
/// clustered PKs) exist; `UpdateCost(a, q)` is the paper's ucost(a, q).
///
/// The INUM preprocessing surface (EnumerateTemplates / AccessCost /
/// ShellCost / BaseUpdateCost) lives here too: INUM's Prepare talks to
/// the DBMS through these calls, so faults must be able to surface from
/// each of them. kInfiniteCost is a *value*, not an error — it means
/// "this access path cannot deliver that order".
class WhatIfOptimizer {
 public:
  virtual ~WhatIfOptimizer() = default;

  /// Full statement cost under configuration X. For UPDATE statements
  /// this includes the query-shell cost, the base-table maintenance
  /// cost, and the maintenance of every affected index in X.
  virtual Result<double> Cost(const Query& q, const Configuration& x) = 0;

  /// Maintenance cost of index `a` for update statement `q`
  /// (0 for SELECTs and unaffected indexes).
  virtual Result<double> UpdateCost(IndexId a, const Query& q) = 0;

  /// Enumerates TPlans(q): every slot-order combination with its β.
  /// This is INUM's preprocessing — each template costs one
  /// optimization, so the call advances the what-if counter by K_q.
  virtual Result<std::vector<TemplatePlan>> EnumerateTemplates(
      const Query& q) = 0;

  /// γ(q, slot, order, a): cost for access path `a` (kInvalidIndex = the
  /// base clustered-PK path I∅) to produce slot `slot`'s rows sorted by
  /// `order`; kInfiniteCost if the path cannot deliver that order.
  /// On a healthy backend this is a pure function of its arguments —
  /// that is what linear composability means operationally.
  virtual Result<double> AccessCost(const Query& q, int slot,
                                    const OrderSpec& order, IndexId a) = 0;

  /// Cost of q's *query shell* (for UPDATEs: the scan locating the
  /// tuples to update; for SELECTs: the query itself) under X.
  virtual Result<double> ShellCost(const Query& q, const Configuration& x) = 0;

  /// The constant base-table maintenance cost c_q of an update (0 for
  /// SELECTs); independent of the configuration.
  virtual Result<double> BaseUpdateCost(const Query& q) = 0;

  /// The per-slot interesting orders the optimizer considers for q
  /// (empty order first). Pure catalog metadata — infallible.
  virtual std::vector<std::vector<OrderSpec>> SlotOrderCandidates(
      const Query& q) const = 0;

  virtual const Catalog& catalog() const = 0;
  virtual const IndexPool& pool() const = 0;

  /// Number of what-if optimizations performed so far (each Cost() call
  /// is a full re-optimization, as with a real what-if interface).
  virtual int64_t num_whatif_calls() const = 0;

  /// Fault-handling counters. The default backend is always healthy.
  virtual WhatIfHealth health() const { return {}; }
};

}  // namespace cophy

#endif  // COPHY_OPTIMIZER_WHATIF_H_
