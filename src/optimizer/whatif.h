// The what-if optimizer interface (§2): the only DBMS-facing surface in
// the whole system. CoPhy, INUM, and every baseline advisor consume the
// DBMS exclusively through this interface, which is what makes the
// advisor portable across systems (CoPhyA / CoPhyB).
#ifndef COPHY_OPTIMIZER_WHATIF_H_
#define COPHY_OPTIMIZER_WHATIF_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "index/index.h"
#include "optimizer/config.h"
#include "query/query.h"

namespace cophy {

/// Abstract what-if optimizer. `Cost(q, X)` is the cost of the optimal
/// plan for q when exactly the hypothetical indexes in X (plus the
/// clustered PKs) exist; `UpdateCost(a, q)` is the paper's ucost(a, q).
class WhatIfOptimizer {
 public:
  virtual ~WhatIfOptimizer() = default;

  /// Full statement cost under configuration X. For UPDATE statements
  /// this includes the query-shell cost, the base-table maintenance
  /// cost, and the maintenance of every affected index in X.
  virtual double Cost(const Query& q, const Configuration& x) = 0;

  /// Maintenance cost of index `a` for update statement `q`
  /// (0 for SELECTs and unaffected indexes).
  virtual double UpdateCost(IndexId a, const Query& q) = 0;

  virtual const Catalog& catalog() const = 0;
  virtual const IndexPool& pool() const = 0;

  /// Number of what-if optimizations performed so far (each Cost() call
  /// is a full re-optimization, as with a real what-if interface).
  virtual int64_t num_whatif_calls() const = 0;
};

}  // namespace cophy

#endif  // COPHY_OPTIMIZER_WHATIF_H_
