// Cost-model constants for the simulated DBMS optimizer. Two profiles
// ("System-A" and "System-B") mirror the paper's two commercial systems:
// the same plan space priced with different constants, which is what
// makes CoPhyA and CoPhyB recommend different configurations.
#ifndef COPHY_OPTIMIZER_COST_MODEL_H_
#define COPHY_OPTIMIZER_COST_MODEL_H_

#include <string>

namespace cophy {

/// Plan-costing constants (PostgreSQL-style units: 1.0 = one sequential
/// page read).
struct CostModel {
  std::string name = "system-a";
  double seq_page = 1.0;       ///< sequential page read
  double rand_page = 4.0;      ///< random page read
  double cpu_tuple = 0.01;     ///< per-tuple processing
  double cpu_oper = 0.005;     ///< per-tuple operator work (hash/compare)
  double sort_factor = 1.2;    ///< multiplier on n·log2(n)·cpu_oper sorts
  double hash_factor = 1.6;    ///< multiplier on build-side hash work
  double btree_descent = 12.0; ///< fixed root-to-leaf descent cost
  double update_leaf = 4.5;    ///< per-row index-maintenance cost
  double sort_mem_rows = 1e6;  ///< rows fitting in sort memory (spill knee)

  /// "System-A": disk-oriented, expensive random I/O, cheap CPU.
  static CostModel SystemA();
  /// "System-B": faster random I/O (SSD-like) but costlier CPU and
  /// sorts; favors different index choices than System-A.
  static CostModel SystemB();
};

}  // namespace cophy

#endif  // COPHY_OPTIMIZER_COST_MODEL_H_
