// Configuration X: the set of (hypothetical) secondary indexes visible
// to the what-if optimizer. The clustered primary-key indexes (the
// paper's baseline X0) are always implicitly present.
#ifndef COPHY_OPTIMIZER_CONFIG_H_
#define COPHY_OPTIMIZER_CONFIG_H_

#include <algorithm>
#include <vector>

#include "index/index.h"

namespace cophy {

/// An index configuration, stored as a sorted id vector for O(log n)
/// membership tests.
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<IndexId> ids) : ids_(std::move(ids)) {
    Normalize();
  }

  static Configuration Empty() { return Configuration(); }

  bool Contains(IndexId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }
  void Insert(IndexId id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) ids_.insert(it, id);
  }
  void Remove(IndexId id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) ids_.erase(it);
  }

  const std::vector<IndexId>& ids() const { return ids_; }
  int size() const { return static_cast<int>(ids_.size()); }
  bool empty() const { return ids_.empty(); }

  /// Indexes of this configuration defined on table `t`.
  std::vector<IndexId> OnTable(TableId t, const IndexPool& pool) const {
    std::vector<IndexId> out;
    for (IndexId id : ids_) {
      if (pool[id].table == t) out.push_back(id);
    }
    return out;
  }

  /// Total estimated size in bytes.
  double SizeBytes(const IndexPool& pool, const Catalog& cat) const {
    double s = 0;
    for (IndexId id : ids_) s += IndexSizeBytes(pool[id], cat);
    return s;
  }

  /// Set union.
  Configuration Union(const Configuration& other) const {
    std::vector<IndexId> merged;
    std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                   other.ids_.end(), std::back_inserter(merged));
    return Configuration(std::move(merged));
  }

  bool operator==(const Configuration& other) const {
    return ids_ == other.ids_;
  }

 private:
  void Normalize() {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }
  std::vector<IndexId> ids_;
};

}  // namespace cophy

#endif  // COPHY_OPTIMIZER_CONFIG_H_
