// SystemSimulator: a cost-based optimizer over the statistics catalog.
// It optimizes SPJ + aggregation queries over the space
//   { join order (DP over subsets) × join algorithm (hash / sort-merge)
//     × per-slot access path (clustered PK / secondary index) }.
//
// Its cost structure is "internal plan cost + per-slot access cost",
// where internal cost depends on leaf *orders* but not on which access
// method produced them. That is exactly the property (Lemma 1: linear
// composability) that INUM and hence CoPhy's BIP formulation rest on,
// and it matches how real optimizers expose plans to INUM/C-PQO.
#ifndef COPHY_OPTIMIZER_SIMULATOR_H_
#define COPHY_OPTIMIZER_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/whatif.h"

namespace cophy {

/// An interesting order: a column sequence the slot's access path must
/// deliver. Empty = no order requirement.
using OrderSpec = std::vector<ColumnId>;

inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// One template plan (INUM's TPlans(q) element, §2/Fig. 1): a choice of
/// interesting order per table slot plus the internal plan cost β of the
/// best physical plan given those leaf orders (leaf access excluded).
struct TemplatePlan {
  std::vector<OrderSpec> slot_orders;  ///< one per q.tables slot
  double internal_cost = 0.0;          ///< β_qk
};

/// Concrete what-if optimizer over the statistics catalog.
class SystemSimulator : public WhatIfOptimizer {
 public:
  SystemSimulator(const Catalog* cat, const IndexPool* pool, CostModel model);

  // WhatIfOptimizer:
  double Cost(const Query& q, const Configuration& x) override;
  double UpdateCost(IndexId a, const Query& q) override;
  const Catalog& catalog() const override { return *cat_; }
  const IndexPool& pool() const override { return *pool_; }
  int64_t num_whatif_calls() const override { return whatif_calls_; }

  const CostModel& model() const { return model_; }

  /// The per-slot interesting orders the optimizer considers for q
  /// (empty order first). The template space is their cross product.
  std::vector<std::vector<OrderSpec>> SlotOrderCandidates(const Query& q) const;

  /// Enumerates TPlans(q): every slot-order combination with its β.
  /// This is INUM's preprocessing — each template costs one
  /// optimization, so the call advances the what-if counter by K_q.
  std::vector<TemplatePlan> EnumerateTemplates(const Query& q);

  /// γ(q, slot, order, a): cost for access path `a` (kInvalidIndex = the
  /// base clustered-PK path I∅) to produce slot `slot`'s rows sorted by
  /// `order`; kInfiniteCost if the path cannot deliver that order.
  /// A pure function of its arguments — this is what linear
  /// composability means operationally.
  double AccessCost(const Query& q, int slot, const OrderSpec& order,
                    IndexId a) const;

  /// Rows flowing out of slot `slot` after all predicates on its table
  /// (identical for every access path, by design).
  double SlotOutputRows(const Query& q, int slot) const;

  /// Cost of q's *query shell* (for UPDATEs: the scan locating the
  /// tuples to update; for SELECTs: the query itself) under X.
  double ShellCost(const Query& q, const Configuration& x);

  /// The constant base-table maintenance cost c_q of an update (0 for
  /// SELECTs); independent of the configuration.
  double BaseUpdateCost(const Query& q) const;

  /// Human-readable account of the chosen plan under X: template
  /// orders, per-slot access path, β and γ breakdown.
  std::string Explain(const Query& q, const Configuration& x);

 private:
  struct SlotInfo;  // per-slot predicate/selectivity digest

  SlotInfo AnalyzeSlot(const Query& q, int slot) const;
  /// β for a fixed slot-order combination (DP join enumeration).
  double InternalPlanCost(const Query& q,
                          const std::vector<OrderSpec>& slot_orders) const;
  double SortCost(double rows) const;
  /// min over access paths available in X of γ(q, slot, order, ·).
  double BestAccessCost(const Query& q, int slot, const OrderSpec& order,
                        const Configuration& x, IndexId* chosen) const;

  const Catalog* cat_;
  const IndexPool* pool_;
  CostModel model_;
  /// Atomic so concurrent Prepare workers can cost templates in
  /// parallel; the total is interleaving-independent.
  std::atomic<int64_t> whatif_calls_{0};
};

/// Returns true if `order` is satisfied by an access path delivering
/// rows sorted by `key` when the leading `bound_prefix` key columns are
/// equality-bound. Shared by the simulator and tests.
bool OrderSatisfiedBy(const OrderSpec& order, const std::vector<ColumnId>& key,
                      int bound_prefix);

}  // namespace cophy

#endif  // COPHY_OPTIMIZER_SIMULATOR_H_
