// SystemSimulator: a cost-based optimizer over the statistics catalog.
// It optimizes SPJ + aggregation queries over the space
//   { join order (DP over subsets) × join algorithm (hash / sort-merge)
//     × per-slot access path (clustered PK / secondary index) }.
//
// Its cost structure is "internal plan cost + per-slot access cost",
// where internal cost depends on leaf *orders* but not on which access
// method produced them. That is exactly the property (Lemma 1: linear
// composability) that INUM and hence CoPhy's BIP formulation rest on,
// and it matches how real optimizers expose plans to INUM/C-PQO.
//
// The simulator is an in-process model and never fails, so each
// WhatIfOptimizer override wraps an infallible implementation; faults
// enter the pipeline only through decorators (FaultInjectingWhatIf).
#ifndef COPHY_OPTIMIZER_SIMULATOR_H_
#define COPHY_OPTIMIZER_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/whatif.h"

namespace cophy {

/// Concrete what-if optimizer over the statistics catalog.
class SystemSimulator : public WhatIfOptimizer {
 public:
  SystemSimulator(const Catalog* cat, const IndexPool* pool, CostModel model);

  // WhatIfOptimizer:
  Result<double> Cost(const Query& q, const Configuration& x) override;
  Result<double> UpdateCost(IndexId a, const Query& q) override;
  Result<std::vector<TemplatePlan>> EnumerateTemplates(const Query& q) override;
  Result<double> AccessCost(const Query& q, int slot, const OrderSpec& order,
                            IndexId a) override;
  Result<double> ShellCost(const Query& q, const Configuration& x) override;
  Result<double> BaseUpdateCost(const Query& q) override;
  std::vector<std::vector<OrderSpec>> SlotOrderCandidates(
      const Query& q) const override;
  const Catalog& catalog() const override { return *cat_; }
  const IndexPool& pool() const override { return *pool_; }
  int64_t num_whatif_calls() const override { return whatif_calls_; }

  const CostModel& model() const { return model_; }

  /// Rows flowing out of slot `slot` after all predicates on its table
  /// (identical for every access path, by design).
  double SlotOutputRows(const Query& q, int slot) const;

  /// Human-readable account of the chosen plan under X: template
  /// orders, per-slot access path, β and γ breakdown.
  std::string Explain(const Query& q, const Configuration& x);

 private:
  struct SlotInfo;  // per-slot predicate/selectivity digest

  SlotInfo AnalyzeSlot(const Query& q, int slot) const;
  /// β for a fixed slot-order combination (DP join enumeration).
  double InternalPlanCost(const Query& q,
                          const std::vector<OrderSpec>& slot_orders) const;
  double SortCost(double rows) const;
  /// min over access paths available in X of γ(q, slot, order, ·).
  double BestAccessCost(const Query& q, int slot, const OrderSpec& order,
                        const Configuration& x, IndexId* chosen) const;

  // Infallible implementations behind the fallible overrides.
  double CostImpl(const Query& q, const Configuration& x);
  double UpdateCostImpl(IndexId a, const Query& q) const;
  std::vector<TemplatePlan> EnumerateTemplatesImpl(const Query& q);
  double AccessCostImpl(const Query& q, int slot, const OrderSpec& order,
                        IndexId a) const;
  double ShellCostImpl(const Query& q, const Configuration& x) const;
  double BaseUpdateCostImpl(const Query& q) const;

  const Catalog* cat_;
  const IndexPool* pool_;
  CostModel model_;
  /// Atomic so concurrent Prepare workers can cost templates in
  /// parallel; the total is interleaving-independent.
  std::atomic<int64_t> whatif_calls_{0};
};

/// Returns true if `order` is satisfied by an access path delivering
/// rows sorted by `key` when the leading `bound_prefix` key columns are
/// equality-bound. Shared by the simulator and tests.
bool OrderSatisfiedBy(const OrderSpec& order, const std::vector<ColumnId>& key,
                      int bound_prefix);

}  // namespace cophy

#endif  // COPHY_OPTIMIZER_SIMULATOR_H_
