#include "optimizer/fault_injection.h"

#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/strings.h"

namespace cophy {

namespace internal {

uint64_t HashMix(uint64_t h, uint64_t v) {
  // splitmix64 finalizer over a boost-style combine.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

uint64_t ConfigurationDigest(const Configuration& x) {
  uint64_t h = 0x243f6a8885a308d3ULL;
  for (IndexId id : x.ids()) h = HashMix(h, static_cast<uint64_t>(id));
  return h;
}

uint64_t OrderDigest(const OrderSpec& order) {
  uint64_t h = 0x13198a2e03707344ULL;
  for (ColumnId c : order) h = HashMix(h, static_cast<uint64_t>(c));
  return h;
}

uint64_t WhatIfCallKey(int surface, QueryId qid, uint64_t extra) {
  uint64_t h = HashMix(0xa4093822299f31d0ULL, static_cast<uint64_t>(surface));
  h = HashMix(h, static_cast<uint64_t>(qid));
  return HashMix(h, extra);
}

}  // namespace internal

namespace {

// Surface tags for call keys (stable across runs).
enum Surface {
  kCost = 1,
  kUpdateCost,
  kEnumerateTemplates,
  kAccessCost,
  kShellCost,
  kBaseUpdateCost,
};

}  // namespace

FaultInjectingWhatIf::FaultInjectingWhatIf(WhatIfOptimizer* backend,
                                           FaultInjectionOptions opts)
    : backend_(backend), opts_(std::move(opts)) {
  COPHY_CHECK(backend != nullptr);
  budget_left_ = opts_.call_budget;
}

void FaultInjectingWhatIf::Heal() {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.transient_failure_rate = 0.0;
  opts_.permanent_failure_queries.clear();
  opts_.permanent_failure_predicate = nullptr;
}

void FaultInjectingWhatIf::set_transient_failure_rate(double rate) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.transient_failure_rate = rate;
}

void FaultInjectingWhatIf::set_call_budget(int64_t n) { budget_left_ = n; }

Status FaultInjectingWhatIf::MaybeFail(uint64_t key, const Query& q) {
  double latency, rate;
  uint64_t seed, attempt;
  bool permanent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    latency = opts_.injected_latency_seconds;
    rate = opts_.transient_failure_rate;
    seed = opts_.seed;
    attempt = attempts_[key]++;
    permanent = opts_.permanent_failure_queries.count(q.id) > 0 ||
                (opts_.permanent_failure_predicate != nullptr &&
                 opts_.permanent_failure_predicate(q));
  }
  if (latency > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(latency));
  }
  if (permanent) {
    ++permanent_faults_;
    return Status::Internal(
        StrFormat("injected permanent fault (statement %d)", q.id));
  }
  if (rate > 0.0) {
    // Deterministic draw: uniform in [0, 1) from (seed, key, attempt).
    uint64_t h = internal::HashMix(seed, key);
    h = internal::HashMix(h, attempt);
    const double draw = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (draw < rate) {
      ++transient_faults_;
      return Status::Timeout(
          StrFormat("injected transient fault (statement %d)", q.id));
    }
  }
  if (budget_left_.load() >= 0 && budget_left_.fetch_sub(1) <= 0) {
    budget_left_ = 0;  // pin so the counter cannot wrap
    ++budget_rejections_;
    return Status::ResourceExhausted("what-if call budget exhausted");
  }
  return Status::Ok();
}

Result<double> FaultInjectingWhatIf::Cost(const Query& q,
                                          const Configuration& x) {
  const uint64_t key = internal::WhatIfCallKey(
      kCost, q.id, internal::ConfigurationDigest(x));
  Status s = MaybeFail(key, q);
  if (!s.ok()) return s;
  return backend_->Cost(q, x);
}

Result<double> FaultInjectingWhatIf::UpdateCost(IndexId a, const Query& q) {
  const uint64_t key =
      internal::WhatIfCallKey(kUpdateCost, q.id, static_cast<uint64_t>(a));
  Status s = MaybeFail(key, q);
  if (!s.ok()) return s;
  return backend_->UpdateCost(a, q);
}

Result<std::vector<TemplatePlan>> FaultInjectingWhatIf::EnumerateTemplates(
    const Query& q) {
  const uint64_t key = internal::WhatIfCallKey(kEnumerateTemplates, q.id, 0);
  Status s = MaybeFail(key, q);
  if (!s.ok()) return s;
  return backend_->EnumerateTemplates(q);
}

Result<double> FaultInjectingWhatIf::AccessCost(const Query& q, int slot,
                                                const OrderSpec& order,
                                                IndexId a) {
  uint64_t extra = internal::OrderDigest(order);
  extra = internal::HashMix(extra, static_cast<uint64_t>(slot));
  extra = internal::HashMix(extra, static_cast<uint64_t>(a));
  const uint64_t key = internal::WhatIfCallKey(kAccessCost, q.id, extra);
  Status s = MaybeFail(key, q);
  if (!s.ok()) return s;
  return backend_->AccessCost(q, slot, order, a);
}

Result<double> FaultInjectingWhatIf::ShellCost(const Query& q,
                                               const Configuration& x) {
  const uint64_t key = internal::WhatIfCallKey(
      kShellCost, q.id, internal::ConfigurationDigest(x));
  Status s = MaybeFail(key, q);
  if (!s.ok()) return s;
  return backend_->ShellCost(q, x);
}

Result<double> FaultInjectingWhatIf::BaseUpdateCost(const Query& q) {
  const uint64_t key = internal::WhatIfCallKey(kBaseUpdateCost, q.id, 0);
  Status s = MaybeFail(key, q);
  if (!s.ok()) return s;
  return backend_->BaseUpdateCost(q);
}

std::vector<std::vector<OrderSpec>> FaultInjectingWhatIf::SlotOrderCandidates(
    const Query& q) const {
  return backend_->SlotOrderCandidates(q);  // pure metadata: never faulted
}

}  // namespace cophy
