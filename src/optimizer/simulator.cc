#include "optimizer/simulator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/strings.h"

namespace cophy {

namespace {

/// Does `seq` start with `prefix`?
bool StartsWith(const OrderSpec& seq, const OrderSpec& prefix) {
  if (prefix.size() > seq.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), seq.begin());
}

/// Dedups by exact order, keeping the min cost; trims to the cheapest
/// `cap` entries to bound DP state.
void PruneEntries(std::vector<std::pair<OrderSpec, double>>& entries, int cap) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::vector<std::pair<OrderSpec, double>> kept;
  for (auto& e : entries) {
    bool dup = false;
    for (const auto& k : kept) {
      if (k.first == e.first) {
        dup = true;
        break;
      }
    }
    if (!dup) kept.push_back(std::move(e));
    if (static_cast<int>(kept.size()) >= cap) break;
  }
  entries = std::move(kept);
}

}  // namespace

bool OrderSatisfiedBy(const OrderSpec& order, const std::vector<ColumnId>& key,
                      int bound_prefix) {
  if (order.empty()) return true;
  auto match_from = [&](size_t start) {
    if (start + order.size() > key.size()) return false;
    return std::equal(order.begin(), order.end(), key.begin() + start);
  };
  // Rows arrive sorted by the full key; with the leading `bound_prefix`
  // columns pinned to constants the effective order also begins at
  // key[bound_prefix].
  return match_from(0) || match_from(static_cast<size_t>(bound_prefix));
}

// ---------------------------------------------------------------------------
// Slot analysis

struct SystemSimulator::SlotInfo {
  TableId table = kInvalidTable;
  double rows = 0;            // table row count
  double total_sel = 1.0;     // product over all predicates on the table
  double out_rows = 0;        // rows * total_sel
  int num_preds = 0;
  std::vector<ColumnId> needed;  // columns an index must carry to cover
  // Per-column predicate digests (first predicate per column wins).
  std::vector<std::pair<ColumnId, double>> eq_sels;
  std::vector<std::pair<ColumnId, double>> range_sels;
};

SystemSimulator::SystemSimulator(const Catalog* cat, const IndexPool* pool,
                                 CostModel model)
    : cat_(cat), pool_(pool), model_(std::move(model)) {
  COPHY_CHECK(cat != nullptr);
  COPHY_CHECK(pool != nullptr);
}

SystemSimulator::SlotInfo SystemSimulator::AnalyzeSlot(const Query& q,
                                                       int slot) const {
  COPHY_CHECK_GE(slot, 0);
  COPHY_CHECK_LT(slot, static_cast<int>(q.tables.size()));
  SlotInfo info;
  info.table = q.tables[slot];
  info.rows = static_cast<double>(cat_->table(info.table).row_count);
  for (const Predicate& p : q.PredicatesOn(info.table, *cat_)) {
    double sel;
    if (p.op == Predicate::Op::kEq) {
      sel = cat_->EqSelectivity(p.column, p.quantile);
      info.eq_sels.emplace_back(p.column, sel);
    } else {
      sel = cat_->RangeSelectivity(p.column, p.quantile, p.width);
      info.range_sels.emplace_back(p.column, sel);
    }
    info.total_sel *= sel;
    ++info.num_preds;
  }
  info.out_rows = std::max(1.0, info.rows * info.total_sel);
  info.needed = q.ColumnsUsed(info.table, *cat_);
  return info;
}

double SystemSimulator::SlotOutputRows(const Query& q, int slot) const {
  return AnalyzeSlot(q, slot).out_rows;
}

double SystemSimulator::SortCost(double rows) const {
  rows = std::max(rows, 2.0);
  double c = model_.sort_factor * model_.cpu_oper * rows * std::log2(rows);
  if (rows > model_.sort_mem_rows) {
    // External sort: spill and re-read once.
    c += 2.0 * model_.seq_page * rows / 64.0;
  }
  return c;
}

// ---------------------------------------------------------------------------
// Access-path costing (the γ function)

double SystemSimulator::AccessCostImpl(const Query& q, int slot,
                                       const OrderSpec& order,
                                       IndexId a) const {
  const SlotInfo info = AnalyzeSlot(q, slot);
  auto eq_sel_on = [&](ColumnId c) -> const double* {
    for (const auto& [col, sel] : info.eq_sels) {
      if (col == c) return &sel;
    }
    return nullptr;
  };
  auto range_sel_on = [&](ColumnId c) -> const double* {
    for (const auto& [col, sel] : info.range_sels) {
      if (col == c) return &sel;
    }
    return nullptr;
  };

  // Resolve the access path's key and leaf geometry.
  std::vector<ColumnId> key;
  bool clustered;
  double leaf_pages;
  bool covers;
  if (a == kInvalidIndex) {
    // The base path I∅: the table's clustered primary-key index.
    key = cat_->table(info.table).primary_key;
    clustered = true;
    leaf_pages = cat_->TablePages(info.table);
    covers = true;
  } else {
    const Index& idx = (*pool_)[a];
    COPHY_CHECK_EQ(idx.table, info.table);
    key = idx.key_columns;
    clustered = idx.clustered;
    leaf_pages = IndexLeafPages(idx, *cat_);
    covers = idx.Covers(info.needed);
  }

  // Match a leading equality prefix, then at most one range column.
  double matched_sel = 1.0;
  int bound_prefix = 0;
  int used_preds = 0;
  for (ColumnId kc : key) {
    if (const double* s = eq_sel_on(kc)) {
      matched_sel *= *s;
      ++bound_prefix;
      ++used_preds;
      continue;
    }
    if (const double* s = range_sel_on(kc)) {
      matched_sel *= *s;
      ++used_preds;
    }
    break;
  }

  if (!OrderSatisfiedBy(order, key, bound_prefix)) return kInfiniteCost;

  const double rows_scanned = std::max(1.0, info.rows * matched_sel);
  const int residual = info.num_preds - used_preds;
  double cost = 0.0;
  if (matched_sel < 1.0) cost += model_.btree_descent;
  cost += model_.seq_page * std::max(1.0, leaf_pages * matched_sel);
  cost += model_.cpu_tuple * rows_scanned;
  cost += model_.cpu_oper * residual * rows_scanned;
  if (!covers && !clustered) {
    // Row fetches for the qualifying index entries.
    cost += model_.rand_page * rows_scanned;
  }
  return cost;
}

// ---------------------------------------------------------------------------
// Interesting orders and template enumeration

std::vector<std::vector<OrderSpec>> SystemSimulator::SlotOrderCandidates(
    const Query& q) const {
  constexpr int kMaxOrdersPerSlot = 4;
  std::vector<std::vector<OrderSpec>> result(q.tables.size());
  // Group-by / order-by sequences help only if entirely on one table.
  auto all_on_table = [&](const std::vector<ColumnId>& cols, TableId t) {
    if (cols.empty()) return false;
    for (ColumnId c : cols) {
      if (cat_->column(c).table != t) return false;
    }
    return true;
  };
  for (size_t slot = 0; slot < q.tables.size(); ++slot) {
    const TableId t = q.tables[slot];
    std::vector<OrderSpec>& orders = result[slot];
    orders.push_back({});  // no requirement; always first
    auto add = [&](const OrderSpec& o) {
      if (o.empty()) return;
      if (static_cast<int>(orders.size()) >= kMaxOrdersPerSlot) return;
      if (std::find(orders.begin(), orders.end(), o) == orders.end()) {
        orders.push_back(o);
      }
    };
    for (const JoinPredicate& j : q.joins) {
      if (cat_->column(j.left).table == t) add({j.left});
      if (cat_->column(j.right).table == t) add({j.right});
    }
    if (all_on_table(q.group_by, t)) add(q.group_by);
    if (all_on_table(q.order_by, t)) add(q.order_by);
  }
  return result;
}

std::vector<TemplatePlan> SystemSimulator::EnumerateTemplatesImpl(
    const Query& q) {
  constexpr int kMaxTemplates = 96;
  const auto candidates = SlotOrderCandidates(q);
  std::vector<TemplatePlan> out;
  std::vector<size_t> pick(candidates.size(), 0);
  while (true) {
    TemplatePlan tp;
    tp.slot_orders.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      tp.slot_orders.push_back(candidates[i][pick[i]]);
    }
    tp.internal_cost = InternalPlanCost(q, tp.slot_orders);
    ++whatif_calls_;  // each template costs one optimization
    out.push_back(std::move(tp));
    if (static_cast<int>(out.size()) >= kMaxTemplates) break;
    // Advance the mixed-radix counter.
    size_t i = 0;
    while (i < pick.size() && ++pick[i] == candidates[i].size()) {
      pick[i] = 0;
      ++i;
    }
    if (i == pick.size()) break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Internal plan cost: DP join enumeration with hash / sort-merge joins.

double SystemSimulator::InternalPlanCost(
    const Query& q, const std::vector<OrderSpec>& slot_orders) const {
  const int n = static_cast<int>(q.tables.size());
  COPHY_CHECK_EQ(static_cast<int>(slot_orders.size()), n);
  COPHY_CHECK_LE(n, 12);

  std::vector<SlotInfo> slots;
  slots.reserve(n);
  for (int i = 0; i < n; ++i) slots.push_back(AnalyzeSlot(q, i));

  // Join predicate digests: slot endpoints + cardinality factor.
  struct JoinEdge {
    int left_slot, right_slot;
    ColumnId left_col, right_col;
    double factor;
  };
  std::vector<JoinEdge> edges;
  for (const JoinPredicate& j : q.joins) {
    const int ls = q.TableSlot(cat_->column(j.left).table);
    const int rs = q.TableSlot(cat_->column(j.right).table);
    COPHY_CHECK_GE(ls, 0);
    COPHY_CHECK_GE(rs, 0);
    const double dl = static_cast<double>(cat_->column(j.left).distinct);
    const double dr = static_cast<double>(cat_->column(j.right).distinct);
    edges.push_back({ls, rs, j.left, j.right, 1.0 / std::max(1.0, std::max(dl, dr))});
  }

  const uint32_t full = (1u << n) - 1;
  // Cardinality of each subset: product of slot outputs × join factors.
  std::vector<double> card(full + 1, 0.0);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    double c = 1.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) c *= slots[i].out_rows;
    }
    for (const JoinEdge& e : edges) {
      if ((mask & (1u << e.left_slot)) && (mask & (1u << e.right_slot))) {
        c *= e.factor;
      }
    }
    card[mask] = std::max(1.0, c);
  }

  using Entry = std::pair<OrderSpec, double>;  // (output order, cost)
  std::vector<std::vector<Entry>> dp(full + 1);
  for (int i = 0; i < n; ++i) {
    dp[1u << i].push_back({slot_orders[i], 0.0});
  }

  constexpr int kEntryCap = 16;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // single-table: leaf
    std::vector<Entry> entries;
    // Enumerate ordered splits (left, right): probe/outer side = left.
    for (uint32_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
      const uint32_t rest = mask ^ sub;
      if (dp[sub].empty() || dp[rest].empty()) continue;
      // Crossing join predicates between sub and rest.
      std::vector<const JoinEdge*> crossing;
      for (const JoinEdge& e : edges) {
        const bool l_in = sub & (1u << e.left_slot);
        const bool r_in = rest & (1u << e.right_slot);
        const bool l_in2 = rest & (1u << e.left_slot);
        const bool r_in2 = sub & (1u << e.right_slot);
        if ((l_in && r_in) || (l_in2 && r_in2)) crossing.push_back(&e);
      }
      const double cl = card[sub], cr = card[rest], co = card[mask];
      for (const Entry& le : dp[sub]) {
        for (const Entry& re : dp[rest]) {
          if (crossing.empty()) {
            // Cartesian product (rare): cost quadratic, order lost.
            const double c =
                le.second + re.second + model_.cpu_tuple * cl * cr;
            entries.push_back({{}, c});
            continue;
          }
          // Hash join: build on `rest`, probe with `sub` (both roles are
          // covered because the split enumeration is ordered).
          {
            const double c = le.second + re.second +
                             model_.hash_factor * model_.cpu_oper * cr +
                             model_.cpu_oper * cl + model_.cpu_tuple * co;
            entries.push_back({le.first, c});  // probe order preserved
          }
          // Sort-merge join on each crossing predicate.
          for (const JoinEdge* e : crossing) {
            const bool left_has_l = (sub & (1u << e->left_slot)) != 0;
            const ColumnId lcol = left_has_l ? e->left_col : e->right_col;
            const ColumnId rcol = left_has_l ? e->right_col : e->left_col;
            double c = le.second + re.second;
            OrderSpec out_order;
            if (StartsWith(le.first, {lcol})) {
              out_order = le.first;  // left already sorted on join key
            } else {
              c += SortCost(cl);
              out_order = {lcol};
            }
            if (!StartsWith(re.first, {rcol})) c += SortCost(cr);
            c += model_.cpu_oper * (cl + cr) + model_.cpu_tuple * co;
            entries.push_back({std::move(out_order), c});
          }
        }
      }
    }
    PruneEntries(entries, kEntryCap);
    dp[mask] = std::move(entries);
  }

  // Top-level: aggregation then presentation order.
  const bool has_agg = std::any_of(
      q.outputs.begin(), q.outputs.end(),
      [](const OutputExpr& o) { return o.func != AggFunc::kNone; });
  double best = kInfiniteCost;
  for (const Entry& e : dp[full]) {
    double cost = e.second;
    OrderSpec order = e.first;
    double rows = card[full];
    if (!q.group_by.empty()) {
      double group_card = 1.0;
      for (ColumnId g : q.group_by) {
        group_card *= static_cast<double>(cat_->column(g).distinct);
        if (group_card > rows) break;
      }
      group_card = std::min(group_card, rows);
      if (StartsWith(order, q.group_by)) {
        cost += model_.cpu_oper * rows;  // stream aggregation
      } else {
        cost += model_.hash_factor * model_.cpu_oper * rows;
        order.clear();  // hash aggregation destroys order
      }
      rows = group_card;
    } else if (has_agg) {
      cost += model_.cpu_oper * rows;  // scalar aggregate
      rows = 1.0;
      order.clear();
    }
    if (!q.order_by.empty() && !StartsWith(order, q.order_by)) {
      cost += SortCost(rows);
    }
    best = std::min(best, cost);
  }
  COPHY_CHECK(best < kInfiniteCost);
  return best;
}

// ---------------------------------------------------------------------------
// Full statement costing

double SystemSimulator::BestAccessCost(const Query& q, int slot,
                                       const OrderSpec& order,
                                       const Configuration& x,
                                       IndexId* chosen) const {
  double best = AccessCostImpl(q, slot, order, kInvalidIndex);
  if (chosen != nullptr) *chosen = kInvalidIndex;
  const TableId t = q.tables[slot];
  for (IndexId id : x.ids()) {
    if ((*pool_)[id].table != t) continue;
    const double c = AccessCostImpl(q, slot, order, id);
    if (c < best) {
      best = c;
      if (chosen != nullptr) *chosen = id;
    }
  }
  return best;
}

double SystemSimulator::ShellCostImpl(const Query& q,
                                      const Configuration& x) const {
  double best = kInfiniteCost;
  const auto candidates = SlotOrderCandidates(q);
  std::vector<size_t> pick(candidates.size(), 0);
  constexpr int kMaxTemplates = 96;
  int count = 0;
  while (true) {
    std::vector<OrderSpec> slot_orders;
    slot_orders.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      slot_orders.push_back(candidates[i][pick[i]]);
    }
    double total = InternalPlanCost(q, slot_orders);
    for (size_t i = 0; i < slot_orders.size() && total < kInfiniteCost; ++i) {
      total += BestAccessCost(q, static_cast<int>(i), slot_orders[i], x, nullptr);
    }
    best = std::min(best, total);
    if (++count >= kMaxTemplates) break;
    size_t i = 0;
    while (i < pick.size() && ++pick[i] == candidates[i].size()) {
      pick[i] = 0;
      ++i;
    }
    if (i == pick.size()) break;
  }
  return best;
}

double SystemSimulator::BaseUpdateCostImpl(const Query& q) const {
  if (!q.IsUpdate()) return 0.0;
  const int slot = q.TableSlot(q.update_table);
  COPHY_CHECK_GE(slot, 0);
  const double rows = SlotOutputRows(q, slot);
  return rows * (0.5 * model_.rand_page + model_.cpu_tuple);
}

double SystemSimulator::UpdateCostImpl(IndexId a, const Query& q) const {
  if (!q.IsUpdate()) return 0.0;
  const Index& idx = (*pool_)[a];
  if (idx.table != q.update_table) return 0.0;
  // An index is affected only if the update writes one of its columns.
  bool affected = false;
  for (ColumnId c : q.set_columns) {
    if (std::find(idx.key_columns.begin(), idx.key_columns.end(), c) !=
            idx.key_columns.end() ||
        std::find(idx.include_columns.begin(), idx.include_columns.end(), c) !=
            idx.include_columns.end()) {
      affected = true;
      break;
    }
  }
  if (!affected) return 0.0;
  const int slot = q.TableSlot(q.update_table);
  COPHY_CHECK_GE(slot, 0);
  const double rows = SlotOutputRows(q, slot);
  const double leaf = IndexLeafPages(idx, *cat_);
  return rows * (model_.update_leaf +
                 model_.cpu_oper * std::log2(std::max(2.0, leaf)));
}

double SystemSimulator::CostImpl(const Query& q, const Configuration& x) {
  ++whatif_calls_;
  if (q.IsUpdate()) {
    double c = ShellCostImpl(q, x) + BaseUpdateCostImpl(q);
    for (IndexId a : x.ids()) c += UpdateCostImpl(a, q);
    return c;
  }
  return ShellCostImpl(q, x);
}

// ---------------------------------------------------------------------------
/// WhatIfOptimizer boundary: the simulator never fails, so the fallible
// interface simply wraps the implementations above.

Result<double> SystemSimulator::Cost(const Query& q, const Configuration& x) {
  return CostImpl(q, x);
}

Result<double> SystemSimulator::UpdateCost(IndexId a, const Query& q) {
  return UpdateCostImpl(a, q);
}

Result<std::vector<TemplatePlan>> SystemSimulator::EnumerateTemplates(
    const Query& q) {
  return EnumerateTemplatesImpl(q);
}

Result<double> SystemSimulator::AccessCost(const Query& q, int slot,
                                           const OrderSpec& order, IndexId a) {
  return AccessCostImpl(q, slot, order, a);
}

Result<double> SystemSimulator::ShellCost(const Query& q,
                                          const Configuration& x) {
  return ShellCostImpl(q, x);
}

Result<double> SystemSimulator::BaseUpdateCost(const Query& q) {
  return BaseUpdateCostImpl(q);
}

// ---------------------------------------------------------------------------
// Explain

std::string SystemSimulator::Explain(const Query& q, const Configuration& x) {
  const auto candidates = SlotOrderCandidates(q);
  std::vector<size_t> pick(candidates.size(), 0);
  double best = kInfiniteCost;
  std::vector<OrderSpec> best_orders;
  double best_beta = 0;
  constexpr int kMaxTemplates = 96;
  int count = 0;
  while (true) {
    std::vector<OrderSpec> slot_orders;
    for (size_t i = 0; i < candidates.size(); ++i) {
      slot_orders.push_back(candidates[i][pick[i]]);
    }
    const double beta = InternalPlanCost(q, slot_orders);
    double total = beta;
    for (size_t i = 0; i < slot_orders.size() && total < kInfiniteCost; ++i) {
      total += BestAccessCost(q, static_cast<int>(i), slot_orders[i], x, nullptr);
    }
    if (total < best) {
      best = total;
      best_orders = slot_orders;
      best_beta = beta;
    }
    if (++count >= kMaxTemplates) break;
    size_t i = 0;
    while (i < pick.size() && ++pick[i] == candidates[i].size()) {
      pick[i] = 0;
      ++i;
    }
    if (i == pick.size()) break;
  }

  std::string out = StrFormat("plan cost %.2f (internal %.2f)\n", best, best_beta);
  for (size_t i = 0; i < best_orders.size(); ++i) {
    IndexId chosen = kInvalidIndex;
    const double gamma =
        BestAccessCost(q, static_cast<int>(i), best_orders[i], x, &chosen);
    std::string order_str = "-";
    if (!best_orders[i].empty()) {
      std::vector<std::string> names;
      for (ColumnId c : best_orders[i]) names.push_back(cat_->column(c).name);
      order_str = StrJoin(names, ",");
    }
    out += StrFormat(
        "  slot %zu %-10s order[%s] γ=%.2f via %s\n", i,
        cat_->table(q.tables[i]).name.c_str(), order_str.c_str(), gamma,
        chosen == kInvalidIndex ? "clustered PK"
                                : (*pool_)[chosen].ToString(*cat_).c_str());
  }
  return out;
}

}  // namespace cophy
