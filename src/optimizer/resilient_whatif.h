// ResilientWhatIf: the fault-tolerance layer of the what-if boundary.
// Wraps any WhatIfOptimizer with
//
//  * a retry policy — bounded attempts, exponential backoff with
//    deterministic jitter, and a per-call deadline across attempts —
//    for the transient error classes (kTimeout, kResourceExhausted);
//    permanent classes (kInternal, kInvalidArgument, ...) fail through
//    immediately; and
//
//  * a circuit breaker — after `failure_threshold` consecutive ultimate
//    failures the breaker opens and calls fail fast (no backend
//    traffic) for `open_seconds`, then a half-open probe decides
//    whether to close it again; and
//
//  * a degraded fallback — every successful answer is remembered, and
//    when a call ultimately fails (retries exhausted or breaker open)
//    the last-known answer is served instead, counted in
//    WhatIfHealth::degraded so callers can mark the result.
//
// The decorator is thread-safe and composes under parallel Prepare:
// per-call state is keyed by the same call digests the fault injector
// uses, so retries of one logical call are independent of interleaving.
#ifndef COPHY_OPTIMIZER_RESILIENT_WHATIF_H_
#define COPHY_OPTIMIZER_RESILIENT_WHATIF_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "optimizer/whatif.h"

namespace cophy {

struct RetryPolicy {
  /// Total attempts per call (1 = no retries).
  int max_attempts = 4;
  /// Backoff before the k-th retry: initial * multiplier^(k-1), capped
  /// at `max_backoff_seconds`, scaled by ±25% deterministic jitter.
  double initial_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.05;
  /// Jitter is a pure function of (seed, call key, attempt).
  uint64_t jitter_seed = 1;
  /// Wall-clock cap for one call across all its attempts and backoffs;
  /// when it expires the call stops retrying and resolves (degraded or
  /// errored) immediately.
  double call_deadline_seconds = std::numeric_limits<double>::infinity();
};

struct CircuitBreakerPolicy {
  bool enabled = true;
  /// Consecutive ultimate failures that trip the breaker open.
  int failure_threshold = 5;
  /// How long an open breaker rejects calls before the half-open probe.
  double open_seconds = 0.05;
};

struct ResilienceOptions {
  RetryPolicy retry;
  CircuitBreakerPolicy breaker;
  /// Serve the last-known answer (marked degraded) when a call
  /// ultimately fails and one is cached; off = propagate the error.
  bool degraded_fallback = true;
};

/// Retry/breaker/degraded-fallback decorator over `backend`.
class ResilientWhatIf : public WhatIfOptimizer {
 public:
  /// `backend` must outlive this object; not owned.
  explicit ResilientWhatIf(WhatIfOptimizer* backend,
                           ResilienceOptions opts = {});

  // WhatIfOptimizer:
  Result<double> Cost(const Query& q, const Configuration& x) override;
  Result<double> UpdateCost(IndexId a, const Query& q) override;
  Result<std::vector<TemplatePlan>> EnumerateTemplates(const Query& q) override;
  Result<double> AccessCost(const Query& q, int slot, const OrderSpec& order,
                            IndexId a) override;
  Result<double> ShellCost(const Query& q, const Configuration& x) override;
  Result<double> BaseUpdateCost(const Query& q) override;
  std::vector<std::vector<OrderSpec>> SlotOrderCandidates(
      const Query& q) const override;
  const Catalog& catalog() const override { return backend_->catalog(); }
  const IndexPool& pool() const override { return backend_->pool(); }
  int64_t num_whatif_calls() const override {
    return backend_->num_whatif_calls();
  }

  /// This decorator's own counters (the backend underneath is the
  /// faulty party; its health is not merged in). A lock-free value
  /// snapshot — safe to call while Prepare/Retune traffic is in flight
  /// on other threads, which is how the service tier reports per-tenant
  /// health live.
  WhatIfHealth health() const override;

  const ResilienceOptions& options() const { return opts_; }

 private:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  using Clock = std::chrono::steady_clock;

  /// Breaker admission decision for one call. Returns false when the
  /// call must fail fast without touching the backend.
  bool AdmitCall();
  void RecordOutcome(bool success);
  /// The retry loop for one logical call: bounded attempts, backoff
  /// with deterministic jitter, per-call deadline. `fn` performs a
  /// single backend attempt.
  template <typename T, typename Fn>
  Result<T> RunAttempts(uint64_t key, Fn&& fn);
  /// Full call path: breaker admission → retry loop → cache the answer
  /// on success / resolve degraded-or-error on ultimate failure.
  template <typename T, typename Fn, typename CacheMap>
  Result<T> Dispatch(CacheMap& cache, uint64_t key, Fn&& fn);
  /// Resolves an ultimate failure: serve the cached answer as degraded
  /// when allowed, else propagate `error`.
  template <typename T, typename CacheMap>
  Result<T> Resolve(CacheMap& cache, uint64_t key, Status error);

  WhatIfOptimizer* backend_;
  ResilienceOptions opts_;

  mutable std::mutex mu_;  // breaker transitions + last-known caches
  /// Written only under mu_; atomic so health() can read it lock-free.
  std::atomic<BreakerState> state_{BreakerState::kClosed};
  int consecutive_failures_ = 0;
  Clock::time_point open_until_{};

  // Last-known answers per surface, keyed by call digest.
  std::unordered_map<uint64_t, double> scalar_cache_;
  std::unordered_map<uint64_t, std::vector<TemplatePlan>> template_cache_;

  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> failures_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> breaker_fast_fails_{0};
  std::atomic<int> breaker_trips_{0};
};

}  // namespace cophy

#endif  // COPHY_OPTIMIZER_RESILIENT_WHATIF_H_
