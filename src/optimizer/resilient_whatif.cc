#include "optimizer/resilient_whatif.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/check.h"
#include "common/stopwatch.h"
#include "optimizer/fault_injection.h"  // call-digest helpers

namespace cophy {

namespace {

/// Transient error classes worth retrying; everything else (kInternal,
/// kInvalidArgument, ...) is treated as a permanent verdict.
bool Retryable(StatusCode c) {
  return c == StatusCode::kTimeout || c == StatusCode::kResourceExhausted;
}

// Surface tags for call digests (mirrors the fault injector's keying so
// "the same call" means the same thing on both sides of the boundary).
enum Surface {
  kCost = 1,
  kUpdateCost,
  kEnumerateTemplates,
  kAccessCost,
  kShellCost,
  kBaseUpdateCost,
};

}  // namespace

ResilientWhatIf::ResilientWhatIf(WhatIfOptimizer* backend,
                                 ResilienceOptions opts)
    : backend_(backend), opts_(opts) {
  COPHY_CHECK(backend != nullptr);
}

bool ResilientWhatIf::AdmitCall() {
  if (!opts_.breaker.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (Clock::now() >= open_until_) {
        state_ = BreakerState::kHalfOpen;  // let one probe batch through
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      return true;
  }
  return true;
}

void ResilientWhatIf::RecordOutcome(bool success) {
  if (!opts_.breaker.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (success) {
    state_ = BreakerState::kClosed;
    consecutive_failures_ = 0;
    return;
  }
  ++consecutive_failures_;
  const bool should_open =
      state_ == BreakerState::kHalfOpen ||  // failed probe: reopen
      consecutive_failures_ >= opts_.breaker.failure_threshold;
  if (should_open && state_ != BreakerState::kOpen) ++breaker_trips_;
  if (should_open) {
    state_ = BreakerState::kOpen;
    open_until_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         opts_.breaker.open_seconds));
  }
}

template <typename T, typename Fn>
Result<T> ResilientWhatIf::RunAttempts(uint64_t key, Fn&& fn) {
  const RetryPolicy& rp = opts_.retry;
  const int attempts = std::max(1, rp.max_attempts);
  Stopwatch sw;
  Status last = Status::Internal("what-if call made no attempts");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      double backoff = rp.initial_backoff_seconds *
                       std::pow(rp.backoff_multiplier, attempt - 1);
      backoff = std::min(backoff, rp.max_backoff_seconds);
      if (backoff > 0.0) {
        // ±25% deterministic jitter decorrelates concurrent retries.
        uint64_t h = internal::HashMix(rp.jitter_seed, key);
        h = internal::HashMix(h, static_cast<uint64_t>(attempt));
        backoff *= 0.75 + 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
      }
      if (sw.Elapsed() + backoff > rp.call_deadline_seconds) break;
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      ++retries_;
    }
    Result<T> r = fn();
    if (r.ok()) return r;
    last = r.status();
    if (!Retryable(last.code())) break;
    if (sw.Elapsed() > rp.call_deadline_seconds) break;
  }
  return last;
}

template <typename T, typename CacheMap>
Result<T> ResilientWhatIf::Resolve(CacheMap& cache, uint64_t key,
                                   Status error) {
  if (opts_.degraded_fallback) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache.find(key);
    if (it != cache.end()) {
      ++degraded_;
      return it->second;  // last-known answer, marked degraded
    }
  }
  return error;
}

template <typename T, typename Fn, typename CacheMap>
Result<T> ResilientWhatIf::Dispatch(CacheMap& cache, uint64_t key, Fn&& fn) {
  if (!AdmitCall()) {
    ++breaker_fast_fails_;
    return Resolve<T>(cache, key,
                      Status::ResourceExhausted("circuit breaker open"));
  }
  Result<T> r = RunAttempts<T>(key, fn);
  if (r.ok()) {
    RecordOutcome(/*success=*/true);
    std::lock_guard<std::mutex> lock(mu_);
    cache[key] = r.value();
    return r;
  }
  ++failures_;
  RecordOutcome(/*success=*/false);
  return Resolve<T>(cache, key, r.status());
}

Result<double> ResilientWhatIf::Cost(const Query& q, const Configuration& x) {
  const uint64_t key = internal::WhatIfCallKey(
      kCost, q.id, internal::ConfigurationDigest(x));
  return Dispatch<double>(scalar_cache_, key,
                          [&] { return backend_->Cost(q, x); });
}

Result<double> ResilientWhatIf::UpdateCost(IndexId a, const Query& q) {
  const uint64_t key =
      internal::WhatIfCallKey(kUpdateCost, q.id, static_cast<uint64_t>(a));
  return Dispatch<double>(scalar_cache_, key,
                          [&] { return backend_->UpdateCost(a, q); });
}

Result<std::vector<TemplatePlan>> ResilientWhatIf::EnumerateTemplates(
    const Query& q) {
  const uint64_t key = internal::WhatIfCallKey(kEnumerateTemplates, q.id, 0);
  return Dispatch<std::vector<TemplatePlan>>(
      template_cache_, key, [&] { return backend_->EnumerateTemplates(q); });
}

Result<double> ResilientWhatIf::AccessCost(const Query& q, int slot,
                                           const OrderSpec& order, IndexId a) {
  uint64_t extra = internal::OrderDigest(order);
  extra = internal::HashMix(extra, static_cast<uint64_t>(slot));
  extra = internal::HashMix(extra, static_cast<uint64_t>(a));
  const uint64_t key = internal::WhatIfCallKey(kAccessCost, q.id, extra);
  return Dispatch<double>(scalar_cache_, key, [&] {
    return backend_->AccessCost(q, slot, order, a);
  });
}

Result<double> ResilientWhatIf::ShellCost(const Query& q,
                                          const Configuration& x) {
  const uint64_t key = internal::WhatIfCallKey(
      kShellCost, q.id, internal::ConfigurationDigest(x));
  return Dispatch<double>(scalar_cache_, key,
                          [&] { return backend_->ShellCost(q, x); });
}

Result<double> ResilientWhatIf::BaseUpdateCost(const Query& q) {
  const uint64_t key = internal::WhatIfCallKey(kBaseUpdateCost, q.id, 0);
  return Dispatch<double>(scalar_cache_, key,
                          [&] { return backend_->BaseUpdateCost(q); });
}

std::vector<std::vector<OrderSpec>> ResilientWhatIf::SlotOrderCandidates(
    const Query& q) const {
  return backend_->SlotOrderCandidates(q);
}

WhatIfHealth ResilientWhatIf::health() const {
  WhatIfHealth h;
  h.retries = retries_;
  h.failures = failures_;
  h.degraded = degraded_;
  h.breaker_fast_fails = breaker_fast_fails_;
  h.breaker_trips = breaker_trips_;
  h.breaker_open =
      state_.load(std::memory_order_relaxed) == BreakerState::kOpen;
  return h;
}

}  // namespace cophy
