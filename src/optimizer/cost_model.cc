#include "optimizer/cost_model.h"

namespace cophy {

CostModel CostModel::SystemA() {
  CostModel m;
  m.name = "system-a";
  return m;
}

CostModel CostModel::SystemB() {
  CostModel m;
  m.name = "system-b";
  m.seq_page = 0.8;
  m.rand_page = 2.0;
  m.cpu_tuple = 0.016;
  m.cpu_oper = 0.009;
  m.sort_factor = 2.0;
  m.hash_factor = 1.2;
  m.btree_descent = 8.0;
  m.update_leaf = 3.0;
  return m;
}

}  // namespace cophy
