// FaultInjectingWhatIf: a deterministic, seeded fault harness over any
// WhatIfOptimizer. It stands in for everything a real backend does
// wrong — transient planner timeouts, statements the server refuses to
// cost, latency spikes, and per-session what-if call budgets — while
// keeping every fault decision a pure function of (seed, call
// arguments, per-call-site attempt number), so a run replays
// bit-identically and an immediate retry of the same call redraws its
// fate exactly as a flaky server would.
#ifndef COPHY_OPTIMIZER_FAULT_INJECTION_H_
#define COPHY_OPTIMIZER_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "optimizer/whatif.h"

namespace cophy {

struct FaultInjectionOptions {
  uint64_t seed = 1;
  /// Probability that one backend call fails transiently (kTimeout).
  /// Drawn per (call key, attempt number): retrying the same call
  /// redraws, so bounded retries eventually succeed with probability 1.
  double transient_failure_rate = 0.0;
  /// Statements that fail permanently (kInternal), by statement id.
  /// Compressed per-shard views renumber statements, so tests that
  /// target "one shard" usually use the predicate form below instead.
  std::unordered_set<QueryId> permanent_failure_queries;
  /// Predicate form of permanent failures (e.g. "every statement
  /// touching table t"). Either trigger alone suffices.
  std::function<bool(const Query&)> permanent_failure_predicate;
  /// Latency added to every backend call, in seconds (0 = none).
  double injected_latency_seconds = 0.0;
  /// Remaining calls before every further call fails with
  /// kResourceExhausted (< 0 = unlimited).
  int64_t call_budget = -1;
};

/// Decorator injecting faults in front of `backend`. Thread-safe: the
/// per-key attempt counters are mutex-guarded and the stats are atomic.
class FaultInjectingWhatIf : public WhatIfOptimizer {
 public:
  /// `backend` must outlive this object; not owned.
  FaultInjectingWhatIf(WhatIfOptimizer* backend, FaultInjectionOptions opts);

  // WhatIfOptimizer:
  Result<double> Cost(const Query& q, const Configuration& x) override;
  Result<double> UpdateCost(IndexId a, const Query& q) override;
  Result<std::vector<TemplatePlan>> EnumerateTemplates(const Query& q) override;
  Result<double> AccessCost(const Query& q, int slot, const OrderSpec& order,
                            IndexId a) override;
  Result<double> ShellCost(const Query& q, const Configuration& x) override;
  Result<double> BaseUpdateCost(const Query& q) override;
  std::vector<std::vector<OrderSpec>> SlotOrderCandidates(
      const Query& q) const override;
  const Catalog& catalog() const override { return backend_->catalog(); }
  const IndexPool& pool() const override { return backend_->pool(); }
  int64_t num_whatif_calls() const override {
    return backend_->num_whatif_calls();
  }
  WhatIfHealth health() const override { return backend_->health(); }

  /// The backend recovered: clears permanent failures and stops
  /// transient injection. Latency and any remaining budget persist.
  void Heal();
  void set_transient_failure_rate(double rate);
  /// Restores `n` call-budget units (< 0 = unlimited again).
  void set_call_budget(int64_t n);

  int64_t injected_transient_faults() const { return transient_faults_; }
  int64_t injected_permanent_faults() const { return permanent_faults_; }
  int64_t budget_rejections() const { return budget_rejections_; }

 private:
  /// Fault decision for one call with digest `key` on statement `q`;
  /// OK means the call passes through to the backend.
  Status MaybeFail(uint64_t key, const Query& q);

  WhatIfOptimizer* backend_;
  FaultInjectionOptions opts_;
  mutable std::mutex mu_;                          // guards opts_ + attempts_
  std::unordered_map<uint64_t, uint64_t> attempts_;  // per-key call count
  std::atomic<int64_t> budget_left_{-1};
  std::atomic<int64_t> transient_faults_{0};
  std::atomic<int64_t> permanent_faults_{0};
  std::atomic<int64_t> budget_rejections_{0};
};

namespace internal {
/// Digest helpers shared by the fault injector and the resilient
/// decorator: both must agree on what "the same call" means.
uint64_t HashMix(uint64_t h, uint64_t v);
uint64_t ConfigurationDigest(const Configuration& x);
uint64_t OrderDigest(const OrderSpec& order);
/// Digest of one what-if call: `surface` tags the entry point.
uint64_t WhatIfCallKey(int surface, QueryId qid, uint64_t extra);
}  // namespace internal

}  // namespace cophy

#endif  // COPHY_OPTIMIZER_FAULT_INJECTION_H_
