#include "core/drift.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace cophy {

double DecayFactor(int64_t age_epochs, double half_life_epochs) {
  // The <= 0 gate is what makes the disabled path bit-identical to the
  // pre-drift session: no multiplication ever happens, not even by a
  // factor that rounds to 1.0.
  if (half_life_epochs <= 0 || age_epochs <= 0) return 1.0;
  return std::pow(0.5, static_cast<double>(age_epochs) / half_life_epochs);
}

DriftDetector::Reading DriftDetector::Observe(
    const std::vector<std::pair<int, double>>& class_weights) {
  Reading r;
  double total = 0;
  for (const auto& [cls, w] : class_weights) total += w;
  std::unordered_map<int, double> now;
  now.reserve(class_weights.size());
  for (const auto& [cls, w] : class_weights) {
    now[cls] = total > 0 ? w / total : 0.0;
  }
  if (!seeded_) {
    // First observation: everything is new; an empty first snapshot is
    // a stable (score 0) baseline, not full drift.
    r.new_classes = static_cast<int>(now.size());
    r.score = now.empty() ? 0.0 : 1.0;
  } else {
    double l1 = 0;
    for (const auto& [cls, share] : now) {
      auto it = prev_.find(cls);
      if (it == prev_.end()) {
        ++r.new_classes;
        l1 += share;
      } else {
        l1 += std::abs(share - it->second);
      }
    }
    for (const auto& [cls, share] : prev_) {
      if (now.find(cls) == now.end()) {
        ++r.retired_classes;
        l1 += share;
      }
    }
    r.score = 0.5 * l1;  // total-variation distance, in [0, 1]
  }
  prev_ = std::move(now);
  seeded_ = true;
  return r;
}

MaterializationDecision HysteresisScheduler::Update(
    const std::vector<IndexId>& recommended) {
  std::vector<IndexId> rec = recommended;
  std::sort(rec.begin(), rec.end());
  MaterializationDecision d;
  for (IndexId id : rec) {
    Track& t = tracks_[id];
    ++t.present_streak;
    t.absent_streak = 0;
    if (!t.applied && t.present_streak >= materialize_after_) {
      t.applied = true;
      d.materialized.push_back(id);
    }
  }
  // Tracks not in `recommended` accumulate absence; fully-expired
  // unapplied tracks are forgotten so the map stays bounded by the
  // candidate sets of the last K retunes.
  std::vector<IndexId> expired;
  for (auto& [id, t] : tracks_) {
    if (std::binary_search(rec.begin(), rec.end(), id)) continue;
    ++t.absent_streak;
    t.present_streak = 0;
    if (t.applied && t.absent_streak >= drop_after_) {
      t.applied = false;
      d.dropped.push_back(id);
    }
    if (!t.applied && t.absent_streak >= drop_after_) expired.push_back(id);
  }
  for (IndexId id : expired) tracks_.erase(id);
  for (const auto& [id, t] : tracks_) {
    if (t.applied) {
      d.applied.push_back(id);
      if (t.absent_streak > 0) d.pending_drop.push_back(id);
    } else if (t.present_streak > 0) {
      d.pending_materialize.push_back(id);
    }
  }
  return d;
}

void HysteresisScheduler::ForceInclude(IndexId id) {
  Track& t = tracks_[id];
  t.applied = true;
  t.present_streak = std::max(t.present_streak, materialize_after_);
  t.absent_streak = 0;
}

void HysteresisScheduler::ForceDrop(IndexId id) { tracks_.erase(id); }

std::vector<IndexId> HysteresisScheduler::applied() const {
  std::vector<IndexId> out;
  for (const auto& [id, t] : tracks_) {
    if (t.applied) out.push_back(id);
  }
  return out;
}

namespace {

void InsertSortedUnique(std::vector<IndexId>& v, IndexId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}

void EraseSorted(std::vector<IndexId>& v, IndexId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) v.erase(it);
}

}  // namespace

void DbaFeedback::Accept(IndexId id) {
  EraseSorted(vetoed_, id);
  InsertSortedUnique(accepted_, id);
}

void DbaFeedback::Veto(IndexId id) {
  EraseSorted(accepted_, id);
  InsertSortedUnique(vetoed_, id);
}

void DbaFeedback::Clear(IndexId id) {
  EraseSorted(accepted_, id);
  EraseSorted(vetoed_, id);
}

bool DbaFeedback::IsAccepted(IndexId id) const {
  return std::binary_search(accepted_.begin(), accepted_.end(), id);
}

bool DbaFeedback::IsVetoed(IndexId id) const {
  return std::binary_search(vetoed_.begin(), vetoed_.end(), id);
}

void DbaFeedback::AppendConstraints(ConstraintSet* cs) const {
  auto pin = [cs](IndexId id, double rhs, const char* verb) {
    IndexConstraint c;
    c.name = StrFormat("dba_%s_%d", verb, id);
    c.filter = [id](const Index& a, const Catalog&) { return a.id == id; };
    c.weight = [](const Index&, const Catalog&) { return 1.0; };
    c.op = CmpOp::kEq;
    c.rhs = rhs;
    cs->AddIndexConstraint(std::move(c));
  };
  for (IndexId id : accepted_) pin(id, 1.0, "accept");
  for (IndexId id : vetoed_) pin(id, 0.0, "veto");
}

}  // namespace cophy
