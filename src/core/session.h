// Sharded advisor sessions: the long-lived, incrementally updatable
// front end of the staged pipeline (Compress → CGen → INUM → BIPGen →
// Solve; docs/architecture.md "Shard/Merge"). An AdvisorSession owns N
// workload shards, each with its own compressor state (a ShardRouter
// class table) and PreparedWorkload, prepared concurrently on a shared
// worker pool. AddStatements/RemoveStatements touch only the affected
// shards — cost-equivalence signatures route every statement of a class
// to its leader's shard — and Tune merges the per-shard prepared views
// into one canonical ChoiceProblem (BuildMergedChoiceProblem), which is
// bit-identical to the unsharded CoPhy::Tune problem for any shard
// count. Retune re-solves warm: the previous incumbent, retained
// presolve reductions, root-LP basis and Lagrangian duals seed the new
// search through lp::ChoiceResolveState, so absorbing a small delta
// costs a fraction of a cold Tune (the serving model of semi-automatic
// index tuning: the advisor as a service absorbing a statement stream,
// not a one-shot batch job).
#ifndef COPHY_CORE_SESSION_H_
#define COPHY_CORE_SESSION_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/bipgen.h"
#include "core/cophy.h"
#include "core/prepared.h"
#include "lp/presolve.h"
#include "workload/compressor.h"

namespace cophy {

/// Session knobs.
struct SessionOptions {
  /// Tuning/preparation knobs, shared with the one-shot CoPhy front end
  /// (gap target, node limit, candidate generation, threads, ...).
  /// Compression mode must be kLossless or kNone: the router merges
  /// whole cost-equivalence classes either way, which is what makes the
  /// sharded and unsharded problems bit-identical. Lossy sampling is a
  /// batch-mode feature (GreedyAdvisor) and is rejected here.
  CoPhyOptions tuning;
  /// Workload shards, prepared independently and concurrently (<= 0:
  /// resolve to the preparation thread count). The shard count never
  /// changes Tune's output — only how incremental and parallel the
  /// preparation is (session_test pins shard invariance).
  int num_shards = 1;
  /// Online-tuning knobs: weight decay half-life and materialize/drop
  /// hysteresis windows (core/drift.h). Defaults preserve the exact
  /// pre-drift behavior (no decay, applied == recommended).
  DriftOptions drift;
};

/// A long-lived sharded tuning session.
///
/// Fault tolerance: every shard prepares through the fallible
/// WhatIfOptimizer boundary. A shard whose Prepare fails is
/// *quarantined* — its classes drop out of the merged problem and Tune
/// recommends from the healthy shards, with Recommendation::coverage
/// reporting the optimized fraction of live statement weight and
/// Recommendation::shard_health the per-shard picture. Quarantined
/// shards are retried at every Refresh/Tune/Retune; once the backend
/// heals, the shard rejoins and the output returns to the fault-free
/// recommendation exactly.
class AdvisorSession {
 public:
  /// `pool` must be the pool the what-if backend reads. `whatif` may be
  /// the raw simulator or any decorator stack (ResilientWhatIf over a
  /// fault injector, etc.).
  AdvisorSession(WhatIfOptimizer* whatif, IndexPool* pool,
                 SessionOptions options = {});

  /// Appends statements to the live workload and returns their session
  /// ids — the ids per-query constraints and RemoveStatements refer to.
  /// Only the shards receiving a *new* cost-equivalence class are
  /// marked for re-preparation; more instances of a known class are a
  /// pure re-weighting absorbed at merge time.
  std::vector<QueryId> AddStatements(const std::vector<Query>& stmts);
  std::vector<QueryId> AddWorkload(const Workload& w);

  /// Removes live statements by session id (ids are never reused).
  /// Removing the last member of a class retires the class — its shard
  /// re-prepares at the next Refresh; any other removal is weight-only.
  Status RemoveStatements(const std::vector<QueryId>& ids);

  /// DBA-pinned candidates (CGen's S_DBA), applied at the next
  /// structural refresh.
  void SetDbaIndexes(std::vector<Index> dba_indexes);
  /// Explicit candidate set instead of CGen (ids must be in the pool).
  /// Forces a full re-preparation of every shard.
  Status SetExplicitCandidates(std::vector<IndexId> ids);

  /// Advances the session's logical epoch clock by `ticks` (typically
  /// one per trace round). Statement weights decay as
  /// f_q * 0.5^(age_epochs / half_life_epochs), applied lazily at merge
  /// — no shard re-prepares, and with decay disabled (the default) this
  /// only moves the clock. `ticks` must be >= 0.
  void AdvanceEpoch(int64_t ticks = 1);
  int64_t epoch() const { return epoch_; }

  /// DBA feedback (semi-automatic tuning's accept/veto verbs). Accept
  /// pins the index into every subsequent recommendation (z_a == 1) and
  /// into the applied configuration immediately; Veto forbids it
  /// (z_a == 0) and drops it from the applied configuration. Each verb
  /// overrides the other; ClearFeedback forgets both. Ids must be pool
  /// ids.
  Status Accept(IndexId id);
  Status Veto(IndexId id);
  Status ClearFeedback(IndexId id);
  const DbaFeedback& feedback() const { return feedback_; }

  /// Drift picture of the last Tune/Retune (score, new/retired classes)
  /// plus the preparation work of the last Refresh (zero on a pure
  /// re-weighting — the fast path).
  const DriftStats& drift_stats() const { return drift_stats_; }
  /// The hysteresis-stable applied configuration (ascending pool ids).
  std::vector<IndexId> applied_configuration() const {
    return scheduler_.applied();
  }

  /// Brings the session up to date: runs CGen over the merged
  /// representative view, fully re-prepares structure-dirty shards
  /// concurrently on the shared worker pool, and hands clean shards the
  /// incremental γ entries for newly discovered candidates. No-op when
  /// nothing structural changed (weight-only deltas cost nothing here).
  /// Called implicitly by Tune/Retune.
  ///
  /// A shard whose preparation fails is quarantined (and retried on
  /// every later Refresh). The call still returns OK as long as the
  /// healthy shards cover a nonzero fraction of the live workload —
  /// degraded mode; only a session with *every* live class quarantined
  /// reports the failure as its own.
  Status Refresh();

  /// Merged cold solve (the exact CoPhy::Tune semantics over the live
  /// workload). Per-query constraint rows reference session ids;
  /// constraints on removed statements are dropped.
  Recommendation Tune(const ConstraintSet& constraints);
  /// Warm delta re-solve: previous incumbent, retained presolve
  /// reductions, root-LP basis and Lagrangian duals seed the search,
  /// and the node/time budgets shrink accordingly (§4.2).
  Recommendation Retune(const ConstraintSet& constraints);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Live statements (added minus removed).
  int num_statements() const { return live_statements_; }
  /// Live cost-equivalence classes (= merged query blocks).
  int num_classes() const;
  /// The merged candidate set of the last Refresh.
  const std::vector<IndexId>& candidates() const { return candidates_; }
  /// Merged per-shard preparation accounting (shards/skew filled).
  /// Cumulative over the session's lifetime, like CoPhy's
  /// Recommendation::prepare — the per-delta wall time lives in
  /// TuningTimings::inum_seconds instead.
  PrepareStats prepare_stats() const;
  /// One shard's prepared view (INUM caches over its classes; workload
  /// weights reflect the shard's last *structural* refresh — the merge
  /// path re-aggregates live weights itself). Baselines that need one
  /// coherent compressed view run a 1-shard session and read shard 0.
  const PreparedWorkload& shard_prepared(int shard) const;
  /// Cross-solve reuse accounting (warm_reuses counts Retunes that
  /// accepted the previous solve's presolve/basis/dual seeds).
  const lp::ChoiceResolveState& resolve_state() const { return resolve_; }

 private:
  struct ClassState {
    Query exemplar;  ///< first-ever member (defines the INUM cache)
    int shard = 0;
    std::vector<QueryId> members;  ///< live session ids, arrival order
  };
  struct StatementState {
    Query q;  ///< q.id holds the session id
    int cls = -1;
    bool live = false;
    int64_t arrival_epoch = 0;  ///< epoch clock value at AddStatements
  };
  struct Shard {
    /// Live classes in canonical (first-occurrence) order; matches the
    /// statement order of `prepared` after each structural refresh.
    std::vector<int> classes;
    PreparedWorkload prepared;
    bool dirty = false;  ///< class set changed since the last prepare
    /// Outcome of the shard's last preparation attempt. Non-OK means
    /// quarantined: the shard's classes are excluded from Tune until a
    /// Refresh rebuilds it successfully.
    Status health;
    int consecutive_failures = 0;  ///< failed attempts since last success
    bool quarantined() const { return !health.ok(); }
  };

  Recommendation TuneInternal(const ConstraintSet& constraints, bool warm);
  /// Fraction of live statement weight on healthy shards (1.0 for an
  /// empty session).
  double Coverage() const;
  /// One ShardHealth row per shard, from the live routing state.
  std::vector<ShardHealth> ShardHealthReport() const;
  /// Live classes in canonical order (class ids ascend with arrival).
  std::vector<int> LiveClasses() const;
  /// A statement's decayed live weight: f_q * DecayFactor(age). With
  /// decay disabled this *returns the raw weight without touching the
  /// FPU* — the undecayed path stays bit-identical (pinned by test).
  double StatementLiveWeight(QueryId sid) const;
  /// Σ live weight over a class's live members, summed in arrival order
  /// (the same accumulation order the lossless compressor uses, which
  /// keeps merged weights bit-identical to the unsharded path).
  double ClassWeight(int cls) const;
  /// The shard's compressed view for a full re-preparation.
  CompressedWorkload BuildShardView(int shard) const;
  /// Shared worker pool (nullptr when single-threaded).
  ThreadPool* Workers();

  WhatIfOptimizer* whatif_;
  IndexPool* pool_;
  SessionOptions options_;
  ShardRouter router_;
  std::vector<ClassState> classes_;        // dense by router class id
  std::vector<StatementState> statements_;  // dense by session id
  std::vector<Shard> shards_;
  std::vector<Index> dba_indexes_;
  std::vector<IndexId> explicit_candidates_;
  std::vector<IndexId> candidates_;
  int live_statements_ = 0;
  bool structure_dirty_ = false;
  double prepare_wall_seconds_ = 0;  // consumed by the next recommendation
  double cgen_seconds_total_ = 0;    // session-level CGen (merge step)
  double route_seconds_total_ = 0;   // routing + view (re)builds
  lp::ChoiceResolveState resolve_;
  std::vector<IndexId> last_chosen_;  // warm-start repair across refreshes
  /// Constraint-side digest (budget/caps/rhs) of the last solved
  /// problem: the root-LP skip requires this unchanged too, so budget
  /// or cap retunes keep the full root-bound machinery.
  uint64_t last_constraint_digest_ = 0;
  std::unique_ptr<ThreadPool> workers_;
  // Online-tuning state (core/drift.h).
  int64_t epoch_ = 0;              // logical clock for weight decay
  DriftDetector detector_;         // class-weight distribution movement
  HysteresisScheduler scheduler_;  // materialize/drop stabilization
  DbaFeedback feedback_;           // accept/veto ledger
  DriftStats drift_stats_;         // refreshed at every Tune/Retune
};

}  // namespace cophy

#endif  // COPHY_CORE_SESSION_H_
