// BIPGen (§4, Fig. 2): turns the INUM caches into the binary integer
// program of Theorem 1. Two materializations are provided:
//
//  * BuildChoiceProblem — the structured form the scalable solver
//    consumes (identical solution space; the y/x/z variables are
//    implicit in the per-query choice structure).
//  * BuildModel — the literal Theorem-1 BIP (explicit y_qk, x_qkia,
//    z_a variables and rows), solvable by the generic MIP solver.
//    Exponentially clearer, linearly bigger; used for validation and
//    small instances.
//
// Both accept the DBA constraint set: index constraints become linear
// z-rows (§3.2), query-cost constraints become per-query caps/rows.
#ifndef COPHY_CORE_BIPGEN_H_
#define COPHY_CORE_BIPGEN_H_

#include <vector>

#include "constraints/constraints.h"
#include "inum/inum.h"
#include "lp/choice_problem.h"
#include "lp/model.h"

namespace cophy {

/// Statistics about the generated BIP (the paper's compactness story:
/// variables grow linearly in |W|, |S|, and ΣK_q).
struct BipStats {
  int64_t y_variables = 0;     ///< Σ_q K_q
  int64_t x_variables = 0;     ///< Σ γ entries (pre-pruning count)
  int64_t z_variables = 0;     ///< |S|
  int64_t linking_rows = 0;    ///< z_a ≥ x_qkia rows
  int64_t assignment_rows = 0; ///< Σ y = 1 and Σ x = y rows
  int64_t constraint_rows = 0; ///< DBA constraint rows
};

/// Builds the structured problem over dense ids (candidates[i] ↦ i).
/// `baseline_shell_cost[q]` must hold cost(q, X0) for statements with
/// query-cost constraints (pass {} when none are used).
lp::ChoiceProblem BuildChoiceProblem(
    const Inum& inum, const std::vector<IndexId>& candidates,
    const ConstraintSet& constraints,
    const std::vector<double>& baseline_shell_cost = {});

/// One shard's contribution to a merged BIP: its INUM caches plus, per
/// query block owned by the shard, the shard-local statement id, the
/// block's global (canonical) position, the re-aggregated f_q weight of
/// the block's live members, and the intersected per-block cost cap.
/// Shards never share a block — the session routes whole
/// cost-equivalence classes to one shard.
struct ShardBlockView {
  const Inum* inum = nullptr;
  std::vector<QueryId> stmt;     ///< shard-local compressed statement ids
  std::vector<int> block;        ///< global block position of each stmt
  std::vector<double> weight;    ///< Σ f_q over each block's live members
  std::vector<double> cost_cap;  ///< intersected cap (lp::kInf = none)
};

/// The BipGen merge path: assembles the per-shard prepared views into
/// one canonical ChoiceProblem — indexes deduped through the shared
/// `candidates` list, f_q weights and update costs re-aggregated in
/// global block order. For any shard count (including 1) the result is
/// bit-identical to BuildChoiceProblem over the equivalent unsharded
/// PreparedWorkload (session_test pins this through Tune).
/// Query-cost constraints must already be folded into the views'
/// cost_cap entries; only the z-level constraints of `constraints`
/// (storage budget, index constraints) are read here.
lp::ChoiceProblem BuildMergedChoiceProblem(
    const std::vector<ShardBlockView>& shards,
    const std::vector<IndexId>& candidates, const ConstraintSet& constraints);

/// Variable/row statistics of the merged BIP (mirrors ComputeBipStats).
/// `translated_query_constraint_rows` is the number of query-cost
/// constraint rows that survived translation onto live blocks (the
/// session counts them while folding caps), so constraint_rows matches
/// the unsharded ComputeBipStats over the translated constraint set.
BipStats ComputeMergedBipStats(const std::vector<ShardBlockView>& shards,
                               const std::vector<IndexId>& candidates,
                               const ConstraintSet& constraints,
                               int64_t translated_query_constraint_rows);

/// Builds the literal Theorem-1 model (y/x/z variables and rows).
lp::Model BuildModel(const Inum& inum, const std::vector<IndexId>& candidates,
                     const ConstraintSet& constraints,
                     const std::vector<double>& baseline_shell_cost = {});

/// Variable/row statistics without materializing the model.
BipStats ComputeBipStats(const Inum& inum,
                         const std::vector<IndexId>& candidates,
                         const ConstraintSet& constraints);

}  // namespace cophy

#endif  // COPHY_CORE_BIPGEN_H_
