#include "core/prepared.h"

#include "common/check.h"
#include "common/stopwatch.h"

namespace cophy {

Status PreparedWorkload::Begin(WhatIfOptimizer* whatif, IndexPool* pool,
                               const Workload& w, const PrepareOptions& opts) {
  COPHY_CHECK(whatif != nullptr);
  COPHY_CHECK(pool != nullptr);
  COPHY_CHECK_EQ(&whatif->pool(), pool);
  whatif_ = whatif;
  pool_ = pool;
  options_ = opts;
  stats_ = PrepareStats();

  compressed_ = CompressWorkload(w, whatif_->catalog(), opts.compression);
  stats_.compression = compressed_.stats;
  stats_.max_shard_statements = stats_.compression.input_statements;
  if (compressed_.workload.size() == 0 && w.size() > 0) {
    return Status::InvalidArgument("compression dropped every statement");
  }

  InumOptions io;
  io.num_threads = opts.num_threads;
  io.workers = opts.workers;
  io.deadline_seconds = opts.deadline_seconds;
  io.plan_cache = opts.plan_cache;
  // After lossless compression no two surviving statements are
  // cost-equivalent by construction — skip INUM's signature pass.
  io.share_templates = opts.share_templates &&
                       opts.compression.mode != CompressionMode::kLossless;
  inum_ = std::make_unique<Inum>(whatif_, io);
  return Status::Ok();
}

void PreparedWorkload::CopyPlanCacheCounters() {
  // The Inum instance accumulates across its Prepare + AddCandidates
  // runs, so totals are copied, not added.
  stats_.plan_cache_template_hits = inum_->plan_cache_template_hits();
  stats_.plan_cache_template_misses = inum_->plan_cache_template_misses();
  stats_.plan_cache_gamma_hits = inum_->plan_cache_gamma_hits();
  stats_.plan_cache_gamma_misses = inum_->plan_cache_gamma_misses();
}

void PreparedWorkload::AccumulateHealthDelta(const WhatIfHealth& before) {
  const WhatIfHealth after = whatif_->health();
  stats_.whatif_retries += after.retries - before.retries;
  stats_.whatif_failures += after.failures - before.failures;
  stats_.whatif_degraded += after.degraded - before.degraded;
  stats_.whatif_fast_fails += after.breaker_fast_fails - before.breaker_fast_fails;
  stats_.breaker_trips += after.breaker_trips - before.breaker_trips;
}

Status PreparedWorkload::RunInum() {
  Stopwatch watch;
  const WhatIfHealth before = whatif_->health();
  Status s = inum_->Prepare(compressed_.workload, candidates_);
  stats_.inum_seconds = watch.Elapsed();
  stats_.num_threads = inum_->num_threads_used();
  stats_.shared_statements = inum_->num_shared_statements();
  CopyPlanCacheCounters();
  AccumulateHealthDelta(before);
  if (!s.ok()) {
    // Partial caches must never be read: revert to unprepared so every
    // accessor behind prepared() stays unreachable until a Prepare
    // succeeds.
    inum_.reset();
    return s;
  }
  // Inum holds its own copy now; keep only the statement mapping (the
  // retained duplicate matters at 50k-statement scale).
  compressed_.workload = Workload();
  return Status::Ok();
}

Status PreparedWorkload::Prepare(WhatIfOptimizer* whatif, IndexPool* pool,
                                 const Workload& w, const PrepareOptions& opts,
                                 const std::vector<Index>& dba_indexes) {
  Status s = Begin(whatif, pool, w, opts);
  if (!s.ok()) return s;
  Stopwatch watch;
  candidates_ = GenerateCandidates(compressed_.workload, whatif_->catalog(),
                                   opts.candidates, *pool_, dba_indexes);
  stats_.cgen_seconds = watch.Elapsed();
  return RunInum();
}

Status PreparedWorkload::PrepareWithCandidates(WhatIfOptimizer* whatif,
                                               IndexPool* pool,
                                               const Workload& w,
                                               const PrepareOptions& opts,
                                               std::vector<IndexId> candidate_ids) {
  for (IndexId id : candidate_ids) {
    if (id < 0 || id >= pool->size()) {
      return Status::InvalidArgument("candidate id outside the pool");
    }
  }
  Status s = Begin(whatif, pool, w, opts);
  if (!s.ok()) return s;
  candidates_ = std::move(candidate_ids);
  return RunInum();
}

Status PreparedWorkload::PrepareCompressed(WhatIfOptimizer* whatif,
                                           IndexPool* pool,
                                           CompressedWorkload cw,
                                           const PrepareOptions& opts,
                                           std::vector<IndexId> candidate_ids) {
  COPHY_CHECK(whatif != nullptr);
  COPHY_CHECK(pool != nullptr);
  COPHY_CHECK_EQ(&whatif->pool(), pool);
  for (IndexId id : candidate_ids) {
    if (id < 0 || id >= pool->size()) {
      return Status::InvalidArgument("candidate id outside the pool");
    }
  }
  whatif_ = whatif;
  pool_ = pool;
  options_ = opts;
  stats_ = PrepareStats();
  stats_.compression = cw.stats;
  stats_.max_shard_statements = stats_.compression.input_statements;
  compressed_ = std::move(cw);

  InumOptions io;
  io.num_threads = opts.num_threads;
  io.workers = opts.workers;
  io.deadline_seconds = opts.deadline_seconds;
  io.plan_cache = opts.plan_cache;
  // The router merged whole cost-equivalence classes already: no two
  // statements of the view share a cache, so skip the signature pass.
  io.share_templates = false;
  inum_ = std::make_unique<Inum>(whatif_, io);
  candidates_ = std::move(candidate_ids);
  return RunInum();
}

Status PreparedWorkload::AddCandidates(const std::vector<IndexId>& new_ids) {
  COPHY_CHECK(prepared());
  for (IndexId id : new_ids) {
    if (id < 0 || id >= pool_->size()) {
      return Status::InvalidArgument("candidate id outside the pool");
    }
    for (IndexId have : candidates_) {
      if (have == id) {
        return Status::InvalidArgument("candidate already present");
      }
    }
  }
  Stopwatch watch;
  const WhatIfHealth before = whatif_->health();
  Status s = inum_->AddCandidates(new_ids);
  stats_.inum_seconds += watch.Elapsed();
  if (s.ok()) CopyPlanCacheCounters();
  AccumulateHealthDelta(before);
  if (!s.ok()) {
    // An interrupted incremental append leaves some statements updated
    // and others not; the only consistent recovery is a full Prepare.
    inum_.reset();
    return s;
  }
  candidates_.insert(candidates_.end(), new_ids.begin(), new_ids.end());
  return Status::Ok();
}

QueryId PreparedWorkload::CompressedId(QueryId original) const {
  if (original < 0 || original >= static_cast<QueryId>(compressed_.map.size())) {
    return -1;
  }
  return compressed_.map[original];
}

ConstraintSet PreparedWorkload::TranslateConstraints(
    const ConstraintSet& cs) const {
  ConstraintSet out;
  if (cs.storage_budget()) out.SetStorageBudget(*cs.storage_budget());
  for (const IndexConstraint& c : cs.index_constraints()) {
    out.AddIndexConstraint(c);
  }
  for (const SoftConstraint& c : cs.soft_constraints()) {
    out.AddSoftConstraint(c);
  }
  // Per-query constraints move to the representative. Several originals
  // can land on one representative; keeping every translated row makes
  // the effective cap the min over them — exactly the intersection of
  // the original constraints (identical statements have identical
  // costs, so each original row is equivalent to its translation).
  for (const QueryCostConstraint& c : cs.query_cost_constraints()) {
    QueryCostConstraint t = c;
    t.query = CompressedId(c.query);
    if (t.query < 0) continue;  // dropped by lossy sampling
    out.AddQueryCostConstraint(t);
  }
  return out;
}

}  // namespace cophy
