#include "core/cophy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"

namespace cophy {

CoPhy::CoPhy(WhatIfOptimizer* whatif, IndexPool* pool, Workload workload,
             CoPhyOptions options)
    : whatif_(whatif),
      pool_(pool),
      workload_(std::move(workload)),
      options_(std::move(options)) {
  COPHY_CHECK(whatif != nullptr);
  COPHY_CHECK(pool != nullptr);
  COPHY_CHECK_EQ(&whatif->pool(), pool);
}

Status CoPhy::Prepare(const std::vector<Index>& dba_indexes) {
  Stopwatch watch;
  Status s = prepared_.Prepare(whatif_, pool_, workload_, options_.prepare,
                               dba_indexes);
  if (!s.ok()) return s;
  candidates_ = prepared_.candidates();
  last_selection_.clear();
  prepare_seconds_ += watch.Elapsed();
  return Status::Ok();
}

Status CoPhy::PrepareWithCandidates(std::vector<IndexId> candidate_ids) {
  Stopwatch watch;
  Status s = prepared_.PrepareWithCandidates(
      whatif_, pool_, workload_, options_.prepare, std::move(candidate_ids));
  if (!s.ok()) return s;
  candidates_ = prepared_.candidates();
  last_selection_.clear();
  prepare_seconds_ += watch.Elapsed();
  return Status::Ok();
}

Status CoPhy::RestrictCandidates(std::vector<IndexId> subset) {
  if (!prepared_.prepared()) {
    return Status::InvalidArgument("Prepare must run first");
  }
  const std::vector<IndexId>& all = prepared_.inum().candidates();
  for (IndexId id : subset) {
    if (std::find(all.begin(), all.end(), id) == all.end()) {
      return Status::InvalidArgument("subset index was never prepared");
    }
  }
  candidates_ = std::move(subset);
  last_selection_.clear();
  return Status::Ok();
}

Status CoPhy::AddCandidates(const std::vector<IndexId>& new_ids) {
  Stopwatch watch;
  if (!prepared_.prepared()) {
    return Status::InvalidArgument("Prepare must run first");
  }
  for (IndexId id : new_ids) {
    if (std::find(candidates_.begin(), candidates_.end(), id) !=
        candidates_.end()) {
      return Status::InvalidArgument("candidate already present");
    }
  }
  // Ids excluded earlier via RestrictCandidates still have live INUM
  // caches — only genuinely new ids need incremental γ preparation.
  const std::vector<IndexId>& already = prepared_.inum().candidates();
  std::vector<IndexId> unprepared;
  for (IndexId id : new_ids) {
    if (std::find(already.begin(), already.end(), id) == already.end()) {
      unprepared.push_back(id);
    }
  }
  if (!unprepared.empty()) {
    Status s = prepared_.AddCandidates(unprepared);
    if (!s.ok()) return s;
  }
  candidates_.insert(candidates_.end(), new_ids.begin(), new_ids.end());
  // Keep the warm start valid: new candidates start unselected.
  if (!last_selection_.empty()) {
    last_selection_.resize(candidates_.size(), 0);
  }
  prepare_seconds_ += watch.Elapsed();
  return Status::Ok();
}

ThreadPool* CoPhy::PresolvePool() {
  const int n = ResolveThreadCount(options_.prepare.num_threads);
  if (n <= 1) return nullptr;
  if (presolve_pool_ == nullptr || presolve_pool_->size() != n) {
    presolve_pool_ = std::make_unique<ThreadPool>(n);
  }
  return presolve_pool_.get();
}

std::vector<double> CoPhy::BaselineShellCosts(const ConstraintSet& constraints) {
  // `constraints` must already be in the compressed statement space.
  std::vector<double> base;
  if (constraints.query_cost_constraints().empty()) return base;
  base.resize(prepared_.tuned().size(), 0.0);
  const Configuration empty;
  for (const QueryCostConstraint& qc : constraints.query_cost_constraints()) {
    base[qc.query] = prepared_.inum().ShellCost(qc.query, empty);
  }
  return base;
}

Recommendation CoPhy::Tune(const ConstraintSet& constraints) {
  return TuneInternal(constraints, /*warm_start=*/false);
}

Recommendation CoPhy::Retune(const ConstraintSet& constraints) {
  return TuneInternal(constraints, /*warm_start=*/true);
}

Recommendation CoPhy::TuneInternal(const ConstraintSet& constraints,
                                   bool warm_start) {
  Recommendation rec;
  if (!prepared_.prepared()) {
    rec.status = Status::InvalidArgument("Prepare must run first");
    return rec;
  }
  rec.num_candidates = static_cast<int>(candidates_.size());
  rec.timings.inum_seconds = prepare_seconds_;
  rec.prepare = prepared_.stats();
  // Any last-known-cache answer during preparation taints the INUM
  // coefficients the BIP was generated from.
  rec.degraded = rec.prepare.whatif_degraded > 0;
  prepare_seconds_ = 0;  // consumed by this report

  Stopwatch build_watch;
  // Per-query constraints are expressed over the original workload;
  // rewrite them into the compressed statement space tuning runs on.
  const ConstraintSet local = prepared_.TranslateConstraints(constraints);
  const std::vector<double> baseline = BaselineShellCosts(local);
  const Inum& inum = prepared_.inum();
  lp::ChoiceProblem problem =
      BuildChoiceProblem(inum, candidates_, local, baseline);
  rec.bip = ComputeBipStats(inum, candidates_, local);
  rec.timings.build_seconds = build_watch.Elapsed();

  Stopwatch solve_watch;
  lp::ChoiceSolveOptions so;
  so.gap_target = options_.gap_target;
  so.time_limit_seconds = options_.time_limit_seconds;
  so.node_limit = options_.node_limit;
  so.lagrangian = options_.lagrangian;
  so.presolve = options_.presolve;
  so.root_lp = options_.root_lp;
  so.callback = options_.callback;
  if (warm_start && last_selection_.size() == candidates_.size()) {
    // Incremental re-solve: the previous solution seeds the incumbent
    // and the search budget shrinks accordingly — the solver only has
    // to account for the delta, which is what makes interactive tuning
    // an order of magnitude cheaper (§4.2, Fig. 6(b)).
    so.warm_start = last_selection_;
    so.node_limit = std::max<int64_t>(500, options_.node_limit / 8);
    if (std::isfinite(options_.time_limit_seconds)) {
      so.time_limit_seconds = std::max(1.0, options_.time_limit_seconds / 8);
    }
  }
  lp::ChoiceSolution sol =
      lp::SolveChoiceProblem(problem, so, &rec.presolve, PresolvePool());
  rec.timings.solve_seconds = solve_watch.Elapsed();

  rec.status = sol.status;
  if (!sol.status.ok()) return rec;

  last_selection_ = sol.selected;
  std::vector<IndexId> chosen;
  for (size_t i = 0; i < sol.selected.size(); ++i) {
    if (sol.selected[i]) chosen.push_back(candidates_[i]);
  }
  rec.configuration = Configuration(std::move(chosen));
  rec.objective = sol.objective;
  rec.lower_bound = sol.lower_bound;
  rec.gap = sol.gap;
  rec.nodes = sol.nodes;
  rec.bound_evaluations = sol.bound_evaluations;
  rec.root_lp_bound = sol.root_lp_bound;
  rec.root_lagrangian_bound = sol.root_lagrangian_bound;
  rec.variables_fixed = sol.variables_fixed;
  rec.root_lp_stats = sol.root_lp_stats;
  return rec;
}

// ---------------------------------------------------------------------------
// Soft constraints: λ-scalarization + Chord

ParetoPoint CoPhy::SolveScalarized(const ConstraintSet& constraints,
                                   const SoftConstraint& soft, double lambda,
                                   std::vector<uint8_t>* warm) {
  Stopwatch watch;
  ParetoPoint point;
  point.lambda = lambda;

  const ConstraintSet local = prepared_.TranslateConstraints(constraints);
  const std::vector<double> baseline = BaselineShellCosts(local);
  lp::ChoiceProblem problem =
      BuildChoiceProblem(prepared_.inum(), candidates_, local, baseline);
  const std::vector<double> soft_w_raw = SoftConstraintWeights(
      soft, candidates_, whatif_->pool(), whatif_->catalog());
  std::vector<double> soft_w = soft_w_raw;

  // Normalize the soft term into workload-cost units so the λ grid is
  // meaningful (size bytes would otherwise dwarf plan costs): one unit
  // of "full soft mass" is priced like the whole unindexed workload.
  std::vector<uint8_t> none(candidates_.size(), 0);
  const double base_cost = problem.Objective(none);
  double soft_total = 0;
  for (double wgt : soft_w) soft_total += wgt;
  const double soft_scale =
      soft_total > 0 ? base_cost / soft_total : 1.0;
  for (double& wgt : soft_w) wgt *= soft_scale;

  // B' (§4.1): λ·cost(X, W) + (1−λ)·(Σ w_a z_a − target).
  lp::ChoiceProblem scaled = problem;
  for (auto& q : scaled.queries) q.weight *= lambda;
  for (int i = 0; i < scaled.num_indexes; ++i) {
    scaled.fixed_cost[i] =
        lambda * problem.fixed_cost[i] + (1 - lambda) * soft_w[i];
  }
  scaled.constant_cost = lambda * problem.constant_cost -
                         (1 - lambda) * soft.target * soft_scale;

  lp::ChoiceSolveOptions so;
  so.gap_target = options_.gap_target;
  so.time_limit_seconds = options_.time_limit_seconds;
  so.node_limit = options_.node_limit;
  so.lagrangian = options_.lagrangian;
  so.presolve = options_.presolve;
  so.root_lp = options_.root_lp;
  so.callback = options_.callback;
  if (warm != nullptr &&
      warm->size() == static_cast<size_t>(scaled.num_indexes)) {
    // Subsequent Pareto points reuse the previous point's computation
    // (Fig. 6(c)'s 4x speedup over naive recomputation).
    so.warm_start = *warm;
    so.node_limit = std::max<int64_t>(500, options_.node_limit / 8);
    if (std::isfinite(options_.time_limit_seconds)) {
      so.time_limit_seconds = std::max(1.0, options_.time_limit_seconds / 8);
    }
  }
  const lp::ChoiceSolution sol =
      lp::SolveChoiceProblem(scaled, so, nullptr, PresolvePool());
  point.seconds = watch.Elapsed();
  if (!sol.status.ok()) return point;

  if (warm != nullptr) *warm = sol.selected;
  std::vector<IndexId> chosen;
  for (size_t i = 0; i < sol.selected.size(); ++i) {
    if (sol.selected[i]) chosen.push_back(candidates_[i]);
  }
  point.configuration = Configuration(std::move(chosen));
  // Report the point in the original (unscaled) objective space.
  point.workload_cost = problem.Objective(sol.selected);
  point.soft_value = 0;  // reported in the constraint's native units
  for (size_t i = 0; i < sol.selected.size(); ++i) {
    if (sol.selected[i]) point.soft_value += soft_w_raw[i];
  }
  return point;
}

std::vector<ParetoPoint> CoPhy::TuneSoftGrid(const ConstraintSet& constraints,
                                             const std::vector<double>& lambdas) {
  COPHY_CHECK_EQ(constraints.soft_constraints().size(), 1u);
  const SoftConstraint& soft = constraints.soft_constraints()[0];
  std::vector<ParetoPoint> points;
  std::vector<uint8_t> warm;
  for (double lambda : lambdas) {
    points.push_back(SolveScalarized(constraints, soft, lambda, &warm));
  }
  return points;
}

std::vector<ParetoPoint> CoPhy::TuneSoftChord(const ConstraintSet& constraints,
                                              double epsilon, int max_points) {
  COPHY_CHECK_EQ(constraints.soft_constraints().size(), 1u);
  const SoftConstraint& soft = constraints.soft_constraints()[0];
  std::vector<ParetoPoint> points;
  std::vector<uint8_t> warm;

  // Endpoints λ = 1 (pure cost) and λ = 0 (pure soft value).
  points.push_back(SolveScalarized(constraints, soft, 1.0, &warm));
  points.push_back(SolveScalarized(constraints, soft, 0.0, &warm));

  // Normalization ranges for the distance test.
  const double c_range = std::max(
      1e-9, std::abs(points[1].workload_cost - points[0].workload_cost));
  const double s_range =
      std::max(1e-9, std::abs(points[0].soft_value - points[1].soft_value));

  struct Segment {
    ParetoPoint a, b;
    int depth;
  };
  std::vector<Segment> stack{{points[0], points[1], 0}};
  while (!stack.empty() && static_cast<int>(points.size()) < max_points) {
    Segment seg = stack.back();
    stack.pop_back();
    if (seg.depth > 8) continue;
    // The chord rule: probe the λ whose scalarized objective weighs the
    // two endpoints equally (the point of maximum possible distance
    // from the chord lies there).
    const double dc = (seg.a.workload_cost - seg.b.workload_cost) / c_range;
    const double ds = (seg.b.soft_value - seg.a.soft_value) / s_range;
    const double denom = dc + ds;
    if (std::abs(denom) < 1e-12) continue;
    double lambda = ds / denom;
    lambda = std::clamp(lambda, 1e-3, 1.0 - 1e-3);
    ParetoPoint probe = SolveScalarized(constraints, soft, lambda, &warm);

    // Normalized distance of the probe from the chord (a, b).
    const double ax = seg.a.workload_cost / c_range,
                 ay = seg.a.soft_value / s_range;
    const double bx = seg.b.workload_cost / c_range,
                 by = seg.b.soft_value / s_range;
    const double px = probe.workload_cost / c_range,
                 py = probe.soft_value / s_range;
    const double vx = bx - ax, vy = by - ay;
    const double len = std::sqrt(vx * vx + vy * vy);
    double dist = 0;
    if (len > 1e-12) {
      dist = std::abs(vx * (ay - py) - vy * (ax - px)) / len;
    }
    if (dist <= epsilon) continue;  // chord approximates well enough
    points.push_back(probe);
    stack.push_back({seg.a, probe, seg.depth + 1});
    stack.push_back({probe, seg.b, seg.depth + 1});
  }

  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& x, const ParetoPoint& y) {
              return x.lambda > y.lambda;
            });
  return points;
}

}  // namespace cophy
