// The CoPhy index advisor (§4, Fig. 2): CGen + INUM + BIPGen + Solver,
// with the paper's distinguishing features — hard & soft constraints,
// continuous solution-quality feedback with early termination,
// interactive (warm-started) re-tuning, and Pareto exploration of soft
// constraints via the Chord algorithm.
#ifndef COPHY_CORE_COPHY_H_
#define COPHY_CORE_COPHY_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "constraints/constraints.h"
#include "core/bipgen.h"
#include "core/drift.h"
#include "core/prepared.h"
#include "index/candidates.h"
#include "inum/inum.h"
#include "lp/choice_problem.h"
#include "lp/presolve.h"

namespace cophy {

/// Tuning-session knobs.
struct CoPhyOptions {
  /// Preparation stage: compression, CGen, INUM threading.
  PrepareOptions prepare;
  /// Stop at the first solution provably within this fraction of the
  /// optimum (paper default 5%).
  double gap_target = 0.05;
  double time_limit_seconds = lp::kInf;
  int64_t node_limit = 50'000;
  /// Apply the Lagrangian relaxation step (§4.1 line 3).
  bool lagrangian = true;
  /// Presolve the BIP before solving (plan dedup/dominance, option
  /// pruning, index dropping — §5's shrinking story). Exact: identical
  /// objectives and re-inflated recommendations either way.
  bool presolve = true;
  /// Solve the full root LP relaxation (tight root bound, dual-seeded
  /// Lagrangian multipliers, reduced-cost variable fixing).
  bool root_lp = true;
  /// Progress feedback; return false to terminate early with the
  /// current solution (§4.2).
  std::function<bool(const lp::MipProgress&)> callback;
};

/// Timing breakdown matching the paper's stacked bars (Figs. 5/10).
/// `inum_seconds` covers the whole preparation stage (compression +
/// CGen + INUM); the finer split lives in Recommendation::prepare.
struct TuningTimings {
  double inum_seconds = 0;   ///< preparation (Compress + CGen + INUM)
  double build_seconds = 0;  ///< BIP generation
  double solve_seconds = 0;  ///< solver time
  double Total() const { return inum_seconds + build_seconds + solve_seconds; }
  /// Aggregates another breakdown (per-batch or per-shard accounting).
  TuningTimings& operator+=(const TuningTimings& o) {
    inum_seconds += o.inum_seconds;
    build_seconds += o.build_seconds;
    solve_seconds += o.solve_seconds;
    return *this;
  }
};

/// Per-shard health snapshot carried by a sharded session's
/// recommendation (empty for the unsharded CoPhy advisor).
struct ShardHealth {
  int shard = 0;
  bool healthy = true;           ///< the shard's last Prepare succeeded
  int classes = 0;               ///< live cost-equivalence classes routed here
  int statements = 0;            ///< live original statements behind them
  int consecutive_failures = 0;  ///< Prepare failures since the last success
  Status status;                 ///< last Prepare outcome (OK when healthy)
};

/// A tuning outcome.
struct Recommendation {
  Status status;
  Configuration configuration;     ///< X* (pool index ids)
  double objective = 0;            ///< BIP objective (est. workload cost)
  double lower_bound = 0;
  double gap = 0;                  ///< proven optimality gap at return
  int64_t nodes = 0;
  int64_t bound_evaluations = 0;   ///< solver bound computations (work proxy)
  /// Root bounds: the full LP relaxation optimum and the Lagrangian
  /// dual after subgradient optimization (-inf when skipped/disabled).
  double root_lp_bound = -lp::kInf;
  double root_lagrangian_bound = -lp::kInf;
  int64_t variables_fixed = 0;     ///< z fixed 0/1 by root reduced costs
  /// Simplex work behind the root LP bound (pivots, warm-start
  /// acceptance, LU refactorizations / eta fill / drift / solve time).
  lp::LpSolveStats root_lp_stats;
  /// BIP presolve reduction accounting for this solve.
  lp::PresolveStats presolve;
  TuningTimings timings;
  BipStats bip;
  int num_candidates = 0;
  /// Preparation-stage accounting (compression ratio, thread count,
  /// stage timings) for the session that produced this recommendation.
  PrepareStats prepare;
  /// Degraded-mode accounting. `coverage` is the fraction of live
  /// statement weight the recommendation actually optimized: 1.0
  /// normally, < 1.0 when quarantined shards were excluded. `degraded`
  /// is set when coverage < 1 or any what-if answer came from a
  /// last-known cache. `shard_health` has one entry per session shard
  /// (empty for the unsharded advisor).
  double coverage = 1.0;
  bool degraded = false;
  std::vector<ShardHealth> shard_health;
  /// Hysteresis-stabilized materialize/drop decision of a drift-aware
  /// session (core/drift.h): `materialization.applied` is the stable
  /// configuration the DBA should hold, `configuration` above the raw
  /// solver recommendation of this retune. With the default hysteresis
  /// windows (1/1) the two are identical; empty for one-shot advisors.
  MaterializationDecision materialization;
};

/// One point of a Pareto sweep over a soft constraint.
struct ParetoPoint {
  double lambda = 0;
  Configuration configuration;
  double workload_cost = 0;  ///< Σ f_q cost(q, X) (INUM estimate)
  double soft_value = 0;     ///< Σ w_a for the selected set (e.g. bytes)
  double seconds = 0;        ///< time to produce this point
};

/// The advisor. Typical use:
///   CoPhy advisor(&sim, workload, options);
///   advisor.Prepare();                    // CGen + INUM
///   auto rec = advisor.Tune(constraints); // solve the BIP
///   advisor.AddCandidates(more);          // interactive tweak
///   auto rec2 = advisor.Retune(constraints);  // warm-started delta solve
class CoPhy {
 public:
  /// `pool` must be the pool the what-if backend reads (CGen inserts
  /// the generated candidates into it). `whatif` may be the raw
  /// simulator or any decorator stack (ResilientWhatIf over a fault
  /// injector, etc.) — the advisor only ever talks to this boundary.
  CoPhy(WhatIfOptimizer* whatif, IndexPool* pool, Workload workload,
        CoPhyOptions options = {});

  /// Runs CGen over the workload (plus S_DBA) and builds the INUM
  /// caches. Must be called before tuning.
  Status Prepare(const std::vector<Index>& dba_indexes = {});

  /// Uses an explicit candidate set instead of CGen (the ids must be in
  /// the backend's pool).
  Status PrepareWithCandidates(std::vector<IndexId> candidate_ids);

  /// Restricts tuning to a subset of the prepared candidates (INUM
  /// caches are reused; used by the candidate-set scaling experiments).
  Status RestrictCandidates(std::vector<IndexId> subset);

  /// Adds candidates incrementally; only their γ entries are computed.
  Status AddCandidates(const std::vector<IndexId>& new_ids);

  /// Solves the tuning BIP under the given constraints.
  Recommendation Tune(const ConstraintSet& constraints);

  /// Re-solves after small changes, warm-starting from the previous
  /// solution (§4.2 "Interactive Tuning").
  Recommendation Retune(const ConstraintSet& constraints);

  /// Pareto sweep for a single soft constraint at fixed λ values
  /// (Fig. 6(c) uses λ ∈ {0, .25, .5, .75, 1}). Hard constraints in
  /// `constraints` still apply. Points are solved in order with warm
  /// starts.
  std::vector<ParetoPoint> TuneSoftGrid(const ConstraintSet& constraints,
                                        const std::vector<double>& lambdas);

  /// Chord-algorithm Pareto approximation (Appendix D): adaptively
  /// chooses λ values until the curve is within `epsilon` (relative
  /// objective-space distance) or `max_points` solutions were produced.
  std::vector<ParetoPoint> TuneSoftChord(const ConstraintSet& constraints,
                                         double epsilon = 0.05,
                                         int max_points = 16);

  const Inum& inum() const { return prepared_.inum(); }
  /// The shared preparation stage (compressed view, mapping, stats).
  const PreparedWorkload& prepared() const { return prepared_; }
  /// The active candidate set tuning runs over (a subset of the
  /// prepared candidates after RestrictCandidates).
  const std::vector<IndexId>& candidates() const { return candidates_; }
  double prepare_seconds() const { return prepare_seconds_; }

 private:
  Recommendation TuneInternal(const ConstraintSet& constraints,
                              bool warm_start);
  /// Solves one λ-scalarized instance (shared by both Pareto modes).
  ParetoPoint SolveScalarized(const ConstraintSet& constraints,
                              const SoftConstraint& soft, double lambda,
                              std::vector<uint8_t>* warm);
  std::vector<double> BaselineShellCosts(const ConstraintSet& constraints);
  /// Worker pool for the presolve scans, sized like the INUM stage
  /// (prepare.num_threads; nullptr = inline). Lazily created and reused
  /// across Tune/Retune/Pareto solves.
  ThreadPool* PresolvePool();

  WhatIfOptimizer* whatif_;
  IndexPool* pool_;
  Workload workload_;
  CoPhyOptions options_;
  PreparedWorkload prepared_;
  std::vector<IndexId> candidates_;
  double prepare_seconds_ = 0;
  std::vector<uint8_t> last_selection_;  // dense, for warm starts
  std::unique_ptr<ThreadPool> presolve_pool_;  // lazily created
};

}  // namespace cophy

#endif  // COPHY_CORE_COPHY_H_
