#include "core/session.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/stopwatch.h"
#include "index/candidates.h"

namespace cophy {

AdvisorSession::AdvisorSession(WhatIfOptimizer* whatif, IndexPool* pool,
                               SessionOptions options)
    : whatif_(whatif),
      pool_(pool),
      options_(std::move(options)),
      router_(options_.num_shards > 0
                  ? options_.num_shards
                  : ResolveThreadCount(options_.tuning.prepare.num_threads)) {
  COPHY_CHECK(whatif != nullptr);
  COPHY_CHECK(pool != nullptr);
  COPHY_CHECK_EQ(&whatif->pool(), pool);
  COPHY_CHECK(options_.tuning.prepare.compression.mode !=
              CompressionMode::kLossy);
  scheduler_ = HysteresisScheduler(options_.drift.materialize_after,
                                   options_.drift.drop_after);
  shards_.resize(router_.num_shards());
  // Every shard gets a (possibly empty) prepared view at the first
  // Refresh, so consumers of shard_prepared() never see an unprepared
  // workload — an empty session behaves like an empty PreparedWorkload.
  for (Shard& sh : shards_) sh.dirty = true;
  structure_dirty_ = true;
}

ThreadPool* AdvisorSession::Workers() {
  const int n = ResolveThreadCount(options_.tuning.prepare.num_threads);
  if (n <= 1) return nullptr;
  if (workers_ == nullptr || workers_->size() != n) {
    workers_ = std::make_unique<ThreadPool>(n);
  }
  return workers_.get();
}

std::vector<QueryId> AdvisorSession::AddStatements(
    const std::vector<Query>& stmts) {
  Stopwatch watch;
  std::vector<QueryId> ids;
  ids.reserve(stmts.size());
  for (const Query& in : stmts) {
    const QueryId sid = static_cast<QueryId>(statements_.size());
    StatementState st;
    st.q = in;
    st.q.id = sid;
    st.live = true;
    st.arrival_epoch = epoch_;
    const ShardRouter::Route route = router_.Insert(
        st.q, whatif_->catalog(),
        [this](int cls) -> const Query& { return classes_[cls].exemplar; });
    st.cls = route.cls;
    if (route.is_new) {
      COPHY_CHECK_EQ(route.cls, static_cast<int>(classes_.size()));
      ClassState c;
      c.exemplar = st.q;
      c.shard = route.shard;
      classes_.push_back(std::move(c));
      // Appended last: class ids ascend with arrival, so each shard's
      // class list stays in canonical (first-occurrence) order.
      shards_[route.shard].classes.push_back(route.cls);
      shards_[route.shard].dirty = true;
      structure_dirty_ = true;
    }
    classes_[st.cls].members.push_back(sid);
    statements_.push_back(std::move(st));
    ++live_statements_;
    ids.push_back(sid);
  }
  route_seconds_total_ += watch.Elapsed();
  return ids;
}

std::vector<QueryId> AdvisorSession::AddWorkload(const Workload& w) {
  return AddStatements(w.statements());
}

Status AdvisorSession::RemoveStatements(const std::vector<QueryId>& ids) {
  std::unordered_set<QueryId> seen;
  for (QueryId sid : ids) {
    if (sid < 0 || sid >= static_cast<QueryId>(statements_.size()) ||
        !statements_[sid].live || !seen.insert(sid).second) {
      return Status::InvalidArgument("unknown or already-removed statement");
    }
  }
  Stopwatch watch;
  for (QueryId sid : ids) {
    StatementState& st = statements_[sid];
    st.live = false;
    --live_statements_;
    ClassState& c = classes_[st.cls];
    c.members.erase(std::find(c.members.begin(), c.members.end(), sid));
    if (c.members.empty()) {
      // Last member gone: retire the class. A later equivalent arrival
      // opens a fresh class, exactly as a cold run over the surviving
      // stream would.
      // A stale bucket entry here would glue a future equivalent
      // arrival onto this dead class id; Erase reporting the entry
      // missing means the routing table already diverged.
      COPHY_CHECK(router_.Erase(c.exemplar, whatif_->catalog(), st.cls));
      Shard& sh = shards_[c.shard];
      sh.classes.erase(
          std::find(sh.classes.begin(), sh.classes.end(), st.cls));
      sh.dirty = true;
      structure_dirty_ = true;
    }
  }
  route_seconds_total_ += watch.Elapsed();
  return Status::Ok();
}

void AdvisorSession::SetDbaIndexes(std::vector<Index> dba_indexes) {
  dba_indexes_ = std::move(dba_indexes);
  structure_dirty_ = true;
}

Status AdvisorSession::SetExplicitCandidates(std::vector<IndexId> ids) {
  for (IndexId id : ids) {
    if (id < 0 || id >= pool_->size()) {
      return Status::InvalidArgument("candidate id outside the pool");
    }
  }
  explicit_candidates_ = std::move(ids);
  for (Shard& sh : shards_) sh.dirty = true;
  structure_dirty_ = true;
  return Status::Ok();
}

void AdvisorSession::AdvanceEpoch(int64_t ticks) {
  COPHY_CHECK_GE(ticks, 0);
  // Decay is lazy: moving the clock re-weights every live statement at
  // the next merge without dirtying a single shard.
  epoch_ += ticks;
}

Status AdvisorSession::Accept(IndexId id) {
  if (id < 0 || id >= pool_->size()) {
    return Status::InvalidArgument("feedback id outside the pool");
  }
  feedback_.Accept(id);
  scheduler_.ForceInclude(id);
  // An accepted id carries a z == 1 row, so it must be in the candidate
  // set; Refresh force-appends missing accepted ids (clean shards pick
  // up the γ entries incrementally).
  if (std::find(candidates_.begin(), candidates_.end(), id) ==
      candidates_.end()) {
    structure_dirty_ = true;
  }
  return Status::Ok();
}

Status AdvisorSession::Veto(IndexId id) {
  if (id < 0 || id >= pool_->size()) {
    return Status::InvalidArgument("feedback id outside the pool");
  }
  feedback_.Veto(id);
  scheduler_.ForceDrop(id);
  return Status::Ok();
}

Status AdvisorSession::ClearFeedback(IndexId id) {
  if (id < 0 || id >= pool_->size()) {
    return Status::InvalidArgument("feedback id outside the pool");
  }
  feedback_.Clear(id);
  return Status::Ok();
}

std::vector<int> AdvisorSession::LiveClasses() const {
  std::vector<int> live;
  live.reserve(classes_.size());
  for (int cls = 0; cls < static_cast<int>(classes_.size()); ++cls) {
    if (!classes_[cls].members.empty()) live.push_back(cls);
  }
  return live;
}

int AdvisorSession::num_classes() const {
  return static_cast<int>(LiveClasses().size());
}

double AdvisorSession::StatementLiveWeight(QueryId sid) const {
  const StatementState& st = statements_[sid];
  // The early return (not a multiply by DecayFactor() == 1.0) is what
  // guarantees the disabled path never touches the FPU: decay off is
  // byte-for-byte the pre-drift session.
  if (options_.drift.half_life_epochs <= 0) return st.q.weight;
  return st.q.weight * DecayFactor(epoch_ - st.arrival_epoch,
                                   options_.drift.half_life_epochs);
}

double AdvisorSession::ClassWeight(int cls) const {
  double w = 0;
  for (QueryId sid : classes_[cls].members) w += StatementLiveWeight(sid);
  return w;
}

CompressedWorkload AdvisorSession::BuildShardView(int shard) const {
  CompressedWorkload cw;
  cw.map.assign(statements_.size(), -1);
  cw.stats.lossless = true;
  for (int cls : shards_[shard].classes) {
    const ClassState& c = classes_[cls];
    Query rep = c.exemplar;
    rep.weight = ClassWeight(cls);
    const QueryId local = cw.workload.Add(std::move(rep));
    cw.representative_of.push_back(c.members.front());
    for (QueryId sid : c.members) {
      cw.map[sid] = local;
      cw.stats.input_weight += StatementLiveWeight(sid);
    }
    cw.stats.input_statements += static_cast<int>(c.members.size());
    cw.stats.output_weight += cw.workload[local].weight;
  }
  cw.stats.output_statements = cw.workload.size();
  return cw;
}

Status AdvisorSession::Refresh() {
  // Preparation-work counters always describe the *last* Refresh: a
  // pure re-weighting (no structural change) reports zero of both —
  // the observable half of the fast-path guarantee.
  drift_stats_.full_prepares = 0;
  drift_stats_.incremental_prepares = 0;
  if (!structure_dirty_) return Status::Ok();
  Stopwatch wall;
  // The catalog's lazy statistics cache must be warm before shards fan
  // out: workers may only read shared state.
  whatif_->catalog().WarmStatistics();

  // CGen over the merged representative view (one statement per live
  // class, canonical order). Cheap — it scales with classes, not
  // statements — and it is what dedups candidates across shards: the
  // pool collapses re-generated indexes onto their existing ids, so
  // surviving candidates keep their dense order across deltas.
  std::vector<IndexId> cands;
  Stopwatch cgen_watch;
  if (!explicit_candidates_.empty()) {
    cands = explicit_candidates_;
  } else {
    Workload reps;
    for (int cls : LiveClasses()) reps.Add(classes_[cls].exemplar);
    cands = GenerateCandidates(reps, whatif_->catalog(),
                               options_.tuning.prepare.candidates, *pool_,
                               dba_indexes_);
  }
  // DBA-accepted ids are pinned with z == 1 rows, which would surface
  // as infeasibility were the id outside the candidate set. Append any
  // CGen missed; shards absorb them like any newly discovered
  // candidate (incremental γ entries on clean shards).
  for (IndexId id : feedback_.accepted()) {
    if (std::find(cands.begin(), cands.end(), id) == cands.end()) {
      cands.push_back(id);
    }
  }
  cgen_seconds_total_ += cgen_watch.Elapsed();

  // Work items: full re-preparation for structure-dirty shards,
  // incremental γ entries for clean shards that are missing candidates
  // another shard's classes introduced.
  struct Task {
    int shard = 0;
    bool full = false;
    std::vector<IndexId> missing;
  };
  std::vector<Task> tasks;
  for (int s = 0; s < num_shards(); ++s) {
    Shard& sh = shards_[s];
    if (sh.dirty) {
      tasks.push_back({s, true, {}});
      continue;
    }
    if (!sh.prepared.prepared()) continue;  // never had a class
    const std::vector<IndexId>& have = sh.prepared.inum().candidates();
    std::unordered_set<IndexId> have_set(have.begin(), have.end());
    Task t{s, false, {}};
    for (IndexId id : cands) {
      if (have_set.find(id) == have_set.end()) t.missing.push_back(id);
    }
    if (!t.missing.empty()) tasks.push_back(std::move(t));
  }

  std::vector<Status> results(tasks.size());
  ThreadPool* workers = Workers();  // created on the session thread
  auto run_task = [&](int64_t i) {
    const Task& t = tasks[i];
    Shard& sh = shards_[t.shard];
    PrepareOptions popts = options_.tuning.prepare;
    popts.workers = workers;
    if (t.full) {
      results[i] = sh.prepared.PrepareCompressed(whatif_, pool_,
                                                 BuildShardView(t.shard),
                                                 popts, cands);
    } else {
      results[i] = sh.prepared.AddCandidates(t.missing);
    }
  };
  if (tasks.size() == 1) {
    // Run on the session thread, outside any parallel region, so the
    // single shard's own per-statement fan-out still parallelizes.
    run_task(0);
  } else if (!tasks.empty()) {
    ParallelFor(workers, static_cast<int64_t>(tasks.size()), run_task);
  }
  Status first_error;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].full) {
      ++drift_stats_.full_prepares;
    } else {
      ++drift_stats_.incremental_prepares;
    }
    Shard& sh = shards_[tasks[i].shard];
    if (results[i].ok()) {
      sh.dirty = false;
      sh.health = Status::Ok();
      sh.consecutive_failures = 0;
    } else {
      // Quarantine. The shard stays dirty — a failed incremental append
      // reverted its view to unprepared, so the retry is a full rebuild
      // — and Tune excludes its classes until a Refresh heals it.
      sh.dirty = true;
      sh.health = results[i];
      ++sh.consecutive_failures;
      if (first_error.ok()) first_error = results[i];
    }
  }
  // Healthy shards were prepared against the merged candidate set even
  // when a sibling failed; quarantined shards re-run CGen-fresh later.
  candidates_ = std::move(cands);
  bool any_quarantined = false;
  for (const Shard& sh : shards_) {
    if (sh.quarantined()) any_quarantined = true;
  }
  // Quarantined shards are retried at every Refresh until they heal.
  structure_dirty_ = any_quarantined;
  prepare_wall_seconds_ += wall.Elapsed();
  if (!any_quarantined) return Status::Ok();
  // Degraded mode: the session still serves recommendations while the
  // healthy shards cover part of the live workload. Only a fully
  // uncovered session surfaces the failure as its own.
  if (Coverage() > 0.0) return Status::Ok();
  return first_error;
}

double AdvisorSession::Coverage() const {
  double total = 0, healthy = 0;
  for (int cls = 0; cls < static_cast<int>(classes_.size()); ++cls) {
    if (classes_[cls].members.empty()) continue;
    const double w = ClassWeight(cls);
    total += w;
    if (!shards_[classes_[cls].shard].quarantined()) healthy += w;
  }
  return total > 0 ? healthy / total : 1.0;
}

std::vector<ShardHealth> AdvisorSession::ShardHealthReport() const {
  std::vector<ShardHealth> out(shards_.size());
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& sh = shards_[s];
    ShardHealth& h = out[s];
    h.shard = s;
    h.healthy = !sh.quarantined();
    h.classes = static_cast<int>(sh.classes.size());
    for (int cls : sh.classes) {
      h.statements += static_cast<int>(classes_[cls].members.size());
    }
    h.consecutive_failures = sh.consecutive_failures;
    h.status = sh.health;
  }
  return out;
}

PrepareStats AdvisorSession::prepare_stats() const {
  PrepareStats agg;
  bool first = true;
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& sh = shards_[s];
    if (!sh.prepared.prepared()) continue;
    PrepareStats stats = sh.prepared.stats();
    // Weight-only deltas never re-prepare a shard, so the prepare-time
    // counts go stale; report the live routing truth instead (the
    // timing fields keep their prepare-time meaning).
    CompressionStats& c = stats.compression;
    c.input_statements = 0;
    c.input_weight = 0;
    c.output_weight = 0;
    for (int cls : sh.classes) {
      c.input_statements += static_cast<int>(classes_[cls].members.size());
      const double w = ClassWeight(cls);
      c.input_weight += w;
      c.output_weight += w;
    }
    c.output_statements = static_cast<int>(sh.classes.size());
    stats.max_shard_statements = c.input_statements;
    if (first) {
      agg = stats;
      first = false;
    } else {
      agg += stats;
    }
  }
  agg.compression.seconds += route_seconds_total_;
  agg.cgen_seconds += cgen_seconds_total_;
  agg.drift_score = drift_stats_.score;
  agg.drift_new_classes = drift_stats_.new_classes;
  agg.drift_retired_classes = drift_stats_.retired_classes;
  return agg;
}

const PreparedWorkload& AdvisorSession::shard_prepared(int shard) const {
  COPHY_CHECK_GE(shard, 0);
  COPHY_CHECK_LT(shard, num_shards());
  return shards_[shard].prepared;
}

Recommendation AdvisorSession::Tune(const ConstraintSet& constraints) {
  return TuneInternal(constraints, /*warm=*/false);
}

Recommendation AdvisorSession::Retune(const ConstraintSet& constraints) {
  return TuneInternal(constraints, /*warm=*/true);
}

Recommendation AdvisorSession::TuneInternal(const ConstraintSet& constraints,
                                            bool warm) {
  Recommendation rec;
  Status s = Refresh();
  rec.shard_health = ShardHealthReport();
  rec.coverage = Coverage();
  if (!s.ok()) {
    rec.status = s;
    return rec;
  }
  if (live_statements_ == 0) {
    rec.status = Status::InvalidArgument("session has no statements");
    return rec;
  }
  // Drift reading for this retune: how far the normalized class-weight
  // distribution moved since the previous one (surfaced through
  // prepare_stats / RenderPrepareStats).
  {
    std::vector<std::pair<int, double>> class_weights;
    for (int cls : LiveClasses()) {
      class_weights.emplace_back(cls, ClassWeight(cls));
    }
    const DriftDetector::Reading reading = detector_.Observe(class_weights);
    drift_stats_.epoch = epoch_;
    drift_stats_.score = reading.score;
    drift_stats_.new_classes = reading.new_classes;
    drift_stats_.retired_classes = reading.retired_classes;
  }
  rec.num_candidates = static_cast<int>(candidates_.size());
  rec.prepare = prepare_stats();
  rec.degraded = rec.coverage < 1.0 || rec.prepare.whatif_degraded > 0;
  rec.timings.inum_seconds = prepare_wall_seconds_;
  prepare_wall_seconds_ = 0;  // consumed by this report

  Stopwatch build_watch;
  // Canonical block order across shards (class ids ascend with first
  // occurrence) and per-shard views with live weights re-aggregated.
  // Quarantined shards contribute no blocks: the merged problem covers
  // the healthy subset only, which is what `coverage` reports.
  std::vector<int> canonical;
  canonical.reserve(classes_.size());
  for (int cls : LiveClasses()) {
    if (!shards_[classes_[cls].shard].quarantined()) canonical.push_back(cls);
  }
  if (canonical.empty()) {
    rec.status = Status::Internal("every live class is quarantined");
    return rec;
  }
  std::vector<int> block_of(classes_.size(), -1);
  std::vector<int> local_of(classes_.size(), -1);
  for (int b = 0; b < static_cast<int>(canonical.size()); ++b) {
    block_of[canonical[b]] = b;
  }
  std::vector<ShardBlockView> views(shards_.size());
  for (int sh = 0; sh < num_shards(); ++sh) {
    ShardBlockView& v = views[sh];
    if (shards_[sh].classes.empty() || shards_[sh].quarantined()) continue;
    v.inum = &shards_[sh].prepared.inum();
    const std::vector<int>& cls_list = shards_[sh].classes;
    v.stmt.reserve(cls_list.size());
    for (int i = 0; i < static_cast<int>(cls_list.size()); ++i) {
      const int cls = cls_list[i];
      local_of[cls] = i;
      v.stmt.push_back(i);
      v.block.push_back(block_of[cls]);
      v.weight.push_back(ClassWeight(cls));
      v.cost_cap.push_back(lp::kInf);
    }
  }

  // DBA feedback folds into the solve as ordinary E.1 rows (z == 1 for
  // accepted ids, z == 0 for vetoed) — presolve, warm starts, and the
  // constraint-side digest (so the root LP re-runs when the ledger
  // changes) all see them like any caller constraint.
  const ConstraintSet* active = &constraints;
  ConstraintSet with_feedback;
  if (!feedback_.empty()) {
    with_feedback = constraints;
    feedback_.AppendConstraints(&with_feedback);
    active = &with_feedback;
  }

  // Per-query constraints: session id → class → block cap, folded by
  // min like the unsharded translation (constraints on removed
  // statements are dropped; duplicates constrain their whole block —
  // the documented intersection semantics). Constraints on quarantined
  // statements are dropped with their blocks.
  const Configuration empty;
  int64_t translated_rows = 0;
  for (const QueryCostConstraint& qc : active->query_cost_constraints()) {
    COPHY_CHECK_GE(qc.query, 0);
    COPHY_CHECK_LT(qc.query, static_cast<QueryId>(statements_.size()));
    const StatementState& st = statements_[qc.query];
    if (!st.live) continue;
    if (shards_[classes_[st.cls].shard].quarantined()) continue;
    ++translated_rows;
    const int shard = classes_[st.cls].shard;
    const int local = local_of[st.cls];
    const double baseline = views[shard].inum->ShellCost(local, empty);
    const double cap = qc.factor * baseline + qc.absolute;
    views[shard].cost_cap[local] =
        std::min(views[shard].cost_cap[local], cap);
  }

  lp::ChoiceProblem problem =
      BuildMergedChoiceProblem(views, candidates_, *active);
  rec.bip =
      ComputeMergedBipStats(views, candidates_, *active, translated_rows);
  rec.timings.build_seconds = build_watch.Elapsed();

  Stopwatch solve_watch;
  lp::ChoiceSolveOptions so;
  so.gap_target = options_.tuning.gap_target;
  so.time_limit_seconds = options_.tuning.time_limit_seconds;
  so.node_limit = options_.tuning.node_limit;
  so.lagrangian = options_.tuning.lagrangian;
  so.presolve = options_.tuning.presolve;
  so.root_lp = options_.tuning.root_lp;
  so.callback = options_.tuning.callback;
  so.resolve = &resolve_;
  const uint64_t constraint_digest = lp::ChoiceConstraintSideDigest(problem);
  if (!warm) {
    // Cold semantics: ignore any previous state (it is still refreshed
    // below, so a later Retune warm-starts from this solve).
    resolve_.valid = false;
  } else {
    // The incumbent repair survives candidate-set changes: pool ids are
    // stable, so the previous selection re-expresses over the current
    // dense order even when the resolve state's digest no longer
    // matches.
    if (!last_chosen_.empty()) {
      std::vector<uint8_t> start(candidates_.size(), 0);
      for (IndexId id : last_chosen_) {
        auto it = std::find(candidates_.begin(), candidates_.end(), id);
        if (it != candidates_.end()) start[it - candidates_.begin()] = 1;
      }
      so.warm_start = std::move(start);
    }
    so.structure_digest_hint = lp::ChoiceStructureDigest(problem);
    if (resolve_.valid &&
        resolve_.structure_digest == so.structure_digest_hint) {
      // Delta budget: the BIP kept its structure, so the solver only
      // has to account for the re-weighting (§4.2, Fig. 6(b)) and the
      // subgradient restarts from the previous duals (or the warm root
      // LP's) — a short polish suffices. When the root LP does run, the
      // retained exit basis in `resolve_` seeds it through the *dual*
      // simplex (the old optimum stays dual feasible under re-weighted
      // bounds), so the re-tune skips primal phase 1 entirely. A
      // structural change skips all of this and re-solves with the full
      // cold budget (the resolve state falls back automatically inside
      // SolveChoiceProblem).
      so.node_limit = std::max<int64_t>(500, options_.tuning.node_limit / 8);
      so.lagrangian_iterations = std::max(40, so.lagrangian_iterations / 8);
      if (std::isfinite(options_.tuning.time_limit_seconds)) {
        so.time_limit_seconds =
            std::max(1.0, options_.tuning.time_limit_seconds / 8);
      }
      // On a pure re-weighting — same constraint picture too (the
      // structure digest is deliberately blind to budgets, caps, and
      // right-hand sides) — the root LP, the dominant root cost, buys
      // almost nothing over the seeded duals: skip it. A budget or cap
      // change keeps the full PR-3 root machinery (fresh LP bound,
      // reduced-cost fixing) for bound quality.
      if (so.lagrangian && !resolve_.mu.empty() &&
          constraint_digest == last_constraint_digest_) {
        so.root_lp = false;
      }
    }
  }
  lp::ChoiceSolution sol =
      lp::SolveChoiceProblem(problem, so, &rec.presolve, Workers());
  rec.timings.solve_seconds = solve_watch.Elapsed();

  rec.status = sol.status;
  if (!sol.status.ok()) return rec;
  last_constraint_digest_ = constraint_digest;

  std::vector<IndexId> chosen;
  for (size_t i = 0; i < sol.selected.size(); ++i) {
    if (sol.selected[i]) chosen.push_back(candidates_[i]);
  }
  last_chosen_ = chosen;
  // One hysteresis tick per successful solve: the raw recommendation
  // feeds the streaks, the stabilized applied set rides along in the
  // report. With the default windows (1/1) applied == recommended.
  rec.materialization = scheduler_.Update(chosen);
  rec.configuration = Configuration(std::move(chosen));
  rec.objective = sol.objective;
  rec.lower_bound = sol.lower_bound;
  rec.gap = sol.gap;
  rec.nodes = sol.nodes;
  rec.bound_evaluations = sol.bound_evaluations;
  rec.root_lp_bound = sol.root_lp_bound;
  rec.root_lagrangian_bound = sol.root_lagrangian_bound;
  rec.variables_fixed = sol.variables_fixed;
  rec.root_lp_stats = sol.root_lp_stats;
  return rec;
}

}  // namespace cophy
