#include "core/bipgen.h"

#include <unordered_map>

#include "common/check.h"
#include "common/strings.h"

namespace cophy {

namespace {

/// Dense remap pool-id -> position in `candidates`.
std::unordered_map<IndexId, int> DenseMap(const std::vector<IndexId>& candidates) {
  std::unordered_map<IndexId, int> m;
  m.reserve(candidates.size());
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    m.emplace(candidates[i], i);
  }
  return m;
}

/// Groups statements by their INUM leader in first-occurrence order,
/// aggregating weights. When `caps` is given, each member's cost cap is
/// folded (min) into its leader's entry. Cap semantics for merged
/// duplicates are deliberately the *intersection*: a cap on any member
/// binds the whole block. That is conservative (every solution remains
/// feasible for the original per-statement constraints — never the
/// reverse) and matches what lossless compression produces when the
/// constraint is translated onto the shared representative, keeping the
/// compressed and uncompressed problems bit-identical. With uniform
/// generators like ForEachQueryAssertSpeedup, duplicate members carry
/// identical caps and the intersection is exact.
std::vector<std::pair<QueryId, double>> CanonicalQueryBlocks(
    const Inum& inum, const Workload& w, std::vector<double>* caps) {
  std::vector<std::pair<QueryId, double>> blocks;
  std::vector<int> block_of(w.size(), -1);
  for (const Query& q : w.statements()) {
    const QueryId lead = inum.leader(q.id);
    int b = block_of[lead];
    if (b < 0) {
      b = static_cast<int>(blocks.size());
      block_of[lead] = b;
      blocks.push_back({lead, 0.0});
    }
    blocks[b].second += q.weight;
    if (caps != nullptr && lead != q.id) {
      (*caps)[lead] = std::min((*caps)[lead], (*caps)[q.id]);
    }
  }
  return blocks;
}

/// One weighted query block of the structured BIP, straight from the
/// INUM caches. Shared by the unsharded build and the shard-merge path
/// so both materialize byte-identical blocks.
lp::ChoiceQuery BuildBlockChoice(const Inum& inum, QueryId lead, double weight,
                                 double cap,
                                 const std::unordered_map<IndexId, int>& dense) {
  const QueryCache& qc = inum.cache(lead);
  lp::ChoiceQuery cq;
  cq.weight = weight;
  cq.cost_cap = cap;
  cq.plans.reserve(qc.templates.size());
  for (const QueryCache::Template& t : qc.templates) {
    lp::ChoicePlan plan;
    plan.beta = t.beta;
    plan.slots.reserve(t.order_idx.size());
    bool plan_ok = true;
    for (size_t slot = 0; slot < t.order_idx.size(); ++slot) {
      const auto& list = qc.access[slot][t.order_idx[slot]];
      if (list.empty()) {
        plan_ok = false;  // no path can deliver this order
        break;
      }
      lp::ChoiceSlot cs;
      cs.options.reserve(list.size());
      for (const SlotAccess& sa : list) {
        lp::ChoiceOption o;
        if (sa.index == kInvalidIndex) {
          o.index = lp::kBaseOption;
        } else {
          auto it = dense.find(sa.index);
          if (it == dense.end()) continue;  // not in this candidate set
          o.index = it->second;
        }
        o.gamma = sa.gamma;
        cs.options.push_back(o);
      }
      if (cs.options.empty()) {
        plan_ok = false;
        break;
      }
      plan.slots.push_back(std::move(cs));
    }
    if (plan_ok) cq.plans.push_back(std::move(plan));
  }
  COPHY_CHECK(!cq.plans.empty());
  return cq;
}

/// Flattens the per-shard views into global block order: out[b] =
/// (view, position within the view) for block b. Every block must be
/// owned by exactly one shard.
std::vector<std::pair<const ShardBlockView*, int>> BlocksInOrder(
    const std::vector<ShardBlockView>& shards) {
  int64_t total = 0;
  for (const ShardBlockView& v : shards) {
    COPHY_CHECK_EQ(v.stmt.size(), v.block.size());
    COPHY_CHECK_EQ(v.stmt.size(), v.weight.size());
    COPHY_CHECK_EQ(v.stmt.size(), v.cost_cap.size());
    total += static_cast<int64_t>(v.stmt.size());
  }
  std::vector<std::pair<const ShardBlockView*, int>> by_block(
      total, {nullptr, -1});
  for (const ShardBlockView& v : shards) {
    for (int i = 0; i < static_cast<int>(v.stmt.size()); ++i) {
      const int b = v.block[i];
      COPHY_CHECK_GE(b, 0);
      COPHY_CHECK_LT(b, static_cast<int>(by_block.size()));
      COPHY_CHECK(by_block[b].first == nullptr);
      by_block[b] = {&v, i};
    }
  }
  return by_block;
}

}  // namespace

lp::ChoiceProblem BuildChoiceProblem(
    const Inum& inum, const std::vector<IndexId>& candidates,
    const ConstraintSet& constraints,
    const std::vector<double>& baseline_shell_cost) {
  const Catalog& cat = inum.whatif().catalog();
  const IndexPool& pool = inum.whatif().pool();
  const Workload& w = inum.workload();
  const auto dense = DenseMap(candidates);

  lp::ChoiceProblem p;
  p.num_indexes = static_cast<int>(candidates.size());
  p.fixed_cost.assign(p.num_indexes, 0.0);
  p.size.resize(p.num_indexes);
  for (int i = 0; i < p.num_indexes; ++i) {
    p.size[i] = IndexSizeBytes(pool[candidates[i]], cat);
  }

  // Query-cost caps (resolved against the baseline costs).
  std::vector<double> caps(w.size(), lp::kInf);
  for (const QueryCostConstraint& qc : constraints.query_cost_constraints()) {
    COPHY_CHECK_GE(qc.query, 0);
    COPHY_CHECK_LT(qc.query, w.size());
    COPHY_CHECK(!baseline_shell_cost.empty());
    const double cap =
        qc.factor * baseline_shell_cost[qc.query] + qc.absolute;
    caps[qc.query] = std::min(caps[qc.query], cap);
  }

  // Canonical query blocks: statements sharing an INUM leader have
  // bit-identical caches, so they collapse into one block with
  // aggregated weight and intersected cost cap. A workload compressed
  // losslessly up front and an uncompressed one therefore materialize
  // the *same* ChoiceProblem bit for bit — which is what makes the
  // compression equivalence guarantee exact — and the solver's per-node
  // bound work scales with distinct statements either way.
  const std::vector<std::pair<QueryId, double>> blocks =
      CanonicalQueryBlocks(inum, w, &caps);

  // Update blocks: index-maintenance penalties f_q·ucost(a, q) and the
  // configuration-independent base maintenance constant.
  for (const auto& [lead, weight] : blocks) {
    if (!w[lead].IsUpdate()) continue;
    p.constant_cost += weight * inum.BaseUpdateCost(lead);
    for (int i = 0; i < p.num_indexes; ++i) {
      p.fixed_cost[i] += weight * inum.UpdateCost(candidates[i], lead);
    }
  }

  // Per-block choice structure straight from the INUM caches.
  p.queries.reserve(blocks.size());
  for (const auto& [lead, weight] : blocks) {
    p.queries.push_back(BuildBlockChoice(inum, lead, weight, caps[lead], dense));
  }

  if (constraints.storage_budget()) {
    p.storage_budget = *constraints.storage_budget();
  }
  p.z_rows = TranslateIndexConstraints(constraints, candidates, pool, cat);
  return p;
}

lp::ChoiceProblem BuildMergedChoiceProblem(
    const std::vector<ShardBlockView>& shards,
    const std::vector<IndexId>& candidates, const ConstraintSet& constraints) {
  const auto by_block = BlocksInOrder(shards);
  COPHY_CHECK(!by_block.empty());
  const Catalog& cat = by_block[0].first->inum->whatif().catalog();
  const IndexPool& pool = by_block[0].first->inum->whatif().pool();
  const auto dense = DenseMap(candidates);

  lp::ChoiceProblem p;
  p.num_indexes = static_cast<int>(candidates.size());
  p.fixed_cost.assign(p.num_indexes, 0.0);
  p.size.resize(p.num_indexes);
  for (int i = 0; i < p.num_indexes; ++i) {
    p.size[i] = IndexSizeBytes(pool[candidates[i]], cat);
  }

  // Update blocks first, accumulated in global block order so the
  // floating-point sums match the unsharded build bit for bit.
  for (const auto& [view, i] : by_block) {
    const Inum& inum = *view->inum;
    const QueryId lead = view->stmt[i];
    if (!inum.workload()[lead].IsUpdate()) continue;
    const double weight = view->weight[i];
    p.constant_cost += weight * inum.BaseUpdateCost(lead);
    for (int a = 0; a < p.num_indexes; ++a) {
      p.fixed_cost[a] += weight * inum.UpdateCost(candidates[a], lead);
    }
  }

  p.queries.reserve(by_block.size());
  for (const auto& [view, i] : by_block) {
    p.queries.push_back(BuildBlockChoice(*view->inum, view->stmt[i],
                                         view->weight[i], view->cost_cap[i],
                                         dense));
  }

  if (constraints.storage_budget()) {
    p.storage_budget = *constraints.storage_budget();
  }
  p.z_rows = TranslateIndexConstraints(constraints, candidates, pool, cat);
  return p;
}

BipStats ComputeMergedBipStats(const std::vector<ShardBlockView>& shards,
                               const std::vector<IndexId>& candidates,
                               const ConstraintSet& constraints,
                               int64_t translated_query_constraint_rows) {
  BipStats s;
  s.z_variables = static_cast<int64_t>(candidates.size());
  // Shard caches may hold stale γ entries for candidates a removal
  // retired from the merged set; count only what the built BIP keeps.
  const auto dense = DenseMap(candidates);
  for (const ShardBlockView& v : shards) {
    for (size_t i = 0; i < v.stmt.size(); ++i) {
      const QueryCache& qc = v.inum->cache(v.stmt[i]);
      s.y_variables += static_cast<int64_t>(qc.templates.size());
      ++s.assignment_rows;  // Σ y = 1
      for (const QueryCache::Template& t : qc.templates) {
        for (size_t slot = 0; slot < t.order_idx.size(); ++slot) {
          const auto& list = qc.access[slot][t.order_idx[slot]];
          ++s.assignment_rows;  // Σ x = y
          for (const SlotAccess& sa : list) {
            if (sa.index == kInvalidIndex) {
              ++s.x_variables;
            } else if (dense.find(sa.index) != dense.end()) {
              ++s.x_variables;
              ++s.linking_rows;
            }
          }
        }
      }
    }
  }
  s.constraint_rows =
      static_cast<int64_t>(constraints.index_constraints().size()) +
      translated_query_constraint_rows +
      (constraints.storage_budget() ? 1 : 0);
  return s;
}

lp::Model BuildModel(const Inum& inum, const std::vector<IndexId>& candidates,
                     const ConstraintSet& constraints,
                     const std::vector<double>& baseline_shell_cost) {
  const Catalog& cat = inum.whatif().catalog();
  const IndexPool& pool = inum.whatif().pool();
  const Workload& w = inum.workload();
  const auto dense = DenseMap(candidates);

  lp::Model m;

  // z_a variables, with the update-maintenance objective term.
  std::vector<lp::VarId> z(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    double ucost_term = 0;
    for (QueryId uid : w.UpdateIds()) {
      ucost_term += w[uid].weight * inum.UpdateCost(candidates[i], uid);
    }
    z[i] = m.AddBinary(ucost_term, StrFormat("z_%d", candidates[i]));
  }
  for (QueryId uid : w.UpdateIds()) {
    m.AddObjectiveConstant(w[uid].weight * inum.BaseUpdateCost(uid));
  }

  // Per statement: y_qk, x_qkia, assignment and linking rows, and the
  // optional cost-cap row. Two-term link rows are streamed straight
  // into the model's CSR arrays; rows whose terms interleave with
  // variable creation (pick-one, fill, cap) accumulate in reusable
  // scratch vectors and are emitted sparse in one call.
  std::vector<std::pair<lp::VarId, double>> pick_one, cap_terms, fill;
  for (const Query& q : w.statements()) {
    const QueryCache& qc = inum.cache(q.id);
    pick_one.clear();
    cap_terms.clear();

    double cap = lp::kInf;
    for (const QueryCostConstraint& qcc : constraints.query_cost_constraints()) {
      if (qcc.query == q.id) {
        COPHY_CHECK(!baseline_shell_cost.empty());
        cap = std::min(cap,
                       qcc.factor * baseline_shell_cost[q.id] + qcc.absolute);
      }
    }

    for (size_t k = 0; k < qc.templates.size(); ++k) {
      const QueryCache::Template& t = qc.templates[k];
      const lp::VarId yk = m.AddBinary(q.weight * t.beta,
                                       StrFormat("y[%d,%zu]", q.id, k));
      pick_one.push_back({yk, 1.0});
      if (cap < lp::kInf) cap_terms.push_back({yk, t.beta});
      for (size_t slot = 0; slot < t.order_idx.size(); ++slot) {
        const auto& list = qc.access[slot][t.order_idx[slot]];
        fill.clear();  // Σ_a x_qkia = y_qk
        fill.push_back({yk, -1.0});
        for (const SlotAccess& sa : list) {
          int dense_id = -1;
          if (sa.index != kInvalidIndex) {
            auto it = dense.find(sa.index);
            if (it == dense.end()) continue;
            dense_id = it->second;
          }
          const lp::VarId x =
              m.AddBinary(q.weight * sa.gamma,
                          StrFormat("x[%d,%zu,%zu,%d]", q.id, k, slot, sa.index));
          fill.push_back({x, 1.0});
          if (cap < lp::kInf) cap_terms.push_back({x, sa.gamma});
          if (dense_id >= 0) {
            m.BeginRow(lp::Sense::kGe, 0.0,
                       StrFormat("link[%d,%d]", q.id, sa.index));  // z_a >= x
            m.AddTerm(z[dense_id], 1.0);
            m.AddTerm(x, -1.0);
            m.EndRow();
          }
        }
        m.AddRow(fill, lp::Sense::kEq, 0.0,
                 StrFormat("fill[%d,%zu,%zu]", q.id, k, slot));
      }
    }
    m.AddRow(pick_one, lp::Sense::kEq, 1.0, StrFormat("y[%d]", q.id));
    if (cap < lp::kInf) {
      m.AddRow(cap_terms, lp::Sense::kLe, cap, StrFormat("cap[%d]", q.id));
    }
  }

  // Storage budget and other index constraints.
  if (constraints.storage_budget()) {
    m.BeginRow(lp::Sense::kLe, *constraints.storage_budget(), "storage");
    for (size_t i = 0; i < candidates.size(); ++i) {
      m.AddTerm(z[i], IndexSizeBytes(pool[candidates[i]], cat));
    }
    m.EndRow();
  }
  for (const lp::ZRow& zr :
       TranslateIndexConstraints(constraints, candidates, pool, cat)) {
    m.BeginRow(zr.sense, zr.rhs, zr.name);
    for (const auto& [dense_id, coef] : zr.terms) {
      m.AddTerm(z[dense_id], coef);
    }
    m.EndRow();
  }
  return m;
}

BipStats ComputeBipStats(const Inum& inum,
                         const std::vector<IndexId>& candidates,
                         const ConstraintSet& constraints) {
  BipStats s;
  s.z_variables = static_cast<int64_t>(candidates.size());
  const Workload& w = inum.workload();
  // Mirror BuildChoiceProblem's canonical blocks.
  for (const auto& [lead, weight] : CanonicalQueryBlocks(inum, w, nullptr)) {
    (void)weight;
    const QueryCache& qc = inum.cache(lead);
    s.y_variables += static_cast<int64_t>(qc.templates.size());
    ++s.assignment_rows;  // Σ y = 1
    for (const QueryCache::Template& t : qc.templates) {
      for (size_t slot = 0; slot < t.order_idx.size(); ++slot) {
        const auto& list = qc.access[slot][t.order_idx[slot]];
        ++s.assignment_rows;  // Σ x = y
        s.x_variables += static_cast<int64_t>(list.size());
        for (const SlotAccess& sa : list) {
          if (sa.index != kInvalidIndex) ++s.linking_rows;
        }
      }
    }
  }
  s.constraint_rows =
      static_cast<int64_t>(constraints.index_constraints().size()) +
      static_cast<int64_t>(constraints.query_cost_constraints().size()) +
      (constraints.storage_budget() ? 1 : 0);
  return s;
}

}  // namespace cophy
