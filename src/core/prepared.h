// The explicit preparation stage of the advisor pipeline:
//
//   Workload ── Compress ──> representatives ── CGen ──> candidates
//            ── INUM (parallel, template-sharing) ──> QueryCaches
//
// Every consumer of "a prepared workload" — CoPhy's Tune/Retune, BIPGen,
// and the baseline advisors — goes through this one path instead of
// wiring compression/CGen/INUM privately (see docs/architecture.md).
#ifndef COPHY_CORE_PREPARED_H_
#define COPHY_CORE_PREPARED_H_

#include <memory>
#include <vector>

#include "common/check.h"
#include "constraints/constraints.h"
#include "index/candidates.h"
#include "inum/inum.h"
#include "workload/compressor.h"

namespace cophy {

/// Knobs of the preparation stage.
struct PrepareOptions {
  CandidateOptions candidates;
  /// Workload compression; kLossless by default (provably equivalent
  /// recommendations, see compressor.h), kNone to disable, kLossy for
  /// paper-style sampling on heterogeneous workloads.
  CompressionOptions compression;
  /// INUM preparation threads (<= 0: hardware count).
  int num_threads = 1;
  /// Share template discovery across cost-equivalent statements that
  /// survive compression (only relevant with compression off or lossy).
  bool share_templates = true;
};

/// What preparation did — threaded into Recommendation and reports.
/// Compression time lives in compression.seconds (single source).
struct PrepareStats {
  CompressionStats compression;
  int num_threads = 1;          ///< threads INUM actually used
  int shared_statements = 0;    ///< INUM caches cloned from a leader
  double cgen_seconds = 0;
  double inum_seconds = 0;
  double Total() const {
    return compression.seconds + cgen_seconds + inum_seconds;
  }
};

/// A workload that has been compressed, candidate-generated, and
/// INUM-prepared. Reusable across Tune/Retune calls and advisors.
class PreparedWorkload {
 public:
  PreparedWorkload() = default;

  /// Runs the full stage: compress `w`, CGen over the representatives
  /// (plus S_DBA), build INUM caches. `pool` must be the pool `sim`
  /// reads.
  Status Prepare(SystemSimulator* sim, IndexPool* pool, const Workload& w,
                 const PrepareOptions& opts,
                 const std::vector<Index>& dba_indexes = {});

  /// Same, but with an explicit candidate set instead of CGen (the ids
  /// must already be in the pool).
  Status PrepareWithCandidates(SystemSimulator* sim, IndexPool* pool,
                               const Workload& w, const PrepareOptions& opts,
                               std::vector<IndexId> candidate_ids);

  /// Incremental candidate addition: only the new γ entries are
  /// computed (in parallel); β templates are reused.
  Status AddCandidates(const std::vector<IndexId>& new_ids);

  bool prepared() const { return inum_ != nullptr; }
  /// The compressed view tuning actually runs on. Requires prepared().
  const Workload& tuned() const {
    COPHY_CHECK(prepared());
    return inum_->workload();
  }
  Inum& inum() {
    COPHY_CHECK(prepared());
    return *inum_;
  }
  const Inum& inum() const {
    COPHY_CHECK(prepared());
    return *inum_;
  }
  const std::vector<IndexId>& candidates() const { return candidates_; }
  const PrepareStats& stats() const { return stats_; }

  /// Maps an original statement id into the compressed space (-1 if the
  /// statement was dropped by lossy sampling).
  QueryId CompressedId(QueryId original) const;

  /// Rewrites per-query constraints into the compressed statement
  /// space. Constraints on statements dropped by lossy sampling are
  /// discarded (documented lossy-mode caveat); everything else is
  /// preserved verbatim.
  ConstraintSet TranslateConstraints(const ConstraintSet& cs) const;

 private:
  Status Begin(SystemSimulator* sim, IndexPool* pool, const Workload& w,
               const PrepareOptions& opts);
  void RunInum();

  SystemSimulator* sim_ = nullptr;
  IndexPool* pool_ = nullptr;
  PrepareOptions options_;
  CompressedWorkload compressed_;
  std::unique_ptr<Inum> inum_;
  std::vector<IndexId> candidates_;
  PrepareStats stats_;
};

}  // namespace cophy

#endif  // COPHY_CORE_PREPARED_H_
