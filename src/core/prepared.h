// The explicit preparation stage of the advisor pipeline:
//
//   Workload ── Compress ──> representatives ── CGen ──> candidates
//            ── INUM (parallel, template-sharing) ──> QueryCaches
//
// Every consumer of "a prepared workload" — CoPhy's Tune/Retune, BIPGen,
// and the baseline advisors — goes through this one path instead of
// wiring compression/CGen/INUM privately (see docs/architecture.md).
#ifndef COPHY_CORE_PREPARED_H_
#define COPHY_CORE_PREPARED_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "constraints/constraints.h"
#include "index/candidates.h"
#include "inum/inum.h"
#include "workload/compressor.h"

namespace cophy {

/// Knobs of the preparation stage.
struct PrepareOptions {
  CandidateOptions candidates;
  /// Workload compression; kLossless by default (provably equivalent
  /// recommendations, see compressor.h), kNone to disable, kLossy for
  /// paper-style sampling on heterogeneous workloads.
  CompressionOptions compression;
  /// INUM preparation threads (<= 0: hardware count).
  int num_threads = 1;
  /// Share template discovery across cost-equivalent statements that
  /// survive compression (only relevant with compression off or lossy).
  bool share_templates = true;
  /// External INUM worker pool (not owned; overrides num_threads).
  /// Sharded sessions hand every shard the same pool so per-shard
  /// preparation composes with the outer shard fan-out.
  ThreadPool* workers = nullptr;
};

/// What preparation did — threaded into Recommendation and reports.
/// Compression time lives in compression.seconds (single source).
/// Per-shard stats aggregate with operator+= (a merged view reports the
/// shard count and the statement-count skew of the routing).
struct PrepareStats {
  CompressionStats compression;
  int num_threads = 1;          ///< threads INUM actually used
  int shared_statements = 0;    ///< INUM caches cloned from a leader
  double cgen_seconds = 0;
  double inum_seconds = 0;
  int shards = 1;               ///< shard views merged into this one
  int max_shard_statements = 0; ///< largest shard's input statements
  double Total() const {
    return compression.seconds + cgen_seconds + inum_seconds;
  }
  /// Routing skew: the largest shard's statement count over the mean
  /// (1.0 = perfectly balanced).
  double ShardSkew() const {
    if (shards <= 0 || compression.input_statements <= 0) return 1.0;
    const double mean =
        static_cast<double>(compression.input_statements) / shards;
    return mean > 0 ? max_shard_statements / mean : 1.0;
  }
  PrepareStats& operator+=(const PrepareStats& o) {
    compression += o.compression;
    num_threads = std::max(num_threads, o.num_threads);
    shared_statements += o.shared_statements;
    cgen_seconds += o.cgen_seconds;
    inum_seconds += o.inum_seconds;
    shards += o.shards;
    max_shard_statements = std::max(max_shard_statements,
                                    o.max_shard_statements);
    return *this;
  }
};

/// A workload that has been compressed, candidate-generated, and
/// INUM-prepared. Reusable across Tune/Retune calls and advisors.
class PreparedWorkload {
 public:
  PreparedWorkload() = default;

  /// Runs the full stage: compress `w`, CGen over the representatives
  /// (plus S_DBA), build INUM caches. `pool` must be the pool `sim`
  /// reads.
  Status Prepare(SystemSimulator* sim, IndexPool* pool, const Workload& w,
                 const PrepareOptions& opts,
                 const std::vector<Index>& dba_indexes = {});

  /// Same, but with an explicit candidate set instead of CGen (the ids
  /// must already be in the pool).
  Status PrepareWithCandidates(SystemSimulator* sim, IndexPool* pool,
                               const Workload& w, const PrepareOptions& opts,
                               std::vector<IndexId> candidate_ids);

  /// The sharded-session entry point: takes an externally compressed
  /// view (the session's router already merged cost-equivalent
  /// statements, and CGen ran over the merged representative view) and
  /// an explicit candidate set, and runs INUM only. An empty view is
  /// allowed (a shard whose last class was removed) and yields a
  /// prepared() workload with zero statements.
  Status PrepareCompressed(SystemSimulator* sim, IndexPool* pool,
                           CompressedWorkload cw, const PrepareOptions& opts,
                           std::vector<IndexId> candidate_ids);

  /// Incremental candidate addition: only the new γ entries are
  /// computed (in parallel); β templates are reused.
  Status AddCandidates(const std::vector<IndexId>& new_ids);

  bool prepared() const { return inum_ != nullptr; }
  /// The compressed view tuning actually runs on. Requires prepared().
  const Workload& tuned() const {
    COPHY_CHECK(prepared());
    return inum_->workload();
  }
  Inum& inum() {
    COPHY_CHECK(prepared());
    return *inum_;
  }
  const Inum& inum() const {
    COPHY_CHECK(prepared());
    return *inum_;
  }
  const std::vector<IndexId>& candidates() const { return candidates_; }
  const PrepareStats& stats() const { return stats_; }

  /// Maps an original statement id into the compressed space (-1 if the
  /// statement was dropped by lossy sampling).
  QueryId CompressedId(QueryId original) const;

  /// Rewrites per-query constraints into the compressed statement
  /// space. Constraints on statements dropped by lossy sampling are
  /// discarded (documented lossy-mode caveat); everything else is
  /// preserved verbatim.
  ConstraintSet TranslateConstraints(const ConstraintSet& cs) const;

 private:
  Status Begin(SystemSimulator* sim, IndexPool* pool, const Workload& w,
               const PrepareOptions& opts);
  void RunInum();

  SystemSimulator* sim_ = nullptr;
  IndexPool* pool_ = nullptr;
  PrepareOptions options_;
  CompressedWorkload compressed_;
  std::unique_ptr<Inum> inum_;
  std::vector<IndexId> candidates_;
  PrepareStats stats_;
};

}  // namespace cophy

#endif  // COPHY_CORE_PREPARED_H_
