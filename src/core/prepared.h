// The explicit preparation stage of the advisor pipeline:
//
//   Workload ── Compress ──> representatives ── CGen ──> candidates
//            ── INUM (parallel, template-sharing) ──> QueryCaches
//
// Every consumer of "a prepared workload" — CoPhy's Tune/Retune, BIPGen,
// and the baseline advisors — goes through this one path instead of
// wiring compression/CGen/INUM privately (see docs/architecture.md).
#ifndef COPHY_CORE_PREPARED_H_
#define COPHY_CORE_PREPARED_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/check.h"
#include "constraints/constraints.h"
#include "index/candidates.h"
#include "inum/inum.h"
#include "workload/compressor.h"

namespace cophy {

/// Knobs of the preparation stage.
struct PrepareOptions {
  CandidateOptions candidates;
  /// Workload compression; kLossless by default (provably equivalent
  /// recommendations, see compressor.h), kNone to disable, kLossy for
  /// paper-style sampling on heterogeneous workloads.
  CompressionOptions compression;
  /// INUM preparation threads (<= 0: hardware count).
  int num_threads = 1;
  /// Share template discovery across cost-equivalent statements that
  /// survive compression (only relevant with compression off or lossy).
  bool share_templates = true;
  /// External INUM worker pool (not owned; overrides num_threads).
  /// Sharded sessions hand every shard the same pool so per-shard
  /// preparation composes with the outer shard fan-out.
  ThreadPool* workers = nullptr;
  /// Wall-clock budget for the INUM preparation run; exceeding it
  /// surfaces as kTimeout so a hung what-if backend cannot stall
  /// Prepare forever.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// Cross-session INUM plan cache (not owned). The service tier hands
  /// every tenant session the same cache so cost-equivalent statements
  /// across tenants share template plans and γ tables; nullptr keeps
  /// preparation self-contained. See inum/shared_cache.h.
  InumPlanCache* plan_cache = nullptr;
};

/// What preparation did — threaded into Recommendation and reports.
/// Compression time lives in compression.seconds (single source).
/// Per-shard stats aggregate with operator+= (a merged view reports the
/// shard count and the statement-count skew of the routing).
struct PrepareStats {
  CompressionStats compression;
  int num_threads = 1;          ///< threads INUM actually used
  int shared_statements = 0;    ///< INUM caches cloned from a leader
  double cgen_seconds = 0;
  double inum_seconds = 0;
  int shards = 1;               ///< shard views merged into this one
  int max_shard_statements = 0; ///< largest shard's input statements
  /// What-if boundary fault accounting for this view's INUM runs
  /// (deltas of the backend's WhatIfHealth; all zero with a healthy
  /// backend or a plain SystemSimulator).
  int64_t whatif_retries = 0;     ///< backend attempts beyond the first
  int64_t whatif_failures = 0;    ///< calls that ultimately failed
  int64_t whatif_degraded = 0;    ///< answers served from last-known cache
  int64_t whatif_fast_fails = 0;  ///< calls rejected by an open breaker
  int breaker_trips = 0;          ///< circuit-breaker open transitions
  /// Cross-session plan-cache traffic of this view's INUM runs (all
  /// zero when no shared cache is installed). Hits are template
  /// enumerations / γ table builds this view skipped because another
  /// session (or an earlier run) already published them.
  int64_t plan_cache_template_hits = 0;
  int64_t plan_cache_template_misses = 0;
  int64_t plan_cache_gamma_hits = 0;
  int64_t plan_cache_gamma_misses = 0;
  /// Workload-drift picture of the session that produced this view
  /// (all zero for one-shot advisors; see core/drift.h). The score is
  /// the total-variation distance of the class-weight distribution
  /// between the previous retune and this one.
  double drift_score = 0;
  int drift_new_classes = 0;
  int drift_retired_classes = 0;
  double Total() const {
    return compression.seconds + cgen_seconds + inum_seconds;
  }
  /// Routing skew: the largest shard's statement count over the mean
  /// (1.0 = perfectly balanced).
  double ShardSkew() const {
    if (shards <= 0 || compression.input_statements <= 0) return 1.0;
    const double mean =
        static_cast<double>(compression.input_statements) / shards;
    return mean > 0 ? max_shard_statements / mean : 1.0;
  }
  PrepareStats& operator+=(const PrepareStats& o) {
    compression += o.compression;
    num_threads = std::max(num_threads, o.num_threads);
    shared_statements += o.shared_statements;
    cgen_seconds += o.cgen_seconds;
    inum_seconds += o.inum_seconds;
    shards += o.shards;
    max_shard_statements = std::max(max_shard_statements,
                                    o.max_shard_statements);
    whatif_retries += o.whatif_retries;
    whatif_failures += o.whatif_failures;
    whatif_degraded += o.whatif_degraded;
    whatif_fast_fails += o.whatif_fast_fails;
    breaker_trips += o.breaker_trips;
    plan_cache_template_hits += o.plan_cache_template_hits;
    plan_cache_template_misses += o.plan_cache_template_misses;
    plan_cache_gamma_hits += o.plan_cache_gamma_hits;
    plan_cache_gamma_misses += o.plan_cache_gamma_misses;
    drift_score = std::max(drift_score, o.drift_score);
    drift_new_classes += o.drift_new_classes;
    drift_retired_classes += o.drift_retired_classes;
    return *this;
  }
};

/// A workload that has been compressed, candidate-generated, and
/// INUM-prepared. Reusable across Tune/Retune calls and advisors.
class PreparedWorkload {
 public:
  PreparedWorkload() = default;

  /// Runs the full stage: compress `w`, CGen over the representatives
  /// (plus S_DBA), build INUM caches. `pool` must be the pool `whatif`
  /// reads. What-if backend errors (and deadline expiry) surface as the
  /// returned Status; on failure the workload reverts to unprepared.
  Status Prepare(WhatIfOptimizer* whatif, IndexPool* pool, const Workload& w,
                 const PrepareOptions& opts,
                 const std::vector<Index>& dba_indexes = {});

  /// Same, but with an explicit candidate set instead of CGen (the ids
  /// must already be in the pool).
  Status PrepareWithCandidates(WhatIfOptimizer* whatif, IndexPool* pool,
                               const Workload& w, const PrepareOptions& opts,
                               std::vector<IndexId> candidate_ids);

  /// The sharded-session entry point: takes an externally compressed
  /// view (the session's router already merged cost-equivalent
  /// statements, and CGen ran over the merged representative view) and
  /// an explicit candidate set, and runs INUM only. An empty view is
  /// allowed (a shard whose last class was removed) and yields a
  /// prepared() workload with zero statements.
  Status PrepareCompressed(WhatIfOptimizer* whatif, IndexPool* pool,
                           CompressedWorkload cw, const PrepareOptions& opts,
                           std::vector<IndexId> candidate_ids);

  /// Incremental candidate addition: only the new γ entries are
  /// computed (in parallel); β templates are reused. On a backend error
  /// the INUM caches are inconsistent, so the workload reverts to
  /// unprepared and the caller must re-Prepare from scratch.
  Status AddCandidates(const std::vector<IndexId>& new_ids);

  bool prepared() const { return inum_ != nullptr; }
  /// The compressed view tuning actually runs on. Requires prepared().
  const Workload& tuned() const {
    COPHY_CHECK(prepared());
    return inum_->workload();
  }
  Inum& inum() {
    COPHY_CHECK(prepared());
    return *inum_;
  }
  const Inum& inum() const {
    COPHY_CHECK(prepared());
    return *inum_;
  }
  const std::vector<IndexId>& candidates() const { return candidates_; }
  const PrepareStats& stats() const { return stats_; }

  /// Maps an original statement id into the compressed space (-1 if the
  /// statement was dropped by lossy sampling).
  QueryId CompressedId(QueryId original) const;

  /// Rewrites per-query constraints into the compressed statement
  /// space. Constraints on statements dropped by lossy sampling are
  /// discarded (documented lossy-mode caveat); everything else is
  /// preserved verbatim.
  ConstraintSet TranslateConstraints(const ConstraintSet& cs) const;

 private:
  Status Begin(WhatIfOptimizer* whatif, IndexPool* pool, const Workload& w,
               const PrepareOptions& opts);
  Status RunInum();
  /// Copies the Inum instance's cumulative shared-cache counters into
  /// stats_ (no-op totals of zero without a cache).
  void CopyPlanCacheCounters();
  /// Folds the backend's WhatIfHealth movement since `before` into
  /// stats_ (retries/failures/degraded/breaker).
  void AccumulateHealthDelta(const WhatIfHealth& before);

  WhatIfOptimizer* whatif_ = nullptr;
  IndexPool* pool_ = nullptr;
  PrepareOptions options_;
  CompressedWorkload compressed_;
  std::unique_ptr<Inum> inum_;
  std::vector<IndexId> candidates_;
  PrepareStats stats_;
};

}  // namespace cophy

#endif  // COPHY_CORE_PREPARED_H_
