#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/strings.h"

namespace cophy {

TuningReport AnalyzeRecommendation(const Inum& inum,
                                   const Recommendation& rec) {
  TuningReport report;
  const Workload& w = inum.workload();
  const Configuration& x = rec.configuration;
  const Configuration empty;
  const IndexPool& pool = inum.whatif().pool();
  const Catalog& cat = inum.whatif().catalog();

  std::unordered_map<IndexId, IndexImpact> index_impacts;
  for (IndexId id : x.ids()) {
    IndexImpact impact;
    impact.index = id;
    impact.size_bytes = IndexSizeBytes(pool[id], cat);
    report.storage_bytes += impact.size_bytes;
    for (QueryId uid : w.UpdateIds()) {
      impact.update_penalty += w[uid].weight * inum.UpdateCost(id, uid);
    }
    index_impacts.emplace(id, impact);
  }

  for (const Query& q : w.statements()) {
    StatementImpact si;
    si.query = q.id;
    si.weight = q.weight;
    si.cost_before = inum.Cost(q.id, empty);
    si.cost_after = inum.Cost(q.id, x);
    si.indexes_used = inum.ChosenIndexes(q.id, x);
    report.total_before += q.weight * si.cost_before;
    report.total_after += q.weight * si.cost_after;

    // Attribute the statement's gain evenly across the indexes its
    // plan uses (a simple, explainable split).
    const double gain = q.weight * (si.cost_before - si.cost_after);
    if (!si.indexes_used.empty()) {
      const double share = gain / static_cast<double>(si.indexes_used.size());
      for (IndexId id : si.indexes_used) {
        auto it = index_impacts.find(id);
        if (it != index_impacts.end()) {
          ++it->second.statements_served;
          it->second.weighted_benefit += share;
        }
      }
    }
    report.statements.push_back(std::move(si));
  }

  std::sort(report.statements.begin(), report.statements.end(),
            [](const StatementImpact& a, const StatementImpact& b) {
              return a.weight * (a.cost_before - a.cost_after) >
                     b.weight * (b.cost_before - b.cost_after);
            });
  for (auto& [id, impact] : index_impacts) {
    report.indexes.push_back(impact);
  }
  std::sort(report.indexes.begin(), report.indexes.end(),
            [](const IndexImpact& a, const IndexImpact& b) {
              return a.weighted_benefit > b.weighted_benefit;
            });
  return report;
}

SolverActivity CaptureSolverActivity() {
  SolverActivity activity;
  activity.lp = lp::SolverCountersSnapshot();
  return activity;
}

SolverActivity SolverActivitySince(const SolverActivity& snapshot) {
  SolverActivity activity;
  activity.lp = lp::SolverCountersSince(snapshot.lp);
  // mip_nodes / bound_evaluations are per-run values the caller fills
  // in from its MipSolution / ChoiceSolution; they are not global.
  return activity;
}

std::string RenderSolverActivity(const SolverActivity& activity) {
  const lp::SolverCounters& c = activity.lp;
  std::string out;
  const int64_t all_pivots =
      c.phase1_pivots + c.phase2_pivots + c.dual_pivots;
  const double per_solve =
      c.lp_solves > 0 ? static_cast<double>(all_pivots) /
                            static_cast<double>(c.lp_solves)
                      : 0.0;
  out += StrFormat(
      "LP solves %lld (warm %lld / cold %lld), pivots %lld "
      "(phase-1 %lld, phase-2 %lld, dual %lld, flips %lld), "
      "%.1f pivots/solve\n",
      static_cast<long long>(c.lp_solves),
      static_cast<long long>(c.warm_starts),
      static_cast<long long>(c.cold_starts),
      static_cast<long long>(all_pivots),
      static_cast<long long>(c.phase1_pivots),
      static_cast<long long>(c.phase2_pivots),
      static_cast<long long>(c.dual_pivots),
      static_cast<long long>(c.bound_flips), per_solve);
  if (c.lp_solves > 0) {
    out += StrFormat(
        "Basis factorization: %lld LU factorizations, %lld FT updates, "
        "%lld eta nnz, %.1f ms in FTRAN/BTRAN\n",
        static_cast<long long>(c.factorizations),
        static_cast<long long>(c.ft_updates),
        static_cast<long long>(c.eta_nnz), 1e3 * c.ftran_btran_seconds);
    if (c.devex_resets > 0) {
      out += StrFormat("Devex: %lld reference-framework resets\n",
                       static_cast<long long>(c.devex_resets));
    }
  }
  if (c.certified_solves + c.uncertified_solves > 0) {
    out += StrFormat(
        "Numerical safety: %lld/%lld solves certified, %lld refinement "
        "rounds, perturbations %lld applied / %lld removed, escalations: "
        "%lld Bland, %lld Markowitz, %lld singular repairs, %lld cold "
        "restarts\n",
        static_cast<long long>(c.certified_solves),
        static_cast<long long>(c.certified_solves + c.uncertified_solves),
        static_cast<long long>(c.refinement_rounds),
        static_cast<long long>(c.perturbations_applied),
        static_cast<long long>(c.perturbations_removed),
        static_cast<long long>(c.bland_escalations),
        static_cast<long long>(c.markowitz_escalations),
        static_cast<long long>(c.singular_repairs),
        static_cast<long long>(c.cold_restarts));
  }
  if (activity.mip_nodes > 0 || activity.bound_evaluations > 0) {
    out += StrFormat("B&B nodes %lld, bound evaluations %lld\n",
                     static_cast<long long>(activity.mip_nodes),
                     static_cast<long long>(activity.bound_evaluations));
  }
  const lp::PresolveStats& ps = activity.presolve;
  if (ps.plans_in > 0) {
    out += StrFormat(
        "Presolve: plans %lld -> %lld (%lld dup, %lld dominated), "
        "options %lld -> %lld, indexes %lld -> %lld\n",
        static_cast<long long>(ps.plans_in),
        static_cast<long long>(ps.plans_out),
        static_cast<long long>(ps.duplicate_plans),
        static_cast<long long>(ps.dominated_plans),
        static_cast<long long>(ps.options_in),
        static_cast<long long>(ps.options_out),
        static_cast<long long>(ps.indexes_in),
        static_cast<long long>(ps.indexes_out));
  }
  const bool has_lp_bound = std::isfinite(activity.root_lp_bound);
  const bool has_lagr_bound = std::isfinite(activity.root_lagrangian_bound);
  if (has_lp_bound || has_lagr_bound) {
    out += "Root bounds:";
    if (has_lp_bound) {
      out += StrFormat(" LP %.6g", activity.root_lp_bound);
      const lp::LpSolveStats& rs = activity.root_lp_stats;
      if (rs.refactorizations > 0) {
        out += StrFormat(
            " (%s%s, %lld refactorizations, drift %.2g)",
            rs.warm_started ? "warm" : "cold",
            rs.dual_entered ? " dual" : "",
            static_cast<long long>(rs.refactorizations), rs.max_drift);
      }
    }
    if (has_lagr_bound) {
      out += StrFormat("%s Lagrangian %.6g", has_lp_bound ? " |" : "",
                       activity.root_lagrangian_bound);
    }
    out += StrFormat(", %lld z fixed by reduced costs\n",
                     static_cast<long long>(activity.variables_fixed));
  }
  if (activity.shards_quarantined > 0 || activity.coverage < 1.0) {
    out += StrFormat(
        "DEGRADED: %d shard%s quarantined, recommendation covers %.1f%% "
        "of live statement weight\n",
        activity.shards_quarantined,
        activity.shards_quarantined == 1 ? "" : "s",
        100.0 * activity.coverage);
  }
  return out;
}

std::string RenderPrepareStats(const PrepareStats& stats) {
  std::string out;
  const CompressionStats& c = stats.compression;
  out += StrFormat(
      "Compression: %d -> %d statements (%.1fx, %s), weight %.4g -> %.4g\n",
      c.input_statements, c.output_statements, c.Ratio(),
      c.lossless ? "lossless" : "lossy", c.input_weight, c.output_weight);
  if (stats.shards > 1) {
    out += StrFormat(
        "Shards: %d, largest %d statements (skew %.2fx vs balanced)\n",
        stats.shards, stats.max_shard_statements, stats.ShardSkew());
  }
  out += StrFormat(
      "INUM: %d thread%s, %d cache%s cloned from cost-equivalent leaders\n",
      stats.num_threads, stats.num_threads == 1 ? "" : "s",
      stats.shared_statements, stats.shared_statements == 1 ? "" : "s");
  out += StrFormat(
      "Prepare: compress %.3fs + cgen %.3fs + inum %.3fs = %.3fs\n",
      stats.compression.seconds, stats.cgen_seconds, stats.inum_seconds,
      stats.Total());
  if (stats.whatif_retries > 0 || stats.whatif_failures > 0 ||
      stats.whatif_degraded > 0 || stats.whatif_fast_fails > 0 ||
      stats.breaker_trips > 0) {
    out += StrFormat(
        "What-if boundary: %lld retries, %lld failures, %lld degraded "
        "answers, %lld breaker fast-fails, %d breaker trips\n",
        static_cast<long long>(stats.whatif_retries),
        static_cast<long long>(stats.whatif_failures),
        static_cast<long long>(stats.whatif_degraded),
        static_cast<long long>(stats.whatif_fast_fails),
        stats.breaker_trips);
  }
  if (stats.plan_cache_template_hits + stats.plan_cache_template_misses +
          stats.plan_cache_gamma_hits + stats.plan_cache_gamma_misses >
      0) {
    out += StrFormat(
        "Shared plan cache: templates %lld hit / %lld miss, "
        "gammas %lld hit / %lld miss\n",
        static_cast<long long>(stats.plan_cache_template_hits),
        static_cast<long long>(stats.plan_cache_template_misses),
        static_cast<long long>(stats.plan_cache_gamma_hits),
        static_cast<long long>(stats.plan_cache_gamma_misses));
  }
  if (stats.drift_score > 0 || stats.drift_new_classes > 0 ||
      stats.drift_retired_classes > 0) {
    out += StrFormat(
        "Drift: score %.3f, %d new / %d retired class%s since last retune\n",
        stats.drift_score, stats.drift_new_classes,
        stats.drift_retired_classes,
        stats.drift_new_classes + stats.drift_retired_classes == 1 ? ""
                                                                   : "es");
  }
  return out;
}

std::string RenderTuningReport(const TuningReport& report, const Inum& inum,
                               int top_k) {
  const Catalog& cat = inum.whatif().catalog();
  const IndexPool& pool = inum.whatif().pool();
  const Workload& w = inum.workload();

  std::string out;
  const double reduction =
      report.total_before > 0
          ? 100.0 * (1.0 - report.total_after / report.total_before)
          : 0.0;
  out += StrFormat(
      "Estimated workload cost: %.4g -> %.4g (%.1f%% reduction)\n",
      report.total_before, report.total_after, reduction);
  out += StrFormat("Storage used: %.1f MB across %zu indexes\n\n",
                   report.storage_bytes / 1e6, report.indexes.size());

  out += "Top improved statements:\n";
  int listed = 0;
  for (const StatementImpact& si : report.statements) {
    if (top_k > 0 && listed >= top_k) break;
    if (si.cost_before <= si.cost_after) break;  // sorted: rest are flat
    std::string stmt = w[si.query].ToString(cat);
    if (stmt.size() > 68) stmt = stmt.substr(0, 65) + "...";
    out += StrFormat("  [q%03d] -%5.1f%%  %s\n", si.query,
                     100.0 * si.Improvement(), stmt.c_str());
    ++listed;
  }

  out += "\nSelected indexes by contribution:\n";
  listed = 0;
  for (const IndexImpact& ii : report.indexes) {
    if (top_k > 0 && listed >= top_k) break;
    out += StrFormat("  %7.1f MB  serves %3d stmt  benefit %.3g%s  %s\n",
                     ii.size_bytes / 1e6, ii.statements_served,
                     ii.weighted_benefit,
                     ii.update_penalty > 0
                         ? StrFormat(" (upkeep %.3g)", ii.update_penalty).c_str()
                         : "",
                     pool[ii.index].ToString(cat).c_str());
    ++listed;
  }
  return out;
}

}  // namespace cophy
