// Human-readable tuning reports: what the recommendation changes, per
// statement and per index. This is the artifact a DBA reads after a
// session — which statements improve and by how much, which index
// serves which statements, and where the storage budget went.
#ifndef COPHY_CORE_REPORT_H_
#define COPHY_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cophy.h"
#include "lp/simplex.h"

namespace cophy {

/// Per-statement impact of a recommendation.
struct StatementImpact {
  QueryId query = -1;
  double cost_before = 0;   ///< INUM shell cost under X0
  double cost_after = 0;    ///< INUM shell cost under X*
  double weight = 1.0;
  std::vector<IndexId> indexes_used;  ///< X* members its plan uses
  double Improvement() const {
    return cost_before > 0 ? 1.0 - cost_after / cost_before : 0.0;
  }
};

/// Per-index usage summary.
struct IndexImpact {
  IndexId index = kInvalidIndex;
  double size_bytes = 0;
  int statements_served = 0;          ///< plans that use it under X*
  double weighted_benefit = 0;        ///< Σ f_q (before − after) share
  double update_penalty = 0;          ///< Σ f_q ucost(a, q)
};

/// The full report.
struct TuningReport {
  double total_before = 0;  ///< Σ f_q cost(q, X0)
  double total_after = 0;   ///< Σ f_q cost(q, X*) incl. maintenance
  double storage_bytes = 0;
  std::vector<StatementImpact> statements;  ///< sorted by absolute gain
  std::vector<IndexImpact> indexes;         ///< sorted by benefit
};

/// Computes the report from a finished tuning session. Uses only INUM
/// lookups (no what-if calls).
TuningReport AnalyzeRecommendation(const Inum& inum,
                                   const Recommendation& rec);

/// Renders the report as a fixed-width text block. `top_k` bounds the
/// number of statements/indexes listed (≤ 0 = all).
std::string RenderTuningReport(const TuningReport& report, const Inum& inum,
                               int top_k = 10);

/// Solver work accounting: what the LP layer actually did — pivots and
/// warm-start hits, not just wall time. Benchmarks snapshot the global
/// counters around a run and report the delta next to the timings.
struct SolverActivity {
  lp::SolverCounters lp;            ///< revised-simplex pivot/pricing work
  int64_t mip_nodes = 0;            ///< optional: branch-and-bound nodes
  int64_t bound_evaluations = 0;    ///< optional: structured-solver bounds
  /// Optional (filled from a Recommendation/ChoiceSolution): presolve
  /// reductions and the two root bounds side by side. Rendered only
  /// when present.
  lp::PresolveStats presolve;
  double root_lp_bound = -lp::kInf;
  double root_lagrangian_bound = -lp::kInf;
  int64_t variables_fixed = 0;      ///< z pinned by reduced-cost fixing
  /// Optional: the root LP's own simplex/factorization work (filled
  /// from ChoiceSolution::root_lp_stats / Recommendation::root_lp_stats).
  lp::LpSolveStats root_lp_stats;
  /// Optional degraded-mode accounting (filled from a sharded session's
  /// Recommendation). Rendered only when shards were quarantined.
  double coverage = 1.0;
  int shards_quarantined = 0;
};

/// Snapshot of the process-wide LP counters (pair with
/// SolverActivitySince to attribute work to a run).
SolverActivity CaptureSolverActivity();
/// Delta of the global LP counters against an earlier snapshot.
SolverActivity SolverActivitySince(const SolverActivity& snapshot);

/// Renders the activity as a short fixed-width block, e.g. for the
/// benchmark tables: pivots split by phase, bound flips, warm/cold
/// starts, and pivots-per-solve.
std::string RenderSolverActivity(const SolverActivity& activity);

/// Renders the preparation-stage accounting (compression ratio, INUM
/// threads, cache sharing, stage timings) — the pipeline counterpart of
/// RenderSolverActivity.
std::string RenderPrepareStats(const PrepareStats& stats);

}  // namespace cophy

#endif  // COPHY_CORE_REPORT_H_
