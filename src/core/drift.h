// Online tuning under workload drift (the serving-side complement of
// the session's delta path; semi-automatic index tuning's production
// loop). Three mechanisms, all deterministic and all riding on the
// existing shard/merge machinery:
//
//  * Exponentially-decayed f_q weights. The session keeps a logical
//    epoch clock (AdvanceEpoch, typically one tick per trace round);
//    a statement's live weight is f_q * 0.5^(age / half_life). Decay is
//    applied *lazily at merge time* — shards never re-prepare for a
//    weight change, and with decay disabled (half_life <= 0) the
//    arithmetic is byte-for-byte the undecayed path (pinned by test).
//
//  * Drift detection over the cost-equivalence-class distribution. A
//    batch that only shifts weight between known classes takes the
//    existing zero-prepare re-weighting fast path; a batch that opens
//    (or retires) classes dirties exactly the owning shards. The
//    detector classifies each retune — total-variation distance of the
//    normalized class-weight distribution plus new/retired class counts
//    — and the score is exported through PrepareStats /
//    RenderPrepareStats.
//
//  * Materialize/drop scheduling with hysteresis. The solver's
//    recommendation may thrash on near-ties under drift; an index must
//    be recommended for K consecutive retunes before "materialize" and
//    absent for K before "drop", so the *applied* configuration is
//    stable while the solver stays free to follow the workload.
//
// Plus the DBA feedback hook: Accept/Veto per index translate into
// fixed/forbidden z variables (z_a == 1 / z_a == 0 rows) through the
// existing constraints layer, so they constrain every subsequent solve
// exactly like any other E.1 index constraint.
#ifndef COPHY_CORE_DRIFT_H_
#define COPHY_CORE_DRIFT_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "constraints/constraints.h"
#include "index/index.h"

namespace cophy {

/// Online-tuning knobs of a session. Defaults are the exact pre-drift
/// behavior: no decay, hysteresis window 1 (applied == recommended).
struct DriftOptions {
  /// Half-life of statement weights in epochs (AdvanceEpoch ticks).
  /// <= 0 disables decay entirely — live weights are the raw f_q and
  /// the merge arithmetic is bit-identical to the undecayed path.
  double half_life_epochs = 0;
  /// An index must be recommended for this many *consecutive* retunes
  /// before it enters the applied (materialized) configuration.
  int materialize_after = 1;
  /// ... and absent for this many consecutive retunes before it leaves.
  int drop_after = 1;
};

/// Weight multiplier for a statement `age` epochs old (1.0 exactly when
/// decay is disabled or the statement arrived in the current epoch).
double DecayFactor(int64_t age_epochs, double half_life_epochs);

/// Point-in-time drift picture of a session (refreshed at every
/// Tune/Retune; see AdvisorSession::drift_stats).
struct DriftStats {
  int64_t epoch = 0;  ///< the session's logical clock
  /// Total-variation distance in [0, 1] between the previous retune's
  /// normalized class-weight distribution and the current one (0 =
  /// stable, 1 = complete turnover). New/retired classes contribute
  /// their full weight share.
  double score = 0;
  int new_classes = 0;      ///< classes first seen since the last retune
  int retired_classes = 0;  ///< classes that disappeared since then
  /// Preparation work of the last Refresh: shards fully re-prepared
  /// (slow path) and shards that took incremental γ appends. Both zero
  /// on a pure re-weighting retune (the fast path).
  int full_prepares = 0;
  int incremental_prepares = 0;
};

/// Classifies retune-to-retune movement of the class-weight
/// distribution. Observe() compares against the previous snapshot and
/// replaces it; the first observation reports every class as new with
/// score 1 (an empty session observing an empty one reports 0).
class DriftDetector {
 public:
  struct Reading {
    double score = 0;
    int new_classes = 0;
    int retired_classes = 0;
  };

  /// `class_weights`: (class id, live weight) of every live class.
  Reading Observe(const std::vector<std::pair<int, double>>& class_weights);

  void Reset() { prev_.clear(); seeded_ = false; }

 private:
  std::unordered_map<int, double> prev_;  // normalized weight share
  bool seeded_ = false;
};

/// What the hysteresis scheduler decided after one retune.
struct MaterializationDecision {
  /// The stable applied configuration after this retune (ascending ids).
  std::vector<IndexId> applied;
  std::vector<IndexId> materialized;  ///< entered `applied` this retune
  std::vector<IndexId> dropped;       ///< left `applied` this retune
  /// Recommended now but streak < materialize_after / absent now but
  /// streak < drop_after — the DBA's "pending" picture.
  std::vector<IndexId> pending_materialize;
  std::vector<IndexId> pending_drop;
  int changes() const {
    return static_cast<int>(materialized.size() + dropped.size());
  }
};

/// K-consecutive-retunes materialize/drop scheduling. With both windows
/// at 1 this is the identity: applied == recommended every retune.
class HysteresisScheduler {
 public:
  HysteresisScheduler() = default;
  HysteresisScheduler(int materialize_after, int drop_after)
      : materialize_after_(materialize_after < 1 ? 1 : materialize_after),
        drop_after_(drop_after < 1 ? 1 : drop_after) {}

  /// Feeds one retune's recommended set; returns the updated decision.
  MaterializationDecision Update(const std::vector<IndexId>& recommended);

  /// DBA override: force `id` into the applied set immediately (Accept).
  void ForceInclude(IndexId id);
  /// DBA override: drop `id` immediately and forget its streaks (Veto).
  void ForceDrop(IndexId id);

  /// The current applied configuration (ascending ids).
  std::vector<IndexId> applied() const;

 private:
  struct Track {
    int present_streak = 0;
    int absent_streak = 0;
    bool applied = false;
  };
  int materialize_after_ = 1;
  int drop_after_ = 1;
  std::map<IndexId, Track> tracks_;  // ordered: deterministic outputs
};

/// The DBA feedback ledger (semi-automatic tuning's accept/veto verbs).
/// Accept pins z_a = 1, Veto pins z_a = 0; each overrides the other and
/// Clear forgets both. AppendConstraints translates the ledger into
/// per-index kEq rows through the existing constraints layer, so the
/// solver, presolve, and warm-start machinery see ordinary E.1 rows.
class DbaFeedback {
 public:
  void Accept(IndexId id);
  void Veto(IndexId id);
  void Clear(IndexId id);

  bool IsAccepted(IndexId id) const;
  bool IsVetoed(IndexId id) const;
  bool empty() const { return accepted_.empty() && vetoed_.empty(); }

  /// Ascending ids (deterministic constraint order).
  const std::vector<IndexId>& accepted() const { return accepted_; }
  const std::vector<IndexId>& vetoed() const { return vetoed_; }

  /// Appends one z_a == 1 row per accepted id and one z_a == 0 row per
  /// vetoed id. A vetoed id outside the candidate set translates to a
  /// trivially satisfied empty row (dropped); an accepted id must be in
  /// the candidate set or the empty == 1 row surfaces as infeasibility
  /// — AdvisorSession guarantees accepted ids are always candidates.
  void AppendConstraints(ConstraintSet* cs) const;

 private:
  std::vector<IndexId> accepted_;  // sorted ascending
  std::vector<IndexId> vetoed_;    // sorted ascending
};

}  // namespace cophy

#endif  // COPHY_CORE_DRIFT_H_
