// The constraint language of Bruno & Chaudhuri's constrained physical
// design tuning, as adopted by the paper (§3.2, Appendix E): index
// constraints (E.1), query-cost constraints (E.2), generators with
// filters (E.3), and soft constraints (§4.1). Everything here
// translates to linear rows over the z (index-selection) variables —
// which is the paper's central observation about constraints.
#ifndef COPHY_CONSTRAINTS_CONSTRAINTS_H_
#define COPHY_CONSTRAINTS_CONSTRAINTS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "index/index.h"
#include "lp/choice_problem.h"
#include "query/query.h"

namespace cophy {

/// Comparison operator of a DBA constraint (the paper's `<=>`).
enum class CmpOp { kLe, kEq, kGe };

/// E.1: Σ_{a ∈ Sc} w_a · z_a  <op>  V, where Sc is a filtered subset of
/// the candidates. The storage budget, count limits, and column-width
/// rules are all instances.
struct IndexConstraint {
  std::string name;
  /// Which candidates participate (the generator's Filter).
  std::function<bool(const Index&, const Catalog&)> filter;
  /// Per-index coefficient w_a (e.g. size(a), or 1 for counting).
  std::function<double(const Index&, const Catalog&)> weight;
  CmpOp op = CmpOp::kLe;
  double rhs = 0.0;
};

/// E.2: cost(q, X*) ≤ factor · cost(q, X0) + absolute. The baseline
/// cost is resolved by the advisor at tuning time (it depends on the
/// optimizer), after which the row is linear in the BIP variables.
struct QueryCostConstraint {
  QueryId query = -1;
  double factor = 1.0;
  double absolute = 0.0;
};

/// A soft constraint (§3.2/§4.1): Σ w_a z_a should not exceed `target`,
/// but may, trading excess against workload cost along a Pareto curve.
struct SoftConstraint {
  std::string name;
  std::function<double(const Index&, const Catalog&)> weight;
  double target = 0.0;
};

/// The DBA's constraint set C = C_hard ∪ C_soft.
class ConstraintSet {
 public:
  /// The storage-budget constraint Σ size(a) z_a ≤ bytes (kept apart so
  /// solvers can exploit its knapsack structure).
  void SetStorageBudget(double bytes) { storage_budget_ = bytes; }
  std::optional<double> storage_budget() const { return storage_budget_; }

  void AddIndexConstraint(IndexConstraint c) {
    index_constraints_.push_back(std::move(c));
  }
  void AddQueryCostConstraint(QueryCostConstraint c) {
    query_cost_constraints_.push_back(c);
  }
  void AddSoftConstraint(SoftConstraint c) { soft_.push_back(std::move(c)); }

  // --- Generator sugar (E.3) -------------------------------------------

  /// FOR t IN tables ASSERT (Σ_{a clustered on t} z_a) ≤ 1 — Eq. (5).
  void AddAtMostOneClusteredPerTable(const Catalog& cat);

  /// FOR t IN tables [matching filter] ASSERT count(indexes on t) ≤ k.
  void AddMaxIndexesPerTable(const Catalog& cat, int k);

  /// "At most `k` indexes with more than `width` key columns" (the
  /// paper's E.1 example).
  void AddMaxWideIndexes(int width, int k);

  /// FOR q IN W ASSERT cost(q, X*) ≤ factor · cost(q, X0) — the E.3
  /// generator over query-cost constraints.
  void ForEachQueryAssertSpeedup(const Workload& w, double factor);

  /// Soft storage constraint Σ size(a) z_a ⇒ target (possibly 0, as in
  /// §5.4's Pareto experiment).
  void AddSoftStorage(double target_bytes);

  const std::vector<IndexConstraint>& index_constraints() const {
    return index_constraints_;
  }
  const std::vector<QueryCostConstraint>& query_cost_constraints() const {
    return query_cost_constraints_;
  }
  const std::vector<SoftConstraint>& soft_constraints() const { return soft_; }

  bool empty() const {
    return !storage_budget_ && index_constraints_.empty() &&
           query_cost_constraints_.empty() && soft_.empty();
  }

 private:
  std::optional<double> storage_budget_;
  std::vector<IndexConstraint> index_constraints_;
  std::vector<QueryCostConstraint> query_cost_constraints_;
  std::vector<SoftConstraint> soft_;
};

/// Translates the index constraints into linear rows over dense solver
/// ids (`candidates[i]` ↦ dense id i). Zero-term rows with a satisfied
/// RHS are dropped; unsatisfiable empty rows become an all-zero == rhs
/// row so infeasibility surfaces in the solver's precheck.
std::vector<lp::ZRow> TranslateIndexConstraints(
    const ConstraintSet& cs, const std::vector<IndexId>& candidates,
    const IndexPool& pool, const Catalog& cat);

/// Per-index coefficients of one soft constraint under the dense id
/// mapping (used to build scalarized objectives).
std::vector<double> SoftConstraintWeights(const SoftConstraint& soft,
                                          const std::vector<IndexId>& candidates,
                                          const IndexPool& pool,
                                          const Catalog& cat);

}  // namespace cophy

#endif  // COPHY_CONSTRAINTS_CONSTRAINTS_H_
