#include "constraints/constraints.h"

#include "common/strings.h"

namespace cophy {

void ConstraintSet::AddAtMostOneClusteredPerTable(const Catalog& cat) {
  for (TableId t = 0; t < cat.num_tables(); ++t) {
    IndexConstraint c;
    c.name = StrFormat("clustered(%s) <= 1", cat.table(t).name.c_str());
    c.filter = [t](const Index& idx, const Catalog&) {
      return idx.table == t && idx.clustered;
    };
    c.weight = [](const Index&, const Catalog&) { return 1.0; };
    c.op = CmpOp::kLe;
    c.rhs = 1.0;
    AddIndexConstraint(std::move(c));
  }
}

void ConstraintSet::AddMaxIndexesPerTable(const Catalog& cat, int k) {
  for (TableId t = 0; t < cat.num_tables(); ++t) {
    IndexConstraint c;
    c.name = StrFormat("count(%s) <= %d", cat.table(t).name.c_str(), k);
    c.filter = [t](const Index& idx, const Catalog&) { return idx.table == t; };
    c.weight = [](const Index&, const Catalog&) { return 1.0; };
    c.op = CmpOp::kLe;
    c.rhs = k;
    AddIndexConstraint(std::move(c));
  }
}

void ConstraintSet::AddMaxWideIndexes(int width, int k) {
  IndexConstraint c;
  c.name = StrFormat("count(key width > %d) <= %d", width, k);
  c.filter = [width](const Index& idx, const Catalog&) {
    return static_cast<int>(idx.key_columns.size()) > width;
  };
  c.weight = [](const Index&, const Catalog&) { return 1.0; };
  c.op = CmpOp::kLe;
  c.rhs = k;
  AddIndexConstraint(std::move(c));
}

void ConstraintSet::ForEachQueryAssertSpeedup(const Workload& w,
                                              double factor) {
  for (const Query& q : w.statements()) {
    if (!q.IsSelect()) continue;
    AddQueryCostConstraint(QueryCostConstraint{q.id, factor, 0.0});
  }
}

void ConstraintSet::AddSoftStorage(double target_bytes) {
  SoftConstraint s;
  s.name = "soft-storage";
  s.weight = [](const Index& idx, const Catalog& cat) {
    return IndexSizeBytes(idx, cat);
  };
  s.target = target_bytes;
  AddSoftConstraint(std::move(s));
}

std::vector<lp::ZRow> TranslateIndexConstraints(
    const ConstraintSet& cs, const std::vector<IndexId>& candidates,
    const IndexPool& pool, const Catalog& cat) {
  std::vector<lp::ZRow> rows;
  for (const IndexConstraint& c : cs.index_constraints()) {
    lp::ZRow row;
    row.name = c.name;
    switch (c.op) {
      case CmpOp::kLe:
        row.sense = lp::Sense::kLe;
        break;
      case CmpOp::kEq:
        row.sense = lp::Sense::kEq;
        break;
      case CmpOp::kGe:
        row.sense = lp::Sense::kGe;
        break;
    }
    row.rhs = c.rhs;
    for (int dense = 0; dense < static_cast<int>(candidates.size()); ++dense) {
      const Index& idx = pool[candidates[dense]];
      if (c.filter && !c.filter(idx, cat)) continue;
      const double w = c.weight ? c.weight(idx, cat) : 1.0;
      if (w != 0.0) row.terms.push_back({dense, w});
    }
    if (row.terms.empty()) {
      // No candidate participates: the row is trivially 0 <op> rhs.
      const bool satisfied =
          (row.sense == lp::Sense::kLe && 0.0 <= row.rhs + 1e-12) ||
          (row.sense == lp::Sense::kGe && 0.0 >= row.rhs - 1e-12) ||
          (row.sense == lp::Sense::kEq && std::abs(row.rhs) <= 1e-12);
      if (satisfied) continue;  // drop trivially-true rows
      // Keep the empty row so the solver's feasibility precheck reports
      // the contradiction to the DBA (§4.1 line 1-2).
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<double> SoftConstraintWeights(const SoftConstraint& soft,
                                          const std::vector<IndexId>& candidates,
                                          const IndexPool& pool,
                                          const Catalog& cat) {
  std::vector<double> w(candidates.size(), 0.0);
  for (int dense = 0; dense < static_cast<int>(candidates.size()); ++dense) {
    w[dense] = soft.weight ? soft.weight(pool[candidates[dense]], cat) : 0.0;
  }
  return w;
}

}  // namespace cophy
