// SharedPlanCache: the service tier's cross-session INUM plan cache (an
// InumPlanCache, see inum/shared_cache.h for the bit-identity
// contract). A lock-sharded hash map — keys spread over N independent
// mutexes so concurrent tenants rarely contend — holding immutable
// shared_ptr<const> entries with first-writer-wins publication, plus
// relaxed atomic hit/miss/insert counters snapshotable while tenants
// are preparing (stats() folds into PrepareStats via Inum's counters;
// these are the cache-global totals across all tenants).
#ifndef COPHY_SERVICE_PLAN_CACHE_H_
#define COPHY_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "inum/shared_cache.h"

namespace cophy {

class SharedPlanCache : public InumPlanCache {
 public:
  /// `num_shards` lock shards (rounded up to at least 1). 16 is plenty:
  /// the critical sections are single hash-map probes.
  explicit SharedPlanCache(int num_shards = 16);

  std::shared_ptr<const SharedTemplateEntry> LookupTemplates(
      uint64_t signature) override;
  void PublishTemplates(
      uint64_t signature,
      std::shared_ptr<const SharedTemplateEntry> entry) override;

  std::shared_ptr<const SharedGammaEntry> LookupGammas(
      uint64_t signature, uint64_t walk_digest) override;
  void PublishGammas(uint64_t signature, uint64_t walk_digest,
                     std::shared_ptr<const SharedGammaEntry> entry) override;

  PlanCacheStats stats() const override;

  /// Entry counts (for reports/benchmarks; takes every shard lock).
  int64_t NumTemplateEntries() const;
  int64_t NumGammaEntries() const;

 private:
  /// γ entries key on (signature, walk digest); 128 bits compared
  /// exactly, so distinct walks never alias through the map key.
  struct GammaKey {
    uint64_t signature = 0;
    uint64_t walk_digest = 0;
    bool operator==(const GammaKey& o) const {
      return signature == o.signature && walk_digest == o.walk_digest;
    }
  };
  struct GammaKeyHash {
    size_t operator()(const GammaKey& k) const;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<const SharedTemplateEntry>>
        templates;
    std::unordered_map<GammaKey, std::shared_ptr<const SharedGammaEntry>,
                       GammaKeyHash>
        gammas;
  };

  Shard& ShardFor(uint64_t signature) {
    return *shards_[signature % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> template_hits_{0};
  std::atomic<int64_t> template_misses_{0};
  std::atomic<int64_t> template_inserts_{0};
  std::atomic<int64_t> gamma_hits_{0};
  std::atomic<int64_t> gamma_misses_{0};
  std::atomic<int64_t> gamma_inserts_{0};
};

}  // namespace cophy

#endif  // COPHY_SERVICE_PLAN_CACHE_H_
