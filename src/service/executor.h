// SessionExecutor: serial-per-lane task dispatch over the shared
// ThreadPool. Each lane (one per tenant in the advisor service) is a
// FIFO queue whose tasks run strictly one at a time and in submission
// order, while distinct lanes run concurrently on the pool's workers —
// the classic event-loop/actor arrangement that gives tenants
// single-threaded session semantics without a thread per tenant.
//
// Backpressure: each lane holds at most `max_queued_per_lane` tasks
// (queued + running); Submit beyond that fails with kResourceExhausted
// and runs nothing, so an abusive tenant saturates its own lane, not the
// pool. Fairness: a lane yields its worker back to the pool after every
// task instead of draining its queue, so K runnable lanes share the
// workers round-robin-ish regardless of queue depths.
#ifndef COPHY_SERVICE_EXECUTOR_H_
#define COPHY_SERVICE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_pool.h"

namespace cophy {

class SessionExecutor {
 public:
  /// `pool` is shared, not owned, and must outlive the executor. A
  /// size-1 pool degenerates to inline execution inside Submit —
  /// correct, just serial (the benchmark's "serialized dispatch"
  /// baseline). max_queued_per_lane <= 0 means unbounded.
  SessionExecutor(ThreadPool* pool, int max_queued_per_lane);
  /// Drains every lane (Submit during destruction is a caller bug).
  ~SessionExecutor();

  SessionExecutor(const SessionExecutor&) = delete;
  SessionExecutor& operator=(const SessionExecutor&) = delete;

  /// Enqueues `task` on `lane`, creating the lane on first use. Returns
  /// kResourceExhausted (and drops the task) when the lane is full.
  /// Tasks must not throw.
  Status Submit(const std::string& lane, std::function<void()> task);

  /// Blocks until every lane is empty and idle. Tasks may keep
  /// submitting while a drain waits (it returns once the system is
  /// momentarily quiet).
  void Drain();

  /// Tasks accepted / finished so far (accepted - finished = in flight).
  int64_t submitted() const;
  int64_t completed() const;
  /// Submissions rejected with kResourceExhausted.
  int64_t rejected() const;

 private:
  struct Lane {
    std::deque<std::function<void()>> queue;
    bool running = false;  ///< a Pump for this lane is scheduled/running
    /// Accepted-but-unfinished tasks (queued + executing). This is the
    /// backpressure occupancy — distinct from queue.size() + running,
    /// which double-counts a task between acceptance and dequeue.
    int inflight = 0;
  };

  /// Runs one task of `lane`, then reschedules itself while work
  /// remains (looping inline instead when the pool has no workers).
  void Pump(Lane* lane);

  ThreadPool* pool_;
  const int max_queued_;
  mutable std::mutex mu_;  // lanes_ + counters
  std::condition_variable drain_cv_;
  /// Node-based map: Lane addresses stay stable across lane creation.
  std::unordered_map<std::string, Lane> lanes_;
  int64_t submitted_ = 0;
  int64_t completed_ = 0;
  int64_t rejected_ = 0;
};

}  // namespace cophy

#endif  // COPHY_SERVICE_EXECUTOR_H_
