#include "service/plan_cache.h"

#include <algorithm>

namespace cophy {

size_t SharedPlanCache::GammaKeyHash::operator()(const GammaKey& k) const {
  // SplitMix64 finalizer over the xor-combined halves; the map compares
  // full keys, so this only spreads buckets.
  uint64_t h = k.signature ^ (k.walk_digest * 0x9e3779b97f4a7c15ULL);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<size_t>(h ^ (h >> 31));
}

SharedPlanCache::SharedPlanCache(int num_shards) {
  shards_.reserve(static_cast<size_t>(std::max(1, num_shards)));
  for (int i = 0; i < std::max(1, num_shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const SharedTemplateEntry> SharedPlanCache::LookupTemplates(
    uint64_t signature) {
  Shard& shard = ShardFor(signature);
  std::shared_ptr<const SharedTemplateEntry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.templates.find(signature);
    if (it != shard.templates.end()) entry = it->second;
  }
  (entry != nullptr ? template_hits_ : template_misses_)
      .fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void SharedPlanCache::PublishTemplates(
    uint64_t signature, std::shared_ptr<const SharedTemplateEntry> entry) {
  Shard& shard = ShardFor(signature);
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // First writer wins: a racing publisher's identical entry is dropped
    // so every reader of this key sees one immutable value forever.
    inserted = shard.templates.emplace(signature, std::move(entry)).second;
  }
  if (inserted) template_inserts_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const SharedGammaEntry> SharedPlanCache::LookupGammas(
    uint64_t signature, uint64_t walk_digest) {
  Shard& shard = ShardFor(signature);
  const GammaKey key{signature, walk_digest};
  std::shared_ptr<const SharedGammaEntry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.gammas.find(key);
    if (it != shard.gammas.end()) entry = it->second;
  }
  (entry != nullptr ? gamma_hits_ : gamma_misses_)
      .fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void SharedPlanCache::PublishGammas(
    uint64_t signature, uint64_t walk_digest,
    std::shared_ptr<const SharedGammaEntry> entry) {
  Shard& shard = ShardFor(signature);
  const GammaKey key{signature, walk_digest};
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    inserted = shard.gammas.emplace(key, std::move(entry)).second;
  }
  if (inserted) gamma_inserts_.fetch_add(1, std::memory_order_relaxed);
}

PlanCacheStats SharedPlanCache::stats() const {
  PlanCacheStats s;
  s.template_hits = template_hits_.load(std::memory_order_relaxed);
  s.template_misses = template_misses_.load(std::memory_order_relaxed);
  s.template_inserts = template_inserts_.load(std::memory_order_relaxed);
  s.gamma_hits = gamma_hits_.load(std::memory_order_relaxed);
  s.gamma_misses = gamma_misses_.load(std::memory_order_relaxed);
  s.gamma_inserts = gamma_inserts_.load(std::memory_order_relaxed);
  return s;
}

int64_t SharedPlanCache::NumTemplateEntries() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->templates.size());
  }
  return n;
}

int64_t SharedPlanCache::NumGammaEntries() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->gammas.size());
  }
  return n;
}

}  // namespace cophy
