#include "service/service.h"

#include "common/stopwatch.h"

namespace cophy {

AdvisorService::AdvisorService(WhatIfOptimizer* whatif, IndexPool* pool,
                               ServiceOptions options)
    : whatif_(whatif),
      pool_(pool),
      options_(std::move(options)),
      cache_(options_.plan_cache_shards),
      workers_(options_.num_threads),
      executor_(&workers_, options_.max_inflight_per_tenant) {
  // One full warm here, before any worker can touch the catalog: the
  // Zipf cache is lazily built and not locked, so we make every later
  // read a pure lookup.
  whatif_->catalog().WarmStatistics();
}

AdvisorService::~AdvisorService() = default;  // executor_ drains first

AdvisorSession* AdvisorService::SessionFor(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto& slot = sessions_[tenant];
  if (slot == nullptr) {
    SessionOptions opts = options_.session;
    // The op already occupies one pool worker; a nested preparation
    // fan-out would oversubscribe the machine, so tenant sessions
    // prepare single-threaded. Cross-tenant concurrency comes from the
    // executor, cross-tenant sharing from the plan cache.
    opts.tuning.prepare.num_threads = 1;
    opts.tuning.prepare.workers = nullptr;
    opts.tuning.prepare.plan_cache =
        options_.share_plan_cache ? &cache_ : nullptr;
    slot = std::make_unique<AdvisorSession>(whatif_, pool_, std::move(opts));
  }
  return slot.get();
}

std::future<OpResult> AdvisorService::Submit(const std::string& tenant,
                                             ServiceOp op) {
  auto promise = std::make_shared<std::promise<OpResult>>();
  std::future<OpResult> result = promise->get_future();
  AdvisorSession* session = SessionFor(tenant);
  Stopwatch queued;
  const Status submitted = executor_.Submit(
      tenant, [promise, session, op = std::move(op), queued]() mutable {
        OpResult r;
        r.queue_seconds = queued.Elapsed();
        Stopwatch exec;
        switch (op.kind) {
          case ServiceOp::Kind::kAddStatements:
            r.ids = session->AddStatements(op.statements);
            break;
          case ServiceOp::Kind::kRemoveStatements:
            r.status = session->RemoveStatements(op.ids);
            break;
          case ServiceOp::Kind::kTune:
            r.recommendation = session->Tune(op.constraints);
            r.status = r.recommendation.status;
            break;
          case ServiceOp::Kind::kRetune:
            r.recommendation = session->Retune(op.constraints);
            r.status = r.recommendation.status;
            break;
          case ServiceOp::Kind::kAdvanceEpoch:
            session->AdvanceEpoch(op.epoch_ticks);
            break;
          case ServiceOp::Kind::kFeedback:
            switch (op.feedback) {
              case ServiceOp::Feedback::kAccept:
                r.status = session->Accept(op.index);
                break;
              case ServiceOp::Feedback::kVeto:
                r.status = session->Veto(op.index);
                break;
              case ServiceOp::Feedback::kClear:
                r.status = session->ClearFeedback(op.index);
                break;
            }
            break;
        }
        r.exec_seconds = exec.Elapsed();
        promise->set_value(std::move(r));
      });
  if (!submitted.ok()) {
    OpResult r;
    r.status = submitted;
    promise->set_value(std::move(r));
  }
  return result;
}

std::future<OpResult> AdvisorService::AddStatements(
    const std::string& tenant, std::vector<Query> statements) {
  ServiceOp op;
  op.kind = ServiceOp::Kind::kAddStatements;
  op.statements = std::move(statements);
  return Submit(tenant, std::move(op));
}

std::future<OpResult> AdvisorService::RemoveStatements(
    const std::string& tenant, std::vector<QueryId> ids) {
  ServiceOp op;
  op.kind = ServiceOp::Kind::kRemoveStatements;
  op.ids = std::move(ids);
  return Submit(tenant, std::move(op));
}

std::future<OpResult> AdvisorService::Tune(const std::string& tenant,
                                           ConstraintSet constraints) {
  ServiceOp op;
  op.kind = ServiceOp::Kind::kTune;
  op.constraints = std::move(constraints);
  return Submit(tenant, std::move(op));
}

std::future<OpResult> AdvisorService::Retune(const std::string& tenant,
                                             ConstraintSet constraints) {
  ServiceOp op;
  op.kind = ServiceOp::Kind::kRetune;
  op.constraints = std::move(constraints);
  return Submit(tenant, std::move(op));
}

std::future<OpResult> AdvisorService::AdvanceEpoch(const std::string& tenant,
                                                   int64_t ticks) {
  ServiceOp op;
  op.kind = ServiceOp::Kind::kAdvanceEpoch;
  op.epoch_ticks = ticks;
  return Submit(tenant, std::move(op));
}

std::future<OpResult> AdvisorService::Accept(const std::string& tenant,
                                             IndexId index) {
  ServiceOp op;
  op.kind = ServiceOp::Kind::kFeedback;
  op.feedback = ServiceOp::Feedback::kAccept;
  op.index = index;
  return Submit(tenant, std::move(op));
}

std::future<OpResult> AdvisorService::Veto(const std::string& tenant,
                                           IndexId index) {
  ServiceOp op;
  op.kind = ServiceOp::Kind::kFeedback;
  op.feedback = ServiceOp::Feedback::kVeto;
  op.index = index;
  return Submit(tenant, std::move(op));
}

std::future<OpResult> AdvisorService::ClearFeedback(const std::string& tenant,
                                                    IndexId index) {
  ServiceOp op;
  op.kind = ServiceOp::Kind::kFeedback;
  op.feedback = ServiceOp::Feedback::kClear;
  op.index = index;
  return Submit(tenant, std::move(op));
}

void AdvisorService::Drain() { executor_.Drain(); }

ServiceStats AdvisorService::stats() const {
  ServiceStats s;
  s.submitted = executor_.submitted();
  s.completed = executor_.completed();
  s.rejected = executor_.rejected();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    s.num_tenants = static_cast<int>(sessions_.size());
  }
  s.plan_cache = cache_.stats();
  return s;
}

AdvisorSession* AdvisorService::FindSession(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(tenant);
  return it == sessions_.end() ? nullptr : it->second.get();
}

int AdvisorService::num_tenants() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

}  // namespace cophy
