// AdvisorService: the multi-tenant front door of the advisor. Many
// logical tuning sessions (one AdvisorSession per tenant) share one
// worker pool through a SessionExecutor — a tenant's operations run
// strictly in submission order (single-threaded session semantics,
// exactly the serial replay of its own op stream), while distinct
// tenants run concurrently — and share one SharedPlanCache, so a
// statement class any tenant has already prepared costs every later
// tenant zero what-if optimizer calls for templates and zero γ
// enumeration work (see inum/shared_cache.h for why the reuse is
// bit-identical, not just approximately right).
//
// Submission is asynchronous: Submit returns a std::future<OpResult>
// immediately. Per-tenant backpressure (max_inflight_per_tenant) bounds
// each tenant's queue; a rejected op resolves its future right away
// with kResourceExhausted and runs nothing.
#ifndef COPHY_SERVICE_SERVICE_H_
#define COPHY_SERVICE_SERVICE_H_

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/session.h"
#include "service/executor.h"
#include "service/plan_cache.h"

namespace cophy {

/// Service-tier knobs.
struct ServiceOptions {
  /// Worker threads shared by all tenants (<= 0: hardware count). Note
  /// 1 means *no* concurrency — ops run inline at Submit in submission
  /// order, the benchmark's "serialized dispatch" baseline.
  int num_threads = 0;
  /// Per-tenant in-flight cap (queued + running); Submit past it fails
  /// fast with kResourceExhausted. <= 0 means unbounded.
  int max_inflight_per_tenant = 64;
  /// Cross-tenant INUM plan cache (the tentpole). Off = every session
  /// prepares self-contained, exactly as if it ran alone.
  bool share_plan_cache = true;
  /// Lock shards of the shared cache.
  int plan_cache_shards = 16;
  /// Per-tenant session defaults. prepare.num_threads / prepare.workers
  /// / prepare.plan_cache are overridden by the service: sessions
  /// prepare single-threaded (their op already owns one pool worker;
  /// nested fan-out would oversubscribe) and the cache pointer is the
  /// service's, governed by share_plan_cache.
  SessionOptions session;
};

/// One queued operation. Exactly the AdvisorSession verbs, reified so
/// traffic drivers can replay mixed traces through one entry point.
struct ServiceOp {
  enum class Kind {
    kAddStatements,
    kRemoveStatements,
    kTune,
    kRetune,
    kAdvanceEpoch,  ///< tick the tenant's decay clock (core/drift.h)
    kFeedback,      ///< DBA accept/veto/clear on one index
  };
  enum class Feedback { kAccept, kVeto, kClear };
  Kind kind = Kind::kTune;
  std::vector<Query> statements;   ///< kAddStatements
  std::vector<QueryId> ids;        ///< kRemoveStatements
  ConstraintSet constraints;       ///< kTune / kRetune
  int64_t epoch_ticks = 1;         ///< kAdvanceEpoch
  Feedback feedback = Feedback::kAccept;  ///< kFeedback
  IndexId index = -1;                     ///< kFeedback
};

/// What an operation produced. `status` is kResourceExhausted for a
/// backpressure rejection (nothing ran), otherwise the op's own outcome
/// (for Tune/Retune it mirrors recommendation.status).
struct OpResult {
  Status status;
  std::vector<QueryId> ids;        ///< session ids from kAddStatements
  Recommendation recommendation;   ///< from kTune / kRetune
  double queue_seconds = 0;        ///< Submit -> start of execution
  double exec_seconds = 0;         ///< execution proper
};

/// Point-in-time service accounting (all counters monotone).
struct ServiceStats {
  int64_t submitted = 0;  ///< ops accepted
  int64_t completed = 0;  ///< ops finished
  int64_t rejected = 0;   ///< ops refused with kResourceExhausted
  int num_tenants = 0;
  PlanCacheStats plan_cache;  ///< zeros when the shared cache is off
};

class AdvisorService {
 public:
  /// `whatif` and `pool` are shared by every tenant session (the
  /// sessions allocate candidates into the same IndexPool — ids are
  /// assigned once and stable, which is what lets cached plans and
  /// recommendations reference them across tenants). Neither is owned;
  /// both must outlive the service. The constructor warms the catalog's
  /// statistics caches once so all later reads are pure and
  /// thread-safe.
  AdvisorService(WhatIfOptimizer* whatif, IndexPool* pool,
                 ServiceOptions options = {});
  /// Drains all lanes, then tears down the pool.
  ~AdvisorService();

  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  /// Queues `op` on `tenant`'s lane (creating the tenant's session on
  /// first use) and returns its future. Never blocks on the op itself;
  /// a backpressure rejection resolves the future immediately.
  std::future<OpResult> Submit(const std::string& tenant, ServiceOp op);

  /// Convenience wrappers over Submit.
  std::future<OpResult> AddStatements(const std::string& tenant,
                                      std::vector<Query> statements);
  std::future<OpResult> RemoveStatements(const std::string& tenant,
                                         std::vector<QueryId> ids);
  std::future<OpResult> Tune(const std::string& tenant,
                             ConstraintSet constraints);
  std::future<OpResult> Retune(const std::string& tenant,
                               ConstraintSet constraints);
  /// Ticks the tenant's logical epoch clock (weight decay; no-op with
  /// decay disabled). Ordered like any other op on the tenant's lane.
  std::future<OpResult> AdvanceEpoch(const std::string& tenant,
                                     int64_t ticks = 1);
  /// DBA feedback verbs (pin / forbid / forget one index).
  std::future<OpResult> Accept(const std::string& tenant, IndexId index);
  std::future<OpResult> Veto(const std::string& tenant, IndexId index);
  std::future<OpResult> ClearFeedback(const std::string& tenant,
                                      IndexId index);

  /// Blocks until every tenant lane is momentarily empty and idle.
  void Drain();

  ServiceStats stats() const;
  /// The shared cache, or nullptr when share_plan_cache is off.
  SharedPlanCache* plan_cache() {
    return options_.share_plan_cache ? &cache_ : nullptr;
  }
  /// Direct session access for reports and tests. Only safe to *use*
  /// while the tenant's lane is idle (e.g. after Drain); nullptr if the
  /// tenant never submitted.
  AdvisorSession* FindSession(const std::string& tenant);
  int num_tenants() const;

 private:
  /// Lazily creates the tenant's session (single-threaded preparation,
  /// shared cache wired in).
  AdvisorSession* SessionFor(const std::string& tenant);

  WhatIfOptimizer* whatif_;
  IndexPool* pool_;
  ServiceOptions options_;
  SharedPlanCache cache_;
  ThreadPool workers_;
  SessionExecutor executor_;  // declared after workers_: drains first
  mutable std::mutex sessions_mu_;
  std::unordered_map<std::string, std::unique_ptr<AdvisorSession>> sessions_;
};

}  // namespace cophy

#endif  // COPHY_SERVICE_SERVICE_H_
