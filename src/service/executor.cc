#include "service/executor.h"

#include "common/check.h"
#include "common/strings.h"

namespace cophy {

SessionExecutor::SessionExecutor(ThreadPool* pool, int max_queued_per_lane)
    : pool_(pool), max_queued_(max_queued_per_lane) {
  COPHY_CHECK(pool != nullptr);
}

SessionExecutor::~SessionExecutor() { Drain(); }

Status SessionExecutor::Submit(const std::string& lane_name,
                               std::function<void()> task) {
  Lane* lane;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lane = &lanes_[lane_name];
    if (max_queued_ > 0 && lane->inflight >= max_queued_) {
      ++rejected_;
      return Status::ResourceExhausted(
          StrFormat("lane '%s' full (%d ops in flight)", lane_name.c_str(),
                    lane->inflight));
    }
    lane->queue.push_back(std::move(task));
    ++lane->inflight;
    ++submitted_;
    if (lane->running) return Status::Ok();
    lane->running = true;
  }
  // The lane was idle: schedule its pump. On a size-1 pool Post runs the
  // pump (and so the task) inline right here.
  pool_->Post([this, lane] { Pump(lane); });
  return Status::Ok();
}

void SessionExecutor::Pump(Lane* lane) {
  while (true) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (lane->queue.empty()) {
        lane->running = false;
        drain_cv_.notify_all();
        return;
      }
      task = std::move(lane->queue.front());
      lane->queue.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
      --lane->inflight;
    }
    if (pool_->size() > 1) {
      // Yield the worker between tasks so runnable lanes share the pool
      // fairly; the loop above is only for the no-worker inline case.
      pool_->Post([this, lane] { Pump(lane); });
      return;
    }
  }
}

void SessionExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] {
    for (const auto& [name, lane] : lanes_) {
      if (lane.running || !lane.queue.empty()) return false;
    }
    return true;
  });
}

int64_t SessionExecutor::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

int64_t SessionExecutor::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

int64_t SessionExecutor::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace cophy
