// Query AST: SELECT (SPJ + group-by/order-by/aggregation) and UPDATE
// statements, plus the weighted Workload of §2. Following the paper's
// simplification, each statement references a table at most once, so a
// column reference is just a global ColumnId.
#ifndef COPHY_QUERY_QUERY_H_
#define COPHY_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace cophy {

using QueryId = int32_t;

/// A sargable single-column predicate. `quantile` locates the constant
/// in the frequency-ordered value domain and `width` is the covered rank
/// fraction for range predicates; the optimizer turns these into
/// selectivities through the skew-aware catalog statistics.
struct Predicate {
  enum class Op { kEq, kRange };
  ColumnId column = kInvalidColumn;
  Op op = Op::kEq;
  double quantile = 0.0;
  double width = 0.0;  // only for kRange

  std::string ToString(const Catalog& cat) const;
};

/// An equi-join predicate `left = right` between columns of two tables.
struct JoinPredicate {
  ColumnId left = kInvalidColumn;
  ColumnId right = kInvalidColumn;

  std::string ToString(const Catalog& cat) const;
};

/// Aggregate functions that can appear in the SELECT list.
enum class AggFunc { kNone, kCount, kSum, kMin, kMax, kAvg };

/// One SELECT-list item: a plain column or an aggregate over a column.
struct OutputExpr {
  AggFunc func = AggFunc::kNone;
  ColumnId column = kInvalidColumn;  // kInvalidColumn allowed for COUNT(*)
};

/// Statement kinds in a workload (§2: W = W_r ∪ W_u).
enum class StatementKind { kSelect, kUpdate };

/// A statement. For kUpdate, the SELECT parts describe the *query shell*
/// q_r (the scan that locates tuples to update) and `set_columns` the
/// columns written by the update shell q_u.
struct Query {
  QueryId id = -1;
  StatementKind kind = StatementKind::kSelect;
  double weight = 1.0;  ///< f_q: frequency or DBA-assigned importance.

  std::vector<TableId> tables;        ///< referenced tables (each once)
  std::vector<JoinPredicate> joins;   ///< equi-join edges
  std::vector<Predicate> predicates;  ///< sargable filters
  std::vector<OutputExpr> outputs;    ///< SELECT list
  std::vector<ColumnId> group_by;
  std::vector<ColumnId> order_by;

  // UPDATE-only:
  TableId update_table = kInvalidTable;
  std::vector<ColumnId> set_columns;

  bool IsSelect() const { return kind == StatementKind::kSelect; }
  bool IsUpdate() const { return kind == StatementKind::kUpdate; }

  /// Does the statement reference table `t`?
  bool References(TableId t) const;
  /// Position of `t` in `tables`, or -1.
  int TableSlot(TableId t) const;
  /// All predicates that apply to table `t`.
  std::vector<Predicate> PredicatesOn(TableId t, const Catalog& cat) const;
  /// All columns of table `t` the statement touches anywhere (filters,
  /// joins, outputs, group-by, order-by) — what an index must carry to
  /// be covering for this statement.
  std::vector<ColumnId> ColumnsUsed(TableId t, const Catalog& cat) const;

  /// SQL-ish rendering for logs and examples.
  std::string ToString(const Catalog& cat) const;
};

/// A weighted workload (the paper's W). Statements keep stable ids equal
/// to their position.
class Workload {
 public:
  Workload() = default;

  /// Appends a statement, assigning its id. Returns the id.
  QueryId Add(Query q);

  const Query& operator[](QueryId id) const { return statements_[id]; }
  int size() const { return static_cast<int>(statements_.size()); }
  const std::vector<Query>& statements() const { return statements_; }

  /// Ids of SELECT statements and query shells (the paper's W_r view is
  /// "selects + shells"; shells are exposed through the Query itself).
  std::vector<QueryId> SelectIds() const;
  /// Ids of UPDATE statements (W_u).
  std::vector<QueryId> UpdateIds() const;

  /// A new workload holding the first `n` statements (used by the
  /// workload-size sweeps W_250 ⊂ W_500 ⊂ W_1000).
  Workload Prefix(int n) const;

 private:
  std::vector<Query> statements_;
};

}  // namespace cophy

#endif  // COPHY_QUERY_QUERY_H_
