#include "query/query.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace cophy {

std::string Predicate::ToString(const Catalog& cat) const {
  const std::string& c = cat.column(column).name;
  if (op == Op::kEq) {
    return StrFormat("%s = :v%.3f", c.c_str(), quantile);
  }
  return StrFormat("%s BETWEEN :v%.3f AND :v%.3f", c.c_str(), quantile,
                   quantile + width);
}

std::string JoinPredicate::ToString(const Catalog& cat) const {
  return cat.column(left).name + " = " + cat.column(right).name;
}

bool Query::References(TableId t) const {
  return std::find(tables.begin(), tables.end(), t) != tables.end();
}

int Query::TableSlot(TableId t) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i] == t) return static_cast<int>(i);
  }
  return -1;
}

std::vector<Predicate> Query::PredicatesOn(TableId t,
                                           const Catalog& cat) const {
  std::vector<Predicate> out;
  for (const Predicate& p : predicates) {
    if (p.column != kInvalidColumn && cat.column(p.column).table == t) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<ColumnId> Query::ColumnsUsed(TableId t, const Catalog& cat) const {
  std::vector<ColumnId> cols;
  auto add = [&](ColumnId c) {
    if (c == kInvalidColumn) return;
    if (cat.column(c).table != t) return;
    if (std::find(cols.begin(), cols.end(), c) == cols.end()) cols.push_back(c);
  };
  for (const Predicate& p : predicates) add(p.column);
  for (const JoinPredicate& j : joins) {
    add(j.left);
    add(j.right);
  }
  for (const OutputExpr& o : outputs) add(o.column);
  for (ColumnId c : group_by) add(c);
  for (ColumnId c : order_by) add(c);
  for (ColumnId c : set_columns) add(c);
  return cols;
}

namespace {
const char* AggName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}
}  // namespace

std::string Query::ToString(const Catalog& cat) const {
  std::vector<std::string> parts;
  if (IsUpdate()) {
    std::vector<std::string> sets;
    for (ColumnId c : set_columns) {
      sets.push_back(cat.column(c).name + " = :new");
    }
    std::string s = "UPDATE " + cat.table(update_table).name + " SET " +
                    StrJoin(sets, ", ");
    if (!predicates.empty()) {
      std::vector<std::string> preds;
      for (const Predicate& p : predicates) preds.push_back(p.ToString(cat));
      s += " WHERE " + StrJoin(preds, " AND ");
    }
    return s;
  }
  std::vector<std::string> sel;
  for (const OutputExpr& o : outputs) {
    if (o.func == AggFunc::kNone) {
      sel.push_back(cat.column(o.column).name);
    } else if (o.column == kInvalidColumn) {
      sel.push_back(std::string(AggName(o.func)) + "(*)");
    } else {
      sel.push_back(std::string(AggName(o.func)) + "(" +
                    cat.column(o.column).name + ")");
    }
  }
  std::string s = "SELECT " + StrJoin(sel, ", ");
  std::vector<std::string> froms;
  for (TableId t : tables) froms.push_back(cat.table(t).name);
  s += " FROM " + StrJoin(froms, ", ");
  std::vector<std::string> conds;
  for (const JoinPredicate& j : joins) conds.push_back(j.ToString(cat));
  for (const Predicate& p : predicates) conds.push_back(p.ToString(cat));
  if (!conds.empty()) s += " WHERE " + StrJoin(conds, " AND ");
  if (!group_by.empty()) {
    std::vector<std::string> g;
    for (ColumnId c : group_by) g.push_back(cat.column(c).name);
    s += " GROUP BY " + StrJoin(g, ", ");
  }
  if (!order_by.empty()) {
    std::vector<std::string> o;
    for (ColumnId c : order_by) o.push_back(cat.column(c).name);
    s += " ORDER BY " + StrJoin(o, ", ");
  }
  return s;
}

QueryId Workload::Add(Query q) {
  q.id = static_cast<QueryId>(statements_.size());
  COPHY_CHECK(!q.tables.empty() || q.IsUpdate());
  statements_.push_back(std::move(q));
  return statements_.back().id;
}

std::vector<QueryId> Workload::SelectIds() const {
  std::vector<QueryId> out;
  for (const Query& q : statements_) {
    if (q.IsSelect()) out.push_back(q.id);
  }
  return out;
}

std::vector<QueryId> Workload::UpdateIds() const {
  std::vector<QueryId> out;
  for (const Query& q : statements_) {
    if (q.IsUpdate()) out.push_back(q.id);
  }
  return out;
}

Workload Workload::Prefix(int n) const {
  Workload w;
  for (int i = 0; i < n && i < size(); ++i) w.Add(statements_[i]);
  return w;
}

}  // namespace cophy
