// End-to-end tests for the CoPhy advisor: tuning under constraints,
// interactive retuning, early termination, and Pareto exploration.
#include <gtest/gtest.h>

#include <cmath>

#include "optimizer/simulator.h"
#include "baselines/advisor.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "workload/generator.h"

namespace cophy {
namespace {

class CoPhyTest : public ::testing::Test {
 protected:
  void Prepare(int num_queries, uint64_t seed = 42,
               double update_fraction = 0.0, double z = 0.0) {
    cat_ = MakeTpchCatalog(0.1, z);
    pool_ = IndexPool();
    sim_ = std::make_unique<SystemSimulator>(&cat_, &pool_,
                                             CostModel::SystemA());
    WorkloadOptions o;
    o.num_statements = num_queries;
    o.seed = seed;
    o.update_fraction = update_fraction;
    w_ = MakeHomogeneousWorkload(cat_, o);
    CoPhyOptions opts;
    opts.gap_target = 0.05;
    opts.node_limit = 3000;
    advisor_ = std::make_unique<CoPhy>(sim_.get(), &pool_, w_, opts);
    ASSERT_TRUE(advisor_->Prepare().ok());
  }

  double DataBytes() const { return cat_.TotalDataBytes(); }

  Catalog cat_;
  IndexPool pool_;
  std::unique_ptr<SystemSimulator> sim_;
  std::unique_ptr<CoPhy> advisor_;
  Workload w_;
};

TEST_F(CoPhyTest, RecommendsWithinBudget) {
  Prepare(20);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * DataBytes());
  const Recommendation rec = advisor_->Tune(cs);
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  EXPECT_FALSE(rec.configuration.empty());
  EXPECT_LE(rec.configuration.SizeBytes(pool_, cat_), 0.5 * DataBytes());
  EXPECT_GT(rec.objective, 0);
  EXPECT_GE(rec.gap, 0);
}

TEST_F(CoPhyTest, RecommendationImprovesGroundTruth) {
  Prepare(20);
  ConstraintSet cs;
  cs.SetStorageBudget(1.0 * DataBytes());
  const Recommendation rec = advisor_->Tune(cs);
  ASSERT_TRUE(rec.status.ok());
  // perf measured by direct what-if calls (the paper's §5.1 metric).
  EXPECT_GT(Perf(*sim_, w_, rec.configuration), 0.2);
}

TEST_F(CoPhyTest, MoreBudgetNeverHurtsMuch) {
  Prepare(15);
  std::vector<double> objectives;
  for (double m : {0.25, 0.5, 1.0, 2.0}) {
    ConstraintSet cs;
    cs.SetStorageBudget(m * DataBytes());
    const Recommendation rec = advisor_->Tune(cs);
    ASSERT_TRUE(rec.status.ok());
    objectives.push_back(rec.objective);
  }
  // Estimated workload cost should be non-increasing in the budget
  // (allow the 5% gap as slack).
  for (size_t i = 1; i < objectives.size(); ++i) {
    EXPECT_LE(objectives[i], objectives[i - 1] * 1.06);
  }
}

TEST_F(CoPhyTest, BipIsCompact) {
  Prepare(25);
  ConstraintSet cs;
  cs.SetStorageBudget(DataBytes());
  const Recommendation rec = advisor_->Tune(cs);
  ASSERT_TRUE(rec.status.ok());
  // The z count equals the candidate count; y is ΣK_q; x is the γ
  // table volume — all linear in the input (Theorem 1's point).
  EXPECT_EQ(rec.bip.z_variables, static_cast<int64_t>(rec.num_candidates));
  EXPECT_GT(rec.bip.y_variables, 0);
  EXPECT_GE(rec.bip.x_variables, rec.bip.y_variables);
}

TEST_F(CoPhyTest, InfeasibleConstraintsReported) {
  Prepare(10);
  ConstraintSet cs;
  cs.SetStorageBudget(DataBytes());
  // Impossible: every query 100x faster.
  cs.ForEachQueryAssertSpeedup(w_, 0.01);
  const Recommendation rec = advisor_->Tune(cs);
  EXPECT_EQ(rec.status.code(), StatusCode::kInfeasible);
}

TEST_F(CoPhyTest, QueryCostConstraintHonored) {
  Prepare(12);
  // First, find what's achievable for statement 0.
  ConstraintSet base;
  base.SetStorageBudget(DataBytes());
  const Recommendation unconstrained = advisor_->Tune(base);
  ASSERT_TRUE(unconstrained.status.ok());
  const double best0 =
      advisor_->inum().ShellCost(0, Configuration(advisor_->candidates()));
  const double base0 = advisor_->inum().ShellCost(0, Configuration::Empty());
  if (best0 > 0.9 * base0) GTEST_SKIP() << "statement 0 not improvable";

  const double factor = std::min(0.95, 1.2 * best0 / base0);
  ConstraintSet cs;
  cs.SetStorageBudget(DataBytes());
  cs.AddQueryCostConstraint({0, factor, 0.0});
  const Recommendation rec = advisor_->Tune(cs);
  ASSERT_TRUE(rec.status.ok());
  EXPECT_LE(advisor_->inum().ShellCost(0, rec.configuration),
            factor * base0 * (1 + 1e-6));
}

TEST_F(CoPhyTest, EarlyTerminationCallback) {
  Prepare(20);
  int progress_reports = 0;
  CoPhyOptions opts;
  opts.gap_target = 0.0;  // would search long...
  opts.node_limit = 100000;
  opts.callback = [&](const lp::MipProgress& p) {
    ++progress_reports;
    return !(p.has_incumbent && p.gap < 0.5);  // ...but we stop early
  };
  CoPhy advisor(sim_.get(), &pool_, w_, opts);
  ASSERT_TRUE(advisor.Prepare().ok());
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * DataBytes());
  const Recommendation rec = advisor.Tune(cs);
  ASSERT_TRUE(rec.status.ok());
  EXPECT_GE(progress_reports, 1);
  EXPECT_FALSE(rec.configuration.empty());
}

TEST_F(CoPhyTest, RetuneAfterAddingCandidatesIsConsistent) {
  Prepare(15);
  ConstraintSet cs;
  cs.SetStorageBudget(0.8 * DataBytes());
  const Recommendation first = advisor_->Tune(cs);
  ASSERT_TRUE(first.status.ok());

  // Hand-craft a few extra candidates (as the paper's §5.4 interactive
  // scenario does) and retune.
  Rng rng(1234);
  std::vector<IndexId> extra =
      PadWithRandomIndexes(cat_, 10, rng, pool_);
  ASSERT_TRUE(advisor_->AddCandidates(extra).ok());
  const Recommendation second = advisor_->Retune(cs);
  ASSERT_TRUE(second.status.ok());
  // More candidates can only improve the (estimated) objective, modulo
  // the optimality gap.
  EXPECT_LE(second.objective, first.objective * 1.06);
  EXPECT_EQ(second.num_candidates, first.num_candidates + 10);
  // INUM work for the retune is incremental only.
  EXPECT_LT(second.timings.inum_seconds, first.timings.inum_seconds + 1.0);
}

TEST_F(CoPhyTest, RestrictThenReAddCandidate) {
  // A candidate excluded via RestrictCandidates can come back through
  // AddCandidates without re-preparation (its INUM cache is live).
  Prepare(10);
  const std::vector<IndexId> all = advisor_->candidates();
  ASSERT_GE(all.size(), 4u);
  std::vector<IndexId> subset(all.begin(), all.end() - 2);
  ASSERT_TRUE(advisor_->RestrictCandidates(subset).ok());
  const std::vector<IndexId> back(all.end() - 2, all.end());
  ASSERT_TRUE(advisor_->AddCandidates(back).ok());
  EXPECT_EQ(advisor_->candidates().size(), all.size());
  // Re-adding an active candidate still fails.
  EXPECT_FALSE(advisor_->AddCandidates({all[0]}).ok());
}

TEST_F(CoPhyTest, RestrictCandidatesSubsets) {
  Prepare(15);
  const auto& all = advisor_->candidates();
  std::vector<IndexId> half(all.begin(), all.begin() + all.size() / 2);
  ASSERT_TRUE(advisor_->RestrictCandidates(half).ok());
  ConstraintSet cs;
  cs.SetStorageBudget(DataBytes());
  const Recommendation rec = advisor_->Tune(cs);
  ASSERT_TRUE(rec.status.ok());
  for (IndexId id : rec.configuration.ids()) {
    EXPECT_NE(std::find(half.begin(), half.end(), id), half.end());
  }
  EXPECT_FALSE(advisor_->RestrictCandidates({999999}).ok());
}

TEST_F(CoPhyTest, UpdateHeavyWorkloadAvoidsWriteHotIndexes) {
  Prepare(40, 77, /*update_fraction=*/0.5);
  ConstraintSet cs;
  cs.SetStorageBudget(DataBytes());
  const Recommendation rec = advisor_->Tune(cs);
  ASSERT_TRUE(rec.status.ok());
  // The chosen set must pay for itself: estimated total cost with the
  // configuration (including maintenance) beats the base cost.
  const double base = WorkloadCost(*sim_, w_, Configuration::Empty());
  const double with = WorkloadCost(*sim_, w_, rec.configuration);
  EXPECT_LT(with, base);
}

// --- Soft constraints / Pareto -----------------------------------------

TEST_F(CoPhyTest, SoftGridSweepsTradeoff) {
  Prepare(15);
  ConstraintSet cs;
  cs.AddSoftStorage(0.0);  // §5.4: soft budget of zero
  const std::vector<double> lambdas{0.0, 0.25, 0.5, 0.75, 1.0};
  const auto points = advisor_->TuneSoftGrid(cs, lambdas);
  ASSERT_EQ(points.size(), lambdas.size());
  // λ = 0: pure size minimization → empty configuration.
  EXPECT_EQ(points[0].configuration.size(), 0);
  EXPECT_DOUBLE_EQ(points[0].soft_value, 0.0);
  // λ = 1: pure cost minimization → richest configuration.
  EXPECT_GT(points.back().configuration.size(), 0);
  // Monotone trade-off along λ (cost falls, size grows), modulo gap.
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].workload_cost, points[i - 1].workload_cost * 1.08);
    EXPECT_GE(points[i].soft_value, points[i - 1].soft_value * 0.92 - 1.0);
  }
}

TEST_F(CoPhyTest, ChordProducesParetoCurve) {
  Prepare(12);
  ConstraintSet cs;
  cs.AddSoftStorage(0.0);
  const auto points = advisor_->TuneSoftChord(cs, /*epsilon=*/0.02,
                                              /*max_points=*/10);
  ASSERT_GE(points.size(), 2u);
  EXPECT_LE(points.size(), 10u);
  // Sorted by λ descending; endpoints are λ=1 and λ=0.
  EXPECT_DOUBLE_EQ(points.front().lambda, 1.0);
  EXPECT_DOUBLE_EQ(points.back().lambda, 0.0);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].lambda, points[i - 1].lambda);
  }
}

TEST_F(CoPhyTest, SkewedDataStillTunes) {
  Prepare(15, 42, 0.0, /*z=*/2.0);
  ConstraintSet cs;
  cs.SetStorageBudget(DataBytes());
  const Recommendation rec = advisor_->Tune(cs);
  ASSERT_TRUE(rec.status.ok());
  EXPECT_GT(Perf(*sim_, w_, rec.configuration), 0.1);
}

TEST_F(CoPhyTest, PortableAcrossSystems) {
  // The same tuning session logic runs against both cost models and
  // produces valid (possibly different) recommendations.
  Prepare(15);
  ConstraintSet cs;
  cs.SetStorageBudget(DataBytes());
  const Recommendation rec_a = advisor_->Tune(cs);
  ASSERT_TRUE(rec_a.status.ok());

  IndexPool pool_b;
  SystemSimulator sim_b(&cat_, &pool_b, CostModel::SystemB());
  CoPhyOptions opts;
  opts.node_limit = 3000;
  CoPhy advisor_b(&sim_b, &pool_b, w_, opts);
  ASSERT_TRUE(advisor_b.Prepare().ok());
  const Recommendation rec_b = advisor_b.Tune(cs);
  ASSERT_TRUE(rec_b.status.ok());
  EXPECT_GT(Perf(sim_b, w_, rec_b.configuration), 0.1);
}

}  // namespace
}  // namespace cophy
