// Cross-module integration tests: miniature versions of the paper's
// experiments wiring every subsystem together (catalog → workload →
// CGen → INUM → BIPGen → solver → ground-truth evaluation), across
// systems, skews, and workload families.
#include <gtest/gtest.h>

#include <cmath>

#include "optimizer/simulator.h"
#include "baselines/advisor.h"
#include "baselines/cophy_advisor.h"
#include "baselines/greedy_advisor.h"
#include "baselines/ilp_advisor.h"
#include "baselines/relaxation_advisor.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "workload/generator.h"

namespace cophy {
namespace {

/// Miniature Table-1 cell: run CoPhy and a tool on one environment and
/// return the perf pair.
struct CellResult {
  double perf_cophy = 0;
  double perf_tool = 0;
};

CellResult RunCell(double z, bool het, bool system_b, int n) {
  Catalog cat = MakeTpchCatalog(0.1, z);
  IndexPool pool;
  SystemSimulator sim(&cat, &pool,
                      system_b ? CostModel::SystemB() : CostModel::SystemA());
  WorkloadOptions o;
  o.num_statements = n;
  o.seed = 5;
  Workload w = het ? MakeHeterogeneousWorkload(cat, o)
                   : MakeHomogeneousWorkload(cat, o);
  ConstraintSet cs;
  cs.SetStorageBudget(cat.TotalDataBytes());

  CoPhyOptions copts;
  copts.node_limit = 2000;
  CoPhyAdvisor cophy(&sim, &pool, w, copts);
  CellResult r;
  const AdvisorResult rc = cophy.Recommend(cs);
  EXPECT_TRUE(rc.status.ok());
  r.perf_cophy = Perf(sim, w, rc.configuration);

  if (system_b) {
    GreedyAdvisor tool(&sim, &pool, w, GreedyOptions{});
    r.perf_tool = Perf(sim, w, tool.Recommend(cs).configuration);
  } else {
    RelaxationOptions ropts;
    ropts.time_limit_seconds = 30;
    RelaxationAdvisor tool(&sim, &pool, w, ropts);
    r.perf_tool = Perf(sim, w, tool.Recommend(cs).configuration);
  }
  return r;
}

/// Table-1 shape at miniature scale: CoPhy ≥ tool − ε on every cell.
class Table1CellTest
    : public ::testing::TestWithParam<std::tuple<double, bool, bool>> {};

TEST_P(Table1CellTest, CoPhyCompetitiveEverywhere) {
  const auto [z, het, system_b] = GetParam();
  const CellResult r = RunCell(z, het, system_b, 25);
  EXPECT_GT(r.perf_cophy, 0.05);
  EXPECT_GE(r.perf_cophy, r.perf_tool - 0.06)
      << "z=" << z << " het=" << het << " systemB=" << system_b;
}

INSTANTIATE_TEST_SUITE_P(
    Cells, Table1CellTest,
    ::testing::Combine(::testing::Values(0.0, 2.0), ::testing::Bool(),
                       ::testing::Bool()));

TEST(IntegrationTest, CoPhyAndIlpAgreeOnQuality) {
  // §5.3: the two BIP formulations land within a few percent of each
  // other in solution quality (CoPhy slightly ahead).
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  IndexPool pool;
  SystemSimulator sim(&cat, &pool, CostModel::SystemA());
  WorkloadOptions o;
  o.num_statements = 20;
  o.seed = 9;
  Workload w = MakeHomogeneousWorkload(cat, o);
  ConstraintSet cs;
  cs.SetStorageBudget(cat.TotalDataBytes());

  CoPhyOptions copts;
  copts.node_limit = 3000;
  CoPhyAdvisor cophy(&sim, &pool, w, copts);
  IlpAdvisor ilp(&sim, &pool, w, IlpOptions{});
  const double perf_cophy = Perf(sim, w, cophy.Recommend(cs).configuration);
  const double perf_ilp = Perf(sim, w, ilp.Recommend(cs).configuration);
  EXPECT_GT(perf_ilp, 0.1);
  EXPECT_GE(perf_cophy, perf_ilp - 0.05);
}

TEST(IntegrationTest, WhatIfCallAccountingMatchesTheStory) {
  // CoPhy pays what-if calls only during INUM preprocessing (a few per
  // statement); Tool-A pays them throughout. This asymmetry is the
  // foundation of the execution-time results.
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  IndexPool pool;
  SystemSimulator sim(&cat, &pool, CostModel::SystemA());
  WorkloadOptions o;
  o.num_statements = 15;
  o.seed = 13;
  Workload w = MakeHomogeneousWorkload(cat, o);
  ConstraintSet cs;
  cs.SetStorageBudget(cat.TotalDataBytes());

  CoPhyOptions copts;
  copts.node_limit = 1500;
  CoPhyAdvisor cophy(&sim, &pool, w, copts);
  const AdvisorResult rc = cophy.Recommend(cs);
  RelaxationOptions ropts;
  ropts.time_limit_seconds = 30;
  RelaxationAdvisor tool_a(&sim, &pool, w, ropts);
  const AdvisorResult ra = tool_a.Recommend(cs);
  ASSERT_TRUE(rc.status.ok());
  ASSERT_TRUE(ra.status.ok());
  // CoPhy's what-if calls ≈ ΣK_q (bounded per statement); Tool-A's grow
  // with candidates × queries.
  EXPECT_LT(rc.whatif_calls, ra.whatif_calls);
}

TEST(IntegrationTest, UpdateWorkloadChangesTheRecommendation) {
  // With heavy updates, maintenance costs must steer the selection: the
  // read-only recommendation is costlier than the update-aware one when
  // both are priced on the mixed workload.
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  IndexPool pool;
  SystemSimulator sim(&cat, &pool, CostModel::SystemA());
  WorkloadOptions ro;
  ro.num_statements = 30;
  ro.seed = 17;
  Workload read_only = MakeHomogeneousWorkload(cat, ro);
  WorkloadOptions mo = ro;
  mo.update_fraction = 0.6;
  mo.seed = 17;
  Workload mixed = MakeHomogeneousWorkload(cat, mo);

  ConstraintSet cs;
  cs.SetStorageBudget(cat.TotalDataBytes());
  CoPhyOptions copts;
  copts.node_limit = 2000;

  CoPhy read_advisor(&sim, &pool, read_only, copts);
  ASSERT_TRUE(read_advisor.Prepare().ok());
  const Recommendation rec_read = read_advisor.Tune(cs);
  ASSERT_TRUE(rec_read.status.ok());

  CoPhy mixed_advisor(&sim, &pool, mixed, copts);
  ASSERT_TRUE(mixed_advisor.Prepare().ok());
  const Recommendation rec_mixed = mixed_advisor.Tune(cs);
  ASSERT_TRUE(rec_mixed.status.ok());

  const double mixed_cost_with_read_config =
      WorkloadCost(sim, mixed, rec_read.configuration);
  const double mixed_cost_with_mixed_config =
      WorkloadCost(sim, mixed, rec_mixed.configuration);
  EXPECT_LE(mixed_cost_with_mixed_config,
            mixed_cost_with_read_config * 1.02);
}

TEST(IntegrationTest, SkewShiftsTheChosenIndexes) {
  // z = 2 makes some predicates far more selective; the chosen
  // configurations should differ from the uniform case.
  CoPhyOptions copts;
  copts.node_limit = 1500;
  std::vector<std::string> flat_names, skew_names;
  for (double z : {0.0, 2.0}) {
    Catalog cat = MakeTpchCatalog(0.1, z);
    IndexPool pool;
    SystemSimulator sim(&cat, &pool, CostModel::SystemA());
    WorkloadOptions o;
    o.num_statements = 25;
    o.seed = 19;
    Workload w = MakeHomogeneousWorkload(cat, o);
    ConstraintSet cs;
    cs.SetStorageBudget(0.3 * cat.TotalDataBytes());
    CoPhy advisor(&sim, &pool, w, copts);
    ASSERT_TRUE(advisor.Prepare().ok());
    const Recommendation rec = advisor.Tune(cs);
    ASSERT_TRUE(rec.status.ok());
    auto& names = z == 0.0 ? flat_names : skew_names;
    for (IndexId id : rec.configuration.ids()) {
      names.push_back(pool[id].ToString(cat));
    }
  }
  EXPECT_NE(flat_names, skew_names);
}

TEST(IntegrationTest, HeterogeneousEndToEnd) {
  Catalog cat = MakeTpchCatalog(0.1, 1.0);
  IndexPool pool;
  SystemSimulator sim(&cat, &pool, CostModel::SystemB());
  WorkloadOptions o;
  o.num_statements = 40;
  o.seed = 23;
  o.update_fraction = 0.1;
  o.randomize_weights = true;
  Workload w = MakeHeterogeneousWorkload(cat, o);
  ConstraintSet cs;
  cs.SetStorageBudget(cat.TotalDataBytes());
  cs.AddMaxIndexesPerTable(cat, 3);
  CoPhyOptions copts;
  copts.node_limit = 2000;
  CoPhy advisor(&sim, &pool, w, copts);
  ASSERT_TRUE(advisor.Prepare().ok());
  const Recommendation rec = advisor.Tune(cs);
  ASSERT_TRUE(rec.status.ok());
  for (TableId t = 0; t < cat.num_tables(); ++t) {
    EXPECT_LE(rec.configuration.OnTable(t, pool).size(), 3u);
  }
  EXPECT_GT(Perf(sim, w, rec.configuration), 0.0);
}

}  // namespace
}  // namespace cophy
