// Unit tests for catalog/: schema construction, statistics, and the
// skew-aware selectivity primitives.
#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace cophy {
namespace {

TEST(CatalogTest, AddAndLookup) {
  Catalog cat;
  const TableId t = cat.AddTable("t", 1000);
  const ColumnId a = cat.AddColumn(t, "a", 4, 100);
  const ColumnId b = cat.AddColumn(t, "b", 8, 10);
  EXPECT_EQ(cat.num_tables(), 1);
  EXPECT_EQ(cat.num_columns(), 2);
  EXPECT_EQ(cat.FindTable("t"), t);
  EXPECT_EQ(cat.FindTable("missing"), kInvalidTable);
  EXPECT_EQ(cat.FindColumn(t, "a"), a);
  EXPECT_EQ(cat.FindColumn(t, "zzz"), kInvalidColumn);
  EXPECT_EQ(cat.column(b).width_bytes, 8);
  EXPECT_EQ(cat.table(t).row_count, 1000u);
}

TEST(CatalogTest, DistinctCappedByRowCount) {
  Catalog cat;
  const TableId t = cat.AddTable("t", 50);
  const ColumnId c = cat.AddColumn(t, "c", 4, 1000000);
  EXPECT_EQ(cat.column(c).distinct, 50u);
}

TEST(CatalogTest, RowWidthAndPages) {
  Catalog cat;
  const TableId t = cat.AddTable("t", 8192);
  cat.AddColumn(t, "a", 4, 10);
  cat.AddColumn(t, "b", 4, 10);
  EXPECT_DOUBLE_EQ(cat.RowWidth(t), 8.0);
  // 8192 rows * 8 bytes = 64 KiB = 8 pages.
  EXPECT_DOUBLE_EQ(cat.TablePages(t), 8.0);
}

TEST(CatalogTest, PrimaryKeyValidation) {
  Catalog cat;
  const TableId t = cat.AddTable("t", 10);
  const ColumnId c = cat.AddColumn(t, "c", 4, 10);
  cat.SetPrimaryKey(t, {c});
  EXPECT_EQ(cat.table(t).primary_key.size(), 1u);
}

TEST(CatalogTest, EqSelectivityUniform) {
  Catalog cat;
  const TableId t = cat.AddTable("t", 1000);
  const ColumnId c = cat.AddColumn(t, "c", 4, 100, /*zipf_z=*/0.0);
  EXPECT_NEAR(cat.EqSelectivity(c, 0.0), 0.01, 1e-12);
  EXPECT_NEAR(cat.EqSelectivity(c, 0.5), 0.01, 1e-12);
  EXPECT_NEAR(cat.EqSelectivity(c, 0.999), 0.01, 1e-12);
}

TEST(CatalogTest, EqSelectivitySkewHotVsCold) {
  Catalog cat;
  const TableId t = cat.AddTable("t", 100000);
  const ColumnId c = cat.AddColumn(t, "c", 4, 1000, /*zipf_z=*/2.0);
  const double hot = cat.EqSelectivity(c, 0.0);    // rank 1
  const double cold = cat.EqSelectivity(c, 0.99);  // deep tail
  EXPECT_GT(hot, 0.5);          // z=2 head carries most of the mass
  EXPECT_LT(cold, 1e-5);        // tail values are very selective
}

TEST(CatalogTest, RangeSelectivityUniformMatchesWidth) {
  Catalog cat;
  const TableId t = cat.AddTable("t", 10000);
  const ColumnId c = cat.AddColumn(t, "c", 4, 1000, 0.0);
  EXPECT_NEAR(cat.RangeSelectivity(c, 0.2, 0.3), 0.3, 0.01);
  EXPECT_NEAR(cat.RangeSelectivity(c, 0.0, 1.0), 1.0, 1e-9);
}

TEST(CatalogTest, RangeSelectivitySkewDependsOnPosition) {
  Catalog cat;
  const TableId t = cat.AddTable("t", 100000);
  const ColumnId c = cat.AddColumn(t, "c", 4, 1000, 2.0);
  const double head = cat.RangeSelectivity(c, 0.0, 0.1);
  const double tail = cat.RangeSelectivity(c, 0.9, 0.1);
  EXPECT_GT(head, 0.9);   // the hot head covers nearly all rows
  EXPECT_LT(tail, 0.01);  // the same width in the tail covers few
}

// --- TPC-H schema ------------------------------------------------------

TEST(TpchCatalogTest, AllEightTablesPresent) {
  Catalog cat = MakeTpchCatalog(1.0, 0.0);
  for (const char* name :
       {"region", "nation", "supplier", "customer", "part", "partsupp",
        "orders", "lineitem"}) {
    EXPECT_NE(cat.FindTable(name), kInvalidTable) << name;
  }
  EXPECT_EQ(cat.num_tables(), 8);
}

TEST(TpchCatalogTest, RowCountsScale) {
  Catalog sf1 = MakeTpchCatalog(1.0, 0.0);
  Catalog sf01 = MakeTpchCatalog(0.1, 0.0);
  const TableId l1 = sf1.FindTable("lineitem");
  const TableId l01 = sf01.FindTable("lineitem");
  EXPECT_EQ(sf1.table(l1).row_count, 6000000u);
  EXPECT_EQ(sf01.table(l01).row_count, 600000u);
}

TEST(TpchCatalogTest, TotalSizeAboutOneGigabyte) {
  // The paper uses a 1 GB TPC-H database; our statistics should agree
  // to within a factor.
  Catalog cat = MakeTpchCatalog(1.0, 0.0);
  const double gb = cat.TotalDataBytes() / 1e9;
  EXPECT_GT(gb, 0.6);
  EXPECT_LT(gb, 2.0);
}

TEST(TpchCatalogTest, PrimaryKeysSet) {
  Catalog cat = MakeTpchCatalog(1.0, 0.0);
  for (TableId t = 0; t < cat.num_tables(); ++t) {
    EXPECT_FALSE(cat.table(t).primary_key.empty())
        << cat.table(t).name;
  }
  // Composite PKs where TPC-H has them.
  EXPECT_EQ(cat.table(cat.FindTable("lineitem")).primary_key.size(), 2u);
  EXPECT_EQ(cat.table(cat.FindTable("partsupp")).primary_key.size(), 2u);
}

TEST(TpchCatalogTest, KeysAreNeverSkewed) {
  Catalog cat = MakeTpchCatalog(1.0, 2.0);
  const TableId orders = cat.FindTable("orders");
  const ColumnId ok = cat.FindColumn(orders, "o_orderkey");
  const ColumnId cust = cat.FindColumn(orders, "o_custkey");
  EXPECT_DOUBLE_EQ(cat.column(ok).zipf_z, 0.0);   // unique key: flat
  EXPECT_DOUBLE_EQ(cat.column(cust).zipf_z, 2.0); // FK: skewed
}

TEST(TpchCatalogTest, SkewChangesSelectivities) {
  Catalog flat = MakeTpchCatalog(1.0, 0.0);
  Catalog skew = MakeTpchCatalog(1.0, 2.0);
  const TableId li = flat.FindTable("lineitem");
  const ColumnId sd_flat = flat.FindColumn(li, "l_shipdate");
  const ColumnId sd_skew = skew.FindColumn(skew.FindTable("lineitem"),
                                           "l_shipdate");
  EXPECT_GT(skew.EqSelectivity(sd_skew, 0.0),
            10 * flat.EqSelectivity(sd_flat, 0.0));
}

}  // namespace
}  // namespace cophy
