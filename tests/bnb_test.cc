// Unit + property tests for lp/branch_and_bound: the generic MIP solver
// validated against brute force on random binary programs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "lp/branch_and_bound.h"
#include "lp/simplex.h"

namespace cophy::lp {
namespace {

/// Brute-force optimum over all 0/1 assignments of a pure-binary model.
double BruteForce(const Model& m, std::vector<double>* arg = nullptr) {
  const int n = m.num_variables();
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> x(n);
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    for (int i = 0; i < n; ++i) x[i] = (mask >> i) & 1 ? 1.0 : 0.0;
    if (!m.IsFeasible(x)) continue;
    const double obj = m.ObjectiveValue(x);
    if (obj < best) {
      best = obj;
      if (arg != nullptr) *arg = x;
    }
  }
  return best;
}

TEST(BnbTest, SolvesSmallKnapsack) {
  // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 8  → {a, c} = 14.
  Model m;
  const VarId a = m.AddBinary(-10);
  const VarId b = m.AddBinary(-6);
  const VarId c = m.AddBinary(-4);
  m.AddRow({{{a, 5.0}, {b, 4.0}, {c, 3.0}}, Sense::kLe, 8.0, ""});
  const MipSolution s = SolveMip(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -14.0, 1e-6);
  EXPECT_NEAR(s.x[a], 1.0, 1e-6);
  EXPECT_NEAR(s.x[b], 0.0, 1e-6);
  EXPECT_NEAR(s.x[c], 1.0, 1e-6);
}

TEST(BnbTest, InfeasibleModel) {
  Model m;
  const VarId a = m.AddBinary(1);
  m.AddRow({{{a, 1.0}}, Sense::kGe, 2.0, ""});
  EXPECT_EQ(SolveMip(m).status.code(), StatusCode::kInfeasible);
}

TEST(BnbTest, EqualityCoverConstraint) {
  // Exactly two of three must be picked; minimize cost.
  Model m;
  const VarId a = m.AddBinary(3);
  const VarId b = m.AddBinary(1);
  const VarId c = m.AddBinary(2);
  m.AddRow({{{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::kEq, 2.0, ""});
  const MipSolution s = SolveMip(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 3.0, 1e-6);  // b + c
}

TEST(BnbTest, WarmStartAcceptedAsIncumbent) {
  Model m;
  const VarId a = m.AddBinary(-5);
  const VarId b = m.AddBinary(-4);
  m.AddRow({{{a, 1.0}, {b, 1.0}}, Sense::kLe, 1.0, ""});
  MipOptions opts;
  opts.warm_start = {0.0, 1.0};  // feasible but suboptimal
  const MipSolution s = SolveMip(m, opts);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -5.0, 1e-6);  // still finds the optimum
}

TEST(BnbTest, GapTargetStopsEarly) {
  Model m;
  std::vector<VarId> vars;
  Rng rng(3);
  Row cap{{}, Sense::kLe, 10.0, ""};
  for (int i = 0; i < 12; ++i) {
    const VarId v = m.AddBinary(-(1.0 + static_cast<double>(rng.Uniform(10))));
    cap.terms.push_back({v, 1.0 + static_cast<double>(rng.Uniform(5))});
    vars.push_back(v);
  }
  m.AddRow(cap);
  MipOptions opts;
  opts.gap_target = 0.5;  // very loose: accept the first decent incumbent
  const MipSolution loose = SolveMip(m, opts);
  ASSERT_TRUE(loose.status.ok());
  EXPECT_LE(loose.gap, 0.5 + 1e-9);
  const MipSolution exact = SolveMip(m);
  EXPECT_LE(exact.objective, loose.objective + 1e-9);
}

TEST(BnbTest, CallbackCanTerminate) {
  Model m;
  Row cap{{}, Sense::kLe, 7.0, ""};
  Rng rng(5);
  for (int i = 0; i < 14; ++i) {
    const VarId v = m.AddBinary(-(1.0 + static_cast<double>(rng.Uniform(9))));
    cap.terms.push_back({v, 1.0 + static_cast<double>(rng.Uniform(4))});
  }
  m.AddRow(cap);
  MipOptions opts;
  int callbacks = 0;
  opts.callback = [&](const MipProgress&) { return ++callbacks < 2; };
  const MipSolution s = SolveMip(m, opts);
  EXPECT_GE(callbacks, 1);
  // Early termination still returns the current incumbent if any.
  if (s.status.ok()) EXPECT_FALSE(s.x.empty());
}

TEST(BnbTest, MixedIntegerContinuous) {
  // min -x - y with binary x and continuous y <= 2.5, x + y <= 3.
  Model m;
  const VarId x = m.AddBinary(-1);
  const VarId y = m.AddVariable(0, 2.5, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 3.0, ""});
  const MipSolution s = SolveMip(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[x], 1.0, 1e-6);
  EXPECT_NEAR(s.x[y], 2.0, 1e-6);
  EXPECT_NEAR(s.objective, -3.0, 1e-6);
}

TEST(BnbTest, CheckFeasibleProbe) {
  Model ok;
  const VarId a = ok.AddBinary(1);
  ok.AddRow({{{a, 1.0}}, Sense::kLe, 1.0, ""});
  EXPECT_TRUE(CheckFeasible(ok).ok());

  Model bad;
  const VarId b = bad.AddBinary(1);
  bad.AddRow({{{b, 1.0}}, Sense::kGe, 3.0, ""});
  EXPECT_EQ(CheckFeasible(bad).code(), StatusCode::kInfeasible);
}

/// Property sweep: SolveMip matches brute force on random binary
/// programs with mixed constraint senses.
class BnbPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BnbPropertyTest, MatchesBruteForce) {
  Rng rng(1000 + GetParam());
  Model m;
  const int n = 3 + static_cast<int>(rng.Uniform(8));  // 3..10 binaries
  for (int i = 0; i < n; ++i) {
    m.AddBinary(-5.0 + static_cast<double>(rng.Uniform(11)));
  }
  const int rows = 1 + static_cast<int>(rng.Uniform(4));
  for (int r = 0; r < rows; ++r) {
    Row row;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.6)) {
        row.terms.push_back({i, 1.0 + static_cast<double>(rng.Uniform(4))});
      }
    }
    if (row.terms.empty()) continue;
    row.sense = rng.Bernoulli(0.8) ? Sense::kLe : Sense::kGe;
    double total = 0;
    for (auto& [v, c] : row.terms) total += c;
    row.rhs = total * (row.sense == Sense::kLe ? 0.5 : 0.2);
    m.AddRow(std::move(row));
  }

  const double brute = BruteForce(m);
  const MipSolution s = SolveMip(m);
  if (!std::isfinite(brute)) {
    EXPECT_EQ(s.status.code(), StatusCode::kInfeasible);
  } else {
    ASSERT_TRUE(s.status.ok()) << s.status.ToString();
    EXPECT_NEAR(s.objective, brute, 1e-6 + 1e-6 * std::abs(brute));
    EXPECT_TRUE(m.IsFeasible(s.x));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, BnbPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace cophy::lp
