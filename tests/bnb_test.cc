// Unit + property tests for lp/branch_and_bound: the generic MIP solver
// validated against brute force on random binary programs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "lp/branch_and_bound.h"
#include "lp/simplex.h"

namespace cophy::lp {
namespace {

/// Brute-force optimum over all 0/1 assignments of a pure-binary model.
double BruteForce(const Model& m, std::vector<double>* arg = nullptr) {
  const int n = m.num_variables();
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> x(n);
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    for (int i = 0; i < n; ++i) x[i] = (mask >> i) & 1 ? 1.0 : 0.0;
    if (!m.IsFeasible(x)) continue;
    const double obj = m.ObjectiveValue(x);
    if (obj < best) {
      best = obj;
      if (arg != nullptr) *arg = x;
    }
  }
  return best;
}

TEST(BnbTest, SolvesSmallKnapsack) {
  // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 8  → {a, c} = 14.
  Model m;
  const VarId a = m.AddBinary(-10);
  const VarId b = m.AddBinary(-6);
  const VarId c = m.AddBinary(-4);
  m.AddRow({{{a, 5.0}, {b, 4.0}, {c, 3.0}}, Sense::kLe, 8.0, ""});
  const MipSolution s = SolveMip(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -14.0, 1e-6);
  EXPECT_NEAR(s.x[a], 1.0, 1e-6);
  EXPECT_NEAR(s.x[b], 0.0, 1e-6);
  EXPECT_NEAR(s.x[c], 1.0, 1e-6);
}

TEST(BnbTest, InfeasibleModel) {
  Model m;
  const VarId a = m.AddBinary(1);
  m.AddRow({{{a, 1.0}}, Sense::kGe, 2.0, ""});
  EXPECT_EQ(SolveMip(m).status.code(), StatusCode::kInfeasible);
}

TEST(BnbTest, EqualityCoverConstraint) {
  // Exactly two of three must be picked; minimize cost.
  Model m;
  const VarId a = m.AddBinary(3);
  const VarId b = m.AddBinary(1);
  const VarId c = m.AddBinary(2);
  m.AddRow({{{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::kEq, 2.0, ""});
  const MipSolution s = SolveMip(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 3.0, 1e-6);  // b + c
}

TEST(BnbTest, WarmStartAcceptedAsIncumbent) {
  Model m;
  const VarId a = m.AddBinary(-5);
  const VarId b = m.AddBinary(-4);
  m.AddRow({{{a, 1.0}, {b, 1.0}}, Sense::kLe, 1.0, ""});
  MipOptions opts;
  opts.warm_start = {0.0, 1.0};  // feasible but suboptimal
  const MipSolution s = SolveMip(m, opts);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -5.0, 1e-6);  // still finds the optimum
}

TEST(BnbTest, GapTargetStopsEarly) {
  Model m;
  std::vector<VarId> vars;
  Rng rng(3);
  Row cap{{}, Sense::kLe, 10.0, ""};
  for (int i = 0; i < 12; ++i) {
    const VarId v = m.AddBinary(-(1.0 + static_cast<double>(rng.Uniform(10))));
    cap.terms.push_back({v, 1.0 + static_cast<double>(rng.Uniform(5))});
    vars.push_back(v);
  }
  m.AddRow(cap);
  MipOptions opts;
  opts.gap_target = 0.5;  // very loose: accept the first decent incumbent
  const MipSolution loose = SolveMip(m, opts);
  ASSERT_TRUE(loose.status.ok());
  EXPECT_LE(loose.gap, 0.5 + 1e-9);
  const MipSolution exact = SolveMip(m);
  EXPECT_LE(exact.objective, loose.objective + 1e-9);
}

TEST(BnbTest, CallbackCanTerminate) {
  Model m;
  Row cap{{}, Sense::kLe, 7.0, ""};
  Rng rng(5);
  for (int i = 0; i < 14; ++i) {
    const VarId v = m.AddBinary(-(1.0 + static_cast<double>(rng.Uniform(9))));
    cap.terms.push_back({v, 1.0 + static_cast<double>(rng.Uniform(4))});
  }
  m.AddRow(cap);
  MipOptions opts;
  int callbacks = 0;
  opts.callback = [&](const MipProgress&) { return ++callbacks < 2; };
  const MipSolution s = SolveMip(m, opts);
  EXPECT_GE(callbacks, 1);
  // Early termination still returns the current incumbent if any.
  if (s.status.ok()) {
    EXPECT_FALSE(s.x.empty());
  }
}

TEST(BnbTest, MixedIntegerContinuous) {
  // min -x - y with binary x and continuous y <= 2.5, x + y <= 3.
  Model m;
  const VarId x = m.AddBinary(-1);
  const VarId y = m.AddVariable(0, 2.5, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 3.0, ""});
  const MipSolution s = SolveMip(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[x], 1.0, 1e-6);
  EXPECT_NEAR(s.x[y], 2.0, 1e-6);
  EXPECT_NEAR(s.objective, -3.0, 1e-6);
}

TEST(BnbTest, CheckFeasibleProbe) {
  Model ok;
  const VarId a = ok.AddBinary(1);
  ok.AddRow({{{a, 1.0}}, Sense::kLe, 1.0, ""});
  EXPECT_TRUE(CheckFeasible(ok).ok());

  Model bad;
  const VarId b = bad.AddBinary(1);
  bad.AddRow({{{b, 1.0}}, Sense::kGe, 3.0, ""});
  EXPECT_EQ(CheckFeasible(bad).code(), StatusCode::kInfeasible);
}

TEST(BnbTest, NodeLpStatsAreReported) {
  Model m;
  Row cap{{}, Sense::kLe, 9.0, ""};
  Rng rng(11);
  for (int i = 0; i < 12; ++i) {
    const VarId v = m.AddBinary(-(1.0 + static_cast<double>(rng.Uniform(9))));
    cap.terms.push_back({v, 1.0 + static_cast<double>(rng.Uniform(4))});
  }
  m.AddRow(cap);
  const MipSolution s = SolveMip(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_GE(s.lp.lp_solves, s.nodes);          // root + every node LP
  EXPECT_GT(s.lp.phase2_pivots, 0);
  if (s.nodes > 1) {
    EXPECT_GT(s.lp.warm_started_nodes, 0);
  }
}

/// Warm-started node LPs must not change what branch-and-bound computes
/// — only how much simplex work each node costs.
class BnbWarmStartEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BnbWarmStartEquivalenceTest, WarmEqualsColdSolve) {
  Rng rng(7000 + GetParam());
  Model m;
  const int n = 8 + static_cast<int>(rng.Uniform(10));
  for (int i = 0; i < n; ++i) {
    m.AddBinary(-1.0 - static_cast<double>(rng.Uniform(20)));
  }
  const int rows = 2 + static_cast<int>(rng.Uniform(3));
  for (int r = 0; r < rows; ++r) {
    Row row;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) {
        row.terms.push_back({i, 1.0 + static_cast<double>(rng.Uniform(6))});
      }
    }
    if (row.terms.empty()) continue;
    row.sense = rng.Bernoulli(0.85) ? Sense::kLe : Sense::kGe;
    double total = 0;
    for (auto& [v, c] : row.terms) total += c;
    row.rhs = total * (row.sense == Sense::kLe ? 0.35 : 0.15);
    m.AddRow(std::move(row));
  }

  MipOptions warm_opts;
  const MipSolution warm = SolveMip(m, warm_opts);
  MipOptions cold_opts;
  cold_opts.warm_start_nodes = false;
  const MipSolution cold = SolveMip(m, cold_opts);

  ASSERT_EQ(warm.status.ok(), cold.status.ok())
      << "warm=" << warm.status.ToString() << " cold=" << cold.status.ToString();
  if (!warm.status.ok()) return;
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-6 + 1e-9 * std::abs(cold.objective));
  EXPECT_TRUE(m.IsFeasible(warm.x));
  EXPECT_EQ(cold.lp.warm_started_nodes, 0);
  if (warm.nodes > 1) {
    EXPECT_GT(warm.lp.warm_started_nodes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, BnbWarmStartEquivalenceTest,
                         ::testing::Range(0, 15));

TEST(BnbTest, WarmStartedNodesNeedFewerPhase1Pivots) {
  // Equality-constrained selection: a cold solve must run phase 1 at
  // every node (the Eq slacks start basic and out of bounds), while a
  // warm-started child only repairs the one branched bound. Seed 3
  // yields a 9-node tree for both variants.
  Rng rng(3);
  Model m;
  const int n = 18;
  for (int i = 0; i < n; ++i) {
    m.AddBinary(-1.0 - static_cast<double>(rng.Uniform(30)));
  }
  for (int g = 0; g < 3; ++g) {  // overlapping "pick exactly k" groups
    Row pick;
    pick.sense = Sense::kEq;
    pick.rhs = 2.0 + g;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) pick.terms.push_back({i, 1.0});
    }
    if (static_cast<int>(pick.terms.size()) > static_cast<int>(pick.rhs) + 1) {
      m.AddRow(std::move(pick));
    }
  }
  Row cap;  // binding knapsack to force fractional relaxations
  cap.sense = Sense::kLe;
  double total_weight = 0;
  for (int i = 0; i < n; ++i) {
    const double w = 1.0 + static_cast<double>(rng.Uniform(9));
    cap.terms.push_back({i, w});
    total_weight += w;
  }
  cap.rhs = 0.45 * total_weight;
  m.AddRow(std::move(cap));

  const MipSolution warm = SolveMip(m);
  MipOptions cold_opts;
  cold_opts.warm_start_nodes = false;
  const MipSolution cold = SolveMip(m, cold_opts);
  ASSERT_TRUE(warm.status.ok());
  ASSERT_TRUE(cold.status.ok());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  ASSERT_GT(warm.nodes, 1);
  ASSERT_GT(cold.lp.phase1_pivots, 0);
  const double warm_p1 = static_cast<double>(warm.lp.phase1_pivots) /
                         static_cast<double>(warm.lp.lp_solves);
  const double cold_p1 = static_cast<double>(cold.lp.phase1_pivots) /
                         static_cast<double>(cold.lp.lp_solves);
  EXPECT_LT(warm_p1, cold_p1);
  // Total simplex work (dual pivots included) drops as well.
  EXPECT_LT(warm.lp.phase1_pivots + warm.lp.phase2_pivots +
                warm.lp.dual_pivots,
            cold.lp.phase1_pivots + cold.lp.phase2_pivots +
                cold.lp.dual_pivots);
}

TEST(BnbTest, DualEntryNodesRunZeroPhase1Pivots) {
  // All-<= rows with positive rhs: the slack basis is primal feasible,
  // so the cold root runs zero phase-1 pivots — and with dual-entry
  // warm nodes, *no* LP in the whole tree may ever enter phase 1. The
  // tree must still reach the brute-force optimum, and match a
  // primal-entry run of the same tree.
  Rng rng(11);
  Model m;
  const int n = 14;
  for (int i = 0; i < n; ++i) {
    m.AddBinary(-1.0 - static_cast<double>(rng.Uniform(25)));
  }
  for (int r = 0; r < 4; ++r) {
    Row cap;
    cap.sense = Sense::kLe;
    double total = 0;
    for (int i = 0; i < n; ++i) {
      if (r > 0 && !rng.Bernoulli(0.7)) continue;
      const double w = 1.0 + static_cast<double>(rng.Uniform(7));
      cap.terms.push_back({i, w});
      total += w;
    }
    cap.rhs = 0.4 * total;
    if (!cap.terms.empty()) m.AddRow(std::move(cap));
  }

  const MipSolution dual = SolveMip(m);  // dual entry is the default
  MipOptions primal_opts;
  primal_opts.dual_entry_nodes = false;
  const MipSolution primal = SolveMip(m, primal_opts);
  ASSERT_TRUE(dual.status.ok());
  ASSERT_TRUE(primal.status.ok());
  ASSERT_GT(dual.nodes, 1);
  EXPECT_GT(dual.lp.warm_started_nodes, 0);
  EXPECT_GT(dual.lp.dual_entered_nodes, 0);
  EXPECT_GT(dual.lp.dual_pivots, 0);
  EXPECT_EQ(dual.lp.phase1_pivots, 0);  // the dual-entry guarantee
  EXPECT_EQ(dual.lp.dual_node_phase1_pivots, 0);  // node-only view of it
  EXPECT_NEAR(dual.objective, primal.objective, 1e-6);
  EXPECT_NEAR(dual.objective, BruteForce(m), 1e-6);
}

/// Property sweep: SolveMip matches brute force on random binary
/// programs with mixed constraint senses.
class BnbPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BnbPropertyTest, MatchesBruteForce) {
  Rng rng(1000 + GetParam());
  Model m;
  const int n = 3 + static_cast<int>(rng.Uniform(8));  // 3..10 binaries
  for (int i = 0; i < n; ++i) {
    m.AddBinary(-5.0 + static_cast<double>(rng.Uniform(11)));
  }
  const int rows = 1 + static_cast<int>(rng.Uniform(4));
  for (int r = 0; r < rows; ++r) {
    Row row;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.6)) {
        row.terms.push_back({i, 1.0 + static_cast<double>(rng.Uniform(4))});
      }
    }
    if (row.terms.empty()) continue;
    row.sense = rng.Bernoulli(0.8) ? Sense::kLe : Sense::kGe;
    double total = 0;
    for (auto& [v, c] : row.terms) total += c;
    row.rhs = total * (row.sense == Sense::kLe ? 0.5 : 0.2);
    m.AddRow(std::move(row));
  }

  const double brute = BruteForce(m);
  const MipSolution s = SolveMip(m);
  if (!std::isfinite(brute)) {
    EXPECT_EQ(s.status.code(), StatusCode::kInfeasible);
  } else {
    ASSERT_TRUE(s.status.ok()) << s.status.ToString();
    EXPECT_NEAR(s.objective, brute, 1e-6 + 1e-6 * std::abs(brute));
    EXPECT_TRUE(m.IsFeasible(s.x));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, BnbPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace cophy::lp
