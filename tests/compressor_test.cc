// Tests for the workload compressor: signature/equivalence semantics,
// lossless dedup, lossy clustering + sampling, and the end-to-end
// equivalence guarantees the pipeline rests on (compressed and
// uncompressed tuning agree exactly in lossless mode, and within a
// documented bound in lossy mode).
#include <gtest/gtest.h>

#include <algorithm>

#include "optimizer/simulator.h"
#include "baselines/advisor.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "workload/compressor.h"
#include "workload/generator.h"

namespace cophy {
namespace {

class CompressorTest : public ::testing::Test {
 protected:
  void Make(double z = 0.0) { cat_ = MakeTpchCatalog(0.1, z); }
  Catalog cat_;
};

TEST_F(CompressorTest, InstancesOfOneTemplateAreCostEquivalentWhenUniform) {
  Make(0.0);
  // Under uniform statistics, eq-selectivity ignores the constant and
  // range width is fixed per template, so instances differ only in
  // quantiles the cost model cannot observe.
  const Query a = MakeHomogeneousStatement(cat_, 3, /*seed=*/1);
  const Query b = MakeHomogeneousStatement(cat_, 3, /*seed=*/99);
  EXPECT_TRUE(ShapeEquivalent(a, b));
  EXPECT_TRUE(CostEquivalent(a, b, cat_));
  EXPECT_EQ(StatementCostSignature(a, cat_), StatementCostSignature(b, cat_));
  EXPECT_EQ(StatementShapeSignature(a), StatementShapeSignature(b));
}

TEST_F(CompressorTest, DifferentTemplatesAreNotEquivalent) {
  Make(0.0);
  const Query a = MakeHomogeneousStatement(cat_, 0, 1);
  const Query b = MakeHomogeneousStatement(cat_, 1, 1);
  EXPECT_FALSE(ShapeEquivalent(a, b));
  EXPECT_FALSE(CostEquivalent(a, b, cat_));
  EXPECT_NE(StatementShapeSignature(a), StatementShapeSignature(b));
}

TEST_F(CompressorTest, SkewSeparatesCostButNotShape) {
  Make(2.0);
  // Template 1 has an equality predicate on a skewed column: different
  // constants now hit different frequencies, so costs differ while the
  // shape is unchanged.
  const Query a = MakeHomogeneousStatement(cat_, 1, 1);
  const Query b = MakeHomogeneousStatement(cat_, 1, 99);
  EXPECT_TRUE(ShapeEquivalent(a, b));
  EXPECT_EQ(StatementShapeSignature(a), StatementShapeSignature(b));
  EXPECT_FALSE(CostEquivalent(a, b, cat_));
}

TEST_F(CompressorTest, LosslessDedupAggregatesWeights) {
  Make(0.0);
  WorkloadOptions o;
  o.num_statements = 500;
  o.seed = 5;
  o.randomize_weights = true;
  const Workload w = MakeHomogeneousWorkload(cat_, o);

  CompressionOptions opts;
  opts.mode = CompressionMode::kLossless;
  const CompressedWorkload cw = CompressWorkload(w, cat_, opts);

  // 15 select templates under uniform stats -> at most 15 outputs.
  EXPECT_LE(cw.workload.size(), 15);
  EXPECT_GE(cw.stats.Ratio(), 20.0);
  EXPECT_TRUE(cw.stats.lossless);
  EXPECT_EQ(cw.stats.input_statements, 500);
  EXPECT_EQ(cw.stats.output_statements, cw.workload.size());

  // Weight mass is preserved exactly per cluster.
  EXPECT_NEAR(cw.stats.output_weight, cw.stats.input_weight, 1e-9);
  std::vector<double> cluster_weight(cw.workload.size(), 0.0);
  for (const Query& q : w.statements()) {
    const QueryId cid = cw.map[q.id];
    ASSERT_GE(cid, 0);
    ASSERT_LT(cid, cw.workload.size());
    EXPECT_TRUE(CostEquivalent(q, cw.workload[cid], cat_));
    cluster_weight[cid] += q.weight;
  }
  for (QueryId cid = 0; cid < cw.workload.size(); ++cid) {
    EXPECT_NEAR(cw.workload[cid].weight, cluster_weight[cid], 1e-9);
  }
}

TEST_F(CompressorTest, NoneModeIsIdentity) {
  Make(0.0);
  WorkloadOptions o;
  o.num_statements = 40;
  const Workload w = MakeHomogeneousWorkload(cat_, o);
  CompressionOptions opts;
  opts.mode = CompressionMode::kNone;
  const CompressedWorkload cw = CompressWorkload(w, cat_, opts);
  ASSERT_EQ(cw.workload.size(), w.size());
  for (QueryId q = 0; q < w.size(); ++q) {
    EXPECT_EQ(cw.map[q], q);
    EXPECT_EQ(cw.representative_of[q], q);
    EXPECT_DOUBLE_EQ(cw.workload[q].weight, w[q].weight);
  }
  EXPECT_DOUBLE_EQ(cw.stats.Ratio(), 1.0);
}

TEST_F(CompressorTest, LossySamplingCapsAndRescales) {
  Make(0.0);
  WorkloadOptions o;
  o.num_statements = 200;
  o.seed = 11;
  const Workload w = MakeHeterogeneousWorkload(cat_, o);

  CompressionOptions opts;
  opts.mode = CompressionMode::kLossy;
  opts.cluster_by_shape = false;
  opts.max_statements = 25;
  opts.seed = 7;
  const CompressedWorkload cw = CompressWorkload(w, cat_, opts);
  EXPECT_EQ(cw.workload.size(), 25);
  EXPECT_FALSE(cw.stats.lossless);
  // Weight-rescaled: the sample's mass equals the input mass.
  EXPECT_NEAR(cw.stats.output_weight, cw.stats.input_weight, 1e-6);
  // Dropped statements map to -1; kept ones map to their own instance.
  int dropped = 0;
  for (QueryId q = 0; q < w.size(); ++q) {
    if (cw.map[q] < 0) {
      ++dropped;
    } else {
      EXPECT_EQ(cw.representative_of[cw.map[q]], q);
    }
  }
  EXPECT_EQ(dropped, 200 - 25);
  // Deterministic in the seed.
  const CompressedWorkload again = CompressWorkload(w, cat_, opts);
  EXPECT_EQ(again.map, cw.map);
}

TEST_F(CompressorTest, LossyShapeClusteringMergesSkewedInstances) {
  Make(2.0);
  WorkloadOptions o;
  o.num_statements = 300;
  o.seed = 3;
  const Workload w = MakeHomogeneousWorkload(cat_, o);

  CompressionOptions lossless;
  const int lossless_out =
      CompressWorkload(w, cat_, lossless).workload.size();

  CompressionOptions lossy;
  lossy.mode = CompressionMode::kLossy;
  const CompressedWorkload cw = CompressWorkload(w, cat_, lossy);
  // Skew makes most instances cost-distinct, but shapes still collapse
  // to the 15 templates.
  EXPECT_LE(cw.workload.size(), 15);
  EXPECT_LT(cw.workload.size(), lossless_out);
  EXPECT_NEAR(cw.stats.output_weight, cw.stats.input_weight, 1e-9);
}

// --- End-to-end equivalence ---------------------------------------------

class CompressionEquivalenceTest : public ::testing::Test {
 protected:
  struct Run {
    Recommendation rec;
    std::vector<IndexId> config;
  };

  Run Tune(CompressionMode mode, int num_statements, double update_fraction,
           bool het, uint64_t seed) {
    cat_ = MakeTpchCatalog(0.1, 0.0);
    pool_ = IndexPool();
    sim_ = std::make_unique<SystemSimulator>(&cat_, &pool_,
                                             CostModel::SystemA());
    WorkloadOptions o;
    o.num_statements = num_statements;
    o.seed = seed;
    o.update_fraction = update_fraction;
    w_ = het ? MakeHeterogeneousWorkload(cat_, o)
             : MakeHomogeneousWorkload(cat_, o);
    CoPhyOptions opts;
    // BIPGen's canonical query blocks make the compressed and
    // uncompressed runs materialize bit-identical problems, so the
    // solver follows the identical trajectory at ANY gap/node budget —
    // no need to solve to proven optimality for exact agreement.
    opts.gap_target = 0.05;
    opts.node_limit = 20000;
    opts.prepare.compression.mode = mode;
    CoPhy advisor(sim_.get(), &pool_, w_, opts);
    EXPECT_TRUE(advisor.Prepare().ok());
    Run run;
    run.rec = advisor.Tune(ConstraintSetWithBudget());
    run.config = run.rec.configuration.ids();
    std::sort(run.config.begin(), run.config.end());
    return run;
  }

  ConstraintSet ConstraintSetWithBudget() {
    ConstraintSet cs;
    cs.SetStorageBudget(0.5 * cat_.TotalDataBytes());
    return cs;
  }

  Catalog cat_;
  IndexPool pool_;
  std::unique_ptr<SystemSimulator> sim_;
  Workload w_;
};

TEST_F(CompressionEquivalenceTest, LosslessMatchesUncompressedOnHomogeneous) {
  // The acceptance property: on W_hom, compressed and uncompressed runs
  // produce the same recommendation and the same objective (the BIPs
  // are mathematically identical; only summation order differs).
  const Run plain = Tune(CompressionMode::kNone, 200, 0.0, false, 42);
  const Run compressed = Tune(CompressionMode::kLossless, 200, 0.0, false, 42);
  ASSERT_TRUE(plain.rec.status.ok());
  ASSERT_TRUE(compressed.rec.status.ok());
  EXPECT_EQ(plain.config, compressed.config);
  EXPECT_NEAR(compressed.rec.objective, plain.rec.objective,
              1e-6 * plain.rec.objective);
  EXPECT_GE(compressed.rec.prepare.compression.Ratio(), 10.0);
  EXPECT_DOUBLE_EQ(plain.rec.prepare.compression.Ratio(), 1.0);
}

TEST_F(CompressionEquivalenceTest, LosslessMatchesWithUpdates) {
  const Run plain = Tune(CompressionMode::kNone, 150, 0.3, false, 7);
  const Run compressed = Tune(CompressionMode::kLossless, 150, 0.3, false, 7);
  ASSERT_TRUE(plain.rec.status.ok());
  ASSERT_TRUE(compressed.rec.status.ok());
  EXPECT_EQ(plain.config, compressed.config);
  EXPECT_NEAR(compressed.rec.objective, plain.rec.objective,
              1e-6 * plain.rec.objective);
}

TEST_F(CompressionEquivalenceTest, LossyStaysWithinObjectiveBound) {
  // Documented bound (docs/architecture.md): weight-rescaled sampling
  // keeps the compressed objective an unbiased estimate of the true
  // one; on W_het with updates the lossy recommendation's ground-truth
  // workload cost must stay within 25% of the uncompressed run's.
  const Run plain = Tune(CompressionMode::kNone, 120, 0.2, true, 19);
  ASSERT_TRUE(plain.rec.status.ok());
  const double plain_cost = WorkloadCost(*sim_, w_, plain.rec.configuration);

  cat_ = MakeTpchCatalog(0.1, 0.0);
  IndexPool pool2;
  SystemSimulator sim2(&cat_, &pool2, CostModel::SystemA());
  WorkloadOptions o;
  o.num_statements = 120;
  o.seed = 19;
  o.update_fraction = 0.2;
  const Workload w = MakeHeterogeneousWorkload(cat_, o);
  CoPhyOptions opts;
  opts.gap_target = 0.05;
  opts.node_limit = 20000;
  opts.prepare.compression.mode = CompressionMode::kLossy;
  opts.prepare.compression.cluster_by_shape = true;
  opts.prepare.compression.max_statements = 40;
  CoPhy advisor(&sim2, &pool2, w, opts);
  ASSERT_TRUE(advisor.Prepare().ok());
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * cat_.TotalDataBytes());
  const Recommendation lossy = advisor.Tune(cs);
  ASSERT_TRUE(lossy.status.ok());
  EXPECT_GT(lossy.prepare.compression.Ratio(), 1.0);
  EXPECT_FALSE(lossy.prepare.compression.lossless);

  const double lossy_cost = WorkloadCost(sim2, w, lossy.configuration);
  const double base_cost = WorkloadCost(sim2, w, Configuration::Empty());
  // The lossy recommendation must still clearly improve the workload
  // and land within the documented bound of the exact run.
  EXPECT_LT(lossy_cost, base_cost);
  EXPECT_LE(lossy_cost, 1.25 * plain_cost);
}

}  // namespace
}  // namespace cophy
