// Tests for core/report: per-statement and per-index attribution of a
// recommendation's impact.
#include <gtest/gtest.h>

#include "optimizer/simulator.h"
#include "catalog/catalog.h"
#include "core/report.h"
#include "workload/generator.h"

namespace cophy {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cat_ = MakeTpchCatalog(0.1, 0.0);
    sim_ = std::make_unique<SystemSimulator>(&cat_, &pool_,
                                             CostModel::SystemA());
    WorkloadOptions o;
    o.num_statements = 20;
    o.seed = 33;
    o.update_fraction = 0.2;
    w_ = MakeHomogeneousWorkload(cat_, o);
    CoPhyOptions opts;
    opts.node_limit = 2000;
    advisor_ = std::make_unique<CoPhy>(sim_.get(), &pool_, w_, opts);
    ASSERT_TRUE(advisor_->Prepare().ok());
    ConstraintSet cs;
    cs.SetStorageBudget(cat_.TotalDataBytes());
    rec_ = advisor_->Tune(cs);
    ASSERT_TRUE(rec_.status.ok());
  }

  /// The workload view the report describes: tuning runs on the
  /// (losslessly) compressed representatives, whose aggregated weights
  /// make the totals match the full workload.
  const Workload& tuned() const { return advisor_->prepared().tuned(); }

  Catalog cat_;
  IndexPool pool_;
  std::unique_ptr<SystemSimulator> sim_;
  std::unique_ptr<CoPhy> advisor_;
  Workload w_;
  Recommendation rec_;
};

TEST_F(ReportTest, TotalsMatchInumCosts) {
  const TuningReport report = AnalyzeRecommendation(advisor_->inum(), rec_);
  double before = 0, after = 0;
  for (const Query& q : tuned().statements()) {
    before += q.weight * advisor_->inum().Cost(q.id, Configuration::Empty());
    after += q.weight * advisor_->inum().Cost(q.id, rec_.configuration);
  }
  EXPECT_NEAR(report.total_before, before, 1e-6 * before);
  EXPECT_NEAR(report.total_after, after, 1e-6 * after);
  EXPECT_LT(report.total_after, report.total_before);

  // The compressed view's aggregated weights make the report totals
  // stand for the FULL workload: cross-check against direct what-if
  // costing of every original statement.
  double full_before = 0;
  for (const Query& q : w_.statements()) {
    full_before += q.weight * sim_->Cost(q, Configuration::Empty()).value();
  }
  EXPECT_NEAR(report.total_before, full_before, 1e-6 * full_before);
}

TEST_F(ReportTest, EveryStatementAccounted) {
  const TuningReport report = AnalyzeRecommendation(advisor_->inum(), rec_);
  EXPECT_EQ(static_cast<int>(report.statements.size()), tuned().size());
  // Lossless compression merged duplicates, but every original
  // statement is represented (none dropped).
  EXPECT_LE(tuned().size(), w_.size());
  for (QueryId q = 0; q < w_.size(); ++q) {
    EXPECT_GE(advisor_->prepared().CompressedId(q), 0);
  }
  // Sorted by absolute gain, descending.
  for (size_t i = 1; i < report.statements.size(); ++i) {
    const auto gain = [](const StatementImpact& s) {
      return s.weight * (s.cost_before - s.cost_after);
    };
    EXPECT_GE(gain(report.statements[i - 1]), gain(report.statements[i]) - 1e-9);
  }
}

TEST_F(ReportTest, IndexImpactsCoverConfiguration) {
  const TuningReport report = AnalyzeRecommendation(advisor_->inum(), rec_);
  EXPECT_EQ(static_cast<int>(report.indexes.size()),
            rec_.configuration.size());
  double total_size = 0;
  for (const IndexImpact& ii : report.indexes) {
    EXPECT_TRUE(rec_.configuration.Contains(ii.index));
    EXPECT_GT(ii.size_bytes, 0);
    total_size += ii.size_bytes;
  }
  EXPECT_NEAR(report.storage_bytes, total_size, 1.0);
  EXPECT_NEAR(report.storage_bytes,
              rec_.configuration.SizeBytes(pool_, cat_), 1.0);
}

TEST_F(ReportTest, UsedIndexesBelongToConfiguration) {
  const TuningReport report = AnalyzeRecommendation(advisor_->inum(), rec_);
  for (const StatementImpact& si : report.statements) {
    for (IndexId id : si.indexes_used) {
      EXPECT_TRUE(rec_.configuration.Contains(id));
    }
    // SELECT costs never increase under more indexes; UPDATE statements
    // may pay maintenance for indexes that benefit *other* statements.
    if (tuned()[si.query].IsSelect()) {
      EXPECT_LE(si.cost_after, si.cost_before * (1 + 1e-9));
    }
  }
}

TEST_F(ReportTest, BenefitAttributionSumsToTotalGain) {
  const TuningReport report = AnalyzeRecommendation(advisor_->inum(), rec_);
  double attributed = 0;
  for (const IndexImpact& ii : report.indexes) {
    attributed += ii.weighted_benefit;
  }
  // Shell gains are fully attributed to used indexes; update penalties
  // live in total_after but not in the attribution, so attributed gain
  // is the shell-cost delta.
  double shell_gain = 0;
  for (const Query& q : tuned().statements()) {
    shell_gain +=
        q.weight * (advisor_->inum().ShellCost(q.id, Configuration::Empty()) -
                    advisor_->inum().ShellCost(q.id, rec_.configuration));
  }
  EXPECT_NEAR(attributed, shell_gain, 1e-6 * std::max(1.0, shell_gain));
}

TEST_F(ReportTest, SolverActivityRendersPresolveAndRootBounds) {
  SolverActivity activity;
  activity.lp = lp::SolverCounters{};
  activity.lp.lp_solves = 1;  // the factorization line renders per run
  activity.lp.factorizations = rec_.root_lp_stats.refactorizations;
  activity.lp.eta_nnz = rec_.root_lp_stats.eta_nnz;
  activity.bound_evaluations = rec_.bound_evaluations;
  activity.presolve = rec_.presolve;
  activity.root_lp_bound = rec_.root_lp_bound;
  activity.root_lagrangian_bound = rec_.root_lagrangian_bound;
  activity.variables_fixed = rec_.variables_fixed;
  activity.root_lp_stats = rec_.root_lp_stats;
  const std::string text = RenderSolverActivity(activity);
  // The tuning run presolved a real BIP and produced root bounds; both
  // must appear side by side in the rendering, along with the LU
  // basis-factorization accounting the tuning solve recorded.
  EXPECT_NE(text.find("Presolve: plans"), std::string::npos) << text;
  EXPECT_NE(text.find("Root bounds:"), std::string::npos) << text;
  EXPECT_NE(text.find("Lagrangian"), std::string::npos) << text;
  EXPECT_NE(text.find("fixed by reduced costs"), std::string::npos) << text;
  EXPECT_NE(text.find("Basis factorization:"), std::string::npos) << text;
  EXPECT_GE(rec_.root_lp_stats.refactorizations, 1);  // the root LP ran
  EXPECT_NE(text.find("refactorizations"), std::string::npos) << text;
  // And an empty activity renders none of it.
  const std::string empty = RenderSolverActivity(SolverActivity{});
  EXPECT_EQ(empty.find("Presolve"), std::string::npos);
  EXPECT_EQ(empty.find("Root bounds"), std::string::npos);
  EXPECT_EQ(empty.find("Basis factorization"), std::string::npos);
}

TEST_F(ReportTest, SolverActivityRendersDualAndForrestTomlinCounters) {
  SolverActivity activity;
  activity.lp = lp::SolverCounters{};
  activity.lp.lp_solves = 10;
  activity.lp.phase1_pivots = 3;
  activity.lp.phase2_pivots = 17;
  activity.lp.dual_pivots = 25;   // warm node re-solves via dual simplex
  activity.lp.bound_flips = 4;
  activity.lp.devex_resets = 2;
  activity.lp.factorizations = 5;
  activity.lp.ft_updates = 40;
  activity.lp.eta_nnz = 123;
  activity.root_lp_stats.refactorizations = 1;
  activity.root_lp_stats.warm_started = true;
  activity.root_lp_stats.dual_entered = true;
  activity.root_lp_bound = 42.0;
  const std::string text = RenderSolverActivity(activity);
  // Dual pivots count toward the total and get their own slot.
  EXPECT_NE(text.find("pivots 45"), std::string::npos) << text;
  EXPECT_NE(text.find("dual 25"), std::string::npos) << text;
  EXPECT_NE(text.find("40 FT updates"), std::string::npos) << text;
  EXPECT_NE(text.find("Devex: 2 reference-framework resets"),
            std::string::npos)
      << text;
  // The root-LP annotation marks a dual-entered warm seed.
  EXPECT_NE(text.find("warm dual"), std::string::npos) << text;
  // No devex line when there were no resets.
  activity.lp.devex_resets = 0;
  EXPECT_EQ(RenderSolverActivity(activity).find("Devex:"), std::string::npos);
}

TEST_F(ReportTest, SolverActivityRendersNumericalSafetyLine) {
  SolverActivity activity;
  activity.lp = lp::SolverCounters{};
  activity.lp.lp_solves = 12;
  activity.lp.certified_solves = 11;
  activity.lp.uncertified_solves = 1;
  activity.lp.refinement_rounds = 3;
  activity.lp.perturbations_applied = 2;
  activity.lp.perturbations_removed = 2;
  activity.lp.bland_escalations = 1;
  activity.lp.markowitz_escalations = 4;
  activity.lp.singular_repairs = 1;
  activity.lp.cold_restarts = 1;
  const std::string text = RenderSolverActivity(activity);
  EXPECT_NE(text.find("Numerical safety: 11/12 solves certified"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("3 refinement rounds"), std::string::npos) << text;
  EXPECT_NE(text.find("perturbations 2 applied / 2 removed"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("1 Bland, 4 Markowitz, 1 singular repairs, "
                      "1 cold restarts"),
            std::string::npos)
      << text;
  // Hand-built activities that never ran the certification pass (both
  // counters zero) don't grow the line.
  SolverActivity plain;
  plain.lp = lp::SolverCounters{};
  plain.lp.lp_solves = 3;
  EXPECT_EQ(RenderSolverActivity(plain).find("Numerical safety"),
            std::string::npos);
}

TEST_F(ReportTest, TuningRunReportsCertifiedSolves) {
  // The end-to-end story: the tuning run in SetUp solved real LPs with
  // safeguards on, so the captured global counters render the line with
  // a nonzero certified count.
  SolverActivity activity;
  activity.lp = lp::SolverCountersSnapshot();
  ASSERT_GT(activity.lp.certified_solves, 0);
  const std::string text = RenderSolverActivity(activity);
  EXPECT_NE(text.find("Numerical safety:"), std::string::npos) << text;
  EXPECT_NE(text.find("solves certified"), std::string::npos) << text;
}

TEST_F(ReportTest, RenderedReportMentionsKeyFacts) {
  const TuningReport report = AnalyzeRecommendation(advisor_->inum(), rec_);
  const std::string text = RenderTuningReport(report, advisor_->inum(), 5);
  EXPECT_NE(text.find("reduction"), std::string::npos);
  EXPECT_NE(text.find("Top improved statements"), std::string::npos);
  EXPECT_NE(text.find("INDEX ON"), std::string::npos);
  EXPECT_NE(text.find("MB"), std::string::npos);
}

TEST_F(ReportTest, ChosenIndexesMatchCostArgmin) {
  // Using exactly the chosen indexes reproduces the statement's cost
  // under the full configuration (they are the arg-min paths).
  for (const Query& q : tuned().statements()) {
    const auto used = advisor_->inum().ChosenIndexes(q.id, rec_.configuration);
    const double with_all =
        advisor_->inum().ShellCost(q.id, rec_.configuration);
    const double with_used =
        advisor_->inum().ShellCost(q.id, Configuration(used));
    EXPECT_NEAR(with_used, with_all, 1e-9 + 1e-9 * with_all);
  }
}

}  // namespace
}  // namespace cophy
