// Determinism tests for the parallel preparation pipeline: INUM caches
// and final Tune output must be bit-identical for 1, 2, and 8 threads,
// with and without template sharing.
#include <gtest/gtest.h>

#include <algorithm>

#include "optimizer/simulator.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "index/candidates.h"
#include "inum/inum.h"
#include "workload/generator.h"

namespace cophy {
namespace {

/// Exact (bit-level) comparison of two INUM caches.
void ExpectCachesIdentical(const Inum& a, const Inum& b) {
  ASSERT_EQ(a.num_statements(), b.num_statements());
  for (QueryId q = 0; q < a.num_statements(); ++q) {
    const QueryCache& ca = a.cache(q);
    const QueryCache& cb = b.cache(q);
    EXPECT_EQ(ca.qid, cb.qid);
    EXPECT_EQ(ca.weight, cb.weight);
    EXPECT_EQ(ca.is_update, cb.is_update);
    EXPECT_EQ(ca.raw_gamma_entries, cb.raw_gamma_entries);
    ASSERT_EQ(ca.slot_orders, cb.slot_orders) << "q=" << q;
    ASSERT_EQ(ca.templates.size(), cb.templates.size()) << "q=" << q;
    for (size_t t = 0; t < ca.templates.size(); ++t) {
      EXPECT_EQ(ca.templates[t].beta, cb.templates[t].beta);  // exact bits
      EXPECT_EQ(ca.templates[t].order_idx, cb.templates[t].order_idx);
    }
    ASSERT_EQ(ca.access.size(), cb.access.size()) << "q=" << q;
    for (size_t s = 0; s < ca.access.size(); ++s) {
      ASSERT_EQ(ca.access[s].size(), cb.access[s].size());
      for (size_t o = 0; o < ca.access[s].size(); ++o) {
        ASSERT_EQ(ca.access[s][o].size(), cb.access[s][o].size())
            << "q=" << q << " slot=" << s << " order=" << o;
        for (size_t e = 0; e < ca.access[s][o].size(); ++e) {
          EXPECT_EQ(ca.access[s][o][e].index, cb.access[s][o][e].index);
          EXPECT_EQ(ca.access[s][o][e].gamma, cb.access[s][o][e].gamma);
        }
      }
    }
  }
}

class ParallelPrepareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cat_ = MakeTpchCatalog(0.1, 1.0);  // skew: fewer shared statements
    WorkloadOptions o;
    o.num_statements = 60;
    o.seed = 21;
    o.update_fraction = 0.2;
    w_ = MakeHomogeneousWorkload(cat_, o);
  }

  Catalog cat_;
  Workload w_;
};

TEST_F(ParallelPrepareTest, PrepareIsThreadCountIndependent) {
  IndexPool ref_pool;
  SystemSimulator ref_sim(&cat_, &ref_pool, CostModel::SystemA());
  const std::vector<IndexId> ref_cands =
      GenerateCandidates(w_, cat_, CandidateOptions{}, ref_pool);
  InumOptions serial;
  serial.num_threads = 1;
  Inum reference(&ref_sim, serial);
  reference.Prepare(w_, ref_cands);

  for (int threads : {2, 8}) {
    IndexPool pool;
    SystemSimulator sim(&cat_, &pool, CostModel::SystemA());
    const std::vector<IndexId> cands =
        GenerateCandidates(w_, cat_, CandidateOptions{}, pool);
    ASSERT_EQ(cands, ref_cands);
    InumOptions io;
    io.num_threads = threads;
    Inum inum(&sim, io);
    inum.Prepare(w_, cands);
    EXPECT_EQ(inum.num_threads_used(), threads);
    ExpectCachesIdentical(reference, inum);
    EXPECT_EQ(reference.TotalTemplates(), inum.TotalTemplates());
    EXPECT_EQ(reference.TotalGammaEntries(), inum.TotalGammaEntries());
    EXPECT_EQ(reference.TotalRawGammaEntries(), inum.TotalRawGammaEntries());
  }
}

TEST_F(ParallelPrepareTest, TemplateSharingIsLossless) {
  IndexPool pool_a, pool_b;
  SystemSimulator sim_a(&cat_, &pool_a, CostModel::SystemA());
  SystemSimulator sim_b(&cat_, &pool_b, CostModel::SystemA());
  const std::vector<IndexId> cands_a =
      GenerateCandidates(w_, cat_, CandidateOptions{}, pool_a);
  const std::vector<IndexId> cands_b =
      GenerateCandidates(w_, cat_, CandidateOptions{}, pool_b);
  ASSERT_EQ(cands_a, cands_b);

  InumOptions shared;
  shared.share_templates = true;
  InumOptions unshared;
  unshared.share_templates = false;
  Inum a(&sim_a, shared), b(&sim_b, unshared);
  a.Prepare(w_, cands_a);
  b.Prepare(w_, cands_b);
  EXPECT_GT(a.num_shared_statements(), 0);
  EXPECT_EQ(b.num_shared_statements(), 0);
  // Sharing skips redundant what-if optimizations...
  EXPECT_LT(sim_a.num_whatif_calls(), sim_b.num_whatif_calls());
  // ...but the caches are bit-identical.
  ExpectCachesIdentical(a, b);
}

TEST_F(ParallelPrepareTest, AddCandidatesIsThreadCountIndependent) {
  auto run = [&](int threads) {
    auto pool = std::make_unique<IndexPool>();
    auto sim = std::make_unique<SystemSimulator>(&cat_, pool.get(),
                                                 CostModel::SystemA());
    std::vector<IndexId> cands =
        GenerateCandidates(w_, cat_, CandidateOptions{}, *pool);
    // Hold back a quarter of the candidates for the incremental path.
    const size_t split = cands.size() - cands.size() / 4;
    std::vector<IndexId> extra(cands.begin() + split, cands.end());
    cands.resize(split);
    InumOptions io;
    io.num_threads = threads;
    auto inum = std::make_unique<Inum>(sim.get(), io);
    inum->Prepare(w_, cands);
    inum->AddCandidates(extra);
    return std::make_tuple(std::move(inum), std::move(sim), std::move(pool));
  };
  auto [ref, ref_sim, ref_pool] = run(1);
  for (int threads : {2, 8}) {
    auto [inum, sim, pool] = run(threads);
    ExpectCachesIdentical(*ref, *inum);
  }
}

TEST_F(ParallelPrepareTest, TuneOutputIsThreadCountIndependent) {
  auto tune = [&](int threads) {
    IndexPool pool;
    SystemSimulator sim(&cat_, &pool, CostModel::SystemA());
    CoPhyOptions opts;
    opts.gap_target = 0.05;
    opts.node_limit = 3000;
    opts.prepare.num_threads = threads;
    CoPhy advisor(&sim, &pool, w_, opts);
    EXPECT_TRUE(advisor.Prepare().ok());
    ConstraintSet cs;
    cs.SetStorageBudget(0.5 * cat_.TotalDataBytes());
    const Recommendation rec = advisor.Tune(cs);
    EXPECT_TRUE(rec.status.ok());
    std::vector<IndexId> ids = rec.configuration.ids();
    std::sort(ids.begin(), ids.end());
    return std::make_pair(ids, rec.objective);
  };
  const auto ref = tune(1);
  for (int threads : {2, 8}) {
    const auto got = tune(threads);
    EXPECT_EQ(ref.first, got.first) << "threads=" << threads;
    EXPECT_EQ(ref.second, got.second) << "threads=" << threads;  // exact bits
  }
}

}  // namespace
}  // namespace cophy
