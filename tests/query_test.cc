// Unit tests for query/: the AST and the Workload container.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "query/query.h"

namespace cophy {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cat_ = MakeTpchCatalog(0.1, 0.0);
    orders_ = cat_.FindTable("orders");
    lineitem_ = cat_.FindTable("lineitem");
    o_orderkey_ = cat_.FindColumn(orders_, "o_orderkey");
    o_orderdate_ = cat_.FindColumn(orders_, "o_orderdate");
    l_orderkey_ = cat_.FindColumn(lineitem_, "l_orderkey");
    l_quantity_ = cat_.FindColumn(lineitem_, "l_quantity");
  }

  Query MakeJoinQuery() {
    Query q;
    q.tables = {orders_, lineitem_};
    q.joins = {{o_orderkey_, l_orderkey_}};
    Predicate p;
    p.column = o_orderdate_;
    p.op = Predicate::Op::kRange;
    p.quantile = 0.1;
    p.width = 0.2;
    q.predicates = {p};
    q.outputs = {{AggFunc::kSum, l_quantity_}};
    q.group_by = {};
    return q;
  }

  Catalog cat_;
  TableId orders_ = kInvalidTable, lineitem_ = kInvalidTable;
  ColumnId o_orderkey_ = kInvalidColumn, o_orderdate_ = kInvalidColumn,
           l_orderkey_ = kInvalidColumn, l_quantity_ = kInvalidColumn;
};

TEST_F(QueryTest, ReferencesAndSlots) {
  const Query q = MakeJoinQuery();
  EXPECT_TRUE(q.References(orders_));
  EXPECT_TRUE(q.References(lineitem_));
  EXPECT_FALSE(q.References(cat_.FindTable("part")));
  EXPECT_EQ(q.TableSlot(orders_), 0);
  EXPECT_EQ(q.TableSlot(lineitem_), 1);
  EXPECT_EQ(q.TableSlot(cat_.FindTable("part")), -1);
}

TEST_F(QueryTest, PredicatesOnFiltersByTable) {
  const Query q = MakeJoinQuery();
  EXPECT_EQ(q.PredicatesOn(orders_, cat_).size(), 1u);
  EXPECT_TRUE(q.PredicatesOn(lineitem_, cat_).empty());
}

TEST_F(QueryTest, ColumnsUsedCollectsEverything) {
  const Query q = MakeJoinQuery();
  const auto o_cols = q.ColumnsUsed(orders_, cat_);
  EXPECT_NE(std::find(o_cols.begin(), o_cols.end(), o_orderkey_), o_cols.end());
  EXPECT_NE(std::find(o_cols.begin(), o_cols.end(), o_orderdate_),
            o_cols.end());
  const auto l_cols = q.ColumnsUsed(lineitem_, cat_);
  EXPECT_NE(std::find(l_cols.begin(), l_cols.end(), l_orderkey_), l_cols.end());
  EXPECT_NE(std::find(l_cols.begin(), l_cols.end(), l_quantity_), l_cols.end());
}

TEST_F(QueryTest, ColumnsUsedDeduplicates) {
  Query q = MakeJoinQuery();
  q.order_by = {o_orderdate_};  // already used by a predicate
  const auto cols = q.ColumnsUsed(orders_, cat_);
  EXPECT_EQ(std::count(cols.begin(), cols.end(), o_orderdate_), 1);
}

TEST_F(QueryTest, ToStringRendersSql) {
  const Query q = MakeJoinQuery();
  const std::string sql = q.ToString(cat_);
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("FROM orders, lineitem"), std::string::npos);
  EXPECT_NE(sql.find("o_orderkey = l_orderkey"), std::string::npos);
  EXPECT_NE(sql.find("SUM(l_quantity)"), std::string::npos);
}

TEST_F(QueryTest, UpdateToString) {
  Query q;
  q.kind = StatementKind::kUpdate;
  q.update_table = orders_;
  q.tables = {orders_};
  Predicate p;
  p.column = o_orderkey_;
  p.op = Predicate::Op::kEq;
  p.quantile = 0.5;
  q.predicates = {p};
  q.set_columns = {o_orderdate_};
  const std::string sql = q.ToString(cat_);
  EXPECT_NE(sql.find("UPDATE orders"), std::string::npos);
  EXPECT_NE(sql.find("o_orderdate = :new"), std::string::npos);
  EXPECT_TRUE(q.IsUpdate());
  EXPECT_FALSE(q.IsSelect());
}

TEST_F(QueryTest, WorkloadAssignsIds) {
  Workload w;
  const QueryId a = w.Add(MakeJoinQuery());
  const QueryId b = w.Add(MakeJoinQuery());
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(w.size(), 2);
  EXPECT_EQ(w[a].id, 0);
}

TEST_F(QueryTest, WorkloadSelectAndUpdateIds) {
  Workload w;
  w.Add(MakeJoinQuery());
  Query u;
  u.kind = StatementKind::kUpdate;
  u.update_table = orders_;
  u.tables = {orders_};
  u.set_columns = {o_orderdate_};
  w.Add(u);
  EXPECT_EQ(w.SelectIds(), std::vector<QueryId>{0});
  EXPECT_EQ(w.UpdateIds(), std::vector<QueryId>{1});
}

TEST_F(QueryTest, WorkloadPrefix) {
  Workload w;
  for (int i = 0; i < 5; ++i) w.Add(MakeJoinQuery());
  Workload p = w.Prefix(3);
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p[2].id, 2);  // ids re-assigned densely
  EXPECT_EQ(w.Prefix(100).size(), 5);
}

}  // namespace
}  // namespace cophy
