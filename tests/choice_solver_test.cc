// Unit + property tests for lp/choice_problem: the structured solver,
// validated against brute-force enumeration, with constraint handling,
// warm starts, Lagrangian bound validity, and anytime behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "lp/choice_problem.h"

namespace cophy::lp {
namespace {

/// Brute-force optimum over all index selections.
double BruteForce(const ChoiceProblem& p, std::vector<uint8_t>* arg = nullptr) {
  const int n = p.num_indexes;
  double best = kInf;
  std::vector<uint8_t> sel(n);
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    for (int i = 0; i < n; ++i) sel[i] = (mask >> i) & 1;
    if (!p.Feasible(sel)) continue;
    const double obj = p.Objective(sel);
    if (obj < best) {
      best = obj;
      if (arg != nullptr) *arg = sel;
    }
  }
  return best;
}

/// A random CoPhy-shaped problem: queries with template plans, sorted
/// slot options with base fallbacks, sizes, and a storage budget.
/// Index `a` "belongs to table" a % 3, and every plan's slots cover
/// distinct tables — the structural invariant of index tuning (a slot
/// is one table's access path) that the solver's aggregated Lagrangian
/// relies on.
ChoiceProblem RandomProblem(uint64_t seed, int num_indexes, int num_queries,
                            bool tight_budget, bool with_fixed_costs) {
  Rng rng(seed);
  constexpr int kTables = 3;
  ChoiceProblem p;
  p.num_indexes = num_indexes;
  p.fixed_cost.assign(num_indexes, 0.0);
  p.size.resize(num_indexes);
  double total_size = 0;
  for (int a = 0; a < num_indexes; ++a) {
    p.size[a] = 1.0 + static_cast<double>(rng.Uniform(20));
    total_size += p.size[a];
    if (with_fixed_costs && rng.Bernoulli(0.3)) {
      p.fixed_cost[a] = static_cast<double>(rng.Uniform(30));
    }
  }
  for (int q = 0; q < num_queries; ++q) {
    ChoiceQuery cq;
    cq.weight = 1.0 + static_cast<double>(rng.Uniform(3));
    const int plans = 1 + static_cast<int>(rng.Uniform(3));
    // The query references a fixed set of distinct tables; all its
    // plans cover exactly those tables (as template plans do).
    const int slots = 1 + static_cast<int>(rng.Uniform(kTables));
    std::vector<int> tables(kTables);
    for (int t = 0; t < kTables; ++t) tables[t] = t;
    for (int t = 0; t < kTables; ++t) {
      std::swap(tables[t], tables[t + rng.Uniform(kTables - t)]);
    }
    for (int k = 0; k < plans; ++k) {
      ChoicePlan plan;
      plan.beta = 10.0 + static_cast<double>(rng.Uniform(100));
      for (int s = 0; s < slots; ++s) {
        const int table = tables[s];
        ChoiceSlot slot;
        const double base_gamma = 50.0 + static_cast<double>(rng.Uniform(200));
        const int opts = static_cast<int>(rng.Uniform(4));
        for (int o = 0; o < opts; ++o) {
          ChoiceOption opt;
          // Draw only from this table's indexes (a ≡ table mod kTables).
          const int pick = static_cast<int>(rng.Uniform(num_indexes));
          opt.index = pick - (pick % kTables) + table;
          if (opt.index >= num_indexes) opt.index -= kTables;
          if (opt.index < 0) continue;
          opt.gamma = base_gamma * rng.NextDouble();
          slot.options.push_back(opt);
        }
        slot.options.push_back({kBaseOption, base_gamma});
        std::sort(slot.options.begin(), slot.options.end(),
                  [](const ChoiceOption& a, const ChoiceOption& b) {
                    return a.gamma < b.gamma;
                  });
        plan.slots.push_back(std::move(slot));
      }
      cq.plans.push_back(std::move(plan));
    }
    p.queries.push_back(std::move(cq));
  }
  if (tight_budget) p.storage_budget = total_size * 0.3;
  return p;
}

TEST(ChoiceProblemTest, QueryCostPicksCheapestAvailable) {
  ChoiceProblem p;
  p.num_indexes = 2;
  p.fixed_cost = {0, 0};
  p.size = {1, 1};
  ChoiceQuery q;
  ChoicePlan plan;
  plan.beta = 10;
  ChoiceSlot slot;
  slot.options = {{0, 1.0}, {1, 2.0}, {kBaseOption, 5.0}};
  plan.slots.push_back(slot);
  q.plans.push_back(plan);
  p.queries.push_back(q);

  EXPECT_DOUBLE_EQ(p.QueryCost(0, {0, 0}), 15.0);  // base only
  EXPECT_DOUBLE_EQ(p.QueryCost(0, {0, 1}), 12.0);  // index 1
  EXPECT_DOUBLE_EQ(p.QueryCost(0, {1, 1}), 11.0);  // index 0 wins
}

TEST(ChoiceProblemTest, SlotWithoutBaseRequiresSelection) {
  ChoiceProblem p;
  p.num_indexes = 1;
  p.fixed_cost = {0};
  p.size = {1};
  ChoiceQuery q;
  ChoicePlan plan;
  plan.beta = 1;
  ChoiceSlot slot;
  slot.options = {{0, 2.0}};  // no base fallback (ILP-form)
  plan.slots.push_back(slot);
  q.plans.push_back(plan);
  p.queries.push_back(q);

  EXPECT_EQ(p.QueryCost(0, {0}), kInf);
  EXPECT_DOUBLE_EQ(p.QueryCost(0, {1}), 3.0);
  EXPECT_EQ(p.Objective({0}), kInf);
}

TEST(ChoiceProblemTest, FeasibilityChecksAllConstraintKinds) {
  ChoiceProblem p = RandomProblem(1, 4, 2, false, false);
  p.storage_budget = p.size[0] + 0.5;
  EXPECT_TRUE(p.Feasible({1, 0, 0, 0}));
  EXPECT_FALSE(p.Feasible({1, 1, 1, 1}));
  p.z_rows.push_back({{{0, 1.0}, {1, 1.0}}, Sense::kLe, 0.0, "none of 0,1"});
  EXPECT_FALSE(p.Feasible({1, 0, 0, 0}));
  EXPECT_TRUE(p.Feasible({0, 0, 0, 0}));
}

TEST(ChoiceSolverTest, UnconstrainedPicksAllBeneficial) {
  ChoiceProblem p = RandomProblem(2, 6, 8, /*tight_budget=*/false, false);
  ChoiceSolver solver(&p);
  ChoiceSolveOptions opts;
  opts.gap_target = 0.0;
  const ChoiceSolution s = solver.Solve(opts);
  ASSERT_TRUE(s.status.ok());
  const double brute = BruteForce(p);
  EXPECT_NEAR(s.objective, brute, 1e-6 + 1e-6 * brute);
}

TEST(ChoiceSolverTest, InfeasibleZRowsDetected) {
  ChoiceProblem p = RandomProblem(3, 4, 3, false, false);
  // Contradictory: select at least 2 of {0} — impossible.
  p.z_rows.push_back({{{0, 1.0}}, Sense::kGe, 2.0, "impossible"});
  ChoiceSolver solver(&p);
  EXPECT_EQ(solver.CheckFeasible().code(), StatusCode::kInfeasible);
  EXPECT_FALSE(solver.Solve().status.ok());
}

TEST(ChoiceSolverTest, UnreachableQueryCapDetected) {
  ChoiceProblem p = RandomProblem(4, 4, 3, false, false);
  p.queries[0].cost_cap = 1e-3;  // below any achievable cost
  ChoiceSolver solver(&p);
  EXPECT_EQ(solver.CheckFeasible().code(), StatusCode::kInfeasible);
}

TEST(ChoiceSolverTest, GreaterEqualRowForcesSelection) {
  ChoiceProblem p = RandomProblem(5, 5, 4, false, /*fixed costs=*/true);
  p.fixed_cost[2] = 1000.0;  // expensive: never chosen voluntarily
  ChoiceSolver free_solver(&p);
  const ChoiceSolution uncons = free_solver.Solve();
  ASSERT_TRUE(uncons.status.ok());
  EXPECT_EQ(uncons.selected[2], 0);

  p.z_rows.push_back({{{2, 1.0}}, Sense::kGe, 1.0, "must pick 2"});
  ChoiceSolver forced_solver(&p);
  const ChoiceSolution forced = forced_solver.Solve();
  ASSERT_TRUE(forced.status.ok());
  EXPECT_EQ(forced.selected[2], 1);
  EXPECT_GE(forced.objective, uncons.objective - 1e-9);
}

TEST(ChoiceSolverTest, WarmStartSeedsIncumbent) {
  ChoiceProblem p = RandomProblem(6, 8, 10, true, false);
  ChoiceSolver solver(&p);
  const ChoiceSolution cold = solver.Solve();
  ASSERT_TRUE(cold.status.ok());

  ChoiceSolveOptions warm_opts;
  warm_opts.warm_start = cold.selected;
  warm_opts.node_limit = 0;  // no search at all: rely on the warm start
  ChoiceSolver solver2(&p);
  const ChoiceSolution warm = solver2.Solve(warm_opts);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_LE(warm.objective, cold.objective + 1e-9);
}

TEST(ChoiceSolverTest, LagrangianBoundNeverExceedsOptimum) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    ChoiceProblem p = RandomProblem(seed, 8, 6, true, true);
    const double brute = BruteForce(p);
    if (!std::isfinite(brute)) continue;
    ChoiceSolver solver(&p);
    ChoiceSolveOptions opts;
    opts.gap_target = 0.0;
    opts.node_limit = 100000;
    const ChoiceSolution s = solver.Solve(opts);
    ASSERT_TRUE(s.status.ok());
    EXPECT_LE(s.root_lagrangian_bound, brute + 1e-6 + 1e-6 * std::abs(brute))
        << "seed " << seed;
    EXPECT_LE(s.lower_bound, brute + 1e-6 + 1e-6 * std::abs(brute));
  }
}

TEST(ChoiceSolverTest, RootLpBoundNeverExceedsOptimum) {
  for (uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    ChoiceProblem p = RandomProblem(seed, 8, 6, true, true);
    const double brute = BruteForce(p);
    if (!std::isfinite(brute)) continue;
    ChoiceSolver solver(&p);
    ChoiceSolveOptions opts;
    opts.gap_target = 0.0;
    opts.node_limit = 200000;
    const ChoiceSolution s = solver.Solve(opts);
    ASSERT_TRUE(s.status.ok());
    ASSERT_GT(s.root_lp_rows, 0) << "root LP unexpectedly skipped";
    EXPECT_LE(s.root_lp_bound, brute + 1e-6 + 1e-6 * std::abs(brute))
        << "seed " << seed;
    // The dual-seeded Lagrangian stays a valid bound too.
    EXPECT_LE(s.root_lagrangian_bound, brute + 1e-6 + 1e-6 * std::abs(brute))
        << "seed " << seed;
  }
}

TEST(ChoiceSolverTest, RootLpAndFixingKnobsPreserveOptimum) {
  for (uint64_t seed : {41u, 42u, 43u, 44u}) {
    ChoiceProblem p = RandomProblem(seed, 9, 7, true, true);
    const double brute = BruteForce(p);
    if (!std::isfinite(brute)) continue;
    ChoiceSolveOptions full;
    full.gap_target = 0.0;
    full.node_limit = 500000;
    ChoiceSolveOptions bare = full;
    bare.root_lp = false;
    bare.reduced_cost_fixing = false;
    bare.lagrangian = false;
    ChoiceSolver s1(&p), s2(&p);
    const ChoiceSolution with = s1.Solve(full);
    const ChoiceSolution without = s2.Solve(bare);
    ASSERT_TRUE(with.status.ok());
    ASSERT_TRUE(without.status.ok());
    EXPECT_NEAR(with.objective, brute, 1e-6 + 1e-6 * std::abs(brute))
        << "seed " << seed;
    EXPECT_NEAR(without.objective, brute, 1e-6 + 1e-6 * std::abs(brute))
        << "seed " << seed;
    EXPECT_EQ(without.root_lp_rows, 0);
    EXPECT_EQ(without.variables_fixed, 0);
  }
}

TEST(ChoiceSolverTest, RootLpBeyondOldFourThousandRowCapSolves) {
  // Before the sparse-LU basis factorization, root_lp_max_rows
  // defaulted to 4000 because the explicit-inverse simplex was
  // O(rows^2) in time and memory; BuildRootLp refused anything larger
  // and those solves fell back to the weaker Lagrangian-only bound.
  // This instance's compact root LP is > 4000 rows and must now build
  // and solve exactly under the raised default cap.
  constexpr int kIndexes = 60;
  constexpr int kQueries = 900;
  Rng rng(31);
  ChoiceProblem p;
  p.num_indexes = kIndexes;
  p.fixed_cost.assign(kIndexes, 1.0);
  p.size.assign(kIndexes, 1.0);
  p.storage_budget = kIndexes;  // generous: every index fits
  for (int q = 0; q < kQueries; ++q) {
    ChoiceQuery cq;
    ChoicePlan plan;
    plan.beta = 1.0;
    ChoiceSlot slot;
    int a = static_cast<int>(rng.Uniform(kIndexes));
    for (int k = 0; k < 3; ++k) {  // 3 distinct indexes, then the base
      slot.options.push_back({(a + k) % kIndexes,
                              2.0 + static_cast<double>(rng.Uniform(5)) + k});
    }
    slot.options.push_back({kBaseOption, 10.0});
    plan.slots.push_back(std::move(slot));
    cq.plans.push_back(std::move(plan));
    p.queries.push_back(std::move(cq));
  }

  ChoiceSolver solver(&p);
  Model refused;
  EXPECT_EQ(solver.DebugBuildRootLp(&refused, 4000), -1);  // the old cap

  ChoiceSolveOptions opts;  // default root_lp_max_rows admits it
  opts.gap_target = 0.05;
  opts.node_limit = 50;
  opts.lagrangian_iterations = 20;
  const ChoiceSolution s = solver.Solve(opts);
  ASSERT_TRUE(s.status.ok()) << s.status.ToString();
  EXPECT_GT(s.root_lp_rows, 4000);
  ASSERT_TRUE(std::isfinite(s.root_lp_bound));
  EXPECT_LE(s.root_lp_bound, s.objective + 1e-6 * std::abs(s.objective));
  EXPECT_GE(s.root_lp_stats.refactorizations, 1);
  EXPECT_GT(s.root_lp_stats.phase1_pivots + s.root_lp_stats.phase2_pivots, 0);
}

TEST(ChoiceSolverTest, RootLpRowCapSkipsTheLp) {
  ChoiceProblem p = RandomProblem(9, 8, 6, true, false);
  ChoiceSolver solver(&p);
  Model m;
  EXPECT_EQ(solver.DebugBuildRootLp(&m, 1), -1);
  ChoiceSolveOptions opts;
  opts.root_lp_max_rows = 1;
  const ChoiceSolution s = solver.Solve(opts);
  ASSERT_TRUE(s.status.ok());
  EXPECT_EQ(s.root_lp_rows, 0);
  EXPECT_EQ(s.root_lp_bound, -kInf);
}

TEST(ChoiceSolverTest, CallbackEarlyTermination) {
  ChoiceProblem p = RandomProblem(7, 10, 12, true, false);
  ChoiceSolver solver(&p);
  ChoiceSolveOptions opts;
  opts.gap_target = 0.0;
  int calls = 0;
  opts.callback = [&](const MipProgress& pr) {
    ++calls;
    return !pr.has_incumbent;  // stop at the first incumbent
  };
  const ChoiceSolution s = solver.Solve(opts);
  EXPECT_TRUE(s.status.ok());
  EXPECT_GE(calls, 1);
}

TEST(ChoiceSolverTest, ReportsProvenGapAndBound) {
  ChoiceProblem p = RandomProblem(8, 8, 8, true, false);
  ChoiceSolver solver(&p);
  ChoiceSolveOptions opts;
  opts.gap_target = 0.0;
  opts.node_limit = 200000;
  const ChoiceSolution s = solver.Solve(opts);
  ASSERT_TRUE(s.status.ok());
  EXPECT_LE(s.lower_bound, s.objective + 1e-9);
  EXPECT_GE(s.gap, 0.0);
  const double brute = BruteForce(p);
  // The proven bound must be valid w.r.t. the true optimum.
  EXPECT_LE(s.lower_bound, brute + 1e-6 + 1e-6 * std::abs(brute));
  EXPECT_NEAR(s.objective, brute, 1e-6 + 1e-6 * std::abs(brute));
}

/// Property sweep: the structured solver matches brute force across
/// random instances, budgets, and fixed-cost settings.
class ChoiceSolverPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {};

TEST_P(ChoiceSolverPropertyTest, MatchesBruteForce) {
  const auto [seed, tight, fixed] = GetParam();
  ChoiceProblem p = RandomProblem(100 + seed, 9, 7, tight, fixed);
  const double brute = BruteForce(p);
  ChoiceSolver solver(&p);
  ChoiceSolveOptions opts;
  opts.gap_target = 0.0;
  opts.node_limit = 500000;
  const ChoiceSolution s = solver.Solve(opts);
  if (!std::isfinite(brute)) {
    EXPECT_FALSE(s.status.ok());
    return;
  }
  ASSERT_TRUE(s.status.ok()) << s.status.ToString();
  EXPECT_NEAR(s.objective, brute, 1e-6 + 1e-6 * std::abs(brute))
      << "seed=" << seed << " tight=" << tight << " fixed=" << fixed;
  EXPECT_TRUE(p.Feasible(s.selected));
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, ChoiceSolverPropertyTest,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Bool(),
                       ::testing::Bool()));

}  // namespace
}  // namespace cophy::lp
