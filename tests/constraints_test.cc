// Unit tests for constraints/: the Bruno–Chaudhuri constraint language
// and its translation to linear BIP rows (Appendix E).
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "constraints/constraints.h"
#include "index/index.h"

namespace cophy {
namespace {

class ConstraintsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cat_ = MakeTpchCatalog(0.1, 0.0);
    orders_ = cat_.FindTable("orders");
    lineitem_ = cat_.FindTable("lineitem");
    // A small candidate pool: two on orders, one on lineitem, one wide.
    Index a;
    a.table = orders_;
    a.key_columns = {cat_.FindColumn(orders_, "o_custkey")};
    ids_.push_back(pool_.Add(a));
    Index b;
    b.table = orders_;
    b.key_columns = {cat_.FindColumn(orders_, "o_orderdate")};
    ids_.push_back(pool_.Add(b));
    Index c;
    c.table = lineitem_;
    c.key_columns = {cat_.FindColumn(lineitem_, "l_shipdate")};
    ids_.push_back(pool_.Add(c));
    Index wide;
    wide.table = lineitem_;
    for (const char* col : {"l_orderkey", "l_partkey", "l_suppkey",
                            "l_shipdate", "l_quantity", "l_discount"}) {
      wide.key_columns.push_back(cat_.FindColumn(lineitem_, col));
    }
    ids_.push_back(pool_.Add(wide));
  }

  Catalog cat_;
  IndexPool pool_;
  std::vector<IndexId> ids_;
  TableId orders_ = kInvalidTable, lineitem_ = kInvalidTable;
};

TEST_F(ConstraintsTest, EmptySetIsEmpty) {
  ConstraintSet cs;
  EXPECT_TRUE(cs.empty());
  cs.SetStorageBudget(100);
  EXPECT_FALSE(cs.empty());
}

TEST_F(ConstraintsTest, StorageBudgetStoredSeparately) {
  ConstraintSet cs;
  cs.SetStorageBudget(12345.0);
  ASSERT_TRUE(cs.storage_budget().has_value());
  EXPECT_DOUBLE_EQ(*cs.storage_budget(), 12345.0);
  // The budget does not surface as a generic z-row.
  EXPECT_TRUE(TranslateIndexConstraints(cs, ids_, pool_, cat_).empty());
}

TEST_F(ConstraintsTest, MaxIndexesPerTableRows) {
  ConstraintSet cs;
  cs.AddMaxIndexesPerTable(cat_, 2);
  const auto rows = TranslateIndexConstraints(cs, ids_, pool_, cat_);
  // One row per table that actually has candidates (others are
  // trivially satisfied and dropped).
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.sense, lp::Sense::kLe);
    EXPECT_DOUBLE_EQ(row.rhs, 2.0);
    for (const auto& [dense, coef] : row.terms) {
      EXPECT_DOUBLE_EQ(coef, 1.0);
      EXPECT_GE(dense, 0);
      EXPECT_LT(dense, static_cast<int>(ids_.size()));
    }
  }
}

TEST_F(ConstraintsTest, MaxWideIndexesFiltersByKeyWidth) {
  ConstraintSet cs;
  cs.AddMaxWideIndexes(/*width=*/5, /*k=*/0);  // forbid >5-column keys
  const auto rows = TranslateIndexConstraints(cs, ids_, pool_, cat_);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].terms.size(), 1u);  // only the 6-column index
  EXPECT_EQ(ids_[rows[0].terms[0].first], ids_[3]);
  EXPECT_DOUBLE_EQ(rows[0].rhs, 0.0);
}

TEST_F(ConstraintsTest, ClusteredRuleOnlyBindsClusteredCandidates) {
  ConstraintSet cs;
  cs.AddAtMostOneClusteredPerTable(cat_);
  // No clustered candidates in the pool: all rows trivially satisfied.
  EXPECT_TRUE(TranslateIndexConstraints(cs, ids_, pool_, cat_).empty());

  Index clustered;
  clustered.table = orders_;
  clustered.clustered = true;
  clustered.key_columns = {cat_.FindColumn(orders_, "o_orderdate")};
  std::vector<IndexId> with_clustered = ids_;
  with_clustered.push_back(pool_.Add(clustered));
  const auto rows =
      TranslateIndexConstraints(cs, with_clustered, pool_, cat_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].terms.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].rhs, 1.0);
}

TEST_F(ConstraintsTest, CustomWeightedConstraint) {
  ConstraintSet cs;
  IndexConstraint c;
  c.name = "total key width of orders indexes <= 8";
  c.filter = [this](const Index& idx, const Catalog&) {
    return idx.table == orders_;
  };
  c.weight = [](const Index& idx, const Catalog&) {
    return static_cast<double>(idx.key_columns.size());
  };
  c.op = CmpOp::kLe;
  c.rhs = 8;
  cs.AddIndexConstraint(std::move(c));
  const auto rows = TranslateIndexConstraints(cs, ids_, pool_, cat_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].terms.size(), 2u);  // the two orders indexes
}

TEST_F(ConstraintsTest, UnsatisfiableEmptyRowKept) {
  ConstraintSet cs;
  IndexConstraint c;
  c.name = "need a nation index";  // no candidate matches
  c.filter = [this](const Index& idx, const Catalog&) {
    return idx.table == cat_.FindTable("nation");
  };
  c.weight = [](const Index&, const Catalog&) { return 1.0; };
  c.op = CmpOp::kGe;
  c.rhs = 1;
  cs.AddIndexConstraint(std::move(c));
  const auto rows = TranslateIndexConstraints(cs, ids_, pool_, cat_);
  // Kept (empty, unsatisfiable) so the solver's precheck reports it.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].terms.empty());
}

TEST_F(ConstraintsTest, QueryCostGeneratorExpandsOverSelects) {
  Workload w;
  Query q;
  q.tables = {orders_};
  q.outputs = {{AggFunc::kNone, cat_.FindColumn(orders_, "o_orderkey")}};
  w.Add(q);
  Query u = q;
  u.kind = StatementKind::kUpdate;
  u.update_table = orders_;
  u.set_columns = {cat_.FindColumn(orders_, "o_totalprice")};
  w.Add(u);
  ConstraintSet cs;
  cs.ForEachQueryAssertSpeedup(w, 0.75);
  ASSERT_EQ(cs.query_cost_constraints().size(), 1u);  // updates skipped
  EXPECT_EQ(cs.query_cost_constraints()[0].query, 0);
  EXPECT_DOUBLE_EQ(cs.query_cost_constraints()[0].factor, 0.75);
}

TEST_F(ConstraintsTest, SoftStorageWeightsAreSizes) {
  ConstraintSet cs;
  cs.AddSoftStorage(0.0);
  ASSERT_EQ(cs.soft_constraints().size(), 1u);
  const auto w =
      SoftConstraintWeights(cs.soft_constraints()[0], ids_, pool_, cat_);
  ASSERT_EQ(w.size(), ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    EXPECT_DOUBLE_EQ(w[i], IndexSizeBytes(pool_[ids_[i]], cat_));
  }
}

TEST_F(ConstraintsTest, EqualitySenseTranslated) {
  ConstraintSet cs;
  IndexConstraint c;
  c.name = "exactly one orders index";
  c.filter = [this](const Index& idx, const Catalog&) {
    return idx.table == orders_;
  };
  c.weight = [](const Index&, const Catalog&) { return 1.0; };
  c.op = CmpOp::kEq;
  c.rhs = 1;
  cs.AddIndexConstraint(std::move(c));
  const auto rows = TranslateIndexConstraints(cs, ids_, pool_, cat_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].sense, lp::Sense::kEq);
}

}  // namespace
}  // namespace cophy
