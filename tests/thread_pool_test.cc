// Unit tests for the worker pool behind the parallel preparation
// pipeline: coverage for empty ranges, exception propagation, nested
// use, reuse, and the determinism contract (slot-indexed writes are
// thread-count independent).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace cophy {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(8), 8);
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h = 0;
    pool.ParallelFor(kN, [&](int64_t i) { ++hits[i]; });
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, EmptyAndNegativeRangesAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  pool.ParallelFor(-5, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ExceptionsPropagateAndLoopDrains) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> executed{0};
    EXPECT_THROW(
        pool.ParallelFor(64,
                         [&](int64_t i) {
                           ++executed;
                           if (i % 7 == 3) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // Every iteration was still claimed and ran (failures don't strand
    // work items).
    EXPECT_EQ(executed.load(), 64);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  constexpr int64_t kOuter = 16, kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(kOuter, [&](int64_t o) {
    // A nested call must not deadlock waiting for busy workers.
    pool.ParallelFor(kInner, [&](int64_t i) { ++hits[o * kInner + i]; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](int64_t) {
                                  pool.ParallelFor(8, [&](int64_t i) {
                                    if (i == 5) throw std::logic_error("inner");
                                  });
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950) << "round " << round;
  }
}

TEST(ThreadPoolTest, SlotWritesAreThreadCountIndependent) {
  // The determinism contract the INUM rewrite relies on: writing result
  // i into slot i yields identical output for any thread count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(500);
    pool.ParallelFor(static_cast<int64_t>(out.size()), [&](int64_t i) {
      double v = static_cast<double>(i);
      for (int k = 0; k < 50; ++k) v = v * 1.0000001 + 0.25;
      out[i] = v;
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPoolTest, FreeFunctionFallsBackToSerialWithoutPool) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](int64_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, PostRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::promise<void> all_done;
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Post([&] {
      if (ran.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, PostRunsInlineOnSizeOnePool) {
  ThreadPool pool(1);
  int ran = 0;
  pool.Post([&] { ++ran; });
  // No workers: the task must have executed inside Post itself.
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, PostAndParallelForCoexist) {
  // ParallelFor jobs outrank the Post queue but both must complete;
  // the fork-join caller may not deadlock behind queued tasks.
  ThreadPool pool(4);
  std::atomic<int> posted{0};
  std::promise<void> drained;
  constexpr int kTasks = 50;
  for (int i = 0; i < kTasks; ++i) {
    pool.Post([&] {
      if (posted.fetch_add(1) + 1 == kTasks) drained.set_value();
    });
  }
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
  drained.get_future().wait();
  EXPECT_EQ(posted.load(), kTasks);
}

}  // namespace
}  // namespace cophy
